package dmx

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dmx/internal/expr"
	"dmx/internal/fault"
	"dmx/internal/trace"
)

// traceDB opens a fully-sampled in-memory database with an indexed,
// check-constrained table.
func traceDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(Config{TraceSample: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	db.RegisterCheckPredicate("positive_salary",
		expr.Gt(expr.Field(2), expr.Const(Float(0))))
	if _, err := db.Exec(
		`CREATE TABLE emp (eno INT NOT NULL, dno INT, salary FLOAT) USING heap`,
		`CREATE INDEX byeno ON emp (eno)`,
		`CREATE ATTACHMENT check ON emp WITH (name=paid, predicate=positive_salary)`,
	); err != nil {
		t.Fatal(err)
	}
	return db
}

// lastTrace returns the most recent completed trace.
func lastTrace(t *testing.T, db *DB) trace.TraceData {
	t.Helper()
	traces := db.Env.Tracer.Traces(0)
	if len(traces) == 0 {
		t.Fatal("trace ring is empty")
	}
	return traces[len(traces)-1]
}

// findSpans walks the span tree collecting every span whose name has the
// given prefix.
func findSpans(d trace.SpanData, prefix string) []trace.SpanData {
	var out []trace.SpanData
	if strings.HasPrefix(d.Name, prefix) {
		out = append(out, d)
	}
	for _, c := range d.Children {
		out = append(out, findSpans(c, prefix)...)
	}
	return out
}

// TestTraceNestedDispatchLayers asserts the acceptance shape of a sampled
// transaction trace: at least four nested dispatch layers (txn → stmt →
// relation op → storage method → WAL), with the statement text noted on
// the statement span.
func TestTraceNestedDispatchLayers(t *testing.T) {
	db := traceDB(t)
	if _, err := db.Exec(`INSERT INTO emp VALUES (1, 2, 100.0)`); err != nil {
		t.Fatal(err)
	}
	td := lastTrace(t, db)
	if td.State != "committed" || !td.Sampled {
		t.Fatalf("trace shape: %+v", td)
	}
	if depth := td.Root.Depth(); depth < 4 {
		t.Fatalf("span tree depth = %d, want >= 4", depth)
	}
	stmts := findSpans(td.Root, "stmt")
	if len(stmts) != 1 || !strings.Contains(stmts[0].Note, "INSERT INTO emp") {
		t.Fatalf("statement span: %+v", stmts)
	}
	if sm := findSpans(td.Root, "sm."); len(sm) == 0 {
		t.Error("no storage-method spans")
	}
	if wal := findSpans(td.Root, "wal."); len(wal) == 0 {
		t.Error("no WAL spans")
	}
	if att := findSpans(td.Root, "att."); len(att) == 0 {
		t.Error("no attachment spans (index + check should both fire)")
	}
}

// TestTraceVetoTaggedSpan asserts that a constraint rejection is visible
// in the trace as a veto-tagged span naming the vetoing attachment, on a
// transaction that finished as aborted.
func TestTraceVetoTaggedSpan(t *testing.T) {
	db := traceDB(t)
	if _, err := db.Exec(`INSERT INTO emp VALUES (9, 1, -5.0)`); err == nil {
		t.Fatal("check constraint did not veto")
	}
	td := lastTrace(t, db)
	if td.State != "aborted" {
		t.Fatalf("vetoed txn state = %q, want aborted", td.State)
	}
	var veto *trace.SpanData
	for _, sp := range findSpans(td.Root, "att.") {
		if sp.Veto {
			veto = &sp
			break
		}
	}
	if veto == nil {
		t.Fatalf("no veto-tagged attachment span in %+v", td.Root)
	}
	if veto.Ext != "check" {
		t.Errorf("veto span names %q, want the check attachment type", veto.Ext)
	}
	if veto.Err == "" {
		t.Error("veto span carries no error")
	}
}

// TestTraceSurvivesCrashInjection sweeps the crash-site matrix with
// tracing fully on and an always-firing slow threshold: every injected
// failure leaves half-built span trees behind (aborts, failed commits,
// mid-operation errors), and none of them may panic the tracer or wedge
// Env.Close. The debug server must come down cleanly even though the
// database itself "died" without closing its files.
func TestTraceSurvivesCrashInjection(t *testing.T) {
	for _, s := range fault.Matrix(false) {
		t.Run(s.Name, func(t *testing.T) {
			inj := fault.New()
			if s.Torn {
				inj.ArmTorn(s.Site, s.Nth, s.Keep)
			} else {
				inj.Arm(s.Site, s.Nth)
			}
			dir := t.TempDir()
			db, err := Open(Config{
				LogPath:         filepath.Join(dir, "wal.log"),
				DiskPath:        filepath.Join(dir, "data.db"),
				PoolFrames:      4,
				CheckpointEvery: -1,
				Faults:          inj,
				TraceSample:     1,
				SlowThreshold:   time.Nanosecond, // every span is "slow"
				SlowLog:         io.Discard,
			})
			if err != nil {
				t.Fatal(err)
			}
			addr, err := db.Env.ServeDebug("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := db.Exec("CREATE TABLE t (id INT NOT NULL, pad STRING) USING heap"); err == nil {
				if _, err := db.Exec("CREATE INDEX byid ON t (id)"); err == nil {
					pad := strings.Repeat("x", 500)
					for i := 1; i <= 400; i++ {
						if _, err := db.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, '%s')", i, pad)); err != nil {
							break
						}
					}
				}
			}
			if !inj.Crashed() {
				t.Skipf("site %s not reached by this workload", s.Site)
			}
			// The tracer must still be coherent: materialising the ring and
			// the counters cannot panic, and finished traces carry a state.
			for _, td := range db.Env.Tracer.Traces(0) {
				if td.State == "" {
					t.Errorf("finished trace with no state: %+v", td)
				}
			}
			if st := db.Env.Tracer.Stats(); st.Started == 0 {
				t.Error("no transactions traced")
			}
			// Post-crash cleanup still shuts the debug server down.
			if err := db.Env.Close(); err != nil {
				t.Errorf("Env.Close after crash: %v", err)
			}
			if conn, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
				conn.Close()
				t.Error("debug server still accepting after Env.Close")
			}
		})
	}
}

// TestDebugServerClosesWithDB asserts DB.Close tears the debug HTTP
// server down with the database.
func TestDebugServerClosesWithDB(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Config{LogPath: filepath.Join(dir, "wal.log"), TraceSample: 1})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := db.Env.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE TABLE t (id INT NOT NULL) USING heap`); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "dmx_trace_sample_rate 1") {
		t.Fatalf("metrics body: %s", body)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if conn, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		conn.Close()
		t.Error("debug server still accepting after DB.Close")
	}
	// The slow-event log file path: reopening with recovery must not trip
	// over tracing state from the crashed-open era.
	db2, err := Open(Config{LogPath: filepath.Join(dir, "wal.log"), Recover: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.Exec(`SELECT id FROM t`); err != nil {
		t.Fatal(err)
	}
	_ = os.Remove(filepath.Join(dir, "wal.log"))
}
