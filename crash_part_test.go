package dmx

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dmx/internal/fault"
	"dmx/internal/remote"
	"dmx/internal/types"
)

const partCrashShards = 3

// partCrashOp is one intended effect of the transaction in flight when the
// injected crash fires.
type partCrashOp struct {
	kind string // "insert", "update", "delete"
	id   int
	val  string
}

// partCrashState tracks what one partitioned workload acknowledged. The
// shard servers live here too: they stand for separate processes that
// survive the coordinator crash, so Verify reattaches the same instances
// and recovery must settle whatever they still hold prepared.
type partCrashState struct {
	dir      string
	srvs     []*remote.Server
	ddlAcked bool
	vals     map[int]string // id -> value, acknowledged transactions only
	inFlight []partCrashOp
}

// partCrashScenarios sweeps the two-phase-commit crash window. The
// part.decide site lands the crash after every shard has acknowledged
// prepare but before the commit decision reaches the local log — the
// shards are left in doubt and recovery must presume abort. The WAL sites
// land crashes on the decision record itself (append lost, flush torn,
// synced-but-unacknowledged). The "ackloss" cells additionally make one
// shard reject a commit delivery mid-workload, so an acknowledged
// transaction is still prepared on that shard when the crash hits, and
// recovery must drive it to the logged commit outcome.
func partCrashScenarios(deep bool) []fault.Scenario {
	var out []fault.Scenario
	add := func(name string, site fault.Site, nth int, durable bool) {
		out = append(out, fault.Scenario{Name: name, Site: site, Nth: nth, ExpectDurable: durable})
	}
	add("part-decide@1", fault.SitePartDecide, 1, false)
	add("part-decide@4", fault.SitePartDecide, 4, false)
	add("part-wal.append@9", fault.SiteWALAppend, 9, false)
	add("part-wal.flush@9", fault.SiteWALFlush, 9, false)
	add("part-wal.synced@9", fault.SiteWALSynced, 9, true)
	add("part-ackloss-decide@5", fault.SitePartDecide, 5, false)
	add("part-ackloss-flush@17", fault.SiteWALFlush, 17, false)
	if deep {
		add("part-decide@2", fault.SitePartDecide, 2, false)
		add("part-decide@8", fault.SitePartDecide, 8, false)
		add("part-wal.append@23", fault.SiteWALAppend, 23, false)
		add("part-wal.synced@23", fault.SiteWALSynced, 23, true)
		// Lands well past the first fuzzy checkpoint, so recovery replays
		// the snapshot-embedded shard contents onto the surviving servers
		// before redoing the tail.
		add("part-wal.flush@90", fault.SiteWALFlush, 90, false)
		add("part-ackloss-decide@11", fault.SitePartDecide, 11, false)
	}
	return out
}

// partCrashBatch derives the transaction for one batch: three inserts
// spreading across shards by hash, plus periodic updates and deletes of
// earlier acknowledged rows (update targets are ≡1 and delete targets ≡2
// mod 3, so they never collide with each other).
func partCrashBatch(batch int) []partCrashOp {
	base := batch*3 + 1
	ops := []partCrashOp{
		{"insert", base, fmt.Sprintf("v%d", base)},
		{"insert", base + 1, fmt.Sprintf("v%d", base+1)},
		{"insert", base + 2, fmt.Sprintf("v%d", base+2)},
	}
	if batch > 0 && batch%3 == 0 {
		id := (batch-1)*3 + 1
		ops = append(ops, partCrashOp{"update", id, fmt.Sprintf("u%d", id)})
	}
	if batch > 1 && batch%4 == 0 {
		ops = append(ops, partCrashOp{"delete", (batch-2)*3 + 2, ""})
	}
	return ops
}

// TestCrashPart2PC runs multi-shard transactions through the partitioned
// storage method under the two-phase-commit crash matrix and asserts the
// coordinator contract after recovery: acknowledged transactions fully
// visible on every shard (including shards whose commit delivery was
// lost), the unacknowledged in-flight transaction atomic across shards,
// and no shard left in doubt. (Named TestCrash… so `make crash` picks it
// up.)
func TestCrashPart2PC(t *testing.T) {
	root := t.TempDir()
	states := make(map[string]*partCrashState)

	open := func(st *partCrashState, inj *fault.Injector, ckptEvery int) (*DB, error) {
		db, err := Open(Config{
			LogPath:         filepath.Join(st.dir, "wal.log"),
			DiskPath:        filepath.Join(st.dir, "data.db"),
			CheckpointEvery: ckptEvery,
			Faults:          inj,
		})
		if err != nil {
			return nil, err
		}
		for i, srv := range st.srvs {
			db.AttachShardServer(fmt.Sprintf("s%d", i), srv)
		}
		return db, nil
	}

	h := &fault.Harness{
		Scenarios: partCrashScenarios(os.Getenv("DMX_CRASH_DEEP") != ""),
		Workload: func(s fault.Scenario, inj *fault.Injector) error {
			st := &partCrashState{
				dir:  filepath.Join(root, s.Name),
				vals: make(map[int]string),
			}
			for i := 0; i < partCrashShards; i++ {
				st.srvs = append(st.srvs, remote.NewServer(0))
			}
			states[s.Name] = st
			if err := os.MkdirAll(st.dir, 0o755); err != nil {
				return err
			}
			// Ack-loss cells disable checkpointing: a fuzzy checkpoint scans
			// committed shard contents only, so it cannot capture writes an
			// in-doubt shard still holds prepared, and truncating the log
			// would drop the commit record resolution needs. Resolution runs
			// at every recovery, before checkpoints resume.
			ckptEvery := 64
			ackLoss := strings.Contains(s.Name, "ackloss")
			if ackLoss {
				ckptEvery = -1
			}
			db, err := open(st, inj, ckptEvery)
			if err != nil {
				return err
			}
			// No db.Close(): the injected crash is a process death.
			if _, err := db.Exec("CREATE TABLE pt (id INT NOT NULL, v STRING) USING part" +
				" WITH (key=id, servers='s0,s1,s2', batch=5)"); err != nil {
				return err
			}
			st.ddlAcked = true
			rel, err := db.Env.OpenRelationByName("pt")
			if err != nil {
				return err
			}
			for batch := 0; batch < 400; batch++ {
				if ackLoss && batch == 2 {
					// The next commit delivery to shard server s1 is
					// rejected: the transaction is acknowledged (the
					// decision is logged locally) but stays prepared there.
					st.srvs[1].InjectFault(remote.OpCommitTxn, remote.FaultReject, 1)
				}
				ops := partCrashBatch(batch)
				st.inFlight = ops
				tx := db.Env.Begin()
				for _, op := range ops {
					key := types.EncodeKeyValues(types.Int(int64(op.id)))
					var err error
					switch op.kind {
					case "insert":
						_, err = rel.Insert(tx, types.Record{types.Int(int64(op.id)), types.Str(op.val)})
					case "update":
						_, err = rel.Update(tx, key, types.Record{types.Int(int64(op.id)), types.Str(op.val)})
					case "delete":
						err = rel.Delete(tx, key)
					}
					if err != nil {
						return err
					}
				}
				if err := tx.Commit(); err != nil {
					return err
				}
				for _, op := range ops {
					if op.kind == "delete" {
						delete(st.vals, op.id)
					} else {
						st.vals[op.id] = op.val
					}
				}
				st.inFlight = nil
			}
			return fmt.Errorf("workload finished without crashing")
		},
		Verify: func(tb fault.TB, s fault.Scenario) {
			st := states[s.Name]
			// Recovery needs the shard servers reachable before replay, so
			// the reopen recovers explicitly after reattaching them.
			db, err := open(st, nil, -1)
			if err != nil {
				tb.Errorf("%s: reopen: %v", s.Name, err)
				return
			}
			defer db.Close()
			if err := db.Env.Recover(); err != nil {
				tb.Errorf("%s: recover: %v", s.Name, err)
				return
			}

			res, err := db.Exec("SELECT id, v FROM pt")
			if err != nil {
				if !st.ddlAcked {
					return
				}
				tb.Errorf("%s: table lost after acked CREATE: %v", s.Name, err)
				return
			}
			got := make(map[int]string, len(res.Rows))
			for _, row := range res.Rows {
				id := int(row[0].AsInt())
				if _, dup := got[id]; dup {
					tb.Errorf("%s: id %d recovered twice", s.Name, id)
				}
				got[id] = row[1].S
			}

			// The in-flight transaction must be atomic across shards: with a
			// durable decision record it may be fully applied, at every
			// other site it must be fully absent.
			applied := false
			if s.ExpectDurable && len(st.inFlight) > 0 {
				first := st.inFlight[0]
				applied = got[first.id] == first.val
			}
			inFlight := func(kind string, id int) bool {
				if !applied {
					return false
				}
				for _, op := range st.inFlight {
					if op.kind == kind && op.id == id {
						return true
					}
				}
				return false
			}
			for _, op := range st.inFlight {
				v, ok := got[op.id]
				switch op.kind {
				case "insert":
					if ok != applied {
						tb.Errorf("%s: in-flight insert %d: present=%v, decision applied=%v",
							s.Name, op.id, ok, applied)
					}
				case "update":
					if applied && (!ok || v != op.val) {
						tb.Errorf("%s: in-flight update %d: got %q, want applied %q", s.Name, op.id, v, op.val)
					}
				case "delete":
					if applied && ok {
						tb.Errorf("%s: in-flight delete %d still present", s.Name, op.id)
					}
				}
			}
			// Every acknowledged transaction is fully visible — including
			// the ack-loss cell's transaction, whose writes one shard held
			// prepared until recovery resolved it to the logged commit.
			for id, want := range st.vals {
				v, ok := got[id]
				switch {
				case !ok && !inFlight("delete", id):
					tb.Errorf("%s: acked id %d lost (recovered %d rows)", s.Name, id, len(got))
				case ok && v != want && !inFlight("update", id):
					tb.Errorf("%s: id %d recovered %q, want %q", s.Name, id, v, want)
				}
			}
			for id := range got {
				if _, ok := st.vals[id]; !ok && !inFlight("insert", id) {
					tb.Errorf("%s: unacked id %d visible after recovery", s.Name, id)
				}
			}

			// No shard may be left in doubt, and the shard tables must hold
			// exactly the visible rows between them.
			total := 0
			populated := 0
			for i, srv := range st.srvs {
				c := remote.Dial(srv)
				ids, err := c.InDoubt()
				if err != nil {
					tb.Errorf("%s: shard %d in-doubt probe: %v", s.Name, i, err)
					c.Close()
					continue
				}
				if len(ids) != 0 {
					tb.Errorf("%s: shard %d still in doubt after recovery: %v", s.Name, i, ids)
				}
				n, err := c.Count(fmt.Sprintf("pt#%d", i))
				c.Close()
				if err != nil {
					tb.Errorf("%s: shard %d count: %v", s.Name, i, err)
					continue
				}
				total += n
				if n > 0 {
					populated++
				}
			}
			if total != len(got) {
				tb.Errorf("%s: shards hold %d records, scan returned %d", s.Name, total, len(got))
			}
			if len(got) >= 8 && populated < 2 {
				tb.Errorf("%s: %d records all landed on one shard", s.Name, len(got))
			}

			// The recovered coordinator keeps committing two-phase: a fresh
			// multi-shard transaction lands and reads back.
			if _, err := db.Exec("INSERT INTO pt VALUES (9999, 'post-recovery')"); err != nil {
				tb.Errorf("%s: post-recovery insert: %v", s.Name, err)
				return
			}
			r, err := db.Exec("SELECT v FROM pt WHERE id = 9999")
			if err != nil || len(r.Rows) != 1 || r.Rows[0][0].S != "post-recovery" {
				tb.Errorf("%s: post-recovery readback: %+v, %v", s.Name, r, err)
			}
		},
	}
	h.Run(t)
}
