// Command publish demonstrates the append storage method's LSM shape.
// The paper motivates "database publishing" with write-once media; this
// extension grew from that press-once load into a tiered-ingest method:
// inserts land in a bounded memtable, flushes seal sorted immutable runs,
// updates and deletes overlay newer versions and tombstones, merges fold
// runs together and retire tombstones at full depth, and bloom filters
// keep direct-by-key reads from probing every run.
package main

import (
	"fmt"
	"log"

	"dmx"
)

func main() {
	db, err := dmx.Open(dmx.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// A memtable this small flushes every few articles, so the run and
	// merge machinery is visible in a short demo.
	mustExec(db,
		"CREATE TABLE encyclopedia (id INT NOT NULL, title STRING, body STRING)"+
			" USING append WITH (memtable=256, fanout=2, compact=sync)",
	)

	fmt.Println("== ingest: articles pour into the memtable and flush into runs ==")
	rel, err := db.Relation("encyclopedia")
	if err != nil {
		log.Fatal(err)
	}
	tx := db.Begin()
	titles := []string{"Aardvark", "Btrees", "Codd", "Databases", "Extensibility",
		"Filtering", "Guttman", "Hashing", "Indexes", "Joins", "Keys", "Logging"}
	for i, title := range titles {
		if _, err := rel.Insert(tx, dmx.Record{
			dmx.Int(int64(i)), dmx.Str(title), dmx.Str("article body for " + title),
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	s := db.Env.Obs.Snapshot().LSM
	fmt.Printf("   ingested %d articles: %d flushes, %d merge rounds so far\n",
		len(titles), s.Flushes, s.Compactions)

	// Secondary access paths attach to LSM relations like any other.
	mustExec(db, "CREATE INDEX bytitle ON encyclopedia (title)")

	fmt.Println("== readers query through the index ==")
	res, err := db.Exec("SELECT id, title FROM encyclopedia WHERE title = 'Codd'")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   lookup plan: %s\n", res.Explain)
	for _, row := range res.Rows {
		fmt.Println("  ", row)
	}

	fmt.Println("== revisions overlay, deletions tombstone ==")
	mustExec(db,
		"UPDATE encyclopedia SET body = 'revised article for Codd' WHERE id = 2",
		"DELETE FROM encyclopedia WHERE title = 'Aardvark'",
	)
	res, err = db.Exec("SELECT title FROM encyclopedia")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   %d articles visible; the deleted one is masked by its tombstone\n", len(res.Rows))

	fmt.Println("== a major merge folds every run and retires the tombstone ==")
	if err := rel.Storage().(interface{ CompactNow() error }).CompactNow(); err != nil {
		log.Fatal(err)
	}
	s = db.Env.Obs.Snapshot().LSM
	fmt.Printf("   %d runs resident, %d tombstones dropped\n", s.Runs, s.TombstonesDropped)
	res, err = db.Exec("SELECT body FROM encyclopedia WHERE id = 2")
	if err != nil || len(res.Rows) != 1 {
		log.Fatal(res, err)
	}
	fmt.Printf("   revision survived the merge: %s\n", res.Rows[0][0].S)
}

func mustExec(db *dmx.DB, stmts ...string) {
	if _, err := db.Exec(stmts...); err != nil {
		log.Fatal(err)
	}
}
