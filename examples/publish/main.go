// Command publish demonstrates the read-only "database publishing"
// storage method the paper motivates with optical disks: a reference
// relation is pressed once (append-only load), after which updates and
// deletes are refused by the medium while reads and index attachments
// work normally.
package main

import (
	"fmt"
	"log"

	"dmx"
)

func main() {
	db, err := dmx.Open(dmx.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	mustExec(db,
		"CREATE TABLE encyclopedia (id INT NOT NULL, title STRING, body STRING) USING append",
	)

	fmt.Println("== pressing the disk (the publishing load) ==")
	rel, err := db.Relation("encyclopedia")
	if err != nil {
		log.Fatal(err)
	}
	tx := db.Begin()
	titles := []string{"Aardvark", "Btrees", "Codd", "Databases", "Extensibility", "Filtering", "Guttman"}
	for i, title := range titles {
		if _, err := rel.Insert(tx, dmx.Record{
			dmx.Int(int64(i)), dmx.Str(title), dmx.Str("article body for " + title),
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   pressed %d articles\n", len(titles))

	// Secondary access paths can be attached to published media: the
	// index is maintained at press time and read-only thereafter.
	mustExec(db, "CREATE INDEX bytitle ON encyclopedia (title)")

	fmt.Println("== readers query the published relation ==")
	res, err := db.Exec("SELECT id, title FROM encyclopedia WHERE title = 'Codd'")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   lookup plan: %s\n", res.Explain)
	for _, row := range res.Rows {
		fmt.Println("  ", row)
	}

	fmt.Println("== the medium refuses modifications ==")
	if _, err := db.Exec("UPDATE encyclopedia SET title = 'Changed' WHERE id = 0"); err != nil {
		fmt.Println("   update refused:", err)
	}
	if _, err := db.Exec("DELETE FROM encyclopedia WHERE id = 0"); err != nil {
		fmt.Println("   delete refused:", err)
	}
	res, err = db.Exec("SELECT * FROM encyclopedia")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   still %d articles, untouched\n", len(res.Rows))
}

func mustExec(db *dmx.DB, stmts ...string) {
	if _, err := db.Exec(stmts...); err != nil {
		log.Fatal(err)
	}
}
