// Command bank exercises the integrity-constraint and trigger attachments
// on a small banking schema: referential integrity with cascading deletes
// (branch → account → movement), a deferred constraint checked before the
// transaction prepares, an audit trigger cascading modifications into a
// second relation, and a precomputed per-branch balance maintained by the
// aggregate attachment.
package main

import (
	"fmt"
	"log"

	"dmx"
	"dmx/internal/att/aggmv"
	"dmx/internal/core"
)

func main() {
	db, err := dmx.Open(dmx.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	db.RegisterTrigger("audit", func(env *dmx.Env, tx *dmx.Txn, ev dmx.TriggerEvent, rd *dmx.RelDesc, key dmx.Key, o, n dmx.Record) error {
		audit, err := env.OpenRelationByName("audit")
		if err != nil {
			return err
		}
		what := "change"
		if n == nil {
			what = "delete"
		} else if o == nil {
			what = "insert"
		}
		_, err = audit.Insert(tx, dmx.Record{dmx.Str(rd.Name), dmx.Str(what)})
		return err
	})

	mustExec(db,
		"CREATE TABLE audit (rel STRING, what STRING) USING append", // write-once audit medium
		"CREATE TABLE branch (bno INT NOT NULL, city STRING) USING memory",
		"CREATE TABLE account (ano INT NOT NULL, bno INT, balance FLOAT) USING btree WITH (key=ano)",
		"CREATE TABLE movement (mno INT NOT NULL, ano INT, amount FLOAT) USING heap",

		// Referential integrity: account.bno -> branch.bno with cascade,
		// movement.ano -> account.ano with cascade; child-side checks are
		// deferred so batch loads may insert children first.
		"CREATE ATTACHMENT refint ON account WITH (name=fk_acct, role=child, on=bno, peer=branch, peerkey=bno, timing=deferred)",
		"CREATE ATTACHMENT refint ON branch WITH (name=pk_branch, role=parent, on=bno, peer=account, peerkey=bno, action=cascade)",
		"CREATE ATTACHMENT refint ON movement WITH (name=fk_mov, role=child, on=ano, peer=account, peerkey=ano)",
		"CREATE ATTACHMENT refint ON account WITH (name=pk_acct, role=parent, on=ano, peer=movement, peerkey=ano, action=cascade)",

		// Precomputed per-branch balances and an audit trigger.
		"CREATE ATTACHMENT aggregate ON account WITH (name=branch_balance, group=bno, value=balance)",
		"CREATE ATTACHMENT trigger ON account WITH (name=acct_audit, call=audit)",
	)

	fmt.Println("== batch load (children before parents: the deferred check passes at commit) ==")
	mustExec(db,
		"BEGIN",
		"INSERT INTO account VALUES (100, 1, 500.0), (101, 1, 250.0), (102, 2, 900.0)",
		"INSERT INTO branch VALUES (1, 'Almaden'), (2, 'Toronto')",
		"INSERT INTO movement VALUES (9000, 100, 500.0), (9001, 101, 250.0), (9002, 102, 900.0)",
		"COMMIT",
	)

	printBalances(db)

	fmt.Println("== a dangling account is rejected when the transaction tries to commit ==")
	if _, err := db.Exec(
		"BEGIN",
		"INSERT INTO account VALUES (999, 42, 1.0)",
		"COMMIT",
	); err != nil {
		fmt.Println("   commit failed as expected:", err)
	}

	fmt.Println("== cascading delete: closing branch 1 removes its accounts and their movements ==")
	mustExec(db, "DELETE FROM branch WHERE bno = 1")
	for _, q := range []string{
		"SELECT * FROM branch",
		"SELECT ano FROM account",
		"SELECT mno FROM movement",
	} {
		res, err := db.Exec(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %-28s -> %d rows\n", q, len(res.Rows))
	}
	printBalances(db)

	res, err := db.Exec("SELECT * FROM audit")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== audit trail (append-only medium) has %d entries ==\n", len(res.Rows))
	for _, row := range res.Rows {
		fmt.Println("  ", row)
	}
}

// printBalances reads the precomputed per-branch aggregate directly from
// the attachment instance.
func printBalances(db *dmx.DB) {
	rel, err := db.Relation("account")
	if err != nil {
		log.Fatal(err)
	}
	instAny, err := db.Env.AttachmentInstance(rel.Desc(), core.AttAggMV)
	if err != nil {
		log.Fatal(err)
	}
	inst := instAny.(*aggmv.Instance)
	fmt.Println("   precomputed balances:")
	for _, bno := range []int64{1, 2} {
		sum, count, err := inst.Lookup("branch_balance", dmx.Int(bno))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("     branch %d: %8.2f across %d accounts\n", bno, sum, count)
	}
}

func mustExec(db *dmx.DB, stmts ...string) {
	if _, err := db.Exec(stmts...); err != nil {
		log.Fatal(err)
	}
}
