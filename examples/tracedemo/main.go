// Command tracedemo exercises the engine's observability surface end to
// end: it opens a fully-sampled database with a slow-span threshold, runs
// a small workload whose constraint attachment vetoes one insert, starts
// the debug HTTP server, and then reads its own /metrics, /traces, and
// /healthz endpoints — the same ones an operator would point a browser or
// a Prometheus scraper at. It exits non-zero if any endpoint misbehaves,
// so `make trace-demo` doubles as a smoke test.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"dmx"
	"dmx/internal/expr"
)

func main() {
	db, err := dmx.Open(dmx.Config{
		TraceSample:   1,                    // trace every transaction
		SlowThreshold: 5 * time.Millisecond, // slow spans land in the event log
		SlowLog:       os.Stderr,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// A relation with an index and a check constraint, so traced
	// transactions show storage-method, WAL, and attachment spans.
	db.RegisterCheckPredicate("positive_salary",
		expr.Gt(expr.Field(2), expr.Const(dmx.Float(0))))
	must(db.Exec(
		`CREATE TABLE emp (eno INT NOT NULL, dno INT, salary FLOAT) USING heap`,
		`CREATE INDEX byeno ON emp (eno)`,
		`CREATE ATTACHMENT check ON emp WITH (name=paid, predicate=positive_salary)`,
	))
	for i := 0; i < 50; i++ {
		must(db.Exec(fmt.Sprintf(`INSERT INTO emp VALUES (%d, %d, %d.0)`, i, i%5, 100+i)))
	}
	// One vetoed insert: the check attachment's rejection is recorded as a
	// veto-tagged span inside this transaction's trace.
	if _, err := db.Exec(`INSERT INTO emp VALUES (999, 1, -5.0)`); err == nil {
		log.Fatal("expected the check constraint to veto salary=-5")
	}
	must(db.Exec(`SELECT salary FROM emp WHERE eno = 17`))

	addr, err := db.Env.ServeDebug("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("debug server on http://%s\n\n", addr)

	metrics := get(addr, "/metrics")
	fmt.Println("== /metrics (excerpt) ==")
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "dmx_sm_ops_total") ||
			strings.HasPrefix(line, "dmx_att_vetoes_total") ||
			strings.HasPrefix(line, "dmx_trace_") {
			fmt.Println(line)
		}
	}
	if !strings.Contains(metrics, "dmx_att_vetoes_total") {
		log.Fatal("metrics missing the attachment veto counter")
	}

	traces := get(addr, "/traces?limit=1")
	var parsed struct {
		Traces []struct {
			Txn   uint64          `json:"txn"`
			State string          `json:"state"`
			Root  json.RawMessage `json:"root"`
		} `json:"traces"`
	}
	if err := json.Unmarshal([]byte(traces), &parsed); err != nil || len(parsed.Traces) == 0 {
		log.Fatalf("bad /traces response (%v): %s", err, traces)
	}
	fmt.Printf("\n== /traces?limit=1: txn %d (%s) ==\n%s\n",
		parsed.Traces[0].Txn, parsed.Traces[0].State, indentJSON(parsed.Traces[0].Root))

	health := get(addr, "/healthz")
	fmt.Printf("\n== /healthz ==\n%s\n", health)
	if !strings.Contains(health, `"ok": true`) {
		log.Fatal("healthz reports unhealthy")
	}
}

func must(res *dmx.Result, err error) {
	if err != nil {
		log.Fatal(err)
	}
	_ = res
}

func get(addr, path string) string {
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		log.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: %d\n%s", path, resp.StatusCode, body)
	}
	return string(body)
}

func indentJSON(raw json.RawMessage) string {
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return string(raw)
	}
	out, _ := json.MarshalIndent(v, "", "  ")
	return string(out)
}
