// Command federation demonstrates the foreign-database storage method:
// "another relation storage method might support access to a foreign
// database by simulating relation accesses via (remote) accesses to
// relations in the foreign database". A local relation and a remote one
// join transparently; the program reports the message traffic the remote
// accesses generate and shows that aborting a local transaction issues
// compensating operations against the foreign database.
package main

import (
	"fmt"
	"log"
	"time"

	"dmx"
)

func main() {
	db, err := dmx.Open(dmx.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// The "foreign DBMS": in-process, spoken to over a byte protocol with
	// 50µs of injected one-way latency per message.
	fed := dmx.NewForeignServer(50 * time.Microsecond)
	db.AttachForeignServer("warehouse", fed)

	mustExec(db,
		"CREATE TABLE products (pno INT NOT NULL, name STRING) USING memory",
		"CREATE TABLE stock (sno INT NOT NULL, pno INT, qty INT) USING remote WITH (server=warehouse, table=stock_levels)",
	)

	mustExec(db,
		"INSERT INTO products VALUES (1, 'widget'), (2, 'gadget'), (3, 'sprocket')",
	)
	before := fed.Messages.Load()
	mustExec(db,
		"INSERT INTO stock VALUES (100, 1, 7), (101, 2, 0), (102, 1, 3)",
	)
	fmt.Printf("loading 3 remote records took %d messages to the foreign database\n",
		fed.Messages.Load()-before)

	fmt.Println("== cross-database join (local products ⋈ remote stock) ==")
	before = fed.Messages.Load()
	res, err := db.Exec("SELECT products.name, stock.qty FROM products JOIN stock ON products.pno = stock.pno")
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Println("  ", row)
	}
	fmt.Printf("   join plan: %s (%d foreign messages)\n", res.Explain, fed.Messages.Load()-before)

	fmt.Println("== aborting a local transaction compensates remotely ==")
	mustExec(db, "BEGIN", "UPDATE stock SET qty = 0 WHERE pno = 1", "ROLLBACK")
	res, err = db.Exec("SELECT qty FROM stock WHERE pno = 1")
	if err != nil {
		log.Fatal(err)
	}
	total := int64(0)
	for _, row := range res.Rows {
		total += row[0].AsInt()
	}
	fmt.Printf("   stock for product 1 after rollback: %d (unchanged)\n", total)
}

func mustExec(db *dmx.DB, stmts ...string) {
	if _, err := db.Exec(stmts...); err != nil {
		log.Fatal(err)
	}
}
