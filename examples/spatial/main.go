// Command spatial demonstrates the application-specific access path the
// paper opens with: "spatial database applications can make use of an
// R-tree access path to efficiently compute certain spatial predicates".
//
// A parcels relation gets an R-tree attachment on its bounding-box
// column; ENCLOSES queries are answered through the R-tree, and the same
// query without the attachment falls back to a full scan — the program
// prints both plans and the record counts each path touched.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dmx"
)

func main() {
	db, err := dmx.Open(dmx.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	mustExec(db, "CREATE TABLE parcels (id INT NOT NULL, owner STRING, shape BYTES) USING memory")

	// Load a 100x100 city grid of parcels through the generic interface
	// (bulk loads skip the SQL parser).
	rel, err := db.Relation("parcels")
	if err != nil {
		log.Fatal(err)
	}
	tx := db.Begin()
	r := rand.New(rand.NewSource(1))
	const n = 10_000
	for i := 0; i < n; i++ {
		x := float64(i%100) * 10
		y := float64(i/100) * 10
		box := dmx.NewBox(x, y, x+5+r.Float64()*5, y+5+r.Float64()*5)
		if _, err := rel.Insert(tx, dmx.Record{
			dmx.Int(int64(i)), dmx.Str(fmt.Sprintf("owner-%d", i%97)), box.Value(),
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d parcels\n", n)

	query := "SELECT id, owner FROM parcels WHERE ENCLOSES(BOX(100,100,200,200), shape)"

	// Without the R-tree: full scan, predicate evaluated per record.
	res, err := db.Exec(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("without r-tree: %4d parcels inside, plan = %s\n", len(res.Rows), res.Explain)

	// With the R-tree attachment: the access path recognises ENCLOSES and
	// reports a low cost, so the planner re-translates to use it.
	mustExec(db, "CREATE ATTACHMENT rtree ON parcels WITH (name=space, on=shape)")
	res2, err := db.Exec(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with    r-tree: %4d parcels inside, plan = %s\n", len(res2.Rows), res2.Explain)

	if len(res.Rows) != len(res2.Rows) {
		log.Fatalf("access paths disagree: %d vs %d", len(res.Rows), len(res2.Rows))
	}

	// Spatial maintenance: moving a parcel relocates its R-tree entry.
	mustExec(db, "UPDATE parcels SET shape = BOX(150,150,160,160) WHERE id = 0")
	res3, err := db.Exec(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after moving parcel 0 into the window: %d parcels inside\n", len(res3.Rows))
}

func mustExec(db *dmx.DB, stmts ...string) {
	if _, err := db.Exec(stmts...); err != nil {
		log.Fatal(err)
	}
}
