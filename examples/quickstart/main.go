// Command quickstart reproduces the paper's Figure 1 scenario as a
// running program: an EMPLOYEE relation using the heap storage method with
// B-tree index and intra-record consistency constraint attachments. It
// walks the generic data management interfaces of Figure 2 — data
// definition with storage-method and attachment selection, relation
// modification with attached procedures, veto with log-driven undo, and
// query planning over the extensions' cost estimates.
package main

import (
	"fmt"
	"log"

	"dmx"
	"dmx/internal/expr"
)

func main() {
	db, err := dmx.Open(dmx.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// --- Figure 1: the EMPLOYEE relation, heap storage method, with
	// B-tree and intra-record consistency constraint attachments. ---
	fmt.Println("== DDL: storage method and attachments selected via USING / WITH ==")
	db.RegisterCheckPredicate("salary_band",
		expr.And(
			expr.Gt(expr.Field(2), expr.Const(dmx.Float(0))),
			expr.Lt(expr.Field(2), expr.Const(dmx.Float(1_000_000))),
		))
	mustExec(db,
		"CREATE TABLE employee (eno INT NOT NULL, name STRING NOT NULL, salary FLOAT, dept STRING) USING heap",
		"CREATE INDEX emp_eno ON employee (eno)",
		"CREATE INDEX emp_dept ON employee (dept)",
		"CREATE ATTACHMENT check ON employee WITH (name=salary_band, predicate=salary_band)",
		"CREATE ATTACHMENT stats ON employee",
	)

	fmt.Println("== Modifications: attached procedures maintain both indexes ==")
	mustExec(db,
		"INSERT INTO employee VALUES (1, 'Ada', 120000.0, 'eng'), (2, 'Bob', 95000.0, 'ops'), (3, 'Cyd', 130000.0, 'eng')",
	)

	// A modification violating the constraint is vetoed; the common
	// recovery log undoes the partial effects (heap insert + index
	// entries) and the transaction continues.
	fmt.Println("== Veto: the constraint attachment aborts a bad insert ==")
	if _, err := db.Exec("INSERT INTO employee VALUES (4, 'Eve', -5.0, 'eng')"); err != nil {
		fmt.Println("   vetoed as expected:", err)
	}

	fmt.Println("== Queries: the planner picks access paths by estimated cost ==")
	for _, q := range []string{
		"SELECT name, salary FROM employee WHERE eno = 2",
		"SELECT name FROM employee WHERE dept = 'eng'",
		"SELECT name FROM employee WHERE salary > 100000.0",
	} {
		res, err := db.Exec(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %-55s plan: %s\n", q, res.Explain)
		for _, row := range res.Rows {
			fmt.Println("     ", row)
		}
	}

	fmt.Println("== Transactions: savepoints drive partial rollback ==")
	mustExec(db,
		"BEGIN",
		"UPDATE employee SET salary = salary * 1.1 WHERE dept = 'eng'",
		"SAVEPOINT raises",
		"DELETE FROM employee WHERE dept = 'ops'",
		"ROLLBACK TO raises", // the delete is undone, the raises stay
		"COMMIT",
	)
	res, err := db.Exec("SELECT name, salary FROM employee")
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Println("  ", row)
	}
	fmt.Println("done: all three employees present, eng salaries raised")
}

func mustExec(db *dmx.DB, stmts ...string) {
	if _, err := db.Exec(stmts...); err != nil {
		log.Fatal(err)
	}
}
