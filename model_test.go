package dmx

import (
	"flag"
	"os"
	"strconv"
	"testing"

	"dmx/internal/core"
	"dmx/internal/model"
)

// -seed replays one generated workload instead of the whole range:
//
//	go test -run 'TestModel$' -seed=17
//	go test -run TestModelCrashRecovery -seed=3
var modelSeed = flag.Int64("seed", 0, "replay a single model-run seed (0 = full seed range)")

func envSeeds(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// runModelSeed drives one generated workload through the engine and the
// reference model in lockstep. On divergence it shrinks the workload to a
// minimal failing prefix and reports the seed, the replay command, and the
// reduced op script.
func runModelSeed(t *testing.T, seed int64, crash, ingest, part bool) {
	t.Helper()
	sc := model.Generate(model.GenConfig{Seed: seed, Ops: 120, Crash: crash, Ingest: ingest, Partitioned: part})
	run := func(ops []model.Op) *model.Divergence {
		rc := model.RunConfig{Fleet: sc.Fleet, Ops: ops}
		if crash {
			rc.Dir = t.TempDir()
		}
		return model.Run(rc)
	}
	div := run(sc.Ops)
	if div == nil {
		return
	}
	min, mdiv, runs := model.Shrink(sc.Ops, div.OpIndex, run, 300)
	name := "TestModel$"
	switch {
	case part && crash:
		name = "TestModelPartCrash"
	case part:
		name = "TestModelPart$"
	case ingest && crash:
		name = "TestModelIngestCrash"
	case ingest:
		name = "TestModelIngest$"
	case crash:
		name = "TestModelCrashRecovery"
	}
	t.Fatalf("seed %d: %v\nreplay: go test -run '%s' -seed=%d\nshrunk to %d ops in %d runs (divergence: %v):\n%s",
		seed, div, name, seed, len(min), runs, mdiv, model.Script(min))
}

// TestModel cross-checks the engine against the in-memory reference model
// over a range of seeded workloads (mixed DML, savepoints, DDL, and
// checkpoints across every storage method and attachment combination).
func TestModel(t *testing.T) {
	if *modelSeed != 0 {
		runModelSeed(t, *modelSeed, false, false, false)
		return
	}
	for seed := 1; seed <= envSeeds("DMX_MODEL_SEEDS", 40); seed++ {
		runModelSeed(t, int64(seed), false, false, false)
	}
}

// TestModelCrashRecovery runs file-backed workloads whose generator also
// arms crash injection sites: the environment is torn down mid-commit,
// reopened, recovered, and re-verified against the model's set of
// crash-consistent candidate states.
func TestModelCrashRecovery(t *testing.T) {
	if *modelSeed != 0 {
		runModelSeed(t, *modelSeed, true, false, false)
		return
	}
	for seed := 1; seed <= envSeeds("DMX_MODEL_CRASH_SEEDS", 12); seed++ {
		runModelSeed(t, int64(seed), true, false, false)
	}
}

// TestModelIngest soaks the differential model over the LSM storage
// method: ingest-biased workloads pour inserts, updates, deletes and
// tombstones into an append relation shaped (tiny memtable, minimum
// fanout, sync compaction) so flush and compaction boundaries are
// crossed many times per workload, and the engine is cross-checked
// against the reference oracle after every op.
func TestModelIngest(t *testing.T) {
	if *modelSeed != 0 {
		runModelSeed(t, *modelSeed, false, true, false)
		return
	}
	for seed := 1; seed <= envSeeds("DMX_INGEST_SEEDS", 15); seed++ {
		runModelSeed(t, int64(seed), false, true, false)
	}
}

// TestModelIngestCrash adds crash injection to the ingest soak: the
// generator draws the lsm.flush and lsm.compact sites alongside the WAL
// sites, so recovery replays tombstone-heavy histories into the memtable
// from half-flushed and half-compacted on-disk states, and the recovered
// engine is matched against the model's crash-consistent candidates.
func TestModelIngestCrash(t *testing.T) {
	if *modelSeed != 0 {
		runModelSeed(t, *modelSeed, true, true, false)
		return
	}
	for seed := 1; seed <= envSeeds("DMX_INGEST_CRASH_SEEDS", 8); seed++ {
		runModelSeed(t, int64(seed), true, true, false)
	}
}

// TestModelPart soaks the differential model over the partitioned storage
// method: relation x is hash-sharded across three foreign servers with a
// small scan batch, so every scan merges per-shard cursors across batch
// boundaries and nearly every commit runs two-phase across multiple
// shards, all cross-checked against the reference oracle after every op.
func TestModelPart(t *testing.T) {
	if *modelSeed != 0 {
		runModelSeed(t, *modelSeed, false, false, true)
		return
	}
	for seed := 1; seed <= envSeeds("DMX_PART_SEEDS", 15); seed++ {
		runModelSeed(t, int64(seed), false, false, true)
	}
}

// TestModelPartCrash adds crash injection to the partitioned soak: the
// generator draws the part.decide site alongside the WAL sites, landing
// crashes between shard prepare and the logged commit decision. Recovery
// reopens the environment over empty shard servers, replays the local log
// to repopulate them, resolves any transaction left in doubt (presumed
// abort), and the recovered state must match a crash-consistent candidate.
func TestModelPartCrash(t *testing.T) {
	if *modelSeed != 0 {
		runModelSeed(t, *modelSeed, true, false, true)
		return
	}
	for seed := 1; seed <= envSeeds("DMX_PART_CRASH_SEEDS", 8); seed++ {
		runModelSeed(t, int64(seed), true, false, true)
	}
}

// TestModelCatchesInjectedMutation is the harness's own canary: it
// deliberately breaks the engine — skipping the uniqueness constraint's
// notification on relation p, exactly the class of wiring bug the notify
// loop could regress into — and requires the differential runner to catch
// the divergence and shrink it to a short repro.
func TestModelCatchesInjectedMutation(t *testing.T) {
	skip := func(rel string, id core.AttID) bool {
		return rel == "p" && id == core.AttUnique
	}
	for seed := int64(1); seed <= 60; seed++ {
		sc := model.Generate(model.GenConfig{Seed: seed, Ops: 120})
		run := func(ops []model.Op) *model.Divergence {
			return model.Run(model.RunConfig{Fleet: sc.Fleet, Ops: ops, NotifySkip: skip})
		}
		div := run(sc.Ops)
		if div == nil {
			continue // this seed never exercised the broken path
		}
		min, mdiv, runs := model.Shrink(sc.Ops, div.OpIndex, run, 300)
		if mdiv == nil {
			t.Fatalf("seed %d: shrink lost the divergence", seed)
		}
		if len(min) > 10 {
			t.Fatalf("seed %d: shrunk repro has %d ops, want <= 10:\n%s", seed, len(min), model.Script(min))
		}
		t.Logf("seed %d: injected mutation caught (%v), shrunk to %d ops in %d runs:\n%s",
			seed, mdiv, len(min), runs, model.Script(min))
		return
	}
	t.Fatal("injected engine mutation was not caught by any seed")
}
