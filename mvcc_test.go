package dmx

import (
	"errors"
	"testing"

	"dmx/internal/core"
	"dmx/internal/txn"
	"dmx/internal/types"
)

// mvccDB opens an in-memory database with one heap relation t(id, v), a
// hash access path on id, and n committed seed rows. It returns the
// relation handle and the seed record keys in insert order.
func mvccDB(t *testing.T, n int) (*DB, *Relation, []Key) {
	t.Helper()
	db, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.Exec("CREATE TABLE t (id INT NOT NULL, v STRING) USING heap"); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if _, err := db.Env.CreateAttachment(tx, "t", "hash", core.AttrList{"name": "h", "on": "id"}); err != nil {
		t.Fatal(err)
	}
	rel, err := db.Relation("t")
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]Key, 0, n)
	for i := 0; i < n; i++ {
		k, err := rel.Insert(tx, Record{Int(int64(i)), Str("seed")})
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return db, rel, keys
}

func drainScan(t *testing.T, sc core.Scan) []Record {
	t.Helper()
	var out []Record
	for {
		_, rec, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, rec)
	}
}

// A read-only transaction reading a heap relation — fetch, full scan, and
// access-path lookup — must perform zero lock-manager acquisitions; that
// is the point of taking snapshot reads off the lock manager.
func TestReadOnlyZeroLockRequests(t *testing.T) {
	db, rel, keys := mvccDB(t, 8)

	ro := db.BeginReadOnly()
	before := db.Env.Obs.Lock.Requests.Load()
	if _, err := rel.Fetch(ro, keys[3], nil, nil); err != nil {
		t.Fatal(err)
	}
	sc, err := rel.OpenScan(ro, core.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := drainScan(t, sc); len(got) != 8 {
		t.Fatalf("scan returned %d records, want 8", len(got))
	}
	sc.Close()
	probe := types.Key(types.EncodeKeyValues(types.Int(3)))
	hits, err := rel.LookupAccess(ro, core.AttHash, 0, probe)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("hash lookup returned %d keys, want 1", len(hits))
	}
	if err := ro.Commit(); err != nil {
		t.Fatal(err)
	}
	after := db.Env.Obs.Lock.Requests.Load()
	if after != before {
		t.Fatalf("read-only transaction made %d lock requests, want 0", after-before)
	}
	if db.Env.Obs.MVCC.SnapshotReads.Load() == 0 {
		t.Fatal("snapshot-read counter did not move")
	}
}

// A snapshot that begins while an update is in flight keeps seeing the
// pre-update version — before the writer commits, after it commits, and
// through both fetch and scan. A snapshot begun after the commit sees the
// new version.
func TestSnapshotSeesPreUpdateState(t *testing.T) {
	db, rel, keys := mvccDB(t, 3)

	w := db.Begin()
	// "changed" is longer than "seed", so this update moves the record:
	// the old key dies and newKey is the record's address from now on.
	newKey, err := rel.Update(w, keys[1], Record{Int(1), Str("changed")})
	if err != nil {
		t.Fatal(err)
	}

	ro := db.BeginReadOnly()
	got, err := rel.Fetch(ro, keys[1], nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[1].S != "seed" {
		t.Fatalf("snapshot sees in-flight update: %v", got)
	}

	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	got, err = rel.Fetch(ro, keys[1], nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[1].S != "seed" {
		t.Fatalf("snapshot sees committed-after-begin update: %v", got)
	}
	sc, err := rel.OpenScan(ro, core.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range drainScan(t, sc) {
		if rec[1].S != "seed" {
			t.Fatalf("snapshot scan sees later commit: %v", rec)
		}
	}
	sc.Close()
	if err := ro.Commit(); err != nil {
		t.Fatal(err)
	}

	// A fresh snapshot sees the committed update at its new address; the
	// moved-from key is dead for it, exactly as for a locked reader.
	ro2 := db.BeginReadOnly()
	got, err = rel.Fetch(ro2, newKey, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[1].S != "changed" {
		t.Fatalf("fresh snapshot misses committed update: %v", got)
	}
	if _, err := rel.Fetch(ro2, keys[1], nil, nil); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("fresh snapshot resurrects moved-from slot: %v", err)
	}
	ro2.Commit()
}

// An in-place update (same encoded length) keeps the record's key: the
// old snapshot reconstructs the old value at that key, a fresh one reads
// the new value at the same key.
func TestSnapshotSeesPreUpdateStateInPlace(t *testing.T) {
	db, rel, keys := mvccDB(t, 2)

	ro := db.BeginReadOnly()
	w := db.Begin()
	nk, err := rel.Update(w, keys[0], Record{Int(0), Str("sood")})
	if err != nil {
		t.Fatal(err)
	}
	if !nk.Equal(keys[0]) {
		t.Fatalf("same-length update moved the record: %v -> %v", keys[0], nk)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	got, err := rel.Fetch(ro, keys[0], nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[1].S != "seed" {
		t.Fatalf("old snapshot sees in-place overwrite: %v", got)
	}
	ro.Commit()

	ro2 := db.BeginReadOnly()
	got, err = rel.Fetch(ro2, keys[0], nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[1].S != "sood" {
		t.Fatalf("fresh snapshot misses in-place overwrite: %v", got)
	}
	ro2.Commit()
}

// A snapshot that predates a committed delete keeps the row; a snapshot
// after the delete gets not-found.
func TestSnapshotSeesPreDeleteState(t *testing.T) {
	db, rel, keys := mvccDB(t, 2)

	ro := db.BeginReadOnly()
	w := db.Begin()
	if err := rel.Delete(w, keys[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	if _, err := rel.Fetch(ro, keys[0], nil, nil); err != nil {
		t.Fatalf("snapshot lost pre-delete row: %v", err)
	}
	ro.Commit()

	ro2 := db.BeginReadOnly()
	if _, err := rel.Fetch(ro2, keys[0], nil, nil); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("fresh snapshot still sees deleted row: %v", err)
	}
	ro2.Commit()
}

// A snapshot scan held open across another transaction's commit must not
// observe the new state mid-scan: it returns exactly the rows committed
// when the snapshot began.
func TestSnapshotScanAcrossConcurrentCommit(t *testing.T) {
	db, rel, keys := mvccDB(t, 6)

	ro := db.BeginReadOnly()
	sc, err := rel.OpenScan(ro, core.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Read part of the scan before the writer commits.
	for i := 0; i < 2; i++ {
		_, rec, ok, err := sc.Next()
		if err != nil || !ok {
			t.Fatalf("scan prefix: %v %v", ok, err)
		}
		if rec[1].S != "seed" {
			t.Fatalf("scan prefix sees %v", rec)
		}
	}

	w := db.Begin()
	if _, err := rel.Insert(w, Record{Int(100), Str("late")}); err != nil {
		t.Fatal(err)
	}
	if _, err := rel.Update(w, keys[4], Record{Int(4), Str("late")}); err != nil {
		t.Fatal(err)
	}
	if err := rel.Delete(w, keys[5]); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	rest := drainScan(t, sc)
	sc.Close()
	if len(rest) != 4 {
		t.Fatalf("scan tail has %d records, want the 4 remaining seed rows: %v", len(rest), rest)
	}
	for _, rec := range rest {
		if rec[1].S != "seed" {
			t.Fatalf("snapshot scan observed concurrent commit mid-scan: %v", rec)
		}
	}
	if err := ro.Commit(); err != nil {
		t.Fatal(err)
	}
}

// Ending a transaction with scans still open closes them exactly once:
// the end-of-transaction sweep must tolerate an explicit Close that
// already happened, and an explicit Close after the sweep must be a no-op
// rather than a double release.
func TestAbortWithOpenScansNoDoubleClose(t *testing.T) {
	db, rel, _ := mvccDB(t, 4)

	w := db.Begin()
	s1, err := rel.OpenScan(w, core.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := rel.OpenScan(w, core.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s1.Next(); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}
	// Both orders of explicit-close vs sweep must already be settled.
	if err := s1.Close(); err != nil {
		t.Fatalf("re-close after abort sweep: %v", err)
	}
	if err := s2.Close(); err != nil {
		t.Fatalf("close after abort sweep: %v", err)
	}

	ro := db.BeginReadOnly()
	s3, err := rel.OpenScan(ro, core.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s3.Next(); err != nil {
		t.Fatal(err)
	}
	if err := ro.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s3.Close(); err != nil {
		t.Fatalf("close after read-only commit sweep: %v", err)
	}
}

// Read-only transactions refuse every modification with txn.ErrReadOnly.
func TestReadOnlyRejectsWrites(t *testing.T) {
	db, rel, keys := mvccDB(t, 1)

	ro := db.BeginReadOnly()
	if _, err := rel.Insert(ro, Record{Int(9), Str("x")}); !errors.Is(err, txn.ErrReadOnly) {
		t.Fatalf("insert: %v", err)
	}
	if _, err := rel.Update(ro, keys[0], Record{Int(0), Str("x")}); !errors.Is(err, txn.ErrReadOnly) {
		t.Fatalf("update: %v", err)
	}
	if err := rel.Delete(ro, keys[0]); !errors.Is(err, txn.ErrReadOnly) {
		t.Fatalf("delete: %v", err)
	}
	if _, err := ro.Savepoint("s"); !errors.Is(err, txn.ErrReadOnly) {
		t.Fatalf("savepoint: %v", err)
	}
	if err := ro.Commit(); err != nil {
		t.Fatal(err)
	}
}

// A writing transaction reads its own uncommitted writes through the
// ordinary (locked, current-state) path.
func TestWriterReadsOwnUncommittedWrites(t *testing.T) {
	db, rel, keys := mvccDB(t, 2)

	w := db.Begin()
	nk, err := rel.Insert(w, Record{Int(50), Str("mine")})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := rel.Fetch(w, nk, nil, nil); err != nil || got[1].S != "mine" {
		t.Fatalf("own insert readback: %v %v", got, err)
	}
	uk, err := rel.Update(w, keys[0], Record{Int(0), Str("mine2")})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := rel.Fetch(w, uk, nil, nil); err != nil || got[1].S != "mine2" {
		t.Fatalf("own update readback: %v %v", got, err)
	}
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}
}
