package types

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindInt: "INT", KindFloat: "FLOAT",
		KindString: "STRING", KindBytes: "BYTES", KindBool: "BOOL",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestKindFromString(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kind
	}{
		{"int", KindInt}, {"INTEGER", KindInt}, {"bigint", KindInt},
		{"float", KindFloat}, {"DOUBLE", KindFloat},
		{"string", KindString}, {"VARCHAR", KindString}, {"text", KindString},
		{"bytes", KindBytes}, {"BLOB", KindBytes},
		{"bool", KindBool}, {"BOOLEAN", KindBool},
	} {
		got, err := KindFromString(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("KindFromString(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := KindFromString("pointer"); err == nil {
		t.Error("KindFromString(pointer) should fail")
	}
}

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Error("Null() not null")
	}
	if Int(7).AsInt() != 7 {
		t.Error("Int round trip")
	}
	if Float(2.5).AsFloat() != 2.5 {
		t.Error("Float round trip")
	}
	if Str("hi").S != "hi" {
		t.Error("Str round trip")
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("Bool round trip")
	}
	if Float(3.9).AsInt() != 3 {
		t.Error("AsInt truncation")
	}
	if Int(4).AsFloat() != 4.0 {
		t.Error("AsFloat widening")
	}
	if Null().AsInt() != 0 || Null().AsFloat() != 0 || Null().AsBool() {
		t.Error("NULL accessors should be zero")
	}
}

func TestValueString(t *testing.T) {
	for _, tc := range []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Int(-3), "-3"},
		{Float(1.5), "1.5"},
		{Str("a\"b"), `"a\"b"`},
		{Bytes([]byte{0xde, 0xad}), "x'dead'"},
		{Bool(true), "TRUE"},
		{Bool(false), "FALSE"},
	} {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("%#v.String() = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestCompare(t *testing.T) {
	for _, tc := range []struct {
		a, b Value
		want int
	}{
		{Null(), Null(), 0},
		{Null(), Int(0), -1},
		{Int(0), Null(), 1},
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Float(1.5), Float(2.5), -1},
		{Int(2), Float(2.5), -1}, // cross-numeric
		{Float(2.0), Int(2), 0},  // cross-numeric equality
		{Str("a"), Str("b"), -1},
		{Str("ab"), Str("a"), 1},
		{Bytes([]byte{1}), Bytes([]byte{1, 0}), -1},
		{Bool(false), Bool(true), -1},
		{Int(5), Str("5"), -1}, // cross-kind: kind tag order
	} {
		if got := Compare(tc.a, tc.b); got != tc.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
	if !Equal(Int(9), Int(9)) || Equal(Int(9), Int(8)) {
		t.Error("Equal broken")
	}
}

func randValue(r *rand.Rand) Value {
	switch r.Intn(6) {
	case 0:
		return Null()
	case 1:
		return Int(r.Int63() - r.Int63())
	case 2:
		return Float(r.NormFloat64() * 1e6)
	case 3:
		b := make([]byte, r.Intn(20))
		r.Read(b)
		return Str(string(b))
	case 4:
		b := make([]byte, r.Intn(20))
		r.Read(b)
		return Bytes(b)
	default:
		return Bool(r.Intn(2) == 0)
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		v := randValue(r)
		enc := v.AppendEncode(nil)
		got, n, err := DecodeValue(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if n != len(enc) {
			t.Fatalf("decode %v consumed %d of %d", v, n, len(enc))
		}
		if !Equal(v, got) {
			t.Fatalf("round trip %v -> %v", v, got)
		}
	}
}

func TestOrderedEncodeRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for i := 0; i < 2000; i++ {
		v := randValue(r)
		enc := v.AppendOrderedEncode(nil)
		got, n, err := DecodeOrderedValue(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if n != len(enc) {
			t.Fatalf("decode %v consumed %d of %d", v, n, len(enc))
		}
		if !Equal(v, got) {
			t.Fatalf("ordered round trip %v -> %v", v, got)
		}
	}
}

// TestOrderedEncodePreservesOrder is the core ordered-encoding invariant:
// byte comparison of encodings must agree with Compare for same-kind values.
func TestOrderedEncodePreservesOrder(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	for i := 0; i < 5000; i++ {
		a, b := randValue(r), randValue(r)
		if a.K != b.K && !numericKinds(a.K, b.K) {
			continue
		}
		if a.K == KindFloat || b.K == KindFloat {
			// cross INT/FLOAT byte encodings are not comparable unless same kind
			if a.K != b.K {
				continue
			}
		}
		ea := Key(a.AppendOrderedEncode(nil))
		eb := Key(b.AppendOrderedEncode(nil))
		want := Compare(a, b)
		if got := ea.Compare(eb); got != want {
			t.Fatalf("order mismatch %v vs %v: bytes %d, Compare %d", a, b, got, want)
		}
	}
}

func TestOrderedEncodeIntBoundaries(t *testing.T) {
	vals := []int64{math.MinInt64, -1, 0, 1, math.MaxInt64}
	var prev Key
	for i, x := range vals {
		enc := Key(Int(x).AppendOrderedEncode(nil))
		if i > 0 && prev.Compare(enc) >= 0 {
			t.Fatalf("ordered int %d not > previous", x)
		}
		prev = enc
	}
}

func TestOrderedEncodeFloatSpecials(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -1, -math.SmallestNonzeroFloat64, 0, math.SmallestNonzeroFloat64, 1, 1e300, math.Inf(1)}
	var prev Key
	for i, x := range vals {
		enc := Key(Float(x).AppendOrderedEncode(nil))
		if i > 0 && prev.Compare(enc) >= 0 {
			t.Fatalf("ordered float %g not > previous", x)
		}
		prev = enc
	}
}

func TestOrderedStringZeroBytes(t *testing.T) {
	// Strings containing 0x00 must round-trip and order correctly.
	a := Str("a\x00")
	b := Str("a\x00\x00")
	c := Str("a\x01")
	ea := Key(a.AppendOrderedEncode(nil))
	eb := Key(b.AppendOrderedEncode(nil))
	ec := Key(c.AppendOrderedEncode(nil))
	if ea.Compare(eb) != -1 || eb.Compare(ec) != -1 {
		t.Fatalf("zero-byte ordering broken: %v %v %v", ea, eb, ec)
	}
	for _, v := range []Value{a, b, c} {
		got, _, err := DecodeOrderedValue(v.AppendOrderedEncode(nil))
		if err != nil || !Equal(v, got) {
			t.Fatalf("round trip %v: got %v err %v", v, got, err)
		}
	}
}

func TestDecodeValueErrors(t *testing.T) {
	cases := [][]byte{
		{},                                  // empty
		{byte(KindInt)},                     // truncated int
		{byte(KindString), 0},               // truncated length
		{byte(KindString), 0, 0, 0, 5, 'a'}, // truncated body
		{99},                                // bad kind
	}
	for i, b := range cases {
		if _, _, err := DecodeValue(b); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestDecodeOrderedValueErrors(t *testing.T) {
	cases := [][]byte{
		{},
		{byte(KindFloat), 0},
		{byte(KindString), 'a'},        // unterminated
		{byte(KindString), 0x00, 0x7F}, // bad escape
		{77},
	}
	for i, b := range cases {
		if _, _, err := DecodeOrderedValue(b); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestQuickIntOrderedEncoding(t *testing.T) {
	f := func(a, b int64) bool {
		ea := Key(Int(a).AppendOrderedEncode(nil))
		eb := Key(Int(b).AppendOrderedEncode(nil))
		return ea.Compare(eb) == cmpInt(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickStringOrderedEncoding(t *testing.T) {
	f := func(a, b string) bool {
		ea := Key(Str(a).AppendOrderedEncode(nil))
		eb := Key(Str(b).AppendOrderedEncode(nil))
		return ea.Compare(eb) == Compare(Str(a), Str(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickValueEncodeRoundTrip(t *testing.T) {
	f := func(i int64, s string, bs []byte, b bool) bool {
		for _, v := range []Value{Int(i), Str(s), Bytes(bs), Bool(b), Null()} {
			enc := v.AppendEncode(nil)
			got, n, err := DecodeValue(enc)
			if err != nil || n != len(enc) || !Equal(v, got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

var _ = reflect.DeepEqual // keep reflect import if unused paths change
