// Package types defines the common record and field value representations
// shared by all storage method and attachment extensions.
//
// The extension architecture requires that every extension communicate
// through a single record and field-value convention (the paper's "most
// obvious interface convention"). Value is that convention: a small tagged
// union covering the field kinds the data definition language admits.
// Record is an ordered slice of Values matching a Schema, and Key is the
// opaque record-key representation whose definition and interpretation is
// controlled by the owning storage method.
package types

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the field value kinds supported by the common record
// representation.
type Kind uint8

// Supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBytes
	KindBool
)

// String returns the DDL spelling of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindBytes:
		return "BYTES"
	case KindBool:
		return "BOOL"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// KindFromString parses a DDL type name into a Kind.
func KindFromString(s string) (Kind, error) {
	switch strings.ToUpper(s) {
	case "INT", "INTEGER", "BIGINT":
		return KindInt, nil
	case "FLOAT", "DOUBLE", "REAL":
		return KindFloat, nil
	case "STRING", "TEXT", "VARCHAR", "CHAR":
		return KindString, nil
	case "BYTES", "BLOB":
		return KindBytes, nil
	case "BOOL", "BOOLEAN":
		return KindBool, nil
	default:
		return KindNull, fmt.Errorf("types: unknown type name %q", s)
	}
}

// Value is a single field value in the common representation. The zero
// Value is NULL.
type Value struct {
	K Kind
	I int64
	F float64
	S string
	B []byte
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an INT value.
func Int(i int64) Value { return Value{K: KindInt, I: i} }

// Float returns a FLOAT value.
func Float(f float64) Value { return Value{K: KindFloat, F: f} }

// Str returns a STRING value.
func Str(s string) Value { return Value{K: KindString, S: s} }

// Bytes returns a BYTES value. The slice is not copied.
func Bytes(b []byte) Value { return Value{K: KindBytes, B: b} }

// Bool returns a BOOL value.
func Bool(b bool) Value {
	v := Value{K: KindBool}
	if b {
		v.I = 1
	}
	return v
}

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// AsBool reports the truth value of a BOOL Value; non-BOOL values are false.
func (v Value) AsBool() bool { return v.K == KindBool && v.I != 0 }

// AsInt returns the integer content of an INT or BOOL value, converting
// FLOAT by truncation. NULL and other kinds return 0.
func (v Value) AsInt() int64 {
	switch v.K {
	case KindInt, KindBool:
		return v.I
	case KindFloat:
		return int64(v.F)
	default:
		return 0
	}
}

// AsFloat returns the numeric content as a float64.
func (v Value) AsFloat() float64 {
	switch v.K {
	case KindInt, KindBool:
		return float64(v.I)
	case KindFloat:
		return v.F
	default:
		return 0
	}
}

// String renders the value for display and error messages.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.S)
	case KindBytes:
		return fmt.Sprintf("x'%x'", v.B)
	case KindBool:
		if v.I != 0 {
			return "TRUE"
		}
		return "FALSE"
	default:
		return fmt.Sprintf("Value(kind=%d)", uint8(v.K))
	}
}

// numericKinds reports whether both kinds are numeric (INT or FLOAT), in
// which case comparison coerces to float64.
func numericKinds(a, b Kind) bool {
	return (a == KindInt || a == KindFloat) && (b == KindInt || b == KindFloat)
}

// Compare orders two values. NULL sorts before every non-NULL value; INT
// and FLOAT compare numerically with each other; otherwise comparing
// values of different kinds orders by kind tag (a total order is required
// for B-tree keys). Returns -1, 0, or +1.
func Compare(a, b Value) int {
	if a.K == KindNull || b.K == KindNull {
		switch {
		case a.K == b.K:
			return 0
		case a.K == KindNull:
			return -1
		default:
			return 1
		}
	}
	if a.K != b.K {
		if numericKinds(a.K, b.K) {
			return cmpFloat(a.AsFloat(), b.AsFloat())
		}
		return cmpInt(int64(a.K), int64(b.K))
	}
	switch a.K {
	case KindInt, KindBool:
		return cmpInt(a.I, b.I)
	case KindFloat:
		return cmpFloat(a.F, b.F)
	case KindString:
		return strings.Compare(a.S, b.S)
	case KindBytes:
		return cmpBytes(a.B, b.B)
	default:
		return 0
	}
}

// Equal reports whether two values compare equal.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return cmpInt(int64(len(a)), int64(len(b)))
}

// AppendEncode appends a self-delimiting binary encoding of v to dst and
// returns the extended slice. The encoding is used by the WAL, the catalog,
// and storage methods; DecodeValue reverses it.
func (v Value) AppendEncode(dst []byte) []byte {
	dst = append(dst, byte(v.K))
	switch v.K {
	case KindNull:
	case KindInt, KindBool:
		dst = binary.BigEndian.AppendUint64(dst, uint64(v.I))
	case KindFloat:
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v.F))
	case KindString:
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(v.S)))
		dst = append(dst, v.S...)
	case KindBytes:
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(v.B)))
		dst = append(dst, v.B...)
	}
	return dst
}

// DecodeValue decodes one value from b, returning the value and the number
// of bytes consumed.
func DecodeValue(b []byte) (Value, int, error) {
	if len(b) < 1 {
		return Value{}, 0, fmt.Errorf("types: truncated value")
	}
	k := Kind(b[0])
	switch k {
	case KindNull:
		return Value{}, 1, nil
	case KindInt, KindBool:
		if len(b) < 9 {
			return Value{}, 0, fmt.Errorf("types: truncated %v", k)
		}
		return Value{K: k, I: int64(binary.BigEndian.Uint64(b[1:]))}, 9, nil
	case KindFloat:
		if len(b) < 9 {
			return Value{}, 0, fmt.Errorf("types: truncated FLOAT")
		}
		return Float(math.Float64frombits(binary.BigEndian.Uint64(b[1:]))), 9, nil
	case KindString, KindBytes:
		if len(b) < 5 {
			return Value{}, 0, fmt.Errorf("types: truncated %v header", k)
		}
		n := int(binary.BigEndian.Uint32(b[1:]))
		if len(b) < 5+n {
			return Value{}, 0, fmt.Errorf("types: truncated %v body (want %d bytes)", k, n)
		}
		if k == KindString {
			return Str(string(b[5 : 5+n])), 5 + n, nil
		}
		body := make([]byte, n)
		copy(body, b[5:5+n])
		return Bytes(body), 5 + n, nil
	default:
		return Value{}, 0, fmt.Errorf("types: bad value kind %d", b[0])
	}
}

// AppendOrderedEncode appends an order-preserving encoding of v to dst:
// byte-wise comparison of two encodings agrees with Compare. Storage
// methods and access paths use it to compose record and index keys.
func (v Value) AppendOrderedEncode(dst []byte) []byte {
	dst = append(dst, byte(v.K))
	switch v.K {
	case KindNull:
	case KindInt, KindBool:
		// Flip the sign bit so negative values sort below positive.
		dst = binary.BigEndian.AppendUint64(dst, uint64(v.I)^(1<<63))
	case KindFloat:
		bits := math.Float64bits(v.F)
		if bits&(1<<63) != 0 {
			bits = ^bits // negative floats: invert all bits
		} else {
			bits ^= 1 << 63 // positive floats: flip sign bit
		}
		dst = binary.BigEndian.AppendUint64(dst, bits)
	case KindString:
		dst = appendEscaped(dst, []byte(v.S))
	case KindBytes:
		dst = appendEscaped(dst, v.B)
	}
	return dst
}

// appendEscaped writes b with 0x00 escaped as 0x00 0xFF and terminated by
// 0x00 0x00, preserving prefix ordering for variable-length values.
func appendEscaped(dst, b []byte) []byte {
	for _, c := range b {
		if c == 0x00 {
			dst = append(dst, 0x00, 0xFF)
		} else {
			dst = append(dst, c)
		}
	}
	return append(dst, 0x00, 0x00)
}

// DecodeOrderedValue decodes one order-preserving encoded value from b,
// returning the value and bytes consumed.
func DecodeOrderedValue(b []byte) (Value, int, error) {
	if len(b) < 1 {
		return Value{}, 0, fmt.Errorf("types: truncated ordered value")
	}
	k := Kind(b[0])
	switch k {
	case KindNull:
		return Value{}, 1, nil
	case KindInt, KindBool:
		if len(b) < 9 {
			return Value{}, 0, fmt.Errorf("types: truncated ordered %v", k)
		}
		u := binary.BigEndian.Uint64(b[1:]) ^ (1 << 63)
		return Value{K: k, I: int64(u)}, 9, nil
	case KindFloat:
		if len(b) < 9 {
			return Value{}, 0, fmt.Errorf("types: truncated ordered FLOAT")
		}
		bits := binary.BigEndian.Uint64(b[1:])
		if bits&(1<<63) != 0 {
			bits ^= 1 << 63
		} else {
			bits = ^bits
		}
		return Float(math.Float64frombits(bits)), 9, nil
	case KindString, KindBytes:
		body, n, err := decodeEscaped(b[1:])
		if err != nil {
			return Value{}, 0, err
		}
		if k == KindString {
			return Str(string(body)), 1 + n, nil
		}
		return Bytes(body), 1 + n, nil
	default:
		return Value{}, 0, fmt.Errorf("types: bad ordered value kind %d", b[0])
	}
}

func decodeEscaped(b []byte) ([]byte, int, error) {
	var out []byte
	for i := 0; i < len(b); {
		c := b[i]
		if c != 0x00 {
			out = append(out, c)
			i++
			continue
		}
		if i+1 >= len(b) {
			return nil, 0, fmt.Errorf("types: truncated escaped sequence")
		}
		switch b[i+1] {
		case 0x00:
			return out, i + 2, nil
		case 0xFF:
			out = append(out, 0x00)
			i += 2
		default:
			return nil, 0, fmt.Errorf("types: bad escape byte %#x", b[i+1])
		}
	}
	return nil, 0, fmt.Errorf("types: unterminated escaped sequence")
}
