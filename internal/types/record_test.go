package types

import (
	"math/rand"
	"testing"
)

func empSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Column{Name: "id", Kind: KindInt, NotNull: true},
		Column{Name: "name", Kind: KindString, NotNull: true},
		Column{Name: "salary", Kind: KindFloat},
		Column{Name: "active", Kind: KindBool},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchemaRejectsDuplicates(t *testing.T) {
	_, err := NewSchema(Column{Name: "a", Kind: KindInt}, Column{Name: "A", Kind: KindInt})
	if err == nil {
		t.Fatal("duplicate (case-insensitive) column names accepted")
	}
	_, err = NewSchema(Column{Name: "", Kind: KindInt})
	if err == nil {
		t.Fatal("empty column name accepted")
	}
}

func TestColIndex(t *testing.T) {
	s := empSchema(t)
	if s.ColIndex("name") != 1 || s.ColIndex("NAME") != 1 {
		t.Error("ColIndex case-insensitive lookup failed")
	}
	if s.ColIndex("nope") != -1 {
		t.Error("missing column should be -1")
	}
	if s.NumCols() != 4 {
		t.Error("NumCols")
	}
}

func TestSchemaValidate(t *testing.T) {
	s := empSchema(t)
	good := Record{Int(1), Str("bob"), Float(10.5), Bool(true)}
	if err := s.Validate(good); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	withNull := Record{Int(1), Str("bob"), Null(), Null()}
	if err := s.Validate(withNull); err != nil {
		t.Fatalf("nullable NULLs rejected: %v", err)
	}
	for _, bad := range []Record{
		{Int(1), Str("bob")},                 // arity
		{Null(), Str("bob"), Null(), Null()}, // NULL in NOT NULL
		{Int(1), Int(5), Null(), Null()},     // kind mismatch
		{Int(1), Str("b"), Str("x"), Null()}, // kind mismatch float col
	} {
		if err := s.Validate(bad); err == nil {
			t.Errorf("invalid record accepted: %v", bad)
		}
	}
}

func TestSchemaEncodeDecode(t *testing.T) {
	s := empSchema(t)
	enc := s.AppendEncode(nil)
	got, n, err := DecodeSchema(enc)
	if err != nil || n != len(enc) {
		t.Fatalf("decode: %v (n=%d/%d)", err, n, len(enc))
	}
	if got.NumCols() != s.NumCols() {
		t.Fatal("column count mismatch")
	}
	for i := range s.Cols {
		if got.Cols[i] != s.Cols[i] {
			t.Errorf("col %d: %+v != %+v", i, got.Cols[i], s.Cols[i])
		}
	}
	if _, _, err := DecodeSchema([]byte{0}); err == nil {
		t.Error("truncated schema accepted")
	}
}

func TestRecordCloneIsDeep(t *testing.T) {
	r := Record{Bytes([]byte{1, 2, 3}), Str("x")}
	c := r.Clone()
	c[0].B[0] = 9
	if r[0].B[0] != 1 {
		t.Fatal("Clone shared BYTES backing array")
	}
	if !r.Equal(Record{Bytes([]byte{1, 2, 3}), Str("x")}) {
		t.Fatal("original mutated")
	}
}

func TestRecordEqualAndProject(t *testing.T) {
	r := Record{Int(1), Str("a"), Float(2)}
	if !r.Equal(Record{Int(1), Str("a"), Float(2)}) {
		t.Error("Equal false negative")
	}
	if r.Equal(Record{Int(1), Str("a")}) {
		t.Error("Equal arity false positive")
	}
	if r.Equal(Record{Int(1), Str("b"), Float(2)}) {
		t.Error("Equal value false positive")
	}
	p := r.Project([]int{2, 0})
	if !p.Equal(Record{Float(2), Int(1)}) {
		t.Errorf("Project = %v", p)
	}
}

func TestRecordString(t *testing.T) {
	r := Record{Int(1), Str("a")}
	if got := r.String(); got != `(1, "a")` {
		t.Errorf("String = %q", got)
	}
}

func TestRecordEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		rec := make(Record, r.Intn(8))
		for j := range rec {
			rec[j] = randValue(r)
		}
		enc := rec.AppendEncode(nil)
		got, n, err := DecodeRecord(enc)
		if err != nil || n != len(enc) {
			t.Fatalf("decode: %v (n=%d/%d)", err, n, len(enc))
		}
		if !rec.Equal(got) {
			t.Fatalf("round trip %v -> %v", rec, got)
		}
	}
	if _, _, err := DecodeRecord([]byte{0, 3, byte(KindInt)}); err == nil {
		t.Error("truncated record accepted")
	}
	if _, _, err := DecodeRecord(nil); err == nil {
		t.Error("empty record buffer accepted")
	}
}

func TestKeyHelpers(t *testing.T) {
	k := EncodeKeyValues(Int(5), Str("x"))
	k2 := EncodeKeyValues(Int(5), Str("x"))
	if !k.Equal(k2) {
		t.Fatal("deterministic key encoding broken")
	}
	vals, err := DecodeKeyValues(k)
	if err != nil || len(vals) != 2 || !Equal(vals[0], Int(5)) || !Equal(vals[1], Str("x")) {
		t.Fatalf("DecodeKeyValues = %v, %v", vals, err)
	}
	c := k.Clone()
	c[0] = 0xFF
	if k.Equal(c) {
		t.Fatal("Clone not independent")
	}
	if k.String() == "" {
		t.Fatal("String empty")
	}
	rec := Record{Int(1), Str("b"), Int(3)}
	kf := EncodeKeyFields(rec, []int{2, 1})
	want := EncodeKeyValues(Int(3), Str("b"))
	if !kf.Equal(want) {
		t.Fatal("EncodeKeyFields mismatch")
	}
}

func TestKeyOrderingComposite(t *testing.T) {
	// Composite keys must order field-by-field.
	a := EncodeKeyValues(Int(1), Str("z"))
	b := EncodeKeyValues(Int(2), Str("a"))
	if a.Compare(b) != -1 {
		t.Fatal("composite key ordering broken")
	}
	c := EncodeKeyValues(Int(1), Str("a"))
	if c.Compare(a) != -1 {
		t.Fatal("second field ordering broken")
	}
}

func TestDecodeRecordFields(t *testing.T) {
	rec := Record{Int(7), Str("skip-me"), Float(2.5), Bytes([]byte{1, 2}), Null()}
	enc := rec.AppendEncode(nil)

	got, _, err := DecodeRecordFields(enc, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rec) {
		t.Fatalf("arity = %d", len(got))
	}
	if !Equal(got[0], Int(7)) || !Equal(got[2], Float(2.5)) {
		t.Fatalf("requested fields = %v", got)
	}
	if !got[1].IsNull() || !got[3].IsNull() {
		t.Fatal("non-requested fields should be NULL placeholders")
	}

	// Empty field set: nothing materialised.
	got, _, err = DecodeRecordFields(enc, nil)
	if err != nil || len(got) != len(rec) {
		t.Fatalf("empty fields: %v %v", got, err)
	}
	// Last field requested: all prior fields skipped, value correct.
	got, _, err = DecodeRecordFields(enc, []int{4})
	if err != nil || !got[4].IsNull() {
		t.Fatalf("last field: %v %v", got, err)
	}
	got, _, err = DecodeRecordFields(enc, []int{3})
	if err != nil || !Equal(got[3], Bytes([]byte{1, 2})) {
		t.Fatalf("bytes field: %v %v", got, err)
	}
	// Errors on corrupt input.
	if _, _, err := DecodeRecordFields(nil, []int{0}); err == nil {
		t.Error("nil input accepted")
	}
	if _, _, err := DecodeRecordFields(enc[:5], []int{2}); err == nil {
		t.Error("truncated input accepted")
	}
}

func TestDecodeRecordFieldsMatchesFullDecodeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for i := 0; i < 300; i++ {
		rec := make(Record, 1+r.Intn(8))
		for j := range rec {
			rec[j] = randValue(r)
		}
		enc := rec.AppendEncode(nil)
		// A random subset of fields.
		var fields []int
		for j := range rec {
			if r.Intn(2) == 0 {
				fields = append(fields, j)
			}
		}
		got, _, err := DecodeRecordFields(enc, fields)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		for _, f := range fields {
			if !Equal(got[f], rec[f]) {
				t.Fatalf("field %d: %v != %v", f, got[f], rec[f])
			}
		}
	}
}
