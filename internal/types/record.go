package types

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Column describes one field of a relation.
type Column struct {
	Name    string
	Kind    Kind
	NotNull bool
}

// Schema is the ordered column list of a relation. Schemas are shared by
// all extensions touching a relation; a Schema value is immutable after
// construction.
type Schema struct {
	Cols   []Column
	byName map[string]int
}

// NewSchema builds a schema from the given columns. Column names must be
// unique (case-insensitive).
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{Cols: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		key := strings.ToLower(c.Name)
		if key == "" {
			return nil, fmt.Errorf("types: column %d has empty name", i)
		}
		if _, dup := s.byName[key]; dup {
			return nil, fmt.Errorf("types: duplicate column name %q", c.Name)
		}
		s.byName[key] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for tests and examples.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumCols returns the number of columns.
func (s *Schema) NumCols() int { return len(s.Cols) }

// ColIndex returns the index of the named column, or -1.
func (s *Schema) ColIndex(name string) int {
	if i, ok := s.byName[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// Validate checks that rec conforms to the schema: arity, kind (NULL is
// admissible unless NotNull), and NOT NULL constraints.
func (s *Schema) Validate(rec Record) error {
	if len(rec) != len(s.Cols) {
		return fmt.Errorf("types: record has %d fields, schema has %d", len(rec), len(s.Cols))
	}
	for i, v := range rec {
		c := s.Cols[i]
		if v.K == KindNull {
			if c.NotNull {
				return fmt.Errorf("types: NULL in NOT NULL column %q", c.Name)
			}
			continue
		}
		if v.K != c.Kind {
			return fmt.Errorf("types: column %q wants %v, got %v", c.Name, c.Kind, v.K)
		}
	}
	return nil
}

// AppendEncode appends a binary encoding of the schema to dst.
func (s *Schema) AppendEncode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s.Cols)))
	for _, c := range s.Cols {
		dst = append(dst, byte(c.Kind))
		if c.NotNull {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(c.Name)))
		dst = append(dst, c.Name...)
	}
	return dst
}

// DecodeSchema decodes a schema from b, returning the schema and bytes
// consumed.
func DecodeSchema(b []byte) (*Schema, int, error) {
	if len(b) < 2 {
		return nil, 0, fmt.Errorf("types: truncated schema")
	}
	n := int(binary.BigEndian.Uint16(b))
	pos := 2
	cols := make([]Column, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < pos+4 {
			return nil, 0, fmt.Errorf("types: truncated schema column %d", i)
		}
		kind := Kind(b[pos])
		notNull := b[pos+1] == 1
		nameLen := int(binary.BigEndian.Uint16(b[pos+2:]))
		pos += 4
		if len(b) < pos+nameLen {
			return nil, 0, fmt.Errorf("types: truncated schema column name %d", i)
		}
		cols = append(cols, Column{Name: string(b[pos : pos+nameLen]), Kind: kind, NotNull: notNull})
		pos += nameLen
	}
	s, err := NewSchema(cols...)
	if err != nil {
		return nil, 0, err
	}
	return s, pos, nil
}

// Record is an ordered tuple of field values in the common representation.
type Record []Value

// Clone returns a deep copy of the record (BYTES bodies are copied).
func (r Record) Clone() Record {
	out := make(Record, len(r))
	for i, v := range r {
		if v.K == KindBytes {
			b := make([]byte, len(v.B))
			copy(b, v.B)
			v.B = b
		}
		out[i] = v
	}
	return out
}

// Equal reports whether two records have equal arity and field values.
func (r Record) Equal(o Record) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !Equal(r[i], o[i]) {
			return false
		}
	}
	return true
}

// Project returns the sub-record holding the fields at the given indexes.
func (r Record) Project(fields []int) Record {
	out := make(Record, len(fields))
	for i, f := range fields {
		out[i] = r[f]
	}
	return out
}

// String renders the record as a parenthesised value list.
func (r Record) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range r {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// AppendEncode appends a self-delimiting encoding of the record to dst.
func (r Record) AppendEncode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(r)))
	for _, v := range r {
		dst = v.AppendEncode(dst)
	}
	return dst
}

// DecodeRecord decodes one record from b, returning it and bytes consumed.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < 2 {
		return nil, 0, fmt.Errorf("types: truncated record")
	}
	n := int(binary.BigEndian.Uint16(b))
	pos := 2
	rec := make(Record, 0, n)
	for i := 0; i < n; i++ {
		v, used, err := DecodeValue(b[pos:])
		if err != nil {
			return nil, 0, fmt.Errorf("types: record field %d: %w", i, err)
		}
		rec = append(rec, v)
		pos += used
	}
	return rec, pos, nil
}

// skipValue returns the encoded length of the value starting at b without
// materialising it.
func skipValue(b []byte) (int, error) {
	if len(b) < 1 {
		return 0, fmt.Errorf("types: truncated value")
	}
	switch Kind(b[0]) {
	case KindNull:
		return 1, nil
	case KindInt, KindBool, KindFloat:
		if len(b) < 9 {
			return 0, fmt.Errorf("types: truncated scalar")
		}
		return 9, nil
	case KindString, KindBytes:
		if len(b) < 5 {
			return 0, fmt.Errorf("types: truncated length header")
		}
		n := int(binary.BigEndian.Uint32(b[1:]))
		if len(b) < 5+n {
			return 0, fmt.Errorf("types: truncated body")
		}
		return 5 + n, nil
	default:
		return 0, fmt.Errorf("types: bad value kind %d", b[0])
	}
}

// DecodeRecordFields decodes only the given fields of an encoded record,
// skipping (without materialising) the rest. The result has the record's
// full arity with non-requested fields NULL. Storage methods use it to
// isolate the fields a filter predicate needs while the record bytes are
// still in the buffer pool.
func DecodeRecordFields(b []byte, fields []int) (Record, int, error) {
	if len(b) < 2 {
		return nil, 0, fmt.Errorf("types: truncated record")
	}
	arity := int(binary.BigEndian.Uint16(b))
	pos := 2
	rec := make(Record, arity)
	want := make(map[int]bool, len(fields))
	maxField := -1
	for _, f := range fields {
		want[f] = true
		if f > maxField {
			maxField = f
		}
	}
	for i := 0; i < arity; i++ {
		if i > maxField {
			break // nothing further is needed
		}
		if want[i] {
			v, used, err := DecodeValue(b[pos:])
			if err != nil {
				return nil, 0, fmt.Errorf("types: record field %d: %w", i, err)
			}
			rec[i] = v
			pos += used
			continue
		}
		used, err := skipValue(b[pos:])
		if err != nil {
			return nil, 0, fmt.Errorf("types: record field %d: %w", i, err)
		}
		pos += used
	}
	return rec, pos, nil
}

// Key is an opaque record key. The defining storage method controls its
// format and interpretation; access paths map access-path keys to Keys.
// Keys compare byte-wise.
type Key []byte

// Compare orders two keys byte-wise.
func (k Key) Compare(o Key) int { return cmpBytes(k, o) }

// Equal reports byte-wise equality.
func (k Key) Equal(o Key) bool { return cmpBytes(k, o) == 0 }

// Clone returns a copy of the key.
func (k Key) Clone() Key {
	out := make(Key, len(k))
	copy(out, k)
	return out
}

// String renders the key in hex for diagnostics.
func (k Key) String() string { return fmt.Sprintf("key:%x", []byte(k)) }

// EncodeKeyFields composes an order-preserving key from the given record
// fields; used by key-from-fields storage methods and index attachments.
func EncodeKeyFields(rec Record, fields []int) Key {
	var out []byte
	for _, f := range fields {
		out = rec[f].AppendOrderedEncode(out)
	}
	return out
}

// EncodeKeyValues composes an order-preserving key from loose values.
func EncodeKeyValues(vals ...Value) Key {
	var out []byte
	for _, v := range vals {
		out = v.AppendOrderedEncode(out)
	}
	return out
}

// DecodeKeyValues decodes all order-preserving values packed in k.
func DecodeKeyValues(k Key) ([]Value, error) {
	var out []Value
	for pos := 0; pos < len(k); {
		v, used, err := DecodeOrderedValue(k[pos:])
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		pos += used
	}
	return out, nil
}
