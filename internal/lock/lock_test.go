package lock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dmx/internal/obs"
	"dmx/internal/wal"
)

func TestCompatibilityMatrix(t *testing.T) {
	type row struct {
		a, b Mode
		want bool
	}
	cases := []row{
		{ModeIS, ModeIS, true}, {ModeIS, ModeIX, true}, {ModeIS, ModeS, true}, {ModeIS, ModeX, false},
		{ModeIX, ModeIS, true}, {ModeIX, ModeIX, true}, {ModeIX, ModeS, false}, {ModeIX, ModeX, false},
		{ModeS, ModeIS, true}, {ModeS, ModeIX, false}, {ModeS, ModeS, true}, {ModeS, ModeX, false},
		{ModeX, ModeIS, false}, {ModeX, ModeIX, false}, {ModeX, ModeS, false}, {ModeX, ModeX, false},
		{ModeNone, ModeX, true},
		// SIX admits concurrent IS readers and nothing stronger.
		{ModeSIX, ModeIS, true}, {ModeSIX, ModeIX, false}, {ModeSIX, ModeS, false},
		{ModeSIX, ModeSIX, false}, {ModeSIX, ModeX, false}, {ModeSIX, ModeNone, true},
		{ModeIS, ModeSIX, true}, {ModeIX, ModeSIX, false}, {ModeS, ModeSIX, false},
		{ModeX, ModeSIX, false},
	}
	for _, c := range cases {
		if got := compatible(c.a, c.b); got != c.want {
			t.Errorf("compatible(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSupremum(t *testing.T) {
	if supremum(ModeS, ModeS) != ModeS {
		t.Error("S∨S")
	}
	if supremum(ModeIS, ModeX) != ModeX {
		t.Error("IS∨X")
	}
	if supremum(ModeIX, ModeS) != ModeSIX || supremum(ModeS, ModeIX) != ModeSIX {
		t.Error("IX∨S should promote to SIX")
	}
	if supremum(ModeSIX, ModeIX) != ModeSIX || supremum(ModeS, ModeSIX) != ModeSIX {
		t.Error("SIX absorbs IX and S")
	}
	if supremum(ModeSIX, ModeX) != ModeX {
		t.Error("SIX∨X")
	}
}

// TestSIXAdmitsISReaders is the regression test for the old IX∨S = X
// over-approximation: a reader that upgrades to intention-write must not
// block concurrent intention-read transactions.
func TestSIXAdmitsISReaders(t *testing.T) {
	m := NewManager()
	res := RelResource(7)
	if err := m.Acquire(1, res, ModeS); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(1, res, ModeIX); err != nil {
		t.Fatal(err) // upgrade in place: S ∨ IX = SIX
	}
	if got := m.HeldMode(1, res); got != ModeSIX {
		t.Fatalf("held mode after upgrade = %v, want SIX", got)
	}

	// Concurrent IS readers proceed without waiting.
	const readers = 4
	done := make(chan error, readers)
	for i := 0; i < readers; i++ {
		id := wal.TxnID(10 + i)
		go func() { done <- m.Acquire(id, res, ModeIS) }()
	}
	for i := 0; i < readers; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(time.Second):
			t.Fatal("IS reader blocked under SIX")
		}
	}

	// A fresh IX writer must still wait for the SIX holder.
	if m.TryAcquire(20, res, ModeIX) {
		t.Fatal("IX granted alongside SIX")
	}
	ixDone := make(chan error, 1)
	go func() { ixDone <- m.Acquire(20, res, ModeIX) }()
	select {
	case <-ixDone:
		t.Fatal("IX granted while SIX held")
	case <-time.After(20 * time.Millisecond):
	}
	for i := 0; i < readers; i++ {
		m.ReleaseAll(wal.TxnID(10 + i))
	}
	m.ReleaseAll(1)
	if err := <-ixDone; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(20)
}

func TestSharedThenExclusiveBlocks(t *testing.T) {
	m := NewManager()
	res := RelResource(1)
	if err := m.Acquire(1, res, ModeS); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, res, ModeS); err != nil {
		t.Fatal(err) // S is shared
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire(3, res, ModeX) }()
	select {
	case <-done:
		t.Fatal("X granted while S held")
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(1)
	select {
	case <-done:
		t.Fatal("X granted while one S still held")
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(2)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if m.HeldMode(3, res) != ModeX {
		t.Fatal("txn 3 should hold X")
	}
	m.ReleaseAll(3)
}

func TestReacquireAndUpgrade(t *testing.T) {
	m := NewManager()
	res := RelResource(2)
	if err := m.Acquire(1, res, ModeS); err != nil {
		t.Fatal(err)
	}
	// Re-acquire same mode: no-op.
	if err := m.Acquire(1, res, ModeS); err != nil {
		t.Fatal(err)
	}
	// Upgrade in place when alone.
	if err := m.Acquire(1, res, ModeX); err != nil {
		t.Fatal(err)
	}
	if m.HeldMode(1, res) != ModeX {
		t.Fatalf("mode = %v", m.HeldMode(1, res))
	}
	// Downgrade attempts keep the stronger mode.
	if err := m.Acquire(1, res, ModeIS); err != nil {
		t.Fatal(err)
	}
	if m.HeldMode(1, res) != ModeX {
		t.Fatal("mode should remain X")
	}
	m.ReleaseAll(1)
	if m.HeldCount(1) != 0 {
		t.Fatal("HeldCount after release")
	}
}

func TestUpgradeJumpsQueue(t *testing.T) {
	m := NewManager()
	res := RelResource(3)
	if err := m.Acquire(1, res, ModeS); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, res, ModeS); err != nil {
		t.Fatal(err)
	}
	// Fresh X waits.
	xDone := make(chan error, 1)
	go func() { xDone <- m.Acquire(3, res, ModeX) }()
	time.Sleep(10 * time.Millisecond)
	// Holder 1 upgrades; must be served before the queued fresh X.
	upDone := make(chan error, 1)
	go func() { upDone <- m.Acquire(1, res, ModeX) }()
	time.Sleep(10 * time.Millisecond)
	m.ReleaseAll(2)
	if err := <-upDone; err != nil {
		t.Fatalf("upgrade: %v", err)
	}
	select {
	case <-xDone:
		t.Fatal("fresh X should still wait behind upgraded holder")
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(1)
	if err := <-xDone; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(3)
}

func TestIntentModesShare(t *testing.T) {
	m := NewManager()
	res := RelResource(4)
	if err := m.Acquire(1, res, ModeIX); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, res, ModeIX); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(3, res, ModeIS); err != nil {
		t.Fatal(err)
	}
	if m.TryAcquire(4, res, ModeS) {
		t.Fatal("S should not coexist with IX")
	}
	m.ReleaseAll(1)
	m.ReleaseAll(2)
	if !m.TryAcquire(4, res, ModeS) {
		t.Fatal("S should coexist with IS")
	}
	m.ReleaseAll(3)
	m.ReleaseAll(4)
}

func TestDeadlockDetected(t *testing.T) {
	m := NewManager()
	a, b := RelResource(10), RelResource(11)
	if err := m.Acquire(1, a, ModeX); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, b, ModeX); err != nil {
		t.Fatal(err)
	}
	got1 := make(chan error, 1)
	go func() { got1 <- m.Acquire(1, b, ModeX) }()
	time.Sleep(20 * time.Millisecond) // let txn 1 queue
	// txn 2 requesting a closes the cycle: 2→1→2. Victim is txn 2.
	err := m.Acquire(2, a, ModeX)
	if err != ErrDeadlock {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	// Victim aborts; txn 1 proceeds.
	m.ReleaseAll(2)
	if err := <-got1; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)
}

func TestUpgradeDeadlock(t *testing.T) {
	m := NewManager()
	res := RelResource(20)
	if err := m.Acquire(1, res, ModeS); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, res, ModeS); err != nil {
		t.Fatal(err)
	}
	got1 := make(chan error, 1)
	go func() { got1 <- m.Acquire(1, res, ModeX) }()
	time.Sleep(20 * time.Millisecond)
	// Second upgrader closes the cycle.
	if err := m.Acquire(2, res, ModeX); err != ErrDeadlock {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	m.ReleaseAll(2)
	if err := <-got1; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)
}

func TestReleaseAllCancelsWaiter(t *testing.T) {
	m := NewManager()
	res := RelResource(30)
	if err := m.Acquire(1, res, ModeX); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- m.Acquire(2, res, ModeX) }()
	time.Sleep(20 * time.Millisecond)
	m.ReleaseAll(2) // txn 2 aborted while waiting
	if err := <-got; err == nil {
		t.Fatal("cancelled waiter should get an error")
	}
	m.ReleaseAll(1)
	// Resource must be fully free now.
	if !m.TryAcquire(3, res, ModeX) {
		t.Fatal("resource should be free")
	}
	m.ReleaseAll(3)
}

func TestTryAcquire(t *testing.T) {
	m := NewManager()
	res := KeyResource(1, []byte("k"))
	if !m.TryAcquire(1, res, ModeX) {
		t.Fatal("first TryAcquire should succeed")
	}
	if m.TryAcquire(2, res, ModeS) {
		t.Fatal("conflicting TryAcquire should fail")
	}
	if !m.TryAcquire(1, res, ModeS) {
		t.Fatal("held-stronger TryAcquire should succeed")
	}
	m.ReleaseAll(1)
}

func TestKeyVsRelationResourcesIndependent(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, RelResource(5), ModeIX); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(1, KeyResource(5, []byte("a")), ModeX); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, RelResource(5), ModeIX); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, KeyResource(5, []byte("b")), ModeX); err != nil {
		t.Fatal(err) // different key: no conflict
	}
	if m.TryAcquire(2, KeyResource(5, []byte("a")), ModeX) {
		t.Fatal("same key should conflict")
	}
	m.ReleaseAll(1)
	m.ReleaseAll(2)
}

func TestConcurrentIncrementSerialises(t *testing.T) {
	m := NewManager()
	res := RelResource(99)
	var counter int64
	var wg sync.WaitGroup
	deadlocks := int64(0)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			txn := wal.TxnID(id + 1)
			for i := 0; i < 50; i++ {
				if err := m.Acquire(txn, res, ModeX); err != nil {
					atomic.AddInt64(&deadlocks, 1)
					m.ReleaseAll(txn)
					continue
				}
				v := atomic.LoadInt64(&counter)
				time.Sleep(time.Microsecond)
				atomic.StoreInt64(&counter, v+1)
				m.ReleaseAll(txn)
			}
		}(g)
	}
	wg.Wait()
	if got := atomic.LoadInt64(&counter) + deadlocks; got != 16*50 {
		t.Fatalf("lost updates: counter+deadlocks = %d, want %d", got, 16*50)
	}
	if deadlocks != 0 {
		t.Fatalf("single-resource X locking cannot deadlock, got %d", deadlocks)
	}
}

func TestModeAndResourceStrings(t *testing.T) {
	for _, mo := range []Mode{ModeNone, ModeIS, ModeIX, ModeS, ModeX, Mode(77)} {
		if mo.String() == "" {
			t.Error("empty mode name")
		}
	}
	if RelResource(1).String() == "" || KeyResource(1, []byte("x")).String() == "" {
		t.Error("empty resource name")
	}
}

func TestHeldModeNotHeld(t *testing.T) {
	m := NewManager()
	if m.HeldMode(1, RelResource(1)) != ModeNone {
		t.Fatal("unheld should be ModeNone")
	}
}

// TestLockMetrics verifies the manager records waits, wait time, queue
// depth, and deadlocks into its obs registry.
func TestLockMetrics(t *testing.T) {
	m := NewManager()
	st := &obs.LockStats{}
	m.SetObs(st)
	res := RelResource(3)
	if err := m.Acquire(1, res, ModeX); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire(2, res, ModeX) }()
	for st.Queue.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	m.ReleaseAll(1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
	if st.Requests.Load() != 2 || st.Waits.Load() != 1 {
		t.Fatalf("requests=%d waits=%d", st.Requests.Load(), st.Waits.Load())
	}
	if st.Queue.Load() != 0 || st.Queue.Max() != 1 {
		t.Fatalf("queue=%d max=%d", st.Queue.Load(), st.Queue.Max())
	}
	if st.WaitTime.Snapshot().Count != 1 {
		t.Fatalf("wait time samples = %d", st.WaitTime.Snapshot().Count)
	}

	// A deadlock victim is counted.
	a, b := RelResource(10), RelResource(11)
	m.Acquire(5, a, ModeX)
	m.Acquire(6, b, ModeX)
	errCh := make(chan error, 1)
	go func() { errCh <- m.Acquire(5, b, ModeX) }()
	for st.Queue.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	if err := m.Acquire(6, a, ModeX); err != ErrDeadlock {
		t.Fatalf("want deadlock, got %v", err)
	}
	m.ReleaseAll(6)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(5)
	if st.Deadlocks.Load() != 1 {
		t.Fatalf("deadlocks = %d", st.Deadlocks.Load())
	}
}

// waitForWaiter polls until txn has a pending entry in the wait table.
func waitForWaiter(t *testing.T, m *Manager, txn wal.TxnID) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		m.gmu.Lock()
		_, waiting := m.waits[txn]
		m.gmu.Unlock()
		if waiting {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("txn %d never started waiting", txn)
}

// Regression: the granter must remove the wait-table entry before
// signalling the waiter. The sharded deadlock DFS follows waits[t].res
// without re-checking queue membership, so a stale entry left for the
// waiter to clean up after it resumes would be a phantom waits-for edge
// visible to concurrent detection.
func TestGrantClearsWaitTableBeforeSignal(t *testing.T) {
	m := NewManager()
	res := RelResource(70)
	if err := m.Acquire(1, res, ModeX); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire(2, res, ModeX) }()
	waitForWaiter(t, m, 2)
	m.ReleaseAll(1)
	// ReleaseAll granted txn 2 synchronously; its wait entry must already
	// be gone even though the waiter goroutine may not have resumed yet.
	m.gmu.Lock()
	_, waiting := m.waits[2]
	m.gmu.Unlock()
	if waiting {
		t.Fatal("granted transaction still in wait table")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
}

// Regression: a grantable-now upgrade must be served immediately even with
// a newcomer queued, not enqueued behind it — the newcomer waits for the
// holder, so queuing the holder's upgrade behind it would deadlock two
// transactions that have no cycle.
func TestUpgradeGrantableNowBypassesQueue(t *testing.T) {
	m := NewManager()
	res := RelResource(71)
	if err := m.Acquire(1, res, ModeS); err != nil {
		t.Fatal(err)
	}
	newcomer := make(chan error, 1)
	go func() { newcomer <- m.Acquire(2, res, ModeX) }()
	waitForWaiter(t, m, 2)
	// Sole holder upgrades S→X with the newcomer queued: immediate grant.
	if err := m.Acquire(1, res, ModeX); err != nil {
		t.Fatalf("upgrade: %v", err)
	}
	if got := m.HeldMode(1, res); got != ModeX {
		t.Fatalf("holder mode = %v", got)
	}
	m.ReleaseAll(1)
	if err := <-newcomer; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
}

// TestShardStorm exercises the sharded fast path: many goroutines acquire
// and release disjoint key resources (no contention) plus one contended
// resource, under the race detector.
func TestShardStorm(t *testing.T) {
	m := NewManager()
	hot := RelResource(99)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				txn := wal.TxnID(1 + g*1000 + i)
				priv := KeyResource(50, []byte{byte(g), byte(i)})
				if err := m.Acquire(txn, priv, ModeX); err != nil {
					t.Error(err)
					return
				}
				if err := m.Acquire(txn, hot, ModeS); err != nil {
					t.Error(err)
					return
				}
				if i%10 == 0 {
					// Occasional upgrade on the hot resource; deadlock
					// between two upgraders is legitimate — retry.
					if err := m.Acquire(txn, hot, ModeX); err != nil && err != ErrDeadlock {
						t.Error(err)
						return
					}
				}
				m.ReleaseAll(txn)
			}
		}(g)
	}
	wg.Wait()
	for i := range m.shards {
		m.shards[i].mu.Lock()
		if n := len(m.shards[i].locks); n != 0 {
			t.Errorf("shard %d retains %d lock states", i, n)
		}
		m.shards[i].mu.Unlock()
	}
}
