// Package lock implements the system-supplied lock manager of the data
// management extension architecture.
//
// The architecture assumes all storage method and attachment
// implementations synchronise with locking-based concurrency control (a mix
// with timestamp or validation schemes is not serialisable in general), so
// a single lock manager is offered as a common service. It supports
// hierarchical intention modes, in-place upgrades, FIFO queuing, and
// system-wide deadlock detection over the waits-for graph; every lock is
// held to transaction end and released by ReleaseAll.
//
// Internally the resource table is sharded by resource hash so uncontended
// grants on different resources never serialise on one mutex. Graph-wide
// state — the per-transaction held sets, the wait table, and deadlock
// detection — is owned by a global mutex taken only on the slow paths
// (blocking, release). Lock order is strictly global-then-shard; shard
// mutexes never nest.
package lock

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"dmx/internal/obs"
	"dmx/internal/wal"
)

// Mode is a lock mode.
type Mode uint8

// Lock modes, weakest to strongest.
const (
	ModeNone Mode = iota
	ModeIS
	ModeIX
	ModeS
	ModeSIX
	ModeX
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "NONE"
	case ModeIS:
		return "IS"
	case ModeIX:
		return "IX"
	case ModeS:
		return "S"
	case ModeSIX:
		return "SIX"
	case ModeX:
		return "X"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// compatible reports whether two modes may be held simultaneously by
// different transactions.
func compatible(a, b Mode) bool {
	switch a {
	case ModeNone:
		return true
	case ModeIS:
		return b != ModeX
	case ModeIX:
		return b == ModeIS || b == ModeIX || b == ModeNone
	case ModeS:
		return b == ModeIS || b == ModeS || b == ModeNone
	case ModeSIX:
		return b == ModeIS || b == ModeNone
	case ModeX:
		return b == ModeNone
	default:
		return false
	}
}

// supremum returns the weakest mode at least as strong as both a and b.
// The mode lattice is the classical hierarchical-locking one: IX ∨ S is
// SIX (shared with intent to write), so a reader that upgrades to
// intention-write keeps admitting concurrent IS readers instead of
// escalating all the way to X.
func supremum(a, b Mode) Mode {
	if a == b {
		return a
	}
	if (a == ModeIX && b == ModeS) || (a == ModeS && b == ModeIX) {
		return ModeSIX
	}
	if a > b {
		return a
	}
	return b
}

// ErrDeadlock is returned to the transaction chosen as deadlock victim.
var ErrDeadlock = errors.New("lock: deadlock detected; transaction chosen as victim")

// ErrNotHeld is returned when downgrading or inspecting a lock that is not held.
var ErrNotHeld = errors.New("lock: not held")

// Resource names a lockable object: a relation, a record key within a
// relation, or an extension-private resource string.
type Resource struct {
	Rel uint32
	Key string // empty = relation-level lock
}

// String renders the resource for diagnostics.
func (r Resource) String() string {
	if r.Key == "" {
		return fmt.Sprintf("rel(%d)", r.Rel)
	}
	return fmt.Sprintf("rel(%d)/key(%x)", r.Rel, r.Key)
}

// RelResource returns the relation-level resource for relID.
func RelResource(relID uint32) Resource { return Resource{Rel: relID} }

// KeyResource returns the record-level resource for a key within a relation.
func KeyResource(relID uint32, key []byte) Resource {
	return Resource{Rel: relID, Key: string(key)}
}

type request struct {
	txn  wal.TxnID
	res  Resource // the resource the request queues on (for targeted DFS)
	mode Mode
	done chan error // receives nil on grant, error on deadlock victim/cancel
}

type lockState struct {
	holders map[wal.TxnID]Mode
	queue   []*request
}

// numShards splits the resource table; resources hash to a shard and
// uncontended acquires touch only that shard's mutex.
const numShards = 16

type lockShard struct {
	mu    sync.Mutex
	locks map[Resource]*lockState
}

// state returns the lock state for res, creating it when create is set.
// Caller holds sh.mu.
func (sh *lockShard) state(res Resource, create bool) *lockState {
	ls := sh.locks[res]
	if ls == nil && create {
		ls = &lockState{holders: make(map[wal.TxnID]Mode)}
		sh.locks[res] = ls
	}
	return ls
}

// Manager is the lock manager. It is safe for concurrent use.
//
// Invariants: a transaction appears in waits exactly while its request sits
// in some shard queue, and both facts change together under gmu + the
// resource's shard mutex. The entry is removed by whoever settles the
// request — the granter in wake, the canceller in ReleaseAll, or the victim
// path in Acquire — never by the awakened waiter, so the waits-for graph
// seen by deadlock detection holds no already-granted phantom edges.
type Manager struct {
	shards [numShards]*lockShard

	gmu   sync.Mutex                      // graph mutex: held, waits, DFS
	held  map[wal.TxnID]map[Resource]Mode // per-txn held set for ReleaseAll
	waits map[wal.TxnID]*request          // txn -> its single pending request
	obs   *obs.LockStats

	// waitSink, when set, is called on the waiter's goroutine after every
	// blocked Acquire resolves, with the waiting transaction and the time
	// it spent blocked. Uncontended grants never reach it. The transaction
	// manager uses it to charge waits to per-transaction ledgers.
	waitSink func(wal.TxnID, time.Duration)
}

// NewManager returns an empty lock manager.
func NewManager() *Manager {
	m := &Manager{
		held:  make(map[wal.TxnID]map[Resource]Mode),
		waits: make(map[wal.TxnID]*request),
		obs:   &obs.LockStats{},
	}
	for i := range m.shards {
		m.shards[i] = &lockShard{locks: make(map[Resource]*lockState)}
	}
	return m
}

// shardFor hashes res to its shard (FNV-1a over rel id and key bytes).
func (m *Manager) shardFor(res Resource) *lockShard {
	h := uint32(2166136261)
	for i := 0; i < 4; i++ {
		h ^= (res.Rel >> (8 * i)) & 0xff
		h *= 16777619
	}
	for i := 0; i < len(res.Key); i++ {
		h ^= uint32(res.Key[i])
		h *= 16777619
	}
	return m.shards[h%numShards]
}

// SetObs points the manager's instrumentation at a shared metric registry.
// Call before concurrent use (the environment wires it at assembly).
func (m *Manager) SetObs(ls *obs.LockStats) {
	if ls != nil {
		m.obs = ls
	}
}

// SetWaitSink installs the blocked-acquire callback. Call before
// concurrent use (the transaction manager wires it at construction).
func (m *Manager) SetWaitSink(sink func(wal.TxnID, time.Duration)) {
	m.waitSink = sink
}

// Acquire obtains mode on res for txn, blocking until granted. If the wait
// would close a cycle in the waits-for graph, the requesting transaction is
// chosen as victim and ErrDeadlock is returned instead. Re-acquiring a
// resource upgrades the held mode to the supremum.
func (m *Manager) Acquire(txn wal.TxnID, res Resource, mode Mode) error {
	m.obs.Requests.Inc()
	sh := m.shardFor(res)
	// Fast path: grant under the shard mutex alone, then record the held
	// entry under gmu (sequentially — the mutexes never nest this way
	// round). The window where the grant is visible in the shard but not
	// yet in held is benign: deadlock DFS reads holders, and ReleaseAll
	// for this transaction cannot run concurrently with its own Acquire
	// (transactions are goroutine-confined).
	sh.mu.Lock()
	granted, settled := m.tryGrantLocked(sh, txn, res, mode)
	sh.mu.Unlock()
	if settled {
		if granted {
			m.recordHeld(txn, res)
		}
		return nil
	}

	// Slow path: must (probably) wait. Re-check under gmu + shard — the
	// holders may have drained between the unlock and here.
	m.gmu.Lock()
	sh.mu.Lock()
	ls := sh.state(res, true)
	want := mode
	holds := false
	if cur, ok := ls.holders[txn]; ok {
		holds = true
		want = supremum(cur, mode)
		if want == cur {
			sh.mu.Unlock()
			m.gmu.Unlock()
			return nil
		}
	}
	if m.grantable(ls, txn, want) && (holds || len(ls.queue) == 0) {
		ls.holders[txn] = want
		sh.mu.Unlock()
		m.recordHeldLocked(txn, res, want)
		m.gmu.Unlock()
		return nil
	}
	// Enqueue. Upgrades jump the queue ahead of fresh requests so an
	// S-holder upgrading to X cannot deadlock behind a newcomer; but if a
	// grantable-now upgrade exists we handled it above.
	req := &request{txn: txn, res: res, mode: want, done: make(chan error, 1)}
	if holds {
		ls.queue = append([]*request{req}, ls.queue...)
	} else {
		ls.queue = append(ls.queue, req)
	}
	m.waits[txn] = req
	sh.mu.Unlock()
	if m.wouldDeadlockLocked(txn) {
		sh.mu.Lock()
		m.removeRequest(ls, req)
		sh.mu.Unlock()
		delete(m.waits, txn)
		m.gmu.Unlock()
		m.obs.Deadlocks.Inc()
		return ErrDeadlock
	}
	m.obs.Waits.Inc()
	m.obs.Queue.Inc()
	waitStart := time.Now()
	m.gmu.Unlock()

	// The settler (granter or canceller) removed our waits entry before
	// signalling, so no phantom wait edge survives the grant.
	err := <-req.done
	m.obs.Queue.Dec()
	waited := time.Since(waitStart)
	m.obs.WaitTime.Observe(waited)
	if m.waitSink != nil {
		m.waitSink(txn, waited)
	}
	return err
}

// tryGrantLocked attempts an immediate grant under sh.mu. It returns
// (granted, settled): settled without granted means the lock was already
// held strongly enough. Fresh requests yield to an existing queue (FIFO
// fairness); upgrades may bypass it.
func (m *Manager) tryGrantLocked(sh *lockShard, txn wal.TxnID, res Resource, mode Mode) (granted, settled bool) {
	ls := sh.state(res, false)
	if ls == nil {
		sh.state(res, true).holders[txn] = mode
		return true, true
	}
	want := mode
	holds := false
	if cur, ok := ls.holders[txn]; ok {
		holds = true
		want = supremum(cur, mode)
		if want == cur {
			return false, true // already strong enough
		}
	}
	if m.grantable(ls, txn, want) && (holds || len(ls.queue) == 0) {
		ls.holders[txn] = want
		return true, true
	}
	return false, false
}

// TryAcquire is Acquire without blocking: it returns false if the lock is
// not immediately grantable.
func (m *Manager) TryAcquire(txn wal.TxnID, res Resource, mode Mode) bool {
	m.obs.Requests.Inc()
	sh := m.shardFor(res)
	sh.mu.Lock()
	granted, settled := m.tryGrantLocked(sh, txn, res, mode)
	sh.mu.Unlock()
	if granted {
		m.recordHeld(txn, res)
	}
	return settled
}

// grantable reports whether txn may hold want on ls given the OTHER holders.
func (m *Manager) grantable(ls *lockState, txn wal.TxnID, want Mode) bool {
	for holder, held := range ls.holders {
		if holder == txn {
			continue
		}
		if !compatible(want, held) {
			return false
		}
	}
	return true
}

// recordHeld mirrors a shard grant into the per-txn held set.
func (m *Manager) recordHeld(txn wal.TxnID, res Resource) {
	sh := m.shardFor(res)
	m.gmu.Lock()
	// Re-read the granted mode: a same-txn upgrade cannot race (goroutine
	// confinement), so the holder entry is still ours.
	sh.mu.Lock()
	mode := ModeNone
	if ls := sh.state(res, false); ls != nil {
		mode = ls.holders[txn]
	}
	sh.mu.Unlock()
	if mode != ModeNone {
		m.recordHeldLocked(txn, res, mode)
	}
	m.gmu.Unlock()
}

// recordHeldLocked updates the held set under gmu.
func (m *Manager) recordHeldLocked(txn wal.TxnID, res Resource, mode Mode) {
	hm := m.held[txn]
	if hm == nil {
		hm = make(map[Resource]Mode)
		m.held[txn] = hm
	}
	hm[res] = mode
}

func (m *Manager) removeRequest(ls *lockState, req *request) {
	for i, r := range ls.queue {
		if r == req {
			ls.queue = append(ls.queue[:i], ls.queue[i+1:]...)
			return
		}
	}
}

// ReleaseAll drops every lock txn holds and cancels any pending request.
// Called by the transaction manager at commit or abort (all locks are
// released at transaction termination).
func (m *Manager) ReleaseAll(txn wal.TxnID) {
	m.gmu.Lock()
	defer m.gmu.Unlock()
	if req, ok := m.waits[txn]; ok {
		sh := m.shardFor(req.res)
		sh.mu.Lock()
		if ls := sh.state(req.res, false); ls != nil {
			m.removeRequest(ls, req)
		}
		sh.mu.Unlock()
		delete(m.waits, txn)
		req.done <- fmt.Errorf("lock: transaction %d terminated while waiting", txn)
	}
	for res := range m.held[txn] {
		sh := m.shardFor(res)
		sh.mu.Lock()
		ls := sh.state(res, false)
		if ls == nil {
			sh.mu.Unlock()
			continue
		}
		delete(ls.holders, txn)
		m.wakeLocked(ls, res)
		if len(ls.holders) == 0 && len(ls.queue) == 0 {
			delete(sh.locks, res)
		}
		sh.mu.Unlock()
	}
	delete(m.held, txn)
}

// wakeLocked grants the longest compatible prefix of the queue. Caller
// holds gmu and the resource's shard mutex; the granter removes the waits
// entry before signalling, so a granted transaction never lingers in the
// waits-for graph as a phantom edge.
func (m *Manager) wakeLocked(ls *lockState, res Resource) {
	for len(ls.queue) > 0 {
		req := ls.queue[0]
		if !m.grantable(ls, req.txn, req.mode) {
			return
		}
		ls.queue = ls.queue[1:]
		ls.holders[req.txn] = req.mode
		m.recordHeldLocked(req.txn, res, req.mode)
		delete(m.waits, req.txn)
		req.done <- nil
	}
}

// wouldDeadlockLocked runs DFS over the waits-for graph starting from txn,
// following waiter → incompatible holder edges. Caller holds gmu (which
// pins the wait table); each hop reads its resource's holders under that
// shard's mutex. Wait edges are only added under gmu, so the transaction
// that completes a cycle always sees the whole cycle here.
func (m *Manager) wouldDeadlockLocked(start wal.TxnID) bool {
	visited := map[wal.TxnID]bool{}
	var dfs func(t wal.TxnID) bool
	dfs = func(t wal.TxnID) bool {
		req, waiting := m.waits[t]
		if !waiting {
			return false
		}
		sh := m.shardFor(req.res)
		sh.mu.Lock()
		var blockers []wal.TxnID
		if ls := sh.state(req.res, false); ls != nil {
			for holder, held := range ls.holders {
				if holder == t || compatible(req.mode, held) {
					continue
				}
				blockers = append(blockers, holder)
			}
		}
		sh.mu.Unlock()
		for _, holder := range blockers {
			if holder == start {
				return true
			}
			if !visited[holder] {
				visited[holder] = true
				if dfs(holder) {
					return true
				}
			}
		}
		return false
	}
	return dfs(start)
}

// HeldLock is one granted lock as seen by sys.stat_locks.
type HeldLock struct {
	Txn  wal.TxnID
	Res  Resource
	Mode Mode
}

// WaitingLock is one pending request plus its waits-for edges: the
// transactions whose incompatible holds block it.
type WaitingLock struct {
	Txn      wal.TxnID
	Res      Resource
	Mode     Mode
	Blockers []wal.TxnID
}

// SnapshotLocks returns the granted and waiting lock requests, with
// waits-for edges resolved for each waiter. It takes gmu and then each
// waiter's shard mutex — the same global-then-shard order every slow path
// uses — so it can run concurrently with Acquire/ReleaseAll without
// deadlock risk. Results are sorted (txn, then resource) for stable
// relation output.
func (m *Manager) SnapshotLocks() (held []HeldLock, waiting []WaitingLock) {
	m.gmu.Lock()
	for txn, hm := range m.held {
		for res, mode := range hm {
			held = append(held, HeldLock{Txn: txn, Res: res, Mode: mode})
		}
	}
	for txn, req := range m.waits {
		w := WaitingLock{Txn: txn, Res: req.res, Mode: req.mode}
		sh := m.shardFor(req.res)
		sh.mu.Lock()
		if ls := sh.state(req.res, false); ls != nil {
			for holder, heldMode := range ls.holders {
				if holder != txn && !compatible(req.mode, heldMode) {
					w.Blockers = append(w.Blockers, holder)
				}
			}
		}
		sh.mu.Unlock()
		sort.Slice(w.Blockers, func(i, j int) bool { return w.Blockers[i] < w.Blockers[j] })
		waiting = append(waiting, w)
	}
	m.gmu.Unlock()
	sort.Slice(held, func(i, j int) bool {
		if held[i].Txn != held[j].Txn {
			return held[i].Txn < held[j].Txn
		}
		return held[i].Res.String() < held[j].Res.String()
	})
	sort.Slice(waiting, func(i, j int) bool {
		if waiting[i].Txn != waiting[j].Txn {
			return waiting[i].Txn < waiting[j].Txn
		}
		return waiting[i].Res.String() < waiting[j].Res.String()
	})
	return held, waiting
}

// HeldMode returns the mode txn holds on res (ModeNone if not held).
func (m *Manager) HeldMode(txn wal.TxnID, res Resource) Mode {
	m.gmu.Lock()
	defer m.gmu.Unlock()
	return m.held[txn][res]
}

// HeldCount returns how many locks txn currently holds.
func (m *Manager) HeldCount(txn wal.TxnID) int {
	m.gmu.Lock()
	defer m.gmu.Unlock()
	return len(m.held[txn])
}
