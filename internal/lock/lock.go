// Package lock implements the system-supplied lock manager of the data
// management extension architecture.
//
// The architecture assumes all storage method and attachment
// implementations synchronise with locking-based concurrency control (a mix
// with timestamp or validation schemes is not serialisable in general), so
// a single lock manager is offered as a common service. It supports
// hierarchical intention modes, in-place upgrades, FIFO queuing, and
// system-wide deadlock detection over the waits-for graph; every lock is
// held to transaction end and released by ReleaseAll.
package lock

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dmx/internal/obs"
	"dmx/internal/wal"
)

// Mode is a lock mode.
type Mode uint8

// Lock modes, weakest to strongest.
const (
	ModeNone Mode = iota
	ModeIS
	ModeIX
	ModeS
	ModeSIX
	ModeX
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "NONE"
	case ModeIS:
		return "IS"
	case ModeIX:
		return "IX"
	case ModeS:
		return "S"
	case ModeSIX:
		return "SIX"
	case ModeX:
		return "X"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// compatible reports whether two modes may be held simultaneously by
// different transactions.
func compatible(a, b Mode) bool {
	switch a {
	case ModeNone:
		return true
	case ModeIS:
		return b != ModeX
	case ModeIX:
		return b == ModeIS || b == ModeIX || b == ModeNone
	case ModeS:
		return b == ModeIS || b == ModeS || b == ModeNone
	case ModeSIX:
		return b == ModeIS || b == ModeNone
	case ModeX:
		return b == ModeNone
	default:
		return false
	}
}

// supremum returns the weakest mode at least as strong as both a and b.
// The mode lattice is the classical hierarchical-locking one: IX ∨ S is
// SIX (shared with intent to write), so a reader that upgrades to
// intention-write keeps admitting concurrent IS readers instead of
// escalating all the way to X.
func supremum(a, b Mode) Mode {
	if a == b {
		return a
	}
	if (a == ModeIX && b == ModeS) || (a == ModeS && b == ModeIX) {
		return ModeSIX
	}
	if a > b {
		return a
	}
	return b
}

// ErrDeadlock is returned to the transaction chosen as deadlock victim.
var ErrDeadlock = errors.New("lock: deadlock detected; transaction chosen as victim")

// ErrNotHeld is returned when downgrading or inspecting a lock that is not held.
var ErrNotHeld = errors.New("lock: not held")

// Resource names a lockable object: a relation, a record key within a
// relation, or an extension-private resource string.
type Resource struct {
	Rel uint32
	Key string // empty = relation-level lock
}

// String renders the resource for diagnostics.
func (r Resource) String() string {
	if r.Key == "" {
		return fmt.Sprintf("rel(%d)", r.Rel)
	}
	return fmt.Sprintf("rel(%d)/key(%x)", r.Rel, r.Key)
}

// RelResource returns the relation-level resource for relID.
func RelResource(relID uint32) Resource { return Resource{Rel: relID} }

// KeyResource returns the record-level resource for a key within a relation.
func KeyResource(relID uint32, key []byte) Resource {
	return Resource{Rel: relID, Key: string(key)}
}

type request struct {
	txn  wal.TxnID
	mode Mode
	done chan error // closed with nil on grant, error on deadlock victim
}

type lockState struct {
	holders map[wal.TxnID]Mode
	queue   []*request
}

// Manager is the lock manager. It is safe for concurrent use.
type Manager struct {
	mu    sync.Mutex
	locks map[Resource]*lockState
	held  map[wal.TxnID]map[Resource]Mode // per-txn held set for ReleaseAll
	waits map[wal.TxnID]*request          // txn -> its single pending request
	obs   *obs.LockStats
}

// NewManager returns an empty lock manager.
func NewManager() *Manager {
	return &Manager{
		locks: make(map[Resource]*lockState),
		held:  make(map[wal.TxnID]map[Resource]Mode),
		waits: make(map[wal.TxnID]*request),
		obs:   &obs.LockStats{},
	}
}

// SetObs points the manager's instrumentation at a shared metric registry.
// Call before concurrent use (the environment wires it at assembly).
func (m *Manager) SetObs(ls *obs.LockStats) {
	if ls != nil {
		m.obs = ls
	}
}

// Acquire obtains mode on res for txn, blocking until granted. If the wait
// would close a cycle in the waits-for graph, the requesting transaction is
// chosen as victim and ErrDeadlock is returned instead. Re-acquiring a
// resource upgrades the held mode to the supremum.
func (m *Manager) Acquire(txn wal.TxnID, res Resource, mode Mode) error {
	m.obs.Requests.Inc()
	m.mu.Lock()
	ls := m.locks[res]
	if ls == nil {
		ls = &lockState{holders: make(map[wal.TxnID]Mode)}
		m.locks[res] = ls
	}
	want := mode
	holds := false
	if cur, ok := ls.holders[txn]; ok {
		holds = true
		want = supremum(cur, mode)
		if want == cur {
			m.mu.Unlock()
			return nil // already strong enough
		}
	}
	// Grant immediately when compatible with the other holders; fresh
	// requests additionally yield to an existing queue (FIFO fairness),
	// while upgrades may bypass it.
	if m.grantable(ls, txn, want) && (holds || len(ls.queue) == 0) {
		m.grant(ls, txn, res, want)
		m.mu.Unlock()
		return nil
	}
	// Must wait. Upgrades jump the queue ahead of fresh requests so an
	// S-holder upgrading to X cannot deadlock behind a newcomer; but if a
	// grantable-now upgrade exists we handled it above.
	req := &request{txn: txn, mode: want, done: make(chan error, 1)}
	if holds {
		ls.queue = append([]*request{req}, ls.queue...)
	} else {
		ls.queue = append(ls.queue, req)
	}
	m.waits[txn] = req
	if m.wouldDeadlock(txn) {
		m.removeRequest(ls, req)
		delete(m.waits, txn)
		m.mu.Unlock()
		m.obs.Deadlocks.Inc()
		return ErrDeadlock
	}
	m.obs.Waits.Inc()
	m.obs.Queue.Inc()
	waitStart := time.Now()
	m.mu.Unlock()

	err := <-req.done
	m.obs.Queue.Dec()
	m.obs.WaitTime.Observe(time.Since(waitStart))
	m.mu.Lock()
	delete(m.waits, txn)
	m.mu.Unlock()
	return err
}

// TryAcquire is Acquire without blocking: it returns false if the lock is
// not immediately grantable.
func (m *Manager) TryAcquire(txn wal.TxnID, res Resource, mode Mode) bool {
	m.obs.Requests.Inc()
	m.mu.Lock()
	defer m.mu.Unlock()
	ls := m.locks[res]
	if ls == nil {
		ls = &lockState{holders: make(map[wal.TxnID]Mode)}
		m.locks[res] = ls
	}
	want := mode
	if cur, ok := ls.holders[txn]; ok {
		want = supremum(cur, mode)
		if want == cur {
			return true
		}
	} else if len(ls.queue) > 0 {
		return false
	}
	if !m.grantable(ls, txn, want) {
		return false
	}
	m.grant(ls, txn, res, want)
	return true
}

// grantable reports whether txn may hold want on ls given the OTHER holders.
func (m *Manager) grantable(ls *lockState, txn wal.TxnID, want Mode) bool {
	for holder, held := range ls.holders {
		if holder == txn {
			continue
		}
		if !compatible(want, held) {
			return false
		}
	}
	return true
}

func (m *Manager) grant(ls *lockState, txn wal.TxnID, res Resource, mode Mode) {
	ls.holders[txn] = mode
	hm := m.held[txn]
	if hm == nil {
		hm = make(map[Resource]Mode)
		m.held[txn] = hm
	}
	hm[res] = mode
}

func (m *Manager) removeRequest(ls *lockState, req *request) {
	for i, r := range ls.queue {
		if r == req {
			ls.queue = append(ls.queue[:i], ls.queue[i+1:]...)
			return
		}
	}
}

// ReleaseAll drops every lock txn holds and cancels any pending request.
// Called by the transaction manager at commit or abort (all locks are
// released at transaction termination).
func (m *Manager) ReleaseAll(txn wal.TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if req, ok := m.waits[txn]; ok {
		for _, ls := range m.locks {
			m.removeRequest(ls, req)
		}
		delete(m.waits, txn)
		req.done <- fmt.Errorf("lock: transaction %d terminated while waiting", txn)
	}
	for res := range m.held[txn] {
		ls := m.locks[res]
		if ls == nil {
			continue
		}
		delete(ls.holders, txn)
		m.wake(ls, res)
		if len(ls.holders) == 0 && len(ls.queue) == 0 {
			delete(m.locks, res)
		}
	}
	delete(m.held, txn)
}

// wake grants the longest compatible prefix of the queue.
func (m *Manager) wake(ls *lockState, res Resource) {
	for len(ls.queue) > 0 {
		req := ls.queue[0]
		if !m.grantable(ls, req.txn, req.mode) {
			return
		}
		ls.queue = ls.queue[1:]
		m.grant(ls, req.txn, res, req.mode)
		req.done <- nil
	}
}

// wouldDeadlock runs DFS over the waits-for graph starting from txn,
// following waiter → incompatible holder edges.
func (m *Manager) wouldDeadlock(start wal.TxnID) bool {
	visited := map[wal.TxnID]bool{}
	var dfs func(t wal.TxnID) bool
	dfs = func(t wal.TxnID) bool {
		req, waiting := m.waits[t]
		if !waiting {
			return false
		}
		// Find the resource this request queues on and its blockers.
		for res, ls := range m.locks {
			inQueue := false
			for _, r := range ls.queue {
				if r == req {
					inQueue = true
					break
				}
			}
			if !inQueue {
				continue
			}
			for holder, held := range ls.holders {
				if holder == t || compatible(req.mode, held) {
					continue
				}
				if holder == start {
					return true
				}
				if !visited[holder] {
					visited[holder] = true
					if dfs(holder) {
						return true
					}
				}
			}
			_ = res
		}
		return false
	}
	return dfs(start)
}

// HeldMode returns the mode txn holds on res (ModeNone if not held).
func (m *Manager) HeldMode(txn wal.TxnID, res Resource) Mode {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.held[txn][res]
}

// HeldCount returns how many locks txn currently holds.
func (m *Manager) HeldCount(txn wal.TxnID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.held[txn])
}
