package ddl_test

import (
	"strings"
	"testing"

	_ "dmx/internal/att/btreeix"
	_ "dmx/internal/att/check"
	_ "dmx/internal/att/hashidx"
	_ "dmx/internal/att/joinidx"
	_ "dmx/internal/att/refint"
	_ "dmx/internal/att/rtreeix"
	_ "dmx/internal/att/stats"
	_ "dmx/internal/att/trigger"
	_ "dmx/internal/att/unique"
	"dmx/internal/core"
	"dmx/internal/ddl"
	_ "dmx/internal/sm/appendsm"
	_ "dmx/internal/sm/btreesm"
	_ "dmx/internal/sm/heap"
	_ "dmx/internal/sm/memsm"
	_ "dmx/internal/sm/tempsm"
	"dmx/internal/types"
)

func newSession(t *testing.T) *ddl.Session {
	t.Helper()
	return ddl.NewSession(core.NewEnv(core.Config{}))
}

func mustExec(t *testing.T, s *ddl.Session, stmts ...string) *ddl.Result {
	t.Helper()
	var res *ddl.Result
	for _, stmt := range stmts {
		var err error
		res, err = s.Exec(stmt)
		if err != nil {
			t.Fatalf("exec %q: %v", stmt, err)
		}
	}
	return res
}

func TestCreateInsertSelect(t *testing.T) {
	s := newSession(t)
	mustExec(t, s,
		"CREATE TABLE emp (eno INT NOT NULL, name STRING, salary FLOAT) USING memory",
		"INSERT INTO emp VALUES (1, 'ada', 100.5), (2, 'bob', 90.0), (3, 'cyd', 120.25)",
	)
	res := mustExec(t, s, "SELECT name, salary FROM emp WHERE salary >= 100")
	if len(res.Rows) != 2 || len(res.Columns) != 2 || res.Columns[0] != "name" {
		t.Fatalf("res = %+v", res)
	}
	for _, r := range res.Rows {
		if r[1].AsFloat() < 100 {
			t.Fatalf("filter failed: %v", r)
		}
	}
	// SELECT * returns all columns.
	res = mustExec(t, s, "SELECT * FROM emp")
	if len(res.Rows) != 3 || len(res.Columns) != 3 {
		t.Fatalf("select * = %+v", res)
	}
}

func TestStorageMethodSelectionViaUSING(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE k (id INT NOT NULL, v STRING) USING btree WITH (key=id)")
	mustExec(t, s, "INSERT INTO k VALUES (5, 'five'), (1, 'one')")
	res := mustExec(t, s, "SELECT v FROM k WHERE id = 5")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "five" {
		t.Fatalf("res = %+v", res)
	}
	if !strings.Contains(res.Explain, "btree") {
		t.Fatalf("explain = %s", res.Explain)
	}
	// Unknown storage method is rejected by the registry.
	if _, err := s.Exec("CREATE TABLE bad (id INT) USING antigravity"); err == nil {
		t.Fatal("unknown storage method accepted")
	}
	// Attribute validation happens through the generic operation.
	if _, err := s.Exec("CREATE TABLE bad (id INT) USING btree WITH (colour=red)"); err == nil {
		t.Fatal("bad attribute accepted")
	}
}

func TestCreateIndexSugarAndPlanUse(t *testing.T) {
	s := newSession(t)
	mustExec(t, s,
		"CREATE TABLE emp (eno INT NOT NULL, dno INT) USING memory",
	)
	for i := 0; i < 50; i++ {
		mustExec(t, s, "INSERT INTO emp VALUES ("+itoa(i)+", "+itoa(i%5)+")")
	}
	mustExec(t, s, "CREATE INDEX byeno ON emp (eno)")
	res := mustExec(t, s, "SELECT eno FROM emp WHERE eno = 7")
	if !strings.Contains(res.Explain, "btree") {
		t.Fatalf("explain = %s", res.Explain)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 7 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func itoa(i int) string {
	return types.Int(int64(i)).String()
}

func TestUpdateAndDelete(t *testing.T) {
	s := newSession(t)
	mustExec(t, s,
		"CREATE TABLE t (id INT NOT NULL, v FLOAT) USING memory",
		"INSERT INTO t VALUES (1, 10.0), (2, 20.0), (3, 30.0)",
	)
	res := mustExec(t, s, "UPDATE t SET v = v * 2 WHERE id <> 2")
	if res.Affected != 2 {
		t.Fatalf("update affected = %d", res.Affected)
	}
	sel := mustExec(t, s, "SELECT v FROM t WHERE id = 1")
	if sel.Rows[0][0].AsFloat() != 20 {
		t.Fatalf("updated value = %v", sel.Rows[0][0])
	}
	// Values are now (1,20), (2,20), (3,60): only 60 matches.
	res = mustExec(t, s, "DELETE FROM t WHERE v >= 30")
	if res.Affected != 1 {
		t.Fatalf("delete affected = %d", res.Affected)
	}
	sel = mustExec(t, s, "SELECT * FROM t")
	if len(sel.Rows) != 2 {
		t.Fatalf("remaining = %d", len(sel.Rows))
	}
}

func TestExplicitTransactionsAndSavepoints(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE t (id INT NOT NULL, v STRING) USING memory")
	mustExec(t, s,
		"BEGIN",
		"INSERT INTO t VALUES (1, 'kept')",
		"SAVEPOINT sp",
		"INSERT INTO t VALUES (2, 'undone')",
		"ROLLBACK TO sp",
		"INSERT INTO t VALUES (3, 'kept')",
		"COMMIT",
	)
	res := mustExec(t, s, "SELECT * FROM t")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Full rollback.
	mustExec(t, s, "BEGIN", "INSERT INTO t VALUES (4, 'gone')", "ROLLBACK")
	res = mustExec(t, s, "SELECT * FROM t")
	if len(res.Rows) != 2 {
		t.Fatalf("rows after rollback = %v", res.Rows)
	}
	if _, err := s.Exec("COMMIT"); err == nil {
		t.Fatal("COMMIT without BEGIN accepted")
	}
	if _, err := s.Exec("SAVEPOINT x"); err == nil {
		t.Fatal("SAVEPOINT without BEGIN accepted")
	}
}

func TestAutocommitRollbackOnError(t *testing.T) {
	s := newSession(t)
	mustExec(t, s,
		"CREATE TABLE t (id INT NOT NULL, v STRING) USING memory",
		"CREATE ATTACHMENT unique ON t WITH (on=id)",
		"INSERT INTO t VALUES (1, 'a')",
	)
	// A multi-row autocommit insert with a duplicate fails atomically.
	if _, err := s.Exec("INSERT INTO t VALUES (2, 'b'), (1, 'dup')"); err == nil {
		t.Fatal("duplicate accepted")
	}
	res := mustExec(t, s, "SELECT * FROM t")
	if len(res.Rows) != 1 {
		t.Fatalf("partial insert leaked: %d rows", len(res.Rows))
	}
}

func TestJoinSyntax(t *testing.T) {
	s := newSession(t)
	mustExec(t, s,
		"CREATE TABLE dept (dno INT NOT NULL, dname STRING) USING memory",
		"CREATE TABLE emp (eno INT NOT NULL, dno INT) USING memory",
		"INSERT INTO dept VALUES (1, 'eng'), (2, 'ops')",
		"INSERT INTO emp VALUES (10, 1), (11, 1), (12, 2)",
	)
	res := mustExec(t, s, "SELECT emp.eno, dept.dname FROM emp JOIN dept ON emp.dno = dept.dno")
	if len(res.Rows) != 3 || len(res.Columns) != 2 {
		t.Fatalf("join res = %+v", res)
	}
	for _, r := range res.Rows {
		eno, dname := r[0].AsInt(), r[1].S
		want := "eng"
		if eno == 12 {
			want = "ops"
		}
		if dname != want {
			t.Fatalf("join row %v", r)
		}
	}
}

func TestAttachmentDDLAndConstraintVeto(t *testing.T) {
	s := newSession(t)
	mustExec(t, s,
		"CREATE TABLE acct (id INT NOT NULL, balance FLOAT) USING memory",
		"CREATE ATTACHMENT unique ON acct WITH (on=id)",
	)
	mustExec(t, s, "INSERT INTO acct VALUES (1, 100.0)")
	if _, err := s.Exec("INSERT INTO acct VALUES (1, 50.0)"); err == nil {
		t.Fatal("unique violation accepted")
	}
	mustExec(t, s, "DROP ATTACHMENT unique ON acct")
	mustExec(t, s, "INSERT INTO acct VALUES (1, 50.0)") // allowed now
	res := mustExec(t, s, "SELECT * FROM acct")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestSpatialDDL(t *testing.T) {
	s := newSession(t)
	mustExec(t, s,
		"CREATE TABLE parcels (id INT NOT NULL, shape BYTES) USING memory",
		"CREATE ATTACHMENT rtree ON parcels WITH (on=shape)",
		"INSERT INTO parcels VALUES (1, BOX(0,0,2,2)), (2, BOX(10,10,12,12))",
	)
	res := mustExec(t, s, "SELECT id FROM parcels WHERE ENCLOSES(BOX(0,0,5,5), shape)")
	if !strings.Contains(res.Explain, "rtree") {
		t.Fatalf("explain = %s", res.Explain)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestShowTablesAndDropTable(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE a (x INT) USING memory")
	mustExec(t, s, "CREATE TABLE b (x INT) USING memory")
	res := mustExec(t, s, "SHOW TABLES")
	if len(res.Rows) != 2 {
		t.Fatalf("tables = %v", res.Rows)
	}
	mustExec(t, s, "DROP TABLE a")
	res = mustExec(t, s, "SHOW TABLES")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "b" {
		t.Fatalf("tables after drop = %v", res.Rows)
	}
}

func TestBoundPlanReuseAndInvalidation(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE t (id INT NOT NULL, v INT) USING memory")
	for i := 0; i < 30; i++ {
		mustExec(t, s, "INSERT INTO t VALUES ("+itoa(i)+", "+itoa(i)+")")
	}
	q := "SELECT v FROM t WHERE id = 5"
	res1 := mustExec(t, s, q)
	if !strings.HasPrefix(res1.Explain, "scan(") {
		t.Fatalf("explain = %s", res1.Explain)
	}
	// Adding an index invalidates the saved plan; the next execution of
	// the same query text re-translates to use it.
	mustExec(t, s, "CREATE INDEX byid ON t (id)")
	res2 := mustExec(t, s, q)
	if !strings.Contains(res2.Explain, "btree") {
		t.Fatalf("plan not re-translated: %s", res2.Explain)
	}
	if len(res2.Rows) != 1 || res2.Rows[0][0].AsInt() != 5 {
		t.Fatalf("rows = %v", res2.Rows)
	}
}

func TestParseErrors(t *testing.T) {
	s := newSession(t)
	for _, bad := range []string{
		"",
		"FLY TO THE MOON",
		"CREATE SPACESHIP x",
		"CREATE TABLE",
		"CREATE TABLE t (x NOTATYPE)",
		"SELECT FROM t",
		"INSERT INTO t VALUES",
		"SELECT * FROM t WHERE",
		"INSERT INTO t VALUES (1) trailing",
		"SELECT * FROM t WHERE x = 'unterminated",
	} {
		if _, err := s.Exec(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestStringEscapesAndComments(t *testing.T) {
	s := newSession(t)
	mustExec(t, s,
		"CREATE TABLE t (id INT, v STRING) USING memory -- trailing comment",
		"INSERT INTO t VALUES (1, 'it''s')",
	)
	res := mustExec(t, s, "SELECT v FROM t")
	if res.Rows[0][0].S != "it's" {
		t.Fatalf("escape handling: %v", res.Rows[0][0])
	}
}

func TestIsNullAndBooleans(t *testing.T) {
	s := newSession(t)
	mustExec(t, s,
		"CREATE TABLE t (id INT, flag BOOL, v STRING) USING memory",
		"INSERT INTO t VALUES (1, TRUE, NULL), (2, FALSE, 'x')",
	)
	res := mustExec(t, s, "SELECT id FROM t WHERE v IS NULL")
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 1 {
		t.Fatalf("IS NULL rows = %v", res.Rows)
	}
	res = mustExec(t, s, "SELECT id FROM t WHERE NOT v IS NULL")
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 2 {
		t.Fatalf("NOT IS NULL rows = %v", res.Rows)
	}
}

func TestOrderByAndLimit(t *testing.T) {
	s := newSession(t)
	mustExec(t, s,
		"CREATE TABLE t (id INT NOT NULL, v FLOAT) USING memory",
		"INSERT INTO t VALUES (3, 30.0), (1, 10.0), (2, 20.0)",
	)
	res := mustExec(t, s, "SELECT id, v FROM t ORDER BY v DESC")
	if len(res.Rows) != 3 || res.Rows[0][0].AsInt() != 3 || res.Rows[2][0].AsInt() != 1 {
		t.Fatalf("order desc = %v", res.Rows)
	}
	res = mustExec(t, s, "SELECT id FROM t ORDER BY id ASC LIMIT 2")
	if len(res.Rows) != 2 || res.Rows[0][0].AsInt() != 1 || res.Rows[1][0].AsInt() != 2 {
		t.Fatalf("order+limit = %v", res.Rows)
	}
	res = mustExec(t, s, "SELECT id FROM t LIMIT 0")
	if len(res.Rows) != 0 {
		t.Fatalf("limit 0 = %v", res.Rows)
	}
	if _, err := s.Exec("SELECT id FROM t ORDER BY ghost"); err == nil {
		t.Fatal("unknown order column accepted")
	}
	if _, err := s.Exec("SELECT id FROM t LIMIT banana"); err == nil {
		t.Fatal("bad limit accepted")
	}
}

func TestCountStar(t *testing.T) {
	s := newSession(t)
	mustExec(t, s,
		"CREATE TABLE t (id INT NOT NULL, v FLOAT) USING memory",
		"INSERT INTO t VALUES (1, 1.0), (2, 2.0), (3, 3.0)",
	)
	res := mustExec(t, s, "SELECT COUNT(*) FROM t")
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 3 || res.Columns[0] != "count" {
		t.Fatalf("count = %+v", res)
	}
	res = mustExec(t, s, "SELECT COUNT(*) FROM t WHERE id > 1")
	if res.Rows[0][0].AsInt() != 2 {
		t.Fatalf("filtered count = %v", res.Rows)
	}
}

func TestOrderByOnJoinOutput(t *testing.T) {
	s := newSession(t)
	mustExec(t, s,
		"CREATE TABLE dept (dno INT NOT NULL, dname STRING) USING memory",
		"CREATE TABLE emp (eno INT NOT NULL, dno INT) USING memory",
		"INSERT INTO dept VALUES (1, 'eng'), (2, 'ops')",
		"INSERT INTO emp VALUES (12, 2), (10, 1), (11, 1)",
	)
	res := mustExec(t, s, "SELECT emp.eno, dept.dname FROM emp JOIN dept ON emp.dno = dept.dno ORDER BY eno")
	if len(res.Rows) != 3 || res.Rows[0][0].AsInt() != 10 || res.Rows[2][0].AsInt() != 12 {
		t.Fatalf("join order = %v", res.Rows)
	}
}

func TestAuthorizationStatements(t *testing.T) {
	s := newSession(t)
	s.Env().Authz.Enable()
	mustExec(t, s, "SET USER alice")
	mustExec(t, s,
		"CREATE TABLE t (id INT NOT NULL) USING memory", // alice becomes admin
		"INSERT INTO t VALUES (1)",
	)
	// Bob can do nothing yet.
	bob := ddl.NewSession(s.Env())
	mustExec(t, bob, "SET USER bob")
	if _, err := bob.Exec("SELECT * FROM t"); err == nil {
		t.Fatal("unauthorized select accepted")
	}
	if _, err := bob.Exec("GRANT read ON t TO bob"); err == nil {
		t.Fatal("self-grant without admin accepted")
	}
	// Alice grants READ: bob reads but cannot write.
	mustExec(t, s, "GRANT read ON t TO bob")
	res := mustExec(t, bob, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].AsInt() != 1 {
		t.Fatalf("bob read = %v", res.Rows)
	}
	if _, err := bob.Exec("INSERT INTO t VALUES (2)"); err == nil {
		t.Fatal("unauthorized insert accepted")
	}
	mustExec(t, s, "GRANT write ON t TO bob")
	mustExec(t, bob, "INSERT INTO t VALUES (2)")
	// Revoke cuts bob off entirely.
	mustExec(t, s, "REVOKE ON t FROM bob")
	if _, err := bob.Exec("SELECT * FROM t"); err == nil {
		t.Fatal("revoked select accepted")
	}
	// Bad statements.
	if _, err := s.Exec("GRANT fly ON t TO bob"); err == nil {
		t.Fatal("bad privilege accepted")
	}
	if _, err := s.Exec("GRANT read ON ghost TO bob"); err == nil {
		t.Fatal("grant on missing table accepted")
	}
	if _, err := s.Exec("REVOKE ON ghost FROM bob"); err == nil {
		t.Fatal("revoke on missing table accepted")
	}
}

func TestOrderByUsesIndexWhenAvailable(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE t (id INT NOT NULL, v FLOAT) USING heap")
	for i := 30; i > 0; i-- {
		mustExec(t, s, "INSERT INTO t VALUES ("+itoa(i)+", "+itoa(i)+".0)")
	}
	mustExec(t, s, "CREATE INDEX byid ON t (id)")
	// Top-k: the ordered index streams the first rows without a sort.
	res := mustExec(t, s, "SELECT id FROM t ORDER BY id LIMIT 5")
	if !strings.Contains(res.Explain, "[ordered]") {
		t.Fatalf("explain = %s", res.Explain)
	}
	if len(res.Rows) != 5 || res.Rows[0][0].AsInt() != 1 || res.Rows[4][0].AsInt() != 5 {
		t.Fatalf("top-k rows = %v", res.Rows)
	}
	// Full-table ORDER BY still returns sorted rows (scan + session sort).
	res = mustExec(t, s, "SELECT id FROM t ORDER BY id")
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1][0].AsInt() > res.Rows[i][0].AsInt() {
			t.Fatal("not ordered")
		}
	}
}
