package ddl

import (
	"fmt"
	"strconv"
	"strings"

	"dmx/internal/core"
	"dmx/internal/expr"
	"dmx/internal/types"
)

// Stmt is one parsed statement.
type Stmt interface{ stmt() }

// CreateTable is CREATE TABLE name (cols) [USING method] [WITH (attrs)].
type CreateTable struct {
	Name   string
	Schema *types.Schema
	Using  string
	Attrs  core.AttrList
}

// CreateAttachment is CREATE ATTACHMENT type ON table [WITH (attrs)].
type CreateAttachment struct {
	Type  string
	Table string
	Attrs core.AttrList
}

// DropTable is DROP TABLE name.
type DropTable struct{ Name string }

// DropAttachment is DROP ATTACHMENT type ON table [WITH (attrs)].
type DropAttachment struct {
	Type  string
	Table string
	Attrs core.AttrList
}

// Insert is INSERT INTO table VALUES (...), (...).
type Insert struct {
	Table string
	Rows  []types.Record
}

// Select is SELECT cols FROM table [JOIN t2 ON a = b [USING JOININDEX n]]
// [WHERE pred] [ORDER BY col [DESC]] [LIMIT n].
type Select struct {
	Columns   []colRef // empty = *
	Count     bool     // SELECT COUNT(*)
	Table     string
	Join      *joinClause
	Where     *rawExpr
	OrderBy   *colRef
	OrderDesc bool
	Limit     int // -1 = no limit
}

type colRef struct {
	Table  string // optional qualifier
	Column string
}

type joinClause struct {
	Table             string
	LeftCol, RightCol colRef
	JoinIndex         string
}

// Update is UPDATE table SET col = expr, ... [WHERE pred].
type Update struct {
	Table string
	Set   map[string]*rawExpr
	Where *rawExpr
}

// Delete is DELETE FROM table [WHERE pred].
type Delete struct {
	Table string
	Where *rawExpr
}

// Txn control statements.
type (
	Begin       struct{}
	Commit      struct{}
	Rollback    struct{}
	Savepoint   struct{ Name string }
	RollbackTo  struct{ Name string }
	ShowCatalog struct{}
)

// SetUser is SET USER name (the session identity for authorization).
type SetUser struct{ Name string }

// Grant is GRANT READ|WRITE|ADMIN ON table TO user.
type Grant struct {
	Privilege string
	Table     string
	User      string
}

// Revoke is REVOKE ON table FROM user.
type Revoke struct {
	Table string
	User  string
}

func (CreateTable) stmt()      {}
func (CreateAttachment) stmt() {}
func (DropTable) stmt()        {}
func (DropAttachment) stmt()   {}
func (Insert) stmt()           {}
func (Select) stmt()           {}
func (Update) stmt()           {}
func (Delete) stmt()           {}
func (Begin) stmt()            {}
func (Commit) stmt()           {}
func (Rollback) stmt()         {}
func (Savepoint) stmt()        {}
func (RollbackTo) stmt()       {}
func (ShowCatalog) stmt()      {}
func (SetUser) stmt()          {}
func (Grant) stmt()            {}
func (Revoke) stmt()           {}

// rawExpr is an unresolved expression tree: column references are by name
// and get bound to field positions against a schema at execution time.
type rawExpr struct {
	op   expr.Op
	val  types.Value
	col  colRef
	name string // function name
	args []*rawExpr
}

// Parse parses one statement.
func Parse(src string) (Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.statement()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("ddl: trailing input at %q", p.peek().text)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

// kw reports whether the next token is the given keyword (case-insensitive)
// and consumes it if so.
func (p *parser) kw(word string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, word) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(word string) error {
	if !p.kw(word) {
		return fmt.Errorf("ddl: expected %s, got %q", strings.ToUpper(word), p.peek().text)
	}
	return nil
}

func (p *parser) punct(s string) bool {
	t := p.peek()
	if t.kind == tokPunct && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.punct(s) {
		return fmt.Errorf("ddl: expected %q, got %q", s, p.peek().text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("ddl: expected identifier, got %q", t.text)
	}
	p.pos++
	return t.text, nil
}

// tableName parses a possibly qualified relation name — ident ('.' ident)*
// joined with dots. Catalog names are flat strings, so "sys.stat_activity"
// is simply a name containing a dot (the system relations live in that
// namespace).
func (p *parser) tableName() (string, error) {
	name, err := p.ident()
	if err != nil {
		return "", err
	}
	for p.punct(".") {
		seg, err := p.ident()
		if err != nil {
			return "", err
		}
		name += "." + seg
	}
	return name, nil
}

func (p *parser) statement() (Stmt, error) {
	switch {
	case p.kw("create"):
		switch {
		case p.kw("table"):
			return p.createTable()
		case p.kw("attachment"):
			return p.createAttachment()
		case p.kw("index"):
			return p.createIndex()
		default:
			return nil, fmt.Errorf("ddl: CREATE must be followed by TABLE, ATTACHMENT, or INDEX")
		}
	case p.kw("drop"):
		switch {
		case p.kw("table"):
			name, err := p.tableName()
			if err != nil {
				return nil, err
			}
			return DropTable{Name: name}, nil
		case p.kw("attachment"):
			return p.dropAttachment()
		default:
			return nil, fmt.Errorf("ddl: DROP must be followed by TABLE or ATTACHMENT")
		}
	case p.kw("insert"):
		return p.insert()
	case p.kw("select"):
		return p.selectStmt()
	case p.kw("update"):
		return p.update()
	case p.kw("delete"):
		return p.delete()
	case p.kw("begin"):
		return Begin{}, nil
	case p.kw("commit"):
		return Commit{}, nil
	case p.kw("rollback"):
		if p.kw("to") {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			return RollbackTo{Name: name}, nil
		}
		return Rollback{}, nil
	case p.kw("savepoint"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return Savepoint{Name: name}, nil
	case p.kw("show"):
		if err := p.expectKw("tables"); err != nil {
			return nil, err
		}
		return ShowCatalog{}, nil
	case p.kw("set"):
		if err := p.expectKw("user"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return SetUser{Name: name}, nil
	case p.kw("grant"):
		priv, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("on"); err != nil {
			return nil, err
		}
		table, err := p.tableName()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("to"); err != nil {
			return nil, err
		}
		user, err := p.ident()
		if err != nil {
			return nil, err
		}
		return Grant{Privilege: priv, Table: table, User: user}, nil
	case p.kw("revoke"):
		if err := p.expectKw("on"); err != nil {
			return nil, err
		}
		table, err := p.tableName()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("from"); err != nil {
			return nil, err
		}
		user, err := p.ident()
		if err != nil {
			return nil, err
		}
		return Revoke{Table: table, User: user}, nil
	default:
		return nil, fmt.Errorf("ddl: unknown statement starting with %q", p.peek().text)
	}
}

func (p *parser) createTable() (Stmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var cols []types.Column
	for {
		colName, err := p.ident()
		if err != nil {
			return nil, err
		}
		typeName, err := p.ident()
		if err != nil {
			return nil, err
		}
		kind, err := types.KindFromString(typeName)
		if err != nil {
			return nil, err
		}
		col := types.Column{Name: colName, Kind: kind}
		if p.kw("not") {
			if err := p.expectKw("null"); err != nil {
				return nil, err
			}
			col.NotNull = true
		}
		cols = append(cols, col)
		if p.punct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	using := "heap"
	if p.kw("using") {
		if using, err = p.ident(); err != nil {
			return nil, err
		}
	}
	attrs, err := p.withAttrs()
	if err != nil {
		return nil, err
	}
	schema, err := types.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	return CreateTable{Name: name, Schema: schema, Using: using, Attrs: attrs}, nil
}

// withAttrs parses an optional WITH (k=v, k2=v2) attribute/value list.
// Values may be identifiers, numbers, or strings; a bare key means "true".
func (p *parser) withAttrs() (core.AttrList, error) {
	if !p.kw("with") {
		return nil, nil
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	attrs := core.AttrList{}
	for {
		key, err := p.ident()
		if err != nil {
			return nil, err
		}
		val := "true"
		if p.punct("=") {
			t := p.next()
			switch t.kind {
			case tokIdent, tokNumber, tokString:
				val = t.text
				// Attribute values like column lists may continue with
				// commas inside: on=a,b is written as on='a,b' instead.
			default:
				return nil, fmt.Errorf("ddl: bad attribute value %q", t.text)
			}
		}
		attrs[key] = val
		if p.punct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return attrs, nil
}

func (p *parser) createAttachment() (Stmt, error) {
	typ, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("on"); err != nil {
		return nil, err
	}
	table, err := p.tableName()
	if err != nil {
		return nil, err
	}
	attrs, err := p.withAttrs()
	if err != nil {
		return nil, err
	}
	return CreateAttachment{Type: typ, Table: table, Attrs: attrs}, nil
}

// createIndex is sugar: CREATE [UNIQUE] INDEX name ON table (cols) [USING type].
func (p *parser) createIndex() (Stmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("on"); err != nil {
		return nil, err
	}
	table, err := p.tableName()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
		if p.punct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	typ := "btree"
	if p.kw("using") {
		if typ, err = p.ident(); err != nil {
			return nil, err
		}
	}
	attrs := core.AttrList{"name": name, "on": strings.Join(cols, ",")}
	if p.kw("unique") {
		attrs["unique"] = "true"
	}
	return CreateAttachment{Type: typ, Table: table, Attrs: attrs}, nil
}

func (p *parser) dropAttachment() (Stmt, error) {
	typ, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("on"); err != nil {
		return nil, err
	}
	table, err := p.tableName()
	if err != nil {
		return nil, err
	}
	attrs, err := p.withAttrs()
	if err != nil {
		return nil, err
	}
	return DropAttachment{Type: typ, Table: table, Attrs: attrs}, nil
}

func (p *parser) insert() (Stmt, error) {
	if err := p.expectKw("into"); err != nil {
		return nil, err
	}
	table, err := p.tableName()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("values"); err != nil {
		return nil, err
	}
	var rows []types.Record
	for {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var rec types.Record
		for {
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			rec = append(rec, v)
			if p.punct(",") {
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		rows = append(rows, rec)
		if p.punct(",") {
			continue
		}
		break
	}
	return Insert{Table: table, Rows: rows}, nil
}

// literal parses a literal value: number, string, TRUE/FALSE/NULL, or
// BOX(x1,y1,x2,y2).
func (p *parser) literal() (types.Value, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.pos++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			return types.Float(f), err
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		return types.Int(i), err
	case t.kind == tokPunct && t.text == "-":
		p.pos++
		v, err := p.literal()
		if err != nil {
			return types.Null(), err
		}
		if v.K == types.KindFloat {
			return types.Float(-v.F), nil
		}
		return types.Int(-v.I), nil
	case t.kind == tokString:
		p.pos++
		return types.Str(t.text), nil
	case p.kw("true"):
		return types.Bool(true), nil
	case p.kw("false"):
		return types.Bool(false), nil
	case p.kw("null"):
		return types.Null(), nil
	case p.kw("box"):
		if err := p.expectPunct("("); err != nil {
			return types.Null(), err
		}
		var coords [4]float64
		for i := 0; i < 4; i++ {
			v, err := p.literal()
			if err != nil {
				return types.Null(), err
			}
			coords[i] = v.AsFloat()
			if i < 3 {
				if err := p.expectPunct(","); err != nil {
					return types.Null(), err
				}
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return types.Null(), err
		}
		return expr.NewBox(coords[0], coords[1], coords[2], coords[3]).Value(), nil
	default:
		return types.Null(), fmt.Errorf("ddl: expected literal, got %q", t.text)
	}
}

func (p *parser) colRef() (colRef, error) {
	first, err := p.ident()
	if err != nil {
		return colRef{}, err
	}
	// ident ('.' ident)*: the last segment is the column, everything before
	// it is the (possibly dotted) table qualifier — so
	// sys.stat_activity.id resolves as table "sys.stat_activity".
	parts := []string{first}
	for p.punct(".") {
		seg, err := p.ident()
		if err != nil {
			return colRef{}, err
		}
		parts = append(parts, seg)
	}
	if len(parts) == 1 {
		return colRef{Column: first}, nil
	}
	return colRef{
		Table:  strings.Join(parts[:len(parts)-1], "."),
		Column: parts[len(parts)-1],
	}, nil
}

func (p *parser) selectStmt() (Stmt, error) {
	sel := Select{Limit: -1}
	switch {
	case p.punct("*"):
	case p.kw("count"):
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if err := p.expectPunct("*"); err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		sel.Count = true
	default:
		for {
			ref, err := p.colRef()
			if err != nil {
				return nil, err
			}
			sel.Columns = append(sel.Columns, ref)
			if p.punct(",") {
				continue
			}
			break
		}
	}
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	table, err := p.tableName()
	if err != nil {
		return nil, err
	}
	sel.Table = table
	if p.kw("join") {
		jc := &joinClause{}
		if jc.Table, err = p.tableName(); err != nil {
			return nil, err
		}
		if err := p.expectKw("on"); err != nil {
			return nil, err
		}
		if jc.LeftCol, err = p.colRef(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		if jc.RightCol, err = p.colRef(); err != nil {
			return nil, err
		}
		if p.kw("using") {
			if err := p.expectKw("joinindex"); err != nil {
				return nil, err
			}
			if jc.JoinIndex, err = p.ident(); err != nil {
				return nil, err
			}
		}
		sel.Join = jc
	}
	if p.kw("where") {
		w, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.kw("order") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		ref, err := p.colRef()
		if err != nil {
			return nil, err
		}
		sel.OrderBy = &ref
		switch {
		case p.kw("desc"):
			sel.OrderDesc = true
		case p.kw("asc"):
		}
	}
	if p.kw("limit") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("ddl: LIMIT wants a number, got %q", t.text)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("ddl: bad LIMIT %q", t.text)
		}
		sel.Limit = n
	}
	return sel, nil
}

func (p *parser) update() (Stmt, error) {
	table, err := p.tableName()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("set"); err != nil {
		return nil, err
	}
	set := map[string]*rawExpr{}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		e, err := p.sum()
		if err != nil {
			return nil, err
		}
		set[strings.ToLower(col)] = e
		if p.punct(",") {
			continue
		}
		break
	}
	stmt := Update{Table: table, Set: set}
	if p.kw("where") {
		w, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

func (p *parser) delete() (Stmt, error) {
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	table, err := p.tableName()
	if err != nil {
		return nil, err
	}
	stmt := Delete{Table: table}
	if p.kw("where") {
		w, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

// --- expression grammar (to rawExpr) ---

func (p *parser) orExpr() (*rawExpr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.kw("or") {
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = &rawExpr{op: expr.OpOr, args: []*rawExpr{left, right}}
	}
	return left, nil
}

func (p *parser) andExpr() (*rawExpr, error) {
	left, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.kw("and") {
		right, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		left = &rawExpr{op: expr.OpAnd, args: []*rawExpr{left, right}}
	}
	return left, nil
}

func (p *parser) cmpExpr() (*rawExpr, error) {
	if p.kw("not") {
		inner, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		return &rawExpr{op: expr.OpNot, args: []*rawExpr{inner}}, nil
	}
	left, err := p.sum()
	if err != nil {
		return nil, err
	}
	if p.kw("is") {
		if err := p.expectKw("null"); err != nil {
			return nil, err
		}
		return &rawExpr{op: expr.OpIsNull, args: []*rawExpr{left}}, nil
	}
	ops := map[string]expr.Op{
		"=": expr.OpEq, "<>": expr.OpNe, "<": expr.OpLt,
		"<=": expr.OpLe, ">": expr.OpGt, ">=": expr.OpGe,
	}
	t := p.peek()
	if t.kind == tokPunct {
		if op, ok := ops[t.text]; ok {
			p.pos++
			right, err := p.sum()
			if err != nil {
				return nil, err
			}
			return &rawExpr{op: op, args: []*rawExpr{left, right}}, nil
		}
	}
	return left, nil
}

func (p *parser) sum() (*rawExpr, error) {
	left, err := p.term()
	if err != nil {
		return nil, err
	}
	for {
		var op expr.Op
		switch {
		case p.punct("+"):
			op = expr.OpAdd
		case p.punct("-"):
			op = expr.OpSub
		default:
			return left, nil
		}
		right, err := p.term()
		if err != nil {
			return nil, err
		}
		left = &rawExpr{op: op, args: []*rawExpr{left, right}}
	}
}

func (p *parser) term() (*rawExpr, error) {
	left, err := p.factor()
	if err != nil {
		return nil, err
	}
	for {
		var op expr.Op
		switch {
		case p.punct("*"):
			op = expr.OpMul
		case p.punct("/"):
			op = expr.OpDiv
		default:
			return left, nil
		}
		right, err := p.factor()
		if err != nil {
			return nil, err
		}
		left = &rawExpr{op: op, args: []*rawExpr{left, right}}
	}
}

func (p *parser) factor() (*rawExpr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber, t.kind == tokString,
		t.kind == tokPunct && t.text == "-":
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		return &rawExpr{op: expr.OpConst, val: v}, nil
	case t.kind == tokPunct && t.text == "(":
		p.pos++
		inner, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return inner, nil
	case t.kind == tokIdent:
		upper := strings.ToUpper(t.text)
		switch upper {
		case "TRUE", "FALSE", "NULL", "BOX":
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			return &rawExpr{op: expr.OpConst, val: v}, nil
		case "ENCLOSES", "OVERLAPS":
			p.pos++
			args, err := p.callArgs()
			if err != nil {
				return nil, err
			}
			if len(args) != 2 {
				return nil, fmt.Errorf("ddl: %s takes two arguments", upper)
			}
			op := expr.OpEncloses
			if upper == "OVERLAPS" {
				op = expr.OpOverlaps
			}
			return &rawExpr{op: op, args: args}, nil
		}
		// A column reference or a function call.
		name, _ := p.ident()
		if p.peek().kind == tokPunct && p.peek().text == "(" {
			args, err := p.callArgs()
			if err != nil {
				return nil, err
			}
			return &rawExpr{op: expr.OpFunc, name: name, args: args}, nil
		}
		parts := []string{name}
		for p.punct(".") {
			seg, err := p.ident()
			if err != nil {
				return nil, err
			}
			parts = append(parts, seg)
		}
		if len(parts) > 1 {
			return &rawExpr{op: expr.OpField, col: colRef{
				Table:  strings.Join(parts[:len(parts)-1], "."),
				Column: parts[len(parts)-1],
			}}, nil
		}
		return &rawExpr{op: expr.OpField, col: colRef{Column: name}}, nil
	default:
		return nil, fmt.Errorf("ddl: unexpected token %q in expression", t.text)
	}
}

func (p *parser) callArgs() ([]*rawExpr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []*rawExpr
	if p.punct(")") {
		return args, nil
	}
	for {
		a, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if p.punct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return args, nil
}

// bind resolves a rawExpr against a schema, producing an executable
// expression over field positions.
func (r *rawExpr) bind(schema *types.Schema, tableName string) (*expr.Expr, error) {
	if r == nil {
		return nil, nil
	}
	switch r.op {
	case expr.OpConst:
		return expr.Const(r.val), nil
	case expr.OpField:
		if r.col.Table != "" && !strings.EqualFold(r.col.Table, tableName) {
			return nil, fmt.Errorf("ddl: column %s.%s does not belong to %s",
				r.col.Table, r.col.Column, tableName)
		}
		i := schema.ColIndex(r.col.Column)
		if i < 0 {
			return nil, fmt.Errorf("ddl: unknown column %q in %s", r.col.Column, tableName)
		}
		return expr.NamedField(i, r.col.Column), nil
	case expr.OpFunc:
		args, err := bindAll(r.args, schema, tableName)
		if err != nil {
			return nil, err
		}
		return &expr.Expr{Op: expr.OpFunc, Name: r.name, Args: args}, nil
	default:
		args, err := bindAll(r.args, schema, tableName)
		if err != nil {
			return nil, err
		}
		return &expr.Expr{Op: r.op, Args: args}, nil
	}
}

func bindAll(raws []*rawExpr, schema *types.Schema, tableName string) ([]*expr.Expr, error) {
	out := make([]*expr.Expr, len(raws))
	for i, r := range raws {
		e, err := r.bind(schema, tableName)
		if err != nil {
			return nil, err
		}
		out[i] = e
	}
	return out, nil
}
