package ddl

import (
	"fmt"
	"sort"
	"strings"

	"dmx/internal/core"
	"dmx/internal/expr"
	"dmx/internal/plan"
	"dmx/internal/txn"
	"dmx/internal/types"
)

// Result is the outcome of executing one statement.
type Result struct {
	Columns  []string
	Rows     []types.Record
	Affected int
	Message  string
	Explain  string
}

// Session executes statements against an environment. Queries are bound
// once and the saved execution plans are reused whenever the same query
// text is executed again; invalidated plans re-translate automatically.
// A session is confined to one goroutine.
type Session struct {
	env     *core.Env
	planner *plan.Planner
	tx      *txn.Txn
	plans   map[string]*plan.Bound
	user    string
}

// SetUser attaches a user identity to the session; transactions the
// session starts carry it for the uniform authorization facility.
func (s *Session) SetUser(user string) { s.user = user }

// NewSession returns a session over env.
func NewSession(env *core.Env) *Session {
	return &Session{env: env, planner: plan.New(env), plans: make(map[string]*plan.Bound)}
}

// Env exposes the underlying environment.
func (s *Session) Env() *core.Env { return s.env }

// InTxn reports whether an explicit transaction is open.
func (s *Session) InTxn() bool { return s.tx != nil }

// Exec parses and executes one statement. Outside an explicit BEGIN,
// each statement runs in its own transaction.
func (s *Session) Exec(src string) (*Result, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	switch st := stmt.(type) {
	case Begin:
		if s.tx != nil {
			return nil, fmt.Errorf("ddl: transaction already open")
		}
		s.tx = s.env.Begin()
		s.tx.SetUser(s.user)
		return &Result{Message: "BEGIN"}, nil
	case Commit:
		if s.tx == nil {
			return nil, fmt.Errorf("ddl: no open transaction")
		}
		err := s.tx.Commit()
		s.tx = nil
		if err != nil {
			return nil, err
		}
		return &Result{Message: "COMMIT"}, nil
	case Rollback:
		if s.tx == nil {
			return nil, fmt.Errorf("ddl: no open transaction")
		}
		err := s.tx.Abort()
		s.tx = nil
		if err != nil {
			return nil, err
		}
		return &Result{Message: "ROLLBACK"}, nil
	case Savepoint:
		if s.tx == nil {
			return nil, fmt.Errorf("ddl: SAVEPOINT requires an open transaction")
		}
		if _, err := s.tx.Savepoint(st.Name); err != nil {
			return nil, err
		}
		return &Result{Message: "SAVEPOINT " + st.Name}, nil
	case RollbackTo:
		if s.tx == nil {
			return nil, fmt.Errorf("ddl: ROLLBACK TO requires an open transaction")
		}
		if err := s.tx.RollbackTo(st.Name); err != nil {
			return nil, err
		}
		return &Result{Message: "ROLLBACK TO " + st.Name}, nil
	case SetUser:
		s.user = st.Name
		if s.tx != nil {
			s.tx.SetUser(st.Name)
		}
		return &Result{Message: "SET USER " + st.Name}, nil
	case Grant:
		return s.execGrant(st)
	case Revoke:
		rd, ok := s.env.Cat.ByName(st.Table)
		if !ok {
			return nil, fmt.Errorf("ddl: %w: table %q", core.ErrNotFound, st.Table)
		}
		s.env.Authz.Revoke(st.User, rd.RelID)
		return &Result{Message: fmt.Sprintf("REVOKE ON %s FROM %s", st.Table, st.User)}, nil
	case ShowCatalog:
		names := s.env.Cat.List()
		sort.Strings(names)
		res := &Result{Columns: []string{"table"}}
		for _, n := range names {
			res.Rows = append(res.Rows, types.Record{types.Str(n)})
		}
		return res, nil
	}

	var res *Result
	runErr := s.withTxn(func(tx *txn.Txn) (err error) {
		// Each DML/query statement is one span under the transaction root,
		// tagged with the (truncated) statement text.
		if tx.Trace().Detailed() {
			sp := tx.Trace().StartSpan("stmt", "", stmtOp(stmt))
			sp.SetNote(truncateSrc(src))
			defer func() { sp.End(err) }()
		}
		res, err = s.execInTxn(tx, stmt, src)
		return err
	})
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}

// stmtOp names the statement kind for span tagging.
func stmtOp(stmt Stmt) string {
	switch stmt.(type) {
	case Insert:
		return "insert"
	case Update:
		return "update"
	case Delete:
		return "delete"
	case Select:
		return "select"
	case CreateTable, CreateAttachment, DropTable, DropAttachment:
		return "ddl"
	default:
		return fmt.Sprintf("%T", stmt)
	}
}

// truncateSrc bounds the statement text carried on a span.
func truncateSrc(src string) string {
	src = strings.TrimSpace(src)
	if len(src) > 120 {
		return src[:117] + "..."
	}
	return src
}

// execGrant applies a GRANT statement; granting requires ADMIN on the
// relation when authorization is enabled.
func (s *Session) execGrant(st Grant) (*Result, error) {
	rd, ok := s.env.Cat.ByName(st.Table)
	if !ok {
		return nil, fmt.Errorf("ddl: %w: table %q", core.ErrNotFound, st.Table)
	}
	var priv core.Privilege
	switch strings.ToLower(st.Privilege) {
	case "read":
		priv = core.PrivRead
	case "write":
		priv = core.PrivWrite
	case "admin":
		priv = core.PrivAdmin
	default:
		return nil, fmt.Errorf("ddl: privilege must be READ, WRITE, or ADMIN, got %q", st.Privilege)
	}
	if s.env.Authz.Enabled() {
		tx := s.env.Begin()
		tx.SetUser(s.user)
		err := s.env.Authz.Check(tx, rd, core.PrivAdmin)
		tx.Commit()
		if err != nil {
			return nil, err
		}
	}
	s.env.Authz.Grant(st.User, rd.RelID, priv)
	return &Result{Message: fmt.Sprintf("GRANT %s ON %s TO %s",
		strings.ToUpper(st.Privilege), st.Table, st.User)}, nil
}

// withTxn runs fn in the session's open transaction, or in a fresh
// autocommit transaction.
func (s *Session) withTxn(fn func(tx *txn.Txn) error) error {
	if s.tx != nil {
		return fn(s.tx)
	}
	tx := s.env.Begin()
	tx.SetUser(s.user)
	if err := fn(tx); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

func (s *Session) execInTxn(tx *txn.Txn, stmt Stmt, src string) (*Result, error) {
	switch st := stmt.(type) {
	case CreateTable:
		if _, err := s.env.CreateRelation(tx, st.Name, st.Schema, st.Using, st.Attrs); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("CREATE TABLE %s (USING %s)", st.Name, st.Using)}, nil
	case CreateAttachment:
		if _, err := s.env.CreateAttachment(tx, st.Table, st.Type, st.Attrs); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("CREATE ATTACHMENT %s ON %s", st.Type, st.Table)}, nil
	case DropTable:
		if err := s.env.DropRelation(tx, st.Name); err != nil {
			return nil, err
		}
		return &Result{Message: "DROP TABLE " + st.Name}, nil
	case DropAttachment:
		if _, err := s.env.DropAttachment(tx, st.Table, st.Type, st.Attrs); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("DROP ATTACHMENT %s ON %s", st.Type, st.Table)}, nil
	case Insert:
		rel, err := s.env.OpenRelationByName(st.Table)
		if err != nil {
			return nil, err
		}
		for _, rec := range st.Rows {
			if _, err := rel.Insert(tx, rec); err != nil {
				return nil, err
			}
		}
		return &Result{Affected: len(st.Rows), Message: fmt.Sprintf("INSERT %d", len(st.Rows))}, nil
	case Select:
		return s.execSelect(tx, st, src)
	case Update:
		return s.execUpdate(tx, st)
	case Delete:
		return s.execDelete(tx, st)
	default:
		return nil, fmt.Errorf("ddl: unhandled statement %T", stmt)
	}
}

// planFor returns the cached bound plan for the statement text, binding it
// on first use (the "query binding" approach: translations are retained
// and reused across executions).
func (s *Session) planFor(src string, build func() (plan.Query, []string, error)) (*plan.Bound, []string, error) {
	key := strings.TrimSpace(src)
	q, cols, err := build()
	if err != nil {
		return nil, nil, err
	}
	if b, ok := s.plans[key]; ok {
		return b, cols, nil
	}
	b, err := s.planner.Plan(q)
	if err != nil {
		return nil, nil, err
	}
	s.plans[key] = b
	return b, cols, nil
}

func (s *Session) execSelect(tx *txn.Txn, st Select, src string) (*Result, error) {
	b, cols, err := s.planFor(src, func() (plan.Query, []string, error) {
		return s.buildQuery(st)
	})
	if err != nil {
		return nil, err
	}
	// Pull only LIMIT rows when no sort will reorder them afterwards.
	pullLimit := -1
	if st.Limit >= 0 && !st.Count &&
		(st.OrderBy == nil || (b.Ordered() && !st.OrderDesc)) {
		pullLimit = st.Limit
	}
	rs, rerr := b.Execute(tx)
	rows, err := collectLimit(rs, rerr, pullLimit)
	if err != nil {
		return nil, err
	}
	if st.Count {
		return &Result{
			Columns: []string{"count"},
			Rows:    []types.Record{{types.Int(int64(len(rows)))}},
			Explain: b.Explain(),
		}, nil
	}
	if st.OrderBy != nil && !(b.Ordered() && !st.OrderDesc) {
		idx, err := orderColumn(cols, *st.OrderBy)
		if err != nil {
			return nil, err
		}
		sort.SliceStable(rows, func(i, j int) bool {
			c := types.Compare(rows[i][idx], rows[j][idx])
			if st.OrderDesc {
				return c > 0
			}
			return c < 0
		})
	}
	if st.Limit >= 0 && len(rows) > st.Limit {
		rows = rows[:st.Limit]
	}
	return &Result{Columns: cols, Rows: rows, Explain: b.Explain()}, nil
}

// collectLimit drains up to limit rows (all when limit < 0).
func collectLimit(rows plan.Rows, err error, limit int) ([]types.Record, error) {
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out []types.Record
	for limit < 0 || len(out) < limit {
		rec, ok, err := rows.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		out = append(out, rec)
	}
	return out, nil
}

// orderColumn resolves an ORDER BY reference against the result columns
// (which are plain names for single-table queries and table.column names
// for joins).
func orderColumn(cols []string, ref colRef) (int, error) {
	want := ref.Column
	if ref.Table != "" {
		want = ref.Table + "." + ref.Column
	}
	for i, c := range cols {
		if strings.EqualFold(c, want) {
			return i, nil
		}
		// Unqualified references match a qualified output column by suffix.
		if ref.Table == "" && strings.HasSuffix(strings.ToLower(c), "."+strings.ToLower(want)) {
			return i, nil
		}
	}
	return 0, fmt.Errorf("ddl: ORDER BY column %q is not in the select list", want)
}

// buildQuery resolves a Select statement into a planner query.
func (s *Session) buildQuery(st Select) (plan.Query, []string, error) {
	outerRD, ok := s.env.Cat.ByName(st.Table)
	if !ok {
		return plan.Query{}, nil, fmt.Errorf("ddl: %w: table %q", core.ErrNotFound, st.Table)
	}
	q := plan.Query{Table: st.Table}
	where, err := st.Where.bind(outerRD.Schema, st.Table)
	if err != nil {
		return plan.Query{}, nil, err
	}
	q.Filter = where
	// Ascending single-table ORDER BY is offered to the planner, which may
	// pick an access path that delivers the order and saves the sort; a
	// LIMIT makes a streaming ordered access attractive (top-k).
	if st.Join == nil && st.OrderBy != nil && !st.OrderDesc {
		if i := outerRD.Schema.ColIndex(st.OrderBy.Column); i >= 0 {
			q.OrderBy = []int{i}
			if st.Limit > 0 {
				q.Limit = st.Limit
			}
		}
	}

	if st.Join == nil {
		var cols []string
		if st.Columns == nil {
			for _, c := range outerRD.Schema.Cols {
				cols = append(cols, c.Name)
			}
		} else {
			q.Fields = nil
			for _, ref := range st.Columns {
				i := outerRD.Schema.ColIndex(ref.Column)
				if i < 0 {
					return plan.Query{}, nil, fmt.Errorf("ddl: unknown column %q", ref.Column)
				}
				q.Fields = append(q.Fields, i)
				cols = append(cols, ref.Column)
			}
		}
		return q, cols, nil
	}

	// Join: resolve the ON columns to sides.
	j := st.Join
	innerRD, ok := s.env.Cat.ByName(j.Table)
	if !ok {
		return plan.Query{}, nil, fmt.Errorf("ddl: %w: table %q", core.ErrNotFound, j.Table)
	}
	spec := &plan.JoinSpec{Table: j.Table, JoinIndex: j.JoinIndex}
	resolve := func(ref colRef) (side string, idx int, err error) {
		if ref.Table != "" {
			switch {
			case strings.EqualFold(ref.Table, st.Table):
				side = "outer"
			case strings.EqualFold(ref.Table, j.Table):
				side = "inner"
			default:
				return "", 0, fmt.Errorf("ddl: unknown table qualifier %q", ref.Table)
			}
		} else {
			if outerRD.Schema.ColIndex(ref.Column) >= 0 {
				side = "outer"
			} else {
				side = "inner"
			}
		}
		if side == "outer" {
			idx = outerRD.Schema.ColIndex(ref.Column)
		} else {
			idx = innerRD.Schema.ColIndex(ref.Column)
		}
		if idx < 0 {
			return "", 0, fmt.Errorf("ddl: unknown column %q", ref.Column)
		}
		return side, idx, nil
	}
	lSide, lIdx, err := resolve(j.LeftCol)
	if err != nil {
		return plan.Query{}, nil, err
	}
	rSide, rIdx, err := resolve(j.RightCol)
	if err != nil {
		return plan.Query{}, nil, err
	}
	switch {
	case lSide == "outer" && rSide == "inner":
		spec.OuterCol, spec.InnerCol = lIdx, rIdx
	case lSide == "inner" && rSide == "outer":
		spec.OuterCol, spec.InnerCol = rIdx, lIdx
	default:
		return plan.Query{}, nil, fmt.Errorf("ddl: join ON must relate the two tables")
	}

	// Projection: outer columns first, then inner (result record layout).
	var cols []string
	if st.Columns == nil {
		for _, c := range outerRD.Schema.Cols {
			cols = append(cols, st.Table+"."+c.Name)
		}
		for _, c := range innerRD.Schema.Cols {
			cols = append(cols, j.Table+"."+c.Name)
		}
	} else {
		var outerRefs, innerRefs []colRef
		for _, ref := range st.Columns {
			side, _, err := resolve(ref)
			if err != nil {
				return plan.Query{}, nil, err
			}
			if side == "outer" {
				outerRefs = append(outerRefs, ref)
			} else {
				innerRefs = append(innerRefs, ref)
			}
		}
		for _, ref := range outerRefs {
			q.Fields = append(q.Fields, outerRD.Schema.ColIndex(ref.Column))
			cols = append(cols, st.Table+"."+ref.Column)
		}
		for _, ref := range innerRefs {
			spec.Fields = append(spec.Fields, innerRD.Schema.ColIndex(ref.Column))
			cols = append(cols, j.Table+"."+ref.Column)
		}
	}
	q.Join = spec
	return q, cols, nil
}

// matchKeys scans the table and returns the record keys satisfying where.
func (s *Session) matchKeys(tx *txn.Txn, table string, where *rawExpr) (*core.Relation, []types.Key, error) {
	rel, err := s.env.OpenRelationByName(table)
	if err != nil {
		return nil, nil, err
	}
	filter, err := where.bind(rel.Desc().Schema, table)
	if err != nil {
		return nil, nil, err
	}
	scan, err := rel.OpenScan(tx, core.ScanOptions{Filter: filter, Fields: []int{}})
	if err != nil {
		return nil, nil, err
	}
	defer scan.Close()
	var keys []types.Key
	for {
		k, _, ok, err := scan.Next()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			return rel, keys, nil
		}
		keys = append(keys, k)
	}
}

func (s *Session) execUpdate(tx *txn.Txn, st Update) (*Result, error) {
	rel, keys, err := s.matchKeys(tx, st.Table, st.Where)
	if err != nil {
		return nil, err
	}
	schema := rel.Desc().Schema
	// Bind SET expressions.
	setters := map[int]*expr.Expr{}
	for col, raw := range st.Set {
		i := schema.ColIndex(col)
		if i < 0 {
			return nil, fmt.Errorf("ddl: unknown column %q", col)
		}
		e, err := raw.bind(schema, st.Table)
		if err != nil {
			return nil, err
		}
		setters[i] = e
	}
	for _, key := range keys {
		oldRec, err := rel.Fetch(tx, key, nil, nil)
		if err != nil {
			return nil, err
		}
		newRec := oldRec.Clone()
		for i, e := range setters {
			v, err := s.env.Eval.Eval(e, oldRec, nil)
			if err != nil {
				return nil, err
			}
			newRec[i] = v
		}
		if _, err := rel.Update(tx, key, newRec); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(keys), Message: fmt.Sprintf("UPDATE %d", len(keys))}, nil
}

func (s *Session) execDelete(tx *txn.Txn, st Delete) (*Result, error) {
	rel, keys, err := s.matchKeys(tx, st.Table, st.Where)
	if err != nil {
		return nil, err
	}
	for _, key := range keys {
		if err := rel.Delete(tx, key); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(keys), Message: fmt.Sprintf("DELETE %d", len(keys))}, nil
}
