// Package ddl implements the SQL-ish data definition and manipulation
// language of the system.
//
// The data definition language is extended exactly as the paper requires:
// CREATE TABLE carries a storage method selection (USING <method>) and an
// extension-specific attribute/value list (WITH (attr=value, ...)), and
// CREATE ATTACHMENT selects an attachment type the same way. The
// attribute lists are validated and processed by the generic storage
// method and attachment operations, not by this package.
package ddl

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // ( ) , = < > <= >= <> + - * / .
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			l.ident()
		case unicode.IsDigit(rune(c)):
			l.number()
		case c == '\'':
			if err := l.str(); err != nil {
				return nil, err
			}
		case strings.ContainsRune("(),=<>+-*/.", rune(c)):
			l.punct()
		default:
			return nil, fmt.Errorf("ddl: unexpected character %q at %d", c, l.pos)
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func (l *lexer) ident() {
	start := l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if !unicode.IsLetter(c) && !unicode.IsDigit(c) && c != '_' {
			break
		}
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) number() {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		if !unicode.IsDigit(rune(c)) {
			break
		}
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) str() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'') // escaped quote
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("ddl: unterminated string at %d", start)
}

func (l *lexer) punct() {
	start := l.pos
	c := l.src[l.pos]
	l.pos++
	text := string(c)
	if l.pos < len(l.src) {
		two := text + string(l.src[l.pos])
		if two == "<=" || two == ">=" || two == "<>" {
			text = two
			l.pos++
		}
	}
	l.toks = append(l.toks, token{kind: tokPunct, text: text, pos: start})
}
