package core_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"dmx/internal/core"
	"dmx/internal/obs"
	_ "dmx/internal/sm/memsm"
	_ "dmx/internal/sm/tempsm"
	"dmx/internal/txn"
	"dmx/internal/types"
	"dmx/internal/wal"
)

// Test attachment types registered at factory-link time (IDs outside the
// production range).
const (
	attTrace core.AttID = 20 // records every attached-procedure call; has logged state
	attVeto  core.AttID = 21 // vetoes modifications whose first field is negative
)

// traceInst demonstrates an attachment with associated storage: it keeps a
// logged count of modifications so undo must restore the count.
type traceInst struct {
	rd    *core.RelDesc
	calls []string
	count int
}

func (t *traceInst) log(tx *txn.Txn, delta int) error {
	op := core.ModInsert
	if delta < 0 {
		op = core.ModDelete
	}
	return core.LogAttachment(tx, t.rd, attTrace, core.EntryPayload{Op: op})
}

func (t *traceInst) OnInsert(tx *txn.Txn, key types.Key, rec types.Record) error {
	t.calls = append(t.calls, "insert")
	t.count++
	return t.log(tx, 1)
}

func (t *traceInst) OnUpdate(tx *txn.Txn, ok, nk types.Key, o, n types.Record) error {
	t.calls = append(t.calls, "update")
	return nil
}

func (t *traceInst) OnDelete(tx *txn.Txn, key types.Key, old types.Record) error {
	t.calls = append(t.calls, "delete")
	t.count--
	return t.log(tx, -1)
}

func (t *traceInst) ApplyLogged(payload []byte, undo bool) error {
	p, err := core.DecodeEntry(payload)
	if err != nil {
		return err
	}
	delta := 1
	if p.Op == core.ModDelete {
		delta = -1
	}
	if undo {
		delta = -delta
	}
	t.count += delta
	return nil
}

type vetoInst struct{}

var errNegative = errors.New("first field must be non-negative")

func (vetoInst) OnInsert(tx *txn.Txn, key types.Key, rec types.Record) error {
	if len(rec) > 0 && rec[0].AsInt() < 0 {
		return errNegative
	}
	return nil
}

func (vetoInst) OnUpdate(tx *txn.Txn, ok, nk types.Key, o, n types.Record) error {
	if len(n) > 0 && n[0].AsInt() < 0 {
		return errNegative
	}
	return nil
}

func (vetoInst) OnDelete(tx *txn.Txn, key types.Key, old types.Record) error { return nil }
func (vetoInst) ApplyLogged([]byte, bool) error                              { return nil }

type instKey struct {
	env *core.Env
	rel uint32
}

var traceInstances = map[instKey]*traceInst{}

func traceOf(env *core.Env, rel uint32) *traceInst { return traceInstances[instKey{env, rel}] }

func init() {
	core.RegisterAttachment(&core.AttachmentOps{
		ID: attTrace, Name: "trace",
		Create: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, prior []byte, attrs core.AttrList) ([]byte, error) {
			return []byte{1}, nil
		},
		Open: func(env *core.Env, rd *core.RelDesc) (core.AttachmentInstance, error) {
			k := instKey{env, rd.RelID}
			if inst, ok := traceInstances[k]; ok {
				return inst, nil
			}
			inst := &traceInst{rd: rd}
			traceInstances[k] = inst
			return inst, nil
		},
	})
	core.RegisterAttachment(&core.AttachmentOps{
		ID: attVeto, Name: "veto",
		Create: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, prior []byte, attrs core.AttrList) ([]byte, error) {
			return []byte{1}, nil
		},
		Open: func(env *core.Env, rd *core.RelDesc) (core.AttachmentInstance, error) {
			return vetoInst{}, nil
		},
	})
}

func testSchema() *types.Schema {
	return types.MustSchema(
		types.Column{Name: "id", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "name", Kind: types.KindString},
	)
}

func mkRel(t *testing.T, env *core.Env, name, sm string, atts ...string) *core.RelDesc {
	t.Helper()
	tx := env.Begin()
	rd, err := env.CreateRelation(tx, name, testSchema(), sm, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range atts {
		if rd, err = env.CreateAttachment(tx, name, a, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return rd
}

func rec(id int64, name string) types.Record {
	return types.Record{types.Int(id), types.Str(name)}
}

func TestCreateInsertFetch(t *testing.T) {
	env := core.NewEnv(core.Config{})
	rd := mkRel(t, env, "emp", "memory")
	tx := env.Begin()
	r, err := env.OpenRelation(rd)
	if err != nil {
		t.Fatal(err)
	}
	key, err := r.Insert(tx, rec(1, "alice"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Fetch(tx, key, nil, nil)
	if err != nil || !got.Equal(rec(1, "alice")) {
		t.Fatalf("Fetch = %v, %v", got, err)
	}
	// Projection pushdown.
	got, err = r.Fetch(tx, key, []int{1}, nil)
	if err != nil || len(got) != 1 || got[0].S != "alice" {
		t.Fatalf("projected Fetch = %v, %v", got, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if r.Storage().RecordCount() != 1 {
		t.Fatal("RecordCount")
	}
}

func TestSchemaValidationRejected(t *testing.T) {
	env := core.NewEnv(core.Config{})
	rd := mkRel(t, env, "emp", "memory")
	tx := env.Begin()
	r, _ := env.OpenRelation(rd)
	if _, err := r.Insert(tx, types.Record{types.Str("wrong"), types.Str("x")}); err == nil {
		t.Fatal("bad record accepted")
	}
	if _, err := r.Insert(tx, types.Record{types.Null(), types.Str("x")}); err == nil {
		t.Fatal("NULL in NOT NULL accepted")
	}
	tx.Commit()
}

func TestAttachedProceduresInvoked(t *testing.T) {
	env := core.NewEnv(core.Config{})
	rd := mkRel(t, env, "traced", "memory", "trace")
	tx := env.Begin()
	r, _ := env.OpenRelation(rd)
	key, err := r.Insert(tx, rec(1, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Update(tx, key, rec(1, "b")); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(tx, key); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	inst := traceOf(env, rd.RelID)
	want := []string{"insert", "update", "delete"}
	if len(inst.calls) != 3 {
		t.Fatalf("calls = %v", inst.calls)
	}
	for i := range want {
		if inst.calls[i] != want[i] {
			t.Fatalf("calls = %v", inst.calls)
		}
	}
	if inst.count != 0 {
		t.Fatalf("count = %d", inst.count)
	}
}

func TestVetoUndoesStorageAndPriorAttachments(t *testing.T) {
	env := core.NewEnv(core.Config{})
	rd := mkRel(t, env, "guarded", "memory", "trace", "veto")
	tx := env.Begin()
	r, _ := env.OpenRelation(rd)

	if _, err := r.Insert(tx, rec(5, "ok")); err != nil {
		t.Fatal(err)
	}
	inst := traceOf(env, rd.RelID)
	countBefore := inst.count
	smBefore := r.Storage().RecordCount()

	// attVeto (id 21) runs after attTrace (id 20): by the time the veto
	// fires, both the storage method and the trace attachment have applied
	// effects which the common log must undo.
	_, err := r.Insert(tx, rec(-1, "bad"))
	var ve *core.VetoError
	if !errors.As(err, &ve) {
		t.Fatalf("want VetoError, got %v", err)
	}
	if ve.Extension != "veto" || !errors.Is(err, errNegative) {
		t.Fatalf("veto detail: %+v", ve)
	}
	if r.Storage().RecordCount() != smBefore {
		t.Fatal("storage method effect not undone after veto")
	}
	if inst.count != countBefore {
		t.Fatalf("attachment state not undone: %d != %d", inst.count, countBefore)
	}
	// The transaction survives the veto; prior work intact.
	if _, err := r.Insert(tx, rec(6, "also ok")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if r.Storage().RecordCount() != 2 {
		t.Fatalf("final count = %d", r.Storage().RecordCount())
	}
	if env.Metrics.Vetoes.Load() != 1 {
		t.Fatal("veto metric")
	}
}

func TestAbortUndoesEverything(t *testing.T) {
	env := core.NewEnv(core.Config{})
	rd := mkRel(t, env, "t", "memory", "trace")
	r, _ := env.OpenRelation(rd)

	tx := env.Begin()
	k1, _ := r.Insert(tx, rec(1, "a"))
	r.Insert(tx, rec(2, "b"))
	r.Update(tx, k1, rec(1, "a2"))
	tx.Commit()

	tx2 := env.Begin()
	r.Insert(tx2, rec(3, "c"))
	r.Delete(tx2, k1)
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	if r.Storage().RecordCount() != 2 {
		t.Fatalf("count after abort = %d", r.Storage().RecordCount())
	}
	tx3 := env.Begin()
	got, err := r.Fetch(tx3, k1, nil, nil)
	if err != nil || !got.Equal(rec(1, "a2")) {
		t.Fatalf("k1 after abort = %v, %v", got, err)
	}
	if got := traceOf(env, rd.RelID).count; got != 2 {
		t.Fatalf("trace count after abort = %d", got)
	}
	tx3.Commit()
}

func TestSavepointPartialRollbackRestoresData(t *testing.T) {
	env := core.NewEnv(core.Config{})
	rd := mkRel(t, env, "t", "memory")
	r, _ := env.OpenRelation(rd)
	tx := env.Begin()
	r.Insert(tx, rec(1, "a"))
	if _, err := tx.Savepoint("sp"); err != nil {
		t.Fatal(err)
	}
	r.Insert(tx, rec(2, "b"))
	r.Insert(tx, rec(3, "c"))
	if err := tx.RollbackTo("sp"); err != nil {
		t.Fatal(err)
	}
	if r.Storage().RecordCount() != 1 {
		t.Fatalf("count after partial rollback = %d", r.Storage().RecordCount())
	}
	r.Insert(tx, rec(4, "d"))
	tx.Commit()
	if r.Storage().RecordCount() != 2 {
		t.Fatalf("final count = %d", r.Storage().RecordCount())
	}
}

func TestScanPositionSavedAndRestoredAcrossPartialRollback(t *testing.T) {
	env := core.NewEnv(core.Config{})
	rd := mkRel(t, env, "t", "memory")
	r, _ := env.OpenRelation(rd)
	load := env.Begin()
	for i := 1; i <= 5; i++ {
		r.Insert(load, rec(int64(i), fmt.Sprintf("r%d", i)))
	}
	load.Commit()

	tx := env.Begin()
	scan, err := r.OpenScan(tx, core.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Consume two records.
	for i := 0; i < 2; i++ {
		if _, _, ok, err := scan.Next(); !ok || err != nil {
			t.Fatalf("Next %d: %v %v", i, ok, err)
		}
	}
	// Establish a rollback point: the scan position is captured.
	tx.Savepoint("sp")
	// Consume two more.
	_, rec3, _, _ := scan.Next()
	scan.Next()
	// Partial rollback: position restored to "after record 2".
	if err := tx.RollbackTo("sp"); err != nil {
		t.Fatal(err)
	}
	_, again, ok, err := scan.Next()
	if err != nil || !ok {
		t.Fatalf("Next after restore: %v %v", ok, err)
	}
	if !again.Equal(rec3) {
		t.Fatalf("restored scan returned %v, want %v", again, rec3)
	}
	tx.Commit()
}

func TestScanDeleteAtPositionSkipsToNext(t *testing.T) {
	env := core.NewEnv(core.Config{})
	rd := mkRel(t, env, "t", "memory")
	r, _ := env.OpenRelation(rd)
	load := env.Begin()
	for i := 1; i <= 3; i++ {
		r.Insert(load, rec(int64(i), "x"))
	}
	load.Commit()

	tx := env.Begin()
	scan, _ := r.OpenScan(tx, core.ScanOptions{})
	key1, _, _, _ := scan.Next()
	// Delete the record the scan is on: scan should be positioned just
	// after it, so Next returns record 2.
	if err := r.Delete(tx, key1); err != nil {
		t.Fatal(err)
	}
	_, r2, ok, err := scan.Next()
	if err != nil || !ok || r2[0].AsInt() != 2 {
		t.Fatalf("after delete-at-position: %v %v %v", r2, ok, err)
	}
	tx.Commit()
}

func TestScanClosedAtTxnEnd(t *testing.T) {
	env := core.NewEnv(core.Config{})
	rd := mkRel(t, env, "t", "memory")
	r, _ := env.OpenRelation(rd)
	tx := env.Begin()
	scan, _ := r.OpenScan(tx, core.ScanOptions{})
	tx.Commit()
	if _, _, _, err := scan.Next(); err == nil {
		t.Fatal("scan should be closed at transaction termination")
	}
}

func TestRestartRecoveryReplaysCommittedAndDropsLosers(t *testing.T) {
	log := wal.New()
	env := core.NewEnv(core.Config{Log: log})
	rd := mkRel(t, env, "t", "memory", "trace")
	r, _ := env.OpenRelation(rd)

	tx := env.Begin()
	r.Insert(tx, rec(1, "committed"))
	tx.Commit()

	loser := env.Begin()
	r.Insert(loser, rec(2, "in flight"))
	// Crash: no commit, no abort. Rebuild a fresh environment on the log.
	env2 := core.NewEnv(core.Config{Log: log})
	if err := env2.Recover(); err != nil {
		t.Fatal(err)
	}
	rd2, ok := env2.Cat.ByName("t")
	if !ok {
		t.Fatal("catalog not recovered")
	}
	r2, err := env2.OpenRelation(rd2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Storage().RecordCount() != 1 {
		t.Fatalf("recovered count = %d", r2.Storage().RecordCount())
	}
	if got := traceOf(env2, rd2.RelID).count; got != 1 {
		t.Fatalf("recovered attachment state = %d", got)
	}
	// The recovered relation remains fully usable.
	tx2 := env2.Begin()
	if _, err := r2.Insert(tx2, rec(3, "post-recovery")); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if r2.Storage().RecordCount() != 2 {
		t.Fatalf("post-recovery count = %d", r2.Storage().RecordCount())
	}
}

func TestDDLAbortRemovesRelation(t *testing.T) {
	env := core.NewEnv(core.Config{})
	tx := env.Begin()
	if _, err := env.CreateRelation(tx, "doomed", testSchema(), "memory", nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := env.Cat.ByName("doomed"); !ok {
		t.Fatal("relation should be visible inside creating txn")
	}
	tx.Abort()
	if _, ok := env.Cat.ByName("doomed"); ok {
		t.Fatal("aborted CREATE should remove the relation")
	}
}

func TestDropRelationDeferredUntilCommit(t *testing.T) {
	env := core.NewEnv(core.Config{})
	mkRel(t, env, "t", "memory")
	tx := env.Begin()
	if err := env.DropRelation(tx, "t"); err != nil {
		t.Fatal(err)
	}
	if _, ok := env.Cat.ByName("t"); ok {
		t.Fatal("dropped relation still visible")
	}
	// Abort: drop undone, relation back.
	tx.Abort()
	if _, ok := env.Cat.ByName("t"); !ok {
		t.Fatal("aborted DROP should restore the relation")
	}
	// Commit path releases for real.
	tx2 := env.Begin()
	env.DropRelation(tx2, "t")
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, ok := env.Cat.ByName("t"); ok {
		t.Fatal("relation should be gone after committed drop")
	}
}

func TestCreateAttachmentAbortRestoresDescriptor(t *testing.T) {
	env := core.NewEnv(core.Config{})
	mkRel(t, env, "t", "memory")
	tx := env.Begin()
	rd, err := env.CreateAttachment(tx, "t", "veto", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rd.HasAttachment(attVeto) {
		t.Fatal("attachment missing from new descriptor")
	}
	tx.Abort()
	cur, _ := env.Cat.ByName("t")
	if cur.HasAttachment(attVeto) {
		t.Fatal("aborted CREATE ATTACHMENT should restore the descriptor")
	}
	// And modifications no longer consult the attachment.
	tx2 := env.Begin()
	r, _ := env.OpenRelationByName("t")
	if _, err := r.Insert(tx2, rec(-5, "neg")); err != nil {
		t.Fatalf("veto attachment should be gone: %v", err)
	}
	tx2.Commit()
}

func TestDropAttachment(t *testing.T) {
	env := core.NewEnv(core.Config{})
	mkRel(t, env, "t", "memory", "veto")
	tx := env.Begin()
	r, _ := env.OpenRelationByName("t")
	if _, err := r.Insert(tx, rec(-1, "neg")); err == nil {
		t.Fatal("veto should fire")
	}
	if _, err := env.DropAttachment(tx, "t", "veto", nil); err != nil {
		t.Fatal(err)
	}
	r2, _ := env.OpenRelationByName("t")
	if _, err := r2.Insert(tx, rec(-1, "neg")); err != nil {
		t.Fatalf("veto should be dropped: %v", err)
	}
	tx.Commit()
}

func TestTempRelationNotRecovered(t *testing.T) {
	log := wal.New()
	env := core.NewEnv(core.Config{Log: log})
	rd := mkRel(t, env, "scratch", "temp")
	r, _ := env.OpenRelation(rd)
	tx := env.Begin()
	r.Insert(tx, rec(1, "volatile"))
	tx.Commit()
	if r.Storage().RecordCount() != 1 {
		t.Fatal("temp insert lost")
	}

	env2 := core.NewEnv(core.Config{Log: log})
	if err := env2.Recover(); err != nil {
		t.Fatal(err)
	}
	rd2, ok := env2.Cat.ByName("scratch")
	if !ok {
		t.Fatal("temp relation descriptor should be recovered (DDL is logged)")
	}
	r2, _ := env2.OpenRelation(rd2)
	if r2.Storage().RecordCount() != 0 {
		t.Fatal("temp relation contents should not survive restart")
	}
}

func TestUnknownStorageMethodAndAttachment(t *testing.T) {
	env := core.NewEnv(core.Config{})
	tx := env.Begin()
	if _, err := env.CreateRelation(tx, "x", testSchema(), "warp-drive", nil); err == nil {
		t.Fatal("unknown storage method accepted")
	}
	mkRelErr := func() error {
		_, err := env.CreateAttachment(tx, "nope", "veto", nil)
		return err
	}
	if err := mkRelErr(); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("attachment on missing relation: %v", err)
	}
	tx.Commit()
}

func TestMetricsCountCalls(t *testing.T) {
	env := core.NewEnv(core.Config{})
	rd := mkRel(t, env, "t", "memory", "trace")
	r, _ := env.OpenRelation(rd)
	tx := env.Begin()
	for i := 0; i < 10; i++ {
		r.Insert(tx, rec(int64(i), "x"))
	}
	tx.Commit()
	if env.Metrics.SMCalls.Load() != 10 || env.Metrics.AttCalls.Load() != 10 {
		t.Fatalf("metrics: sm=%d att=%d", env.Metrics.SMCalls.Load(), env.Metrics.AttCalls.Load())
	}
}

func TestMetricsSnapshotMixedWorkload(t *testing.T) {
	env := core.NewEnv(core.Config{})
	rd := mkRel(t, env, "mix", "memory", "trace", "veto")
	r, err := env.OpenRelation(rd)
	if err != nil {
		t.Fatal(err)
	}
	tx := env.Begin()
	var keys []types.Key
	for i := 0; i < 5; i++ {
		k, err := r.Insert(tx, rec(int64(i), "x"))
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	if _, err := r.Update(tx, keys[0], rec(7, "y")); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(tx, keys[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Fetch(tx, keys[2], nil, nil); err != nil {
		t.Fatal(err)
	}
	scan, err := r.OpenScan(tx, core.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	scan.Close()
	if _, err := r.Insert(tx, rec(-1, "neg")); err == nil {
		t.Fatal("veto attachment should reject negative ids")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	snap := env.MetricsSnapshot()

	findExt := func(list []obs.ExtSnapshot, name string) *obs.ExtSnapshot {
		for i := range list {
			if list[i].Name == name {
				return &list[i]
			}
		}
		return nil
	}
	opCount := func(e *obs.ExtSnapshot, op string) int64 {
		for _, o := range e.Ops {
			if o.Op == op {
				return o.Count
			}
		}
		return 0
	}

	sm := findExt(snap.SM, "memory")
	if sm == nil {
		t.Fatalf("no storage-method entry for memory: %+v", snap.SM)
	}
	for op, want := range map[string]int64{
		"insert": 6, "update": 1, "delete": 1, "fetch": 1, "scan": 1,
	} {
		if got := opCount(sm, op); got != want {
			t.Errorf("memory %s count = %d, want %d", op, got, want)
		}
	}
	for _, o := range sm.Ops {
		if o.Count > 0 && o.Latency.Count != o.Count {
			t.Errorf("memory %s: latency count %d != call count %d", o.Op, o.Latency.Count, o.Count)
		}
	}

	tr := findExt(snap.Att, "trace")
	if tr == nil {
		t.Fatalf("no attachment entry for trace: %+v", snap.Att)
	}
	if got := opCount(tr, "insert"); got != 6 {
		t.Errorf("trace insert count = %d, want 6", got)
	}
	ve := findExt(snap.Att, "veto")
	if ve == nil {
		t.Fatal("no attachment entry for veto")
	}
	if ve.Vetoes != 1 {
		t.Errorf("veto vetoes = %d, want 1", ve.Vetoes)
	}

	if snap.Lock.Requests == 0 {
		t.Error("lock requests should be non-zero")
	}
	if snap.WAL.Appends == 0 || snap.WAL.AppendBytes == 0 {
		t.Error("wal appends should be non-zero")
	}
	if snap.WAL.Rollbacks == 0 {
		t.Error("veto should have driven a log rollback")
	}
	if snap.Totals.SMCalls != env.Metrics.SMCalls.Load() || snap.Totals.Vetoes != 1 {
		t.Errorf("totals mismatch: %+v", snap.Totals)
	}

	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"storage_methods"`, `"attachments"`, `"lock"`, `"wal"`, `"buffer"`, `"totals"`, `"memory"`, `"veto"`} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("snapshot JSON missing %s", want)
		}
	}
}

func TestMetricsSnapshotConcurrentSessions(t *testing.T) {
	env := core.NewEnv(core.Config{})
	const workers = 4
	rels := make([]*core.Relation, workers)
	for w := 0; w < workers; w++ {
		rd := mkRel(t, env, fmt.Sprintf("c%d", w), "memory")
		r, err := env.OpenRelation(rd)
		if err != nil {
			t.Fatal(err)
		}
		rels[w] = r
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := json.Marshal(env.MetricsSnapshot()); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 200; i++ {
				tx := env.Begin()
				if _, err := rels[w].Insert(tx, rec(int64(i), "x")); err != nil {
					t.Error(err)
					tx.Abort()
					return
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	snap := env.MetricsSnapshot()
	if snap.Totals.SMCalls != workers*200 {
		t.Fatalf("sm calls = %d, want %d", snap.Totals.SMCalls, workers*200)
	}
}
