package core

import (
	"encoding/binary"
	"fmt"
	"strings"
	"sync"

	"dmx/internal/txn"
	"dmx/internal/wal"
)

// Catalog is the common descriptor-management facility: it stores the
// composite relation descriptors, allocates relation identifiers, and
// makes catalog changes transactional by logging them as system-owned
// records (so aborting a DDL statement restores the descriptors, and
// restart recovery replays them before the data records that need them).
//
// Descriptors handed out by Get/ByName are immutable snapshots: DDL clones,
// mutates, and swaps, so bound query plans embedding an old descriptor are
// never mutated underneath — they detect staleness via the Version field.
type Catalog struct {
	env    *Env
	mu     sync.RWMutex
	rels   map[uint32]*RelDesc
	byName map[string]uint32
	nextID uint32
}

// NewCatalog returns an empty catalog bound to env.
func NewCatalog(env *Env) *Catalog {
	return &Catalog{
		env:    env,
		rels:   make(map[uint32]*RelDesc),
		byName: make(map[string]uint32),
		nextID: 1,
	}
}

// Get returns the current descriptor for relID.
func (c *Catalog) Get(relID uint32) (*RelDesc, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	rd, ok := c.rels[relID]
	return rd, ok
}

// ByName returns the current descriptor for the named relation
// (case-insensitive).
func (c *Catalog) ByName(name string) (*RelDesc, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	id, ok := c.byName[strings.ToLower(name)]
	if !ok {
		return nil, false
	}
	return c.rels[id], true
}

// List returns all relation names in no particular order.
func (c *Catalog) List() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.rels))
	for _, rd := range c.rels {
		out = append(out, rd.Name)
	}
	return out
}

// AllocateRelID reserves a fresh relation identifier.
func (c *Catalog) AllocateRelID() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextID
	c.nextID++
	return id
}

// catalog log payload ops
const (
	catCreate byte = 1
	catDrop   byte = 2
	catUpdate byte = 3
)

// CreateRelation installs rd (whose RelID must be allocated and SMDesc
// filled in by the storage method) under txn control.
func (c *Catalog) CreateRelation(tx *txn.Txn, rd *RelDesc) error {
	c.mu.Lock()
	if _, dup := c.byName[strings.ToLower(rd.Name)]; dup {
		c.mu.Unlock()
		return fmt.Errorf("core: relation %q already exists", rd.Name)
	}
	c.mu.Unlock()
	payload := append([]byte{catCreate}, rd.AppendEncode(nil)...)
	if _, err := tx.AppendLog(wal.Owner{Class: wal.OwnerSystem, RelID: rd.RelID}, payload); err != nil {
		return err
	}
	c.install(rd)
	return nil
}

// DropRelation removes the named relation under txn control. The
// descriptor removal is undoable (the full descriptor is logged); the
// actual release of the relation's storage is deferred until the
// transaction commits, via the deferred action queue, so the drop can be
// undone without logging the entire relation state.
func (c *Catalog) DropRelation(tx *txn.Txn, name string) error {
	rd, ok := c.ByName(name)
	if !ok {
		return fmt.Errorf("core: %w: relation %q", ErrNotFound, name)
	}
	payload := append([]byte{catDrop}, rd.AppendEncode(nil)...)
	if _, err := tx.AppendLog(wal.Owner{Class: wal.OwnerSystem, RelID: rd.RelID}, payload); err != nil {
		return err
	}
	c.remove(rd.RelID)
	relID, sm := rd.RelID, rd.SM
	return tx.Defer(txn.EventCommit, func(*txn.Txn, string) error {
		if ops := c.env.Reg.StorageOps(sm); ops != nil && ops.Drop != nil {
			if err := ops.Drop(c.env, rd); err != nil {
				return err
			}
		}
		c.env.DropInstances(relID)
		return nil
	})
}

// UpdateDesc replaces a relation's descriptor (attachment create/drop)
// under txn control; newRD must be a clone with Version bumped.
func (c *Catalog) UpdateDesc(tx *txn.Txn, oldRD, newRD *RelDesc) error {
	if oldRD.RelID != newRD.RelID {
		return fmt.Errorf("core: descriptor update changes relation id")
	}
	// Payload layout: op | len(old) | old descriptor | new descriptor.
	oldBytes := oldRD.AppendEncode(nil)
	buf := []byte{catUpdate}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(oldBytes)))
	buf = append(buf, oldBytes...)
	buf = append(buf, newRD.AppendEncode(nil)...)
	if _, err := tx.AppendLog(wal.Owner{Class: wal.OwnerSystem, RelID: newRD.RelID}, buf); err != nil {
		return err
	}
	c.install(newRD)
	return c.env.InvalidateRelation(newRD.RelID)
}

func (c *Catalog) install(rd *RelDesc) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rels[rd.RelID] = rd
	c.byName[strings.ToLower(rd.Name)] = rd.RelID
	// System relations live in a reserved high ID range; installing one
	// must not drag the user-relation ID sequence up behind it.
	if rd.RelID >= c.nextID && !IsSystemRelID(rd.RelID) {
		c.nextID = rd.RelID + 1
	}
}

// InstallSystem places a system-relation descriptor in the catalog
// without transaction control or logging: system relations are process
// state, re-registered at every Env construction, never checkpointed or
// recovered. Called by NewEnv only.
func (c *Catalog) InstallSystem(rd *RelDesc) error {
	if !IsSystemRelID(rd.RelID) {
		return fmt.Errorf("core: system relation %q must use a reserved RelID, got %d", rd.Name, rd.RelID)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.byName[strings.ToLower(rd.Name)]; dup {
		return fmt.Errorf("core: system relation %q already installed", rd.Name)
	}
	c.rels[rd.RelID] = rd
	c.byName[strings.ToLower(rd.Name)] = rd.RelID
	return nil
}

func (c *Catalog) remove(relID uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rd, ok := c.rels[relID]; ok {
		delete(c.byName, strings.ToLower(rd.Name))
		delete(c.rels, relID)
	}
}

// ApplySystemLogged implements undo/redo for catalog log records: undo of
// create removes the relation, undo of drop restores it, undo of update
// restores the old descriptor; redo repeats the forward action.
func (c *Catalog) ApplySystemLogged(payload []byte, undo bool) error {
	if len(payload) < 1 {
		return fmt.Errorf("core: empty catalog log payload")
	}
	op := payload[0]
	body := payload[1:]
	switch op {
	case catCreate, catDrop:
		rd, _, err := DecodeRelDesc(body)
		if err != nil {
			return err
		}
		removeIt := (op == catCreate) == undo // create+undo or drop+redo
		if removeIt {
			c.remove(rd.RelID)
			c.env.DropInstances(rd.RelID)
			return nil
		}
		c.install(rd)
		return c.env.InvalidateRelation(rd.RelID)
	case catUpdate:
		if len(body) < 4 {
			return fmt.Errorf("core: truncated catalog update payload")
		}
		oldLen := int(binary.BigEndian.Uint32(body))
		if len(body) < 4+oldLen {
			return fmt.Errorf("core: truncated catalog update old descriptor")
		}
		oldRD, _, err := DecodeRelDesc(body[4 : 4+oldLen])
		if err != nil {
			return err
		}
		newRD, _, err := DecodeRelDesc(body[4+oldLen:])
		if err != nil {
			return err
		}
		if undo {
			c.install(oldRD)
			return c.env.InvalidateRelation(oldRD.RelID)
		}
		c.install(newRD)
		return c.env.InvalidateRelation(newRD.RelID)
	default:
		return fmt.Errorf("core: unknown catalog log op %d", op)
	}
}
