package core_test

import (
	"testing"

	"dmx/internal/core"
)

func TestRegistryLookupAndNames(t *testing.T) {
	reg := core.NewRegistry()
	reg.RegisterStorageMethod(&core.StorageOps{ID: 2, Name: "alpha"})
	reg.RegisterStorageMethod(&core.StorageOps{ID: 5, Name: "beta"})
	reg.RegisterAttachment(&core.AttachmentOps{ID: 3, Name: "gamma"})

	if reg.StorageOps(2).Name != "alpha" || reg.StorageOps(1) != nil || reg.StorageOps(200) != nil {
		t.Fatal("StorageOps lookup")
	}
	if reg.AttachmentOps(3).Name != "gamma" || reg.AttachmentOps(4) != nil || reg.AttachmentOps(200) != nil {
		t.Fatal("AttachmentOps lookup")
	}
	if reg.StorageMethodByName("beta").ID != 5 || reg.StorageMethodByName("nope") != nil {
		t.Fatal("StorageMethodByName")
	}
	if reg.AttachmentByName("gamma").ID != 3 || reg.AttachmentByName("nope") != nil {
		t.Fatal("AttachmentByName")
	}
	smNames := reg.StorageMethodNames()
	if len(smNames) != 2 || smNames[0] != "alpha" || smNames[1] != "beta" {
		t.Fatalf("StorageMethodNames = %v", smNames)
	}
	if attNames := reg.AttachmentNames(); len(attNames) != 1 || attNames[0] != "gamma" {
		t.Fatalf("AttachmentNames = %v", attNames)
	}
}

func expectPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	fn()
}

func TestRegistryRejectsBadRegistrations(t *testing.T) {
	reg := core.NewRegistry()
	reg.RegisterStorageMethod(&core.StorageOps{ID: 2, Name: "a"})
	expectPanic(t, "sm collision", func() {
		reg.RegisterStorageMethod(&core.StorageOps{ID: 2, Name: "b"})
	})
	expectPanic(t, "sm id 0", func() {
		reg.RegisterStorageMethod(&core.StorageOps{ID: 0, Name: "z"})
	})
	expectPanic(t, "sm id out of range", func() {
		reg.RegisterStorageMethod(&core.StorageOps{ID: core.MaxStorageMethods, Name: "z"})
	})
	reg.RegisterAttachment(&core.AttachmentOps{ID: 2, Name: "a"})
	expectPanic(t, "att collision", func() {
		reg.RegisterAttachment(&core.AttachmentOps{ID: 2, Name: "b"})
	})
	expectPanic(t, "att id 0", func() {
		reg.RegisterAttachment(&core.AttachmentOps{ID: 0, Name: "z"})
	})
}

func TestAttrList(t *testing.T) {
	attrs := core.AttrList{"Key": "eno", "Fill": "90"}
	if v, ok := attrs.Get("key"); !ok || v != "eno" {
		t.Fatal("case-insensitive Get")
	}
	if _, ok := attrs.Get("missing"); ok {
		t.Fatal("missing Get")
	}
	keys := attrs.Keys()
	if len(keys) != 2 || keys[0] != "Fill" || keys[1] != "Key" {
		t.Fatalf("Keys = %v", keys)
	}
	if err := attrs.CheckAllowed("x", "key", "fill"); err != nil {
		t.Fatalf("CheckAllowed: %v", err)
	}
	if err := attrs.CheckAllowed("x", "key"); err == nil {
		t.Fatal("disallowed attribute accepted")
	}
}

func TestVetoErrorUnwrap(t *testing.T) {
	inner := core.ErrReadOnly
	ve := &core.VetoError{Extension: "append", Reason: inner}
	if ve.Error() == "" || ve.Unwrap() != inner {
		t.Fatal("VetoError plumbing")
	}
}

func TestCostEstimateTotal(t *testing.T) {
	if (core.CostEstimate{IO: 1}).Total() != 10 {
		t.Fatal("one page I/O should weigh 10 CPU units")
	}
	if (core.CostEstimate{CPU: 3}).Total() != 3 {
		t.Fatal("CPU units weigh 1")
	}
}
