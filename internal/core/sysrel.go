// System relations: virtual relations that materialize live engine state
// through the ordinary storage-method procedure vector. They are genuine
// catalog entries — scans, predicates, cost estimates, and the plan layer
// treat them like any stored relation — but their "storage" is the
// running engine itself, so they are process state: installed at every
// Env construction, never logged, checkpointed, recovered, or dropped.
package core

import (
	"fmt"
	"strings"

	"dmx/internal/types"
)

// SysRelBase is the start of the reserved relation-ID range for system
// relations. Keeping them in a disjoint high range means user RelID
// allocation is identical whether or not the system storage method is
// linked in, and log records can never name a system relation.
const SysRelBase uint32 = 0xF0000000

// IsSystemRelID reports whether relID is in the reserved system range.
func IsSystemRelID(relID uint32) bool { return relID >= SysRelBase }

// SystemRelation declares one virtual relation to install at Env
// construction. The storage method (typically SMSys) interprets Name to
// decide which engine state the instance materializes.
type SystemRelation struct {
	Name   string // catalogued name, e.g. "sys.stat_activity"
	SM     SMID
	Schema *types.Schema
}

// LSMRunInfo describes one resident component of an LSM storage instance:
// the mutable memtable (Memtable true) or one immutable sorted run.
type LSMRunInfo struct {
	Memtable  bool
	Pos       int // position among runs, newest first (-1 for the memtable)
	Tier      int // size tier (-1 for the memtable)
	Entries   int
	Bytes     int
	BloomBits int // filter size in bits (0 for the memtable)
	MinSeq    uint64
	MaxSeq    uint64
}

// LSMIntrospector is implemented by storage instances that expose their
// run structure; sys.stat_lsm materializes it.
type LSMIntrospector interface {
	RunInfos() []LSMRunInfo
}

// ShardInfo describes one shard of a partitioned storage instance.
// Messages is the owning server's total message counter (server-wide, not
// per-table: one server may host several shards or relations).
type ShardInfo struct {
	Shard    int
	Server   string
	Table    string
	Records  int
	InDoubt  int // prepared transactions on the shard awaiting a decision
	Messages int64
}

// ShardIntrospector is implemented by storage instances that spread a
// relation across shards; sys.stat_shards materializes it.
type ShardIntrospector interface {
	ShardInfos() []ShardInfo
}

var systemRelations []SystemRelation

// RegisterSystemRelation adds a virtual relation to the set installed by
// every NewEnv, in registration order (RelIDs are SysRelBase + position,
// so the order must be deterministic — register from init functions).
// Panics on duplicate names, like the procedure-vector registries.
func RegisterSystemRelation(sr SystemRelation) {
	for _, have := range systemRelations {
		if strings.EqualFold(have.Name, sr.Name) {
			panic(fmt.Sprintf("core: duplicate system relation %q", sr.Name))
		}
	}
	if sr.Schema == nil {
		panic(fmt.Sprintf("core: system relation %q has no schema", sr.Name))
	}
	systemRelations = append(systemRelations, sr)
}

// installSystemRelations places every registered system relation in the
// catalog. Called from NewEnv after the catalog exists.
func (env *Env) installSystemRelations() {
	for i, sr := range systemRelations {
		rd := &RelDesc{
			RelID:  SysRelBase + uint32(i),
			Name:   sr.Name,
			Schema: sr.Schema,
			SM:     sr.SM,
		}
		if err := env.Cat.InstallSystem(rd); err != nil {
			// Registration is validated at RegisterSystemRelation time;
			// failure here means a programming error in the registry.
			panic(err)
		}
	}
}
