package core_test

import (
	"strings"
	"testing"

	"dmx/internal/core"
	_ "dmx/internal/sm/memsm"
	"dmx/internal/types"
)

func TestAuthzDisabledAllowsEverything(t *testing.T) {
	env := core.NewEnv(core.Config{})
	rd := mkRel(t, env, "t", "memory")
	r, _ := env.OpenRelation(rd)
	tx := env.Begin() // no user, authz disabled
	if _, err := r.Insert(tx, rec(1, "x")); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
}

func TestAuthzEnforcesPrivileges(t *testing.T) {
	env := core.NewEnv(core.Config{})
	env.Authz.Enable()

	// Alice creates the relation and is granted ADMIN automatically.
	txA := env.Begin()
	txA.SetUser("alice")
	rd, err := env.CreateRelation(txA, "t", testSchema(), "memory", nil)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := env.OpenRelation(rd)
	key, err := r.Insert(txA, rec(1, "by alice"))
	if err != nil {
		t.Fatalf("creator write: %v", err)
	}
	if err := txA.Commit(); err != nil {
		t.Fatal(err)
	}

	// Bob has nothing: reads and writes are refused uniformly.
	txB := env.Begin()
	txB.SetUser("bob")
	if _, err := r.Insert(txB, rec(2, "by bob")); err == nil || !strings.Contains(err.Error(), "lacks WRITE") {
		t.Fatalf("unauthorized insert: %v", err)
	}
	if _, err := r.Fetch(txB, key, nil, nil); err == nil {
		t.Fatal("unauthorized fetch accepted")
	}
	if _, err := r.OpenScan(txB, core.ScanOptions{}); err == nil {
		t.Fatal("unauthorized scan accepted")
	}
	if _, err := env.CreateAttachment(txB, "t", "veto", nil); err == nil {
		t.Fatal("unauthorized DDL accepted")
	}
	if err := env.DropRelation(txB, "t"); err == nil {
		t.Fatal("unauthorized drop accepted")
	}

	// READ lets bob read but not write.
	env.Authz.Grant("bob", rd.RelID, core.PrivRead)
	if _, err := r.Fetch(txB, key, nil, nil); err != nil {
		t.Fatalf("granted read: %v", err)
	}
	if _, err := r.Insert(txB, rec(2, "by bob")); err == nil {
		t.Fatal("read grant allowed a write")
	}

	// WRITE implies READ; ADMIN implies WRITE.
	env.Authz.Grant("bob", rd.RelID, core.PrivWrite)
	if _, err := r.Insert(txB, rec(2, "by bob")); err != nil {
		t.Fatalf("granted write: %v", err)
	}
	if _, err := env.DropAttachment(txB, "t", "veto", nil); err == nil {
		t.Fatal("write grant allowed DDL")
	}
	env.Authz.Grant("bob", rd.RelID, core.PrivAdmin)
	if _, err := env.CreateAttachment(txB, "t", "veto", nil); err != nil {
		t.Fatalf("granted admin: %v", err)
	}
	txB.Commit()

	// Revoke removes everything.
	env.Authz.Revoke("bob", rd.RelID)
	txB2 := env.Begin()
	txB2.SetUser("bob")
	if _, err := r.Fetch(txB2, key, nil, nil); err == nil {
		t.Fatal("revoked user still reads")
	}
	txB2.Commit()
}

func TestAuthzIsUniformAcrossStorageMethods(t *testing.T) {
	// The same check covers every storage method: no extension carries
	// authorization code of its own.
	env := core.NewEnv(core.Config{})
	env.Authz.Enable()
	for _, sm := range []string{"memory", "temp"} {
		tx := env.Begin()
		tx.SetUser("owner")
		rd, err := env.CreateRelation(tx, "rel_"+sm, testSchema(), sm, nil)
		if err != nil {
			t.Fatal(err)
		}
		tx.Commit()
		r, _ := env.OpenRelation(rd)
		tx2 := env.Begin()
		tx2.SetUser("intruder")
		if _, err := r.Insert(tx2, rec(1, "x")); err == nil {
			t.Fatalf("%s: unauthorized insert accepted", sm)
		}
		tx2.Commit()
	}
}

func TestAuthzGrantKeepsStrongest(t *testing.T) {
	env := core.NewEnv(core.Config{})
	env.Authz.Enable()
	env.Authz.Grant("u", 1, core.PrivAdmin)
	env.Authz.Grant("u", 1, core.PrivRead) // must not downgrade
	rd := &core.RelDesc{RelID: 1, Name: "x"}
	tx := env.Begin()
	tx.SetUser("u")
	if err := env.Authz.Check(tx, rd, core.PrivAdmin); err != nil {
		t.Fatalf("grant downgraded: %v", err)
	}
	tx.Commit()
}

func TestPrivilegeString(t *testing.T) {
	for _, p := range []core.Privilege{core.PrivNone, core.PrivRead, core.PrivWrite, core.PrivAdmin, core.Privilege(9)} {
		if p.String() == "" {
			t.Error("empty privilege name")
		}
	}
}

var _ = types.Int // keep types import stable if helpers move
