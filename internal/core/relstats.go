package core

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dmx/internal/obs"
	"dmx/internal/txn"
)

// RelStat is the per-relation dispatch rollup behind sys.stat_relations:
// call counts per operation, row counts, and cumulative storage-method
// dispatch time, accumulated in the Relation layer where every access
// funnels through. Counters are atomics because relations are operated on
// from many transactions concurrently and snapshotted by observers.
type RelStat struct {
	Inserts     atomic.Int64
	Updates     atomic.Int64
	Deletes     atomic.Int64
	Fetches     atomic.Int64
	Scans       atomic.Int64
	Errors      atomic.Int64
	RowsRead    atomic.Int64
	RowsWritten atomic.Int64
	SMNanos     atomic.Int64 // cumulative storage-method dispatch time
}

// observe books one dispatch call. Gated on the same switch as the
// per-transaction ledgers so the SELFOBS benchmark measures the whole
// accounting layer.
func (rs *RelStat) observe(op obs.Op, d time.Duration, failed bool) {
	if rs == nil || !txn.AccountingEnabled() {
		return
	}
	rs.SMNanos.Add(int64(d))
	if failed {
		rs.Errors.Add(1)
	}
	switch op {
	case obs.OpInsert:
		rs.Inserts.Add(1)
	case obs.OpUpdate:
		rs.Updates.Add(1)
	case obs.OpDelete:
		rs.Deletes.Add(1)
	case obs.OpFetch:
		rs.Fetches.Add(1)
	case obs.OpScan:
		rs.Scans.Add(1)
	}
}

// RelStatRow is one sys.stat_relations row: a point-in-time copy of one
// relation's rollup with the name resolved from the catalog ("" when the
// relation has since been dropped).
type RelStatRow struct {
	RelID       uint32 `json:"rel_id"`
	Name        string `json:"name"`
	Inserts     int64  `json:"inserts"`
	Updates     int64  `json:"updates"`
	Deletes     int64  `json:"deletes"`
	Fetches     int64  `json:"fetches"`
	Scans       int64  `json:"scans"`
	Errors      int64  `json:"errors"`
	RowsRead    int64  `json:"rows_read"`
	RowsWritten int64  `json:"rows_written"`
	SMNanos     int64  `json:"sm_nanos"`
}

// relStatsTable maps relation IDs to their rollups. Entries persist past
// relation drop (the rollup is historical, and RelIDs are never reused
// within a process).
type relStatsTable struct {
	mu sync.RWMutex
	m  map[uint32]*RelStat
}

// get returns the rollup for relID, creating it on first use.
func (t *relStatsTable) get(relID uint32) *RelStat {
	t.mu.RLock()
	rs := t.m[relID]
	t.mu.RUnlock()
	if rs != nil {
		return rs
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if rs = t.m[relID]; rs != nil {
		return rs
	}
	if t.m == nil {
		t.m = make(map[uint32]*RelStat)
	}
	rs = &RelStat{}
	t.m[relID] = rs
	return rs
}

// RelStatRows snapshots every relation rollup, sorted by relation ID,
// with names resolved from the catalog.
func (env *Env) RelStatRows() []RelStatRow {
	env.relStats.mu.RLock()
	stats := make(map[uint32]*RelStat, len(env.relStats.m))
	for id, rs := range env.relStats.m {
		stats[id] = rs
	}
	env.relStats.mu.RUnlock()
	rows := make([]RelStatRow, 0, len(stats))
	for id, rs := range stats {
		row := RelStatRow{
			RelID:       id,
			Inserts:     rs.Inserts.Load(),
			Updates:     rs.Updates.Load(),
			Deletes:     rs.Deletes.Load(),
			Fetches:     rs.Fetches.Load(),
			Scans:       rs.Scans.Load(),
			Errors:      rs.Errors.Load(),
			RowsRead:    rs.RowsRead.Load(),
			RowsWritten: rs.RowsWritten.Load(),
			SMNanos:     rs.SMNanos.Load(),
		}
		if rd, ok := env.Cat.Get(id); ok {
			row.Name = rd.Name
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].RelID < rows[j].RelID })
	return rows
}
