package core

import (
	"dmx/internal/expr"
	"dmx/internal/txn"
	"dmx/internal/types"
	"dmx/internal/wal"
)

// ScanOptions configure a key-sequential access. Start/End bound the scan
// in key order (nil = unbounded; End is exclusive). Filter is evaluated by
// the extension against buffer-resident records via the common predicate
// evaluator; non-qualifying entries are skipped without being returned.
// Fields selects the record fields to return (nil = all).
type ScanOptions struct {
	Start, End types.Key
	Filter     *expr.Expr
	Params     []types.Value
	Fields     []int
}

// ScanPos is an opaque saved key-sequential access position. Positions are
// captured when a rollback point is established and restored after partial
// rollback (position state changes are not logged, for performance).
type ScanPos []byte

// Scan is a key-sequential access over a relation storage method or an
// access path. A scan is "on" the last item returned; if that item is
// deleted the scan is positioned just after it; Next always returns the
// next item after the current position.
//
// For storage-method scans Next returns the record key and the selected
// record fields. For access-path scans Next returns the mapped record key
// and, when the access path stores them, the access-path key fields.
type Scan interface {
	// Next returns the next qualifying item. ok is false at exhaustion.
	Next() (key types.Key, rec types.Record, ok bool, err error)
	// Pos returns the current restorable position.
	Pos() ScanPos
	// Restore re-positions the scan to a previously captured position.
	Restore(pos ScanPos) error
	// Close terminates the key-sequential access. All scans are closed at
	// transaction termination because locks are released then.
	Close() error
}

// CostRequest is the query planner's question to a storage method or
// access path: given these eligible predicates, what would an access cost,
// and can it deliver the tuples ordered by particular record fields?
type CostRequest struct {
	// Conjuncts are the eligible predicates supplied by the query planner,
	// over the relation's field positions.
	Conjuncts []*expr.Expr
	// RecordCount is the planner's current cardinality estimate.
	RecordCount int
	// OrderBy, when non-empty, asks whether the access can return records
	// ordered (ascending) by these fields; extensions that can set
	// CostEstimate.Ordered, letting the planner skip a sort.
	OrderBy []int
	// ConjunctSel, when non-nil, is parallel to Conjuncts: the planner's
	// statistics-derived selectivity for each conjunct (from histograms and
	// distinct counts). Extensions should prefer these over textbook
	// guesses; entries < 0 mean "no estimate for this conjunct".
	ConjunctSel []float64
}

// CostEstimate is an extension's answer: whether the path is usable for
// the request, the predicted I/O and CPU effort, estimated selectivity,
// and which conjuncts the path handles itself (so the executor need not
// re-apply them).
type CostEstimate struct {
	Usable      bool
	IO          float64 // estimated page reads
	CPU         float64 // estimated records touched
	Selectivity float64 // fraction of records expected to qualify
	Instance    int     // which instance of the attachment type
	// Handled indexes into CostRequest.Conjuncts for predicates the path
	// applies itself (e.g. the B-tree key range).
	Handled []int
	// Ordered reports that the access returns records ordered by the
	// requested OrderBy fields.
	Ordered bool
	// Start/End are the key bounds an index scan should use.
	Start, End types.Key
}

// Total returns the weighted cost used for comparison (I/O dominates, as
// in 1987).
func (c CostEstimate) Total() float64 { return c.IO*10 + c.CPU }

// ColumnStats summarize one column's value distribution for the planner.
type ColumnStats struct {
	// Distinct is the approximate number of distinct non-null values.
	Distinct float64
	// Min/Max are the observed value watermarks (monotone approximations).
	Min, Max types.Value
	// Hist, when non-empty, holds B+1 ascending equi-depth bucket bounds:
	// each adjacent pair [Hist[i], Hist[i+1]) holds ~1/B of the rows.
	Hist []types.Value
	// NullFrac is the fraction of rows with a null in this column.
	NullFrac float64
}

// TableStats is a relation-level statistics snapshot.
type TableStats struct {
	Rows int64
	Cols map[int]ColumnStats
}

// TableStatsProvider is implemented by attachment instances that maintain
// relation statistics (the stats attachment). The planner discovers it by
// type assertion, keeping plan decoupled from concrete attachment types.
type TableStatsProvider interface {
	TableStats() TableStats
}

// RangePartitioner is implemented by storage instances whose record-key
// space can be split for partitioned parallel scans. PartitionBounds
// returns up to n-1 ascending interior split keys: partition i scans
// [bounds[i-1], bounds[i]) with the outer ends unbounded. Fewer (or zero)
// bounds mean the store is too small to split that finely.
type RangePartitioner interface {
	PartitionBounds(n int) []types.Key
}

// DirectOnlyPath is implemented by access paths that support only
// direct-by-key probes (LookupByKey) and reject OpenScan — hash indexes.
// The planner asks this instead of opening a throwaway scan to find out.
type DirectOnlyPath interface {
	DirectOnly() bool
}

// StorageInstance is the runtime handle for one relation's storage. The
// generic direct operations on stored relations are its methods; the
// owning StorageOps table opens instances from the relation descriptor.
type StorageInstance interface {
	// Insert stores rec and returns its record key. The storage method
	// defines and interprets record keys (record addresses, field
	// compositions, ...).
	Insert(tx *txn.Txn, rec types.Record) (types.Key, error)
	// Update replaces the record at key with newRec, returning the
	// (possibly changed) record key.
	Update(tx *txn.Txn, key types.Key, oldRec, newRec types.Record) (types.Key, error)
	// Delete removes the record at key. oldRec is the current value (the
	// caller has fetched it to notify attachments).
	Delete(tx *txn.Txn, key types.Key, oldRec types.Record) error
	// FetchByKey is the direct-by-key access: it returns the selected
	// fields of the record at key, first applying filter against the
	// buffer-resident record (ErrFiltered when rejected, ErrNotFound when
	// absent). fields nil returns all fields.
	FetchByKey(tx *txn.Txn, key types.Key, fields []int, filter *expr.Expr) (types.Record, error)
	// OpenScan starts a key-sequential access in record-key order.
	OpenScan(tx *txn.Txn, opts ScanOptions) (Scan, error)
	// EstimateCost assists the query planner.
	EstimateCost(req CostRequest) CostEstimate
	// RecordCount returns the current number of stored records.
	RecordCount() int
	// ApplyLogged applies a logged modification payload without
	// re-logging: the recovery driver calls it with undo=true to reverse
	// the modification (veto rollback, abort, partial rollback) and with
	// undo=false to repeat it (restart redo).
	ApplyLogged(payload []byte, undo bool) error
}

// StorageOps is one storage method's table of generic operations — the
// entries installed in the storage-method procedure vectors. All fields
// are required unless noted.
type StorageOps struct {
	ID   SMID
	Name string
	// ValidateAttrs checks a DDL attribute/value list during parsing.
	ValidateAttrs func(schema *types.Schema, attrs AttrList) error
	// Create initialises storage for a new relation and returns the
	// storage method descriptor to place in the RelDesc header.
	Create func(env *Env, tx *txn.Txn, rd *RelDesc, attrs AttrList) ([]byte, error)
	// Open returns the runtime instance described by rd. Called once per
	// (Env, relation); the environment caches instances.
	Open func(env *Env, rd *RelDesc) (StorageInstance, error)
	// Drop releases the relation's storage. It runs as a deferred action
	// after commit so the drop can be undone until then. Optional.
	Drop func(env *Env, rd *RelDesc) error
	// SnapshotContents marks storage methods whose relation contents must
	// be embedded in log checkpoints: the method logs its modifications
	// and stores records locally, so after checkpoint truncation the
	// snapshot is the only durable source of the pre-checkpoint records.
	// Leave false for unlogged methods (temp) and methods whose data
	// lives elsewhere (remote).
	SnapshotContents bool
	// ReplayAttachments makes restart recovery replay attachment-owned
	// log records for this method's relations instead of rebuilding the
	// attachments by scanning (the default). Set it when relations cannot
	// be scanned at restart (remote: the foreign server is attached
	// later).
	ReplayAttachments bool
	// MVCC marks storage methods that stamp record versions, letting
	// read-only snapshot transactions read them with zero lock-manager
	// acquisitions. The method's instances must implement
	// VersionedStorage, answer FetchByKey/OpenScan with
	// snapshot-consistent versions when tx.ReadOnly(), and implement
	// VersionFreezer so truncating checkpoints can retire chains whose
	// WAL records are going away. Relations of non-MVCC methods fall back
	// to ordinary share-locked reads for read-only transactions.
	MVCC bool
	// AfterRecovery runs at the end of Env.Recover, after redo/undo and
	// attachment rebuild. Storage methods whose durable state lives
	// outside the local log use it to reconcile that state with the
	// recovered local decision history — partitioned relations resolve
	// shards left prepared-but-undecided by a coordinator crash.
	// Optional.
	AfterRecovery func(env *Env) error
}

// TxnLoggedApplier is implemented by storage instances that need the
// owning transaction id alongside a logged modification. When a live
// transaction rolls back, a partitioned relation must route the
// compensation through that transaction's staged shard writes rather
// than the committed shard state; at restart recovery there is no live
// transaction and the id selects the direct-apply path. Instances that
// implement this receive ApplyLoggedTxn instead of ApplyLogged from the
// recovery driver.
type TxnLoggedApplier interface {
	ApplyLoggedTxn(txnID wal.TxnID, payload []byte, undo bool) error
}

// VersionedStorage is implemented by MVCC storage instances. It answers
// point visibility questions for keys obtained outside the storage method
// itself — access-path lookups return record keys without consulting
// version stamps, so the read path filters them through the base
// relation's snapshot visibility before use.
type VersionedStorage interface {
	// SnapshotVisible reports whether the record at key exists in tx's
	// snapshot (tx must be read-only). It never takes locks.
	SnapshotVisible(tx *txn.Txn, key types.Key) (bool, error)
}

// VersionFreezer is implemented by MVCC storage instances whose version
// chains reference WAL records by LSN. A truncating checkpoint — which
// only runs with writers quiesced and no snapshot open — calls
// FreezeVersions afterwards to drop the chains: current page state, which
// the checkpoint just captured, becomes the version every future snapshot
// starts from, and no chain entry outlives the log records it points at.
type VersionFreezer interface {
	FreezeVersions()
}

// AttachmentInstance is the runtime handle for all instances of one
// attachment type on one relation. Its modification methods are the
// attached procedures: they are invoked only as side effects of relation
// modifications, at most once per modification, and must service every
// instance of the type currently defined on the relation. Returning an
// error vetoes the entire relation modification, which the common recovery
// log then undoes.
type AttachmentInstance interface {
	// OnInsert is passed the newly assigned record key and the new record.
	OnInsert(tx *txn.Txn, key types.Key, rec types.Record) error
	// OnUpdate is passed the old and new record keys and values.
	OnUpdate(tx *txn.Txn, oldKey, newKey types.Key, oldRec, newRec types.Record) error
	// OnDelete is passed the record key and the old record.
	OnDelete(tx *txn.Txn, key types.Key, oldRec types.Record) error
	// ApplyLogged mirrors StorageInstance.ApplyLogged for the attachment's
	// own logged state changes. Attachment types with no associated
	// storage may return nil unconditionally.
	ApplyLogged(payload []byte, undo bool) error
}

// AccessPath is implemented by attachment instances that provide access to
// relation data (B-tree, hash, R-tree, join indexes). Access paths map
// access-path keys to record keys: accesses take keys as input and return
// record keys (plus access-path key fields where stored). Instance numbers
// select among multiple instances of the type ("access via B-tree number
// 3"); instance numbering is attachment-defined and dense from 0.
type AccessPath interface {
	// LookupByKey is the direct-by-key access: record keys whose
	// access-path key equals key (possibly a partial key prefix).
	LookupByKey(tx *txn.Txn, instance int, key types.Key) ([]types.Key, error)
	// OpenScan starts a key-sequential access in access-path key order.
	OpenScan(tx *txn.Txn, instance int, opts ScanOptions) (Scan, error)
	// EstimateCost reports the best estimate across the type's instances.
	EstimateCost(req CostRequest) CostEstimate
	// InstanceCount returns the number of instances on the relation.
	InstanceCount() int
}

// AttachmentOps is one attachment type's table of generic operations — the
// entries installed in the attachment procedure vectors.
type AttachmentOps struct {
	ID   AttID
	Name string
	// ValidateAttrs checks a DDL attribute/value list during parsing.
	ValidateAttrs func(env *Env, rd *RelDesc, attrs AttrList) error
	// Create adds an instance to the relation. prior is the type's current
	// descriptor field (nil if this is the first instance); Create returns
	// the new field value, encoding all instances of the type.
	Create func(env *Env, tx *txn.Txn, rd *RelDesc, prior []byte, attrs AttrList) ([]byte, error)
	// Drop removes the instance selected by attrs from the descriptor
	// field, returning the new value (nil when no instances remain).
	// Optional; attachments without Drop are dropped whole.
	Drop func(env *Env, tx *txn.Txn, rd *RelDesc, prior []byte, attrs AttrList) ([]byte, error)
	// Open returns the runtime instance servicing all of the type's
	// instances on rd. Called once per (Env, relation); cached.
	Open func(env *Env, rd *RelDesc) (AttachmentInstance, error)
	// Build populates instance state from the relation's existing
	// contents (e.g. indexing pre-existing records). Optional.
	//
	// newOnly is true when a single new instance was just created by DDL:
	// only the newest def may be populated, because the type's other
	// instances on the relation are already maintained and re-applying
	// their entries corrupts duplicate-sensitive state (hash buckets,
	// counters) and logs spurious entries whose undo would strip live
	// state if the DDL transaction aborts. newOnly is false at restart
	// rebuild, where every instance starts empty.
	Build func(env *Env, tx *txn.Txn, rd *RelDesc, newOnly bool) error
}

// SystemUndoer handles undo/redo for OwnerSystem log records (catalog
// modifications). Implemented by the Catalog.
type SystemUndoer interface {
	ApplySystemLogged(txnID wal.TxnID, payload []byte, undo bool) error
}
