package core

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"dmx/internal/buffer"
	"dmx/internal/expr"
	"dmx/internal/fault"
	"dmx/internal/lock"
	"dmx/internal/obs"
	"dmx/internal/pagefile"
	"dmx/internal/trace"
	"dmx/internal/txn"
	"dmx/internal/wal"
)

// Metrics counts extension activity; the experiment harness reads these to
// validate the paper's tuple-at-a-time call-volume claims. The counters are
// coarse totals; the per-extension breakdown (with latency) lives in
// Env.Obs and is exported by MetricsSnapshot.
type Metrics struct {
	SMCalls  obs.Counter // storage method generic operation invocations
	AttCalls obs.Counter // attached procedure invocations
	Fetches  obs.Counter // direct-by-key accesses
	Scans    obs.Counter // key-sequential accesses opened
	Vetoes   obs.Counter // vetoed relation modifications
}

// Config assembles an environment.
type Config struct {
	// Registry of linked-in extensions; nil means DefaultRegistry.
	Registry *Registry
	// Log is the common recovery log; nil means a fresh in-memory log.
	Log *wal.Log
	// Disk backs the shared buffer pool; nil means a fresh MemDisk.
	Disk pagefile.Disk
	// PoolFrames is the buffer pool capacity (default 256 frames).
	PoolFrames int
	// CommitBatchWindow, when positive, makes the group-commit leader wait
	// this long before syncing so concurrent committers share one fsync.
	CommitBatchWindow time.Duration
	// Faults, when non-nil, arms the engine's crash sites (WAL append,
	// flush and sync, buffer write-back, page-file writes) with a
	// deterministic crash-point injector for recovery testing.
	Faults *fault.Injector
	// TraceSample is the fraction of transactions that carry a detailed
	// span trace (0 disables detailed tracing; adjustable at runtime via
	// Env.Tracer.SetSampleRate).
	TraceSample float64
	// SlowThreshold enables always-on slow detection: every transaction is
	// root-traced and those at least this slow are kept in the trace ring
	// and reported to the slow-event log regardless of sampling.
	SlowThreshold time.Duration
	// TraceRing is the completed-trace ring capacity (default 256).
	TraceRing int
	// SlowLog receives one structured JSON line per slow span/transaction
	// (nil: slow events are ring-kept but not written anywhere).
	SlowLog io.Writer
}

// Env is the database execution environment storage method and attachment
// extensions are embedded in: the common log, lock manager, transaction
// manager, buffer pool, predicate evaluator, catalog, and the procedure
// vectors. Env implements wal.Undoer and wal.Redoer, dispatching log
// records to the owning extension.
type Env struct {
	Reg     *Registry
	Log     *wal.Log
	Locks   *lock.Manager
	Txns    *txn.Manager
	Pool    *buffer.Pool
	Eval    *expr.Evaluator
	Cat     *Catalog
	Authz   *Authz
	Metrics Metrics
	Obs     *obs.Engine
	Tracer  *trace.Tracer

	// Faults is the crash-point injector handed in via Config.Faults (nil
	// in production). Storage methods with their own durability-bearing
	// lifecycle transitions — e.g. the LSM method's memtable flush and
	// run compaction — consult it at their declared sites; all Injector
	// methods are nil-receiver safe.
	Faults *fault.Injector

	// NotifySkip, when non-nil, suppresses the attached-procedure
	// notification for attachment type id on the named relation. It is a
	// deliberate-mutation hook for the model-based differential harness
	// (internal/model), which uses it to prove that a dropped notify is
	// caught as a semantic divergence; production code leaves it nil.
	NotifySkip func(relName string, id AttID) bool

	mu       sync.RWMutex
	smInst   map[uint32]StorageInstance
	attInst  map[attKey]*attEntry
	extState map[string]any

	// relStats holds the per-relation dispatch rollups behind
	// sys.stat_relations, keyed by relation ID.
	relStats relStatsTable

	recovering    atomic.Bool // restart recovery in progress
	checkpointing atomic.Bool // guards against overlapping checkpoints

	debugMu sync.Mutex
	debug   *debugServer
}

// ExtState returns the extension-private environment state stored under
// key. Extensions use it for per-environment singletons such as foreign
// database connections.
func (env *Env) ExtState(key string) (any, bool) {
	env.mu.RLock()
	defer env.mu.RUnlock()
	v, ok := env.extState[key]
	return v, ok
}

// SetExtState stores extension-private environment state under key.
func (env *Env) SetExtState(key string, v any) {
	env.mu.Lock()
	defer env.mu.Unlock()
	env.extState[key] = v
}

type attKey struct {
	rel uint32
	att AttID
}

type attEntry struct {
	version uint64
	inst    AttachmentInstance
}

// NewEnv builds an environment from cfg.
func NewEnv(cfg Config) *Env {
	if cfg.Registry == nil {
		cfg.Registry = DefaultRegistry
	}
	if cfg.Log == nil {
		cfg.Log = wal.New()
	}
	if cfg.Disk == nil {
		cfg.Disk = pagefile.NewMemDisk()
	}
	if cfg.PoolFrames == 0 {
		cfg.PoolFrames = 256
	}
	engine := obs.NewEngine()
	locks := lock.NewManager()
	locks.SetObs(&engine.Lock)
	cfg.Log.SetObs(&engine.WAL)
	cfg.Log.SetGroupCommitWindow(cfg.CommitBatchWindow)
	pool := buffer.NewPool(cfg.Disk, cfg.PoolFrames)
	pool.SetObs(&engine.Buffer)
	// Write-ahead rule under the steal policy: before the pool writes a
	// dirty page back, the log is forced through the page's stamped LSN
	// (or entirely, for pages dirtied outside a stamped session).
	log := cfg.Log
	pool.SetLogForcer(func(lsn wal.LSN) error {
		if lsn == 0 {
			return log.Sync()
		}
		return log.ForceTo(lsn)
	})
	if cfg.Faults != nil {
		cfg.Log.SetFaults(cfg.Faults)
		pool.SetFaults(cfg.Faults)
		if fd, ok := cfg.Disk.(*pagefile.FileDisk); ok {
			fd.SetFaults(cfg.Faults)
		}
	}
	env := &Env{
		Reg:   cfg.Registry,
		Log:   cfg.Log,
		Locks: locks,
		Txns:  txn.NewManager(cfg.Log, locks),
		Pool:  pool,
		Eval:  expr.NewEvaluator(),
		Obs:   engine,
		Tracer: trace.New(trace.Config{
			Sample:        cfg.TraceSample,
			SlowThreshold: cfg.SlowThreshold,
			RingSize:      cfg.TraceRing,
			SlowLog:       cfg.SlowLog,
		}),
		Faults:   cfg.Faults,
		smInst:   make(map[uint32]StorageInstance),
		attInst:  make(map[attKey]*attEntry),
		extState: make(map[string]any),
	}
	env.Cat = NewCatalog(env)
	env.Authz = newAuthz()
	env.Txns.Undoer = env
	env.Txns.SetObs(&engine.Txn)
	env.installSystemRelations()
	return env
}

// Begin starts a transaction in this environment. When tracing is
// enabled (sampling or slow detection), the transaction carries a span
// trace that every dispatch layer below records into.
func (env *Env) Begin() *txn.Txn {
	tx := env.Txns.Begin()
	if env.Tracer.Enabled() {
		tx.SetTrace(env.Tracer.StartTxn(uint64(tx.ID())))
	}
	return tx
}

// BeginReadOnly starts a snapshot read-only transaction: reads observe
// the state committed when it began, modifications are refused, and —
// for relations of MVCC storage methods — no lock-manager acquisitions
// are performed at all, so readers never contend with writers.
func (env *Env) BeginReadOnly() *txn.Txn {
	tx := env.Txns.BeginReadOnly()
	if env.Tracer.Enabled() {
		tx.SetTrace(env.Tracer.StartTxn(uint64(tx.ID())))
	}
	return tx
}

// Close releases environment-level services: the debug server (if one is
// running) is shut down. The buffer pool, log, and disk are owned by the
// embedding database handle and closed there.
func (env *Env) Close() error {
	return env.StopDebug()
}

// StorageInstance returns the (cached) runtime storage instance for rd,
// opening it through the storage-method procedure vector on first use.
// Storage instances live until the relation is dropped: their in-memory
// state is authoritative between restarts (durability comes from the log).
func (env *Env) StorageInstance(rd *RelDesc) (StorageInstance, error) {
	env.mu.RLock()
	if inst, ok := env.smInst[rd.RelID]; ok {
		env.mu.RUnlock()
		return inst, nil
	}
	env.mu.RUnlock()

	ops := env.Reg.StorageOps(rd.SM)
	if ops == nil {
		return nil, fmt.Errorf("core: relation %q uses unregistered storage method %d", rd.Name, rd.SM)
	}
	inst, err := ops.Open(env, rd)
	if err != nil {
		return nil, fmt.Errorf("core: open storage for %q: %w", rd.Name, err)
	}
	env.mu.Lock()
	defer env.mu.Unlock()
	if prior, ok := env.smInst[rd.RelID]; ok {
		return prior, nil // lost a race; keep the first instance
	}
	env.smInst[rd.RelID] = inst
	return inst, nil
}

// AttachmentInstance returns the (cached) runtime instance servicing all
// of attachment type id's instances on rd, reconfiguring it when the
// relation descriptor version has moved.
func (env *Env) AttachmentInstance(rd *RelDesc, id AttID) (AttachmentInstance, error) {
	k := attKey{rel: rd.RelID, att: id}
	env.mu.RLock()
	e, ok := env.attInst[k]
	env.mu.RUnlock()
	if ok {
		if e.version >= rd.Version {
			// Same version, or the caller holds a stale descriptor from an
			// old bound plan: the cached instance reflects current state.
			return e.inst, nil
		}
		if rc, canReconf := e.inst.(Reconfigurer); canReconf {
			if err := rc.Reconfigure(rd); err != nil {
				return nil, err
			}
			e.version = rd.Version
			return e.inst, nil
		}
		// Instance cannot reconfigure: fall through and reopen.
	}
	ops := env.Reg.AttachmentOps(id)
	if ops == nil {
		return nil, fmt.Errorf("core: relation %q has unregistered attachment type %d", rd.Name, id)
	}
	inst, err := ops.Open(env, rd)
	if err != nil {
		return nil, fmt.Errorf("core: open attachment %q on %q: %w", ops.Name, rd.Name, err)
	}
	env.mu.Lock()
	defer env.mu.Unlock()
	if prior, ok := env.attInst[k]; ok && prior.version == rd.Version {
		return prior.inst, nil
	}
	env.attInst[k] = &attEntry{version: rd.Version, inst: inst}
	return inst, nil
}

// Reconfigurer is implemented by attachment instances that can absorb a
// descriptor change (instances added or dropped) without losing the state
// of surviving instances.
type Reconfigurer interface {
	Reconfigure(rd *RelDesc) error
}

// DropInstances evicts all cached instances for a dropped relation.
func (env *Env) DropInstances(relID uint32) {
	env.mu.Lock()
	defer env.mu.Unlock()
	delete(env.smInst, relID)
	for k := range env.attInst {
		if k.rel == relID {
			delete(env.attInst, k)
		}
	}
}

// InvalidateRelation forces cached attachment instances for relID to
// reconfigure against the current catalog descriptor. The catalog calls it
// after descriptor changes, including those made by log-driven undo.
func (env *Env) InvalidateRelation(relID uint32) error {
	rd, ok := env.Cat.Get(relID)
	if !ok {
		env.DropInstances(relID)
		return nil
	}
	env.mu.Lock()
	var toReconf []AttachmentInstance
	for k, e := range env.attInst {
		if k.rel == relID && e.version != rd.Version {
			if _, canReconf := e.inst.(Reconfigurer); canReconf {
				e.version = rd.Version
				toReconf = append(toReconf, e.inst)
			} else {
				delete(env.attInst, k)
			}
		}
	}
	env.mu.Unlock()
	for _, inst := range toReconf {
		if err := inst.(Reconfigurer).Reconfigure(rd); err != nil {
			return err
		}
	}
	return nil
}

// Undo implements wal.Undoer: the common recovery log drives the storage
// method and attachment implementations to undo the effects of a logged
// modification, dispatching through the procedure vectors.
func (env *Env) Undo(txnID wal.TxnID, owner wal.Owner, payload []byte) error {
	return env.applyLogged(txnID, owner, payload, true)
}

// Redo implements wal.Redoer for restart recovery. Compensation records
// re-apply the inverse of the logged modification.
func (env *Env) Redo(txnID wal.TxnID, owner wal.Owner, payload []byte, compensation bool) error {
	return env.applyLogged(txnID, owner, payload, compensation)
}

func (env *Env) applyLogged(txnID wal.TxnID, owner wal.Owner, payload []byte, undo bool) error {
	switch owner.Class {
	case wal.OwnerSystem:
		return env.Cat.ApplySystemLogged(payload, undo)
	case wal.OwnerStorage:
		rd, ok := env.Cat.Get(owner.RelID)
		if !ok {
			return fmt.Errorf("core: log record for unknown relation %d", owner.RelID)
		}
		inst, err := env.StorageInstance(rd)
		if err != nil {
			return err
		}
		// Storage methods that track which transaction a logged
		// modification belongs to (partitioned relations route a live
		// rollback's compensation through the transaction's staged
		// shard writes) get the owning transaction id; the rest see
		// only the payload.
		if ta, ok := inst.(TxnLoggedApplier); ok {
			return ta.ApplyLoggedTxn(txnID, payload, undo)
		}
		return inst.ApplyLogged(payload, undo)
	case wal.OwnerAttachment:
		rd, ok := env.Cat.Get(owner.RelID)
		if !ok {
			return fmt.Errorf("core: log record for unknown relation %d", owner.RelID)
		}
		if env.recovering.Load() {
			// During restart recovery, attachment types that can be
			// rebuilt by scanning (they provide Build) are not replayed
			// from the log: checkpoint truncation may have dropped the
			// early entry records, and replaying the survivors on top of
			// a rebuild would double-apply. Their state is reconstructed
			// from the recovered relation contents afterwards. Types
			// without Build keep their state only in the log and replay
			// as usual, as do all attachments of storage methods that
			// opt into replay (their contents live elsewhere and cannot
			// be rescanned at restart).
			sops := env.Reg.StorageOps(rd.SM)
			aops := env.Reg.AttachmentOps(AttID(owner.ExtID))
			if (sops == nil || !sops.ReplayAttachments) &&
				aops != nil && aops.Build != nil {
				return nil
			}
		}
		inst, err := env.AttachmentInstance(rd, AttID(owner.ExtID))
		if err != nil {
			return err
		}
		return inst.ApplyLogged(payload, undo)
	default:
		return fmt.Errorf("core: log record with unknown owner class %d", owner.Class)
	}
}

// Recover performs restart recovery over the environment's log: history
// past the last complete checkpoint is repeated in LSN order (the
// checkpoint snapshot replays first, so relation descriptors exist before
// their data records), then loser transactions are rolled back — all
// dispatched through the extension procedure vectors. Attachment state
// (indexes, aggregates, validators) is then rebuilt from the recovered
// relation contents via the attachment Build operations, since checkpoint
// truncation may have dropped the entry records that populated it.
func (env *Env) Recover() error {
	env.recovering.Store(true)
	err := env.Log.Recover(env, env)
	env.recovering.Store(false)
	if err != nil {
		return err
	}
	// Re-seed the commit-stamp sequence from the recovered log: the
	// largest stamp among surviving commit records and the checkpoint's
	// recorded high-water. Recovery rebuilt state for exactly the
	// transactions whose commit records survived, so a snapshot at this
	// high-water sees precisely the committed history — a crash between
	// a commit's force and its stamp publication leaves the transaction
	// either fully in or fully out, never half-published.
	var maxStamp uint64
	for _, rec := range env.Log.Records() {
		var s uint64
		switch rec.Kind {
		case wal.RecCommit:
			s = wal.DecodeCommitStamp(rec.Payload)
		case wal.RecCheckpoint:
			s = wal.DecodeCheckpointStamp(rec.Payload)
		}
		if s > maxStamp {
			maxStamp = s
		}
	}
	env.Txns.RestoreStamps(maxStamp)
	if err := env.rebuildAttachments(); err != nil {
		return err
	}
	// Storage methods that keep state outside the local environment get a
	// post-recovery hook: partitioned relations use it to resolve shards
	// left in doubt by a crash between prepare and decision delivery.
	for id := SMID(1); id < MaxStorageMethods; id++ {
		sops := env.Reg.StorageOps(id)
		if sops == nil || sops.AfterRecovery == nil {
			continue
		}
		if err := sops.AfterRecovery(env); err != nil {
			return err
		}
	}
	return nil
}

// rebuildAttachments repopulates every attachment instance from its
// relation's recovered contents, inside one committed transaction (the
// rebuilt entries are logged, so they survive the next checkpoint).
func (env *Env) rebuildAttachments() error {
	names := env.Cat.List()
	if len(names) == 0 {
		return nil
	}
	tx := env.Begin()
	for _, name := range names {
		rd, ok := env.Cat.ByName(name)
		if !ok || IsSystemRelID(rd.RelID) {
			continue
		}
		sops := env.Reg.StorageOps(rd.SM)
		if sops == nil || sops.ReplayAttachments {
			continue // replayed from the log instead
		}
		for _, attID := range rd.AttachmentTypes() {
			aops := env.Reg.AttachmentOps(attID)
			if aops == nil || aops.Build == nil {
				continue
			}
			if err := aops.Build(env, tx, rd, false); err != nil {
				tx.Abort()
				return fmt.Errorf("core: rebuild %s attachments on %s: %w", aops.Name, rd.Name, err)
			}
		}
	}
	return tx.Commit()
}
