package core

import "dmx/internal/obs"

// MetricsSnapshot is the engine-wide observability snapshot: the obs
// per-extension dispatch vectors (resolved to registered extension names),
// lock manager, recovery log, and buffer pool statistics, plus the legacy
// coarse totals. It marshals to a single JSON document.
type MetricsSnapshot struct {
	obs.Snapshot
	Totals TotalsSnapshot `json:"totals"`
}

// TotalsSnapshot mirrors the legacy Metrics counters.
type TotalsSnapshot struct {
	SMCalls  int64 `json:"sm_calls"`
	AttCalls int64 `json:"att_calls"`
	Fetches  int64 `json:"fetches"`
	Scans    int64 `json:"scans"`
	Vetoes   int64 `json:"vetoes"`
}

// MetricsSnapshot captures a consistent-enough point-in-time view of every
// counter in the environment. Safe to call concurrently with traffic.
func (env *Env) MetricsSnapshot() MetricsSnapshot {
	s := env.Obs.Snapshot()
	for i := range s.SM {
		if ops := env.Reg.StorageOps(SMID(s.SM[i].ID)); ops != nil {
			s.SM[i].Name = ops.Name
		}
	}
	for i := range s.Att {
		if ops := env.Reg.AttachmentOps(AttID(s.Att[i].ID)); ops != nil {
			s.Att[i].Name = ops.Name
		}
	}
	return MetricsSnapshot{
		Snapshot: s,
		Totals: TotalsSnapshot{
			SMCalls:  env.Metrics.SMCalls.Load(),
			AttCalls: env.Metrics.AttCalls.Load(),
			Fetches:  env.Metrics.Fetches.Load(),
			Scans:    env.Metrics.Scans.Load(),
			Vetoes:   env.Metrics.Vetoes.Load(),
		},
	}
}
