package core_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"dmx/internal/core"
	"dmx/internal/expr"
	"dmx/internal/lock"
	_ "dmx/internal/sm/memsm"
	"dmx/internal/types"
)

// TestConcurrentTransactionsOnIndexedRelation drives parallel writers and
// readers through the full stack — relation modification, two-step
// attachment notification, logging, key locks — and checks the final
// state is exactly the committed work.
func TestConcurrentTransactionsOnIndexedRelation(t *testing.T) {
	env := core.NewEnv(core.Config{})
	mkRel(t, env, "t", "memory", "trace", "veto")
	rel, _ := env.OpenRelationByName("t")

	const (
		workers    = 8
		perWorker  = 50
		abortEvery = 5 // every 5th txn aborts
	)
	var committed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tx := env.Begin()
				id := int64(w*perWorker + i)
				if _, err := rel.Insert(tx, rec(id, "x")); err != nil {
					t.Errorf("insert %d: %v", id, err)
					tx.Abort()
					return
				}
				if i%abortEvery == 0 {
					if err := tx.Abort(); err != nil {
						t.Errorf("abort: %v", err)
					}
					continue
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
				committed.Add(1)
			}
		}(w)
	}
	wg.Wait()
	want := int(committed.Load())
	if got := rel.Storage().RecordCount(); got != want {
		t.Fatalf("final count = %d, want %d", got, want)
	}
	// The trace attachment's logged counter agrees with the storage.
	if got := traceOf(env, rel.Desc().RelID).count; got != want {
		t.Fatalf("attachment count = %d, want %d", got, want)
	}
	// And nothing holds locks anymore.
	if env.Txns.ActiveCount() != 0 {
		t.Fatal("transactions leaked")
	}
}

// TestWriteConflictSerialises checks that two transactions updating the
// same record serialise through the key lock (the second waits for the
// first to finish).
func TestWriteConflictSerialises(t *testing.T) {
	env := core.NewEnv(core.Config{})
	mkRel(t, env, "t", "memory")
	rel, _ := env.OpenRelationByName("t")
	load := env.Begin()
	key, _ := rel.Insert(load, rec(1, "v0"))
	load.Commit()

	tx1 := env.Begin()
	if _, err := rel.Update(tx1, key, rec(1, "from-tx1")); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		tx2 := env.Begin()
		if _, err := rel.Update(tx2, key, rec(1, "from-tx2")); err != nil {
			done <- err
			tx2.Abort()
			return
		}
		done <- tx2.Commit()
	}()
	// tx2 must be blocked on the key lock; finish tx1 to release it.
	select {
	case err := <-done:
		t.Fatalf("tx2 finished while tx1 held the lock: %v", err)
	default:
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	check := env.Begin()
	got, _ := rel.Fetch(check, key, nil, nil)
	if got[1].S != "from-tx2" {
		t.Fatalf("final value = %v", got)
	}
	check.Commit()
}

// TestDeadlockVictimThroughRelations induces an AB-BA deadlock through
// record updates and checks one transaction is chosen as victim.
func TestDeadlockVictimThroughRelations(t *testing.T) {
	env := core.NewEnv(core.Config{})
	mkRel(t, env, "t", "memory")
	rel, _ := env.OpenRelationByName("t")
	load := env.Begin()
	ka, _ := rel.Insert(load, rec(1, "a"))
	kb, _ := rel.Insert(load, rec(2, "b"))
	load.Commit()

	tx1 := env.Begin()
	tx2 := env.Begin()
	if _, err := rel.Update(tx1, ka, rec(1, "a1")); err != nil {
		t.Fatal(err)
	}
	if _, err := rel.Update(tx2, kb, rec(2, "b2")); err != nil {
		t.Fatal(err)
	}
	// Close the cycle from both sides; whichever transaction's wait would
	// complete it is chosen as victim (a scheduling race, so accept either).
	got1 := make(chan error, 1)
	got2 := make(chan error, 1)
	go func() {
		_, err := rel.Update(tx1, kb, rec(2, "b1"))
		got1 <- err
	}()
	go func() {
		_, err := rel.Update(tx2, ka, rec(1, "a2"))
		got2 <- err
	}()
	var victimErr error
	var victim, survivorCh = tx1, got2
	select {
	case victimErr = <-got1:
		victim, survivorCh = tx1, got2
	case victimErr = <-got2:
		victim, survivorCh = tx2, got1
	}
	if !errors.Is(victimErr, lock.ErrDeadlock) {
		t.Fatalf("first finisher should be the deadlock victim, got %v", victimErr)
	}
	if err := victim.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := <-survivorCh; err != nil {
		t.Fatalf("survivor failed: %v", err)
	}
	survivor := tx1
	if victim == tx1 {
		survivor = tx2
	}
	if err := survivor.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentScansAndWrites runs readers scanning with filters while
// writers insert, under the relation-level S/IX locks.
func TestConcurrentScansAndWrites(t *testing.T) {
	env := core.NewEnv(core.Config{})
	mkRel(t, env, "t", "memory")
	rel, _ := env.OpenRelationByName("t")
	load := env.Begin()
	for i := 0; i < 100; i++ {
		rel.Insert(load, rec(int64(i), "seed"))
	}
	load.Commit()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if w%2 == 0 {
					tx := env.Begin()
					scan, err := rel.OpenScan(tx, core.ScanOptions{
						Filter: expr.Lt(expr.Field(0), expr.Const(types.Int(50))),
					})
					if err != nil {
						t.Error(err)
						tx.Abort()
						return
					}
					n := 0
					for {
						_, _, ok, err := scan.Next()
						if err != nil {
							t.Error(err)
							break
						}
						if !ok {
							break
						}
						n++
					}
					if n < 50 {
						t.Errorf("scan saw %d < 50 seed rows", n)
					}
					tx.Commit()
				} else {
					tx := env.Begin()
					if _, err := rel.Insert(tx, rec(int64(1000+w*100+i), "w")); err != nil {
						t.Error(err)
					}
					tx.Commit()
				}
			}
		}(w)
	}
	wg.Wait()
}
