// Package core implements the data management extension architecture —
// the primary contribution of Lindsay, McPherson & Pirahesh (SIGMOD 1987).
//
// The architecture treats data management extensions as alternative
// implementations of two generic abstractions:
//
//   - relation storage methods, which own the stored records of a relation
//     and define its record keys; and
//   - attachments (access paths, integrity constraints, and triggers),
//     whose modification interfaces are invoked only as side effects of
//     relation modifications and any of which may veto the modification.
//
// Each extension supplies a fixed table of generic operations
// (StorageOps / AttachmentOps). The tables are installed in procedure
// vectors indexed by small-integer extension identifiers (Registry), so
// activating the appropriate extension from a relation descriptor is a
// constant-time array index. Relation descriptors (RelDesc) are
// record-structured: the header carries the storage method identifier and
// descriptor, and field N carries the descriptor for attachment type N.
//
// The package also provides the common services the paper specifies:
// log-driven undo for vetoed modifications, partial rollback and restart
// recovery (dispatching to the owning extension), scan-position management
// around savepoints, deferred action queues, descriptor management, and
// predicate evaluation pushed to buffer-resident records.
package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// SMID is a storage method identifier: a small integer indexing the
// storage-method procedure vectors. SMID 0 is reserved (invalid).
type SMID uint8

// AttID is an attachment type identifier: a small integer indexing the
// attachment procedure vectors. AttID 0 is reserved (invalid).
type AttID uint8

// Vector capacities. The record-structured relation descriptor "limits the
// number of different attachment types to a few dozen"; we pick 32.
const (
	MaxStorageMethods  = 32
	MaxAttachmentTypes = 32
)

// Well-known extension identifiers. The base system assigns the temporary
// relation storage method identifier 1, as in the paper; the rest are the
// extensions "linked in at the factory" by this repository.
const (
	SMTemp   SMID = 1 // temporary (non-recoverable) relations
	SMHeap   SMID = 2 // slotted-page heap files
	SMBTree  SMID = 3 // B-tree-organised relations (records in the leaves)
	SMMemory SMID = 4 // main-memory relations for high-traffic tables
	SMAppend SMID = 5 // read-only/append-only "database publishing" storage
	SMRemote SMID = 6 // foreign-database relations over a network protocol
	SMSys    SMID = 7 // read-only virtual relations over live engine state
	SMPart   SMID = 8 // hash-partitioned relations across remote backends
)

// Well-known attachment type identifiers.
const (
	AttBTree   AttID = 1  // B-tree secondary index
	AttHash    AttID = 2  // hash index
	AttRTree   AttID = 3  // R-tree spatial index
	AttJoin    AttID = 4  // join index (record-key pairs across relations)
	AttCheck   AttID = 5  // single-record integrity constraint
	AttRefInt  AttID = 6  // referential integrity constraint
	AttTrigger AttID = 7  // trigger
	AttStats   AttID = 8  // statistics maintenance
	AttAggMV   AttID = 9  // precomputed (materialised) aggregates
	AttUnique  AttID = 10 // uniqueness constraint
)

// AttrList is the attribute/value list carried by extended data definition
// statements; storage method and attachment implementations validate and
// interpret it ("some storage methods may support multiple devices and
// will need to be told where to put a specific instance").
type AttrList map[string]string

// Get returns the value for key (case-insensitive) and whether it was set.
func (a AttrList) Get(key string) (string, bool) {
	for k, v := range a {
		if strings.EqualFold(k, key) {
			return v, true
		}
	}
	return "", false
}

// Keys returns the sorted attribute names (for deterministic validation
// error messages).
func (a AttrList) Keys() []string {
	out := make([]string, 0, len(a))
	for k := range a {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// CheckAllowed verifies every attribute name is in the allowed set;
// extensions call it from their ValidateAttrs operation.
func (a AttrList) CheckAllowed(extension string, allowed ...string) error {
	for _, k := range a.Keys() {
		ok := false
		for _, al := range allowed {
			if strings.EqualFold(k, al) {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("core: %s does not accept attribute %q (allowed: %s)",
				extension, k, strings.Join(allowed, ", "))
		}
	}
	return nil
}

// VetoError wraps the error with which an attachment (or the storage
// method) vetoed a relation modification. The whole modification is undone
// via the common log when a veto occurs.
type VetoError struct {
	Extension string // name of the vetoing extension
	Reason    error
}

// Error implements error.
func (e *VetoError) Error() string {
	return fmt.Sprintf("core: modification vetoed by %s: %v", e.Extension, e.Reason)
}

// Unwrap exposes the veto reason.
func (e *VetoError) Unwrap() error { return e.Reason }

// ErrNotFound is returned for direct-by-key accesses to absent keys and for
// catalog lookups of unknown relations.
var ErrNotFound = errors.New("core: not found")

// ErrFiltered is returned by FetchByKey when the record exists but does not
// satisfy the pushed-down filter predicate.
var ErrFiltered = errors.New("core: record rejected by filter")

// ErrReadOnly is returned by storage methods that do not support the
// attempted modification (e.g. the database-publishing storage method).
var ErrReadOnly = errors.New("core: storage method is read-only")
