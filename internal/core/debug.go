package core

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"dmx/internal/obs"
	"dmx/internal/types"
)

// debugServer is the optional HTTP introspection endpoint of an
// environment: live metrics in Prometheus text exposition, the
// completed-trace ring as JSON, and a liveness probe.
type debugServer struct {
	env *Env
	srv *http.Server
	ln  net.Listener
}

// ServeDebug starts the debug HTTP server on addr (e.g. "127.0.0.1:7654";
// ":0" picks a free port) and returns the bound address. Endpoints:
//
//	/metrics      obs.Snapshot rendered in Prometheus text exposition format
//	/traces       completed-trace ring as JSON; ?min=DURATION filters (e.g.
//	              ?min=10ms), ?limit=N (N >= 1) keeps only the most recent N
//	/stat/<view>  a system relation as JSON rows (e.g. /stat/activity or
//	              /stat/sys.stat_activity), scanned through the ordinary
//	              relation machinery
//	/healthz      WAL/buffer/lock liveness as JSON; 503 when a subsystem
//	              probe fails
//
// The server runs until Env.Close (or StopDebug); a second ServeDebug
// call replaces the first server.
func (env *Env) ServeDebug(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("core: debug server listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", env.handleMetrics)
	mux.HandleFunc("/traces", env.handleTraces)
	mux.HandleFunc("/stat/", env.handleStat)
	mux.HandleFunc("/healthz", env.handleHealthz)
	ds := &debugServer{
		env: env,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:  ln,
	}
	env.debugMu.Lock()
	prev := env.debug
	env.debug = ds
	env.debugMu.Unlock()
	if prev != nil {
		prev.srv.Close()
	}
	go ds.srv.Serve(ln)
	return ln.Addr().String(), nil
}

// StopDebug shuts the debug server down, closing its listener and any
// in-flight connections. It is a no-op when no server is running, and is
// called by Env.Close.
func (env *Env) StopDebug() error {
	env.debugMu.Lock()
	ds := env.debug
	env.debug = nil
	env.debugMu.Unlock()
	if ds == nil {
		return nil
	}
	return ds.srv.Close()
}

// DebugAddr returns the running debug server's bound address ("" when no
// server is up).
func (env *Env) DebugAddr() string {
	env.debugMu.Lock()
	defer env.debugMu.Unlock()
	if env.debug == nil {
		return ""
	}
	return env.debug.ln.Addr().String()
}

func (env *Env) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := env.MetricsSnapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := obs.WritePrometheus(w, snap.Snapshot); err != nil {
		// Headers are out; nothing more to do than drop the connection.
		return
	}
	// Tracer activity rides along as plain gauges/counters.
	st := env.Tracer.Stats()
	fmt.Fprintf(w, "# HELP dmx_trace_sample_rate fraction of transactions carrying a detailed span trace\n")
	fmt.Fprintf(w, "# TYPE dmx_trace_sample_rate gauge\n")
	fmt.Fprintf(w, "dmx_trace_sample_rate %g\n", env.Tracer.SampleRate())
	fmt.Fprintf(w, "# HELP dmx_trace_txns_started_total transactions given a trace\n")
	fmt.Fprintf(w, "# TYPE dmx_trace_txns_started_total counter\n")
	fmt.Fprintf(w, "dmx_trace_txns_started_total %d\n", st.Started)
	fmt.Fprintf(w, "# HELP dmx_trace_txns_sampled_total transactions with detailed span trees\n")
	fmt.Fprintf(w, "# TYPE dmx_trace_txns_sampled_total counter\n")
	fmt.Fprintf(w, "dmx_trace_txns_sampled_total %d\n", st.Sampled)
	fmt.Fprintf(w, "# HELP dmx_trace_slow_spans_total spans that exceeded the slow threshold\n")
	fmt.Fprintf(w, "# TYPE dmx_trace_slow_spans_total counter\n")
	fmt.Fprintf(w, "dmx_trace_slow_spans_total %d\n", st.SlowSpans)
	fmt.Fprintf(w, "# HELP dmx_trace_slow_txns_total transactions that exceeded the slow threshold\n")
	fmt.Fprintf(w, "# TYPE dmx_trace_slow_txns_total counter\n")
	fmt.Fprintf(w, "dmx_trace_slow_txns_total %d\n", st.SlowTxns)
}

func (env *Env) handleTraces(w http.ResponseWriter, r *http.Request) {
	var min time.Duration
	if v := r.URL.Query().Get("min"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad min duration %q: %v", v, err), http.StatusBadRequest)
			return
		}
		min = d
	}
	traces := env.Tracer.Traces(min)
	if v := r.URL.Query().Get("limit"); v != "" {
		// strconv.Atoi rejects trailing garbage Sscanf would swallow, and a
		// zero or negative limit is an explicit client error, not "keep
		// nothing" silently.
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			http.Error(w, fmt.Sprintf("bad limit %q (want an integer >= 1)", v), http.StatusBadRequest)
			return
		}
		if n < len(traces) {
			traces = traces[len(traces)-n:] // the ring is oldest-first
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]any{
		"stats":  env.Tracer.Stats(),
		"traces": traces,
	})
}

// handleStat serves one system relation as JSON rows. The view name after
// /stat/ may be short ("activity") or fully qualified
// ("sys.stat_activity"); rows come through the ordinary relation scan
// path, so this endpoint exercises exactly what SQL over the view would.
func (env *Env) handleStat(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/stat/")
	if name == "" {
		http.Error(w, "missing view name (e.g. /stat/activity)", http.StatusBadRequest)
		return
	}
	if !strings.Contains(name, ".") {
		name = "sys.stat_" + name
	}
	rd, ok := env.Cat.ByName(name)
	if !ok || !IsSystemRelID(rd.RelID) {
		http.Error(w, fmt.Sprintf("unknown system relation %q", name), http.StatusNotFound)
		return
	}
	rel, err := env.OpenRelation(rd)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	tx := env.Begin()
	defer tx.Commit()
	sc, err := rel.OpenScan(tx, ScanOptions{})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer sc.Close()
	rows := []map[string]any{}
	for {
		_, rec, ok, err := sc.Next()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if !ok {
			break
		}
		row := make(map[string]any, len(rd.Schema.Cols))
		for i, c := range rd.Schema.Cols {
			row[c.Name] = valueJSON(rec[i])
		}
		rows = append(rows, row)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]any{"view": name, "rows": rows})
}

// valueJSON converts a field value to its natural JSON representation.
func valueJSON(v types.Value) any {
	switch v.K {
	case types.KindInt:
		return v.I
	case types.KindFloat:
		return v.F
	case types.KindString:
		return v.S
	case types.KindBytes:
		return v.B
	case types.KindBool:
		return v.I != 0
	default:
		return nil
	}
}

// handleHealthz probes each common service with a cheap live operation:
// the log reports its durable high-water mark, the buffer pool its frame
// accounting, the lock manager its queue state. A probe error (e.g. a
// closed log device) turns the response into a 503.
func (env *Env) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type probe struct {
		OK     bool   `json:"ok"`
		Detail string `json:"detail,omitempty"`
	}
	snap := env.Obs.Snapshot()
	health := struct {
		OK     bool  `json:"ok"`
		WAL    probe `json:"wal"`
		Buffer probe `json:"buffer"`
		Lock   probe `json:"lock"`
	}{OK: true}

	// The WAL probe is a real round trip: Sync forces the log device, so a
	// dead or closed device turns the probe red instead of lying green.
	if err := env.Log.Sync(); err != nil {
		health.WAL = probe{OK: false, Detail: err.Error()}
		health.OK = false
	} else {
		health.WAL = probe{OK: true, Detail: fmt.Sprintf("durable_lsn=%d appends=%d syncs=%d",
			env.Log.Durable(), snap.WAL.Appends, snap.WAL.Syncs)}
	}
	health.Buffer = probe{OK: true, Detail: fmt.Sprintf("hits=%d misses=%d hit_ratio=%.3f",
		snap.Buffer.Hits, snap.Buffer.Misses, snap.Buffer.HitRatio)}
	health.Lock = probe{OK: true, Detail: fmt.Sprintf("requests=%d waiting=%d deadlocks=%d",
		snap.Lock.Requests, snap.Lock.Waiting, snap.Lock.Deadlocks)}

	w.Header().Set("Content-Type", "application/json")
	if !health.OK {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(health)
}
