package core_test

import (
	"math/rand"
	"testing"

	"dmx/internal/core"
	"dmx/internal/types"
)

func randDesc(r *rand.Rand) *core.RelDesc {
	rd := &core.RelDesc{
		RelID:   r.Uint32(),
		Name:    "rel" + string(rune('a'+r.Intn(26))),
		Schema:  testSchema(),
		SM:      core.SMID(1 + r.Intn(6)),
		Version: r.Uint64(),
	}
	if r.Intn(2) == 0 {
		rd.SMDesc = make([]byte, r.Intn(40))
		r.Read(rd.SMDesc)
	}
	for i := 1; i < core.MaxAttachmentTypes; i++ {
		if r.Intn(4) == 0 {
			d := make([]byte, r.Intn(60))
			r.Read(d)
			rd.AttDesc[i] = d
		}
	}
	return rd
}

func descEqual(a, b *core.RelDesc) bool {
	if a.RelID != b.RelID || a.Name != b.Name || a.SM != b.SM || a.Version != b.Version {
		return false
	}
	if string(a.SMDesc) != string(b.SMDesc) {
		return false
	}
	for i := range a.AttDesc {
		if (a.AttDesc[i] == nil) != (b.AttDesc[i] == nil) {
			return false
		}
		if string(a.AttDesc[i]) != string(b.AttDesc[i]) {
			return false
		}
	}
	return a.Schema.NumCols() == b.Schema.NumCols()
}

func TestRelDescRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 500; i++ {
		rd := randDesc(r)
		enc := rd.AppendEncode(nil)
		got, n, err := core.DecodeRelDesc(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if n != len(enc) {
			t.Fatalf("consumed %d of %d", n, len(enc))
		}
		if !descEqual(rd, got) {
			t.Fatalf("round trip mismatch:\n%+v\n%+v", rd, got)
		}
	}
}

func TestRelDescEmptySMDescNormalisation(t *testing.T) {
	// A nil SMDesc and an empty SMDesc are equivalent on the wire.
	rd := &core.RelDesc{RelID: 1, Name: "t", Schema: testSchema(), SM: core.SMHeap}
	got, _, err := core.DecodeRelDesc(rd.AppendEncode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.SMDesc) != 0 {
		t.Fatalf("SMDesc = %v", got.SMDesc)
	}
}

func TestRelDescOversizedAttachmentField(t *testing.T) {
	rd := &core.RelDesc{RelID: 1, Name: "t", Schema: testSchema(), SM: core.SMHeap}
	rd.AttDesc[3] = make([]byte, 0x12345) // forces the 4-byte length spill
	got, _, err := core.DecodeRelDesc(rd.AppendEncode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.AttDesc[3]) != 0x12345 {
		t.Fatalf("oversized field length = %d", len(got.AttDesc[3]))
	}
}

func TestRelDescDecodeErrors(t *testing.T) {
	rd := &core.RelDesc{RelID: 1, Name: "emp", Schema: testSchema(), SM: core.SMHeap,
		SMDesc: []byte{1, 2, 3}}
	rd.AttDesc[1] = []byte{9}
	enc := rd.AppendEncode(nil)
	// Every truncation point must fail cleanly, never panic.
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := core.DecodeRelDesc(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestRelDescCloneIsDeep(t *testing.T) {
	rd := &core.RelDesc{RelID: 1, Name: "t", Schema: testSchema(), SM: core.SMHeap,
		SMDesc: []byte{1}}
	rd.AttDesc[2] = []byte{7}
	c := rd.Clone()
	c.SMDesc[0] = 9
	c.AttDesc[2][0] = 9
	if rd.SMDesc[0] != 1 || rd.AttDesc[2][0] != 7 {
		t.Fatal("Clone shares descriptor bytes")
	}
}

func TestAttachmentTypesAndHas(t *testing.T) {
	rd := &core.RelDesc{}
	rd.AttDesc[3] = []byte{1}
	rd.AttDesc[7] = []byte{1}
	got := rd.AttachmentTypes()
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("AttachmentTypes = %v", got)
	}
	if !rd.HasAttachment(3) || rd.HasAttachment(4) {
		t.Fatal("HasAttachment")
	}
}

func TestModPayloadRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 300; i++ {
		p := core.ModPayload{Op: core.ModOp(1 + r.Intn(3))}
		if r.Intn(4) > 0 {
			p.Key = make(types.Key, r.Intn(12))
			r.Read(p.Key)
		}
		if r.Intn(2) == 0 {
			p.NewKey = make(types.Key, r.Intn(12))
			r.Read(p.NewKey)
		}
		if r.Intn(2) == 0 {
			p.Old = rec(int64(i), "old")
		}
		if r.Intn(2) == 0 {
			p.New = rec(int64(i), "new")
		}
		got, err := core.DecodeMod(core.EncodeMod(p))
		if err != nil {
			t.Fatal(err)
		}
		if got.Op != p.Op || string(got.Key) != string(p.Key) || string(got.NewKey) != string(p.NewKey) {
			t.Fatalf("round trip: %+v vs %+v", got, p)
		}
		if (got.Old == nil) != (p.Old == nil) || (got.New == nil) != (p.New == nil) {
			t.Fatalf("record presence: %+v vs %+v", got, p)
		}
		if p.Old != nil && !got.Old.Equal(p.Old) {
			t.Fatal("old record mismatch")
		}
	}
	if _, err := core.DecodeMod(nil); err == nil {
		t.Error("empty payload accepted")
	}
	if _, err := core.DecodeMod([]byte{1, 0}); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestEntryPayloadRoundTrip(t *testing.T) {
	p := core.EntryPayload{Op: core.ModDelete, Instance: 300, EntryKey: types.Key{1, 2}, RecKey: types.Key{3}}
	got, err := core.DecodeEntry(core.EncodeEntry(p))
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != p.Op || got.Instance != 300 || string(got.EntryKey) != string(p.EntryKey) || string(got.RecKey) != string(p.RecKey) {
		t.Fatalf("round trip: %+v", got)
	}
	// Nil keys survive (distinct from empty).
	p2 := core.EntryPayload{Op: core.ModInsert}
	got2, err := core.DecodeEntry(core.EncodeEntry(p2))
	if err != nil || got2.EntryKey != nil || got2.RecKey != nil {
		t.Fatalf("nil keys: %+v %v", got2, err)
	}
	if _, err := core.DecodeEntry([]byte{1}); err == nil {
		t.Error("short entry accepted")
	}
}

func TestModOpString(t *testing.T) {
	for _, op := range []core.ModOp{core.ModInsert, core.ModUpdate, core.ModDelete, core.ModOp(9)} {
		if op.String() == "" {
			t.Error("empty op name")
		}
	}
}
