package core_test

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"dmx/internal/core"
	_ "dmx/internal/sm/memsm"
	"dmx/internal/trace"
	"dmx/internal/types"
)

func debugEnv(t *testing.T) (*core.Env, string) {
	t.Helper()
	env := core.NewEnv(core.Config{TraceSample: 1})
	addr, err := env.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { env.Close() })
	return env, addr
}

func debugGet(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// runDebugWorkload runs one traced transaction so every endpoint has
// something to report.
func runDebugWorkload(t *testing.T, env *core.Env) {
	t.Helper()
	sch := types.MustSchema(types.Column{Name: "k", Kind: types.KindInt, NotNull: true})
	tx := env.Begin()
	if _, err := env.CreateRelation(tx, "t", sch, "memory", nil); err != nil {
		t.Fatal(err)
	}
	r, _ := env.OpenRelationByName("t")
	for i := 0; i < 10; i++ {
		if _, err := r.Insert(tx, types.Record{types.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestDebugServerMetricsEndpoint(t *testing.T) {
	env, addr := debugEnv(t)
	runDebugWorkload(t, env)
	code, body := debugGet(t, addr, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{
		"# TYPE dmx_sm_ops_total counter",
		"# TYPE dmx_wal_appends_total counter",
		"# TYPE dmx_trace_sample_rate gauge",
		"dmx_trace_sample_rate 1",
		"dmx_trace_txns_started_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Every non-comment line must be a well-formed sample.
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "dmx_") || len(strings.Fields(line)) < 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestDebugServerTracesEndpoint(t *testing.T) {
	env, addr := debugEnv(t)
	runDebugWorkload(t, env)
	code, body := debugGet(t, addr, "/traces")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var got struct {
		Stats  trace.Stats       `json:"stats"`
		Traces []trace.TraceData `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("traces response is not JSON: %v\n%s", err, body)
	}
	if len(got.Traces) == 0 || got.Stats.Started == 0 {
		t.Fatalf("no traces recorded: %s", body)
	}
	if got.Traces[0].Root.Name != "txn" {
		t.Errorf("root span = %q, want txn", got.Traces[0].Root.Name)
	}

	// min= filters; an impossible floor filters everything out.
	if _, body := debugGet(t, addr, "/traces?min=10h"); !strings.Contains(body, `"traces": []`) &&
		!strings.Contains(body, `"traces": null`) {
		t.Errorf("min=10h should filter all traces: %s", body)
	}
	if code, _ := debugGet(t, addr, "/traces?min=bogus"); code != http.StatusBadRequest {
		t.Errorf("bad min duration: status %d, want 400", code)
	}
	if code, _ := debugGet(t, addr, "/traces?limit=x"); code != http.StatusBadRequest {
		t.Errorf("bad limit: status %d, want 400", code)
	}
	// A limit that parses but keeps nothing is a client error, not a
	// silently empty response; trailing garbage must not half-parse either.
	for _, q := range []string{"limit=0", "limit=-1", "limit=5x"} {
		if code, _ := debugGet(t, addr, "/traces?"+q); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, code)
		}
	}
	if code, _ := debugGet(t, addr, "/traces?limit=1"); code != http.StatusOK {
		t.Errorf("limit=1: status %d, want 200", code)
	}
}

func TestDebugServerStatUnknownView(t *testing.T) {
	_, addr := debugEnv(t)
	if code, _ := debugGet(t, addr, "/stat/nope"); code != http.StatusNotFound {
		t.Errorf("/stat/nope: status %d, want 404", code)
	}
	if code, _ := debugGet(t, addr, "/stat/"); code != http.StatusBadRequest {
		t.Errorf("/stat/: status %d, want 400", code)
	}
}

func TestDebugServerHealthz(t *testing.T) {
	env, addr := debugEnv(t)
	runDebugWorkload(t, env)
	code, body := debugGet(t, addr, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, body)
	}
	var health struct {
		OK  bool `json:"ok"`
		WAL struct {
			OK bool `json:"ok"`
		} `json:"wal"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatal(err)
	}
	if !health.OK || !health.WAL.OK {
		t.Fatalf("unhealthy: %s", body)
	}
}

func TestDebugServerReplacedAndStopped(t *testing.T) {
	env := core.NewEnv(core.Config{})
	defer env.Close()
	addr1, err := env.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr2, err := env.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if got := env.DebugAddr(); got != addr2 {
		t.Errorf("DebugAddr = %q, want %q", got, addr2)
	}
	// The first server's listener is closed; new connections must fail.
	if conn, err := net.DialTimeout("tcp", addr1, time.Second); err == nil {
		conn.Close()
		t.Errorf("first debug server still accepting after replacement")
	}
	if err := env.Close(); err != nil {
		t.Fatal(err)
	}
	if conn, err := net.DialTimeout("tcp", addr2, time.Second); err == nil {
		conn.Close()
		t.Errorf("debug server still accepting after Env.Close")
	}
	if got := env.DebugAddr(); got != "" {
		t.Errorf("DebugAddr after Close = %q, want empty", got)
	}
	// Close and StopDebug are idempotent.
	if err := env.StopDebug(); err != nil {
		t.Errorf("second StopDebug: %v", err)
	}
}
