package core

import (
	"errors"
	"fmt"

	"dmx/internal/lock"
	"dmx/internal/wal"
)

// ErrCheckpointBusy is returned when a checkpoint cannot run because
// another checkpoint is in progress, active writers hold relation locks,
// or read-only snapshot transactions are open (a truncating checkpoint
// would cut the WAL records their version reconstruction reads).
// Checkpoints are opportunistic; callers retry later.
var ErrCheckpointBusy = errors.New("core: checkpoint busy (writers active)")

// Checkpoint writes a recovery checkpoint to the common log and truncates
// the log head before it.
//
// Because restart recovery rebuilds all engine state purely from the log
// (disk pages are a rebuildable cache, and storage page tables and
// attachment state are memory-resident), a truncating checkpoint must
// embed a replayable snapshot: for every relation a catalog descriptor
// record, and for relations of snapshotting storage methods one insert
// record per stored record, all logged under the reserved CheckpointTxn.
//
// Writers are quiesced first: the checkpoint takes every relation's S
// lock non-blockingly (failing with ErrCheckpointBusy if any writer holds
// an incompatible lock) and holds them across the snapshot, so the
// snapshot is the only update activity between the checkpoint record and
// its END — recovery can therefore redo from the checkpoint record alone.
// Attachment state is not snapshotted: recovery rebuilds it from the
// recovered relation contents via the attachment Build operations.
// Attachment types that keep durable state must therefore provide Build
// (all shipped stateful types do); Build-less types are either stateless
// (triggers, validators) or forfeit pre-checkpoint state.
// Relations created by transactions that slip in after the lock sweep are
// not snapshotted, which is sound: all their records carry later LSNs and
// replay in full.
func (env *Env) Checkpoint() error {
	if env.Log == nil {
		return nil
	}
	if !env.checkpointing.CompareAndSwap(false, true) {
		return ErrCheckpointBusy
	}
	defer env.checkpointing.Store(false)
	defer env.Locks.ReleaseAll(wal.CheckpointTxn)

	// Quiesce writers: S-lock every catalogued relation, re-listing until
	// a sweep adds nothing (DDL racing the first sweep can introduce new
	// names). TryAcquire keeps the checkpoint deadlock-free.
	locked := make(map[uint32]bool)
	for round := 0; ; round++ {
		if round > 8 {
			return ErrCheckpointBusy
		}
		added := false
		for _, name := range env.Cat.List() {
			rd, ok := env.Cat.ByName(name)
			if !ok || locked[rd.RelID] {
				continue
			}
			// System relations are virtual process state: nothing to
			// quiesce, snapshot, or freeze (the later loops key on locked).
			if IsSystemRelID(rd.RelID) {
				continue
			}
			if !env.Locks.TryAcquire(wal.CheckpointTxn, lock.RelResource(rd.RelID), lock.ModeS) {
				return ErrCheckpointBusy
			}
			locked[rd.RelID] = true
			added = true
		}
		if !added {
			break
		}
	}

	// Open snapshots pin the log head: their version reconstruction reads
	// WAL records by LSN, which truncation would drop. A snapshot that
	// begins after this check is safe — writers are already quiesced, so
	// every version chain head is stamped below the newcomer's high-water
	// and it reads page state, never the log.
	if env.Txns.ActiveReadOnly() > 0 {
		return ErrCheckpointBusy
	}

	snap := func(emit func(owner wal.Owner, payload []byte) error) error {
		for _, name := range env.Cat.List() {
			rd, ok := env.Cat.ByName(name)
			if !ok || !locked[rd.RelID] {
				continue // appeared after the lock sweep: replays in full
			}
			// The descriptor record replays through the same path as a
			// logged CREATE, installing schema, SM descriptor and
			// attachment descriptors in one step.
			if err := emit(wal.Owner{Class: wal.OwnerSystem, RelID: rd.RelID}, append([]byte{catCreate}, rd.AppendEncode(nil)...)); err != nil {
				return err
			}
			ops := env.Reg.StorageOps(rd.SM)
			if ops == nil || !ops.SnapshotContents {
				continue
			}
			inst, err := env.StorageInstance(rd)
			if err != nil {
				return fmt.Errorf("checkpoint %s: %w", rd.Name, err)
			}
			owner := wal.Owner{Class: wal.OwnerStorage, ExtID: uint8(rd.SM), RelID: rd.RelID}
			scan, err := inst.OpenScan(nil, ScanOptions{})
			if err != nil {
				return fmt.Errorf("checkpoint %s: %w", rd.Name, err)
			}
			for {
				key, rec, ok, err := scan.Next()
				if err != nil {
					scan.Close()
					return fmt.Errorf("checkpoint %s: %w", rd.Name, err)
				}
				if !ok {
					break
				}
				if err := emit(owner, EncodeMod(ModPayload{Op: ModInsert, Key: key, New: rec})); err != nil {
					scan.Close()
					return err
				}
			}
			scan.Close()
		}
		return nil
	}
	if err := env.Log.Checkpoint(env.Txns.ActiveIDs(), env.Txns.StampHW(), snap); err != nil {
		return err
	}

	// The checkpoint truncated the log head, so version-chain entries
	// referencing pre-checkpoint records can no longer reconstruct from
	// the WAL. Freeze them: the chains are cleared (still under the
	// relation S locks, with no snapshot open), and page state — which
	// the checkpoint just captured — becomes the version every future
	// snapshot starts from. Post-checkpoint writes rebuild chains whose
	// LSNs all sit above the new log head.
	for _, name := range env.Cat.List() {
		rd, ok := env.Cat.ByName(name)
		if !ok || !locked[rd.RelID] {
			continue
		}
		if inst, err := env.StorageInstance(rd); err == nil {
			if f, ok := inst.(VersionFreezer); ok {
				f.FreezeVersions()
			}
		}
	}
	return nil
}
