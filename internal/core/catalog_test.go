package core_test

import (
	"testing"

	"dmx/internal/core"
	_ "dmx/internal/sm/memsm"
	"dmx/internal/wal"
)

func TestCatalogLookups(t *testing.T) {
	env := core.NewEnv(core.Config{})
	rd := mkRel(t, env, "Emp", "memory")
	if got, ok := env.Cat.ByName("EMP"); !ok || got.RelID != rd.RelID {
		t.Fatal("case-insensitive ByName")
	}
	if got, ok := env.Cat.Get(rd.RelID); !ok || got.Name != "Emp" {
		t.Fatal("Get")
	}
	if _, ok := env.Cat.Get(999); ok {
		t.Fatal("missing Get")
	}
	if names := env.Cat.List(); len(names) != 1 || names[0] != "Emp" {
		t.Fatalf("List = %v", names)
	}
	// Duplicate names rejected.
	tx := env.Begin()
	if _, err := env.CreateRelation(tx, "emp", testSchema(), "memory", nil); err == nil {
		t.Fatal("duplicate relation name accepted")
	}
	tx.Commit()
}

func TestCatalogIDAllocationSurvivesRecovery(t *testing.T) {
	log := wal.New()
	env := core.NewEnv(core.Config{Log: log})
	rd1 := mkRel(t, env, "a", "memory")

	env2 := core.NewEnv(core.Config{Log: log})
	if err := env2.Recover(); err != nil {
		t.Fatal(err)
	}
	tx := env2.Begin()
	rd2, err := env2.CreateRelation(tx, "b", testSchema(), "memory", nil)
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	if rd2.RelID == rd1.RelID {
		t.Fatal("relation id reused after recovery")
	}
}

func TestCatalogBadSystemPayloads(t *testing.T) {
	env := core.NewEnv(core.Config{})
	for _, p := range [][]byte{
		nil,             // empty
		{99},            // unknown op
		{1, 1, 2},       // create with truncated descriptor
		{3, 0, 0},       // update with truncated header
		{3, 0, 0, 0, 9}, // update whose old-descriptor length overruns
	} {
		if err := env.Cat.ApplySystemLogged(p, false); err == nil {
			t.Errorf("payload %v accepted", p)
		}
	}
}

func TestEnvApplyLoggedErrors(t *testing.T) {
	env := core.NewEnv(core.Config{})
	// Unknown relation in a storage-owned record.
	err := env.Undo(1, wal.Owner{Class: wal.OwnerStorage, ExtID: 4, RelID: 77}, nil)
	if err == nil {
		t.Fatal("unknown relation accepted")
	}
	// Unknown owner class.
	err = env.Redo(1, wal.Owner{Class: 9}, nil, false)
	if err == nil {
		t.Fatal("unknown owner class accepted")
	}
	// Unregistered storage method on an otherwise valid relation.
	rd := mkRel(t, env, "t", "memory")
	bad := rd.Clone()
	bad.SM = 31 // registered? no
	if _, err := env.StorageInstance(bad); err == nil {
		t.Fatal("unregistered storage method accepted")
	}
	if _, err := env.AttachmentInstance(rd, 31); err == nil {
		t.Fatal("unregistered attachment accepted")
	}
}

func TestDropRelationUnknownAndRecreate(t *testing.T) {
	env := core.NewEnv(core.Config{})
	tx := env.Begin()
	if err := env.DropRelation(tx, "ghost"); err == nil {
		t.Fatal("drop of missing relation accepted")
	}
	tx.Commit()

	// A name can be reused after a committed drop.
	mkRel(t, env, "t", "memory")
	tx2 := env.Begin()
	if err := env.DropRelation(tx2, "t"); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
	rd := mkRel(t, env, "t", "memory")
	if rd == nil {
		t.Fatal("recreate failed")
	}
}
