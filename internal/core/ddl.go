package core

import (
	"bytes"
	"fmt"
	"strings"

	"dmx/internal/lock"
	"dmx/internal/txn"
	"dmx/internal/types"
)

// CreateRelation executes the extended data definition operation: the
// storage method is selected by name, its ValidateAttrs generic operation
// checks the extension-specific attribute/value list, its Create operation
// initialises storage and produces the storage-method descriptor, and the
// composite relation descriptor is installed in the catalog under
// transaction control.
func (env *Env) CreateRelation(tx *txn.Txn, name string, schema *types.Schema, smName string, attrs AttrList) (*RelDesc, error) {
	if strings.HasPrefix(strings.ToLower(name), "sys.") {
		return nil, fmt.Errorf("core: the sys. namespace is reserved for system relations")
	}
	ops := env.Reg.StorageMethodByName(smName)
	if ops == nil {
		return nil, fmt.Errorf("core: unknown storage method %q (registered: %v)",
			smName, env.Reg.StorageMethodNames())
	}
	if ops.ValidateAttrs != nil {
		if err := ops.ValidateAttrs(schema, attrs); err != nil {
			return nil, err
		}
	}
	rd := &RelDesc{
		RelID:  env.Cat.AllocateRelID(),
		Name:   name,
		Schema: schema,
		SM:     ops.ID,
	}
	if err := tx.Lock(lock.RelResource(rd.RelID), lock.ModeX); err != nil {
		return nil, err
	}
	smDesc, err := ops.Create(env, tx, rd, attrs)
	if err != nil {
		return nil, err
	}
	rd.SMDesc = smDesc
	if err := env.Cat.CreateRelation(tx, rd); err != nil {
		return nil, err
	}
	// The creator administers the relation (uniform authorization).
	if user := tx.User(); user != "" {
		env.Authz.Grant(user, rd.RelID, PrivAdmin)
	}
	return rd, nil
}

// CreateAttachment executes the extended data definition operation adding
// an attachment instance to a relation: the attachment type is selected by
// name, validates the attribute/value list, merges the new instance into
// its descriptor field, and (optionally) builds the instance from the
// relation's existing records. The descriptor update is transactional.
func (env *Env) CreateAttachment(tx *txn.Txn, relName, attName string, attrs AttrList) (*RelDesc, error) {
	ops := env.Reg.AttachmentByName(attName)
	if ops == nil {
		return nil, fmt.Errorf("core: unknown attachment type %q (registered: %v)",
			attName, env.Reg.AttachmentNames())
	}
	rd, ok := env.Cat.ByName(relName)
	if !ok {
		return nil, fmt.Errorf("%w: relation %q", ErrNotFound, relName)
	}
	if IsSystemRelID(rd.RelID) {
		return nil, fmt.Errorf("core: relation %q is a system relation; attachments are not supported", relName)
	}
	if err := env.Authz.Check(tx, rd, PrivAdmin); err != nil {
		return nil, err
	}
	if err := tx.Lock(lock.RelResource(rd.RelID), lock.ModeX); err != nil {
		return nil, err
	}
	// Re-read under the lock: a concurrent DDL may have moved the version.
	rd, _ = env.Cat.ByName(relName)
	if ops.ValidateAttrs != nil {
		if err := ops.ValidateAttrs(env, rd, attrs); err != nil {
			return nil, err
		}
	}
	newRD := rd.Clone()
	field, err := ops.Create(env, tx, newRD, rd.AttDesc[ops.ID], attrs)
	if err != nil {
		return nil, err
	}
	newRD.AttDesc[ops.ID] = field
	newRD.Version++
	if err := env.Cat.UpdateDesc(tx, rd, newRD); err != nil {
		return nil, err
	}
	// A no-op Create (e.g. re-creating a singleton instance) leaves the
	// descriptor field unchanged; building again would double-apply.
	if ops.Build != nil && !bytes.Equal(field, rd.AttDesc[ops.ID]) {
		if err := ops.Build(env, tx, newRD, true); err != nil {
			return nil, err
		}
	}
	return newRD, nil
}

// BuildScan drives an attachment Build operation over rd's current
// contents, calling fn once per stored record. No-op when the relation is
// empty.
func BuildScan(env *Env, tx *txn.Txn, rd *RelDesc, fn func(key types.Key, rec types.Record) error) error {
	sm, err := env.StorageInstance(rd)
	if err != nil {
		return err
	}
	if sm.RecordCount() == 0 {
		return nil
	}
	scan, err := sm.OpenScan(tx, ScanOptions{})
	if err != nil {
		return err
	}
	defer scan.Close()
	for {
		key, rec, ok, err := scan.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := fn(key, rec); err != nil {
			return err
		}
	}
}

// DropAttachment removes attachment instance(s) selected by attrs from the
// relation. The descriptor update is undoable; any in-memory state of the
// removed instances is released lazily (the architecture defers the actual
// release of dropped state until commit so the drop can be undone without
// logging the state).
func (env *Env) DropAttachment(tx *txn.Txn, relName, attName string, attrs AttrList) (*RelDesc, error) {
	ops := env.Reg.AttachmentByName(attName)
	if ops == nil {
		return nil, fmt.Errorf("core: unknown attachment type %q", attName)
	}
	rd, ok := env.Cat.ByName(relName)
	if !ok {
		return nil, fmt.Errorf("%w: relation %q", ErrNotFound, relName)
	}
	if err := env.Authz.Check(tx, rd, PrivAdmin); err != nil {
		return nil, err
	}
	if err := tx.Lock(lock.RelResource(rd.RelID), lock.ModeX); err != nil {
		return nil, err
	}
	rd, _ = env.Cat.ByName(relName)
	if !rd.HasAttachment(ops.ID) {
		return nil, fmt.Errorf("%w: relation %q has no %s attachment", ErrNotFound, relName, attName)
	}
	newRD := rd.Clone()
	if ops.Drop != nil {
		field, err := ops.Drop(env, tx, newRD, rd.AttDesc[ops.ID], attrs)
		if err != nil {
			return nil, err
		}
		newRD.AttDesc[ops.ID] = field
	} else {
		newRD.AttDesc[ops.ID] = nil
	}
	newRD.Version++
	if err := env.Cat.UpdateDesc(tx, rd, newRD); err != nil {
		return nil, err
	}
	return newRD, nil
}

// DropRelation removes the relation; the descriptor removal is undoable
// and the storage release is deferred to commit.
func (env *Env) DropRelation(tx *txn.Txn, relName string) error {
	rd, ok := env.Cat.ByName(relName)
	if !ok {
		return fmt.Errorf("%w: relation %q", ErrNotFound, relName)
	}
	if IsSystemRelID(rd.RelID) {
		return fmt.Errorf("core: relation %q is a system relation and cannot be dropped", relName)
	}
	if err := env.Authz.Check(tx, rd, PrivAdmin); err != nil {
		return err
	}
	if err := tx.Lock(lock.RelResource(rd.RelID), lock.ModeX); err != nil {
		return err
	}
	return env.Cat.DropRelation(tx, relName)
}
