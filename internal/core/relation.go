package core

import (
	"fmt"
	"time"

	"dmx/internal/expr"
	"dmx/internal/lock"
	"dmx/internal/obs"
	"dmx/internal/trace"
	"dmx/internal/txn"
	"dmx/internal/types"
	"dmx/internal/wal"
)

// Relation is the runtime handle for operating on a relation through its
// descriptor. Modifications execute in the architecture's two steps: the
// storage method operation first (selected through the storage-method
// procedure vector by the descriptor's storage method identifier), then
// the attached procedures of every attachment type with instances on the
// relation, in attachment-identifier order. Any attachment can veto the
// modification, in which case the common recovery log drives the storage
// method and attachments to undo the partial effects.
type Relation struct {
	env  *Env
	rd   *RelDesc
	sm   StorageInstance
	stat *RelStat // per-relation rollup (sys.stat_relations); cached to skip the table lookup per op
	mvcc bool     // storage method stamps versions: snapshot reads skip the lock manager
}

// OpenRelation returns a runtime handle for rd. The descriptor may come
// from the catalog or from a bound query plan.
func (env *Env) OpenRelation(rd *RelDesc) (*Relation, error) {
	sm, err := env.StorageInstance(rd)
	if err != nil {
		return nil, err
	}
	r := &Relation{env: env, rd: rd, sm: sm, stat: env.relStats.get(rd.RelID)}
	if ops := env.Reg.StorageOps(rd.SM); ops != nil {
		r.mvcc = ops.MVCC
	}
	return r, nil
}

// chargeWritten books n modified rows against the transaction's ledger
// and the relation rollup (both gated on the accounting switch, which
// tx.Acct already checks).
func (r *Relation) chargeWritten(tx *txn.Txn, n int64) {
	if st := tx.Acct(); st != nil {
		st.RowsWritten.Add(n)
		r.stat.RowsWritten.Add(n)
	}
}

// chargeRead books n returned rows.
func (r *Relation) chargeRead(tx *txn.Txn, n int64) {
	if st := tx.Acct(); st != nil {
		st.RowsRead.Add(n)
		r.stat.RowsRead.Add(n)
	}
}

// lockFree reports whether this access can bypass the lock manager: a
// read-only snapshot transaction over version-stamped storage reads a
// consistent snapshot without any locks. Relations of non-MVCC storage
// methods keep ordinary share-locked reads even for read-only
// transactions.
func (r *Relation) lockFree(tx *txn.Txn) bool { return tx.ReadOnly() && r.mvcc }

// OpenRelationByName resolves name in the catalog and opens it.
func (env *Env) OpenRelationByName(name string) (*Relation, error) {
	rd, ok := env.Cat.ByName(name)
	if !ok {
		return nil, fmt.Errorf("%w: relation %q", ErrNotFound, name)
	}
	return env.OpenRelation(rd)
}

// Desc returns the relation descriptor this handle operates through.
func (r *Relation) Desc() *RelDesc { return r.rd }

// Storage returns the underlying storage instance.
func (r *Relation) Storage() StorageInstance { return r.sm }

// Env returns the owning environment.
func (r *Relation) Env() *Env { return r.env }

// Insert stores rec, then presents the new record and its newly assigned
// record key to each attachment type with instances on the relation.
func (r *Relation) Insert(tx *txn.Txn, rec types.Record) (key types.Key, err error) {
	if tx.Trace().Detailed() {
		sp := tx.Trace().StartSpan("rel.insert", r.rd.Name, "insert")
		defer func() { sp.End(err) }()
	}
	if tx.ReadOnly() {
		return nil, txn.ErrReadOnly
	}
	if err := r.env.Authz.Check(tx, r.rd, PrivWrite); err != nil {
		return nil, err
	}
	if err := r.rd.Schema.Validate(rec); err != nil {
		return nil, err
	}
	if err := tx.Lock(lock.RelResource(r.rd.RelID), lock.ModeIX); err != nil {
		return nil, err
	}
	mark := r.env.Log.LastLSN(tx.ID())
	r.env.Metrics.SMCalls.Add(1)
	smSp := r.smSpan(tx, obs.OpInsert)
	start := time.Now()
	key, err = r.sm.Insert(tx, rec)
	d := time.Since(start)
	r.env.Obs.SM.Observe(int(r.rd.SM), obs.OpInsert, d, err != nil)
	r.stat.observe(obs.OpInsert, d, err != nil)
	smSp.End(err)
	if err != nil {
		return nil, r.vetoed(tx, mark, r.smName(), err)
	}
	if err := tx.Lock(lock.KeyResource(r.rd.RelID, key), lock.ModeX); err != nil {
		return nil, err
	}
	if err := r.notify(tx, obs.OpInsert, func(inst AttachmentInstance) error {
		return inst.OnInsert(tx, key, rec)
	}, mark); err != nil {
		return nil, err
	}
	r.chargeWritten(tx, 1)
	return key, nil
}

// Update replaces the record at key with newRec. The old record value is
// fetched and presented, with both record keys, to the attached
// procedures. The returned key is the record's (possibly new) record key.
func (r *Relation) Update(tx *txn.Txn, key types.Key, newRec types.Record) (newKey types.Key, err error) {
	if tx.Trace().Detailed() {
		sp := tx.Trace().StartSpan("rel.update", r.rd.Name, "update")
		defer func() { sp.End(err) }()
	}
	if tx.ReadOnly() {
		return nil, txn.ErrReadOnly
	}
	if err := r.env.Authz.Check(tx, r.rd, PrivWrite); err != nil {
		return nil, err
	}
	if err := r.rd.Schema.Validate(newRec); err != nil {
		return nil, err
	}
	if err := tx.Lock(lock.RelResource(r.rd.RelID), lock.ModeIX); err != nil {
		return nil, err
	}
	if err := tx.Lock(lock.KeyResource(r.rd.RelID, key), lock.ModeX); err != nil {
		return nil, err
	}
	oldRec, err := r.sm.FetchByKey(tx, key, nil, nil)
	if err != nil {
		return nil, err
	}
	mark := r.env.Log.LastLSN(tx.ID())
	r.env.Metrics.SMCalls.Add(1)
	smSp := r.smSpan(tx, obs.OpUpdate)
	start := time.Now()
	newKey, err = r.sm.Update(tx, key, oldRec, newRec)
	d := time.Since(start)
	r.env.Obs.SM.Observe(int(r.rd.SM), obs.OpUpdate, d, err != nil)
	r.stat.observe(obs.OpUpdate, d, err != nil)
	smSp.End(err)
	if err != nil {
		return nil, r.vetoed(tx, mark, r.smName(), err)
	}
	if !newKey.Equal(key) {
		if err := tx.Lock(lock.KeyResource(r.rd.RelID, newKey), lock.ModeX); err != nil {
			return nil, err
		}
	}
	if err := r.notify(tx, obs.OpUpdate, func(inst AttachmentInstance) error {
		return inst.OnUpdate(tx, key, newKey, oldRec, newRec)
	}, mark); err != nil {
		return nil, err
	}
	r.chargeWritten(tx, 1)
	return newKey, nil
}

// Delete removes the record at key, presenting the old record value and
// key to the attached procedures.
func (r *Relation) Delete(tx *txn.Txn, key types.Key) (err error) {
	if tx.Trace().Detailed() {
		sp := tx.Trace().StartSpan("rel.delete", r.rd.Name, "delete")
		defer func() { sp.End(err) }()
	}
	if tx.ReadOnly() {
		return txn.ErrReadOnly
	}
	if err := r.env.Authz.Check(tx, r.rd, PrivWrite); err != nil {
		return err
	}
	if err := tx.Lock(lock.RelResource(r.rd.RelID), lock.ModeIX); err != nil {
		return err
	}
	if err := tx.Lock(lock.KeyResource(r.rd.RelID, key), lock.ModeX); err != nil {
		return err
	}
	oldRec, err := r.sm.FetchByKey(tx, key, nil, nil)
	if err != nil {
		return err
	}
	mark := r.env.Log.LastLSN(tx.ID())
	r.env.Metrics.SMCalls.Add(1)
	smSp := r.smSpan(tx, obs.OpDelete)
	start := time.Now()
	err = r.sm.Delete(tx, key, oldRec)
	d := time.Since(start)
	r.env.Obs.SM.Observe(int(r.rd.SM), obs.OpDelete, d, err != nil)
	r.stat.observe(obs.OpDelete, d, err != nil)
	smSp.End(err)
	if err != nil {
		return r.vetoed(tx, mark, r.smName(), err)
	}
	if err := r.notify(tx, obs.OpDelete, func(inst AttachmentInstance) error {
		return inst.OnDelete(tx, key, oldRec)
	}, mark); err != nil {
		return err
	}
	r.chargeWritten(tx, 1)
	return nil
}

// notify runs the attached procedures for every attachment type with
// instances on the relation, in identifier order, vetoing on error. In a
// traced transaction each attached-procedure call is its own span; the
// attachment that vetoes carries the veto tag and reason.
func (r *Relation) notify(tx *txn.Txn, op obs.Op, call func(AttachmentInstance) error, mark MarkLSN) error {
	for i := 1; i < MaxAttachmentTypes; i++ {
		if r.rd.AttDesc[i] == nil {
			continue
		}
		id := AttID(i)
		if skip := r.env.NotifySkip; skip != nil && skip(r.rd.Name, id) {
			continue
		}
		inst, err := r.env.AttachmentInstance(r.rd, id)
		if err != nil {
			return err
		}
		r.env.Metrics.AttCalls.Add(1)
		attSp := r.attSpan(tx, id, op)
		start := time.Now()
		err = call(inst)
		r.env.Obs.Att.Observe(i, op, time.Since(start), err != nil)
		if err != nil {
			r.env.Obs.AttVetoes[i].Inc()
			attSp.MarkVeto()
			attSp.End(err)
			return r.vetoed(tx, mark, r.env.Reg.AttachmentOps(id).Name, err)
		}
		attSp.End(nil)
	}
	return nil
}

// smSpan opens a storage-method dispatch span for a detailed-traced
// transaction (nil, at the cost of one nil check, otherwise).
func (r *Relation) smSpan(tx *txn.Txn, op obs.Op) *trace.Span {
	tr := tx.Trace()
	if !tr.Detailed() {
		return nil
	}
	return tr.StartSpan("sm."+op.String(), r.smName(), op.String())
}

// attSpan opens an attached-procedure dispatch span for a detailed-traced
// transaction.
func (r *Relation) attSpan(tx *txn.Txn, id AttID, op obs.Op) *trace.Span {
	tr := tx.Trace()
	if !tr.Detailed() {
		return nil
	}
	name := fmt.Sprintf("attachment-%d", id)
	if ops := r.env.Reg.AttachmentOps(id); ops != nil {
		name = ops.Name
	}
	return tr.StartSpan("att."+op.String(), name, op.String())
}

// MarkLSN marks a statement-level rollback point: the transaction's last
// LSN before a relation modification began.
type MarkLSN = wal.LSN

// vetoed undoes the partial effects of the current relation modification
// through the common recovery log and wraps the veto reason.
func (r *Relation) vetoed(tx *txn.Txn, mark MarkLSN, extension string, reason error) error {
	r.env.Metrics.Vetoes.Add(1)
	if ve, ok := reason.(*VetoError); ok {
		// A cascaded modification already vetoed and rolled back deeper
		// effects; unwind the rest back to this statement's mark.
		if err := r.env.Log.Rollback(tx.ID(), mark, r.env); err != nil {
			return fmt.Errorf("core: rollback of vetoed modification failed: %v (veto: %w)", err, ve)
		}
		return ve
	}
	if err := r.env.Log.Rollback(tx.ID(), mark, r.env); err != nil {
		return fmt.Errorf("core: rollback of vetoed modification failed: %v (veto: %w)", err, reason)
	}
	return &VetoError{Extension: extension, Reason: reason}
}

func (r *Relation) smName() string {
	if ops := r.env.Reg.StorageOps(r.rd.SM); ops != nil {
		return ops.Name
	}
	return fmt.Sprintf("storage-method-%d", r.rd.SM)
}

// Fetch is the direct-by-key access to the stored record: selected fields
// are returned after the filter is applied against the buffer-resident
// record by the storage method.
// Read-only snapshot transactions on MVCC storage skip both locks: the
// storage method answers with the version visible in the transaction's
// snapshot, so no writer coordination is needed.
func (r *Relation) Fetch(tx *txn.Txn, key types.Key, fields []int, filter *expr.Expr) (types.Record, error) {
	if err := r.env.Authz.Check(tx, r.rd, PrivRead); err != nil {
		return nil, err
	}
	if !r.lockFree(tx) {
		if err := tx.Lock(lock.RelResource(r.rd.RelID), lock.ModeIS); err != nil {
			return nil, err
		}
		if err := tx.Lock(lock.KeyResource(r.rd.RelID, key), lock.ModeS); err != nil {
			return nil, err
		}
	}
	r.env.Metrics.Fetches.Add(1)
	smSp := r.smSpan(tx, obs.OpFetch)
	start := time.Now()
	rec, err := r.sm.FetchByKey(tx, key, fields, filter)
	d := time.Since(start)
	r.env.Obs.SM.Observe(int(r.rd.SM), obs.OpFetch, d, err != nil)
	r.stat.observe(obs.OpFetch, d, err != nil)
	smSp.End(err)
	if err == nil {
		r.chargeRead(tx, 1)
	}
	return rec, err
}

// OpenScan starts a key-sequential access through the storage method
// (access path zero). The scan participates in the common services: it is
// closed at transaction termination, its position is saved when a rollback
// point is established and restored after partial rollback.
func (r *Relation) OpenScan(tx *txn.Txn, opts ScanOptions) (Scan, error) {
	if err := r.env.Authz.Check(tx, r.rd, PrivRead); err != nil {
		return nil, err
	}
	if !r.lockFree(tx) {
		if err := tx.Lock(lock.RelResource(r.rd.RelID), lock.ModeS); err != nil {
			return nil, err
		}
	}
	r.env.Metrics.Scans.Add(1)
	smSp := r.smSpan(tx, obs.OpScan)
	start := time.Now()
	s, err := r.sm.OpenScan(tx, opts)
	d := time.Since(start)
	r.env.Obs.SM.Observe(int(r.rd.SM), obs.OpScan, d, err != nil)
	r.stat.observe(obs.OpScan, d, err != nil)
	smSp.End(err)
	if err != nil {
		return nil, err
	}
	return manageScan(tx, r.counted(tx, s))
}

// OpenAccessScan starts a key-sequential access through access path
// (attachment type id, instance). It returns record keys (and stored
// access-path key fields) in access-path key order; records are then
// fetched directly via the storage method.
// Access paths are unversioned, so for a read-only snapshot transaction
// the record keys they yield are filtered through the base storage's
// snapshot visibility: entries from post-snapshot or uncommitted inserts
// are dropped. (Entries a concurrent writer already removed cannot be
// resurrected from the index; a snapshot read that must see every
// qualifying historical record uses OpenScan.)
func (r *Relation) OpenAccessScan(tx *txn.Txn, id AttID, instance int, opts ScanOptions) (Scan, error) {
	if err := r.env.Authz.Check(tx, r.rd, PrivRead); err != nil {
		return nil, err
	}
	if !r.lockFree(tx) {
		if err := tx.Lock(lock.RelResource(r.rd.RelID), lock.ModeS); err != nil {
			return nil, err
		}
	}
	inst, err := r.env.AttachmentInstance(r.rd, id)
	if err != nil {
		return nil, err
	}
	ap, ok := inst.(AccessPath)
	if !ok {
		return nil, fmt.Errorf("core: attachment type %d is not an access path", id)
	}
	r.env.Metrics.Scans.Add(1)
	attSp := r.attSpan(tx, id, obs.OpScan)
	start := time.Now()
	s, err := ap.OpenScan(tx, instance, opts)
	r.env.Obs.Att.Observe(int(id), obs.OpScan, time.Since(start), err != nil)
	attSp.End(err)
	if err != nil {
		return nil, err
	}
	if r.lockFree(tx) {
		if vs, ok := r.sm.(VersionedStorage); ok {
			s = &snapFilterScan{Scan: s, vs: vs, tx: tx}
		}
	}
	return manageScan(tx, r.counted(tx, s))
}

// LookupAccess is the direct-by-key access through an access path: it
// returns the record keys mapped from the given access-path key.
// For read-only snapshot transactions the lookup is lock-free and the
// returned keys are filtered for snapshot visibility (see OpenAccessScan
// for the limits of unversioned access paths).
func (r *Relation) LookupAccess(tx *txn.Txn, id AttID, instance int, key types.Key) ([]types.Key, error) {
	if err := r.env.Authz.Check(tx, r.rd, PrivRead); err != nil {
		return nil, err
	}
	if !r.lockFree(tx) {
		if err := tx.Lock(lock.RelResource(r.rd.RelID), lock.ModeIS); err != nil {
			return nil, err
		}
	}
	inst, err := r.env.AttachmentInstance(r.rd, id)
	if err != nil {
		return nil, err
	}
	ap, ok := inst.(AccessPath)
	if !ok {
		return nil, fmt.Errorf("core: attachment type %d is not an access path", id)
	}
	r.env.Metrics.Fetches.Add(1)
	attSp := r.attSpan(tx, id, obs.OpLookup)
	start := time.Now()
	keys, err := ap.LookupByKey(tx, instance, key)
	r.env.Obs.Att.Observe(int(id), obs.OpLookup, time.Since(start), err != nil)
	attSp.End(err)
	if err == nil && r.lockFree(tx) {
		if vs, ok := r.sm.(VersionedStorage); ok {
			kept := keys[:0]
			for _, k := range keys {
				vis, verr := vs.SnapshotVisible(tx, k)
				if verr != nil {
					return nil, verr
				}
				if vis {
					kept = append(kept, k)
				}
			}
			keys = kept
		}
	}
	return keys, err
}

// countedScan charges each row a scan produces to the transaction's
// resource accounting and the relation's rollup.
type countedScan struct {
	Scan
	tx *txn.Txn
	rs *RelStat
}

func (s *countedScan) Next() (types.Key, types.Record, bool, error) {
	key, rec, ok, err := s.Scan.Next()
	if ok && err == nil {
		if st := s.tx.Acct(); st != nil {
			st.RowsRead.Add(1)
			s.rs.RowsRead.Add(1)
		}
	}
	return key, rec, ok, err
}

// counted wraps s with per-row accounting when a transaction is present
// (internal scans pass tx == nil and stay unwrapped).
func (r *Relation) counted(tx *txn.Txn, s Scan) Scan {
	if tx == nil {
		return s
	}
	return &countedScan{Scan: s, tx: tx, rs: r.stat}
}

// snapFilterScan drops access-path entries that are not visible in the
// read-only transaction's snapshot.
type snapFilterScan struct {
	Scan
	vs VersionedStorage
	tx *txn.Txn
}

func (s *snapFilterScan) Next() (types.Key, types.Record, bool, error) {
	for {
		key, rec, ok, err := s.Scan.Next()
		if err != nil || !ok {
			return key, rec, ok, err
		}
		vis, err := s.vs.SnapshotVisible(s.tx, key)
		if err != nil {
			return nil, nil, false, err
		}
		if vis {
			return key, rec, true, nil
		}
	}
}

// managedScan wires a scan into the transaction event services.
type managedScan struct {
	Scan
	closed bool
	saved  map[string]ScanPos
}

func manageScan(tx *txn.Txn, s Scan) (Scan, error) {
	ms := &managedScan{Scan: s, saved: make(map[string]ScanPos)}
	// All key-sequential accesses terminate at transaction termination
	// (locks are released there).
	if err := tx.Subscribe(txn.EventEnd, func(*txn.Txn, string) error {
		return ms.Close()
	}); err != nil {
		return nil, err
	}
	// When a rollback point is established the scan position is captured;
	// it is retained until used to restore the position after a partial
	// rollback (position changes are not logged, for performance).
	if err := tx.Subscribe(txn.EventSavepoint, func(_ *txn.Txn, name string) error {
		if !ms.closed {
			ms.saved[name] = ms.Pos()
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := tx.Subscribe(txn.EventPartialRollback, func(_ *txn.Txn, name string) error {
		if ms.closed {
			return nil
		}
		if pos, ok := ms.saved[name]; ok {
			return ms.Restore(pos)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return ms, nil
}

// Close is idempotent; the transaction-end subscriber may fire after an
// explicit close.
func (ms *managedScan) Close() error {
	if ms.closed {
		return nil
	}
	ms.closed = true
	return ms.Scan.Close()
}
