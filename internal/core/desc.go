package core

import (
	"encoding/binary"
	"fmt"

	"dmx/internal/types"
)

// RelDesc is the extensible relation descriptor: a record whose header
// holds the relation identity, schema, storage method identifier and
// storage method descriptor, and whose field N holds the descriptor for
// attachment type N (nil when no instances of that type exist on the
// relation). Each extension supplies and interprets the contents of its
// own descriptor field; the common system manages the composite.
//
// The common system fetches descriptors from the catalog at query
// compilation time and embeds them in bound query plans, so no catalog
// access is needed at run time; Version supports detecting stale plans.
type RelDesc struct {
	RelID   uint32
	Name    string
	Schema  *types.Schema
	SM      SMID
	SMDesc  []byte
	AttDesc [MaxAttachmentTypes][]byte
	Version uint64
}

// HasAttachment reports whether the relation has instances of type id.
func (rd *RelDesc) HasAttachment(id AttID) bool {
	return int(id) < len(rd.AttDesc) && rd.AttDesc[id] != nil
}

// AttachmentTypes returns the attachment type IDs with instances on the
// relation, in identifier order (the order attached procedures run in).
func (rd *RelDesc) AttachmentTypes() []AttID {
	var out []AttID
	for i := 1; i < MaxAttachmentTypes; i++ {
		if rd.AttDesc[i] != nil {
			out = append(out, AttID(i))
		}
	}
	return out
}

// Clone returns a deep copy (descriptor bytes copied). DDL operations
// mutate a clone and swap it into the catalog so bound plans holding the
// old descriptor are unaffected.
func (rd *RelDesc) Clone() *RelDesc {
	out := *rd
	out.SMDesc = append([]byte(nil), rd.SMDesc...)
	for i, d := range rd.AttDesc {
		if d != nil {
			out.AttDesc[i] = append([]byte(nil), d...)
		}
	}
	return &out
}

// AppendEncode appends the composite descriptor encoding to dst.
func (rd *RelDesc) AppendEncode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, rd.RelID)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(rd.Name)))
	dst = append(dst, rd.Name...)
	dst = rd.Schema.AppendEncode(dst)
	dst = append(dst, byte(rd.SM))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(rd.SMDesc)))
	dst = append(dst, rd.SMDesc...)
	dst = binary.BigEndian.AppendUint64(dst, rd.Version)
	// Non-present attachment fields cost two bytes each in the
	// record-oriented format (a present flag would be one; we spend a
	// uint16 length with sentinel 0xFFFF for NULL).
	for i := 1; i < MaxAttachmentTypes; i++ {
		d := rd.AttDesc[i]
		if d == nil {
			dst = binary.BigEndian.AppendUint16(dst, 0xFFFF)
			continue
		}
		if len(d) >= 0xFFFF {
			// Oversized attachment descriptors spill via a 4-byte length.
			dst = binary.BigEndian.AppendUint16(dst, 0xFFFE)
			dst = binary.BigEndian.AppendUint32(dst, uint32(len(d)))
		} else {
			dst = binary.BigEndian.AppendUint16(dst, uint16(len(d)))
		}
		dst = append(dst, d...)
	}
	return dst
}

// DecodeRelDesc decodes a descriptor, returning it and bytes consumed.
func DecodeRelDesc(b []byte) (*RelDesc, int, error) {
	rd := &RelDesc{}
	if len(b) < 6 {
		return nil, 0, fmt.Errorf("core: truncated descriptor header")
	}
	rd.RelID = binary.BigEndian.Uint32(b)
	nameLen := int(binary.BigEndian.Uint16(b[4:]))
	pos := 6
	if len(b) < pos+nameLen {
		return nil, 0, fmt.Errorf("core: truncated descriptor name")
	}
	rd.Name = string(b[pos : pos+nameLen])
	pos += nameLen
	schema, n, err := types.DecodeSchema(b[pos:])
	if err != nil {
		return nil, 0, fmt.Errorf("core: descriptor schema: %w", err)
	}
	rd.Schema = schema
	pos += n
	if len(b) < pos+5 {
		return nil, 0, fmt.Errorf("core: truncated storage method header")
	}
	rd.SM = SMID(b[pos])
	smLen := int(binary.BigEndian.Uint32(b[pos+1:]))
	pos += 5
	if len(b) < pos+smLen {
		return nil, 0, fmt.Errorf("core: truncated storage method descriptor")
	}
	rd.SMDesc = append([]byte(nil), b[pos:pos+smLen]...)
	pos += smLen
	if len(b) < pos+8 {
		return nil, 0, fmt.Errorf("core: truncated descriptor version")
	}
	rd.Version = binary.BigEndian.Uint64(b[pos:])
	pos += 8
	for i := 1; i < MaxAttachmentTypes; i++ {
		if len(b) < pos+2 {
			return nil, 0, fmt.Errorf("core: truncated attachment field %d", i)
		}
		l := int(binary.BigEndian.Uint16(b[pos:]))
		pos += 2
		if l == 0xFFFF {
			continue // NULL field: no instances of type i
		}
		if l == 0xFFFE {
			if len(b) < pos+4 {
				return nil, 0, fmt.Errorf("core: truncated oversized attachment field %d", i)
			}
			l = int(binary.BigEndian.Uint32(b[pos:]))
			pos += 4
		}
		if len(b) < pos+l {
			return nil, 0, fmt.Errorf("core: truncated attachment descriptor %d", i)
		}
		// A present-but-empty field must stay non-nil: presence is what
		// HasAttachment and the attached-procedure loop dispatch on.
		d := make([]byte, l)
		copy(d, b[pos:pos+l])
		rd.AttDesc[i] = d
		pos += l
	}
	return rd, pos, nil
}
