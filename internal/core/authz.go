package core

import (
	"fmt"
	"sync"

	"dmx/internal/txn"
)

// Privilege is an access level on a relation.
type Privilege uint8

// Privileges, ordered: each level implies the ones below it.
const (
	PrivNone Privilege = iota
	PrivRead
	PrivWrite
	PrivAdmin
)

// String returns the privilege name.
func (p Privilege) String() string {
	switch p {
	case PrivNone:
		return "NONE"
	case PrivRead:
		return "READ"
	case PrivWrite:
		return "WRITE"
	case PrivAdmin:
		return "ADMIN"
	default:
		return fmt.Sprintf("Privilege(%d)", uint8(p))
	}
}

// Authz is the uniform authorization facility. Because extensions are
// alternative implementations of a common relation abstraction, one
// authorization check in the generic operations covers relations of every
// storage method; extensions need no authorization code of their own.
//
// Disabled (the default), every access is allowed. Enabled, a transaction
// carries a user identity (txn.Txn.SetUser) and the generic relation
// operations demand READ for accesses, WRITE for modifications, and ADMIN
// for data definition. The creator of a relation is granted ADMIN.
type Authz struct {
	mu      sync.RWMutex
	enabled bool
	grants  map[grantKey]Privilege
}

type grantKey struct {
	user  string
	relID uint32
}

func newAuthz() *Authz {
	return &Authz{grants: make(map[grantKey]Privilege)}
}

// Enable turns checking on.
func (a *Authz) Enable() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.enabled = true
}

// Enabled reports whether checking is on.
func (a *Authz) Enabled() bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.enabled
}

// Grant gives user the privilege (and everything below it) on relID.
func (a *Authz) Grant(user string, relID uint32, priv Privilege) {
	a.mu.Lock()
	defer a.mu.Unlock()
	k := grantKey{user, relID}
	if priv > a.grants[k] {
		a.grants[k] = priv
	}
}

// Revoke removes all of user's privileges on relID.
func (a *Authz) Revoke(user string, relID uint32) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.grants, grantKey{user, relID})
}

// Check returns nil when tx's user holds priv on the relation.
func (a *Authz) Check(tx *txn.Txn, rd *RelDesc, priv Privilege) error {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if !a.enabled {
		return nil
	}
	user := tx.User()
	if a.grants[grantKey{user, rd.RelID}] >= priv {
		return nil
	}
	return fmt.Errorf("core: user %q lacks %v on relation %q", user, priv, rd.Name)
}
