package core

import (
	"encoding/binary"
	"fmt"

	"dmx/internal/txn"
	"dmx/internal/types"
	"dmx/internal/wal"
)

// ModOp classifies a logged logical modification.
type ModOp byte

// Logical modification operations.
const (
	ModInsert ModOp = 1
	ModUpdate ModOp = 2
	ModDelete ModOp = 3
)

// String returns the operation name.
func (op ModOp) String() string {
	switch op {
	case ModInsert:
		return "INSERT"
	case ModUpdate:
		return "UPDATE"
	case ModDelete:
		return "DELETE"
	default:
		return fmt.Sprintf("ModOp(%d)", byte(op))
	}
}

// ModPayload is the shared logical log payload for record modifications.
// The old record value is available on updates and deletes, the new record
// value on updates and inserts, and the record key on all operations —
// exactly the data the attached procedures receive.
type ModPayload struct {
	Op     ModOp
	Key    types.Key    // record key (old key for updates)
	NewKey types.Key    // new record key (updates only)
	Old    types.Record // nil for inserts
	New    types.Record // nil for deletes
}

// EncodeMod serialises a modification payload.
func EncodeMod(p ModPayload) []byte {
	out := []byte{byte(p.Op)}
	out = appendBytes(out, p.Key)
	out = appendBytes(out, p.NewKey)
	out = appendRecord(out, p.Old)
	out = appendRecord(out, p.New)
	return out
}

// DecodeMod reverses EncodeMod.
func DecodeMod(b []byte) (ModPayload, error) {
	var p ModPayload
	if len(b) < 1 {
		return p, fmt.Errorf("core: empty modification payload")
	}
	p.Op = ModOp(b[0])
	pos := 1
	var err error
	if p.Key, pos, err = readBytes(b, pos); err != nil {
		return p, err
	}
	if p.NewKey, pos, err = readBytes(b, pos); err != nil {
		return p, err
	}
	if p.Old, pos, err = readRecord(b, pos); err != nil {
		return p, err
	}
	if p.New, _, err = readRecord(b, pos); err != nil {
		return p, err
	}
	return p, nil
}

// EntryPayload is the shared logical log payload for access-path entry
// maintenance: instance-scoped (entry key → record key) additions and
// removals.
type EntryPayload struct {
	Op       ModOp // ModInsert adds the entry, ModDelete removes it
	Instance int
	EntryKey types.Key
	RecKey   types.Key
}

// EncodeEntry serialises an access-path entry payload.
func EncodeEntry(p EntryPayload) []byte {
	out := []byte{byte(p.Op)}
	out = binary.BigEndian.AppendUint16(out, uint16(p.Instance))
	out = appendBytes(out, p.EntryKey)
	out = appendBytes(out, p.RecKey)
	return out
}

// DecodeEntry reverses EncodeEntry.
func DecodeEntry(b []byte) (EntryPayload, error) {
	var p EntryPayload
	if len(b) < 3 {
		return p, fmt.Errorf("core: short entry payload")
	}
	p.Op = ModOp(b[0])
	p.Instance = int(binary.BigEndian.Uint16(b[1:]))
	pos := 3
	var err error
	if p.EntryKey, pos, err = readBytes(b, pos); err != nil {
		return p, err
	}
	if p.RecKey, _, err = readBytes(b, pos); err != nil {
		return p, err
	}
	return p, nil
}

// LogSM writes a storage-method-owned modification record for rd.
func LogSM(tx *txn.Txn, rd *RelDesc, p ModPayload) error {
	_, err := LogSMLSN(tx, rd, p)
	return err
}

// LogSMLSN is LogSM returning the record's LSN, for storage methods that
// stamp buffer frames with page LSNs (write-ahead rule).
func LogSMLSN(tx *txn.Txn, rd *RelDesc, p ModPayload) (wal.LSN, error) {
	return tx.AppendLog(wal.Owner{Class: wal.OwnerStorage, ExtID: uint8(rd.SM), RelID: rd.RelID}, EncodeMod(p))
}

// LogAttachment writes an attachment-owned entry record for rd.
func LogAttachment(tx *txn.Txn, rd *RelDesc, id AttID, p EntryPayload) error {
	_, err := tx.AppendLog(wal.Owner{Class: wal.OwnerAttachment, ExtID: uint8(id), RelID: rd.RelID}, EncodeEntry(p))
	return err
}

func appendBytes(dst, b []byte) []byte {
	if b == nil {
		return binary.BigEndian.AppendUint32(dst, 0xFFFFFFFF)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

func readBytes(b []byte, pos int) ([]byte, int, error) {
	if len(b) < pos+4 {
		return nil, 0, fmt.Errorf("core: truncated payload length")
	}
	n := binary.BigEndian.Uint32(b[pos:])
	pos += 4
	if n == 0xFFFFFFFF {
		return nil, pos, nil
	}
	if len(b) < pos+int(n) {
		return nil, 0, fmt.Errorf("core: truncated payload body")
	}
	out := append([]byte(nil), b[pos:pos+int(n)]...)
	return out, pos + int(n), nil
}

func appendRecord(dst []byte, r types.Record) []byte {
	if r == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return r.AppendEncode(dst)
}

func readRecord(b []byte, pos int) (types.Record, int, error) {
	if len(b) < pos+1 {
		return nil, 0, fmt.Errorf("core: truncated record flag")
	}
	if b[pos] == 0 {
		return nil, pos + 1, nil
	}
	rec, n, err := types.DecodeRecord(b[pos+1:])
	if err != nil {
		return nil, 0, err
	}
	return rec, pos + 1 + n, nil
}
