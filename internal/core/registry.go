package core

import "fmt"

// Registry holds the procedure vectors: for each generic operation class
// there is a vector of operation tables with an entry per storage method
// or attachment type, indexed by the extension's small-integer identifier.
// Activation of the appropriate extension from a relation descriptor is a
// constant-time array index.
//
// Extensions are bound into the system "at the factory": each extension
// package installs its table in the default registry from init(), and
// linking the package into the binary makes the extension available.
type Registry struct {
	sm  [MaxStorageMethods]*StorageOps
	att [MaxAttachmentTypes]*AttachmentOps
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// RegisterStorageMethod installs ops at its identifier. It panics on
// identifier collisions or out-of-range identifiers: registration happens
// at link time (init), where misconfiguration is a programming error.
func (r *Registry) RegisterStorageMethod(ops *StorageOps) {
	if ops.ID == 0 || int(ops.ID) >= MaxStorageMethods {
		panic(fmt.Sprintf("core: storage method %q has out-of-range id %d", ops.Name, ops.ID))
	}
	if r.sm[ops.ID] != nil {
		panic(fmt.Sprintf("core: storage method id %d already registered (%q vs %q)",
			ops.ID, r.sm[ops.ID].Name, ops.Name))
	}
	r.sm[ops.ID] = ops
}

// RegisterAttachment installs ops at its identifier; panics on collision.
func (r *Registry) RegisterAttachment(ops *AttachmentOps) {
	if ops.ID == 0 || int(ops.ID) >= MaxAttachmentTypes {
		panic(fmt.Sprintf("core: attachment %q has out-of-range id %d", ops.Name, ops.ID))
	}
	if r.att[ops.ID] != nil {
		panic(fmt.Sprintf("core: attachment id %d already registered (%q vs %q)",
			ops.ID, r.att[ops.ID].Name, ops.Name))
	}
	r.att[ops.ID] = ops
}

// StorageOps returns the operation table for id (nil if unregistered).
func (r *Registry) StorageOps(id SMID) *StorageOps {
	if int(id) >= MaxStorageMethods {
		return nil
	}
	return r.sm[id]
}

// AttachmentOps returns the operation table for id (nil if unregistered).
func (r *Registry) AttachmentOps(id AttID) *AttachmentOps {
	if int(id) >= MaxAttachmentTypes {
		return nil
	}
	return r.att[id]
}

// StorageMethodByName resolves a DDL storage method name (nil if unknown).
func (r *Registry) StorageMethodByName(name string) *StorageOps {
	for _, ops := range r.sm {
		if ops != nil && ops.Name == name {
			return ops
		}
	}
	return nil
}

// AttachmentByName resolves a DDL attachment type name (nil if unknown).
func (r *Registry) AttachmentByName(name string) *AttachmentOps {
	for _, ops := range r.att {
		if ops != nil && ops.Name == name {
			return ops
		}
	}
	return nil
}

// StorageMethodNames lists registered storage method names in id order.
func (r *Registry) StorageMethodNames() []string {
	var out []string
	for _, ops := range r.sm {
		if ops != nil {
			out = append(out, ops.Name)
		}
	}
	return out
}

// AttachmentNames lists registered attachment type names in id order.
func (r *Registry) AttachmentNames() []string {
	var out []string
	for _, ops := range r.att {
		if ops != nil {
			out = append(out, ops.Name)
		}
	}
	return out
}

// DefaultRegistry is the factory registry extension packages install into
// from init(). Environments default to it.
var DefaultRegistry = NewRegistry()

// RegisterStorageMethod installs ops into the default registry.
func RegisterStorageMethod(ops *StorageOps) { DefaultRegistry.RegisterStorageMethod(ops) }

// RegisterAttachment installs ops into the default registry.
func RegisterAttachment(ops *AttachmentOps) { DefaultRegistry.RegisterAttachment(ops) }
