// Package remotesm implements the foreign-database relation storage
// method: relation accesses are simulated via remote accesses to a
// relation in a foreign database, as the paper sketches.
//
// Each operation becomes one or more round trips to a remote.Server
// (scans batch records to amortise them). Undo issues compensating remote
// operations, so a vetoed or aborted local transaction retracts its
// effects from the foreign database — the foreign side sees the local
// transaction's net effect only.
package remotesm

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"sync"

	"dmx/internal/core"
	"dmx/internal/expr"
	"dmx/internal/remote"
	"dmx/internal/sm/smutil"
	"dmx/internal/txn"
	"dmx/internal/types"
)

// Name is the DDL name of the storage method.
const Name = "remote"

// DefaultScanBatchSize is how many records one scan round trip fetches
// unless the relation was created with a batch=<n> attribute.
const DefaultScanBatchSize = 100

const serverStateKey = "remotesm.servers"

// AttachServer makes a foreign database reachable from relations created
// with server=<name> in this environment.
func AttachServer(env *core.Env, name string, srv *remote.Server) {
	reg := servers(env)
	reg.mu.Lock()
	defer reg.mu.Unlock()
	reg.byName[name] = srv
}

type serverRegistry struct {
	mu     sync.Mutex
	byName map[string]*remote.Server
}

func servers(env *core.Env) *serverRegistry {
	if v, ok := env.ExtState(serverStateKey); ok {
		return v.(*serverRegistry)
	}
	reg := &serverRegistry{byName: make(map[string]*remote.Server)}
	env.SetExtState(serverStateKey, reg)
	return reg
}

func lookupServer(env *core.Env, name string) (*remote.Server, error) {
	reg := servers(env)
	reg.mu.Lock()
	defer reg.mu.Unlock()
	srv, ok := reg.byName[name]
	if !ok {
		return nil, fmt.Errorf("remotesm: no foreign server %q attached to this environment", name)
	}
	return srv, nil
}

func init() {
	core.RegisterStorageMethod(&core.StorageOps{
		ID:   core.SMRemote,
		Name: Name,
		// Remote relation contents live on the foreign server and cannot be
		// rescanned at restart (servers are attached after open), so restart
		// recovery replays the attachment-owned log records instead.
		ReplayAttachments: true,
		ValidateAttrs: func(schema *types.Schema, attrs core.AttrList) error {
			if err := attrs.CheckAllowed(Name, "server", "table", "batch"); err != nil {
				return err
			}
			if _, ok := attrs.Get("server"); !ok {
				return fmt.Errorf("remotesm: the remote storage method requires a server=<name> attribute")
			}
			if _, err := parseBatch(attrs); err != nil {
				return err
			}
			return nil
		},
		Create: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, attrs core.AttrList) ([]byte, error) {
			server, _ := attrs.Get("server")
			tableName, ok := attrs.Get("table")
			if !ok {
				tableName = rd.Name
			}
			batch, err := parseBatch(attrs)
			if err != nil {
				return nil, err
			}
			srv, err := lookupServer(env, server)
			if err != nil {
				return nil, err
			}
			client := remote.Dial(srv)
			defer client.Close()
			if err := client.CreateTable(tableName); err != nil {
				return nil, err
			}
			return encodeDesc(server, tableName, batch), nil
		},
		Open: func(env *core.Env, rd *core.RelDesc) (core.StorageInstance, error) {
			server, tableName, batch, err := decodeDesc(rd.SMDesc)
			if err != nil {
				return nil, err
			}
			srv, err := lookupServer(env, server)
			if err != nil {
				return nil, err
			}
			return &store{env: env, rd: rd, table: tableName, batch: batch, client: remote.Dial(srv)}, nil
		},
	})
}

func parseBatch(attrs core.AttrList) (int, error) {
	spec, ok := attrs.Get("batch")
	if !ok {
		return DefaultScanBatchSize, nil
	}
	n, err := strconv.Atoi(spec)
	if err != nil || n < 1 || n > 10000 {
		return 0, fmt.Errorf("remotesm: batch must be 1..10000, got %q", spec)
	}
	return n, nil
}

func encodeDesc(server, tableName string, batch int) []byte {
	out := []byte{byte(len(server))}
	out = append(out, server...)
	out = append(out, byte(len(tableName)))
	out = append(out, tableName...)
	return binary.BigEndian.AppendUint16(out, uint16(batch))
}

func decodeDesc(b []byte) (server, tableName string, batch int, err error) {
	if len(b) < 1 {
		return "", "", 0, fmt.Errorf("remotesm: empty storage descriptor")
	}
	n := int(b[0])
	if len(b) < 1+n+1 {
		return "", "", 0, fmt.Errorf("remotesm: truncated storage descriptor")
	}
	server = string(b[1 : 1+n])
	m := int(b[1+n])
	if len(b) < 2+n+m+2 {
		return "", "", 0, fmt.Errorf("remotesm: truncated table name")
	}
	tableName = string(b[2+n : 2+n+m])
	batch = int(binary.BigEndian.Uint16(b[2+n+m:]))
	if batch < 1 {
		batch = DefaultScanBatchSize
	}
	return server, tableName, batch, nil
}

// store is the foreign-relation storage instance.
type store struct {
	env    *core.Env
	rd     *core.RelDesc
	table  string
	batch  int
	client *remote.Client
}

// Insert implements core.StorageInstance: one round trip; the foreign
// database assigns the record key.
func (s *store) Insert(tx *txn.Txn, rec types.Record) (types.Key, error) {
	key, err := s.client.Put(s.table, nil, rec)
	if err != nil {
		return nil, err
	}
	if err := core.LogSM(tx, s.rd, core.ModPayload{Op: core.ModInsert, Key: key, New: rec}); err != nil {
		return nil, err
	}
	return key, nil
}

// Update implements core.StorageInstance: one round trip, key stable.
func (s *store) Update(tx *txn.Txn, key types.Key, oldRec, newRec types.Record) (types.Key, error) {
	if _, err := s.client.Put(s.table, key, newRec); err != nil {
		return nil, err
	}
	if err := core.LogSM(tx, s.rd, core.ModPayload{Op: core.ModUpdate, Key: key, NewKey: key, Old: oldRec, New: newRec}); err != nil {
		return nil, err
	}
	return key, nil
}

// Delete implements core.StorageInstance: one round trip.
func (s *store) Delete(tx *txn.Txn, key types.Key, oldRec types.Record) error {
	if err := s.client.Delete(s.table, key); err != nil {
		return err
	}
	return core.LogSM(tx, s.rd, core.ModPayload{Op: core.ModDelete, Key: key, Old: oldRec})
}

// FetchByKey implements core.StorageInstance: one round trip; the filter
// runs locally on the fetched record.
func (s *store) FetchByKey(tx *txn.Txn, key types.Key, fields []int, filter *expr.Expr) (types.Record, error) {
	rec, err := s.client.Get(s.table, key)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrNotFound, err)
	}
	if filter != nil {
		match, err := s.env.Eval.EvalBool(filter, rec, nil)
		if err != nil {
			return nil, err
		}
		if !match {
			return nil, core.ErrFiltered
		}
	}
	if fields != nil {
		return rec.Project(fields), nil
	}
	return rec, nil
}

// OpenScan implements core.StorageInstance: batched remote key order.
func (s *store) OpenScan(tx *txn.Txn, opts core.ScanOptions) (core.Scan, error) {
	sc := &scan{store: s, opts: opts}
	if opts.Start != nil {
		// Start is inclusive; the remote protocol is exclusive-after, so
		// position just before Start.
		sc.after = beforeKey(opts.Start)
		sc.started = true
	}
	return sc, nil
}

// beforeKey returns a key that sorts immediately before k (exclusive-after
// semantics then include k itself).
func beforeKey(k types.Key) types.Key {
	out := append(types.Key(nil), k...)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] > 0 {
			out[i]--
			return append(out, 0xFF)
		}
		out = out[:i]
	}
	return nil
}

// EstimateCost implements core.StorageInstance: every batch of records is
// a network round trip, which dominates like page I/O does locally.
func (s *store) EstimateCost(req core.CostRequest) core.CostEstimate {
	n := s.RecordCount()
	rounds := float64(n)/float64(s.batch) + 1
	return core.CostEstimate{
		Usable:      true,
		IO:          rounds * 4, // a round trip costs ~several page reads
		CPU:         float64(n),
		Selectivity: smutil.RequestSelectivity(req),
	}
}

// RecordCount implements core.StorageInstance (one round trip).
func (s *store) RecordCount() int {
	n, err := s.client.Count(s.table)
	if err != nil {
		return 0
	}
	return n
}

// ApplyLogged implements core.StorageInstance: compensating remote calls.
func (s *store) ApplyLogged(payload []byte, undo bool) error {
	p, err := core.DecodeMod(payload)
	if err != nil {
		return err
	}
	// The create round trip may not have re-run yet during replay onto a
	// fresh foreign database; CreateTable is idempotent.
	if err := s.client.CreateTable(s.table); err != nil {
		return err
	}
	op := p.Op
	rec := p.New
	if undo {
		switch p.Op {
		case core.ModInsert:
			op = core.ModDelete
		case core.ModDelete:
			op, rec = core.ModInsert, p.Old
		case core.ModUpdate:
			rec = p.Old
		}
	}
	switch op {
	case core.ModInsert, core.ModUpdate:
		_, err := s.client.Put(s.table, p.Key, rec)
		return err
	case core.ModDelete:
		err := s.client.Delete(s.table, p.Key)
		if err != nil && !undo {
			return nil // replaying a delete of an already-absent record
		}
		return err
	default:
		return fmt.Errorf("remotesm: bad logged op %v", p.Op)
	}
}

var _ core.StorageInstance = (*store)(nil)

// scan is a batched key-sequential access over the foreign relation.
type scan struct {
	store   *store
	opts    core.ScanOptions
	after   types.Key
	started bool
	batch   []remote.Entry
	closed  bool
}

// Next implements core.Scan.
func (sc *scan) Next() (types.Key, types.Record, bool, error) {
	if sc.closed {
		return nil, nil, false, fmt.Errorf("remotesm: scan is closed")
	}
	for {
		if len(sc.batch) == 0 {
			entries, err := sc.store.client.ScanBatch(sc.store.table, sc.after, sc.store.batch)
			if err != nil {
				return nil, nil, false, err
			}
			if len(entries) == 0 {
				return nil, nil, false, nil
			}
			sc.batch = entries
		}
		e := sc.batch[0]
		sc.batch = sc.batch[1:]
		sc.after = types.Key(e.Key)
		sc.started = true
		key := types.Key(e.Key)
		if sc.opts.End != nil && key.Compare(sc.opts.End) >= 0 {
			return nil, nil, false, nil
		}
		rec, _, err := types.DecodeRecord(e.Rec)
		if err != nil {
			return nil, nil, false, err
		}
		if sc.opts.Filter != nil {
			match, err := sc.store.env.Eval.EvalBool(sc.opts.Filter, rec, sc.opts.Params)
			if err != nil {
				return nil, nil, false, err
			}
			if !match {
				continue
			}
		}
		if sc.opts.Fields != nil {
			rec = rec.Project(sc.opts.Fields)
		}
		return key, rec, true, nil
	}
}

// Pos implements core.Scan.
func (sc *scan) Pos() core.ScanPos {
	if !sc.started {
		return core.ScanPos{0}
	}
	return append(core.ScanPos{1}, sc.after...)
}

// Restore implements core.Scan: the batch is refetched from the restored
// position (remote data may have changed under partial rollback).
func (sc *scan) Restore(pos core.ScanPos) error {
	if len(pos) == 0 {
		return fmt.Errorf("remotesm: empty scan position")
	}
	sc.batch = nil
	if pos[0] == 0 {
		sc.started = false
		sc.after = nil
		return nil
	}
	sc.started = true
	sc.after = append(types.Key(nil), pos[1:]...)
	return nil
}

// Close implements core.Scan.
func (sc *scan) Close() error {
	sc.closed = true
	return nil
}
