package remotesm_test

import (
	"errors"
	"testing"
	"time"

	"dmx/internal/core"
	"dmx/internal/expr"
	"dmx/internal/remote"
	"dmx/internal/sm/remotesm"
	"dmx/internal/types"
	"dmx/internal/wal"
)

func schema() *types.Schema {
	return types.MustSchema(
		types.Column{Name: "id", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "val", Kind: types.KindString},
	)
}

func setup(t *testing.T) (*core.Env, *remote.Server, *core.Relation) {
	t.Helper()
	env := core.NewEnv(core.Config{})
	srv := remote.NewServer(0)
	remotesm.AttachServer(env, "fed", srv)
	tx := env.Begin()
	rd, err := env.CreateRelation(tx, "orders", schema(), "remote",
		core.AttrList{"server": "fed", "table": "remote_orders"})
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	r, err := env.OpenRelation(rd)
	if err != nil {
		t.Fatal(err)
	}
	return env, srv, r
}

func rec(id int64, val string) types.Record {
	return types.Record{types.Int(id), types.Str(val)}
}

func TestRemoteRoundTrips(t *testing.T) {
	env, srv, r := setup(t)
	tx := env.Begin()
	before := srv.Messages.Load()
	k, err := r.Insert(tx, rec(1, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if srv.Messages.Load() != before+1 {
		t.Fatalf("insert should be one round trip, got %d", srv.Messages.Load()-before)
	}
	got, err := r.Fetch(tx, k, nil, nil)
	if err != nil || got[1].S != "a" {
		t.Fatalf("fetch: %v %v", got, err)
	}
	if _, err := r.Update(tx, k, rec(1, "b")); err != nil {
		t.Fatal(err)
	}
	got, _ = r.Fetch(tx, k, nil, nil)
	if got[1].S != "b" {
		t.Fatalf("after update: %v", got)
	}
	if err := r.Delete(tx, k); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Fetch(tx, k, nil, nil); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("after delete: %v", err)
	}
	tx.Commit()
}

func TestRequiresServerAttr(t *testing.T) {
	env := core.NewEnv(core.Config{})
	tx := env.Begin()
	if _, err := env.CreateRelation(tx, "x", schema(), "remote", nil); err == nil {
		t.Fatal("missing server attribute accepted")
	}
	if _, err := env.CreateRelation(tx, "x", schema(), "remote",
		core.AttrList{"server": "ghost"}); err == nil {
		t.Fatal("unattached server accepted")
	}
	tx.Commit()
}

func TestBatchedScan(t *testing.T) {
	env, srv, r := setup(t)
	tx := env.Begin()
	for i := 0; i < 250; i++ {
		r.Insert(tx, rec(int64(i), "x"))
	}
	tx.Commit()

	tx2 := env.Begin()
	before := srv.Messages.Load()
	scan, err := r.OpenScan(tx2, core.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, _, ok, err := scan.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 250 {
		t.Fatalf("scanned %d", n)
	}
	rounds := srv.Messages.Load() - before
	// 250 records at 100/batch: 3 batches + 1 empty terminator.
	if rounds > 5 {
		t.Fatalf("scan used %d round trips, batching broken", rounds)
	}
	tx2.Commit()
}

func TestScanFilterRunsLocally(t *testing.T) {
	env, _, r := setup(t)
	tx := env.Begin()
	for i := 0; i < 50; i++ {
		r.Insert(tx, rec(int64(i), "x"))
	}
	scan, _ := r.OpenScan(tx, core.ScanOptions{
		Filter: expr.Ge(expr.Field(0), expr.Const(types.Int(45))),
		Fields: []int{0},
	})
	n := 0
	for {
		_, g, ok, err := scan.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if len(g) != 1 || g[0].AsInt() < 45 {
			t.Fatalf("got %v", g)
		}
		n++
	}
	if n != 5 {
		t.Fatalf("filtered = %d", n)
	}
	tx.Commit()
}

func TestAbortCompensatesRemotely(t *testing.T) {
	env, _, r := setup(t)
	tx := env.Begin()
	k1, _ := r.Insert(tx, rec(1, "keep"))
	tx.Commit()

	tx2 := env.Begin()
	r.Insert(tx2, rec(2, "drop"))
	r.Update(tx2, k1, rec(1, "changed"))
	r.Delete(tx2, k1)
	tx2.Abort()

	// The foreign database must show the pre-transaction state.
	if r.Storage().RecordCount() != 1 {
		t.Fatalf("remote count after abort = %d", r.Storage().RecordCount())
	}
	tx3 := env.Begin()
	got, err := r.Fetch(tx3, k1, nil, nil)
	if err != nil || got[1].S != "keep" {
		t.Fatalf("after abort: %v %v", got, err)
	}
	tx3.Commit()
}

func TestRecoveryReplaysOntoFreshForeignDB(t *testing.T) {
	log := wal.New()
	env := core.NewEnv(core.Config{Log: log})
	srv := remote.NewServer(0)
	remotesm.AttachServer(env, "fed", srv)
	tx := env.Begin()
	rd, err := env.CreateRelation(tx, "orders", schema(), "remote", core.AttrList{"server": "fed"})
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	r, _ := env.OpenRelation(rd)
	tx2 := env.Begin()
	r.Insert(tx2, rec(1, "durable"))
	tx2.Commit()

	// Restart with a brand-new (empty) foreign database: replay restores it.
	env2 := core.NewEnv(core.Config{Log: log})
	srv2 := remote.NewServer(0)
	remotesm.AttachServer(env2, "fed", srv2)
	if err := env2.Recover(); err != nil {
		t.Fatal(err)
	}
	r2, err := env2.OpenRelationByName("orders")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Storage().RecordCount() != 1 {
		t.Fatalf("recovered remote count = %d", r2.Storage().RecordCount())
	}
}

// TestScanBatchBoundaryMutation pins the strictly-after refill contract.
// A batched scan anchors every refill on the last key it returned; records
// mutated on the foreign server between refills — including the anchor
// itself, deleted out from under the scan by another of the server's
// clients — must neither skip nor repeat anything the scan still owes.
func TestScanBatchBoundaryMutation(t *testing.T) {
	env := core.NewEnv(core.Config{})
	srv := remote.NewServer(0)
	remotesm.AttachServer(env, "fed", srv)
	tx := env.Begin()
	rd, err := env.CreateRelation(tx, "orders", schema(), "remote",
		core.AttrList{"server": "fed", "table": "remote_orders", "batch": "8"})
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	r, err := env.OpenRelation(rd)
	if err != nil {
		t.Fatal(err)
	}

	tx = env.Begin()
	var keys []types.Key
	for i := 0; i < 40; i++ {
		k, err := r.Insert(tx, rec(int64(i), "x"))
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	tx.Commit()

	tx2 := env.Begin()
	scan, err := r.OpenScan(tx2, core.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer scan.Close()
	var ids []int64
	vals := map[int64]string{}
	read := func() bool {
		_, g, ok, err := scan.Next()
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			ids = append(ids, g[0].AsInt())
			vals[g[0].AsInt()] = g[1].S
		}
		return ok
	}
	// Drain exactly the first batch; the next Next() must refill anchored
	// on keys[7], the last record returned.
	for i := 0; i < 8; i++ {
		if !read() {
			t.Fatalf("scan ended after %d records", i)
		}
	}

	// Another client of the foreign server mutates around the boundary:
	// the refill anchor vanishes, the first not-yet-returned record
	// vanishes, an already-owed record changes, and a new record lands
	// past the end.
	c := remote.Dial(srv)
	defer c.Close()
	if err := c.Delete("remote_orders", keys[7]); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("remote_orders", keys[8]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put("remote_orders", keys[20], rec(20, "patched")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put("remote_orders", nil, rec(100, "late")); err != nil {
		t.Fatal(err)
	}

	for read() {
	}

	want := []int64{0, 1, 2, 3, 4, 5, 6, 7}
	for i := int64(9); i < 40; i++ {
		want = append(want, i)
	}
	want = append(want, 100)
	if len(ids) != len(want) {
		t.Fatalf("scanned %d ids %v, want %d %v", len(ids), ids, len(want), want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("position %d: got id %d, want %d (full: %v)", i, ids[i], want[i], ids)
		}
	}
	if vals[20] != "patched" {
		t.Fatalf("id 20 read %q, want the patched value", vals[20])
	}
	tx2.Commit()
}

func TestLatencyInjection(t *testing.T) {
	env := core.NewEnv(core.Config{})
	srv := remote.NewServer(2 * time.Millisecond)
	remotesm.AttachServer(env, "slow", srv)
	tx := env.Begin()
	rd, err := env.CreateRelation(tx, "t", schema(), "remote", core.AttrList{"server": "slow"})
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	r, _ := env.OpenRelation(rd)
	tx2 := env.Begin()
	start := time.Now()
	for i := 0; i < 5; i++ {
		if _, err := r.Insert(tx2, rec(int64(i), "x")); err != nil {
			t.Fatal(err)
		}
	}
	if el := time.Since(start); el < 10*time.Millisecond {
		t.Fatalf("latency not applied: %v", el)
	}
	tx2.Commit()
}
