package heap_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"dmx/internal/core"
	"dmx/internal/expr"
	_ "dmx/internal/sm/heap"
	"dmx/internal/types"
	"dmx/internal/wal"
)

func schema() *types.Schema {
	return types.MustSchema(
		types.Column{Name: "id", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "payload", Kind: types.KindString},
	)
}

func mkHeap(t *testing.T, env *core.Env, name string) *core.Relation {
	t.Helper()
	tx := env.Begin()
	rd, err := env.CreateRelation(tx, name, schema(), "heap", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	r, err := env.OpenRelation(rd)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func rec(id int64, payload string) types.Record {
	return types.Record{types.Int(id), types.Str(payload)}
}

func TestInsertFetchAcrossPages(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := mkHeap(t, env, "t")
	tx := env.Begin()
	keys := make([]types.Key, 0, 500)
	for i := 0; i < 500; i++ {
		k, err := r.Insert(tx, rec(int64(i), strings.Repeat("x", 50)))
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	tx.Commit()
	if r.Storage().RecordCount() != 500 {
		t.Fatalf("count = %d", r.Storage().RecordCount())
	}

	tx2 := env.Begin()
	for i, k := range keys {
		got, err := r.Fetch(tx2, k, nil, nil)
		if err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
		if got[0].AsInt() != int64(i) {
			t.Fatalf("fetch %d returned id %d", i, got[0].AsInt())
		}
	}
	tx2.Commit()
	// 500 × ~60B records at 4KB/page must span multiple pages.
	type pageCounter interface{ PageCount() int }
	if pc := r.Storage().(pageCounter).PageCount(); pc < 5 {
		t.Fatalf("PageCount = %d, expected multi-page relation", pc)
	}
}

func TestUpdateInPlaceKeepsKey(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := mkHeap(t, env, "t")
	tx := env.Begin()
	k, _ := r.Insert(tx, rec(1, "long-initial-payload"))
	nk, err := r.Update(tx, k, rec(1, "short"))
	if err != nil {
		t.Fatal(err)
	}
	if !nk.Equal(k) {
		t.Fatal("in-place update should keep the record key")
	}
	got, _ := r.Fetch(tx, nk, nil, nil)
	if got[1].S != "short" {
		t.Fatalf("fetched %v", got)
	}
	tx.Commit()
}

func TestUpdateGrowingMovesRecord(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := mkHeap(t, env, "t")
	tx := env.Begin()
	k, _ := r.Insert(tx, rec(1, "tiny"))
	nk, err := r.Update(tx, k, rec(1, strings.Repeat("grown", 50)))
	if err != nil {
		t.Fatal(err)
	}
	if nk.Equal(k) {
		t.Fatal("growing update should move to a new record address")
	}
	if _, err := r.Fetch(tx, k, nil, nil); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("old address should be gone: %v", err)
	}
	got, err := r.Fetch(tx, nk, nil, nil)
	if err != nil || len(got[1].S) != 250 {
		t.Fatalf("moved record: %v %v", got, err)
	}
	tx.Commit()
	if r.Storage().RecordCount() != 1 {
		t.Fatalf("count = %d", r.Storage().RecordCount())
	}
}

func TestDeleteAndFetchFails(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := mkHeap(t, env, "t")
	tx := env.Begin()
	k, _ := r.Insert(tx, rec(1, "x"))
	if err := r.Delete(tx, k); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Fetch(tx, k, nil, nil); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if err := r.Delete(tx, k); err == nil {
		t.Fatal("double delete should fail")
	}
	tx.Commit()
}

func TestFetchFilterPushdown(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := mkHeap(t, env, "t")
	tx := env.Begin()
	k, _ := r.Insert(tx, rec(7, "x"))
	pass := expr.Eq(expr.Field(0), expr.Const(types.Int(7)))
	fail := expr.Eq(expr.Field(0), expr.Const(types.Int(8)))
	if _, err := r.Fetch(tx, k, nil, pass); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Fetch(tx, k, nil, fail); !errors.Is(err, core.ErrFiltered) {
		t.Fatalf("want ErrFiltered, got %v", err)
	}
	tx.Commit()
}

func TestScanFilterAndProjection(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := mkHeap(t, env, "t")
	tx := env.Begin()
	for i := 0; i < 100; i++ {
		r.Insert(tx, rec(int64(i), fmt.Sprintf("p%d", i)))
	}
	filter := expr.Lt(expr.Field(0), expr.Const(types.Int(10)))
	scan, err := r.OpenScan(tx, core.ScanOptions{Filter: filter, Fields: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, got, ok, err := scan.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if len(got) != 1 || got[0].AsInt() >= 10 {
			t.Fatalf("scan returned %v", got)
		}
		n++
	}
	if n != 10 {
		t.Fatalf("scan matched %d, want 10", n)
	}
	tx.Commit()
}

func TestScanPositionAndDeleteAtPosition(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := mkHeap(t, env, "t")
	tx := env.Begin()
	for i := 0; i < 5; i++ {
		r.Insert(tx, rec(int64(i), "x"))
	}
	scan, _ := r.OpenScan(tx, core.ScanOptions{})
	k0, _, _, _ := scan.Next()
	pos := scan.Pos()
	r.Delete(tx, k0) // delete at position: scan sits just after
	_, r1, ok, err := scan.Next()
	if err != nil || !ok || r1[0].AsInt() != 1 {
		t.Fatalf("next after delete-at-position: %v %v %v", r1, ok, err)
	}
	// Restore to the saved position: record 1 comes again.
	if err := scan.Restore(pos); err != nil {
		t.Fatal(err)
	}
	_, r1b, ok, _ := scan.Next()
	if !ok || r1b[0].AsInt() != 1 {
		t.Fatalf("restored scan returned %v", r1b)
	}
	tx.Commit()
}

func TestAbortRestoresHeap(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := mkHeap(t, env, "t")
	tx := env.Begin()
	k1, _ := r.Insert(tx, rec(1, "keep"))
	k2, _ := r.Insert(tx, rec(2, "keep"))
	tx.Commit()

	tx2 := env.Begin()
	r.Insert(tx2, rec(3, "drop"))
	r.Delete(tx2, k1)
	r.Update(tx2, k2, rec(2, "changed"))
	r.Update(tx2, k2, rec(2, strings.Repeat("moved", 60))) // forces move
	tx2.Abort()

	if r.Storage().RecordCount() != 2 {
		t.Fatalf("count after abort = %d", r.Storage().RecordCount())
	}
	tx3 := env.Begin()
	g1, err := r.Fetch(tx3, k1, nil, nil)
	if err != nil || g1[1].S != "keep" {
		t.Fatalf("k1 = %v %v", g1, err)
	}
	g2, err := r.Fetch(tx3, k2, nil, nil)
	if err != nil || g2[1].S != "keep" {
		t.Fatalf("k2 = %v %v", g2, err)
	}
	tx3.Commit()
}

func TestRestartRecoveryRebuildsHeap(t *testing.T) {
	log := wal.New()
	env := core.NewEnv(core.Config{Log: log})
	r := mkHeap(t, env, "t")
	tx := env.Begin()
	var keep types.Key
	for i := 0; i < 50; i++ {
		k, _ := r.Insert(tx, rec(int64(i), fmt.Sprintf("v%d", i)))
		if i == 25 {
			keep = k
		}
	}
	keep, err := r.Update(tx, keep, rec(25, "updated"))
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	loser := env.Begin()
	r.Insert(loser, rec(99, "loser"))
	// crash

	env2 := core.NewEnv(core.Config{Log: log})
	if err := env2.Recover(); err != nil {
		t.Fatal(err)
	}
	r2, err := env2.OpenRelationByName("t")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Storage().RecordCount() != 50 {
		t.Fatalf("recovered count = %d", r2.Storage().RecordCount())
	}
	tx2 := env2.Begin()
	got, err := r2.Fetch(tx2, keep, nil, nil)
	if err != nil || got[1].S != "updated" {
		t.Fatalf("recovered record = %v %v", got, err)
	}
	tx2.Commit()
}

func TestOversizedRecordRejected(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := mkHeap(t, env, "t")
	tx := env.Begin()
	if _, err := r.Insert(tx, rec(1, strings.Repeat("z", 5000))); err == nil {
		t.Fatal("page-exceeding record accepted")
	}
	tx.Commit()
}

func TestCostEstimateReflectsPages(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := mkHeap(t, env, "t")
	tx := env.Begin()
	for i := 0; i < 300; i++ {
		r.Insert(tx, rec(int64(i), strings.Repeat("x", 100)))
	}
	tx.Commit()
	est := r.Storage().EstimateCost(core.CostRequest{})
	if !est.Usable || est.IO < 5 || est.CPU != 300 {
		t.Fatalf("estimate = %+v", est)
	}
	// Selectivity drops with an equality conjunct.
	est2 := r.Storage().EstimateCost(core.CostRequest{
		Conjuncts: []*expr.Expr{expr.Eq(expr.Field(0), expr.Const(types.Int(1)))},
	})
	if est2.Selectivity >= est.Selectivity {
		t.Fatalf("selectivity: %v !< %v", est2.Selectivity, est.Selectivity)
	}
}

func TestDiskIOCounted(t *testing.T) {
	env := core.NewEnv(core.Config{PoolFrames: 2})
	r := mkHeap(t, env, "t")
	tx := env.Begin()
	for i := 0; i < 300; i++ {
		r.Insert(tx, rec(int64(i), strings.Repeat("x", 100)))
	}
	tx.Commit()
	// With a 2-frame pool, a full scan of a ~10-page relation must do disk
	// reads (misses) and the stats must show it.
	tx2 := env.Begin()
	scan, _ := r.OpenScan(tx2, core.ScanOptions{})
	for {
		_, _, ok, err := scan.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	tx2.Commit()
	if env.Pool.Disk().Stats().Reads == 0 {
		t.Fatal("expected disk reads with tiny pool")
	}
}

// Regression: a checkpoint snapshot re-places each record at its current
// size, so a slot that shrank in place before the checkpoint loses the
// headroom an overwrite replayed after it needs. Redo must re-place the
// record on the page instead of failing the capacity check.
func TestRecoveryReplaysOverwriteIntoSnapshotShrunkSlot(t *testing.T) {
	log := wal.New()
	env := core.NewEnv(core.Config{Log: log})
	r := mkHeap(t, env, "t")
	tx := env.Begin()
	k, _ := r.Insert(tx, rec(1, "a-long-initial-payload"))
	tx.Commit()

	tx2 := env.Begin()
	if _, err := r.Update(tx2, k, rec(1, "tiny")); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
	if err := env.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Same length as the original, so the run-time slot still has the
	// headroom and the update stays in place at the same record address.
	tx3 := env.Begin()
	nk, err := r.Update(tx3, k, rec(1, "b-long-update-payload!"))
	if err != nil {
		t.Fatal(err)
	}
	if !nk.Equal(k) {
		t.Fatal("update should have stayed in place")
	}
	tx3.Commit()

	env2 := core.NewEnv(core.Config{Log: log})
	if err := env2.Recover(); err != nil {
		t.Fatal(err)
	}
	r2, err := env2.OpenRelationByName("t")
	if err != nil {
		t.Fatal(err)
	}
	tx4 := env2.Begin()
	got, err := r2.Fetch(tx4, k, nil, nil)
	if err != nil || got[1].S != "b-long-update-payload!" {
		t.Fatalf("recovered: %v %v", got, err)
	}
	tx4.Commit()
}

// chainLen reads the version-chain length at key through the test
// accessor on the heap store.
func chainLen(t *testing.T, r *core.Relation, key types.Key) int {
	t.Helper()
	cl, ok := r.Storage().(interface{ VersionChainLen(types.Key) int })
	if !ok {
		t.Fatal("heap store does not expose VersionChainLen")
	}
	return cl.VersionChainLen(key)
}

// A long-running snapshot pins the pruning horizon, so repeated
// overwrites grow the record's version chain; once the reader finishes
// and the oldest snapshot advances, the next push prunes everything the
// no-longer-pinned horizon covers, bounding chain growth.
func TestVersionChainBoundedOnceSnapshotAdvances(t *testing.T) {
	env := core.NewEnv(core.Config{Log: wal.New()})
	r := mkHeap(t, env, "t")
	tx := env.Begin()
	k, err := r.Insert(tx, rec(1, "v0"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	ro := env.BeginReadOnly()
	for i := 1; i <= 8; i++ {
		tx := env.Begin()
		// Same encoded length, so every overwrite stays in place and
		// stacks onto one chain.
		if _, err := r.Update(tx, k, rec(1, fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if got := chainLen(t, r, k); got < 8 {
		t.Fatalf("chain len %d while reader pins the horizon, want >= 8", got)
	}
	// The pinned reader still reconstructs the original version.
	if got, err := r.Fetch(ro, k, nil, nil); err != nil || got[1].S != "v0" {
		t.Fatalf("pinned snapshot reads %v %v, want v0", got, err)
	}
	if err := ro.Commit(); err != nil {
		t.Fatal(err)
	}

	tx = env.Begin()
	if _, err := r.Update(tx, k, rec(1, "v9")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// The push prunes past the newest entry every open snapshot sees; with
	// no snapshots open that is the chain head's predecessor.
	if got := chainLen(t, r, k); got > 2 {
		t.Fatalf("chain len %d after the oldest snapshot advanced, want <= 2", got)
	}
}

// Commit stamps survive checkpoint and restart: recovery re-derives the
// high-water from the checkpoint record and the commit records after it,
// so post-restart snapshots see all pre-crash commits and new commits
// stamp strictly above the restored high-water.
func TestStampsSurviveCheckpointRecovery(t *testing.T) {
	log := wal.New()
	env := core.NewEnv(core.Config{Log: log})
	r := mkHeap(t, env, "t")
	tx := env.Begin()
	k, err := r.Insert(tx, rec(1, "aaaa"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := env.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tx = env.Begin()
	if _, err := r.Update(tx, k, rec(1, "bbbb")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	hw := env.Txns.StampHW()
	// crash

	env2 := core.NewEnv(core.Config{Log: log})
	if err := env2.Recover(); err != nil {
		t.Fatal(err)
	}
	// Recovery restores at least the pre-crash high-water; the
	// attachment-rebuild transaction it commits afterwards may advance it.
	if got := env2.Txns.StampHW(); got < hw {
		t.Fatalf("recovered stamp high-water %d, want >= %d", got, hw)
	}
	r2, err := env2.OpenRelationByName("t")
	if err != nil {
		t.Fatal(err)
	}
	ro := env2.BeginReadOnly()
	if got, err := r2.Fetch(ro, k, nil, nil); err != nil || got[1].S != "bbbb" {
		t.Fatalf("post-restart snapshot reads %v %v", got, err)
	}
	if err := ro.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := env2.Begin()
	if _, err := r2.Update(tx2, k, rec(1, "cccc")); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := env2.Txns.StampHW(); got <= hw {
		t.Fatalf("post-restart commit stamped %d, want above restored high-water %d", got, hw)
	}
}
