// Package heap implements the heap-file relation storage method: records
// stored in slotted pages through the shared buffer pool, with record
// addresses (page, slot) as the record keys.
//
// Pages are addressed by logical page numbers local to the relation and
// mapped to physical disk pages through an in-memory page table, so the
// record addresses named in log records replay deterministically at
// restart regardless of how relations interleaved their allocations.
// Deleted slots are tombstoned in place (bytes retained), which makes
// log-driven undo of a delete a flag flip rather than a data rewrite.
package heap

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"dmx/internal/buffer"
	"dmx/internal/core"
	"dmx/internal/expr"
	"dmx/internal/pagefile"
	"dmx/internal/sm/smutil"
	"dmx/internal/txn"
	"dmx/internal/types"
)

// Name is the DDL name of the storage method.
const Name = "heap"

func init() {
	core.RegisterStorageMethod(&core.StorageOps{
		ID:               core.SMHeap,
		Name:             Name,
		SnapshotContents: true,
		ValidateAttrs: func(schema *types.Schema, attrs core.AttrList) error {
			return attrs.CheckAllowed(Name, "fillpercent")
		},
		Create: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, attrs core.AttrList) ([]byte, error) {
			return nil, nil
		},
		Open: func(env *core.Env, rd *core.RelDesc) (core.StorageInstance, error) {
			return newStore(env, rd), nil
		},
	})
}

// Page layout (pagefile.PageSize bytes):
//
//	0..2   nslots (uint16)
//	2..4   freeHigh (uint16): lowest byte offset of the data region
//	4..    slot directory, 8 bytes per slot:
//	       off (uint16) | cap (uint16) | len (uint16) | flags (uint8) | pad
//
// Record data grows downward from the page end; the directory grows upward.
const (
	pageHdrSize  = 4
	slotDirEntry = 8
	flagDeleted  = 1
)

func slotOffset(slot int) int { return pageHdrSize + slot*slotDirEntry }

type rid struct {
	page uint32
	slot uint32
}

func encodeRID(r rid) types.Key {
	k := make(types.Key, 8)
	binary.BigEndian.PutUint32(k, r.page)
	binary.BigEndian.PutUint32(k[4:], r.slot)
	return k
}

func decodeRID(k types.Key) (rid, error) {
	if len(k) != 8 {
		return rid{}, fmt.Errorf("heap: bad record key length %d", len(k))
	}
	return rid{page: binary.BigEndian.Uint32(k), slot: binary.BigEndian.Uint32(k[4:])}, nil
}

// store is the heap storage instance for one relation.
type store struct {
	env *core.Env
	rd  *core.RelDesc

	mu       sync.Mutex
	pages    []pagefile.PageID // logical page number -> physical page
	free     []int             // free bytes per logical page
	nrecords int
}

func newStore(env *core.Env, rd *core.RelDesc) *store {
	return &store{env: env, rd: rd}
}

// ensurePage extends the page table so logical page p exists.
func (s *store) ensurePage(p uint32) error {
	for uint32(len(s.pages)) <= p {
		f, err := s.env.Pool.NewPage()
		if err != nil {
			return err
		}
		binary.BigEndian.PutUint16(f.Data[2:], uint16(pagefile.PageSize))
		if err := s.env.Pool.Unpin(f, true); err != nil {
			return err
		}
		s.pages = append(s.pages, f.ID)
		s.free = append(s.free, pagefile.PageSize-pageHdrSize)
	}
	return nil
}

// withPage pins the logical page and runs fn on its frame. A write-intent
// pin marks the frame dirty even when fn fails: a mutator may have changed
// bytes before erroring (e.g. a log append refused after the slot was
// written), and an unchanged page written back is harmless while a changed
// one silently dropped is not.
//
// tx is the transaction charged for buffer faults in its span trace; nil
// on recovery and replay paths, which run with no transaction.
func (s *store) withPage(tx *txn.Txn, p uint32, write bool, fn func(f *buffer.Frame) error) error {
	if err := s.ensurePage(p); err != nil {
		return err
	}
	tr := tx.Trace()
	if !tr.Detailed() {
		f, err := s.env.Pool.Pin(s.pages[p])
		if err != nil {
			return err
		}
		ferr := fn(f)
		uerr := s.env.Pool.Unpin(f, write)
		if ferr != nil {
			return ferr
		}
		return uerr
	}
	start := time.Now()
	f, st, err := s.env.Pool.PinWithStats(s.pages[p])
	if st.Miss || err != nil {
		op := "pin"
		if st.Evicted {
			op = "pin+evict"
		}
		tr.Event("buffer.miss", s.rd.Name, op, start, time.Since(start), err)
	}
	if err != nil {
		return err
	}
	ferr := fn(f)
	uerr := s.env.Pool.Unpin(f, write)
	if ferr != nil {
		return ferr
	}
	return uerr
}

// pageFor returns a logical page with room for an encLen-byte record,
// extending the relation when none has space. Caller holds s.mu.
func (s *store) pageFor(encLen int) (int, error) {
	need := encLen + slotDirEntry
	if need > pagefile.PageSize-pageHdrSize {
		return 0, fmt.Errorf("heap: record of %d bytes exceeds page capacity", encLen)
	}
	for p := len(s.pages) - 1; p >= 0; p-- { // newest pages fill first
		if s.free[p] >= need {
			return p, nil
		}
	}
	if err := s.ensurePage(uint32(len(s.pages))); err != nil {
		return 0, err
	}
	return len(s.pages) - 1, nil
}

// logStamped appends the modification record while f is pinned (pinned
// frames cannot be evicted) and stamps the frame with the record's LSN, so
// the buffer pool forces the log up to it before the page can reach disk
// (write-ahead rule under the steal policy).
func (s *store) logStamped(tx *txn.Txn, f *buffer.Frame, p core.ModPayload) error {
	lsn, err := core.LogSMLSN(tx, s.rd, p)
	if err != nil {
		return err
	}
	s.env.Pool.StampLSN(f, lsn)
	return nil
}

// placeAtLocked stores enc at the given rid on the pinned frame, extending
// the slot directory as needed. Caller holds s.mu.
func (s *store) placeAtLocked(f *buffer.Frame, r rid, enc []byte) (rid, error) {
	nslots := int(binary.BigEndian.Uint16(f.Data))
	freeHigh := int(binary.BigEndian.Uint16(f.Data[2:]))
	slot := int(r.slot)
	// Extend directory through slot (intermediate slots become tombstones).
	newSlots := nslots
	if slot >= nslots {
		newSlots = slot + 1
	}
	dirEnd := slotOffset(newSlots)
	newFreeHigh := freeHigh - len(enc)
	if newFreeHigh < dirEnd {
		return rid{}, fmt.Errorf("heap: page %d overflow placing %d bytes", r.page, len(enc))
	}
	for i := nslots; i < newSlots; i++ {
		off := slotOffset(i)
		for j := 0; j < slotDirEntry; j++ {
			f.Data[off+j] = 0
		}
		f.Data[off+6] = flagDeleted
	}
	copy(f.Data[newFreeHigh:], enc)
	so := slotOffset(slot)
	binary.BigEndian.PutUint16(f.Data[so:], uint16(newFreeHigh))
	binary.BigEndian.PutUint16(f.Data[so+2:], uint16(len(enc)))
	binary.BigEndian.PutUint16(f.Data[so+4:], uint16(len(enc)))
	f.Data[so+6] = 0
	binary.BigEndian.PutUint16(f.Data, uint16(newSlots))
	binary.BigEndian.PutUint16(f.Data[2:], uint16(newFreeHigh))
	consumed := len(enc) + (newSlots-nslots)*slotDirEntry
	s.free[r.page] -= consumed
	s.nrecords++
	return r, nil
}

// setDeleted flips the tombstone flag of a slot.
func (s *store) setDeleted(r rid, deleted bool) error {
	return s.withPage(nil, r.page, true, func(f *buffer.Frame) error {
		nslots := int(binary.BigEndian.Uint16(f.Data))
		if int(r.slot) >= nslots {
			return fmt.Errorf("heap: %w: slot %d of page %d", core.ErrNotFound, r.slot, r.page)
		}
		so := slotOffset(int(r.slot))
		was := f.Data[so+6]&flagDeleted != 0
		if was == deleted {
			return nil
		}
		if deleted {
			f.Data[so+6] |= flagDeleted
			s.nrecords--
		} else {
			f.Data[so+6] &^= flagDeleted
			s.nrecords++
		}
		return nil
	})
}

// overwriteAt rewrites the record bytes of an existing slot in place.
func (s *store) overwriteAt(r rid, enc []byte) error {
	return s.withPage(nil, r.page, true, func(f *buffer.Frame) error {
		so := slotOffset(int(r.slot))
		capBytes := int(binary.BigEndian.Uint16(f.Data[so+2:]))
		if len(enc) > capBytes {
			return fmt.Errorf("heap: overwrite of %d bytes exceeds slot capacity %d", len(enc), capBytes)
		}
		off := int(binary.BigEndian.Uint16(f.Data[so:]))
		copy(f.Data[off:], enc)
		binary.BigEndian.PutUint16(f.Data[so+4:], uint16(len(enc)))
		return nil
	})
}

// Insert implements core.StorageInstance. The record is placed and its
// log record appended within one pin session so the frame carries the
// record's LSN before it can be stolen.
func (s *store) Insert(tx *txn.Txn, rec types.Record) (types.Key, error) {
	enc := rec.AppendEncode(nil)
	s.mu.Lock()
	defer s.mu.Unlock()
	page, err := s.pageFor(len(enc))
	if err != nil {
		return nil, err
	}
	var key types.Key
	err = s.withPage(tx, uint32(page), true, func(f *buffer.Frame) error {
		nslots := uint32(binary.BigEndian.Uint16(f.Data))
		r, perr := s.placeAtLocked(f, rid{page: uint32(page), slot: nslots}, enc)
		if perr != nil {
			return perr
		}
		key = encodeRID(r)
		return s.logStamped(tx, f, core.ModPayload{Op: core.ModInsert, Key: key, New: rec})
	})
	if err != nil {
		return nil, err
	}
	return key, nil
}

// Update implements core.StorageInstance: in place when the new record
// fits the slot, otherwise tombstone-and-move to a new record address.
func (s *store) Update(tx *txn.Txn, key types.Key, oldRec, newRec types.Record) (types.Key, error) {
	r, err := decodeRID(key)
	if err != nil {
		return nil, err
	}
	enc := newRec.AppendEncode(nil)
	s.mu.Lock()
	defer s.mu.Unlock()
	fits := false
	err = s.withPage(tx, r.page, true, func(f *buffer.Frame) error {
		nslots := int(binary.BigEndian.Uint16(f.Data))
		if int(r.slot) >= nslots {
			return fmt.Errorf("heap: %w: slot %d of page %d", core.ErrNotFound, r.slot, r.page)
		}
		so := slotOffset(int(r.slot))
		if f.Data[so+6]&flagDeleted != 0 {
			return fmt.Errorf("heap: %w: record %v deleted", core.ErrNotFound, r)
		}
		if len(enc) > int(binary.BigEndian.Uint16(f.Data[so+2:])) {
			return nil // no room: fall through to tombstone-and-move
		}
		fits = true
		off := int(binary.BigEndian.Uint16(f.Data[so:]))
		copy(f.Data[off:], enc)
		binary.BigEndian.PutUint16(f.Data[so+4:], uint16(len(enc)))
		return s.logStamped(tx, f, core.ModPayload{Op: core.ModUpdate, Key: key, NewKey: key, Old: oldRec, New: newRec})
	})
	if err != nil {
		return nil, err
	}
	if fits {
		return key, nil
	}
	// Tombstone-and-move touches two pages, so the single-frame
	// log-while-pinned session does not apply. The new address is
	// computable without mutating anything (next slot of a page with
	// room), so append the log record first — pure write-ahead — then
	// apply both page mutations stamped with its LSN.
	page, err := s.pageFor(len(enc))
	if err != nil {
		return nil, err
	}
	var newR rid
	err = s.withPage(tx, uint32(page), false, func(f *buffer.Frame) error {
		newR = rid{page: uint32(page), slot: uint32(binary.BigEndian.Uint16(f.Data))}
		return nil
	})
	if err != nil {
		return nil, err
	}
	newKey := encodeRID(newR)
	lsn, err := core.LogSMLSN(tx, s.rd, core.ModPayload{Op: core.ModUpdate, Key: key, NewKey: newKey, Old: oldRec, New: newRec})
	if err != nil {
		return nil, err
	}
	err = s.withPage(tx, r.page, true, func(f *buffer.Frame) error {
		so := slotOffset(int(r.slot))
		f.Data[so+6] |= flagDeleted
		s.nrecords--
		s.env.Pool.StampLSN(f, lsn)
		return nil
	})
	if err != nil {
		return nil, err
	}
	err = s.withPage(tx, newR.page, true, func(f *buffer.Frame) error {
		if _, perr := s.placeAtLocked(f, newR, enc); perr != nil {
			return perr
		}
		s.env.Pool.StampLSN(f, lsn)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return newKey, nil
}

// Delete implements core.StorageInstance: the slot is tombstoned in place,
// logged and stamped within the same pin session.
func (s *store) Delete(tx *txn.Txn, key types.Key, oldRec types.Record) error {
	r, err := decodeRID(key)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.withPage(tx, r.page, true, func(f *buffer.Frame) error {
		nslots := int(binary.BigEndian.Uint16(f.Data))
		if int(r.slot) >= nslots {
			return fmt.Errorf("heap: %w: slot %d of page %d", core.ErrNotFound, r.slot, r.page)
		}
		so := slotOffset(int(r.slot))
		if f.Data[so+6]&flagDeleted == 0 {
			f.Data[so+6] |= flagDeleted
			s.nrecords--
		}
		return s.logStamped(tx, f, core.ModPayload{Op: core.ModDelete, Key: key, Old: oldRec})
	})
}

// FetchByKey implements core.StorageInstance. The filter predicate is
// evaluated while the record is in the buffer pool; only qualifying
// records are materialised for the caller.
func (s *store) FetchByKey(tx *txn.Txn, key types.Key, fields []int, filter *expr.Expr) (types.Record, error) {
	r, err := decodeRID(key)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	var rec types.Record
	err = s.withPage(tx, r.page, false, func(f *buffer.Frame) error {
		nslots := int(binary.BigEndian.Uint16(f.Data))
		if int(r.slot) >= nslots {
			return fmt.Errorf("heap: %w: slot %d of page %d", core.ErrNotFound, r.slot, r.page)
		}
		so := slotOffset(int(r.slot))
		if f.Data[so+6]&flagDeleted != 0 {
			return fmt.Errorf("heap: %w: record %v deleted", core.ErrNotFound, r)
		}
		off := int(binary.BigEndian.Uint16(f.Data[so:]))
		n := int(binary.BigEndian.Uint16(f.Data[so+4:]))
		body := f.Data[off : off+n]
		if filter != nil {
			// Isolate the filter's fields while the record is buffer
			// resident; rejected records are never materialised.
			probe, _, derr := types.DecodeRecordFields(body, expr.FieldsUsed(filter))
			if derr != nil {
				return derr
			}
			match, ferr := s.env.Eval.EvalBool(filter, probe, nil)
			if ferr != nil {
				return ferr
			}
			if !match {
				return core.ErrFiltered
			}
		}
		var derr error
		if fields != nil {
			rec, _, derr = types.DecodeRecordFields(body, fields)
		} else {
			rec, _, derr = types.DecodeRecord(body)
		}
		return derr
	})
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if fields != nil {
		rec = rec.Project(fields)
	}
	return rec, nil
}

// OpenScan implements core.StorageInstance: record-address order.
func (s *store) OpenScan(tx *txn.Txn, opts core.ScanOptions) (core.Scan, error) {
	sc := &heapScan{store: s, tx: tx, opts: opts, nextRID: startRID(opts.Start)}
	if opts.Filter != nil {
		sc.filterFields = expr.FieldsUsed(opts.Filter)
	}
	return sc, nil
}

func startRID(k types.Key) rid {
	if k == nil {
		return rid{}
	}
	r, err := decodeRID(k)
	if err != nil {
		return rid{}
	}
	return r
}

// EstimateCost implements core.StorageInstance: a heap scan reads every
// page of the relation.
func (s *store) EstimateCost(req core.CostRequest) core.CostEstimate {
	s.mu.Lock()
	npages := len(s.pages)
	n := s.nrecords
	s.mu.Unlock()
	return core.CostEstimate{
		Usable:      true,
		IO:          float64(npages),
		CPU:         float64(n),
		Selectivity: smutil.EstimateSelectivity(req.Conjuncts),
	}
}

// RecordCount implements core.StorageInstance.
func (s *store) RecordCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nrecords
}

// PageCount reports the number of pages (for the experiment harness).
func (s *store) PageCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pages)
}

// ApplyLogged implements core.StorageInstance.
func (s *store) ApplyLogged(payload []byte, undo bool) error {
	p, err := core.DecodeMod(payload)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch p.Op {
	case core.ModInsert:
		r, err := decodeRID(p.Key)
		if err != nil {
			return err
		}
		if undo {
			return s.setDeleted(r, true)
		}
		return s.redoPlace(r, p.New)
	case core.ModDelete:
		r, err := decodeRID(p.Key)
		if err != nil {
			return err
		}
		return s.setDeleted(r, !undo)
	case core.ModUpdate:
		oldR, err := decodeRID(p.Key)
		if err != nil {
			return err
		}
		newR, err := decodeRID(p.NewKey)
		if err != nil {
			return err
		}
		if oldR == newR {
			rec := p.New
			if undo {
				rec = p.Old
			}
			return s.redoOverwrite(oldR, rec.AppendEncode(nil))
		}
		if undo {
			if err := s.setDeleted(newR, true); err != nil {
				return err
			}
			return s.setDeleted(oldR, false)
		}
		if err := s.setDeleted(oldR, true); err != nil {
			return err
		}
		return s.redoPlace(newR, p.New)
	default:
		return fmt.Errorf("heap: bad logged op %v", p.Op)
	}
}

// redoPlace re-places a record at its logged address, tolerating replays
// over state that already contains it (idempotent for repeated recovery).
func (s *store) redoPlace(r rid, rec types.Record) error {
	exists := false
	err := s.withPage(nil, r.page, false, func(f *buffer.Frame) error {
		nslots := int(binary.BigEndian.Uint16(f.Data))
		if int(r.slot) < nslots {
			so := slotOffset(int(r.slot))
			if binary.BigEndian.Uint16(f.Data[so+2:]) > 0 {
				exists = true
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if exists {
		return s.setDeleted(r, false)
	}
	enc := rec.AppendEncode(nil)
	return s.withPage(nil, r.page, true, func(f *buffer.Frame) error {
		_, err := s.placeAtLocked(f, r, enc)
		return err
	})
}

// redoOverwrite rewrites a slot's record bytes during log replay. Replay
// can meet a slot smaller than it was at run time: a checkpoint snapshot
// re-places each record at its current size, so a slot that once held a
// larger record (in-place shrinking update) loses the headroom a replayed
// earlier overwrite needs. The record is then moved to fresh space on the
// same page with the slot repointed — the record address stays stable.
func (s *store) redoOverwrite(r rid, enc []byte) error {
	return s.withPage(nil, r.page, true, func(f *buffer.Frame) error {
		nslots := int(binary.BigEndian.Uint16(f.Data))
		so := slotOffset(int(r.slot))
		if int(r.slot) >= nslots {
			_, err := s.placeAtLocked(f, r, enc)
			return err
		}
		capBytes := int(binary.BigEndian.Uint16(f.Data[so+2:]))
		if len(enc) <= capBytes {
			off := int(binary.BigEndian.Uint16(f.Data[so:]))
			copy(f.Data[off:], enc)
			binary.BigEndian.PutUint16(f.Data[so+4:], uint16(len(enc)))
			return nil
		}
		freeHigh := int(binary.BigEndian.Uint16(f.Data[2:]))
		newFreeHigh := freeHigh - len(enc)
		if newFreeHigh < slotOffset(nslots) {
			return fmt.Errorf("heap: page %d overflow re-placing %d bytes", r.page, len(enc))
		}
		copy(f.Data[newFreeHigh:], enc)
		binary.BigEndian.PutUint16(f.Data[so:], uint16(newFreeHigh))
		binary.BigEndian.PutUint16(f.Data[so+2:], uint16(len(enc)))
		binary.BigEndian.PutUint16(f.Data[so+4:], uint16(len(enc)))
		binary.BigEndian.PutUint16(f.Data[2:], uint16(newFreeHigh))
		s.free[r.page] -= len(enc)
		return nil
	})
}

var _ core.StorageInstance = (*store)(nil)

// heapScan is a key-sequential access in record-address order.
type heapScan struct {
	store        *store
	tx           *txn.Txn // buffer faults during the scan charge its trace
	opts         core.ScanOptions
	filterFields []int // fields the filter needs, isolated before decoding
	nextRID      rid   // first candidate to examine
	closed       bool
}

// Next implements core.Scan. Each page is pinned once and its slots are
// filtered while buffer resident; only qualifying records are materialised
// and returned.
func (sc *heapScan) Next() (types.Key, types.Record, bool, error) {
	if sc.closed {
		return nil, nil, false, fmt.Errorf("heap: scan is closed")
	}
	s := sc.store
	for {
		s.mu.Lock()
		if int(sc.nextRID.page) >= len(s.pages) {
			s.mu.Unlock()
			return nil, nil, false, nil
		}
		page := sc.nextRID.page
		var outKey types.Key
		var outRec types.Record
		found := false
		ended := false
		err := s.withPage(sc.tx, page, false, func(f *buffer.Frame) error {
			nslots := int(binary.BigEndian.Uint16(f.Data))
			for int(sc.nextRID.slot) < nslots {
				cur := sc.nextRID
				key := encodeRID(cur)
				if sc.opts.End != nil && key.Compare(sc.opts.End) >= 0 {
					ended = true
					return nil
				}
				sc.nextRID = rid{page: cur.page, slot: cur.slot + 1}
				so := slotOffset(int(cur.slot))
				if f.Data[so+6]&flagDeleted != 0 {
					continue
				}
				off := int(binary.BigEndian.Uint16(f.Data[so:]))
				n := int(binary.BigEndian.Uint16(f.Data[so+4:]))
				body := f.Data[off : off+n]
				// Early filtering: only the fields the predicate needs
				// are isolated from the buffer-resident record;
				// unqualified entries are skipped without materialising
				// the rest.
				if sc.opts.Filter != nil {
					probe, _, derr := types.DecodeRecordFields(body, sc.filterFields)
					if derr != nil {
						return derr
					}
					match, ferr := s.env.Eval.EvalBool(sc.opts.Filter, probe, sc.opts.Params)
					if ferr != nil {
						return ferr
					}
					if !match {
						continue
					}
				}
				var derr error
				if sc.opts.Fields != nil {
					outRec, _, derr = types.DecodeRecordFields(body, sc.opts.Fields)
				} else {
					outRec, _, derr = types.DecodeRecord(body)
				}
				if derr != nil {
					return derr
				}
				outKey = key
				found = true
				return nil
			}
			sc.nextRID = rid{page: page + 1}
			return nil
		})
		s.mu.Unlock()
		if err != nil {
			return nil, nil, false, err
		}
		if ended {
			return nil, nil, false, nil
		}
		if found {
			if sc.opts.Fields != nil {
				outRec = outRec.Project(sc.opts.Fields)
			}
			return outKey, outRec, true, nil
		}
	}
}

// Pos implements core.Scan.
func (sc *heapScan) Pos() core.ScanPos {
	return core.ScanPos(encodeRID(sc.nextRID))
}

// Restore implements core.Scan.
func (sc *heapScan) Restore(pos core.ScanPos) error {
	r, err := decodeRID(types.Key(pos))
	if err != nil {
		return err
	}
	sc.nextRID = r
	return nil
}

// Close implements core.Scan.
func (sc *heapScan) Close() error {
	sc.closed = true
	return nil
}
