// Package heap implements the heap-file relation storage method: records
// stored in slotted pages through the shared buffer pool, with record
// addresses (page, slot) as the record keys.
//
// Pages are addressed by logical page numbers local to the relation and
// mapped to physical disk pages through an in-memory page table, so the
// record addresses named in log records replay deterministically at
// restart regardless of how relations interleaved their allocations.
// Deleted slots are tombstoned in place (bytes retained), which makes
// log-driven undo of a delete a flag flip rather than a data rewrite.
package heap

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"dmx/internal/buffer"
	"dmx/internal/core"
	"dmx/internal/expr"
	"dmx/internal/pagefile"
	"dmx/internal/sm/smutil"
	"dmx/internal/txn"
	"dmx/internal/types"
	"dmx/internal/wal"
)

// Name is the DDL name of the storage method.
const Name = "heap"

func init() {
	core.RegisterStorageMethod(&core.StorageOps{
		ID:               core.SMHeap,
		Name:             Name,
		SnapshotContents: true,
		MVCC:             true,
		ValidateAttrs: func(schema *types.Schema, attrs core.AttrList) error {
			return attrs.CheckAllowed(Name, "fillpercent")
		},
		Create: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, attrs core.AttrList) ([]byte, error) {
			return nil, nil
		},
		Open: func(env *core.Env, rd *core.RelDesc) (core.StorageInstance, error) {
			return newStore(env, rd), nil
		},
	})
}

// Page layout (pagefile.PageSize bytes):
//
//	0..2   nslots (uint16)
//	2..4   freeHigh (uint16): lowest byte offset of the data region
//	4..    slot directory, 8 bytes per slot:
//	       off (uint16) | cap (uint16) | len (uint16) | flags (uint8) | pad
//
// Record data grows downward from the page end; the directory grows upward.
const (
	pageHdrSize  = 4
	slotDirEntry = 8
	flagDeleted  = 1
)

func slotOffset(slot int) int { return pageHdrSize + slot*slotDirEntry }

type rid struct {
	page uint32
	slot uint32
}

func encodeRID(r rid) types.Key {
	k := make(types.Key, 8)
	binary.BigEndian.PutUint32(k, r.page)
	binary.BigEndian.PutUint32(k[4:], r.slot)
	return k
}

func decodeRID(k types.Key) (rid, error) {
	if len(k) != 8 {
		return rid{}, fmt.Errorf("heap: bad record key length %d", len(k))
	}
	return rid{page: binary.BigEndian.Uint32(k), slot: binary.BigEndian.Uint32(k[4:])}, nil
}

// store is the heap storage instance for one relation.
type store struct {
	env *core.Env
	rd  *core.RelDesc

	mu       sync.Mutex
	pages    []pagefile.PageID // logical page number -> physical page
	free     []int             // free bytes per logical page
	nrecords int
	vers     map[rid]*verMeta // MVCC version chains, newest first (nil until a write stamps one)
}

// verMeta is one entry of a record address's version chain: the state
// change a writer applied at that rid, newest first. The entry's payload
// is not stored here — it is reconstructed on demand from the WAL record
// at lsn (New for the version the entry created, Old of the oldest entry
// for the pre-chain version), so the chain costs a few words per
// uncommitted or recently committed write.
//
// stamp is 0 while the writer is uncommitted and becomes its commit
// stamp when EventCommit fires (after the commit record is durable,
// before the stamp is published into the high-water). An aborting writer
// pops its entries during undo, so stamp-0 entries never outlive their
// transaction.
type verMeta struct {
	writer wal.TxnID
	lsn    wal.LSN
	stamp  uint64
	born   bool // this entry created the record at this rid (insert, moved-in update)
	gone   bool // this entry removed the record at this rid (delete, moved-out update)
	prev   *verMeta
}

func newStore(env *core.Env, rd *core.RelDesc) *store {
	return &store{env: env, rd: rd}
}

// ensurePage extends the page table so logical page p exists.
func (s *store) ensurePage(p uint32) error {
	for uint32(len(s.pages)) <= p {
		f, err := s.env.Pool.NewPage()
		if err != nil {
			return err
		}
		binary.BigEndian.PutUint16(f.Data[2:], uint16(pagefile.PageSize))
		if err := s.env.Pool.Unpin(f, true); err != nil {
			return err
		}
		s.pages = append(s.pages, f.ID)
		s.free = append(s.free, pagefile.PageSize-pageHdrSize)
	}
	return nil
}

// withPage pins the logical page and runs fn on its frame. A write-intent
// pin marks the frame dirty even when fn fails: a mutator may have changed
// bytes before erroring (e.g. a log append refused after the slot was
// written), and an unchanged page written back is harmless while a changed
// one silently dropped is not.
//
// tx is the transaction charged for buffer faults in its span trace; nil
// on recovery and replay paths, which run with no transaction.
func (s *store) withPage(tx *txn.Txn, p uint32, write bool, fn func(f *buffer.Frame) error) error {
	if err := s.ensurePage(p); err != nil {
		return err
	}
	tr := tx.Trace()
	acct := tx.Acct()
	if !tr.Detailed() {
		if acct == nil {
			f, err := s.env.Pool.Pin(s.pages[p])
			if err != nil {
				return err
			}
			ferr := fn(f)
			uerr := s.env.Pool.Unpin(f, write)
			if ferr != nil {
				return ferr
			}
			return uerr
		}
		f, st, err := s.env.Pool.PinWithStats(s.pages[p])
		chargePin(acct, st)
		if err != nil {
			return err
		}
		ferr := fn(f)
		uerr := s.env.Pool.Unpin(f, write)
		if ferr != nil {
			return ferr
		}
		return uerr
	}
	start := time.Now()
	f, st, err := s.env.Pool.PinWithStats(s.pages[p])
	chargePin(acct, st)
	if st.Miss || err != nil {
		op := "pin"
		if st.Evicted {
			op = "pin+evict"
		}
		tr.Event("buffer.miss", s.rd.Name, op, start, time.Since(start), err)
	}
	if err != nil {
		return err
	}
	ferr := fn(f)
	uerr := s.env.Pool.Unpin(f, write)
	if ferr != nil {
		return ferr
	}
	return uerr
}

// chargePin books one page pin against the transaction's ledger.
func chargePin(acct *txn.Stats, st buffer.PinStats) {
	if acct == nil {
		return
	}
	if st.Miss {
		acct.BufferMisses.Add(1)
	} else {
		acct.BufferHits.Add(1)
	}
}

// pageFor returns a logical page with room for an encLen-byte record,
// extending the relation when none has space. Caller holds s.mu.
func (s *store) pageFor(encLen int) (int, error) {
	need := encLen + slotDirEntry
	if need > pagefile.PageSize-pageHdrSize {
		return 0, fmt.Errorf("heap: record of %d bytes exceeds page capacity", encLen)
	}
	for p := len(s.pages) - 1; p >= 0; p-- { // newest pages fill first
		if s.free[p] >= need {
			return p, nil
		}
	}
	if err := s.ensurePage(uint32(len(s.pages))); err != nil {
		return 0, err
	}
	return len(s.pages) - 1, nil
}

// logStamped appends the modification record while f is pinned (pinned
// frames cannot be evicted) and stamps the frame with the record's LSN, so
// the buffer pool forces the log up to it before the page can reach disk
// (write-ahead rule under the steal policy).
func (s *store) logStamped(tx *txn.Txn, f *buffer.Frame, p core.ModPayload) (wal.LSN, error) {
	lsn, err := core.LogSMLSN(tx, s.rd, p)
	if err != nil {
		return 0, err
	}
	s.env.Pool.StampLSN(f, lsn)
	return lsn, nil
}

// pendingVers accumulates the version-chain entries one transaction
// created in one heap store, to be stamped in bulk at commit.
type pendingVers struct {
	entries []*verMeta
}

// pushVersion prepends a chain entry at r and registers it for commit
// stamping. The chain below is pruned past the newest entry every open
// snapshot can already see — nothing ever walks below that — which
// bounds chain length even under long-running readers once the oldest
// snapshot advances. Caller holds s.mu.
func (s *store) pushVersion(tx *txn.Txn, r rid, lsn wal.LSN, born, gone bool) {
	if s.vers == nil {
		s.vers = make(map[rid]*verMeta)
	}
	e := &verMeta{writer: tx.ID(), lsn: lsn, born: born, gone: gone, prev: s.vers[r]}
	s.vers[r] = e
	horizon := s.env.Txns.OldestSnapshotHW()
	for p := e; p != nil; p = p.prev {
		if p.stamp != 0 && p.stamp <= horizon {
			if p.prev != nil {
				p.prev = nil
				s.env.Obs.MVCC.Pruned.Inc()
			}
			break
		}
	}
	s.notePending(tx, e)
}

// notePending queues e for stamping when tx commits. The first entry per
// (transaction, store) subscribes to EventCommit, which fires after the
// commit record is durable and before the stamp is published into the
// high-water — so by the time any snapshot's high-water covers the
// stamp, every entry carries it.
func (s *store) notePending(tx *txn.Txn, e *verMeta) {
	key := fmt.Sprintf("heap.pending:%d", s.rd.RelID)
	stash := tx.Stash()
	if lst, ok := stash[key].(*pendingVers); ok {
		lst.entries = append(lst.entries, e)
		return
	}
	lst := &pendingVers{entries: []*verMeta{e}}
	stash[key] = lst
	// Subscribe (not Defer): registration happens once, outside s.mu
	// contention at commit time. Entries popped by undo before commit may
	// linger in the list; stamping an unlinked entry is harmless.
	_ = tx.Subscribe(txn.EventCommit, func(tx2 *txn.Txn, _ string) error {
		stamp := tx2.CommitStamp()
		if stamp == 0 {
			return nil
		}
		s.mu.Lock()
		for _, e := range lst.entries {
			e.stamp = stamp
		}
		s.mu.Unlock()
		return nil
	})
}

// unchain pops the head of r's version chain if it is uncommitted: undo
// is removing the state change that pushed it. Only the owning
// transaction can hold an uncommitted entry at r (writers keep 2PL, so
// one X lock holder per record), and undo applies its records newest
// first, so the stamp-0 head is always the entry being undone. Restart
// recovery runs against fresh stores with empty chains and no-ops here.
// Caller holds s.mu.
func (s *store) unchain(r rid) {
	head := s.vers[r]
	if head == nil || head.stamp != 0 {
		return
	}
	if head.prev == nil {
		delete(s.vers, r)
	} else {
		s.vers[r] = head.prev
	}
}

// versionFor resolves which version of the record at r a snapshot sees.
// usePage means current page state is the visible version (also the
// answer for chainless records: a record with no chain predates every
// tracked write and is frozen-visible). Otherwise the visible version
// was reconstructed from the WAL: present=false means the record does
// not exist in the snapshot, else rec is its value. Caller holds s.mu.
func (s *store) versionFor(tx *txn.Txn, r rid, snap *txn.Snapshot) (usePage bool, rec types.Record, present bool, err error) {
	head := s.vers[r]
	if head == nil {
		return true, nil, true, nil
	}
	e := head
	for e != nil && !snap.Visible(e.stamp) {
		e = e.prev
	}
	if e == head {
		return true, nil, true, nil
	}
	s.env.Obs.MVCC.ChainWalks.Inc()
	if st := tx.Acct(); st != nil {
		st.ChainWalks.Add(1)
	}
	if e == nil {
		// Nothing in the chain is visible: the snapshot predates every
		// tracked write at r. The pre-chain version is the before-image
		// of the oldest entry — unless that entry created the record,
		// in which case there was nothing before it.
		oldest := head
		for oldest.prev != nil {
			oldest = oldest.prev
		}
		if oldest.born {
			return false, nil, false, nil
		}
		rec, err = s.versionPayload(oldest.lsn, true)
		return false, rec, err == nil, err
	}
	if e.gone {
		return false, nil, false, nil
	}
	rec, err = s.versionPayload(e.lsn, false)
	return false, rec, err == nil, err
}

// versionPayload reconstructs a record version from the WAL record at
// lsn: the after-image (old=false) for the version an entry created, or
// the before-image (old=true) below the oldest chain entry. Checkpoints
// cannot truncate records a chain still references (they refuse to run
// while snapshots are open and freeze all chains afterwards), so the
// lookup only fails on corruption.
func (s *store) versionPayload(lsn wal.LSN, old bool) (types.Record, error) {
	logRec, ok := s.env.Log.At(lsn)
	if !ok {
		return nil, fmt.Errorf("heap: version log record %d unavailable", lsn)
	}
	p, err := core.DecodeMod(logRec.Payload)
	if err != nil {
		return nil, err
	}
	s.env.Obs.MVCC.Reconstructions.Inc()
	if old {
		return p.Old, nil
	}
	return p.New, nil
}

// SnapshotVisible implements core.VersionedStorage: whether the record
// at key exists in tx's snapshot. Access-path results are filtered
// through it on the lock-free read path.
func (s *store) SnapshotVisible(tx *txn.Txn, key types.Key) (bool, error) {
	r, err := decodeRID(key)
	if err != nil {
		return false, err
	}
	snap := tx.Snapshot()
	if snap == nil {
		return false, fmt.Errorf("heap: SnapshotVisible requires a snapshot transaction")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(r.page) >= len(s.pages) {
		return false, nil
	}
	usePage, _, present, err := s.versionFor(tx, r, snap)
	if err != nil || !usePage {
		return present && err == nil, err
	}
	visible := false
	err = s.withPage(tx, r.page, false, func(f *buffer.Frame) error {
		nslots := int(binary.BigEndian.Uint16(f.Data))
		if int(r.slot) < nslots {
			so := slotOffset(int(r.slot))
			visible = f.Data[so+6]&flagDeleted == 0
		}
		return nil
	})
	return visible, err
}

// FreezeVersions implements core.VersionFreezer: a truncating checkpoint
// (writers quiesced, no snapshot open) drops every chain. Page state,
// which the checkpoint just captured, becomes the frozen version all
// future snapshots start from, and no chain entry outlives the WAL
// records it references.
func (s *store) FreezeVersions() {
	s.mu.Lock()
	if len(s.vers) > 0 {
		s.env.Obs.MVCC.Frozen.Add(int64(len(s.vers)))
	}
	s.vers = nil
	s.mu.Unlock()
}

// VersionChainLen reports the version-chain length at key (tests).
func (s *store) VersionChainLen(key types.Key) int {
	r, err := decodeRID(key)
	if err != nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for e := s.vers[r]; e != nil; e = e.prev {
		n++
	}
	return n
}

// placeAtLocked stores enc at the given rid on the pinned frame, extending
// the slot directory as needed. Caller holds s.mu.
func (s *store) placeAtLocked(f *buffer.Frame, r rid, enc []byte) (rid, error) {
	nslots := int(binary.BigEndian.Uint16(f.Data))
	freeHigh := int(binary.BigEndian.Uint16(f.Data[2:]))
	slot := int(r.slot)
	// Extend directory through slot (intermediate slots become tombstones).
	newSlots := nslots
	if slot >= nslots {
		newSlots = slot + 1
	}
	dirEnd := slotOffset(newSlots)
	newFreeHigh := freeHigh - len(enc)
	if newFreeHigh < dirEnd {
		return rid{}, fmt.Errorf("heap: page %d overflow placing %d bytes", r.page, len(enc))
	}
	for i := nslots; i < newSlots; i++ {
		off := slotOffset(i)
		for j := 0; j < slotDirEntry; j++ {
			f.Data[off+j] = 0
		}
		f.Data[off+6] = flagDeleted
	}
	copy(f.Data[newFreeHigh:], enc)
	so := slotOffset(slot)
	binary.BigEndian.PutUint16(f.Data[so:], uint16(newFreeHigh))
	binary.BigEndian.PutUint16(f.Data[so+2:], uint16(len(enc)))
	binary.BigEndian.PutUint16(f.Data[so+4:], uint16(len(enc)))
	f.Data[so+6] = 0
	binary.BigEndian.PutUint16(f.Data, uint16(newSlots))
	binary.BigEndian.PutUint16(f.Data[2:], uint16(newFreeHigh))
	consumed := len(enc) + (newSlots-nslots)*slotDirEntry
	s.free[r.page] -= consumed
	s.nrecords++
	return r, nil
}

// setDeleted flips the tombstone flag of a slot.
func (s *store) setDeleted(r rid, deleted bool) error {
	return s.withPage(nil, r.page, true, func(f *buffer.Frame) error {
		nslots := int(binary.BigEndian.Uint16(f.Data))
		if int(r.slot) >= nslots {
			return fmt.Errorf("heap: %w: slot %d of page %d", core.ErrNotFound, r.slot, r.page)
		}
		so := slotOffset(int(r.slot))
		was := f.Data[so+6]&flagDeleted != 0
		if was == deleted {
			return nil
		}
		if deleted {
			f.Data[so+6] |= flagDeleted
			s.nrecords--
		} else {
			f.Data[so+6] &^= flagDeleted
			s.nrecords++
		}
		return nil
	})
}

// overwriteAt rewrites the record bytes of an existing slot in place.
func (s *store) overwriteAt(r rid, enc []byte) error {
	return s.withPage(nil, r.page, true, func(f *buffer.Frame) error {
		so := slotOffset(int(r.slot))
		capBytes := int(binary.BigEndian.Uint16(f.Data[so+2:]))
		if len(enc) > capBytes {
			return fmt.Errorf("heap: overwrite of %d bytes exceeds slot capacity %d", len(enc), capBytes)
		}
		off := int(binary.BigEndian.Uint16(f.Data[so:]))
		copy(f.Data[off:], enc)
		binary.BigEndian.PutUint16(f.Data[so+4:], uint16(len(enc)))
		return nil
	})
}

// Insert implements core.StorageInstance. The record is placed and its
// log record appended within one pin session so the frame carries the
// record's LSN before it can be stolen.
func (s *store) Insert(tx *txn.Txn, rec types.Record) (types.Key, error) {
	enc := rec.AppendEncode(nil)
	s.mu.Lock()
	defer s.mu.Unlock()
	page, err := s.pageFor(len(enc))
	if err != nil {
		return nil, err
	}
	var key types.Key
	err = s.withPage(tx, uint32(page), true, func(f *buffer.Frame) error {
		nslots := uint32(binary.BigEndian.Uint16(f.Data))
		r, perr := s.placeAtLocked(f, rid{page: uint32(page), slot: nslots}, enc)
		if perr != nil {
			return perr
		}
		key = encodeRID(r)
		lsn, lerr := s.logStamped(tx, f, core.ModPayload{Op: core.ModInsert, Key: key, New: rec})
		if lerr != nil {
			return lerr
		}
		s.pushVersion(tx, r, lsn, true, false)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return key, nil
}

// Update implements core.StorageInstance: in place when the new record
// fits the slot, otherwise tombstone-and-move to a new record address.
func (s *store) Update(tx *txn.Txn, key types.Key, oldRec, newRec types.Record) (types.Key, error) {
	r, err := decodeRID(key)
	if err != nil {
		return nil, err
	}
	enc := newRec.AppendEncode(nil)
	s.mu.Lock()
	defer s.mu.Unlock()
	fits := false
	err = s.withPage(tx, r.page, true, func(f *buffer.Frame) error {
		nslots := int(binary.BigEndian.Uint16(f.Data))
		if int(r.slot) >= nslots {
			return fmt.Errorf("heap: %w: slot %d of page %d", core.ErrNotFound, r.slot, r.page)
		}
		so := slotOffset(int(r.slot))
		if f.Data[so+6]&flagDeleted != 0 {
			return fmt.Errorf("heap: %w: record %v deleted", core.ErrNotFound, r)
		}
		if len(enc) > int(binary.BigEndian.Uint16(f.Data[so+2:])) {
			return nil // no room: fall through to tombstone-and-move
		}
		fits = true
		off := int(binary.BigEndian.Uint16(f.Data[so:]))
		copy(f.Data[off:], enc)
		binary.BigEndian.PutUint16(f.Data[so+4:], uint16(len(enc)))
		lsn, lerr := s.logStamped(tx, f, core.ModPayload{Op: core.ModUpdate, Key: key, NewKey: key, Old: oldRec, New: newRec})
		if lerr != nil {
			return lerr
		}
		s.pushVersion(tx, r, lsn, false, false)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if fits {
		return key, nil
	}
	// Tombstone-and-move touches two pages, so the single-frame
	// log-while-pinned session does not apply. The new address is
	// computable without mutating anything (next slot of a page with
	// room), so append the log record first — pure write-ahead — then
	// apply both page mutations stamped with its LSN.
	page, err := s.pageFor(len(enc))
	if err != nil {
		return nil, err
	}
	var newR rid
	err = s.withPage(tx, uint32(page), false, func(f *buffer.Frame) error {
		newR = rid{page: uint32(page), slot: uint32(binary.BigEndian.Uint16(f.Data))}
		return nil
	})
	if err != nil {
		return nil, err
	}
	newKey := encodeRID(newR)
	lsn, err := core.LogSMLSN(tx, s.rd, core.ModPayload{Op: core.ModUpdate, Key: key, NewKey: newKey, Old: oldRec, New: newRec})
	if err != nil {
		return nil, err
	}
	// Chain entries go in as soon as the log record exists, before the
	// page mutations: if either mutation fails, the veto rollback undoes
	// this record and unchains exactly these two entries.
	s.pushVersion(tx, r, lsn, false, true)
	s.pushVersion(tx, newR, lsn, true, false)
	err = s.withPage(tx, r.page, true, func(f *buffer.Frame) error {
		so := slotOffset(int(r.slot))
		f.Data[so+6] |= flagDeleted
		s.nrecords--
		s.env.Pool.StampLSN(f, lsn)
		return nil
	})
	if err != nil {
		return nil, err
	}
	err = s.withPage(tx, newR.page, true, func(f *buffer.Frame) error {
		if _, perr := s.placeAtLocked(f, newR, enc); perr != nil {
			return perr
		}
		s.env.Pool.StampLSN(f, lsn)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return newKey, nil
}

// Delete implements core.StorageInstance: the slot is tombstoned in place,
// logged and stamped within the same pin session.
func (s *store) Delete(tx *txn.Txn, key types.Key, oldRec types.Record) error {
	r, err := decodeRID(key)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.withPage(tx, r.page, true, func(f *buffer.Frame) error {
		nslots := int(binary.BigEndian.Uint16(f.Data))
		if int(r.slot) >= nslots {
			return fmt.Errorf("heap: %w: slot %d of page %d", core.ErrNotFound, r.slot, r.page)
		}
		so := slotOffset(int(r.slot))
		if f.Data[so+6]&flagDeleted == 0 {
			f.Data[so+6] |= flagDeleted
			s.nrecords--
		}
		lsn, lerr := s.logStamped(tx, f, core.ModPayload{Op: core.ModDelete, Key: key, Old: oldRec})
		if lerr != nil {
			return lerr
		}
		s.pushVersion(tx, r, lsn, false, true)
		return nil
	})
}

// FetchByKey implements core.StorageInstance. The filter predicate is
// evaluated while the record is in the buffer pool; only qualifying
// records are materialised for the caller.
func (s *store) FetchByKey(tx *txn.Txn, key types.Key, fields []int, filter *expr.Expr) (types.Record, error) {
	r, err := decodeRID(key)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	// Snapshot transactions read the version visible at their high-water.
	// When that is current page state the ordinary path below serves it;
	// a record overwritten or deleted since the snapshot is reconstructed
	// from the WAL instead.
	if tx.ReadOnly() {
		s.env.Obs.MVCC.SnapshotReads.Inc()
		start := time.Now()
		usePage, vrec, present, verr := s.versionFor(tx, r, tx.Snapshot())
		if !usePage || verr != nil {
			s.mu.Unlock()
			if tr := tx.Trace(); tr.Detailed() {
				tr.Event("mvcc.reconstruct", s.rd.Name, "fetch", start, time.Since(start), verr)
			}
			if verr != nil {
				return nil, verr
			}
			if !present {
				return nil, fmt.Errorf("heap: %w: record %v not in snapshot", core.ErrNotFound, r)
			}
			if filter != nil {
				match, ferr := s.env.Eval.EvalBool(filter, vrec, nil)
				if ferr != nil {
					return nil, ferr
				}
				if !match {
					return nil, core.ErrFiltered
				}
			}
			if fields != nil {
				vrec = vrec.Project(fields)
			}
			return vrec, nil
		}
	}
	var rec types.Record
	err = s.withPage(tx, r.page, false, func(f *buffer.Frame) error {
		nslots := int(binary.BigEndian.Uint16(f.Data))
		if int(r.slot) >= nslots {
			return fmt.Errorf("heap: %w: slot %d of page %d", core.ErrNotFound, r.slot, r.page)
		}
		so := slotOffset(int(r.slot))
		if f.Data[so+6]&flagDeleted != 0 {
			return fmt.Errorf("heap: %w: record %v deleted", core.ErrNotFound, r)
		}
		off := int(binary.BigEndian.Uint16(f.Data[so:]))
		n := int(binary.BigEndian.Uint16(f.Data[so+4:]))
		body := f.Data[off : off+n]
		if filter != nil {
			// Isolate the filter's fields while the record is buffer
			// resident; rejected records are never materialised.
			probe, _, derr := types.DecodeRecordFields(body, expr.FieldsUsed(filter))
			if derr != nil {
				return derr
			}
			match, ferr := s.env.Eval.EvalBool(filter, probe, nil)
			if ferr != nil {
				return ferr
			}
			if !match {
				return core.ErrFiltered
			}
		}
		var derr error
		if fields != nil {
			rec, _, derr = types.DecodeRecordFields(body, fields)
		} else {
			rec, _, derr = types.DecodeRecord(body)
		}
		return derr
	})
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if fields != nil {
		rec = rec.Project(fields)
	}
	return rec, nil
}

// OpenScan implements core.StorageInstance: record-address order. A
// snapshot transaction's scan captures the snapshot once: every slot it
// passes is resolved against it, so the scan observes one consistent
// state no matter which transactions commit while it is open.
func (s *store) OpenScan(tx *txn.Txn, opts core.ScanOptions) (core.Scan, error) {
	sc := &heapScan{store: s, tx: tx, opts: opts, nextRID: startRID(opts.Start)}
	if tx.ReadOnly() {
		sc.snap = tx.Snapshot()
		s.env.Obs.MVCC.SnapshotReads.Inc()
	}
	if opts.Filter != nil {
		sc.filterFields = expr.FieldsUsed(opts.Filter)
	}
	return sc, nil
}

func startRID(k types.Key) rid {
	if k == nil {
		return rid{}
	}
	r, err := decodeRID(k)
	if err != nil {
		return rid{}
	}
	return r
}

// EstimateCost implements core.StorageInstance: a heap scan reads every
// page of the relation.
func (s *store) EstimateCost(req core.CostRequest) core.CostEstimate {
	s.mu.Lock()
	npages := len(s.pages)
	n := s.nrecords
	s.mu.Unlock()
	return core.CostEstimate{
		Usable:      true,
		IO:          float64(npages),
		CPU:         float64(n),
		Selectivity: smutil.RequestSelectivity(req),
	}
}

// PartitionBounds implements core.RangePartitioner: split the record-key
// (page, slot) space at page boundaries, ~equal page counts per worker.
func (s *store) PartitionBounds(n int) []types.Key {
	s.mu.Lock()
	npages := len(s.pages)
	s.mu.Unlock()
	if n <= 1 || npages < 2*n {
		return nil
	}
	per := (npages + n - 1) / n
	bounds := make([]types.Key, 0, n-1)
	for p := per; p < npages && len(bounds) < n-1; p += per {
		bounds = append(bounds, encodeRID(rid{page: uint32(p)}))
	}
	return bounds
}

// RecordCount implements core.StorageInstance.
func (s *store) RecordCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nrecords
}

// PageCount reports the number of pages (for the experiment harness).
func (s *store) PageCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pages)
}

// ApplyLogged implements core.StorageInstance.
func (s *store) ApplyLogged(payload []byte, undo bool) error {
	p, err := core.DecodeMod(payload)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch p.Op {
	case core.ModInsert:
		r, err := decodeRID(p.Key)
		if err != nil {
			return err
		}
		if undo {
			s.unchain(r)
			return s.setDeleted(r, true)
		}
		return s.redoPlace(r, p.New)
	case core.ModDelete:
		r, err := decodeRID(p.Key)
		if err != nil {
			return err
		}
		if undo {
			s.unchain(r)
		}
		return s.setDeleted(r, !undo)
	case core.ModUpdate:
		oldR, err := decodeRID(p.Key)
		if err != nil {
			return err
		}
		newR, err := decodeRID(p.NewKey)
		if err != nil {
			return err
		}
		if oldR == newR {
			rec := p.New
			if undo {
				s.unchain(oldR)
				rec = p.Old
			}
			return s.redoOverwrite(oldR, rec.AppendEncode(nil))
		}
		if undo {
			s.unchain(newR)
			s.unchain(oldR)
			if err := s.setDeleted(newR, true); err != nil {
				return err
			}
			return s.setDeleted(oldR, false)
		}
		if err := s.setDeleted(oldR, true); err != nil {
			return err
		}
		return s.redoPlace(newR, p.New)
	default:
		return fmt.Errorf("heap: bad logged op %v", p.Op)
	}
}

// redoPlace re-places a record at its logged address, tolerating replays
// over state that already contains it (idempotent for repeated recovery).
func (s *store) redoPlace(r rid, rec types.Record) error {
	exists := false
	err := s.withPage(nil, r.page, false, func(f *buffer.Frame) error {
		nslots := int(binary.BigEndian.Uint16(f.Data))
		if int(r.slot) < nslots {
			so := slotOffset(int(r.slot))
			if binary.BigEndian.Uint16(f.Data[so+2:]) > 0 {
				exists = true
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if exists {
		return s.setDeleted(r, false)
	}
	enc := rec.AppendEncode(nil)
	return s.withPage(nil, r.page, true, func(f *buffer.Frame) error {
		_, err := s.placeAtLocked(f, r, enc)
		return err
	})
}

// redoOverwrite rewrites a slot's record bytes during log replay. Replay
// can meet a slot smaller than it was at run time: a checkpoint snapshot
// re-places each record at its current size, so a slot that once held a
// larger record (in-place shrinking update) loses the headroom a replayed
// earlier overwrite needs. The record is then moved to fresh space on the
// same page with the slot repointed — the record address stays stable.
func (s *store) redoOverwrite(r rid, enc []byte) error {
	return s.withPage(nil, r.page, true, func(f *buffer.Frame) error {
		nslots := int(binary.BigEndian.Uint16(f.Data))
		so := slotOffset(int(r.slot))
		if int(r.slot) >= nslots {
			_, err := s.placeAtLocked(f, r, enc)
			return err
		}
		capBytes := int(binary.BigEndian.Uint16(f.Data[so+2:]))
		if len(enc) <= capBytes {
			off := int(binary.BigEndian.Uint16(f.Data[so:]))
			copy(f.Data[off:], enc)
			binary.BigEndian.PutUint16(f.Data[so+4:], uint16(len(enc)))
			return nil
		}
		freeHigh := int(binary.BigEndian.Uint16(f.Data[2:]))
		newFreeHigh := freeHigh - len(enc)
		if newFreeHigh < slotOffset(nslots) {
			return fmt.Errorf("heap: page %d overflow re-placing %d bytes", r.page, len(enc))
		}
		copy(f.Data[newFreeHigh:], enc)
		binary.BigEndian.PutUint16(f.Data[so:], uint16(newFreeHigh))
		binary.BigEndian.PutUint16(f.Data[so+2:], uint16(len(enc)))
		binary.BigEndian.PutUint16(f.Data[so+4:], uint16(len(enc)))
		binary.BigEndian.PutUint16(f.Data[2:], uint16(newFreeHigh))
		s.free[r.page] -= len(enc)
		return nil
	})
}

var _ core.StorageInstance = (*store)(nil)

// heapScan is a key-sequential access in record-address order.
type heapScan struct {
	store        *store
	tx           *txn.Txn // buffer faults during the scan charge its trace
	opts         core.ScanOptions
	filterFields []int // fields the filter needs, isolated before decoding
	nextRID      rid   // first candidate to examine
	closed       bool
	snap         *txn.Snapshot // non-nil: resolve every slot against this snapshot
}

// Next implements core.Scan. Each page is pinned once and its slots are
// filtered while buffer resident; only qualifying records are materialised
// and returned.
func (sc *heapScan) Next() (types.Key, types.Record, bool, error) {
	if sc.closed {
		return nil, nil, false, fmt.Errorf("heap: scan is closed")
	}
	s := sc.store
	for {
		s.mu.Lock()
		if int(sc.nextRID.page) >= len(s.pages) {
			s.mu.Unlock()
			return nil, nil, false, nil
		}
		page := sc.nextRID.page
		var outKey types.Key
		var outRec types.Record
		found := false
		ended := false
		err := s.withPage(sc.tx, page, false, func(f *buffer.Frame) error {
			nslots := int(binary.BigEndian.Uint16(f.Data))
			for int(sc.nextRID.slot) < nslots {
				cur := sc.nextRID
				key := encodeRID(cur)
				if sc.opts.End != nil && key.Compare(sc.opts.End) >= 0 {
					ended = true
					return nil
				}
				sc.nextRID = rid{page: cur.page, slot: cur.slot + 1}
				so := slotOffset(int(cur.slot))
				if sc.snap != nil {
					// Snapshot scan: slots whose visible version is not
					// current page state are reconstructed (a record
					// deleted or moved since the snapshot) or skipped (a
					// record born after it).
					usePage, vrec, present, verr := s.versionFor(sc.tx, cur, sc.snap)
					if verr != nil {
						return verr
					}
					if !usePage {
						if !present {
							continue
						}
						if sc.opts.Filter != nil {
							match, ferr := s.env.Eval.EvalBool(sc.opts.Filter, vrec, sc.opts.Params)
							if ferr != nil {
								return ferr
							}
							if !match {
								continue
							}
						}
						outKey = key
						outRec = vrec
						found = true
						return nil
					}
				}
				if f.Data[so+6]&flagDeleted != 0 {
					continue
				}
				off := int(binary.BigEndian.Uint16(f.Data[so:]))
				n := int(binary.BigEndian.Uint16(f.Data[so+4:]))
				body := f.Data[off : off+n]
				// Early filtering: only the fields the predicate needs
				// are isolated from the buffer-resident record;
				// unqualified entries are skipped without materialising
				// the rest.
				if sc.opts.Filter != nil {
					probe, _, derr := types.DecodeRecordFields(body, sc.filterFields)
					if derr != nil {
						return derr
					}
					match, ferr := s.env.Eval.EvalBool(sc.opts.Filter, probe, sc.opts.Params)
					if ferr != nil {
						return ferr
					}
					if !match {
						continue
					}
				}
				var derr error
				if sc.opts.Fields != nil {
					outRec, _, derr = types.DecodeRecordFields(body, sc.opts.Fields)
				} else {
					outRec, _, derr = types.DecodeRecord(body)
				}
				if derr != nil {
					return derr
				}
				outKey = key
				found = true
				return nil
			}
			sc.nextRID = rid{page: page + 1}
			return nil
		})
		s.mu.Unlock()
		if err != nil {
			return nil, nil, false, err
		}
		if ended {
			return nil, nil, false, nil
		}
		if found {
			if sc.opts.Fields != nil {
				outRec = outRec.Project(sc.opts.Fields)
			}
			return outKey, outRec, true, nil
		}
	}
}

// Pos implements core.Scan.
func (sc *heapScan) Pos() core.ScanPos {
	return core.ScanPos(encodeRID(sc.nextRID))
}

// Restore implements core.Scan.
func (sc *heapScan) Restore(pos core.ScanPos) error {
	r, err := decodeRID(types.Key(pos))
	if err != nil {
		return err
	}
	sc.nextRID = r
	return nil
}

// Close implements core.Scan.
func (sc *heapScan) Close() error {
	sc.closed = true
	return nil
}
