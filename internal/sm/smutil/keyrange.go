package smutil

import (
	"dmx/internal/expr"
	"dmx/internal/types"
)

// OrderSatisfiedBy reports whether an access returning records in the
// order of keyFields satisfies an ORDER BY on orderBy (a key-prefix match;
// empty orderBy is trivially satisfied).
func OrderSatisfiedBy(keyFields, orderBy []int) bool {
	if len(orderBy) == 0 {
		return true
	}
	if len(orderBy) > len(keyFields) {
		return false
	}
	for i, f := range orderBy {
		if keyFields[i] != f {
			return false
		}
	}
	return true
}

// PrefixSuccessor returns the smallest byte string greater than every
// string having p as a prefix (nil when p is all 0xFF, meaning unbounded).
func PrefixSuccessor(p []byte) []byte {
	out := append([]byte(nil), p...)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] != 0xFF {
			out[i]++
			return out[:i+1]
		}
	}
	return nil
}

// rangeBounds derives the [start, end) scan bounds for one range-bounded
// key field. prefix is the equality prefix over earlier key fields;
// lowerEnc/upperEnc are the order-preserving encodings of the bound
// values appended to that prefix (nil when that side is unbounded);
// lowerStrict marks a > bound, upperInclusive a <= bound.
//
// empty reports that the strict lower bound admits no key: its encoding
// is all 0xFF, so no byte string sorts above it and the range holds
// nothing. upperHandled reports whether the returned end fully enforces
// the upper conjunct; it is false when an inclusive upper bound is all
// 0xFF — every extension of it must stay in range but no finite end
// covers them — in which case end stays at the prefix bound and the
// caller must leave the conjunct to the executor. Real value encodings
// always start with a kind-tag byte below 0xFF, so both edges are
// unreachable through types.Value today; this keeps the contract honest
// for any future raw-byte key source.
func rangeBounds(prefix, lowerEnc, upperEnc []byte, lowerStrict, upperInclusive bool) (start, end types.Key, empty, upperHandled bool) {
	start = append(types.Key(nil), prefix...)
	end = PrefixSuccessor(prefix)
	if lowerEnc != nil {
		b := lowerEnc
		if lowerStrict {
			if b = PrefixSuccessor(b); b == nil {
				return nil, nil, true, false
			}
		}
		start = b
	}
	upperHandled = true
	if upperEnc != nil {
		b := upperEnc
		if upperInclusive {
			if b = PrefixSuccessor(b); b == nil {
				return start, end, false, false
			}
		}
		end = b
	}
	return start, end, false, upperHandled
}

// KeyRange analyses the planner's eligible predicates against an ordered
// key composed of the given record fields, deriving the tightest
// [start, end) bound on the order-preserving key encoding. It returns the
// bounds, the indexes of the conjuncts the key range handles (so the
// executor need not re-apply them), whether every key field is bound by
// equality (a point access), and how many leading key fields participate.
func KeyRange(keyFields []int, conjuncts []*expr.Expr) (start, end types.Key, handled []int, point bool, depth int) {
	var prefix []byte
	eqCount := 0
	for _, kf := range keyFields {
		// Equality on this key field extends the shared prefix.
		eqIdx := -1
		var eqVal types.Value
		var lower, upper *expr.FieldCompare
		lowerIdx, upperIdx := -1, -1
		for ci, c := range conjuncts {
			fc, ok := expr.MatchFieldCompare(c)
			if !ok || fc.Field != kf {
				continue
			}
			switch fc.Op {
			case expr.OpEq:
				eqIdx, eqVal = ci, fc.Value
			case expr.OpGt, expr.OpGe:
				f := fc
				lower, lowerIdx = &f, ci
			case expr.OpLt, expr.OpLe:
				f := fc
				upper, upperIdx = &f, ci
			}
		}
		if eqIdx >= 0 {
			prefix = eqVal.AppendOrderedEncode(prefix)
			handled = append(handled, eqIdx)
			eqCount++
			depth++
			continue
		}
		// Range bounds on the first non-equality key field terminate the
		// prefix walk.
		if lower == nil && upper == nil {
			break
		}
		depth++
		var lowerEnc, upperEnc []byte
		if lower != nil {
			lowerEnc = lower.Value.AppendOrderedEncode(append([]byte(nil), prefix...))
		}
		if upper != nil {
			upperEnc = upper.Value.AppendOrderedEncode(append([]byte(nil), prefix...))
		}
		start, end, empty, upperOK := rangeBounds(prefix, lowerEnc, upperEnc,
			lower != nil && lower.Op == expr.OpGt,
			upper != nil && upper.Op == expr.OpLe)
		if empty {
			// The strict lower bound admits no key at all. Report an
			// explicitly empty range (start == end, non-nil); a nil start
			// here would read as "scan from the beginning" while the
			// conjunct was claimed handled. The empty result trivially
			// satisfies the upper conjunct too, but only the lower one is
			// claimed.
			return types.Key{}, types.Key{}, append(handled, lowerIdx), false, depth
		}
		if lower != nil {
			handled = append(handled, lowerIdx)
		}
		if upper != nil {
			if upperOK {
				handled = append(handled, upperIdx)
			}
			// Otherwise end stays at the prefix bound and the executor
			// re-applies the conjunct.
		}
		return start, end, handled, false, depth
	}
	if depth == 0 {
		return nil, nil, nil, false, 0
	}
	// Pure equality prefix.
	start = append(types.Key(nil), prefix...)
	end = PrefixSuccessor(prefix)
	return start, end, handled, eqCount == len(keyFields), depth
}
