package smutil

import (
	"dmx/internal/expr"
	"dmx/internal/types"
)

// OrderSatisfiedBy reports whether an access returning records in the
// order of keyFields satisfies an ORDER BY on orderBy (a key-prefix match;
// empty orderBy is trivially satisfied).
func OrderSatisfiedBy(keyFields, orderBy []int) bool {
	if len(orderBy) == 0 {
		return true
	}
	if len(orderBy) > len(keyFields) {
		return false
	}
	for i, f := range orderBy {
		if keyFields[i] != f {
			return false
		}
	}
	return true
}

// PrefixSuccessor returns the smallest byte string greater than every
// string having p as a prefix (nil when p is all 0xFF, meaning unbounded).
func PrefixSuccessor(p []byte) []byte {
	out := append([]byte(nil), p...)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] != 0xFF {
			out[i]++
			return out[:i+1]
		}
	}
	return nil
}

// KeyRange analyses the planner's eligible predicates against an ordered
// key composed of the given record fields, deriving the tightest
// [start, end) bound on the order-preserving key encoding. It returns the
// bounds, the indexes of the conjuncts the key range handles (so the
// executor need not re-apply them), whether every key field is bound by
// equality (a point access), and how many leading key fields participate.
func KeyRange(keyFields []int, conjuncts []*expr.Expr) (start, end types.Key, handled []int, point bool, depth int) {
	var prefix []byte
	eqCount := 0
	for _, kf := range keyFields {
		// Equality on this key field extends the shared prefix.
		eqIdx := -1
		var eqVal types.Value
		var lower, upper *expr.FieldCompare
		lowerIdx, upperIdx := -1, -1
		for ci, c := range conjuncts {
			fc, ok := expr.MatchFieldCompare(c)
			if !ok || fc.Field != kf {
				continue
			}
			switch fc.Op {
			case expr.OpEq:
				eqIdx, eqVal = ci, fc.Value
			case expr.OpGt, expr.OpGe:
				f := fc
				lower, lowerIdx = &f, ci
			case expr.OpLt, expr.OpLe:
				f := fc
				upper, upperIdx = &f, ci
			}
		}
		if eqIdx >= 0 {
			prefix = eqVal.AppendOrderedEncode(prefix)
			handled = append(handled, eqIdx)
			eqCount++
			depth++
			continue
		}
		// Range bounds on the first non-equality key field terminate the
		// prefix walk.
		if lower == nil && upper == nil {
			break
		}
		depth++
		start = append(types.Key(nil), prefix...)
		end = PrefixSuccessor(prefix)
		if lower != nil {
			b := lower.Value.AppendOrderedEncode(append([]byte(nil), prefix...))
			if lower.Op == expr.OpGt {
				b = PrefixSuccessor(b)
			}
			start = b
			handled = append(handled, lowerIdx)
		}
		if upper != nil {
			b := upper.Value.AppendOrderedEncode(append([]byte(nil), prefix...))
			if upper.Op == expr.OpLe {
				b = PrefixSuccessor(b)
			}
			end = b
			handled = append(handled, upperIdx)
		}
		return start, end, handled, false, depth
	}
	if depth == 0 {
		return nil, nil, nil, false, 0
	}
	// Pure equality prefix.
	start = append(types.Key(nil), prefix...)
	end = PrefixSuccessor(prefix)
	return start, end, handled, eqCount == len(keyFields), depth
}
