package smutil

import (
	"sync"
	"testing"

	"dmx/internal/btree"
	"dmx/internal/expr"
	"dmx/internal/types"
)

func TestPrefixSuccessor(t *testing.T) {
	for _, tc := range []struct {
		in   []byte
		want []byte
	}{
		{[]byte{1, 2, 3}, []byte{1, 2, 4}},
		{[]byte{1, 0xFF}, []byte{2}},
		{[]byte{0xFF, 0xFF}, nil},
		{[]byte{}, nil},
		{[]byte{0}, []byte{1}},
	} {
		got := PrefixSuccessor(tc.in)
		if string(got) != string(tc.want) {
			t.Errorf("PrefixSuccessor(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
	// The successor must be > every extension of the prefix.
	p := []byte{5, 0xFF}
	succ := PrefixSuccessor(p)
	ext := append(append([]byte(nil), p...), 0xFF, 0xFF, 0xFF)
	if types.Key(succ).Compare(types.Key(ext)) <= 0 {
		t.Fatal("successor not greater than extensions")
	}
}

func eq(f int, v int64) *expr.Expr { return expr.Eq(expr.Field(f), expr.Const(types.Int(v))) }
func lt(f int, v int64) *expr.Expr { return expr.Lt(expr.Field(f), expr.Const(types.Int(v))) }
func ge(f int, v int64) *expr.Expr { return expr.Ge(expr.Field(f), expr.Const(types.Int(v))) }
func le(f int, v int64) *expr.Expr { return expr.Le(expr.Field(f), expr.Const(types.Int(v))) }

// keyIn reports whether the encoded key of vals falls within [start, end).
func keyIn(start, end types.Key, vals ...types.Value) bool {
	k := types.EncodeKeyValues(vals...)
	if start != nil && k.Compare(start) < 0 {
		return false
	}
	if end != nil && k.Compare(end) >= 0 {
		return false
	}
	return true
}

func TestKeyRangePointAccess(t *testing.T) {
	start, end, handled, point, depth := KeyRange([]int{0, 1}, []*expr.Expr{eq(0, 5), eq(1, 7)})
	if !point || depth != 2 || len(handled) != 2 {
		t.Fatalf("point=%v depth=%d handled=%v", point, depth, handled)
	}
	if !keyIn(start, end, types.Int(5), types.Int(7)) {
		t.Fatal("matching key outside range")
	}
	if keyIn(start, end, types.Int(5), types.Int(8)) || keyIn(start, end, types.Int(6), types.Int(7)) {
		t.Fatal("non-matching key inside range")
	}
}

func TestKeyRangeEqualityPrefixPlusRange(t *testing.T) {
	start, end, handled, point, depth := KeyRange([]int{0, 1},
		[]*expr.Expr{eq(0, 5), ge(1, 10), lt(1, 20)})
	if point || depth != 2 || len(handled) != 3 {
		t.Fatalf("point=%v depth=%d handled=%v", point, depth, handled)
	}
	if !keyIn(start, end, types.Int(5), types.Int(10)) || !keyIn(start, end, types.Int(5), types.Int(19)) {
		t.Fatal("in-range key excluded")
	}
	if keyIn(start, end, types.Int(5), types.Int(9)) || keyIn(start, end, types.Int(5), types.Int(20)) {
		t.Fatal("out-of-range key included")
	}
	if keyIn(start, end, types.Int(4), types.Int(15)) || keyIn(start, end, types.Int(6), types.Int(15)) {
		t.Fatal("wrong-prefix key included")
	}
}

func TestKeyRangeInclusiveBounds(t *testing.T) {
	// x > 3 excludes 3; x <= 7 includes 7.
	gt := expr.Gt(expr.Field(0), expr.Const(types.Int(3)))
	start, end, _, _, depth := KeyRange([]int{0}, []*expr.Expr{gt, le(0, 7)})
	if depth != 1 {
		t.Fatalf("depth = %d", depth)
	}
	if keyIn(start, end, types.Int(3)) {
		t.Fatal("> bound included its operand")
	}
	if !keyIn(start, end, types.Int(4)) || !keyIn(start, end, types.Int(7)) {
		t.Fatal("included values excluded")
	}
	if keyIn(start, end, types.Int(8)) {
		t.Fatal("<= bound leaked past operand")
	}
}

func TestKeyRangeNoUsablePredicate(t *testing.T) {
	// A predicate on field 1 cannot bound a key starting at field 0.
	_, _, handled, point, depth := KeyRange([]int{0, 1}, []*expr.Expr{eq(1, 7)})
	if depth != 0 || point || handled != nil {
		t.Fatalf("depth=%d point=%v handled=%v", depth, point, handled)
	}
	// Nor can a non-comparison conjunct.
	_, _, _, _, depth = KeyRange([]int{0}, []*expr.Expr{expr.IsNull(expr.Field(0))})
	if depth != 0 {
		t.Fatalf("depth = %d", depth)
	}
}

func TestKeyRangeOpenEnds(t *testing.T) {
	start, end, _, _, _ := KeyRange([]int{0}, []*expr.Expr{ge(0, 100)})
	if end != nil {
		t.Fatal("lower-bound-only range should be open above")
	}
	if keyIn(start, end, types.Int(99)) || !keyIn(start, end, types.Int(100)) {
		t.Fatal("lower bound wrong")
	}
	start, end, _, _, _ = KeyRange([]int{0}, []*expr.Expr{lt(0, 100)})
	if !keyIn(start, end, types.Int(-5)) || keyIn(start, end, types.Int(100)) {
		t.Fatal("upper bound wrong")
	}
}

// TestRangeBoundsAllFFEdges covers the two unbounded-successor edges.
// Real types.Value encodings always lead with a kind tag below 0xFF, so
// these edges are unreachable through KeyRange today; rangeBounds is
// tested directly to keep the contract honest for raw-byte key sources.
func TestRangeBoundsAllFFEdges(t *testing.T) {
	allFF := []byte{0xFF, 0xFF, 0xFF}

	// A strict lower bound whose encoding is all 0xFF admits no key: no
	// byte string sorts above it. The old behaviour returned a nil start
	// — read downstream as "scan from the beginning" — while the conjunct
	// was reported handled, silently turning an empty range into a full
	// scan with the filter dropped.
	_, _, empty, _ := rangeBounds(nil, allFF, nil, true, false)
	if !empty {
		t.Fatal("strict lower bound at all-0xFF not reported empty")
	}

	// An inclusive upper bound at all 0xFF has no finite end key; the end
	// must stay at the prefix bound and the conjunct must be reported
	// unhandled so the executor re-applies it. (The bound encoding
	// embeds the prefix, so this edge requires the prefix itself to be
	// empty or all 0xFF.)
	start, end, empty, upperHandled := rangeBounds(nil, nil, allFF, false, true)
	if empty || upperHandled {
		t.Fatalf("inclusive all-0xFF upper: empty=%v handled=%v", empty, upperHandled)
	}
	if len(start) != 0 || end != nil {
		t.Fatalf("bounds fell back wrong: start=%v end=%v", start, end)
	}

	// Both edges at once: the empty verdict wins.
	if _, _, empty, _ := rangeBounds(nil, allFF, allFF, true, true); !empty {
		t.Fatal("empty strict lower not reported when upper also edges")
	}
}

func TestRangeBoundsOrdinaryBounds(t *testing.T) {
	prefix := []byte{7}
	lower := append(append([]byte(nil), prefix...), 3)
	upper := append(append([]byte(nil), prefix...), 9)

	// Strict lower: start is the successor of the bound encoding.
	start, end, empty, handled := rangeBounds(prefix, lower, upper, true, false)
	if empty || !handled {
		t.Fatalf("empty=%v handled=%v", empty, handled)
	}
	if string(start) != string(PrefixSuccessor(lower)) || string(end) != string(upper) {
		t.Fatalf("start=%v end=%v", start, end)
	}

	// Inclusive upper: end is the successor of the bound encoding.
	start, end, _, handled = rangeBounds(prefix, lower, upper, false, true)
	if !handled || string(start) != string(lower) || string(end) != string(PrefixSuccessor(upper)) {
		t.Fatalf("handled=%v start=%v end=%v", handled, start, end)
	}

	// No bounds: the equality prefix alone governs.
	start, end, _, _ = rangeBounds(prefix, nil, nil, false, false)
	if string(start) != string(prefix) || string(end) != string(PrefixSuccessor(prefix)) {
		t.Fatalf("prefix-only bounds: start=%v end=%v", start, end)
	}
}

// TestKeyRangeStrictBoundContracts pins the reachable Gt/Le behaviour
// around rangeBounds: strict lower bounds exclude their operand without
// going empty, and inclusive upper bounds are fully handled, for the
// extreme representable values.
func TestKeyRangeStrictBoundContracts(t *testing.T) {
	const maxI = int64(^uint64(0) >> 1)
	gt := expr.Gt(expr.Field(0), expr.Const(types.Int(maxI)))
	start, end, handled, _, depth := KeyRange([]int{0}, []*expr.Expr{gt})
	if depth != 1 || len(handled) != 1 {
		t.Fatalf("depth=%d handled=%v", depth, handled)
	}
	if keyIn(start, end, types.Int(maxI)) {
		t.Fatal("x > MaxInt64 included MaxInt64")
	}

	leMax := le(0, maxI)
	start, end, handled, _, _ = KeyRange([]int{0}, []*expr.Expr{leMax})
	if len(handled) != 1 {
		t.Fatalf("handled=%v", handled)
	}
	if !keyIn(start, end, types.Int(maxI)) || !keyIn(start, end, types.Int(0)) {
		t.Fatal("x <= MaxInt64 excluded an in-range value")
	}
}

func TestEstimateSelectivity(t *testing.T) {
	if got := EstimateSelectivity(nil); got != 1.0 {
		t.Fatalf("no conjuncts = %v", got)
	}
	sEq := EstimateSelectivity([]*expr.Expr{eq(0, 1)})
	sRange := EstimateSelectivity([]*expr.Expr{lt(0, 1)})
	sOther := EstimateSelectivity([]*expr.Expr{expr.IsNull(expr.Field(0))})
	if !(sEq < sRange && sRange < sOther && sOther < 1.0) {
		t.Fatalf("selectivity ordering: eq=%v range=%v other=%v", sEq, sRange, sOther)
	}
	both := EstimateSelectivity([]*expr.Expr{eq(0, 1), lt(1, 2)})
	if both >= sEq {
		t.Fatal("conjuncts should compound")
	}
}

func TestTreeScanSkipsCurrentPositionAfterDelete(t *testing.T) {
	var mu sync.Mutex
	tree := btree.New()
	for i := byte(1); i <= 5; i++ {
		tree.Set([]byte{i}, []byte{i})
	}
	emit := func(k, v []byte) (types.Key, types.Record, bool, error) {
		return types.Key(k).Clone(), nil, true, nil
	}
	scan := NewTreeScan(&mu, tree, nil, nil, emit)
	k1, _, ok, err := scan.Next()
	if err != nil || !ok || k1[0] != 1 {
		t.Fatalf("first = %v %v %v", k1, ok, err)
	}
	// Delete the item the scan is on: Next returns the item just after.
	tree.Delete([]byte{1})
	k2, _, ok, _ := scan.Next()
	if !ok || k2[0] != 2 {
		t.Fatalf("after delete-at-position = %v", k2)
	}
	// Insert before the current position: not revisited.
	tree.Set([]byte{0}, []byte{0})
	k3, _, ok, _ := scan.Next()
	if !ok || k3[0] != 3 {
		t.Fatalf("after insert-before = %v", k3)
	}
}

func TestTreeScanPosRestoreAndBounds(t *testing.T) {
	var mu sync.Mutex
	tree := btree.New()
	for i := byte(0); i < 10; i++ {
		tree.Set([]byte{i}, nil)
	}
	emit := func(k, v []byte) (types.Key, types.Record, bool, error) {
		return types.Key(k).Clone(), nil, true, nil
	}
	scan := NewTreeScan(&mu, tree, types.Key{2}, types.Key{7}, emit)
	pos0 := scan.Pos()
	var seen []byte
	for {
		k, _, ok, err := scan.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		seen = append(seen, k[0])
	}
	if string(seen) != string([]byte{2, 3, 4, 5, 6}) {
		t.Fatalf("bounded scan = %v", seen)
	}
	// Restore to the start and re-read the first item.
	if err := scan.Restore(pos0); err != nil {
		t.Fatal(err)
	}
	k, _, ok, _ := scan.Next()
	if !ok || k[0] != 2 {
		t.Fatalf("after restore = %v", k)
	}
	if err := scan.Restore(core_ScanPosBad()); err == nil {
		t.Fatal("bad position accepted")
	}
	if err := scan.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := scan.Next(); err == nil {
		t.Fatal("closed scan should error")
	}
}

func core_ScanPosBad() []byte { return []byte{9, 9} }

func TestTreeScanFilteredEmit(t *testing.T) {
	var mu sync.Mutex
	tree := btree.New()
	for i := byte(0); i < 10; i++ {
		tree.Set([]byte{i}, nil)
	}
	// Emit only even keys.
	emit := func(k, v []byte) (types.Key, types.Record, bool, error) {
		if k[0]%2 == 1 {
			return nil, nil, false, nil
		}
		return types.Key(k).Clone(), nil, true, nil
	}
	scan := NewTreeScan(&mu, tree, nil, nil, emit)
	n := 0
	for {
		_, _, ok, err := scan.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 5 {
		t.Fatalf("filtered scan = %d", n)
	}
}
