package smutil_test

import (
	"errors"
	"testing"

	"dmx/internal/core"
	"dmx/internal/expr"
	"dmx/internal/sm/smutil"
	_ "dmx/internal/sm/tempsm"
	"dmx/internal/types"
)

func schema() *types.Schema {
	return types.MustSchema(
		types.Column{Name: "id", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "v", Kind: types.KindString},
	)
}

func newStore(t *testing.T, logged bool) (*core.Env, *smutil.TreeStore) {
	t.Helper()
	env := core.NewEnv(core.Config{})
	rd := &core.RelDesc{RelID: 1, Name: "t", Schema: schema(), SM: core.SMTemp}
	return env, smutil.NewTreeStore(env, rd, logged)
}

func rec(id int64, v string) types.Record {
	return types.Record{types.Int(id), types.Str(v)}
}

func TestTreeStoreCRUD(t *testing.T) {
	env, s := newStore(t, false)
	tx := env.Begin()
	defer tx.Commit()

	k1, err := s.Insert(tx, rec(1, "a"))
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := s.Insert(tx, rec(2, "b"))
	if k1.Equal(k2) {
		t.Fatal("keys not unique")
	}
	if s.RecordCount() != 2 {
		t.Fatal("count")
	}
	got, err := s.FetchByKey(tx, k1, nil, nil)
	if err != nil || got[1].S != "a" {
		t.Fatalf("fetch: %v %v", got, err)
	}
	// Update keeps the key.
	nk, err := s.Update(tx, k1, got, rec(1, "a2"))
	if err != nil || !nk.Equal(k1) {
		t.Fatalf("update: %v %v", nk, err)
	}
	got, _ = s.FetchByKey(tx, k1, []int{1}, nil)
	if len(got) != 1 || got[0].S != "a2" {
		t.Fatalf("projected fetch: %v", got)
	}
	// Update of a missing key fails.
	if _, err := s.Update(tx, types.Key{9, 9}, nil, rec(9, "x")); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("update missing: %v", err)
	}
	if err := s.Delete(tx, k1, got); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(tx, k1, got); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	if _, err := s.FetchByKey(tx, k1, nil, nil); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("fetch deleted: %v", err)
	}
}

func TestTreeStoreFilterAndScan(t *testing.T) {
	env, s := newStore(t, false)
	tx := env.Begin()
	defer tx.Commit()
	var k5 types.Key
	for i := 0; i < 10; i++ {
		k, _ := s.Insert(tx, rec(int64(i), "x"))
		if i == 5 {
			k5 = k
		}
	}
	pass := expr.Eq(expr.Field(0), expr.Const(types.Int(5)))
	if _, err := s.FetchByKey(tx, k5, nil, pass); err != nil {
		t.Fatal(err)
	}
	fail := expr.Eq(expr.Field(0), expr.Const(types.Int(6)))
	if _, err := s.FetchByKey(tx, k5, nil, fail); !errors.Is(err, core.ErrFiltered) {
		t.Fatalf("filtered fetch: %v", err)
	}
	scan, err := s.OpenScan(tx, core.ScanOptions{
		Filter: expr.Lt(expr.Field(0), expr.Const(types.Int(3))),
		Fields: []int{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, r, ok, err := scan.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if len(r) != 1 || r[0].AsInt() >= 3 {
			t.Fatalf("row %v", r)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("matches = %d", n)
	}
}

func TestTreeStoreLoggedApply(t *testing.T) {
	env, s := newStore(t, true)
	tx := env.Begin()
	k, err := s.Insert(tx, rec(1, "a"))
	if err != nil {
		t.Fatal(err)
	}
	// The insert was logged; undo via ApplyLogged removes it.
	recs := env.Log.Records()
	if len(recs) != 1 {
		t.Fatalf("log records = %d", len(recs))
	}
	if err := s.ApplyLogged(recs[0].Payload, true); err != nil {
		t.Fatal(err)
	}
	if s.RecordCount() != 0 {
		t.Fatal("undo did not remove the record")
	}
	// Redo restores it, and the sequence does not collide afterwards.
	if err := s.ApplyLogged(recs[0].Payload, false); err != nil {
		t.Fatal(err)
	}
	if s.RecordCount() != 1 {
		t.Fatal("redo did not restore the record")
	}
	k2, _ := s.Insert(tx, rec(2, "b"))
	if k2.Equal(k) {
		t.Fatal("sequence collided after replay")
	}
	tx.Commit()
}

func TestTreeStoreUnloggedWritesNothing(t *testing.T) {
	env, s := newStore(t, false)
	tx := env.Begin()
	s.Insert(tx, rec(1, "a"))
	if env.Log.Len() != 0 {
		t.Fatal("unlogged store wrote log records")
	}
	tx.Commit()
}

func TestTreeStoreEstimate(t *testing.T) {
	env, s := newStore(t, false)
	tx := env.Begin()
	for i := 0; i < 50; i++ {
		s.Insert(tx, rec(int64(i), "x"))
	}
	tx.Commit()
	est := s.EstimateCost(core.CostRequest{})
	if !est.Usable || est.IO != 0 || est.CPU != 50 {
		t.Fatalf("estimate = %+v", est)
	}
}
