package smutil

import (
	"encoding/binary"
	"fmt"
	"sync"

	"dmx/internal/btree"
	"dmx/internal/core"
	"dmx/internal/expr"
	"dmx/internal/txn"
	"dmx/internal/types"
)

// EstimateSelectivity is the shared textbook selectivity guess extensions
// use when they have no statistics: 10% per equality conjunct, 30% per
// range conjunct, 50% otherwise. Estimators that receive a
// core.CostRequest should call RequestSelectivity instead, which honors
// the planner's statistics-derived per-conjunct figures.
func EstimateSelectivity(conjuncts []*expr.Expr) float64 {
	sel := 1.0
	for _, c := range conjuncts {
		sel *= textbookSelectivity(c)
	}
	return sel
}

// TreeStore is a storage instance holding records in an in-memory B-tree
// keyed by an 8-byte insertion sequence number (the storage method's
// record-key definition). It backs both the main-memory storage method
// (logged, recoverable) and the temporary-relation storage method
// (unlogged, non-recoverable).
type TreeStore struct {
	env    *core.Env
	rd     *core.RelDesc
	logged bool

	mu      sync.Mutex
	tree    *btree.Tree
	nextSeq uint64
}

// NewTreeStore returns an empty store for rd.
func NewTreeStore(env *core.Env, rd *core.RelDesc, logged bool) *TreeStore {
	return &TreeStore{env: env, rd: rd, logged: logged, tree: btree.New(), nextSeq: 1}
}

func seqKey(seq uint64) types.Key {
	k := make(types.Key, 8)
	binary.BigEndian.PutUint64(k, seq)
	return k
}

func (s *TreeStore) log(tx *txn.Txn, p core.ModPayload) error {
	if !s.logged {
		return nil
	}
	return core.LogSM(tx, s.rd, p)
}

// Insert implements core.StorageInstance.
func (s *TreeStore) Insert(tx *txn.Txn, rec types.Record) (types.Key, error) {
	s.mu.Lock()
	key := seqKey(s.nextSeq)
	s.nextSeq++
	s.mu.Unlock()
	if err := s.log(tx, core.ModPayload{Op: core.ModInsert, Key: key, New: rec}); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.tree.Set(key, rec.AppendEncode(nil))
	s.mu.Unlock()
	return key, nil
}

// Update implements core.StorageInstance; the record key is stable.
func (s *TreeStore) Update(tx *txn.Txn, key types.Key, oldRec, newRec types.Record) (types.Key, error) {
	s.mu.Lock()
	_, exists := s.tree.Get(key)
	s.mu.Unlock()
	if !exists {
		return nil, fmt.Errorf("%w: %v", core.ErrNotFound, key)
	}
	if err := s.log(tx, core.ModPayload{Op: core.ModUpdate, Key: key, NewKey: key, Old: oldRec, New: newRec}); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.tree.Set(key, newRec.AppendEncode(nil))
	s.mu.Unlock()
	return key, nil
}

// Delete implements core.StorageInstance.
func (s *TreeStore) Delete(tx *txn.Txn, key types.Key, oldRec types.Record) error {
	if err := s.log(tx, core.ModPayload{Op: core.ModDelete, Key: key, Old: oldRec}); err != nil {
		return err
	}
	s.mu.Lock()
	_, ok := s.tree.Delete(key)
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %v", core.ErrNotFound, key)
	}
	return nil
}

// FetchByKey implements core.StorageInstance.
func (s *TreeStore) FetchByKey(tx *txn.Txn, key types.Key, fields []int, filter *expr.Expr) (types.Record, error) {
	s.mu.Lock()
	enc, ok := s.tree.Get(key)
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %v", core.ErrNotFound, key)
	}
	rec, _, err := types.DecodeRecord(enc)
	if err != nil {
		return nil, err
	}
	if filter != nil {
		match, err := s.env.Eval.EvalBool(filter, rec, nil)
		if err != nil {
			return nil, err
		}
		if !match {
			return nil, core.ErrFiltered
		}
	}
	if fields != nil {
		return rec.Project(fields), nil
	}
	return rec, nil
}

// OpenScan implements core.StorageInstance.
func (s *TreeStore) OpenScan(tx *txn.Txn, opts core.ScanOptions) (core.Scan, error) {
	emit := func(k, v []byte) (types.Key, types.Record, bool, error) {
		rec, _, err := types.DecodeRecord(v)
		if err != nil {
			return nil, nil, false, err
		}
		if opts.Filter != nil {
			match, err := s.env.Eval.EvalBool(opts.Filter, rec, opts.Params)
			if err != nil {
				return nil, nil, false, err
			}
			if !match {
				return nil, nil, false, nil
			}
		}
		if opts.Fields != nil {
			rec = rec.Project(opts.Fields)
		}
		return types.Key(k).Clone(), rec, true, nil
	}
	return NewTreeScan(&s.mu, s.tree, opts.Start, opts.End, emit), nil
}

// EstimateCost implements core.StorageInstance: memory-resident scans cost
// no I/O and one CPU unit per record.
func (s *TreeStore) EstimateCost(req core.CostRequest) core.CostEstimate {
	n := float64(s.RecordCount())
	return core.CostEstimate{
		Usable:      true,
		IO:          0,
		CPU:         n,
		Selectivity: RequestSelectivity(req),
	}
}

// PartitionBounds implements core.RangePartitioner: interior split keys
// dividing the sequence-key space into ~equal record counts.
func (s *TreeStore) PartitionBounds(n int) []types.Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	return TreePartitionBounds(s.tree, n)
}

// TreePartitionBounds walks tree (caller holds its latch) and returns up
// to n-1 ascending interior split keys at ~equal record-count spacing.
func TreePartitionBounds(tree *btree.Tree, n int) []types.Key {
	total := tree.Len()
	if n <= 1 || total < 2*n {
		return nil
	}
	per := (total + n - 1) / n
	bounds := make([]types.Key, 0, n-1)
	i := 0
	tree.Ascend(nil, func(k, v []byte) bool {
		if i > 0 && i%per == 0 && len(bounds) < n-1 {
			bounds = append(bounds, types.Key(k).Clone())
		}
		i++
		return len(bounds) < n-1
	})
	return bounds
}

// RecordCount implements core.StorageInstance.
func (s *TreeStore) RecordCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.Len()
}

// ApplyLogged implements core.StorageInstance: logical undo/redo of the
// shared modification payload.
func (s *TreeStore) ApplyLogged(payload []byte, undo bool) error {
	p, err := core.DecodeMod(payload)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	op := p.Op
	if undo {
		switch op {
		case core.ModInsert:
			op = core.ModDelete
		case core.ModDelete:
			op = core.ModInsert
			p.New = p.Old
		case core.ModUpdate:
			p.New = p.Old
		}
	}
	switch op {
	case core.ModInsert:
		s.tree.Set(p.Key, p.New.AppendEncode(nil))
		if seq := binary.BigEndian.Uint64(p.Key); seq >= s.nextSeq {
			s.nextSeq = seq + 1
		}
	case core.ModDelete:
		s.tree.Delete(p.Key)
	case core.ModUpdate:
		s.tree.Set(p.Key, p.New.AppendEncode(nil))
	default:
		return fmt.Errorf("smutil: bad logged op %v", p.Op)
	}
	return nil
}

var _ core.StorageInstance = (*TreeStore)(nil)
