package smutil

import (
	"dmx/internal/core"
	"dmx/internal/expr"
)

// textbookSelectivity is the statistics-free guess for one conjunct: 10%
// for an equality, 30% for a range comparison, 50% otherwise.
func textbookSelectivity(c *expr.Expr) float64 {
	if fc, ok := expr.MatchFieldCompare(c); ok {
		if fc.Op == expr.OpEq {
			return 0.1
		}
		return 0.3
	}
	return 0.5
}

// ConjunctSelectivity returns the planner-estimated selectivity for
// conjunct i of req — the statistics-derived figure when the planner
// supplied one, else the textbook guess.
func ConjunctSelectivity(req core.CostRequest, i int) float64 {
	if i < len(req.ConjunctSel) && req.ConjunctSel[i] >= 0 {
		return req.ConjunctSel[i]
	}
	return textbookSelectivity(req.Conjuncts[i])
}

// RequestSelectivity returns the combined selectivity of every conjunct in
// req (independence assumption: the product).
func RequestSelectivity(req core.CostRequest) float64 {
	sel := 1.0
	for i := range req.Conjuncts {
		sel *= ConjunctSelectivity(req, i)
	}
	return sel
}

// HandledSelectivity returns the combined selectivity of just the handled
// conjuncts (by index into req.Conjuncts).
func HandledSelectivity(req core.CostRequest, handled []int) float64 {
	sel := 1.0
	for _, i := range handled {
		if i >= 0 && i < len(req.Conjuncts) {
			sel *= ConjunctSelectivity(req, i)
		}
	}
	return sel
}

// ResidualSelectivity returns the combined selectivity of the conjuncts
// NOT in handled — the fraction the executor's residual filter keeps.
func ResidualSelectivity(req core.CostRequest, handled []int) float64 {
	isHandled := make(map[int]bool, len(handled))
	for _, i := range handled {
		isHandled[i] = true
	}
	sel := 1.0
	for i := range req.Conjuncts {
		if !isHandled[i] {
			sel *= ConjunctSelectivity(req, i)
		}
	}
	return sel
}
