// Package smutil holds helpers shared by the tree-backed storage method
// and access path extensions: a key-sequential scan over a btree.Tree with
// the architecture's position semantics, and small codec utilities.
package smutil

import (
	"fmt"
	"sync"

	"dmx/internal/btree"
	"dmx/internal/core"
	"dmx/internal/types"
)

// EmitFunc converts a tree entry into scan output. Returning ok=false
// skips the entry (filter rejection); err aborts the scan.
type EmitFunc func(key, val []byte) (types.Key, types.Record, bool, error)

// TreeScan is a key-sequential access over a btree.Tree implementing the
// architecture's scan-position semantics: the scan is "on" the last item
// returned; deleting that item leaves the scan just after it; Next always
// returns the next item after the current position. Positions are
// save/restorable for partial-rollback support.
type TreeScan struct {
	mu    *sync.Mutex // latch shared with the owning instance
	tree  *btree.Tree
	start types.Key
	end   types.Key // exclusive; nil = unbounded
	emit  EmitFunc

	started bool
	pos     []byte // key of the item the scan is on
	closed  bool
}

// NewTreeScan starts a scan over tree bounded by [start, end) whose
// entries are rendered through emit. mu is the latch protecting tree.
func NewTreeScan(mu *sync.Mutex, tree *btree.Tree, start, end types.Key, emit EmitFunc) *TreeScan {
	return &TreeScan{mu: mu, tree: tree, start: start, end: end, emit: emit}
}

// Next implements core.Scan.
func (s *TreeScan) Next() (types.Key, types.Record, bool, error) {
	if s.closed {
		return nil, nil, false, fmt.Errorf("smutil: scan is closed")
	}
	for {
		s.mu.Lock()
		var from []byte
		skipEqual := false
		if s.started {
			from = s.pos
			skipEqual = true
		} else if s.start != nil {
			from = s.start
		}
		// Collect the next candidate under the latch.
		var ck, cv []byte
		found := false
		s.tree.Ascend(from, func(k, v []byte) bool {
			if skipEqual && types.Key(k).Equal(types.Key(s.pos)) {
				return true
			}
			if s.end != nil && types.Key(k).Compare(s.end) >= 0 {
				return false
			}
			ck = append([]byte(nil), k...)
			cv = append([]byte(nil), v...)
			found = true
			return false
		})
		s.mu.Unlock()
		if !found {
			return nil, nil, false, nil
		}
		s.started = true
		s.pos = ck
		outK, outR, ok, err := s.emit(ck, cv)
		if err != nil {
			return nil, nil, false, err
		}
		if ok {
			return outK, outR, true, nil
		}
		// Entry filtered out: advance past it.
	}
}

// Pos implements core.Scan: the opaque saved position.
func (s *TreeScan) Pos() core.ScanPos {
	if !s.started {
		return core.ScanPos{0}
	}
	return append(core.ScanPos{1}, s.pos...)
}

// Restore implements core.Scan.
func (s *TreeScan) Restore(pos core.ScanPos) error {
	if len(pos) == 0 {
		return fmt.Errorf("smutil: empty scan position")
	}
	switch pos[0] {
	case 0:
		s.started = false
		s.pos = nil
	case 1:
		s.started = true
		s.pos = append([]byte(nil), pos[1:]...)
	default:
		return fmt.Errorf("smutil: bad scan position tag %d", pos[0])
	}
	return nil
}

// Close implements core.Scan.
func (s *TreeScan) Close() error {
	s.closed = true
	return nil
}

var _ core.Scan = (*TreeScan)(nil)
