// Package appendsm implements the LSM tiered-ingest storage method for
// high-rate append-mostly workloads (telemetry, audit trails, event
// streams).
//
// Writes land in a mutable memtable; when it passes a size threshold it
// is sealed into an immutable sorted run, and adjacent runs of similar
// size are merged by a tiering compactor (inline or on a background
// goroutine, per relation attribute). Each run carries a bloom filter so
// direct-by-key reads skip runs that cannot hold the key. Updates and
// deletes are regular relation semantics: a delete writes a tombstone
// that masks older runs until a full-depth merge retires it.
//
// Record keys are press sequence numbers assigned at insert. The
// reservation, the WAL append, and the memtable install happen inside one
// critical section: this method originally reserved the key, released the
// latch to log, and re-locked to append, so two inserters could observe
// the same slot — duplicate keys with records at the wrong index.
//
// Durability is the common WAL: every modification is logged before it is
// applied, undo masks the change with the inverse entry, and restart
// recovery replays the checkpoint snapshot plus the log tail into the
// memtable (run shapes are an in-memory performance artifact, not a
// durability one). The flush and compaction transitions declare fault
// sites (lsm.flush, lsm.compact) so the crash matrix can land on
// half-flushed and half-compacted states.
package appendsm

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"dmx/internal/btree"
	"dmx/internal/core"
	"dmx/internal/expr"
	"dmx/internal/fault"
	"dmx/internal/obs"
	"dmx/internal/pagefile"
	"dmx/internal/sm/smutil"
	"dmx/internal/txn"
	"dmx/internal/types"
)

// Name is the DDL name of the storage method.
const Name = "append"

// Storage attribute defaults: a 1 MiB memtable and a merge whenever four
// adjacent runs share a size tier.
const (
	defaultMemtableBytes = 1 << 20
	defaultFanout        = 4
)

// smConfig is the per-relation tuning carried in the storage descriptor.
type smConfig struct {
	memBytes    int  // memtable flush threshold in payload bytes
	fanout      int  // runs per size tier before a merge triggers
	syncCompact bool // merge inline in the mutating call (deterministic)
}

func parseAttrs(attrs core.AttrList) (smConfig, error) {
	cfg := smConfig{memBytes: defaultMemtableBytes, fanout: defaultFanout}
	if v, ok := attrs["memtable"]; ok {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return cfg, fmt.Errorf("appendsm: memtable must be a positive byte count, got %q", v)
		}
		cfg.memBytes = n
	}
	if v, ok := attrs["fanout"]; ok {
		n, err := strconv.Atoi(v)
		if err != nil || n < 2 {
			return cfg, fmt.Errorf("appendsm: fanout must be an integer >= 2, got %q", v)
		}
		cfg.fanout = n
	}
	if v, ok := attrs["compact"]; ok {
		switch v {
		case "sync":
			cfg.syncCompact = true
		case "background":
			cfg.syncCompact = false
		default:
			return cfg, fmt.Errorf("appendsm: compact must be sync or background, got %q", v)
		}
	}
	return cfg, nil
}

func encodeDesc(cfg smConfig) []byte {
	b := make([]byte, 0, 9)
	b = binary.BigEndian.AppendUint32(b, uint32(cfg.memBytes))
	b = binary.BigEndian.AppendUint32(b, uint32(cfg.fanout))
	if cfg.syncCompact {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return b
}

func decodeDesc(b []byte) (smConfig, error) {
	cfg := smConfig{memBytes: defaultMemtableBytes, fanout: defaultFanout}
	if len(b) == 0 { // descriptors from before the method carried tuning
		return cfg, nil
	}
	if len(b) != 9 {
		return cfg, fmt.Errorf("appendsm: bad storage descriptor length %d", len(b))
	}
	cfg.memBytes = int(binary.BigEndian.Uint32(b))
	cfg.fanout = int(binary.BigEndian.Uint32(b[4:]))
	cfg.syncCompact = b[8] == 1
	return cfg, nil
}

func init() {
	core.RegisterStorageMethod(&core.StorageOps{
		ID:               core.SMAppend,
		Name:             Name,
		SnapshotContents: true,
		ValidateAttrs: func(schema *types.Schema, attrs core.AttrList) error {
			if err := attrs.CheckAllowed(Name, "memtable", "fanout", "compact"); err != nil {
				return err
			}
			_, err := parseAttrs(attrs)
			return err
		},
		Create: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, attrs core.AttrList) ([]byte, error) {
			cfg, err := parseAttrs(attrs)
			if err != nil {
				return nil, err
			}
			return encodeDesc(cfg), nil
		},
		Open: func(env *core.Env, rd *core.RelDesc) (core.StorageInstance, error) {
			cfg, err := decodeDesc(rd.SMDesc)
			if err != nil {
				return nil, err
			}
			return &store{
				env:    env,
				rd:     rd,
				cfg:    cfg,
				mem:    btree.New(),
				faults: env.Faults,
				lsm:    &env.Obs.LSM,
			}, nil
		},
	})
}

// run is one immutable sorted run: press sequences ascending, values
// aligned (nil value = tombstone), plus a bloom filter over the keys.
type run struct {
	keys  []uint64
	vals  [][]byte
	bloom *bloom
	bytes int // sum of value lengths
}

// find returns the value at seq and whether the run holds an entry for it.
func (r *run) find(seq uint64) ([]byte, bool) {
	i := sort.Search(len(r.keys), func(i int) bool { return r.keys[i] >= seq })
	if i < len(r.keys) && r.keys[i] == seq {
		return r.vals[i], true
	}
	return nil, false
}

// store is the LSM storage instance for one relation.
type store struct {
	env    *core.Env
	rd     *core.RelDesc
	cfg    smConfig
	faults *fault.Injector
	lsm    *obs.LSMStats

	mu       sync.Mutex
	mem      *btree.Tree // seqKey -> encoded record; nil value = tombstone
	memBytes int         // payload bytes resident in the memtable
	runs     []*run      // immutable sorted runs, newest first
	nextSeq  uint64      // next press sequence to assign
	live     int         // records visible (non-tombstone newest versions)

	compacting atomic.Bool // one merge in flight per store
}

func seqKey(i uint64) types.Key {
	k := make(types.Key, 8)
	binary.BigEndian.PutUint64(k, i)
	return k
}

func keySeq(k types.Key) (uint64, error) {
	if len(k) != 8 {
		return 0, fmt.Errorf("appendsm: bad record key length %d", len(k))
	}
	return binary.BigEndian.Uint64(k), nil
}

// memAdd moves the resident-byte accounting (and its engine-wide gauge).
func (s *store) memAdd(d int) {
	s.memBytes += d
	s.lsm.MemtableBytes.Add(int64(d))
}

// lookupRunsLocked searches the runs newest to oldest for seq, recording
// bloom effectiveness. found distinguishes "tombstone" (nil, true) from
// "no entry anywhere" (nil, false).
func (s *store) lookupRunsLocked(seq uint64) (enc []byte, found bool) {
	for _, r := range s.runs {
		s.lsm.BloomProbes.Inc()
		if !r.bloom.mayContain(seq) {
			s.lsm.BloomSkips.Inc()
			continue
		}
		if v, ok := r.find(seq); ok {
			return v, true
		}
		s.lsm.BloomFalsePositives.Inc()
	}
	return nil, false
}

// lookupLocked returns the newest entry for seq across memtable and runs.
func (s *store) lookupLocked(seq uint64) (enc []byte, found bool) {
	if v, ok := s.mem.Get(seqKey(seq)); ok {
		return v, true
	}
	return s.lookupRunsLocked(seq)
}

// putLocked installs the newest version of seq in the memtable (enc nil =
// tombstone), maintaining the live count against whatever version it
// shadows. A tombstone for a key no run holds deletes the memtable entry
// outright — there is nothing left to mask.
func (s *store) putLocked(seq uint64, enc []byte) {
	if seq >= s.nextSeq {
		s.nextSeq = seq + 1
	}
	k := seqKey(seq)
	prev, inMem := s.mem.Get(k)
	runVal, inRuns := s.lookupRunsLocked(seq)

	priorLive := (inMem && prev != nil) || (!inMem && inRuns && runVal != nil)
	if priorLive && enc == nil {
		s.live--
	} else if !priorLive && enc != nil {
		s.live++
	}

	if inMem {
		s.memAdd(-len(prev))
	}
	if enc == nil && !inRuns {
		if inMem {
			s.mem.Delete(k)
		}
		return
	}
	s.mem.Set(k, enc)
	s.memAdd(len(enc))
}

// Insert implements core.StorageInstance: the ingest path. The sequence
// reservation, the WAL append, and the memtable install form one critical
// section so concurrent inserters cannot observe the same slot.
func (s *store) Insert(tx *txn.Txn, rec types.Record) (types.Key, error) {
	enc := rec.AppendEncode(nil)
	s.mu.Lock()
	seq := s.nextSeq
	key := seqKey(seq)
	if err := core.LogSM(tx, s.rd, core.ModPayload{Op: core.ModInsert, Key: key, New: rec}); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.nextSeq = seq + 1
	s.mem.Set(key, enc)
	s.memAdd(len(enc))
	s.live++
	err := s.maybeFlushLocked()
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := s.maintain(); err != nil {
		return nil, err
	}
	return key, nil
}

// Update implements core.StorageInstance: the newest version in the
// memtable shadows whatever run holds the old one. Keys are stable.
func (s *store) Update(tx *txn.Txn, key types.Key, oldRec, newRec types.Record) (types.Key, error) {
	seq, err := keySeq(key)
	if err != nil {
		return nil, err
	}
	enc := newRec.AppendEncode(nil)
	s.mu.Lock()
	if cur, found := s.lookupLocked(seq); !found || cur == nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("appendsm: update: %w: press %d", core.ErrNotFound, seq)
	}
	if err := core.LogSM(tx, s.rd, core.ModPayload{Op: core.ModUpdate, Key: key, NewKey: key, Old: oldRec, New: newRec}); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.putLocked(seq, enc)
	ferr := s.maybeFlushLocked()
	s.mu.Unlock()
	if ferr != nil {
		return nil, ferr
	}
	if err := s.maintain(); err != nil {
		return nil, err
	}
	return key, nil
}

// Delete implements core.StorageInstance: a tombstone masks the record
// until a full-depth merge retires both.
func (s *store) Delete(tx *txn.Txn, key types.Key, oldRec types.Record) error {
	seq, err := keySeq(key)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if cur, found := s.lookupLocked(seq); !found || cur == nil {
		s.mu.Unlock()
		return fmt.Errorf("appendsm: delete: %w: press %d", core.ErrNotFound, seq)
	}
	if err := core.LogSM(tx, s.rd, core.ModPayload{Op: core.ModDelete, Key: key, Old: oldRec}); err != nil {
		s.mu.Unlock()
		return err
	}
	s.putLocked(seq, nil)
	ferr := s.maybeFlushLocked()
	s.mu.Unlock()
	if ferr != nil {
		return ferr
	}
	return s.maintain()
}

// maybeFlushLocked seals the memtable into a run once it passes the
// configured threshold.
func (s *store) maybeFlushLocked() error {
	if s.memBytes < s.cfg.memBytes || s.mem.Len() == 0 {
		return nil
	}
	return s.flushLocked()
}

// flushLocked seals the current memtable into a new newest run. The
// transition is memory-only — durability stays with the WAL — but it is a
// lifecycle boundary recovery must survive, so it declares a fault site.
func (s *store) flushLocked() error {
	if err := s.faults.Hit(fault.SiteLSMFlush); err != nil {
		return err
	}
	n := s.mem.Len()
	r := &run{
		keys:  make([]uint64, 0, n),
		vals:  make([][]byte, 0, n),
		bloom: newBloom(n),
	}
	s.mem.Ascend(nil, func(k, v []byte) bool {
		seq := binary.BigEndian.Uint64(k)
		r.keys = append(r.keys, seq)
		r.vals = append(r.vals, v)
		r.bytes += len(v)
		r.bloom.add(seq)
		return true
	})
	s.runs = append([]*run{r}, s.runs...)
	s.mem = btree.New()
	s.memAdd(-s.memBytes)
	s.lsm.Flushes.Inc()
	s.lsm.FlushedEntries.Add(int64(n))
	s.lsm.Runs.Add(1)
	return nil
}

// tierOf buckets a run by size: tier 0 holds fresh flushes (below
// memtable*fanout bytes), each higher tier is fanout times larger.
func (s *store) tierOf(bytes int) int {
	t := 0
	limit := s.cfg.memBytes * s.cfg.fanout
	for bytes >= limit && t < 30 {
		t++
		limit *= s.cfg.fanout
	}
	return t
}

// pickMergeLocked finds the newest window of at least fanout adjacent
// runs sharing a size tier. Flushes only prepend and merges only replace
// adjacent windows, so same-tier runs stay adjacent.
func (s *store) pickMergeLocked() (lo, hi int, ok bool) {
	i := 0
	for i < len(s.runs) {
		t := s.tierOf(s.runs[i].bytes)
		j := i + 1
		for j < len(s.runs) && s.tierOf(s.runs[j].bytes) == t {
			j++
		}
		if j-i >= s.cfg.fanout {
			return i, j, true
		}
		i = j
	}
	return 0, 0, false
}

// maintain runs the compaction policy after a mutation, without the store
// latch. Sync mode merges inline until the policy is satisfied — the
// deterministic shape the differential fuzzer and crash matrix drive.
// Background mode hands the merge to a single goroutine.
func (s *store) maintain() error {
	if s.cfg.syncCompact {
		if !s.compacting.CompareAndSwap(false, true) {
			return nil // a concurrent mutator is already merging
		}
		defer s.compacting.Store(false)
		for {
			done, err := s.compactOnce(false)
			if err != nil || done {
				return err
			}
		}
	}
	s.mu.Lock()
	_, _, need := s.pickMergeLocked()
	s.mu.Unlock()
	if need && s.compacting.CompareAndSwap(false, true) {
		go func() {
			defer s.compacting.Store(false)
			for {
				// An injected fault is a simulated process death; the dead
				// "process" stops compacting.
				if done, err := s.compactOnce(false); err != nil || done {
					return
				}
			}
		}()
	}
	return nil
}

// compactOnce performs one pick-merge-install cycle. The merge runs on an
// immutable snapshot of the window outside the latch; the install splices
// the merged run back where the window still sits (flushes can only have
// prepended newer runs in the meantime). force merges all runs when the
// tiering policy is quiet (the major compaction CompactNow drives).
func (s *store) compactOnce(force bool) (done bool, err error) {
	s.mu.Lock()
	lo, hi, ok := s.pickMergeLocked()
	if !ok && force && len(s.runs) >= 2 {
		lo, hi, ok = 0, len(s.runs), true
	}
	if !ok {
		s.mu.Unlock()
		return true, nil
	}
	win := append([]*run(nil), s.runs[lo:hi]...)
	// Tombstones may be dropped only when no older run remains below the
	// window to resurrect the deleted key.
	full := hi == len(s.runs)
	s.mu.Unlock()

	merged, dropped := mergeRuns(win, full)
	if err := s.faults.Hit(fault.SiteLSMCompact); err != nil {
		return false, err
	}

	s.mu.Lock()
	at := s.findWindowLocked(win)
	if at < 0 {
		// Another merge consumed part of the window first; re-evaluate.
		s.mu.Unlock()
		return false, nil
	}
	tail := s.runs[at+len(win):]
	head := append([]*run(nil), s.runs[:at]...)
	if len(merged.keys) > 0 {
		head = append(head, merged)
	}
	s.runs = append(head, tail...)
	s.lsm.Compactions.Inc()
	s.lsm.CompactedRuns.Add(int64(len(win)))
	s.lsm.TombstonesDropped.Add(int64(dropped))
	s.lsm.Runs.Add(int64(len(s.runs)) - int64(at+len(win)+len(tail)))
	s.mu.Unlock()
	return false, nil
}

// findWindowLocked locates win (by run identity) as a contiguous window
// of s.runs, or -1 when it is no longer intact.
func (s *store) findWindowLocked(win []*run) int {
	for i := 0; i+len(win) <= len(s.runs); i++ {
		if s.runs[i] != win[0] {
			continue
		}
		match := true
		for j := 1; j < len(win); j++ {
			if s.runs[i+j] != win[j] {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}

// mergeRuns k-way merges a newest-first window into one run. At equal
// keys the newest (lowest-index) source wins; tombstones are kept as
// masks unless the window reaches the oldest run (full), in which case
// they are retired. dropped counts retired tombstones.
func mergeRuns(win []*run, full bool) (*run, int) {
	total := 0
	for _, r := range win {
		total += len(r.keys)
	}
	out := &run{
		keys:  make([]uint64, 0, total),
		vals:  make([][]byte, 0, total),
		bloom: newBloom(total),
	}
	dropped := 0
	idx := make([]int, len(win))
	for {
		min := uint64(math.MaxUint64)
		any := false
		for i, r := range win {
			if idx[i] < len(r.keys) && (!any || r.keys[idx[i]] < min) {
				min, any = r.keys[idx[i]], true
			}
		}
		if !any {
			break
		}
		var val []byte
		picked := false
		for i, r := range win {
			if idx[i] < len(r.keys) && r.keys[idx[i]] == min {
				if !picked {
					val, picked = r.vals[idx[i]], true
				}
				idx[i]++
			}
		}
		if val == nil && full {
			dropped++
			continue
		}
		out.keys = append(out.keys, min)
		out.vals = append(out.vals, val)
		out.bytes += len(val)
		out.bloom.add(min)
	}
	return out, dropped
}

// CompactNow is a major compaction: it seals the current memtable and
// merges every run down to one, retiring all tombstones (tests and
// maintenance tooling; production relies on maintain's tiering policy).
func (s *store) CompactNow() error {
	s.mu.Lock()
	var ferr error
	if s.mem.Len() > 0 {
		ferr = s.flushLocked()
	}
	s.mu.Unlock()
	if ferr != nil {
		return ferr
	}
	for {
		done, err := s.compactOnce(true)
		if err != nil || done {
			return err
		}
	}
}

// RunCount reports the resident sorted runs (introspection for tests and
// cost estimation).
func (s *store) RunCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.runs)
}

// RunInfos implements core.LSMIntrospector: one entry for the memtable
// followed by one per resident run, newest first.
func (s *store) RunInfos() []core.LSMRunInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	infos := make([]core.LSMRunInfo, 0, len(s.runs)+1)
	infos = append(infos, core.LSMRunInfo{
		Memtable: true,
		Pos:      -1,
		Tier:     -1,
		Entries:  s.mem.Len(),
		Bytes:    s.memBytes,
	})
	for i, r := range s.runs {
		info := core.LSMRunInfo{
			Pos:       i,
			Tier:      s.tierOf(r.bytes),
			Entries:   len(r.keys),
			Bytes:     r.bytes,
			BloomBits: len(r.bloom.bits) * 64,
		}
		if n := len(r.keys); n > 0 {
			info.MinSeq = r.keys[0]
			info.MaxSeq = r.keys[n-1]
		}
		infos = append(infos, info)
	}
	return infos
}

// FetchByKey implements core.StorageInstance: memtable first, then runs
// newest to oldest with bloom-filter skips.
func (s *store) FetchByKey(tx *txn.Txn, key types.Key, fields []int, filter *expr.Expr) (types.Record, error) {
	seq, err := keySeq(key)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	enc, found := s.lookupLocked(seq)
	s.mu.Unlock()
	if !found || enc == nil {
		return nil, fmt.Errorf("appendsm: %w: press %d", core.ErrNotFound, seq)
	}
	rec, _, err := types.DecodeRecord(enc)
	if err != nil {
		return nil, err
	}
	if filter != nil {
		match, err := s.env.Eval.EvalBool(filter, rec, nil)
		if err != nil {
			return nil, err
		}
		if !match {
			return nil, core.ErrFiltered
		}
	}
	if fields != nil {
		return rec.Project(fields), nil
	}
	return rec, nil
}

// OpenScan implements core.StorageInstance: press (key) order, merged
// across the memtable and every run.
func (s *store) OpenScan(tx *txn.Txn, opts core.ScanOptions) (core.Scan, error) {
	next := uint64(0)
	if opts.Start != nil {
		i, err := keySeq(opts.Start)
		if err != nil {
			return nil, err
		}
		next = i
	}
	return &scan{store: s, opts: opts, next: next}, nil
}

// EstimateCost implements core.StorageInstance. The profile the planner
// sees is read amplification: a key-sequential pass still reads every
// page once but positions in memtable plus every run, and the merge adds
// a log(sources) CPU factor per record. Direct-by-key stays cheap because
// bloom filters keep most runs untouched.
func (s *store) EstimateCost(req core.CostRequest) core.CostEstimate {
	s.mu.Lock()
	bytes := s.memBytes
	for _, r := range s.runs {
		bytes += r.bytes
	}
	sources := 1 + len(s.runs)
	n := s.live
	s.mu.Unlock()
	pages := bytes/pagefile.PageSize + 1
	return core.CostEstimate{
		Usable:      true,
		IO:          float64(pages) + float64(sources-1),
		CPU:         float64(n) * (1 + math.Log2(float64(sources))),
		Selectivity: smutil.RequestSelectivity(req),
	}
}

// RecordCount implements core.StorageInstance.
func (s *store) RecordCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.live
}

// ApplyLogged implements core.StorageInstance. Undo and redo both write
// the authoritative newest version into the memtable, masking whatever
// runs hold: undo of an insert tombstones it, undo of an update or delete
// restores the old record, redo replays the new state. Recovery never
// flushes — run shapes rebuild from fresh ingest, not from the log.
func (s *store) ApplyLogged(payload []byte, undo bool) error {
	p, err := core.DecodeMod(payload)
	if err != nil {
		return err
	}
	seq, err := keySeq(p.Key)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch p.Op {
	case core.ModInsert:
		if undo {
			s.putLocked(seq, nil)
		} else {
			s.putLocked(seq, p.New.AppendEncode(nil))
		}
	case core.ModUpdate:
		if undo {
			s.putLocked(seq, p.Old.AppendEncode(nil))
		} else {
			s.putLocked(seq, p.New.AppendEncode(nil))
		}
	case core.ModDelete:
		if undo {
			s.putLocked(seq, p.Old.AppendEncode(nil))
		} else {
			s.putLocked(seq, nil)
		}
	default:
		return fmt.Errorf("appendsm: unexpected logged op %v", p.Op)
	}
	return nil
}

var _ core.StorageInstance = (*store)(nil)

// scan is a press-order key-sequential access merged across the memtable
// and the runs. It is cursor-based: the position is the next candidate
// sequence, so concurrent flushes and compactions (which preserve logical
// contents) never invalidate it.
type scan struct {
	store  *store
	opts   core.ScanOptions
	next   uint64
	closed bool
}

// ceilingLocked returns the smallest sequence >= from together with its
// newest version (nil = tombstone).
func (s *store) ceilingLocked(from uint64) (seq uint64, enc []byte, ok bool) {
	s.mem.Ascend(seqKey(from), func(k, v []byte) bool {
		seq, enc, ok = binary.BigEndian.Uint64(k), v, true
		return false
	})
	for _, r := range s.runs {
		i := sort.Search(len(r.keys), func(i int) bool { return r.keys[i] >= from })
		if i >= len(r.keys) {
			continue
		}
		// Strictly smaller only: at equal keys the earlier (newer) source
		// already won.
		if !ok || r.keys[i] < seq {
			seq, enc, ok = r.keys[i], r.vals[i], true
		}
	}
	return seq, enc, ok
}

// Next implements core.Scan.
func (sc *scan) Next() (types.Key, types.Record, bool, error) {
	if sc.closed {
		return nil, nil, false, fmt.Errorf("appendsm: scan is closed")
	}
	s := sc.store
	for {
		s.mu.Lock()
		seq, enc, ok := s.ceilingLocked(sc.next)
		s.mu.Unlock()
		if !ok {
			return nil, nil, false, nil
		}
		key := seqKey(seq)
		if sc.opts.End != nil && key.Compare(sc.opts.End) >= 0 {
			return nil, nil, false, nil
		}
		sc.next = seq + 1
		if enc == nil {
			continue // tombstone
		}
		rec, _, err := types.DecodeRecord(enc)
		if err != nil {
			return nil, nil, false, err
		}
		if sc.opts.Filter != nil {
			match, err := s.env.Eval.EvalBool(sc.opts.Filter, rec, sc.opts.Params)
			if err != nil {
				return nil, nil, false, err
			}
			if !match {
				continue
			}
		}
		if sc.opts.Fields != nil {
			rec = rec.Project(sc.opts.Fields)
		}
		return key, rec, true, nil
	}
}

// Pos implements core.Scan.
func (sc *scan) Pos() core.ScanPos {
	return core.ScanPos(seqKey(sc.next))
}

// Restore implements core.Scan. Like Next, it refuses a closed scan.
func (sc *scan) Restore(pos core.ScanPos) error {
	if sc.closed {
		return fmt.Errorf("appendsm: scan is closed")
	}
	i, err := keySeq(types.Key(pos))
	if err != nil {
		return err
	}
	sc.next = i
	return nil
}

// Close implements core.Scan.
func (sc *scan) Close() error {
	sc.closed = true
	return nil
}
