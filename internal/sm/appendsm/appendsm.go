// Package appendsm implements the append-only "database publishing"
// storage method, simulating the read-only optical-disk media the paper
// cites as a motivating hardware opportunity.
//
// Records may only be appended (the publishing load); updates and deletes
// return core.ErrReadOnly. Record keys are press sequence numbers, reads
// are cheap and sequential, and the cost estimator reports the
// sequential-read profile to the query planner. Appends are logged so an
// aborted publishing transaction retracts its records and a published
// relation survives restart.
package appendsm

import (
	"encoding/binary"
	"fmt"
	"sync"

	"dmx/internal/core"
	"dmx/internal/expr"
	"dmx/internal/pagefile"
	"dmx/internal/sm/smutil"
	"dmx/internal/txn"
	"dmx/internal/types"
)

// Name is the DDL name of the storage method.
const Name = "append"

func init() {
	core.RegisterStorageMethod(&core.StorageOps{
		ID:               core.SMAppend,
		Name:             Name,
		SnapshotContents: true,
		ValidateAttrs: func(schema *types.Schema, attrs core.AttrList) error {
			return attrs.CheckAllowed(Name)
		},
		Create: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, attrs core.AttrList) ([]byte, error) {
			return nil, nil
		},
		Open: func(env *core.Env, rd *core.RelDesc) (core.StorageInstance, error) {
			return &store{env: env, rd: rd}, nil
		},
	})
}

// store is the append-only storage instance for one relation.
type store struct {
	env *core.Env
	rd  *core.RelDesc

	mu        sync.Mutex
	recs      [][]byte // press order; nil entries are retracted (undo only)
	liveCount int
	bytes     int
}

func seqKey(i uint64) types.Key {
	k := make(types.Key, 8)
	binary.BigEndian.PutUint64(k, i)
	return k
}

func keySeq(k types.Key) (uint64, error) {
	if len(k) != 8 {
		return 0, fmt.Errorf("appendsm: bad record key length %d", len(k))
	}
	return binary.BigEndian.Uint64(k), nil
}

// Insert implements core.StorageInstance (the publishing load path).
func (s *store) Insert(tx *txn.Txn, rec types.Record) (types.Key, error) {
	s.mu.Lock()
	key := seqKey(uint64(len(s.recs)))
	s.mu.Unlock()
	if err := core.LogSM(tx, s.rd, core.ModPayload{Op: core.ModInsert, Key: key, New: rec}); err != nil {
		return nil, err
	}
	enc := rec.AppendEncode(nil)
	s.mu.Lock()
	s.recs = append(s.recs, enc)
	s.liveCount++
	s.bytes += len(enc)
	s.mu.Unlock()
	return key, nil
}

// Update implements core.StorageInstance: published media are immutable.
func (s *store) Update(tx *txn.Txn, key types.Key, oldRec, newRec types.Record) (types.Key, error) {
	return nil, fmt.Errorf("appendsm: update: %w", core.ErrReadOnly)
}

// Delete implements core.StorageInstance: published media are immutable.
func (s *store) Delete(tx *txn.Txn, key types.Key, oldRec types.Record) error {
	return fmt.Errorf("appendsm: delete: %w", core.ErrReadOnly)
}

func (s *store) get(key types.Key) (types.Record, error) {
	i, err := keySeq(key)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if i >= uint64(len(s.recs)) || s.recs[i] == nil {
		return nil, fmt.Errorf("appendsm: %w: press %d", core.ErrNotFound, i)
	}
	rec, _, err := types.DecodeRecord(s.recs[i])
	return rec, err
}

// FetchByKey implements core.StorageInstance.
func (s *store) FetchByKey(tx *txn.Txn, key types.Key, fields []int, filter *expr.Expr) (types.Record, error) {
	rec, err := s.get(key)
	if err != nil {
		return nil, err
	}
	if filter != nil {
		match, err := s.env.Eval.EvalBool(filter, rec, nil)
		if err != nil {
			return nil, err
		}
		if !match {
			return nil, core.ErrFiltered
		}
	}
	if fields != nil {
		return rec.Project(fields), nil
	}
	return rec, nil
}

// OpenScan implements core.StorageInstance: press (append) order.
func (s *store) OpenScan(tx *txn.Txn, opts core.ScanOptions) (core.Scan, error) {
	next := uint64(0)
	if opts.Start != nil {
		i, err := keySeq(opts.Start)
		if err != nil {
			return nil, err
		}
		next = i
	}
	return &scan{store: s, opts: opts, next: next}, nil
}

// EstimateCost implements core.StorageInstance: perfectly sequential pages.
func (s *store) EstimateCost(req core.CostRequest) core.CostEstimate {
	s.mu.Lock()
	pages := s.bytes/pagefile.PageSize + 1
	n := s.liveCount
	s.mu.Unlock()
	return core.CostEstimate{
		Usable:      true,
		IO:          float64(pages),
		CPU:         float64(n),
		Selectivity: smutil.EstimateSelectivity(req.Conjuncts),
	}
}

// RecordCount implements core.StorageInstance.
func (s *store) RecordCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.liveCount
}

// ApplyLogged implements core.StorageInstance: undo retracts an append
// (the only modification the medium admits); redo re-presses it.
func (s *store) ApplyLogged(payload []byte, undo bool) error {
	p, err := core.DecodeMod(payload)
	if err != nil {
		return err
	}
	if p.Op != core.ModInsert {
		return fmt.Errorf("appendsm: unexpected logged op %v", p.Op)
	}
	i, err := keySeq(p.Key)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if undo {
		if i < uint64(len(s.recs)) && s.recs[i] != nil {
			s.bytes -= len(s.recs[i])
			s.recs[i] = nil
			s.liveCount--
		}
		return nil
	}
	for uint64(len(s.recs)) <= i {
		s.recs = append(s.recs, nil)
	}
	if s.recs[i] == nil {
		enc := p.New.AppendEncode(nil)
		s.recs[i] = enc
		s.liveCount++
		s.bytes += len(enc)
	}
	return nil
}

var _ core.StorageInstance = (*store)(nil)

// scan is a press-order key-sequential access.
type scan struct {
	store  *store
	opts   core.ScanOptions
	next   uint64
	closed bool
}

// Next implements core.Scan.
func (sc *scan) Next() (types.Key, types.Record, bool, error) {
	if sc.closed {
		return nil, nil, false, fmt.Errorf("appendsm: scan is closed")
	}
	s := sc.store
	for {
		s.mu.Lock()
		if sc.next >= uint64(len(s.recs)) {
			s.mu.Unlock()
			return nil, nil, false, nil
		}
		i := sc.next
		sc.next++
		key := seqKey(i)
		if sc.opts.End != nil && key.Compare(sc.opts.End) >= 0 {
			s.mu.Unlock()
			return nil, nil, false, nil
		}
		enc := s.recs[i]
		s.mu.Unlock()
		if enc == nil {
			continue
		}
		rec, _, err := types.DecodeRecord(enc)
		if err != nil {
			return nil, nil, false, err
		}
		if sc.opts.Filter != nil {
			match, err := s.env.Eval.EvalBool(sc.opts.Filter, rec, sc.opts.Params)
			if err != nil {
				return nil, nil, false, err
			}
			if !match {
				continue
			}
		}
		if sc.opts.Fields != nil {
			rec = rec.Project(sc.opts.Fields)
		}
		return key, rec, true, nil
	}
}

// Pos implements core.Scan.
func (sc *scan) Pos() core.ScanPos {
	return core.ScanPos(seqKey(sc.next))
}

// Restore implements core.Scan.
func (sc *scan) Restore(pos core.ScanPos) error {
	i, err := keySeq(types.Key(pos))
	if err != nil {
		return err
	}
	sc.next = i
	return nil
}

// Close implements core.Scan.
func (sc *scan) Close() error {
	sc.closed = true
	return nil
}
