package appendsm

// bloom is a fixed-size bloom filter over press-sequence keys, built once
// when a run is sealed and immutable afterwards. Sizing is ~10 bits per
// key with 6 probes, giving a false-positive rate under 1%; the k probe
// positions come from double hashing of two independent 64-bit mixes, the
// standard trick that avoids computing k real hash functions.
type bloom struct {
	bits []uint64
	k    uint32
}

const (
	bloomBitsPerKey = 10
	bloomProbes     = 6
)

// newBloom sizes a filter for n keys (n == 0 yields a tiny always-empty
// filter that correctly answers "absent" for everything).
func newBloom(n int) *bloom {
	words := (n*bloomBitsPerKey + 63) / 64
	if words == 0 {
		words = 1
	}
	return &bloom{bits: make([]uint64, words), k: bloomProbes}
}

// mix64 is the splitmix64 finalizer: a cheap invertible 64-bit mix whose
// output bits are uniformly sensitive to every input bit.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (b *bloom) add(seq uint64) {
	nbits := uint64(len(b.bits)) * 64
	h1 := mix64(seq)
	h2 := mix64(seq ^ 0x9e3779b97f4a7c15)
	h2 |= 1 // odd stride so probes cover the table
	for i := uint32(0); i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % nbits
		b.bits[bit/64] |= 1 << (bit % 64)
	}
}

func (b *bloom) mayContain(seq uint64) bool {
	nbits := uint64(len(b.bits)) * 64
	h1 := mix64(seq)
	h2 := mix64(seq ^ 0x9e3779b97f4a7c15)
	h2 |= 1
	for i := uint32(0); i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % nbits
		if b.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}
