package appendsm_test

import (
	"errors"
	"runtime"
	"sync"
	"testing"

	"dmx/internal/core"
	"dmx/internal/expr"
	"dmx/internal/fault"
	_ "dmx/internal/sm/appendsm"
	"dmx/internal/types"
	"dmx/internal/wal"
)

func schema() *types.Schema {
	return types.MustSchema(
		types.Column{Name: "id", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "title", Kind: types.KindString},
	)
}

func mkAttrs(t *testing.T, env *core.Env, attrs core.AttrList) *core.Relation {
	t.Helper()
	tx := env.Begin()
	rd, err := env.CreateRelation(tx, "pub", schema(), "append", attrs)
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	r, _ := env.OpenRelation(rd)
	return r
}

func mk(t *testing.T, env *core.Env) *core.Relation {
	return mkAttrs(t, env, nil)
}

// tinyLSM shapes the store so flushes and merges happen within a few
// records: ~tens of bytes per memtable, merge at two adjacent runs,
// inline compaction.
func tinyLSM() core.AttrList {
	return core.AttrList{"memtable": "64", "fanout": "2", "compact": "sync"}
}

func rec(id int64, title string) types.Record {
	return types.Record{types.Int(id), types.Str(title)}
}

// lsmIntrospect is the store's test/tooling surface beyond
// core.StorageInstance.
type lsmIntrospect interface {
	CompactNow() error
	RunCount() int
}

func scanAll(t *testing.T, env *core.Env, r *core.Relation) []types.Record {
	t.Helper()
	tx := env.Begin()
	defer tx.Commit()
	scan, err := r.OpenScan(tx, core.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer scan.Close()
	var out []types.Record
	for {
		_, g, ok, err := scan.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, g)
	}
}

func TestPublishAndRead(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := mk(t, env)
	tx := env.Begin()
	keys := []types.Key{}
	for i := 0; i < 100; i++ {
		k, err := r.Insert(tx, rec(int64(i), "article"))
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	tx.Commit()
	if r.Storage().RecordCount() != 100 {
		t.Fatal("count")
	}
	tx2 := env.Begin()
	got, err := r.Fetch(tx2, keys[42], nil, nil)
	if err != nil || got[0].AsInt() != 42 {
		t.Fatalf("fetch: %v %v", got, err)
	}
	// Press-order scan with filter.
	scan, _ := r.OpenScan(tx2, core.ScanOptions{
		Filter: expr.Lt(expr.Field(0), expr.Const(types.Int(5))),
	})
	n := 0
	prev := int64(-1)
	for {
		_, g, ok, err := scan.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if g[0].AsInt() <= prev {
			t.Fatal("press order violated")
		}
		prev = g[0].AsInt()
		n++
	}
	if n != 5 {
		t.Fatalf("filtered scan = %d", n)
	}
	tx2.Commit()
}

// TestConcurrentInsertUniqueKeys is the regression test for the
// duplicate-key race: the original Insert reserved its press sequence
// under the latch, released it to log, and re-locked to append, so two
// concurrent inserters could observe the same slot. Every key must be
// unique and must fetch back exactly the record inserted under it.
func TestConcurrentInsertUniqueKeys(t *testing.T) {
	// A single-P scheduler never switches goroutines inside the race
	// window; multiple OS threads time-sliced by the kernel do, even on
	// one core.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	env := core.NewEnv(core.Config{})
	r := mk(t, env)

	const workers = 8
	const each = 400
	// A fat payload makes the logging step dominate each insert, so most
	// thread preemptions land inside the reserve-log-install sequence.
	pad := string(make([]byte, 512))
	type pair struct {
		key types.Key
		id  int64
	}
	got := make([][]pair, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tx := env.Begin()
			for i := 0; i < each; i++ {
				id := int64(w*each + i)
				k, err := r.Insert(tx, rec(id, pad))
				if err != nil {
					t.Errorf("worker %d: insert: %v", w, err)
					tx.Abort()
					return
				}
				got[w] = append(got[w], pair{key: k, id: id})
			}
			if err := tx.Commit(); err != nil {
				t.Errorf("worker %d: commit: %v", w, err)
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	if n := r.Storage().RecordCount(); n != workers*each {
		t.Fatalf("record count = %d, want %d", n, workers*each)
	}
	seen := map[string]bool{}
	tx := env.Begin()
	defer tx.Commit()
	for w := range got {
		for _, p := range got[w] {
			ks := string(p.key)
			if seen[ks] {
				t.Fatalf("duplicate key %x handed to two inserters", p.key)
			}
			seen[ks] = true
			back, err := r.Fetch(tx, p.key, nil, nil)
			if err != nil {
				t.Fatalf("fetch %x: %v", p.key, err)
			}
			if back[0].AsInt() != p.id {
				t.Fatalf("key %x: fetched id %d, inserted %d (record at wrong slot)",
					p.key, back[0].AsInt(), p.id)
			}
		}
	}
}

func TestUpdateAndDeleteAcrossFlush(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := mkAttrs(t, env, tinyLSM())
	tx := env.Begin()
	var keys []types.Key
	for i := 0; i < 20; i++ {
		k, err := r.Insert(tx, rec(int64(i), "v0"))
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	// Key 3 has long since been flushed into a run; the update masks it
	// from the memtable and the key stays stable.
	nk, err := r.Update(tx, keys[3], rec(3, "v1"))
	if err != nil {
		t.Fatalf("update: %v", err)
	}
	if !nk.Equal(keys[3]) {
		t.Fatalf("update moved the key: %x -> %x", keys[3], nk)
	}
	if err := r.Delete(tx, keys[7]); err != nil {
		t.Fatalf("delete: %v", err)
	}
	tx.Commit()

	if n := r.Storage().RecordCount(); n != 19 {
		t.Fatalf("count = %d, want 19", n)
	}
	tx2 := env.Begin()
	got, err := r.Fetch(tx2, keys[3], nil, nil)
	if err != nil || got[1].S != "v1" {
		t.Fatalf("fetch updated: %v %v", got, err)
	}
	if _, err := r.Fetch(tx2, keys[7], nil, nil); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("deleted key visible: %v", err)
	}
	tx2.Commit()
	rows := scanAll(t, env, r)
	if len(rows) != 19 {
		t.Fatalf("scan = %d rows, want 19", len(rows))
	}
	for _, g := range rows {
		if g[0].AsInt() == 7 {
			t.Fatal("deleted record in scan")
		}
		if g[0].AsInt() == 3 && g[1].S != "v1" {
			t.Fatalf("scan sees stale version: %v", g)
		}
	}
}

// TestTombstoneRetiredByCompaction deletes a key whose record sits in an
// older run, then forces a full-depth merge: the key must stay invisible
// to scans and FetchByKey after the merge retires both the record and the
// tombstone.
func TestTombstoneRetiredByCompaction(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := mkAttrs(t, env, tinyLSM())
	tx := env.Begin()
	var keys []types.Key
	for i := 0; i < 24; i++ {
		k, err := r.Insert(tx, rec(int64(i), "article-body-padding"))
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	if err := r.Delete(tx, keys[5]); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	st := r.Storage().(lsmIntrospect)
	dropped0 := env.Obs.LSM.TombstonesDropped.Load()
	if err := st.CompactNow(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if n := st.RunCount(); n != 1 {
		t.Fatalf("major compaction left %d runs", n)
	}
	if d := env.Obs.LSM.TombstonesDropped.Load(); d <= dropped0 {
		t.Fatalf("no tombstone retired (dropped %d -> %d)", dropped0, d)
	}

	tx2 := env.Begin()
	if _, err := r.Fetch(tx2, keys[5], nil, nil); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("deleted key resurfaced after compaction: %v", err)
	}
	tx2.Commit()
	for _, g := range scanAll(t, env, r) {
		if g[0].AsInt() == 5 {
			t.Fatal("deleted record resurfaced in scan after compaction")
		}
	}
	if n := r.Storage().RecordCount(); n != 23 {
		t.Fatalf("count = %d, want 23", n)
	}
}

func TestAbortedPublishRetracts(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := mk(t, env)
	tx := env.Begin()
	r.Insert(tx, rec(1, "kept"))
	tx.Commit()
	tx2 := env.Begin()
	r.Insert(tx2, rec(2, "retracted"))
	r.Insert(tx2, rec(3, "retracted"))
	tx2.Abort()
	if r.Storage().RecordCount() != 1 {
		t.Fatalf("count after abort = %d", r.Storage().RecordCount())
	}
	// Scan skips retracted presses.
	if n := len(scanAll(t, env, r)); n != 1 {
		t.Fatalf("scan after abort = %d", n)
	}
}

// TestAbortAcrossFlushMasksRuns aborts a transaction whose inserts and
// updates were already flushed into runs: the undo tombstones must mask
// the flushed versions.
func TestAbortAcrossFlushMasksRuns(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := mkAttrs(t, env, tinyLSM())
	tx := env.Begin()
	k, err := r.Insert(tx, rec(1, "keep-v0"))
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	loser := env.Begin()
	if _, err := r.Update(loser, k, rec(1, "loser-v1")); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 30; i++ { // push the update and inserts through flushes
		if _, err := r.Insert(loser, rec(int64(i), "loser-padding-xx")); err != nil {
			t.Fatal(err)
		}
	}
	loser.Abort()

	if n := r.Storage().RecordCount(); n != 1 {
		t.Fatalf("count after abort = %d, want 1", n)
	}
	tx2 := env.Begin()
	got, err := r.Fetch(tx2, k, nil, nil)
	if err != nil || got[1].S != "keep-v0" {
		t.Fatalf("aborted update not rolled back: %v %v", got, err)
	}
	tx2.Commit()
}

func TestRecoveryReplaysPresses(t *testing.T) {
	log := wal.New()
	env := core.NewEnv(core.Config{Log: log})
	r := mk(t, env)
	tx := env.Begin()
	for i := 0; i < 20; i++ {
		r.Insert(tx, rec(int64(i), "x"))
	}
	tx.Commit()
	loser := env.Begin()
	r.Insert(loser, rec(99, "loser"))

	env2 := core.NewEnv(core.Config{Log: log})
	if err := env2.Recover(); err != nil {
		t.Fatal(err)
	}
	r2, err := env2.OpenRelationByName("pub")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Storage().RecordCount() != 20 {
		t.Fatalf("recovered count = %d", r2.Storage().RecordCount())
	}
}

// TestRecoveryReplaysTombstones crashes after updates and deletes crossed
// flush and compaction boundaries; replaying the WAL into a fresh
// memtable must reproduce the exact logical state, and new inserts must
// not reuse press sequences.
func TestRecoveryReplaysTombstones(t *testing.T) {
	log := wal.New()
	env := core.NewEnv(core.Config{Log: log})
	r := mkAttrs(t, env, tinyLSM())
	tx := env.Begin()
	var keys []types.Key
	for i := 0; i < 24; i++ {
		k, err := r.Insert(tx, rec(int64(i), "v0-padding-padding"))
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	if _, err := r.Update(tx, keys[2], rec(2, "v1")); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(tx, keys[9]); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	env2 := core.NewEnv(core.Config{Log: log})
	if err := env2.Recover(); err != nil {
		t.Fatal(err)
	}
	r2, err := env2.OpenRelationByName("pub")
	if err != nil {
		t.Fatal(err)
	}
	if n := r2.Storage().RecordCount(); n != 23 {
		t.Fatalf("recovered count = %d, want 23", n)
	}
	tx2 := env2.Begin()
	got, err := r2.Fetch(tx2, keys[2], nil, nil)
	if err != nil || got[1].S != "v1" {
		t.Fatalf("recovered update: %v %v", got, err)
	}
	if _, err := r2.Fetch(tx2, keys[9], nil, nil); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("recovered delete visible: %v", err)
	}
	// Fresh ingest must continue above the recovered sequence high-water.
	nk, err := r2.Insert(tx2, rec(100, "post-recovery"))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if nk.Equal(k) {
			t.Fatalf("recovered store reused press key %x", nk)
		}
	}
	tx2.Commit()
}

// TestFlushAndCompactionLifecycle drives enough ingest through a tiny
// memtable that flushes and merges both happen, and checks the
// observability counters and the bounded run count.
func TestFlushAndCompactionLifecycle(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := mkAttrs(t, env, tinyLSM())
	tx := env.Begin()
	for i := 0; i < 200; i++ {
		if _, err := r.Insert(tx, rec(int64(i), "padding-padding-padding")); err != nil {
			t.Fatal(err)
		}
	}
	tx.Commit()

	lsm := env.Obs.Snapshot().LSM
	if lsm.Flushes == 0 {
		t.Fatal("no memtable flush despite tiny threshold")
	}
	if lsm.Compactions == 0 {
		t.Fatal("no compaction despite fanout 2")
	}
	if lsm.MemtableBytesMax == 0 {
		t.Fatal("memtable gauge never moved")
	}
	// The tiering policy keeps the run count bounded far below the flush
	// count.
	if rc := r.Storage().(lsmIntrospect).RunCount(); int64(rc) >= lsm.Flushes {
		t.Fatalf("%d runs resident after %d flushes: compaction not bounding", rc, lsm.Flushes)
	}
	if n := r.Storage().RecordCount(); n != 200 {
		t.Fatalf("count = %d", n)
	}
	// Direct-by-key across many runs: blooms must be consulted.
	tx2 := env.Begin()
	for i := 0; i < 200; i += 17 {
		k := make(types.Key, 8)
		k[7] = byte(i) // press sequences 0..199 fit one byte
		if _, err := r.Fetch(tx2, k, nil, nil); err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
	}
	tx2.Commit()
	if probes := env.Obs.LSM.BloomProbes.Load(); probes == 0 {
		t.Fatal("direct-by-key never consulted a bloom filter")
	}
}

func TestFaultSitesFire(t *testing.T) {
	for _, site := range fault.LSMSites() {
		inj := fault.New()
		inj.Arm(site, 1)
		env := core.NewEnv(core.Config{Faults: inj})
		r := mkAttrs(t, env, tinyLSM())
		tx := env.Begin()
		var err error
		for i := 0; i < 100 && err == nil; i++ {
			_, err = r.Insert(tx, rec(int64(i), "padding-padding-padding"))
		}
		if !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("site %s: ingest survived 100 inserts (err=%v)", site, err)
		}
		if !inj.Crashed() {
			t.Fatalf("site %s: never reached", site)
		}
	}
}

func TestScanRestoreAfterCloseRejected(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := mk(t, env)
	tx := env.Begin()
	r.Insert(tx, rec(1, "x"))
	tx.Commit()
	tx2 := env.Begin()
	defer tx2.Commit()
	scan, err := r.OpenScan(tx2, core.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pos := scan.Pos()
	if err := scan.Restore(pos); err != nil {
		t.Fatalf("restore on open scan: %v", err)
	}
	if err := scan.Close(); err != nil {
		t.Fatal(err)
	}
	if err := scan.Restore(pos); err == nil {
		t.Fatal("restore after close succeeded")
	}
	if _, _, _, err := scan.Next(); err == nil {
		t.Fatal("next after close succeeded")
	}
}

func TestReadAmplificationCostProfile(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := mk(t, env)
	tx := env.Begin()
	for i := 0; i < 500; i++ {
		r.Insert(tx, rec(int64(i), "padding-padding-padding"))
	}
	tx.Commit()
	// Everything is in the memtable: one source, CPU is the plain record
	// count.
	est := r.Storage().EstimateCost(core.CostRequest{})
	if !est.Usable || est.IO < 1 || est.CPU != 500 {
		t.Fatalf("single-source estimate = %+v", est)
	}

	// A store fragmented into runs must report a strictly worse profile
	// for the same logical contents.
	env2 := core.NewEnv(core.Config{})
	r2 := mkAttrs(t, env2, core.AttrList{"memtable": "64", "fanout": "100", "compact": "sync"})
	tx2 := env2.Begin()
	for i := 0; i < 500; i++ {
		r2.Insert(tx2, rec(int64(i), "padding-padding-padding"))
	}
	tx2.Commit()
	if rc := r2.Storage().(lsmIntrospect).RunCount(); rc < 2 {
		t.Fatalf("fragmentation setup failed: %d runs", rc)
	}
	est2 := r2.Storage().EstimateCost(core.CostRequest{})
	if est2.CPU <= est.CPU || est2.IO <= est.IO {
		t.Fatalf("read amplification not reported: fragmented %+v vs compact %+v", est2, est)
	}
}

func TestAttrValidation(t *testing.T) {
	env := core.NewEnv(core.Config{})
	bad := []core.AttrList{
		{"memtable": "0"},
		{"memtable": "x"},
		{"fanout": "1"},
		{"compact": "later"},
		{"bogus": "1"},
	}
	for _, attrs := range bad {
		tx := env.Begin()
		if _, err := env.CreateRelation(tx, "bad", schema(), "append", attrs); err == nil {
			t.Fatalf("attrs %v accepted", attrs)
		}
		tx.Abort()
	}
}
