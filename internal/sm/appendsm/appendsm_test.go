package appendsm_test

import (
	"errors"
	"testing"

	"dmx/internal/core"
	"dmx/internal/expr"
	_ "dmx/internal/sm/appendsm"
	"dmx/internal/types"
	"dmx/internal/wal"
)

func schema() *types.Schema {
	return types.MustSchema(
		types.Column{Name: "id", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "title", Kind: types.KindString},
	)
}

func mk(t *testing.T, env *core.Env) *core.Relation {
	t.Helper()
	tx := env.Begin()
	rd, err := env.CreateRelation(tx, "pub", schema(), "append", nil)
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	r, _ := env.OpenRelation(rd)
	return r
}

func rec(id int64, title string) types.Record {
	return types.Record{types.Int(id), types.Str(title)}
}

func TestPublishAndRead(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := mk(t, env)
	tx := env.Begin()
	keys := []types.Key{}
	for i := 0; i < 100; i++ {
		k, err := r.Insert(tx, rec(int64(i), "article"))
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	tx.Commit()
	if r.Storage().RecordCount() != 100 {
		t.Fatal("count")
	}
	tx2 := env.Begin()
	got, err := r.Fetch(tx2, keys[42], nil, nil)
	if err != nil || got[0].AsInt() != 42 {
		t.Fatalf("fetch: %v %v", got, err)
	}
	// Press-order scan with filter.
	scan, _ := r.OpenScan(tx2, core.ScanOptions{
		Filter: expr.Lt(expr.Field(0), expr.Const(types.Int(5))),
	})
	n := 0
	prev := int64(-1)
	for {
		_, g, ok, err := scan.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if g[0].AsInt() <= prev {
			t.Fatal("press order violated")
		}
		prev = g[0].AsInt()
		n++
	}
	if n != 5 {
		t.Fatalf("filtered scan = %d", n)
	}
	tx2.Commit()
}

func TestUpdatesAndDeletesRejected(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := mk(t, env)
	tx := env.Begin()
	k, _ := r.Insert(tx, rec(1, "x"))
	if _, err := r.Update(tx, k, rec(1, "y")); !errors.Is(err, core.ErrReadOnly) {
		t.Fatalf("update: %v", err)
	}
	if err := r.Delete(tx, k); !errors.Is(err, core.ErrReadOnly) {
		t.Fatalf("delete: %v", err)
	}
	// The failed modification must not corrupt the record.
	got, err := r.Fetch(tx, k, nil, nil)
	if err != nil || got[1].S != "x" {
		t.Fatalf("fetch after rejects: %v %v", got, err)
	}
	tx.Commit()
}

func TestAbortedPublishRetracts(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := mk(t, env)
	tx := env.Begin()
	r.Insert(tx, rec(1, "kept"))
	tx.Commit()
	tx2 := env.Begin()
	r.Insert(tx2, rec(2, "retracted"))
	r.Insert(tx2, rec(3, "retracted"))
	tx2.Abort()
	if r.Storage().RecordCount() != 1 {
		t.Fatalf("count after abort = %d", r.Storage().RecordCount())
	}
	// Scan skips retracted presses.
	tx3 := env.Begin()
	scan, _ := r.OpenScan(tx3, core.ScanOptions{})
	n := 0
	for {
		_, _, ok, err := scan.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 1 {
		t.Fatalf("scan after abort = %d", n)
	}
	tx3.Commit()
}

func TestRecoveryReplaysPresses(t *testing.T) {
	log := wal.New()
	env := core.NewEnv(core.Config{Log: log})
	r := mk(t, env)
	tx := env.Begin()
	for i := 0; i < 20; i++ {
		r.Insert(tx, rec(int64(i), "x"))
	}
	tx.Commit()
	loser := env.Begin()
	r.Insert(loser, rec(99, "loser"))

	env2 := core.NewEnv(core.Config{Log: log})
	if err := env2.Recover(); err != nil {
		t.Fatal(err)
	}
	r2, err := env2.OpenRelationByName("pub")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Storage().RecordCount() != 20 {
		t.Fatalf("recovered count = %d", r2.Storage().RecordCount())
	}
}

func TestSequentialCostProfile(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := mk(t, env)
	tx := env.Begin()
	for i := 0; i < 500; i++ {
		r.Insert(tx, rec(int64(i), "padding-padding-padding"))
	}
	tx.Commit()
	est := r.Storage().EstimateCost(core.CostRequest{})
	if !est.Usable || est.IO < 1 || est.CPU != 500 {
		t.Fatalf("estimate = %+v", est)
	}
}
