package btreesm_test

import (
	"errors"
	"fmt"
	"testing"

	"dmx/internal/core"
	"dmx/internal/expr"
	"dmx/internal/sm/btreesm"
	_ "dmx/internal/sm/btreesm"
	"dmx/internal/types"
	"dmx/internal/wal"
)

func schema() *types.Schema {
	return types.MustSchema(
		types.Column{Name: "dept", Kind: types.KindString, NotNull: true},
		types.Column{Name: "id", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "name", Kind: types.KindString},
	)
}

func mk(t *testing.T, env *core.Env, attrs core.AttrList) *core.Relation {
	t.Helper()
	tx := env.Begin()
	rd, err := env.CreateRelation(tx, "emp", schema(), "btree", attrs)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	r, err := env.OpenRelation(rd)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func rec(dept string, id int64, name string) types.Record {
	return types.Record{types.Str(dept), types.Int(id), types.Str(name)}
}

func TestRequiresKeyAttr(t *testing.T) {
	env := core.NewEnv(core.Config{})
	tx := env.Begin()
	if _, err := env.CreateRelation(tx, "x", schema(), "btree", nil); err == nil {
		t.Fatal("missing key attribute accepted")
	}
	if _, err := env.CreateRelation(tx, "x", schema(), "btree", core.AttrList{"key": "nope"}); err == nil {
		t.Fatal("unknown key column accepted")
	}
	if _, err := env.CreateRelation(tx, "x", schema(), "btree", core.AttrList{"color": "red", "key": "id"}); err == nil {
		t.Fatal("unknown attribute accepted")
	}
	tx.Commit()
}

func TestInsertFetchKeyComposition(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := mk(t, env, core.AttrList{"key": "dept,id"})
	tx := env.Begin()
	key, err := r.Insert(tx, rec("eng", 1, "ada"))
	if err != nil {
		t.Fatal(err)
	}
	// The record key is composed from the key fields.
	want := types.EncodeKeyValues(types.Str("eng"), types.Int(1))
	if !key.Equal(want) {
		t.Fatalf("key = %v, want %v", key, want)
	}
	got, err := r.Fetch(tx, key, nil, nil)
	if err != nil || got[2].S != "ada" {
		t.Fatalf("fetch: %v %v", got, err)
	}
	tx.Commit()
}

func TestDuplicateKeyRejected(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := mk(t, env, core.AttrList{"key": "id"})
	tx := env.Begin()
	if _, err := r.Insert(tx, rec("eng", 1, "a")); err != nil {
		t.Fatal(err)
	}
	_, err := r.Insert(tx, rec("ops", 1, "b"))
	if !errors.Is(err, btreesm.ErrDuplicateKey) {
		t.Fatalf("want ErrDuplicateKey, got %v", err)
	}
	// The failed insert must not leave partial effects.
	if r.Storage().RecordCount() != 1 {
		t.Fatal("count after duplicate")
	}
	tx.Commit()
}

func TestUpdateMovesOnKeyChange(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := mk(t, env, core.AttrList{"key": "id"})
	tx := env.Begin()
	k, _ := r.Insert(tx, rec("eng", 1, "a"))
	nk, err := r.Update(tx, k, rec("eng", 2, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if nk.Equal(k) {
		t.Fatal("key-field update should move the record")
	}
	if _, err := r.Fetch(tx, k, nil, nil); !errors.Is(err, core.ErrNotFound) {
		t.Fatal("old key should be gone")
	}
	// Non-key update keeps the key.
	nk2, err := r.Update(tx, nk, rec("eng", 2, "b"))
	if err != nil || !nk2.Equal(nk) {
		t.Fatalf("non-key update: %v %v", nk2, err)
	}
	tx.Commit()
}

func TestKeyOrderScanWithBounds(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := mk(t, env, core.AttrList{"key": "id"})
	tx := env.Begin()
	for _, id := range []int64{5, 1, 9, 3, 7} {
		r.Insert(tx, rec("eng", id, fmt.Sprintf("p%d", id)))
	}
	start := types.EncodeKeyValues(types.Int(3))
	end := types.EncodeKeyValues(types.Int(8))
	scan, err := r.OpenScan(tx, core.ScanOptions{Start: start, End: end})
	if err != nil {
		t.Fatal(err)
	}
	var ids []int64
	for {
		_, got, ok, err := scan.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		ids = append(ids, got[1].AsInt())
	}
	if len(ids) != 3 || ids[0] != 3 || ids[1] != 5 || ids[2] != 7 {
		t.Fatalf("range scan ids = %v", ids)
	}
	tx.Commit()
}

func TestCostEstimateRecognisesKeyPredicates(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := mk(t, env, core.AttrList{"key": "id"})
	tx := env.Begin()
	for i := 0; i < 1000; i++ {
		r.Insert(tx, rec("eng", int64(i), "x"))
	}
	tx.Commit()

	// Point predicate on the key: near-constant cost.
	point := r.Storage().EstimateCost(core.CostRequest{
		Conjuncts: []*expr.Expr{expr.Eq(expr.Field(1), expr.Const(types.Int(5)))},
	})
	if !point.Usable || point.CPU > 10 || len(point.Handled) != 1 {
		t.Fatalf("point estimate = %+v", point)
	}
	if point.Start == nil || point.End == nil {
		t.Fatal("point estimate should carry key bounds")
	}
	// Range predicate: fractional cost.
	rng := r.Storage().EstimateCost(core.CostRequest{
		Conjuncts: []*expr.Expr{expr.Lt(expr.Field(1), expr.Const(types.Int(100)))},
	})
	if rng.CPU <= point.CPU || rng.CPU >= 1000 {
		t.Fatalf("range estimate = %+v", rng)
	}
	// Predicate on a non-key field: full scan cost.
	full := r.Storage().EstimateCost(core.CostRequest{
		Conjuncts: []*expr.Expr{expr.Eq(expr.Field(2), expr.Const(types.Str("x")))},
	})
	if full.CPU != 1000 || len(full.Handled) != 0 {
		t.Fatalf("full estimate = %+v", full)
	}
}

func TestAbortAndRecovery(t *testing.T) {
	log := wal.New()
	env := core.NewEnv(core.Config{Log: log})
	r := mk(t, env, core.AttrList{"key": "id"})

	tx := env.Begin()
	k1, _ := r.Insert(tx, rec("eng", 1, "keep"))
	tx.Commit()

	tx2 := env.Begin()
	r.Insert(tx2, rec("eng", 2, "drop"))
	r.Update(tx2, k1, rec("eng", 1, "changed"))
	tx2.Abort()
	if r.Storage().RecordCount() != 1 {
		t.Fatalf("count after abort = %d", r.Storage().RecordCount())
	}
	tx3 := env.Begin()
	got, _ := r.Fetch(tx3, k1, nil, nil)
	if got[2].S != "keep" {
		t.Fatalf("after abort: %v", got)
	}
	// Key-moving update aborted: both keys correct.
	r.Update(tx3, k1, rec("eng", 10, "moved"))
	tx3.Abort()
	tx4 := env.Begin()
	if _, err := r.Fetch(tx4, k1, nil, nil); err != nil {
		t.Fatalf("original key lost after aborted move: %v", err)
	}
	tx4.Commit()

	// Restart recovery.
	env2 := core.NewEnv(core.Config{Log: log})
	if err := env2.Recover(); err != nil {
		t.Fatal(err)
	}
	r2, err := env2.OpenRelationByName("emp")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Storage().RecordCount() != 1 {
		t.Fatalf("recovered count = %d", r2.Storage().RecordCount())
	}
	tx5 := env2.Begin()
	got, err = r2.Fetch(tx5, k1, nil, nil)
	if err != nil || got[2].S != "keep" {
		t.Fatalf("recovered: %v %v", got, err)
	}
	tx5.Commit()
}
