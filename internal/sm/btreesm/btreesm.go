// Package btreesm implements the B-tree-organised relation storage method:
// the records of the relation are stored in the leaves of a B-tree, as the
// paper suggests for alternative recoverable storage methods.
//
// The record key is composed from a subset of the record's fields, chosen
// by the DDL attribute list (key=col1,col2,...), using the
// order-preserving field encoding — so direct-by-key accesses and
// key-sequential range scans over the key columns are cheap, which the
// cost estimator reports to the query planner.
package btreesm

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
	"sync"

	"dmx/internal/btree"
	"dmx/internal/core"
	"dmx/internal/expr"
	"dmx/internal/sm/smutil"
	"dmx/internal/txn"
	"dmx/internal/types"
)

// Name is the DDL name of the storage method.
const Name = "btree"

// ErrDuplicateKey is returned when inserting a record whose key fields
// collide with a stored record.
var ErrDuplicateKey = fmt.Errorf("btreesm: duplicate key")

func init() {
	core.RegisterStorageMethod(&core.StorageOps{
		ID:               core.SMBTree,
		Name:             Name,
		SnapshotContents: true,
		ValidateAttrs: func(schema *types.Schema, attrs core.AttrList) error {
			if err := attrs.CheckAllowed(Name, "key"); err != nil {
				return err
			}
			_, err := parseKeyAttr(schema, attrs)
			return err
		},
		Create: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, attrs core.AttrList) ([]byte, error) {
			fields, err := parseKeyAttr(rd.Schema, attrs)
			if err != nil {
				return nil, err
			}
			return encodeDesc(fields), nil
		},
		Open: func(env *core.Env, rd *core.RelDesc) (core.StorageInstance, error) {
			fields, err := decodeDesc(rd.SMDesc)
			if err != nil {
				return nil, err
			}
			return &store{env: env, rd: rd, keyFields: fields, tree: btree.New()}, nil
		},
	})
}

func parseKeyAttr(schema *types.Schema, attrs core.AttrList) ([]int, error) {
	spec, ok := attrs.Get("key")
	if !ok || spec == "" {
		return nil, fmt.Errorf("btreesm: the btree storage method requires a key=col,... attribute")
	}
	var fields []int
	for _, name := range strings.Split(spec, ",") {
		i := schema.ColIndex(strings.TrimSpace(name))
		if i < 0 {
			return nil, fmt.Errorf("btreesm: key column %q not in schema", strings.TrimSpace(name))
		}
		fields = append(fields, i)
	}
	return fields, nil
}

func encodeDesc(fields []int) []byte {
	out := []byte{byte(len(fields))}
	for _, f := range fields {
		out = binary.BigEndian.AppendUint16(out, uint16(f))
	}
	return out
}

func decodeDesc(b []byte) ([]int, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("btreesm: empty storage descriptor")
	}
	n := int(b[0])
	if len(b) < 1+2*n {
		return nil, fmt.Errorf("btreesm: truncated storage descriptor")
	}
	fields := make([]int, n)
	for i := 0; i < n; i++ {
		fields[i] = int(binary.BigEndian.Uint16(b[1+2*i:]))
	}
	return fields, nil
}

// store is the B-tree-organised storage instance for one relation.
type store struct {
	env       *core.Env
	rd        *core.RelDesc
	keyFields []int

	mu   sync.Mutex
	tree *btree.Tree // record key -> encoded record
}

// KeyOf composes the record key from the record's key fields.
func (s *store) KeyOf(rec types.Record) types.Key {
	return types.EncodeKeyFields(rec, s.keyFields)
}

// Insert implements core.StorageInstance.
func (s *store) Insert(tx *txn.Txn, rec types.Record) (types.Key, error) {
	key := s.KeyOf(rec)
	s.mu.Lock()
	_, dup := s.tree.Get(key)
	s.mu.Unlock()
	if dup {
		return nil, fmt.Errorf("%w: %v", ErrDuplicateKey, rec.Project(s.keyFields))
	}
	if err := core.LogSM(tx, s.rd, core.ModPayload{Op: core.ModInsert, Key: key, New: rec}); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.tree.Set(key, rec.AppendEncode(nil))
	s.mu.Unlock()
	return key, nil
}

// Update implements core.StorageInstance: updating key fields moves the
// record to its new key position.
func (s *store) Update(tx *txn.Txn, key types.Key, oldRec, newRec types.Record) (types.Key, error) {
	newKey := s.KeyOf(newRec)
	s.mu.Lock()
	_, exists := s.tree.Get(key)
	var dup bool
	if !newKey.Equal(key) {
		_, dup = s.tree.Get(newKey)
	}
	s.mu.Unlock()
	if !exists {
		return nil, fmt.Errorf("%w: %v", core.ErrNotFound, key)
	}
	if dup {
		return nil, fmt.Errorf("%w: %v", ErrDuplicateKey, newRec.Project(s.keyFields))
	}
	if err := core.LogSM(tx, s.rd, core.ModPayload{Op: core.ModUpdate, Key: key, NewKey: newKey, Old: oldRec, New: newRec}); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if !newKey.Equal(key) {
		s.tree.Delete(key)
	}
	s.tree.Set(newKey, newRec.AppendEncode(nil))
	s.mu.Unlock()
	return newKey, nil
}

// Delete implements core.StorageInstance.
func (s *store) Delete(tx *txn.Txn, key types.Key, oldRec types.Record) error {
	if err := core.LogSM(tx, s.rd, core.ModPayload{Op: core.ModDelete, Key: key, Old: oldRec}); err != nil {
		return err
	}
	s.mu.Lock()
	_, ok := s.tree.Delete(key)
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %v", core.ErrNotFound, key)
	}
	return nil
}

// FetchByKey implements core.StorageInstance.
func (s *store) FetchByKey(tx *txn.Txn, key types.Key, fields []int, filter *expr.Expr) (types.Record, error) {
	s.mu.Lock()
	enc, ok := s.tree.Get(key)
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %v", core.ErrNotFound, key)
	}
	rec, _, err := types.DecodeRecord(enc)
	if err != nil {
		return nil, err
	}
	if filter != nil {
		match, err := s.env.Eval.EvalBool(filter, rec, nil)
		if err != nil {
			return nil, err
		}
		if !match {
			return nil, core.ErrFiltered
		}
	}
	if fields != nil {
		return rec.Project(fields), nil
	}
	return rec, nil
}

// OpenScan implements core.StorageInstance: key order, with range bounds.
func (s *store) OpenScan(tx *txn.Txn, opts core.ScanOptions) (core.Scan, error) {
	emit := func(k, v []byte) (types.Key, types.Record, bool, error) {
		rec, _, err := types.DecodeRecord(v)
		if err != nil {
			return nil, nil, false, err
		}
		if opts.Filter != nil {
			match, err := s.env.Eval.EvalBool(opts.Filter, rec, opts.Params)
			if err != nil {
				return nil, nil, false, err
			}
			if !match {
				return nil, nil, false, nil
			}
		}
		if opts.Fields != nil {
			rec = rec.Project(opts.Fields)
		}
		return types.Key(k).Clone(), rec, true, nil
	}
	return smutil.NewTreeScan(&s.mu, s.tree, opts.Start, opts.End, emit), nil
}

// EstimateCost implements core.StorageInstance: predicates on a key prefix
// make the storage method itself a cheap access path.
func (s *store) EstimateCost(req core.CostRequest) core.CostEstimate {
	s.mu.Lock()
	n := float64(s.tree.Len())
	height := float64(s.tree.Height())
	s.mu.Unlock()
	start, end, handled, point, depth := smutil.KeyRange(s.keyFields, req.Conjuncts)
	est := core.CostEstimate{Usable: true, IO: 0, Start: start, End: end, Handled: handled,
		Ordered: smutil.OrderSatisfiedBy(s.keyFields, req.OrderBy)}
	switch {
	case point:
		est.CPU = height + 1
		est.Selectivity = 1 / math.Max(n, 1)
	case depth > 0:
		frac := smutil.HandledSelectivity(req, handled)
		est.CPU = height + n*frac
		est.Selectivity = frac * smutil.ResidualSelectivity(req, handled)
	default:
		est.CPU = n
		est.Selectivity = smutil.RequestSelectivity(req)
	}
	return est
}

// PartitionBounds implements core.RangePartitioner: interior key-space
// split points at ~equal record counts, for partitioned parallel scans.
func (s *store) PartitionBounds(n int) []types.Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	return smutil.TreePartitionBounds(s.tree, n)
}

// RecordCount implements core.StorageInstance.
func (s *store) RecordCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.Len()
}

// ApplyLogged implements core.StorageInstance.
func (s *store) ApplyLogged(payload []byte, undo bool) error {
	p, err := core.DecodeMod(payload)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch p.Op {
	case core.ModInsert:
		if undo {
			s.tree.Delete(p.Key)
		} else {
			s.tree.Set(p.Key, p.New.AppendEncode(nil))
		}
	case core.ModDelete:
		if undo {
			s.tree.Set(p.Key, p.Old.AppendEncode(nil))
		} else {
			s.tree.Delete(p.Key)
		}
	case core.ModUpdate:
		if undo {
			if !p.NewKey.Equal(p.Key) {
				s.tree.Delete(p.NewKey)
			}
			s.tree.Set(p.Key, p.Old.AppendEncode(nil))
		} else {
			if !p.NewKey.Equal(p.Key) {
				s.tree.Delete(p.Key)
			}
			s.tree.Set(p.NewKey, p.New.AppendEncode(nil))
		}
	default:
		return fmt.Errorf("btreesm: bad logged op %v", p.Op)
	}
	return nil
}

var _ core.StorageInstance = (*store)(nil)
