// Package memsm implements the main-memory relation storage method.
//
// The paper motivates "main memory data storage methods for selected big
// traffic relations": records live entirely in memory (an in-memory
// B-tree keyed by insertion sequence), modifications are logged through
// the common recovery log (so the relation is transactional and survives
// restart via log replay), and scans cost no I/O — which the cost
// estimator reports to the query planner.
package memsm

import (
	"dmx/internal/core"
	"dmx/internal/sm/smutil"
	"dmx/internal/txn"
	"dmx/internal/types"
)

// Name is the DDL name of the storage method.
const Name = "memory"

func init() {
	core.RegisterStorageMethod(&core.StorageOps{
		ID:               core.SMMemory,
		Name:             Name,
		SnapshotContents: true,
		ValidateAttrs: func(schema *types.Schema, attrs core.AttrList) error {
			return attrs.CheckAllowed(Name)
		},
		Create: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, attrs core.AttrList) ([]byte, error) {
			return nil, nil // no descriptor state: everything lives in memory
		},
		Open: func(env *core.Env, rd *core.RelDesc) (core.StorageInstance, error) {
			return smutil.NewTreeStore(env, rd, true), nil
		},
	})
}
