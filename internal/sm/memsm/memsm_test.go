package memsm_test

import (
	"testing"

	"dmx/internal/core"
	_ "dmx/internal/sm/memsm"
	"dmx/internal/types"
	"dmx/internal/wal"
)

func schema() *types.Schema {
	return types.MustSchema(
		types.Column{Name: "id", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "v", Kind: types.KindString},
	)
}

func TestMemoryRelationIsRecoverable(t *testing.T) {
	log := wal.New()
	env := core.NewEnv(core.Config{Log: log})
	tx := env.Begin()
	if _, err := env.CreateRelation(tx, "hot", schema(), "memory", nil); err != nil {
		t.Fatal(err)
	}
	rel, _ := env.OpenRelationByName("hot")
	k, err := rel.Insert(tx, types.Record{types.Int(1), types.Str("traffic")})
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	// Memory relations cost no I/O but survive restart via the log.
	est := rel.Storage().EstimateCost(core.CostRequest{})
	if est.IO != 0 {
		t.Fatalf("memory IO estimate = %v", est.IO)
	}
	env2 := core.NewEnv(core.Config{Log: log})
	if err := env2.Recover(); err != nil {
		t.Fatal(err)
	}
	rel2, err := env2.OpenRelationByName("hot")
	if err != nil {
		t.Fatal(err)
	}
	tx2 := env2.Begin()
	got, err := rel2.Fetch(tx2, k, nil, nil)
	if err != nil || got[1].S != "traffic" {
		t.Fatalf("recovered: %v %v", got, err)
	}
	tx2.Commit()
}

func TestMemoryRejectsUnknownAttrs(t *testing.T) {
	env := core.NewEnv(core.Config{})
	tx := env.Begin()
	if _, err := env.CreateRelation(tx, "t", schema(), "memory",
		core.AttrList{"device": "ramdisk"}); err == nil {
		t.Fatal("unknown attribute accepted")
	}
	tx.Commit()
}

func mkMem(t *testing.T, env *core.Env, name string) *core.Relation {
	t.Helper()
	tx := env.Begin()
	if _, err := env.CreateRelation(tx, name, schema(), "memory", nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	r, err := env.OpenRelationByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func mrec(id int64, v string) types.Record {
	return types.Record{types.Int(id), types.Str(v)}
}

func TestMemoryUpdateDeleteUnderScan(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := mkMem(t, env, "t")
	tx := env.Begin()
	for i := 0; i < 5; i++ {
		r.Insert(tx, mrec(int64(i), "x"))
	}
	scan, err := r.OpenScan(tx, core.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	k0, _, _, _ := scan.Next()
	pos := scan.Pos()
	// Delete at position: the scan sits just after the removed record.
	if err := r.Delete(tx, k0); err != nil {
		t.Fatal(err)
	}
	k1, r1, ok, err := scan.Next()
	if err != nil || !ok || r1[0].AsInt() != 1 {
		t.Fatalf("next after delete-at-position: %v %v %v", r1, ok, err)
	}
	// Update under the scan: the new value is visible on replay.
	if _, err := r.Update(tx, k1, mrec(1, "changed")); err != nil {
		t.Fatal(err)
	}
	if err := scan.Restore(pos); err != nil {
		t.Fatal(err)
	}
	_, r1b, ok, _ := scan.Next()
	if !ok || r1b[0].AsInt() != 1 || r1b[1].S != "changed" {
		t.Fatalf("restored scan returned %v", r1b)
	}
	tx.Commit()
}

func TestMemoryKeyRangeScan(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := mkMem(t, env, "t")
	tx := env.Begin()
	keys := make([]types.Key, 0, 10)
	for i := 0; i < 10; i++ {
		k, _ := r.Insert(tx, mrec(int64(i), "x"))
		keys = append(keys, k)
	}
	// Record keys are insertion sequence numbers; a [keys[3], keys[7])
	// range must return exactly records 3..6 in key order.
	scan, err := r.OpenScan(tx, core.ScanOptions{Start: keys[3], End: keys[7]})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(3)
	for {
		_, got, ok, err := scan.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if got[0].AsInt() != want {
			t.Fatalf("range scan returned id %d, want %d", got[0].AsInt(), want)
		}
		want++
	}
	if want != 7 {
		t.Fatalf("range scan stopped at id %d, want 7", want)
	}
	tx.Commit()
}

func TestMemoryAbortRestoresContents(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := mkMem(t, env, "t")
	tx := env.Begin()
	k1, _ := r.Insert(tx, mrec(1, "keep"))
	k2, _ := r.Insert(tx, mrec(2, "keep"))
	tx.Commit()

	tx2 := env.Begin()
	r.Insert(tx2, mrec(3, "drop"))
	r.Delete(tx2, k1)
	r.Update(tx2, k2, mrec(2, "changed"))
	tx2.Abort()

	if r.Storage().RecordCount() != 2 {
		t.Fatalf("count after abort = %d", r.Storage().RecordCount())
	}
	tx3 := env.Begin()
	g1, err := r.Fetch(tx3, k1, nil, nil)
	if err != nil || g1[1].S != "keep" {
		t.Fatalf("k1 = %v %v", g1, err)
	}
	g2, err := r.Fetch(tx3, k2, nil, nil)
	if err != nil || g2[1].S != "keep" {
		t.Fatalf("k2 = %v %v", g2, err)
	}
	tx3.Commit()
}
