package memsm_test

import (
	"testing"

	"dmx/internal/core"
	_ "dmx/internal/sm/memsm"
	"dmx/internal/types"
	"dmx/internal/wal"
)

func schema() *types.Schema {
	return types.MustSchema(
		types.Column{Name: "id", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "v", Kind: types.KindString},
	)
}

func TestMemoryRelationIsRecoverable(t *testing.T) {
	log := wal.New()
	env := core.NewEnv(core.Config{Log: log})
	tx := env.Begin()
	if _, err := env.CreateRelation(tx, "hot", schema(), "memory", nil); err != nil {
		t.Fatal(err)
	}
	rel, _ := env.OpenRelationByName("hot")
	k, err := rel.Insert(tx, types.Record{types.Int(1), types.Str("traffic")})
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	// Memory relations cost no I/O but survive restart via the log.
	est := rel.Storage().EstimateCost(core.CostRequest{})
	if est.IO != 0 {
		t.Fatalf("memory IO estimate = %v", est.IO)
	}
	env2 := core.NewEnv(core.Config{Log: log})
	if err := env2.Recover(); err != nil {
		t.Fatal(err)
	}
	rel2, err := env2.OpenRelationByName("hot")
	if err != nil {
		t.Fatal(err)
	}
	tx2 := env2.Begin()
	got, err := rel2.Fetch(tx2, k, nil, nil)
	if err != nil || got[1].S != "traffic" {
		t.Fatalf("recovered: %v %v", got, err)
	}
	tx2.Commit()
}

func TestMemoryRejectsUnknownAttrs(t *testing.T) {
	env := core.NewEnv(core.Config{})
	tx := env.Begin()
	if _, err := env.CreateRelation(tx, "t", schema(), "memory",
		core.AttrList{"device": "ramdisk"}); err == nil {
		t.Fatal("unknown attribute accepted")
	}
	tx.Commit()
}
