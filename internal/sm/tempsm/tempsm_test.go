package tempsm_test

import (
	"testing"

	"dmx/internal/core"
	_ "dmx/internal/sm/tempsm"
	"dmx/internal/types"
	"dmx/internal/wal"
)

func TestTempRelationHasIdentifierOne(t *testing.T) {
	// The base system's temporary storage method is assigned internal
	// identifier 1, as in the paper.
	ops := core.DefaultRegistry.StorageMethodByName("temp")
	if ops == nil || ops.ID != core.SMTemp || core.SMTemp != 1 {
		t.Fatalf("temp storage method id = %v", ops)
	}
}

func TestTempRelationIsUnlogged(t *testing.T) {
	env := core.NewEnv(core.Config{})
	s := types.MustSchema(types.Column{Name: "id", Kind: types.KindInt})
	tx := env.Begin()
	if _, err := env.CreateRelation(tx, "scratch", s, "temp", nil); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	rel, _ := env.OpenRelationByName("scratch")

	logBefore := env.Log.Len()
	tx2 := env.Begin()
	if _, err := rel.Insert(tx2, types.Record{types.Int(1)}); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
	// DDL is logged; the temp data modification is not (only the txn
	// commit/end markers appear).
	for _, r := range env.Log.Records()[logBefore:] {
		if r.Owner.Class == wal.OwnerStorage {
			t.Fatalf("temp insert was logged: %+v", r)
		}
	}
	// Abort does not undo temp contents (non-recoverable scratch space).
	tx3 := env.Begin()
	rel.Insert(tx3, types.Record{types.Int(2)})
	tx3.Abort()
	if rel.Storage().RecordCount() != 2 {
		t.Fatalf("count = %d (temp relations are not rolled back)", rel.Storage().RecordCount())
	}
}

func mkTemp(t *testing.T, env *core.Env) *core.Relation {
	t.Helper()
	s := types.MustSchema(
		types.Column{Name: "id", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "v", Kind: types.KindString},
	)
	tx := env.Begin()
	if _, err := env.CreateRelation(tx, "scratch", s, "temp", nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	r, err := env.OpenRelationByName("scratch")
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func trec(id int64, v string) types.Record {
	return types.Record{types.Int(id), types.Str(v)}
}

func TestTempRejectsUnknownAttrs(t *testing.T) {
	env := core.NewEnv(core.Config{})
	s := types.MustSchema(types.Column{Name: "id", Kind: types.KindInt})
	tx := env.Begin()
	if _, err := env.CreateRelation(tx, "t", s, "temp",
		core.AttrList{"spill": "disk"}); err == nil {
		t.Fatal("unknown attribute accepted")
	}
	tx.Commit()
}

func TestTempUpdateDeleteUnderScan(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := mkTemp(t, env)
	tx := env.Begin()
	for i := 0; i < 5; i++ {
		r.Insert(tx, trec(int64(i), "x"))
	}
	scan, err := r.OpenScan(tx, core.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	k0, _, _, _ := scan.Next()
	pos := scan.Pos()
	if err := r.Delete(tx, k0); err != nil {
		t.Fatal(err)
	}
	k1, r1, ok, err := scan.Next()
	if err != nil || !ok || r1[0].AsInt() != 1 {
		t.Fatalf("next after delete-at-position: %v %v %v", r1, ok, err)
	}
	if _, err := r.Update(tx, k1, trec(1, "changed")); err != nil {
		t.Fatal(err)
	}
	if err := scan.Restore(pos); err != nil {
		t.Fatal(err)
	}
	_, r1b, ok, _ := scan.Next()
	if !ok || r1b[0].AsInt() != 1 || r1b[1].S != "changed" {
		t.Fatalf("restored scan returned %v", r1b)
	}
	tx.Commit()
	if r.Storage().RecordCount() != 4 {
		t.Fatalf("count = %d", r.Storage().RecordCount())
	}
}

func TestTempKeyRangeScan(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := mkTemp(t, env)
	tx := env.Begin()
	keys := make([]types.Key, 0, 10)
	for i := 0; i < 10; i++ {
		k, _ := r.Insert(tx, trec(int64(i), "x"))
		keys = append(keys, k)
	}
	scan, err := r.OpenScan(tx, core.ScanOptions{Start: keys[2], End: keys[5]})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(2)
	for {
		_, got, ok, err := scan.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if got[0].AsInt() != want {
			t.Fatalf("range scan returned id %d, want %d", got[0].AsInt(), want)
		}
		want++
	}
	if want != 5 {
		t.Fatalf("range scan stopped at id %d, want 5", want)
	}
	tx.Commit()
}

func TestTempNotRecoveredAfterRestart(t *testing.T) {
	// The relation itself (DDL) survives restart; its unlogged contents
	// do not.
	log := wal.New()
	env := core.NewEnv(core.Config{Log: log})
	s := types.MustSchema(types.Column{Name: "id", Kind: types.KindInt})
	tx := env.Begin()
	if _, err := env.CreateRelation(tx, "scratch", s, "temp", nil); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	r, _ := env.OpenRelationByName("scratch")
	tx2 := env.Begin()
	r.Insert(tx2, types.Record{types.Int(1)})
	tx2.Commit()

	env2 := core.NewEnv(core.Config{Log: log})
	if err := env2.Recover(); err != nil {
		t.Fatal(err)
	}
	r2, err := env2.OpenRelationByName("scratch")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Storage().RecordCount() != 0 {
		t.Fatalf("recovered temp count = %d, want 0", r2.Storage().RecordCount())
	}
}
