package tempsm_test

import (
	"testing"

	"dmx/internal/core"
	_ "dmx/internal/sm/tempsm"
	"dmx/internal/types"
	"dmx/internal/wal"
)

func TestTempRelationHasIdentifierOne(t *testing.T) {
	// The base system's temporary storage method is assigned internal
	// identifier 1, as in the paper.
	ops := core.DefaultRegistry.StorageMethodByName("temp")
	if ops == nil || ops.ID != core.SMTemp || core.SMTemp != 1 {
		t.Fatalf("temp storage method id = %v", ops)
	}
}

func TestTempRelationIsUnlogged(t *testing.T) {
	env := core.NewEnv(core.Config{})
	s := types.MustSchema(types.Column{Name: "id", Kind: types.KindInt})
	tx := env.Begin()
	if _, err := env.CreateRelation(tx, "scratch", s, "temp", nil); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	rel, _ := env.OpenRelationByName("scratch")

	logBefore := env.Log.Len()
	tx2 := env.Begin()
	if _, err := rel.Insert(tx2, types.Record{types.Int(1)}); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
	// DDL is logged; the temp data modification is not (only the txn
	// commit/end markers appear).
	for _, r := range env.Log.Records()[logBefore:] {
		if r.Owner.Class == wal.OwnerStorage {
			t.Fatalf("temp insert was logged: %+v", r)
		}
	}
	// Abort does not undo temp contents (non-recoverable scratch space).
	tx3 := env.Begin()
	rel.Insert(tx3, types.Record{types.Int(2)})
	tx3.Abort()
	if rel.Storage().RecordCount() != 2 {
		t.Fatalf("count = %d (temp relations are not rolled back)", rel.Storage().RecordCount())
	}
}
