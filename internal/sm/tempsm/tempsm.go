// Package tempsm implements the temporary-relation storage method.
//
// The base database system supports temporary relations through the same
// generic storage interface as permanent ones; per the paper, the
// temporary storage method is assigned internal identifier 1. Temporary
// relations are memory-resident and unlogged: their contents do not
// survive restart and are not rolled back on abort (the usual contract for
// scratch relations produced by query processing).
package tempsm

import (
	"dmx/internal/core"
	"dmx/internal/sm/smutil"
	"dmx/internal/txn"
	"dmx/internal/types"
)

// Name is the DDL name of the storage method.
const Name = "temp"

func init() {
	core.RegisterStorageMethod(&core.StorageOps{
		ID:   core.SMTemp,
		Name: Name,
		ValidateAttrs: func(schema *types.Schema, attrs core.AttrList) error {
			return attrs.CheckAllowed(Name)
		},
		Create: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, attrs core.AttrList) ([]byte, error) {
			return nil, nil
		},
		Open: func(env *core.Env, rd *core.RelDesc) (core.StorageInstance, error) {
			return smutil.NewTreeStore(env, rd, false), nil
		},
	})
}
