// Package partsm implements the partitioned relation storage method: a
// relation hash-sharded across N foreign servers behind the ordinary
// storage-method procedure vector, the scale-out composition of the
// paper's foreign-database storage method.
//
// Direct-by-key operations route to the single shard owning the key
// (FNV-1a of the order-preserving key encoding modulo the shard count);
// key-sequential scans scatter to every shard and merge the per-shard
// cursors back into global key order. Multi-shard transactions commit
// with two-phase commit: writes are staged on the shards under the local
// transaction id, every touched shard is prepared before the local
// commit record is appended, and the commit record — forced by the
// existing WAL group-commit machinery — IS the coordinator's logged
// decision. Recovery resolves shards left in doubt by a crash between
// prepare and decision delivery from the surviving log (presumed abort:
// no commit record means abort).
package partsm

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"

	"dmx/internal/core"
	"dmx/internal/expr"
	"dmx/internal/fault"
	"dmx/internal/remote"
	"dmx/internal/sm/smutil"
	"dmx/internal/txn"
	"dmx/internal/types"
	"dmx/internal/wal"
)

// Name is the DDL name of the storage method.
const Name = "part"

// DefaultScanBatchSize is how many records one per-shard scan round trip
// fetches unless the relation was created with a batch=<n> attribute.
const DefaultScanBatchSize = 100

// MaxShards bounds the shards=<n> attribute.
const MaxShards = 64

// ErrDuplicateKey is returned when inserting a record whose key fields
// collide with an existing record (the key fields are the primary key).
var ErrDuplicateKey = fmt.Errorf("partsm: duplicate key")

const serverStateKey = "partsm.servers"

// AttachServer makes a shard backend reachable from relations created
// with servers=...,<name>,... in this environment.
func AttachServer(env *core.Env, name string, srv *remote.Server) {
	reg := servers(env)
	reg.mu.Lock()
	defer reg.mu.Unlock()
	reg.byName[name] = srv
}

type serverRegistry struct {
	mu     sync.Mutex
	byName map[string]*remote.Server
}

func servers(env *core.Env) *serverRegistry {
	if v, ok := env.ExtState(serverStateKey); ok {
		return v.(*serverRegistry)
	}
	reg := &serverRegistry{byName: make(map[string]*remote.Server)}
	env.SetExtState(serverStateKey, reg)
	return reg
}

func lookupServer(env *core.Env, name string) (*remote.Server, error) {
	reg := servers(env)
	reg.mu.Lock()
	defer reg.mu.Unlock()
	srv, ok := reg.byName[name]
	if !ok {
		return nil, fmt.Errorf("partsm: no shard server %q attached to this environment", name)
	}
	return srv, nil
}

func init() {
	core.RegisterStorageMethod(&core.StorageOps{
		ID:   core.SMPart,
		Name: Name,
		// Shard contents live on the remote servers, but every
		// modification is logged locally and checkpoints embed the full
		// contents, so a crash that loses the servers can rebuild every
		// shard from the local log alone. That also means attachments can
		// be rebuilt by scanning at restart (servers are attached before
		// Recover), so attachment log records are not replayed.
		SnapshotContents: true,
		ValidateAttrs: func(schema *types.Schema, attrs core.AttrList) error {
			if err := attrs.CheckAllowed(Name, "key", "shards", "servers", "batch"); err != nil {
				return err
			}
			if _, err := parseKeyAttr(schema, attrs); err != nil {
				return err
			}
			if _, _, err := parseShardAttrs(attrs); err != nil {
				return err
			}
			_, err := parseBatch(attrs)
			return err
		},
		Create: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, attrs core.AttrList) ([]byte, error) {
			fields, err := parseKeyAttr(rd.Schema, attrs)
			if err != nil {
				return nil, err
			}
			shards, names, err := parseShardAttrs(attrs)
			if err != nil {
				return nil, err
			}
			batch, err := parseBatch(attrs)
			if err != nil {
				return nil, err
			}
			for i := 0; i < shards; i++ {
				srv, err := lookupServer(env, names[i%len(names)])
				if err != nil {
					return nil, err
				}
				client := remote.Dial(srv)
				err = client.CreateTable(shardTable(rd.Name, i))
				client.Close()
				if err != nil {
					return nil, err
				}
			}
			return encodeDesc(fields, shards, names, batch), nil
		},
		Open: func(env *core.Env, rd *core.RelDesc) (core.StorageInstance, error) {
			fields, shards, names, batch, err := decodeDesc(rd.SMDesc)
			if err != nil {
				return nil, err
			}
			s := &store{
				env:       env,
				rd:        rd,
				keyFields: fields,
				batch:     batch,
				sessions:  make(map[wal.TxnID]*session),
				pending:   make(map[uint64]bool),
			}
			for i := 0; i < shards; i++ {
				name := names[i%len(names)]
				srv, err := lookupServer(env, name)
				if err != nil {
					return nil, err
				}
				client := remote.Dial(srv)
				// Shard servers are volatile: a restart reattaches them
				// empty, and log replay only touches shards with logged
				// records. Creating the table is idempotent and keeps
				// scans over untouched shards from failing.
				if err := client.CreateTable(shardTable(rd.Name, i)); err != nil {
					client.Close()
					return nil, err
				}
				s.shards = append(s.shards, shard{
					server: name,
					table:  shardTable(rd.Name, i),
					srv:    srv,
					client: client,
				})
			}
			return s, nil
		},
		Drop: func(env *core.Env, rd *core.RelDesc) error {
			_, shards, names, _, err := decodeDesc(rd.SMDesc)
			if err != nil {
				return err
			}
			for i := 0; i < shards; i++ {
				srv, err := lookupServer(env, names[i%len(names)])
				if err != nil {
					continue // server gone: nothing left to drop
				}
				client := remote.Dial(srv)
				client.DropTable(shardTable(rd.Name, i))
				client.Close()
			}
			return nil
		},
		AfterRecovery: Resolve,
	})
}

func shardTable(relName string, i int) string {
	return fmt.Sprintf("%s#%d", relName, i)
}

func parseKeyAttr(schema *types.Schema, attrs core.AttrList) ([]int, error) {
	spec, ok := attrs.Get("key")
	if !ok || spec == "" {
		return nil, fmt.Errorf("partsm: the part storage method requires a key=col,... attribute")
	}
	var fields []int
	for _, name := range strings.Split(spec, ",") {
		i := schema.ColIndex(strings.TrimSpace(name))
		if i < 0 {
			return nil, fmt.Errorf("partsm: key column %q not in schema", strings.TrimSpace(name))
		}
		fields = append(fields, i)
	}
	return fields, nil
}

func parseShardAttrs(attrs core.AttrList) (shards int, names []string, err error) {
	spec, ok := attrs.Get("servers")
	if !ok || spec == "" {
		return 0, nil, fmt.Errorf("partsm: the part storage method requires a servers=<name>,... attribute")
	}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			return 0, nil, fmt.Errorf("partsm: empty server name in servers=%q", spec)
		}
		names = append(names, name)
	}
	shards = len(names)
	if spec, ok := attrs.Get("shards"); ok {
		n, err := strconv.Atoi(spec)
		if err != nil || n < 1 || n > MaxShards {
			return 0, nil, fmt.Errorf("partsm: shards must be 1..%d, got %q", MaxShards, spec)
		}
		shards = n
	}
	return shards, names, nil
}

func parseBatch(attrs core.AttrList) (int, error) {
	spec, ok := attrs.Get("batch")
	if !ok {
		return DefaultScanBatchSize, nil
	}
	n, err := strconv.Atoi(spec)
	if err != nil || n < 1 || n > 10000 {
		return 0, fmt.Errorf("partsm: batch must be 1..10000, got %q", spec)
	}
	return n, nil
}

func encodeDesc(fields []int, shards int, names []string, batch int) []byte {
	out := []byte{byte(len(fields))}
	for _, f := range fields {
		out = binary.BigEndian.AppendUint16(out, uint16(f))
	}
	out = append(out, byte(shards))
	out = binary.BigEndian.AppendUint16(out, uint16(batch))
	out = append(out, byte(len(names)))
	for _, n := range names {
		out = append(out, byte(len(n)))
		out = append(out, n...)
	}
	return out
}

func decodeDesc(b []byte) (fields []int, shards int, names []string, batch int, err error) {
	bad := func() ([]int, int, []string, int, error) {
		return nil, 0, nil, 0, fmt.Errorf("partsm: truncated storage descriptor")
	}
	if len(b) < 1 {
		return bad()
	}
	nf := int(b[0])
	pos := 1
	if len(b) < pos+2*nf+4 {
		return bad()
	}
	for i := 0; i < nf; i++ {
		fields = append(fields, int(binary.BigEndian.Uint16(b[pos:])))
		pos += 2
	}
	shards = int(b[pos])
	pos++
	batch = int(binary.BigEndian.Uint16(b[pos:]))
	pos += 2
	nn := int(b[pos])
	pos++
	for i := 0; i < nn; i++ {
		if len(b) < pos+1 {
			return bad()
		}
		ln := int(b[pos])
		pos++
		if len(b) < pos+ln {
			return bad()
		}
		names = append(names, string(b[pos:pos+ln]))
		pos += ln
	}
	if shards < 1 || batch < 1 || len(names) < 1 {
		return bad()
	}
	return fields, shards, names, batch, nil
}

// shard is one partition's backend binding.
type shard struct {
	server string
	table  string
	srv    *remote.Server
	client *remote.Client
}

// session tracks one local transaction's footprint across the shards, so
// prepare and the decision are delivered only where writes were staged.
type session struct {
	touched map[int]bool
}

// store is the partitioned storage instance for one relation.
type store struct {
	env       *core.Env
	rd        *core.RelDesc
	keyFields []int
	batch     int
	shards    []shard

	mu       sync.Mutex
	sessions map[wal.TxnID]*session
	// pending remembers decided transactions whose decision delivery
	// failed on some shard (true = commit): Resolve redelivers them. It
	// covers in-process delivery failures; across a restart the WAL's
	// commit records are the authoritative decision history.
	pending map[uint64]bool
}

// KeyOf composes the record key from the record's key fields.
func (s *store) KeyOf(rec types.Record) types.Key {
	return types.EncodeKeyFields(rec, s.keyFields)
}

// shardOf routes a record key to its owning shard.
func (s *store) shardOf(key types.Key) int {
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32() % uint32(len(s.shards)))
}

func txnID(tx *txn.Txn) uint64 {
	if tx == nil {
		return 0
	}
	return uint64(tx.ID())
}

// ensure registers the transaction's 2PC session on first write: the
// prepare/decision/cleanup hooks subscribe to the transaction's commit
// pipeline once, and the touched-shard set starts accumulating.
func (s *store) ensure(tx *txn.Txn) (*session, error) {
	s.mu.Lock()
	sess, ok := s.sessions[tx.ID()]
	if ok {
		s.mu.Unlock()
		return sess, nil
	}
	sess = &session{touched: make(map[int]bool)}
	s.sessions[tx.ID()] = sess
	s.mu.Unlock()
	if err := tx.Subscribe(txn.EventBeforePrepare, func(tx *txn.Txn, _ string) error {
		return s.prepare(tx, sess)
	}); err != nil {
		return nil, err
	}
	if err := tx.Subscribe(txn.EventCommit, func(tx *txn.Txn, _ string) error {
		s.decide(tx, sess, true)
		return nil
	}); err != nil {
		return nil, err
	}
	if err := tx.Subscribe(txn.EventAbort, func(tx *txn.Txn, _ string) error {
		s.decide(tx, sess, false)
		return nil
	}); err != nil {
		return nil, err
	}
	if err := tx.Subscribe(txn.EventEnd, func(tx *txn.Txn, _ string) error {
		s.mu.Lock()
		delete(s.sessions, tx.ID())
		s.mu.Unlock()
		return nil
	}); err != nil {
		return nil, err
	}
	return sess, nil
}

// prepare is phase one, fired before the commit record is appended: every
// touched shard must promise the staged writes can commit. A refusal
// vetoes the commit. The part.decide fault site sits between the last
// prepare acknowledgement and the local decision append — a crash there
// leaves every touched shard prepared and in doubt.
func (s *store) prepare(tx *txn.Txn, sess *session) error {
	for _, i := range sortedShards(sess) {
		s.env.Obs.Part.Prepares.Add(1)
		if err := s.shards[i].client.Prepare(uint64(tx.ID())); err != nil {
			return fmt.Errorf("partsm: shard %d prepare: %w", i, err)
		}
	}
	if s.env.Faults != nil && len(sess.touched) > 0 {
		if err := s.env.Faults.Hit(fault.SitePartDecide); err != nil {
			return err
		}
	}
	return nil
}

// decide is phase two, fired after the local decision is durable (commit)
// or the rollback is complete (abort). Delivery failures cannot change
// the decision — the transaction has already committed or aborted
// locally — so they are counted, remembered for redelivery, and
// swallowed.
func (s *store) decide(tx *txn.Txn, sess *session, commit bool) {
	var lost bool
	for _, i := range sortedShards(sess) {
		var err error
		if commit {
			s.env.Obs.Part.Commits.Add(1)
			err = s.shards[i].client.CommitTxn(uint64(tx.ID()))
		} else {
			s.env.Obs.Part.Aborts.Add(1)
			err = s.shards[i].client.AbortTxn(uint64(tx.ID()))
		}
		if err != nil {
			s.env.Obs.Part.AckLost.Add(1)
			lost = true
		}
	}
	if lost {
		s.mu.Lock()
		s.pending[uint64(tx.ID())] = commit
		s.mu.Unlock()
	}
}

func sortedShards(sess *session) []int {
	out := make([]int, 0, len(sess.touched))
	for i := range sess.touched {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// Insert implements core.StorageInstance: the record is staged on its
// owning shard under the transaction id, invisible to other transactions
// until the commit decision reaches the shard.
func (s *store) Insert(tx *txn.Txn, rec types.Record) (types.Key, error) {
	key := s.KeyOf(rec)
	sh := s.shardOf(key)
	sess, err := s.ensure(tx)
	if err != nil {
		return nil, err
	}
	if _, err := s.shards[sh].client.GetTxn(uint64(tx.ID()), s.shards[sh].table, key); err == nil {
		return nil, fmt.Errorf("%w: %v", ErrDuplicateKey, rec.Project(s.keyFields))
	}
	if err := core.LogSM(tx, s.rd, core.ModPayload{Op: core.ModInsert, Key: key, New: rec}); err != nil {
		return nil, err
	}
	if err := s.shards[sh].client.StagePut(uint64(tx.ID()), s.shards[sh].table, key, rec); err != nil {
		return nil, err
	}
	sess.touched[sh] = true
	return key, nil
}

// Update implements core.StorageInstance: updating key fields moves the
// record to its new key's owning shard — a genuinely multi-shard write.
func (s *store) Update(tx *txn.Txn, key types.Key, oldRec, newRec types.Record) (types.Key, error) {
	newKey := s.KeyOf(newRec)
	oldShard, newShard := s.shardOf(key), s.shardOf(newKey)
	sess, err := s.ensure(tx)
	if err != nil {
		return nil, err
	}
	if !newKey.Equal(key) {
		if _, err := s.shards[newShard].client.GetTxn(uint64(tx.ID()), s.shards[newShard].table, newKey); err == nil {
			return nil, fmt.Errorf("%w: %v", ErrDuplicateKey, newRec.Project(s.keyFields))
		}
	}
	if err := core.LogSM(tx, s.rd, core.ModPayload{Op: core.ModUpdate, Key: key, NewKey: newKey, Old: oldRec, New: newRec}); err != nil {
		return nil, err
	}
	if !newKey.Equal(key) {
		if err := s.shards[oldShard].client.StageDelete(uint64(tx.ID()), s.shards[oldShard].table, key); err != nil {
			return nil, err
		}
		sess.touched[oldShard] = true
	}
	if err := s.shards[newShard].client.StagePut(uint64(tx.ID()), s.shards[newShard].table, newKey, newRec); err != nil {
		return nil, err
	}
	sess.touched[newShard] = true
	return newKey, nil
}

// Delete implements core.StorageInstance: a tombstone is staged on the
// owning shard.
func (s *store) Delete(tx *txn.Txn, key types.Key, oldRec types.Record) error {
	sh := s.shardOf(key)
	sess, err := s.ensure(tx)
	if err != nil {
		return err
	}
	if err := core.LogSM(tx, s.rd, core.ModPayload{Op: core.ModDelete, Key: key, Old: oldRec}); err != nil {
		return err
	}
	if err := s.shards[sh].client.StageDelete(uint64(tx.ID()), s.shards[sh].table, key); err != nil {
		return err
	}
	sess.touched[sh] = true
	return nil
}

// FetchByKey implements core.StorageInstance: one round trip to the
// single shard owning the key, overlaying the transaction's own staged
// writes; the filter runs locally on the fetched record.
func (s *store) FetchByKey(tx *txn.Txn, key types.Key, fields []int, filter *expr.Expr) (types.Record, error) {
	sh := s.shardOf(key)
	s.env.Obs.Part.RoutedReads.Add(1)
	rec, err := s.shards[sh].client.GetTxn(txnID(tx), s.shards[sh].table, key)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrNotFound, err)
	}
	if filter != nil {
		match, err := s.env.Eval.EvalBool(filter, rec, nil)
		if err != nil {
			return nil, err
		}
		if !match {
			return nil, core.ErrFiltered
		}
	}
	if fields != nil {
		return rec.Project(fields), nil
	}
	return rec, nil
}

// fullKeyLen walks the order-preserving key encoding and returns the
// number of complete field encodings it holds, or -1 when it ends inside
// a field. Scan routing uses it to distinguish a whole-key bound (safe
// to route to one shard) from an equality prefix over leading key fields
// (whose matching keys hash to arbitrary shards).
func fullKeyLen(b []byte) int {
	n := 0
	for len(b) > 0 {
		switch types.Kind(b[0]) {
		case types.KindNull:
			b = b[1:]
		case types.KindInt, types.KindBool, types.KindFloat:
			if len(b) < 9 {
				return -1
			}
			b = b[9:]
		case types.KindString, types.KindBytes:
			b = b[1:]
			for {
				if len(b) == 0 {
					return -1
				}
				if b[0] != 0x00 {
					b = b[1:]
					continue
				}
				if len(b) < 2 {
					return -1
				}
				if b[1] == 0x00 {
					b = b[2:] // terminator
					break
				}
				b = b[2:] // escaped 0x00
			}
		default:
			return -1
		}
		n++
	}
	return n
}

// OpenScan implements core.StorageInstance. A scan whose bounds pin a
// single whole key ([k, successor(k)) — the planner's point access) is
// routed to the key's owning shard; the key encoding is prefix-free per
// field, so no other same-arity key falls in that range. Everything else
// scatters to every shard and merges the per-shard cursors.
func (s *store) OpenScan(tx *txn.Txn, opts core.ScanOptions) (core.Scan, error) {
	sc := &scan{store: s, tx: txnID(tx), opts: opts}
	routed := -1
	if len(opts.Start) > 0 && len(opts.End) > 0 &&
		bytes.Equal(opts.End, smutil.PrefixSuccessor(opts.Start)) &&
		fullKeyLen(opts.Start) == len(s.keyFields) {
		routed = s.shardOf(opts.Start)
	}
	if routed >= 0 {
		s.env.Obs.Part.RoutedScans.Add(1)
		sc.cursors = []*cursor{{shard: routed}}
	} else {
		s.env.Obs.Part.ScatterScans.Add(1)
		for i := range s.shards {
			sc.cursors = append(sc.cursors, &cursor{shard: i})
		}
	}
	if opts.Start != nil {
		// Start is inclusive; the remote protocol is exclusive-after, so
		// position every cursor just before Start.
		sc.after = beforeKey(opts.Start)
		sc.started = true
		for _, c := range sc.cursors {
			c.after = sc.after
		}
	}
	return sc, nil
}

// beforeKey returns a key that sorts immediately before k (exclusive-after
// semantics then include k itself).
func beforeKey(k types.Key) types.Key {
	out := append(types.Key(nil), k...)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] > 0 {
			out[i]--
			return append(out, 0xFF)
		}
		out = out[:i]
	}
	return nil
}

// EstimateCost implements core.StorageInstance: a whole-key point access
// is one round trip to one shard; anything else pays a fan-out of at
// least one round trip per shard, plus a batch round trip per batch of
// qualifying records.
func (s *store) EstimateCost(req core.CostRequest) core.CostEstimate {
	n := float64(s.RecordCount())
	fan := float64(len(s.shards))
	start, end, handled, point, depth := smutil.KeyRange(s.keyFields, req.Conjuncts)
	est := core.CostEstimate{Usable: true, Start: start, End: end, Handled: handled,
		Ordered: smutil.OrderSatisfiedBy(s.keyFields, req.OrderBy)}
	switch {
	case point:
		est.IO = 4 // one round trip, one shard
		est.CPU = 1
		est.Selectivity = 1 / maxf(n, 1)
	case depth > 0:
		frac := smutil.HandledSelectivity(req, handled)
		est.IO = (n*frac/float64(s.batch) + fan) * 4
		est.CPU = n * frac
		est.Selectivity = frac * smutil.ResidualSelectivity(req, handled)
	default:
		est.IO = (n/float64(s.batch) + fan) * 4
		est.CPU = n
		est.Selectivity = smutil.RequestSelectivity(req)
	}
	return est
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// PartitionBounds implements core.RangePartitioner for parallel scans:
// split points sampled from the first batch of keys on every shard.
func (s *store) PartitionBounds(n int) []types.Key {
	if n <= 1 {
		return nil
	}
	var keys []string
	for i := range s.shards {
		entries, err := s.shards[i].client.ScanBatch(s.shards[i].table, nil, s.batch)
		if err != nil {
			return nil
		}
		for _, e := range entries {
			keys = append(keys, string(e.Key))
		}
	}
	sort.Strings(keys)
	if len(keys) < n {
		return nil
	}
	var bounds []types.Key
	for i := 1; i < n; i++ {
		k := keys[i*len(keys)/n]
		bounds = append(bounds, types.Key(k))
	}
	return bounds
}

// RecordCount implements core.StorageInstance: one round trip per shard.
func (s *store) RecordCount() int {
	total := 0
	for i := range s.shards {
		n, err := s.shards[i].client.Count(s.shards[i].table)
		if err != nil {
			return total
		}
		total += n
	}
	return total
}

// ApplyLogged implements core.StorageInstance (restart recovery with no
// live transaction context).
func (s *store) ApplyLogged(payload []byte, undo bool) error {
	return s.ApplyLoggedTxn(0, payload, undo)
}

// ApplyLoggedTxn implements core.TxnLoggedApplier. A live transaction's
// rollback stages compensating writes under its own id, so the shard's
// committed state never sees the retracted effects at all. With no live
// session (restart recovery), the modification is applied directly to the
// committed shard state: redo rebuilds fresh shards from the log, undo
// retracts loser transactions — both idempotent, because 2PC resolution
// may already have committed or discarded the same effects shard-side
// (deletes tolerate absent keys, puts overwrite).
func (s *store) ApplyLoggedTxn(id wal.TxnID, payload []byte, undo bool) error {
	p, err := core.DecodeMod(payload)
	if err != nil {
		return err
	}
	s.mu.Lock()
	sess := s.sessions[id]
	s.mu.Unlock()
	if id != 0 && sess != nil {
		return s.applyStaged(uint64(id), sess, p, undo)
	}
	return s.applyDirect(p, undo)
}

// applyStaged routes a live rollback's compensation through the
// transaction's staged shard writes (last-op-wins staging makes the
// compensation net out the original).
func (s *store) applyStaged(id uint64, sess *session, p core.ModPayload, undo bool) error {
	if !undo {
		return fmt.Errorf("partsm: unexpected redo for live transaction %d", id)
	}
	put := func(key types.Key, rec types.Record) error {
		sh := s.shardOf(key)
		sess.touched[sh] = true
		return s.shards[sh].client.StagePut(id, s.shards[sh].table, key, rec)
	}
	del := func(key types.Key) error {
		sh := s.shardOf(key)
		sess.touched[sh] = true
		return s.shards[sh].client.StageDelete(id, s.shards[sh].table, key)
	}
	switch p.Op {
	case core.ModInsert:
		return del(p.Key)
	case core.ModDelete:
		return put(p.Key, p.Old)
	case core.ModUpdate:
		if !p.NewKey.Equal(p.Key) {
			if err := del(p.NewKey); err != nil {
				return err
			}
		}
		return put(p.Key, p.Old)
	default:
		return fmt.Errorf("partsm: bad logged op %v", p.Op)
	}
}

// applyDirect applies a logged modification to committed shard state
// during restart recovery, creating shard tables idempotently (replay may
// target fresh servers whose create round trips never re-ran).
func (s *store) applyDirect(p core.ModPayload, undo bool) error {
	put := func(key types.Key, rec types.Record) error {
		sh := s.shardOf(key)
		if err := s.shards[sh].client.CreateTable(s.shards[sh].table); err != nil {
			return err
		}
		_, err := s.shards[sh].client.Put(s.shards[sh].table, key, rec)
		return err
	}
	del := func(key types.Key) error {
		sh := s.shardOf(key)
		if err := s.shards[sh].client.CreateTable(s.shards[sh].table); err != nil {
			return err
		}
		// A missing key is fine in both directions: the shard may already
		// reflect the retraction (the decision arrived before the crash)
		// or never received the staged write at all.
		s.shards[sh].client.Delete(s.shards[sh].table, key)
		return nil
	}
	op, key, rec := p.Op, p.Key, p.New
	if undo {
		switch p.Op {
		case core.ModInsert:
			return del(p.Key)
		case core.ModDelete:
			op, rec = core.ModInsert, p.Old
		case core.ModUpdate:
			if !p.NewKey.Equal(p.Key) {
				if err := del(p.NewKey); err != nil {
					return err
				}
			}
			op, rec = core.ModInsert, p.Old
		}
	} else if p.Op == core.ModUpdate {
		if !p.NewKey.Equal(p.Key) {
			if err := del(p.Key); err != nil {
				return err
			}
		}
		key = p.NewKey
	}
	switch op {
	case core.ModInsert, core.ModUpdate:
		return put(key, rec)
	case core.ModDelete:
		return del(key)
	default:
		return fmt.Errorf("partsm: bad logged op %v", p.Op)
	}
}

// ShardInfos implements core.ShardIntrospector for sys.stat_shards.
// InDoubt and Messages are per-server figures (a server may host several
// shards or relations).
func (s *store) ShardInfos() []core.ShardInfo {
	out := make([]core.ShardInfo, 0, len(s.shards))
	for i := range s.shards {
		info := core.ShardInfo{
			Shard:    i,
			Server:   s.shards[i].server,
			Table:    s.shards[i].table,
			Messages: s.shards[i].srv.Messages.Load(),
		}
		if n, err := s.shards[i].client.Count(s.shards[i].table); err == nil {
			info.Records = n
		}
		if ids, err := s.shards[i].client.InDoubt(); err == nil {
			info.InDoubt = len(ids)
		}
		out = append(out, info)
	}
	return out
}

var (
	_ core.StorageInstance   = (*store)(nil)
	_ core.TxnLoggedApplier  = (*store)(nil)
	_ core.RangePartitioner  = (*store)(nil)
	_ core.ShardIntrospector = (*store)(nil)
)

// Resolve drives every in-doubt shard transaction of every partitioned
// relation to the coordinator's outcome: a commit record surviving in the
// local log (or an in-process decision whose delivery failed) means
// commit; no decision means abort — presumed abort, the coordinator never
// logged one. Registered as the storage method's AfterRecovery hook and
// callable directly to redeliver lost decisions without a restart.
func Resolve(env *core.Env) error {
	var committed map[wal.TxnID]bool
	for _, name := range env.Cat.List() {
		rd, ok := env.Cat.ByName(name)
		if !ok || core.IsSystemRelID(rd.RelID) || rd.SM != core.SMPart {
			continue
		}
		inst, err := env.StorageInstance(rd)
		if err != nil {
			return err
		}
		s, ok := inst.(*store)
		if !ok {
			continue
		}
		if committed == nil {
			committed = make(map[wal.TxnID]bool)
			for _, rec := range env.Log.Records() {
				if rec.Kind == wal.RecCommit {
					committed[rec.Txn] = true
				}
			}
		}
		if err := s.resolve(committed); err != nil {
			return err
		}
	}
	return nil
}

// resolve decides every prepared transaction on every distinct server
// behind this relation. Decisions are per transaction, not per relation:
// a server transaction's staged writes may span several partitioned
// relations sharing the server, and the first resolver settles them all.
func (s *store) resolve(committed map[wal.TxnID]bool) error {
	s.mu.Lock()
	pending := make(map[uint64]bool, len(s.pending))
	for id, c := range s.pending {
		pending[id] = c
	}
	s.pending = make(map[uint64]bool)
	s.mu.Unlock()
	seen := make(map[*remote.Server]bool)
	for i := range s.shards {
		if seen[s.shards[i].srv] {
			continue
		}
		seen[s.shards[i].srv] = true
		ids, err := s.shards[i].client.InDoubt()
		if err != nil {
			return fmt.Errorf("partsm: shard %d in-doubt query: %w", i, err)
		}
		for _, id := range ids {
			commit := committed[wal.TxnID(id)] || pending[id]
			var derr error
			if commit {
				derr = s.shards[i].client.CommitTxn(id)
			} else {
				derr = s.shards[i].client.AbortTxn(id)
			}
			if derr != nil {
				return fmt.Errorf("partsm: resolve txn %d on shard %d: %w", id, i, derr)
			}
			s.env.Obs.Part.Resolved.Add(1)
		}
	}
	return nil
}

// scan merges per-shard batched cursors back into global key order.
type scan struct {
	store   *store
	tx      uint64
	opts    core.ScanOptions
	cursors []*cursor
	after   types.Key // last key returned (global position)
	started bool
	closed  bool
}

// cursor is one shard's batched window into its key-ordered table.
type cursor struct {
	shard int
	after types.Key
	batch []remote.Entry
	done  bool
}

// Next implements core.Scan: refill any empty cursor, then pop the
// globally smallest head. Per-cursor strictly-after batching keeps
// concurrent inserts and deletes from skipping or duplicating keys, same
// as the single-backend remote scan.
func (sc *scan) Next() (types.Key, types.Record, bool, error) {
	if sc.closed {
		return nil, nil, false, fmt.Errorf("partsm: scan is closed")
	}
	for {
		best := -1
		for ci, c := range sc.cursors {
			if len(c.batch) == 0 && !c.done {
				entries, err := sc.store.shards[c.shard].client.ScanBatchTxn(
					sc.tx, sc.store.shards[c.shard].table, c.after, sc.store.batch)
				if err != nil {
					return nil, nil, false, err
				}
				if len(entries) == 0 {
					c.done = true
					continue
				}
				c.batch = entries
			}
			if len(c.batch) == 0 {
				continue
			}
			if best < 0 || bytes.Compare(c.batch[0].Key, sc.cursors[best].batch[0].Key) < 0 {
				best = ci
			}
		}
		if best < 0 {
			return nil, nil, false, nil
		}
		c := sc.cursors[best]
		e := c.batch[0]
		c.batch = c.batch[1:]
		c.after = types.Key(e.Key)
		key := types.Key(e.Key)
		sc.after = key
		sc.started = true
		if sc.opts.End != nil && key.Compare(sc.opts.End) >= 0 {
			return nil, nil, false, nil
		}
		rec, _, err := types.DecodeRecord(e.Rec)
		if err != nil {
			return nil, nil, false, err
		}
		if sc.opts.Filter != nil {
			match, err := sc.store.env.Eval.EvalBool(sc.opts.Filter, rec, sc.opts.Params)
			if err != nil {
				return nil, nil, false, err
			}
			if !match {
				continue
			}
		}
		if sc.opts.Fields != nil {
			rec = rec.Project(sc.opts.Fields)
		}
		return key, rec, true, nil
	}
}

// Pos implements core.Scan: the global position is the last key returned.
func (sc *scan) Pos() core.ScanPos {
	if !sc.started {
		return core.ScanPos{0}
	}
	return append(core.ScanPos{1}, sc.after...)
}

// Restore implements core.Scan: every cursor restarts strictly after the
// restored global position (keys at or before it were already returned on
// whichever shard owned them; shard data may have changed under partial
// rollback, so the batches are refetched).
func (sc *scan) Restore(pos core.ScanPos) error {
	if len(pos) == 0 {
		return fmt.Errorf("partsm: empty scan position")
	}
	if pos[0] == 0 {
		sc.started = false
		sc.after = nil
	} else {
		sc.started = true
		sc.after = append(types.Key(nil), pos[1:]...)
	}
	for _, c := range sc.cursors {
		c.batch = nil
		c.done = false
		c.after = sc.after
	}
	return nil
}

// Close implements core.Scan.
func (sc *scan) Close() error {
	sc.closed = true
	return nil
}
