package partsm_test

import (
	"errors"
	"fmt"
	"testing"

	"dmx/internal/core"
	"dmx/internal/fault"
	"dmx/internal/remote"
	"dmx/internal/sm/partsm"
	"dmx/internal/types"
)

func schema() *types.Schema {
	return types.MustSchema(
		types.Column{Name: "id", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "val", Kind: types.KindString},
	)
}

func rec(id int64, val string) types.Record {
	return types.Record{types.Int(id), types.Str(val)}
}

func attach(env *core.Env, srvs []*remote.Server) {
	for i, s := range srvs {
		partsm.AttachServer(env, fmt.Sprintf("s%d", i), s)
	}
}

func setup(t *testing.T, shards int) (*core.Env, []*remote.Server, *core.Relation) {
	t.Helper()
	env := core.NewEnv(core.Config{})
	srvs := make([]*remote.Server, shards)
	names := ""
	for i := range srvs {
		srvs[i] = remote.NewServer(0)
		if i > 0 {
			names += ","
		}
		names += fmt.Sprintf("s%d", i)
	}
	attach(env, srvs)
	tx := env.Begin()
	rd, err := env.CreateRelation(tx, "users", schema(), "part",
		core.AttrList{"key": "id", "servers": names, "batch": "3"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	r, err := env.OpenRelation(rd)
	if err != nil {
		t.Fatal(err)
	}
	return env, srvs, r
}

func scanAll(t *testing.T, env *core.Env, r *core.Relation) []types.Record {
	t.Helper()
	tx := env.Begin()
	defer tx.Commit()
	sc, err := r.OpenScan(tx, core.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	var out []types.Record
	for {
		_, rec, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, rec)
	}
}

// TestPartBasic drives inserts/updates/deletes across shards and checks
// that scans merge the shards back into global key order, with staged
// writes invisible until commit.
func TestPartBasic(t *testing.T) {
	env, srvs, r := setup(t, 3)
	tx := env.Begin()
	const n = 20
	for i := 1; i <= n; i++ {
		if _, err := r.Insert(tx, rec(int64(i), fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Before commit nothing has reached committed shard state (the
	// writes are staged server-side under the transaction id).
	for i, s := range srvs {
		c := remote.Dial(s)
		n, err := c.Count(fmt.Sprintf("users#%d", i))
		c.Close()
		if err != nil {
			t.Fatal(err)
		}
		if n != 0 {
			t.Fatalf("staged writes leaked: shard %d holds %d records before commit", i, n)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	got := scanAll(t, env, r)
	if len(got) != n {
		t.Fatalf("want %d records, got %d", n, len(got))
	}
	for i, g := range got {
		if g[0].I != int64(i+1) {
			t.Fatalf("scan out of key order at %d: %v", i, g)
		}
	}
	// The records actually spread across shards.
	perShard := 0
	for i, s := range srvs {
		c := remote.Dial(s)
		n, err := c.Count(fmt.Sprintf("users#%d", i))
		c.Close()
		if err != nil {
			t.Fatal(err)
		}
		if n > 0 {
			perShard++
		}
	}
	if perShard < 2 {
		t.Fatalf("hash sharding left %d of 3 shards populated", perShard)
	}
}

// TestPartRollback checks that an aborted transaction's staged writes
// never reach committed shard state, including partial rollback of
// updates and deletes over committed records.
func TestPartRollback(t *testing.T) {
	env, _, r := setup(t, 3)
	tx := env.Begin()
	keys := make([]types.Key, 0, 5)
	for i := 1; i <= 5; i++ {
		k, err := r.Insert(tx, rec(int64(i), "base"))
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx = env.Begin()
	if _, err := r.Update(tx, keys[0], rec(1, "changed")); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(tx, keys[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Insert(tx, rec(99, "new")); err != nil {
		t.Fatal(err)
	}
	// Read-your-writes inside the transaction.
	got, err := r.Fetch(tx, keys[0], nil, nil)
	if err != nil || got[1].S != "changed" {
		t.Fatalf("read-your-writes: %v %v", got, err)
	}
	if _, err := r.Fetch(tx, keys[1], nil, nil); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("deleted key still visible in txn: %v", err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	got2 := scanAll(t, env, r)
	if len(got2) != 5 {
		t.Fatalf("abort left %d records, want 5", len(got2))
	}
	for _, g := range got2 {
		if g[1].S != "base" {
			t.Fatalf("abort leaked a staged write: %v", g)
		}
	}
}

// TestPartDuplicateKey checks primary-key enforcement across staged and
// committed state.
func TestPartDuplicateKey(t *testing.T) {
	env, _, r := setup(t, 2)
	tx := env.Begin()
	if _, err := r.Insert(tx, rec(7, "a")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Insert(tx, rec(7, "b")); !errors.Is(err, partsm.ErrDuplicateKey) {
		t.Fatalf("staged duplicate not rejected: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx = env.Begin()
	if _, err := r.Insert(tx, rec(7, "c")); !errors.Is(err, partsm.ErrDuplicateKey) {
		t.Fatalf("committed duplicate not rejected: %v", err)
	}
	tx.Abort()
}

// TestPartRoutedPointAccess checks that a whole-key scan range touches
// exactly one shard while a full scan touches all of them.
func TestPartRoutedPointAccess(t *testing.T) {
	env, srvs, r := setup(t, 4)
	tx := env.Begin()
	for i := 1; i <= 40; i++ {
		if _, err := r.Insert(tx, rec(int64(i), "x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	messages := func() []int64 {
		out := make([]int64, len(srvs))
		for i, s := range srvs {
			out[i] = s.Messages.Load()
		}
		return out
	}
	touched := func(before, after []int64) int {
		n := 0
		for i := range before {
			if after[i] != before[i] {
				n++
			}
		}
		return n
	}
	// Whole-key range: route to the owning shard.
	key := types.EncodeKeyFields(rec(17, "x"), []int{0})
	tx = env.Begin()
	before := messages()
	sc, err := r.OpenScan(tx, core.ScanOptions{Start: key, End: keySuccessor(key)})
	if err != nil {
		t.Fatal(err)
	}
	_, got, ok, err := sc.Next()
	if err != nil || !ok || got[0].I != 17 {
		t.Fatalf("routed point scan: %v %v %v", got, ok, err)
	}
	if _, _, ok, _ := sc.Next(); ok {
		t.Fatal("routed point scan returned a second record")
	}
	sc.Close()
	if n := touched(before, messages()); n != 1 {
		t.Fatalf("point scan touched %d shards, want 1", n)
	}
	// Full scan: all shards.
	before = messages()
	sc, err = r.OpenScan(tx, core.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, _, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	sc.Close()
	if n := touched(before, messages()); n != len(srvs) {
		t.Fatalf("full scan touched %d shards, want %d", n, len(srvs))
	}
	tx.Commit()
	snap := env.Obs.Part.RoutedScans.Load()
	if snap == 0 {
		t.Fatal("routed scan counter never moved")
	}
}

func keySuccessor(k types.Key) types.Key {
	out := append(types.Key(nil), k...)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] != 0xFF {
			out[i]++
			return out[:i+1]
		}
	}
	return nil
}

// TestPartPrepareFaultVetoesCommit checks phase one: a shard refusing
// prepare vetoes the local commit and the transaction aborts cleanly on
// every shard.
func TestPartPrepareFaultVetoesCommit(t *testing.T) {
	env, srvs, r := setup(t, 3)
	tx := env.Begin()
	for i := 1; i <= 9; i++ {
		if _, err := r.Insert(tx, rec(int64(i), "x")); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range srvs {
		s.InjectFault(remote.OpPrepare, remote.FaultReject, 1)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("commit succeeded despite prepare refusal")
	}
	if got := scanAll(t, env, r); len(got) != 0 {
		t.Fatalf("vetoed commit leaked %d records", len(got))
	}
}

// TestPartCommitAckLossIsResolved checks phase two under ack loss on the
// decision delivery: the transaction is committed locally, the shard
// applied it (ack loss, not rejection), and counters record the loss.
func TestPartCommitAckLossIsResolved(t *testing.T) {
	env, srvs, r := setup(t, 2)
	for _, s := range srvs {
		s.InjectFault(remote.OpCommitTxn, remote.FaultAckLoss, 1)
	}
	tx := env.Begin()
	for i := 1; i <= 6; i++ {
		if _, err := r.Insert(tx, rec(int64(i), "x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := scanAll(t, env, r); len(got) != 6 {
		t.Fatalf("want 6 records after ack-loss commit, got %d", len(got))
	}
	if env.Obs.Part.AckLost.Load() == 0 {
		t.Fatal("ack loss not counted")
	}
}

// TestPartCommitRejectThenResolve checks the rejected-decision path: the
// shard never hears the commit, stays prepared, and Resolve redelivers
// the logged outcome.
func TestPartCommitRejectThenResolve(t *testing.T) {
	env, srvs, r := setup(t, 2)
	for _, s := range srvs {
		s.InjectFault(remote.OpCommitTxn, remote.FaultReject, 1)
	}
	tx := env.Begin()
	for i := 1; i <= 6; i++ {
		if _, err := r.Insert(tx, rec(int64(i), "x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	inDoubt := 0
	for _, s := range srvs {
		c := remote.Dial(s)
		ids, err := c.InDoubt()
		c.Close()
		if err != nil {
			t.Fatal(err)
		}
		inDoubt += len(ids)
	}
	if inDoubt == 0 {
		t.Fatal("rejected decision left no shard in doubt")
	}
	if err := partsm.Resolve(env); err != nil {
		t.Fatal(err)
	}
	if got := scanAll(t, env, r); len(got) != 6 {
		t.Fatalf("want 6 records after resolve, got %d", len(got))
	}
	if env.Obs.Part.Resolved.Load() == 0 {
		t.Fatal("resolution not counted")
	}
}

// TestPartDecideCrashSite checks the post-prepare pre-decision fault
// site: the commit fails, the shards hold only prepared state, and a
// recovery pass resolves them to abort (presumed abort — no decision
// was ever logged).
func TestPartDecideCrashSite(t *testing.T) {
	env := core.NewEnv(core.Config{Faults: fault.New()})
	srvs := []*remote.Server{remote.NewServer(0), remote.NewServer(0)}
	attach(env, srvs)
	tx := env.Begin()
	rd, err := env.CreateRelation(tx, "users", schema(), "part",
		core.AttrList{"key": "id", "servers": "s0,s1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	r, err := env.OpenRelation(rd)
	if err != nil {
		t.Fatal(err)
	}
	tx = env.Begin()
	for i := 1; i <= 8; i++ {
		if _, err := r.Insert(tx, rec(int64(i), "x")); err != nil {
			t.Fatal(err)
		}
	}
	env.Faults.Arm(fault.SitePartDecide, 1)
	if err := tx.Commit(); err == nil {
		t.Fatal("commit succeeded through the armed decision site")
	}
	if !env.Faults.Crashed() {
		t.Fatal("decision site never hit")
	}
	// The "crashed" coordinator is gone; a fresh environment over the
	// same servers resolves the in-doubt shards to abort.
	env2 := core.NewEnv(core.Config{})
	attach(env2, srvs)
	tx2 := env2.Begin()
	rd2, err := env2.CreateRelation(tx2, "users", schema(), "part",
		core.AttrList{"key": "id", "servers": "s0,s1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := partsm.Resolve(env2); err != nil {
		t.Fatal(err)
	}
	for i, s := range srvs {
		c := remote.Dial(s)
		ids, err := c.InDoubt()
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != 0 {
			t.Fatalf("server %d still in doubt after resolve: %v", i, ids)
		}
		n, err := c.Count("users#" + fmt.Sprint(i))
		c.Close()
		if err != nil {
			t.Fatal(err)
		}
		if n != 0 {
			t.Fatalf("presumed abort leaked %d records to shard %d", n, i)
		}
	}
	if _, err := env2.OpenRelation(rd2); err != nil {
		t.Fatal(err)
	}
}
