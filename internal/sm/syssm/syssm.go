// Package syssm implements the system storage method: read-only virtual
// relations that materialize live engine state as ordinary rows.
//
// The extension architecture makes this almost free — a storage method is
// just a table of generic operations, so a method whose "storage" is the
// running engine itself plugs into the same procedure vectors as heap or
// B-tree storage. sys.stat_activity, sys.stat_locks and friends are
// genuine catalogued relations: scans, pushed-down predicates, field
// projection, cost estimates, the plan layer and the CLI all treat them
// exactly like stored tables. The engine observes itself through its own
// query machinery.
//
// Each scan materializes a consistent batch of rows at open (one snapshot
// of the underlying engine structure, taken under that structure's own
// locks) and then iterates without further coordination, so system scans
// never hold engine-internal mutexes across Next calls and never
// participate in lock-manager waits. Modifications are refused with
// core.ErrReadOnly and nothing is ever logged: the relations are process
// state, reinstalled by every Env construction and absent from
// checkpoints, recovery, and the WAL.
package syssm

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"dmx/internal/core"
	"dmx/internal/expr"
	"dmx/internal/txn"
	"dmx/internal/types"
	"dmx/internal/wal"
)

// Name is the storage-method name. It is not creatable through DDL; the
// registry entry exists so catalogued system relations dispatch here.
const Name = "sys"

// viewFunc materializes one system relation's current rows.
type viewFunc func(env *core.Env) ([]types.Record, error)

// view couples a relation name, its schema, and its generator.
type view struct {
	name   string
	schema *types.Schema
	gen    viewFunc
}

var views = []view{
	{"sys.stat_activity", activitySchema, activityRows},
	{"sys.stat_history", historySchema, historyRows},
	{"sys.stat_relations", relationsSchema, relationsRows},
	{"sys.stat_locks", locksSchema, locksRows},
	{"sys.stat_lsm", lsmSchema, lsmRows},
	{"sys.stat_buffer", bufferSchema, bufferRows},
	{"sys.stat_traces", tracesSchema, tracesRows},
	{"sys.stat_shards", shardsSchema, shardsRows},
}

func init() {
	core.RegisterStorageMethod(&core.StorageOps{
		ID:   core.SMSys,
		Name: Name,
		ValidateAttrs: func(schema *types.Schema, attrs core.AttrList) error {
			return fmt.Errorf("syssm: system relations are built in; CREATE with storage method %q is not supported", Name)
		},
		Create: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, attrs core.AttrList) ([]byte, error) {
			return nil, fmt.Errorf("syssm: system relations are built in and cannot be created")
		},
		Open: func(env *core.Env, rd *core.RelDesc) (core.StorageInstance, error) {
			for _, v := range views {
				if strings.EqualFold(v.name, rd.Name) {
					return &store{env: env, rd: rd, gen: v.gen}, nil
				}
			}
			return nil, fmt.Errorf("syssm: unknown system relation %q", rd.Name)
		},
	})
	for _, v := range views {
		core.RegisterSystemRelation(core.SystemRelation{
			Name:   v.name,
			SM:     core.SMSys,
			Schema: v.schema,
		})
	}
}

// store is the runtime instance of one system relation.
type store struct {
	env *core.Env
	rd  *core.RelDesc
	gen viewFunc
}

// ordKey encodes a row ordinal as the 8-byte big-endian record key, so
// record-key order is row order and scan Start/End bounds work unchanged.
func ordKey(i int) types.Key {
	k := make(types.Key, 8)
	binary.BigEndian.PutUint64(k, uint64(i))
	return k
}

func keyOrd(k types.Key) (int, error) {
	if len(k) != 8 {
		return 0, fmt.Errorf("syssm: bad record key length %d", len(k))
	}
	return int(binary.BigEndian.Uint64(k)), nil
}

// Insert implements core.StorageInstance: refused, the relation is virtual.
func (s *store) Insert(tx *txn.Txn, rec types.Record) (types.Key, error) {
	return nil, fmt.Errorf("syssm: %s: %w", s.rd.Name, core.ErrReadOnly)
}

// Update implements core.StorageInstance: refused.
func (s *store) Update(tx *txn.Txn, key types.Key, oldRec, newRec types.Record) (types.Key, error) {
	return nil, fmt.Errorf("syssm: %s: %w", s.rd.Name, core.ErrReadOnly)
}

// Delete implements core.StorageInstance: refused.
func (s *store) Delete(tx *txn.Txn, key types.Key, oldRec types.Record) error {
	return fmt.Errorf("syssm: %s: %w", s.rd.Name, core.ErrReadOnly)
}

// FetchByKey implements core.StorageInstance. Direct-by-key access
// re-materializes the view: ordinals are positional, so a row fetched by a
// key obtained from an earlier scan may have moved or vanished — the usual
// contract for monitoring views.
func (s *store) FetchByKey(tx *txn.Txn, key types.Key, fields []int, filter *expr.Expr) (types.Record, error) {
	ord, err := keyOrd(key)
	if err != nil {
		return nil, err
	}
	rows, err := s.gen(s.env)
	if err != nil {
		return nil, err
	}
	if ord < 0 || ord >= len(rows) {
		return nil, fmt.Errorf("syssm: %w: %s row %d", core.ErrNotFound, s.rd.Name, ord)
	}
	rec := rows[ord]
	if filter != nil {
		match, err := s.env.Eval.EvalBool(filter, rec, nil)
		if err != nil {
			return nil, err
		}
		if !match {
			return nil, core.ErrFiltered
		}
	}
	if fields != nil {
		return rec.Project(fields), nil
	}
	return rec, nil
}

// OpenScan implements core.StorageInstance: the view is materialized once
// at open — a consistent snapshot of the engine structure it reflects —
// and iterated without touching live state again.
func (s *store) OpenScan(tx *txn.Txn, opts core.ScanOptions) (core.Scan, error) {
	rows, err := s.gen(s.env)
	if err != nil {
		return nil, err
	}
	sc := &scan{store: s, rows: rows, opts: opts}
	if opts.Start != nil {
		ord, err := keyOrd(opts.Start)
		if err != nil {
			return nil, err
		}
		sc.next = ord
	}
	sc.end = len(rows)
	if opts.End != nil {
		ord, err := keyOrd(opts.End)
		if err != nil {
			return nil, err
		}
		if ord < sc.end {
			sc.end = ord
		}
	}
	return sc, nil
}

// EstimateCost implements core.StorageInstance. System views are memory
// materializations: no I/O, CPU linear in the (small) row count.
func (s *store) EstimateCost(req core.CostRequest) core.CostEstimate {
	n := req.RecordCount
	if n <= 0 {
		n = s.RecordCount()
	}
	sel := 1.0
	if len(req.Conjuncts) > 0 {
		sel = 0.1
	}
	return core.CostEstimate{Usable: true, IO: 0, CPU: float64(n), Selectivity: sel}
}

// RecordCount implements core.StorageInstance by materializing the view.
// The views are bounded (active transactions, buffer frames, trace ring),
// so this stays cheap enough for planning.
func (s *store) RecordCount() int {
	rows, err := s.gen(s.env)
	if err != nil {
		return 0
	}
	return len(rows)
}

// ApplyLogged implements core.StorageInstance. System relations never log,
// so no record can ever dispatch here.
func (s *store) ApplyLogged(payload []byte, undo bool) error {
	return fmt.Errorf("syssm: %s: unexpected log record for a virtual relation", s.rd.Name)
}

// scan iterates a materialized view batch. Pos/Restore use the ordinal,
// satisfying the savepoint position contract trivially.
type scan struct {
	store *store
	rows  []types.Record
	opts  core.ScanOptions
	next  int // ordinal of the next row to consider
	end   int // exclusive ordinal bound
}

func (sc *scan) Next() (types.Key, types.Record, bool, error) {
	for sc.next < sc.end {
		ord := sc.next
		sc.next++
		rec := sc.rows[ord]
		if sc.opts.Filter != nil {
			match, err := sc.store.env.Eval.EvalBool(sc.opts.Filter, rec, sc.opts.Params)
			if err != nil {
				return nil, nil, false, err
			}
			if !match {
				continue
			}
		}
		if sc.opts.Fields != nil {
			rec = rec.Project(sc.opts.Fields)
		}
		return ordKey(ord), rec, true, nil
	}
	return nil, nil, false, nil
}

func (sc *scan) Pos() core.ScanPos {
	return core.ScanPos(ordKey(sc.next))
}

func (sc *scan) Restore(pos core.ScanPos) error {
	ord, err := keyOrd(types.Key(pos))
	if err != nil {
		return err
	}
	sc.next = ord
	return nil
}

func (sc *scan) Close() error { return nil }

// ---- sys.stat_activity ----

var activitySchema = types.MustSchema(
	types.Column{Name: "id", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "mode", Kind: types.KindString, NotNull: true},
	types.Column{Name: "state", Kind: types.KindString, NotNull: true},
	types.Column{Name: "username", Kind: types.KindString},
	types.Column{Name: "start_ns", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "rows_read", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "rows_written", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "lock_waits", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "lock_wait_ns", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "wal_records", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "wal_bytes", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "buffer_hits", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "buffer_misses", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "chain_walks", Kind: types.KindInt, NotNull: true},
)

func userVal(u string) types.Value {
	if u == "" {
		return types.Null()
	}
	return types.Str(u)
}

func statsTail(st txn.StatsSnapshot) []types.Value {
	return []types.Value{
		types.Int(st.RowsRead),
		types.Int(st.RowsWritten),
		types.Int(st.LockWaits),
		types.Int(st.LockWaitNanos),
		types.Int(st.WALRecords),
		types.Int(st.WALBytes),
		types.Int(st.BufferHits),
		types.Int(st.BufferMisses),
		types.Int(st.ChainWalks),
	}
}

func activityRows(env *core.Env) ([]types.Record, error) {
	infos := env.Txns.ActiveSnapshot()
	rows := make([]types.Record, 0, len(infos))
	for _, in := range infos {
		rec := types.Record{
			types.Int(int64(in.ID)),
			types.Str(in.Mode),
			types.Str(in.State),
			userVal(in.User),
			types.Int(in.Start.UnixNano()),
		}
		rows = append(rows, append(rec, statsTail(in.Stats)...))
	}
	return rows, nil
}

// ---- sys.stat_history ----

var historySchema = types.MustSchema(
	types.Column{Name: "id", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "mode", Kind: types.KindString, NotNull: true},
	types.Column{Name: "outcome", Kind: types.KindString, NotNull: true},
	types.Column{Name: "username", Kind: types.KindString},
	types.Column{Name: "start_ns", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "end_ns", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "commit_stamp", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "rows_read", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "rows_written", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "lock_waits", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "lock_wait_ns", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "wal_records", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "wal_bytes", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "buffer_hits", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "buffer_misses", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "chain_walks", Kind: types.KindInt, NotNull: true},
)

func historyRows(env *core.Env) ([]types.Record, error) {
	fins := env.Txns.History()
	rows := make([]types.Record, 0, len(fins))
	for _, f := range fins {
		rec := types.Record{
			types.Int(int64(f.ID)),
			types.Str(f.Mode),
			types.Str(f.Outcome),
			userVal(f.User),
			types.Int(f.Start.UnixNano()),
			types.Int(f.End.UnixNano()),
			types.Int(int64(f.CommitStamp)),
		}
		rows = append(rows, append(rec, statsTail(f.Stats)...))
	}
	return rows, nil
}

// ---- sys.stat_relations ----

var relationsSchema = types.MustSchema(
	types.Column{Name: "rel_id", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "name", Kind: types.KindString, NotNull: true},
	types.Column{Name: "inserts", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "updates", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "deletes", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "fetches", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "scans", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "errors", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "rows_read", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "rows_written", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "sm_nanos", Kind: types.KindInt, NotNull: true},
)

func relationsRows(env *core.Env) ([]types.Record, error) {
	stats := env.RelStatRows()
	rows := make([]types.Record, 0, len(stats))
	for _, r := range stats {
		rows = append(rows, types.Record{
			types.Int(int64(r.RelID)),
			types.Str(r.Name),
			types.Int(r.Inserts),
			types.Int(r.Updates),
			types.Int(r.Deletes),
			types.Int(r.Fetches),
			types.Int(r.Scans),
			types.Int(r.Errors),
			types.Int(r.RowsRead),
			types.Int(r.RowsWritten),
			types.Int(r.SMNanos),
		})
	}
	return rows, nil
}

// ---- sys.stat_locks ----

var locksSchema = types.MustSchema(
	types.Column{Name: "txn", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "resource", Kind: types.KindString, NotNull: true},
	types.Column{Name: "mode", Kind: types.KindString, NotNull: true},
	types.Column{Name: "state", Kind: types.KindString, NotNull: true},
	types.Column{Name: "blockers", Kind: types.KindString},
)

func locksRows(env *core.Env) ([]types.Record, error) {
	held, waiting := env.Locks.SnapshotLocks()
	rows := make([]types.Record, 0, len(held)+len(waiting))
	for _, h := range held {
		rows = append(rows, types.Record{
			types.Int(int64(h.Txn)),
			types.Str(h.Res.String()),
			types.Str(h.Mode.String()),
			types.Str("held"),
			types.Null(),
		})
	}
	for _, w := range waiting {
		rows = append(rows, types.Record{
			types.Int(int64(w.Txn)),
			types.Str(w.Res.String()),
			types.Str(w.Mode.String()),
			types.Str("waiting"),
			types.Str(joinTxnIDs(w.Blockers)),
		})
	}
	return rows, nil
}

func joinTxnIDs(ids []wal.TxnID) string {
	var b strings.Builder
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatUint(uint64(id), 10))
	}
	return b.String()
}

// ---- sys.stat_lsm ----

var lsmSchema = types.MustSchema(
	types.Column{Name: "rel_id", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "name", Kind: types.KindString, NotNull: true},
	types.Column{Name: "memtable", Kind: types.KindBool, NotNull: true},
	types.Column{Name: "run", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "tier", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "entries", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "bytes", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "bloom_bits", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "min_seq", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "max_seq", Kind: types.KindInt, NotNull: true},
)

func lsmRows(env *core.Env) ([]types.Record, error) {
	names := env.Cat.List()
	sort.Strings(names)
	var rows []types.Record
	for _, name := range names {
		rd, ok := env.Cat.ByName(name)
		if !ok || core.IsSystemRelID(rd.RelID) {
			continue
		}
		// Opening an instance is a side effect (connections, state); only
		// do it for the LSM method, whose instances are local and cheap.
		if rd.SM != core.SMAppend {
			continue
		}
		inst, err := env.StorageInstance(rd)
		if err != nil {
			return nil, err
		}
		li, ok := inst.(core.LSMIntrospector)
		if !ok {
			continue
		}
		for _, ri := range li.RunInfos() {
			rows = append(rows, types.Record{
				types.Int(int64(rd.RelID)),
				types.Str(rd.Name),
				types.Bool(ri.Memtable),
				types.Int(int64(ri.Pos)),
				types.Int(int64(ri.Tier)),
				types.Int(int64(ri.Entries)),
				types.Int(int64(ri.Bytes)),
				types.Int(int64(ri.BloomBits)),
				types.Int(int64(ri.MinSeq)),
				types.Int(int64(ri.MaxSeq)),
			})
		}
	}
	return rows, nil
}

// ---- sys.stat_shards ----

var shardsSchema = types.MustSchema(
	types.Column{Name: "rel_id", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "name", Kind: types.KindString, NotNull: true},
	types.Column{Name: "shard", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "server", Kind: types.KindString, NotNull: true},
	types.Column{Name: "table_name", Kind: types.KindString, NotNull: true},
	types.Column{Name: "records", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "in_doubt", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "messages", Kind: types.KindInt, NotNull: true},
)

func shardsRows(env *core.Env) ([]types.Record, error) {
	names := env.Cat.List()
	sort.Strings(names)
	var rows []types.Record
	for _, name := range names {
		rd, ok := env.Cat.ByName(name)
		if !ok || core.IsSystemRelID(rd.RelID) {
			continue
		}
		if rd.SM != core.SMPart {
			continue
		}
		inst, err := env.StorageInstance(rd)
		if err != nil {
			return nil, err
		}
		si, ok := inst.(core.ShardIntrospector)
		if !ok {
			continue
		}
		// in_doubt and messages are per-server figures: one server may
		// host several shards or relations.
		for _, info := range si.ShardInfos() {
			rows = append(rows, types.Record{
				types.Int(int64(rd.RelID)),
				types.Str(rd.Name),
				types.Int(int64(info.Shard)),
				types.Str(info.Server),
				types.Str(info.Table),
				types.Int(int64(info.Records)),
				types.Int(int64(info.InDoubt)),
				types.Int(info.Messages),
			})
		}
	}
	return rows, nil
}

// ---- sys.stat_buffer ----

var bufferSchema = types.MustSchema(
	types.Column{Name: "page", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "shard", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "pins", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "pinned", Kind: types.KindBool, NotNull: true},
	types.Column{Name: "dirty", Kind: types.KindBool, NotNull: true},
	types.Column{Name: "lsn", Kind: types.KindInt, NotNull: true},
)

func bufferRows(env *core.Env) ([]types.Record, error) {
	frames := env.Pool.FrameInfos()
	rows := make([]types.Record, 0, len(frames))
	for _, f := range frames {
		rows = append(rows, types.Record{
			types.Int(int64(f.Page)),
			types.Int(int64(f.Shard)),
			types.Int(int64(f.Pins)),
			types.Bool(f.Pinned),
			types.Bool(f.Dirty),
			types.Int(int64(f.LSN)),
		})
	}
	return rows, nil
}

// ---- sys.stat_traces ----

var tracesSchema = types.MustSchema(
	types.Column{Name: "txn", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "state", Kind: types.KindString, NotNull: true},
	types.Column{Name: "slow", Kind: types.KindBool, NotNull: true},
	types.Column{Name: "sampled", Kind: types.KindBool, NotNull: true},
	types.Column{Name: "spans", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "root", Kind: types.KindString, NotNull: true},
	types.Column{Name: "dur_ns", Kind: types.KindInt, NotNull: true},
)

func tracesRows(env *core.Env) ([]types.Record, error) {
	traces := env.Tracer.Traces(0)
	rows := make([]types.Record, 0, len(traces))
	for _, t := range traces {
		rows = append(rows, types.Record{
			types.Int(int64(t.TxnID)),
			types.Str(t.State),
			types.Bool(t.Slow),
			types.Bool(t.Sampled),
			types.Int(int64(t.Spans)),
			types.Str(t.Root.Name),
			types.Int(t.Root.DurNanos),
		})
	}
	return rows, nil
}
