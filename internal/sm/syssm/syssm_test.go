package syssm_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"dmx/internal/core"
	"dmx/internal/ddl"
	"dmx/internal/types"

	_ "dmx/internal/sm/appendsm"
	_ "dmx/internal/sm/heap"
	_ "dmx/internal/sm/syssm"
)

func newEnv(t *testing.T) *core.Env {
	t.Helper()
	return core.NewEnv(core.Config{})
}

func mkTable(t *testing.T, env *core.Env, name, sm string) *core.Relation {
	t.Helper()
	schema := types.MustSchema(
		types.Column{Name: "id", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "v", Kind: types.KindString},
	)
	tx := env.Begin()
	if _, err := env.CreateRelation(tx, name, schema, sm, nil); err != nil {
		t.Fatalf("create %s: %v", name, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit create: %v", err)
	}
	rel, err := env.OpenRelationByName(name)
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	return rel
}

// scanView reads every row of a system relation through the ordinary
// relation scan path, in its own transaction.
func scanView(t *testing.T, env *core.Env, view string) []types.Record {
	t.Helper()
	rel, err := env.OpenRelationByName(view)
	if err != nil {
		t.Fatalf("open %s: %v", view, err)
	}
	tx := env.Begin()
	defer tx.Commit()
	sc, err := rel.OpenScan(tx, core.ScanOptions{})
	if err != nil {
		t.Fatalf("scan %s: %v", view, err)
	}
	defer sc.Close()
	var rows []types.Record
	for {
		_, rec, ok, err := sc.Next()
		if err != nil {
			t.Fatalf("next %s: %v", view, err)
		}
		if !ok {
			return rows
		}
		rows = append(rows, rec)
	}
}

func TestSystemRelationsInstalled(t *testing.T) {
	env := newEnv(t)
	for _, name := range []string{
		"sys.stat_activity", "sys.stat_history", "sys.stat_relations",
		"sys.stat_locks", "sys.stat_lsm", "sys.stat_buffer", "sys.stat_traces",
	} {
		rd, ok := env.Cat.ByName(name)
		if !ok {
			t.Fatalf("%s not catalogued", name)
		}
		if !core.IsSystemRelID(rd.RelID) {
			t.Fatalf("%s has non-system RelID %d", name, rd.RelID)
		}
		if rd.SM != core.SMSys {
			t.Fatalf("%s has SM %d, want %d", name, rd.SM, core.SMSys)
		}
	}
}

func TestSystemRelationsProtected(t *testing.T) {
	env := newEnv(t)
	tx := env.Begin()
	defer tx.Abort()

	if err := env.DropRelation(tx, "sys.stat_activity"); err == nil {
		t.Fatal("DROP of a system relation succeeded")
	}
	if _, err := env.CreateAttachment(tx, "sys.stat_activity", "btree", core.AttrList{"on": "id"}); err == nil {
		t.Fatal("CREATE ATTACHMENT on a system relation succeeded")
	}
	schema := types.MustSchema(types.Column{Name: "id", Kind: types.KindInt})
	if _, err := env.CreateRelation(tx, "sys.mine", schema, "heap", nil); err == nil {
		t.Fatal("CREATE in the sys. namespace succeeded")
	}
	if _, err := env.CreateRelation(tx, "t", schema, "sys", nil); err == nil {
		t.Fatal("CREATE USING sys succeeded")
	}
}

func TestSystemRelationsReadOnly(t *testing.T) {
	env := newEnv(t)
	rel, err := env.OpenRelationByName("sys.stat_activity")
	if err != nil {
		t.Fatal(err)
	}
	tx := env.Begin()
	defer tx.Abort()
	if _, err := rel.Insert(tx, make(types.Record, 14)); err == nil {
		t.Fatal("insert into a system relation succeeded")
	}
}

func colIndex(t *testing.T, env *core.Env, view, col string) int {
	t.Helper()
	rd, ok := env.Cat.ByName(view)
	if !ok {
		t.Fatalf("%s not catalogued", view)
	}
	i := rd.Schema.ColIndex(col)
	if i < 0 {
		t.Fatalf("%s has no column %q", view, col)
	}
	return i
}

// TestLiveCountersVisibleAcrossTransactions is the tentpole acceptance
// check: one transaction's in-flight resource ledger is visible from a
// second transaction via sys.stat_activity, its lock wait shows in
// sys.stat_locks with the blocker edge, and after commit its totals land
// in sys.stat_history.
func TestLiveCountersVisibleAcrossTransactions(t *testing.T) {
	env := newEnv(t)
	rel := mkTable(t, env, "t", "heap")

	idCol := colIndex(t, env, "sys.stat_activity", "id")
	rwCol := colIndex(t, env, "sys.stat_activity", "rows_written")
	lwCol := colIndex(t, env, "sys.stat_activity", "lock_waits")

	txA := env.Begin()
	var key types.Key
	for i := 0; i < 3; i++ {
		k, err := rel.Insert(txA, types.Record{types.Int(int64(i)), types.Str("v")})
		if err != nil {
			t.Fatalf("insert: %v", err)
		}
		key = k
	}

	// A second transaction sees A's live rows_written ledger mid-flight.
	findA := func() (types.Record, bool) {
		for _, rec := range scanView(t, env, "sys.stat_activity") {
			if rec[idCol].I == int64(txA.ID()) {
				return rec, true
			}
		}
		return nil, false
	}
	rec, ok := findA()
	if !ok {
		t.Fatalf("txn %d not in sys.stat_activity", txA.ID())
	}
	if rec[rwCol].I != 3 {
		t.Fatalf("live rows_written = %d, want 3", rec[rwCol].I)
	}

	// A conflicting writer blocks on A's X lock; its wait is charged and
	// the waits-for edge shows in sys.stat_locks.
	done := make(chan error, 1)
	go func() {
		txB := env.Begin()
		if _, err := rel.Update(txB, key, types.Record{types.Int(99), types.Str("w")}); err != nil {
			txB.Abort()
			done <- err
			return
		}
		done <- txB.Commit()
	}()

	stCol := colIndex(t, env, "sys.stat_locks", "state")
	blkCol := colIndex(t, env, "sys.stat_locks", "blockers")
	blockerSeen := false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && !blockerSeen {
		for _, lrec := range scanView(t, env, "sys.stat_locks") {
			if lrec[stCol].S == "waiting" &&
				strings.Contains(lrec[blkCol].S, fmt.Sprint(txA.ID())) {
				blockerSeen = true
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !blockerSeen {
		t.Fatal("waiting lock with txA as blocker never appeared in sys.stat_locks")
	}
	if rec, ok := findA(); !ok || rec[lwCol].I != 0 {
		t.Fatalf("txA should not be waiting (rec=%v ok=%v)", rec, ok)
	}

	if err := txA.Commit(); err != nil {
		t.Fatalf("commit A: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("blocked writer: %v", err)
	}

	// A's totals are in the finished-transaction ring.
	hIDCol := colIndex(t, env, "sys.stat_history", "id")
	hRWCol := colIndex(t, env, "sys.stat_history", "rows_written")
	hOutCol := colIndex(t, env, "sys.stat_history", "outcome")
	found := false
	for _, hrec := range scanView(t, env, "sys.stat_history") {
		if hrec[hIDCol].I == int64(txA.ID()) {
			found = true
			if hrec[hOutCol].S != "committed" {
				t.Fatalf("txA outcome = %q, want committed", hrec[hOutCol].S)
			}
			if hrec[hRWCol].I != 3 {
				t.Fatalf("history rows_written = %d, want 3", hrec[hRWCol].I)
			}
		}
	}
	if !found {
		t.Fatalf("txn %d not in sys.stat_history", txA.ID())
	}

	// The blocked writer's wait was charged.
	wFound := false
	hLWCol := colIndex(t, env, "sys.stat_history", "lock_waits")
	hLWNCol := colIndex(t, env, "sys.stat_history", "lock_wait_ns")
	for _, hrec := range scanView(t, env, "sys.stat_history") {
		if hrec[hIDCol].I != int64(txA.ID()) && hrec[hLWCol].I > 0 {
			wFound = true
			if hrec[hLWNCol].I <= 0 {
				t.Fatal("lock_waits > 0 but lock_wait_ns == 0")
			}
		}
	}
	if !wFound {
		t.Fatal("no finished transaction recorded a lock wait")
	}
}

func TestStatRelationsRollup(t *testing.T) {
	env := newEnv(t)
	rel := mkTable(t, env, "t", "heap")
	tx := env.Begin()
	for i := 0; i < 5; i++ {
		if _, err := rel.Insert(tx, types.Record{types.Int(int64(i)), types.Str("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	nameCol := colIndex(t, env, "sys.stat_relations", "name")
	insCol := colIndex(t, env, "sys.stat_relations", "inserts")
	rwCol := colIndex(t, env, "sys.stat_relations", "rows_written")
	for _, rec := range scanView(t, env, "sys.stat_relations") {
		if rec[nameCol].S == "t" {
			if rec[insCol].I != 5 {
				t.Fatalf("inserts = %d, want 5", rec[insCol].I)
			}
			if rec[rwCol].I != 5 {
				t.Fatalf("rows_written = %d, want 5", rec[rwCol].I)
			}
			return
		}
	}
	t.Fatal("relation t not in sys.stat_relations")
}

func TestStatLSM(t *testing.T) {
	env := newEnv(t)
	schema := types.MustSchema(
		types.Column{Name: "id", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "v", Kind: types.KindString},
	)
	tx := env.Begin()
	// A tiny memtable so a handful of inserts seals runs.
	if _, err := env.CreateRelation(tx, "events", schema, "append",
		core.AttrList{"memtable": "256", "compact": "sync"}); err != nil {
		t.Fatalf("create append: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	rel, err := env.OpenRelationByName("events")
	if err != nil {
		t.Fatal(err)
	}
	tx = env.Begin()
	for i := 0; i < 64; i++ {
		if _, err := rel.Insert(tx, types.Record{types.Int(int64(i)), types.Str("payloadpayload")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	nameCol := colIndex(t, env, "sys.stat_lsm", "name")
	memCol := colIndex(t, env, "sys.stat_lsm", "memtable")
	entCol := colIndex(t, env, "sys.stat_lsm", "entries")
	var memRows, runRows, entries int64
	for _, rec := range scanView(t, env, "sys.stat_lsm") {
		if rec[nameCol].S != "events" {
			continue
		}
		if rec[memCol].AsBool() {
			memRows++
		} else {
			runRows++
		}
		entries += rec[entCol].I
	}
	if memRows != 1 {
		t.Fatalf("memtable rows = %d, want 1", memRows)
	}
	if runRows == 0 {
		t.Fatal("no sealed runs in sys.stat_lsm despite a 256-byte memtable")
	}
	if entries < 64 {
		t.Fatalf("total entries = %d, want >= 64", entries)
	}
}

func TestSQLOverSystemRelations(t *testing.T) {
	env := newEnv(t)
	sess := ddl.NewSession(env)
	if _, err := sess.Exec("CREATE TABLE t (id INT NOT NULL, v STRING)"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("INSERT INTO t VALUES (1, 'a'), (2, 'b')"); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Exec("SELECT name, inserts FROM sys.stat_relations WHERE name = 't'")
	if err != nil {
		t.Fatalf("select over sys.stat_relations: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].I != 2 {
		t.Fatalf("unexpected result: %+v", res.Rows)
	}
	// Qualified column references resolve against the dotted table name.
	res, err = sess.Exec("SELECT * FROM sys.stat_history WHERE sys.stat_history.outcome = 'committed'")
	if err != nil {
		t.Fatalf("qualified filter: %v", err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no committed transactions in sys.stat_history")
	}
	// ORDER BY + LIMIT flow through the plan layer like any relation.
	if _, err := sess.Exec("SELECT id, rows_written FROM sys.stat_history ORDER BY id DESC LIMIT 3"); err != nil {
		t.Fatalf("order/limit: %v", err)
	}
	// System relations join like any other relation (the README's
	// stuck-transaction query; no waiters here, so zero rows, but the
	// whole parse/bind/plan/execute path must hold together).
	res, err = sess.Exec("SELECT sys.stat_locks.resource, sys.stat_locks.blockers, " +
		"sys.stat_activity.id, sys.stat_activity.lock_wait_ns " +
		"FROM sys.stat_locks JOIN sys.stat_activity " +
		"ON sys.stat_locks.txn = sys.stat_activity.id " +
		"WHERE sys.stat_locks.state = 'waiting'")
	if err != nil {
		t.Fatalf("join over system relations: %v", err)
	}
	if len(res.Columns) != 4 {
		t.Fatalf("join columns = %v", res.Columns)
	}
	// Modifications are refused end to end.
	if _, err := sess.Exec("DELETE FROM sys.stat_history"); err == nil {
		t.Fatal("DELETE from a system relation succeeded")
	}
}

func TestScanPosRestore(t *testing.T) {
	env := newEnv(t)
	mkTable(t, env, "t", "heap")
	rel, err := env.OpenRelationByName("sys.stat_relations")
	if err != nil {
		t.Fatal(err)
	}
	tx := env.Begin()
	defer tx.Commit()
	sc, err := rel.OpenScan(tx, core.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if _, _, ok, err := sc.Next(); err != nil || !ok {
		t.Fatalf("first next: ok=%v err=%v", ok, err)
	}
	pos := sc.Pos()
	k1, _, ok, err := sc.Next()
	if err != nil || !ok {
		t.Fatalf("second next: ok=%v err=%v", ok, err)
	}
	if err := sc.Restore(pos); err != nil {
		t.Fatalf("restore: %v", err)
	}
	k2, _, ok, err := sc.Next()
	if err != nil || !ok {
		t.Fatalf("post-restore next: ok=%v err=%v", ok, err)
	}
	if string(k1) != string(k2) {
		t.Fatalf("restore did not reposition: %x vs %x", k1, k2)
	}
}

func TestDebugStatEndpoint(t *testing.T) {
	env := newEnv(t)
	rel := mkTable(t, env, "t", "heap")
	tx := env.Begin()
	if _, err := rel.Insert(tx, types.Record{types.Int(1), types.Str("a")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	addr, err := env.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()

	get := func(path string) (int, []byte) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	// Short and fully-qualified names address the same view.
	for _, path := range []string{"/stat/relations", "/stat/sys.stat_relations"} {
		code, body := get(path)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", path, code, body)
		}
		var got struct {
			View string           `json:"view"`
			Rows []map[string]any `json:"rows"`
		}
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatalf("%s: bad JSON: %v", path, err)
		}
		if got.View != "sys.stat_relations" {
			t.Fatalf("view = %q", got.View)
		}
		found := false
		for _, row := range got.Rows {
			if row["name"] == "t" && row["inserts"] == float64(1) {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: relation t missing from %s", path, body)
		}
	}
	if code, _ := get("/stat/history"); code != http.StatusOK {
		t.Fatal("history view not served")
	}
	if code, _ := get("/stat/bogus"); code != http.StatusNotFound {
		t.Fatal("unknown view did not 404")
	}
}

// TestConcurrentObservation drives 8 writers through mixed DML while
// observers continuously scan the system relations; under -race this
// proves the self-observation read paths are safe against live mutation.
func TestConcurrentObservation(t *testing.T) {
	env := newEnv(t)
	rel := mkTable(t, env, "t", "heap")

	const writers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tx := env.Begin()
				key, err := rel.Insert(tx, types.Record{types.Int(int64(w*1_000_000 + i)), types.Str("v")})
				if err != nil {
					tx.Abort()
					continue
				}
				switch i % 3 {
				case 0:
					_, err = rel.Update(tx, key, types.Record{types.Int(int64(i)), types.Str("u")})
				case 1:
					err = rel.Delete(tx, key)
				}
				if err != nil {
					tx.Abort()
					continue
				}
				if i%5 == 0 {
					tx.Abort()
				} else {
					tx.Commit()
				}
			}
		}(w)
	}

	views := []string{"sys.stat_activity", "sys.stat_locks", "sys.stat_relations", "sys.stat_history", "sys.stat_buffer"}
	for o := 0; o < 2; o++ {
		wg.Add(1)
		go func(o int) {
			defer wg.Done()
			arity := make(map[string]int)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				view := views[(i+o)%len(views)]
				rows := scanView(t, env, view)
				// Torn-row check: every row of a view has the same arity.
				for _, rec := range rows {
					if want, ok := arity[view]; ok && len(rec) != want {
						t.Errorf("%s: torn row arity %d vs %d", view, len(rec), want)
						return
					} else if !ok {
						arity[view] = len(rec)
					}
				}
			}
		}(o)
	}

	time.Sleep(1 * time.Second)
	close(stop)
	wg.Wait()
}
