package rig

import (
	"strings"
	"testing"
	"time"

	"dmx/internal/core"
	_ "dmx/internal/sm/memsm"
	"dmx/internal/txn"
	"dmx/internal/types"
)

func TestEmpWorkload(t *testing.T) {
	if EmpSchema().NumCols() != 4 {
		t.Fatal("schema arity")
	}
	r := EmpRecord(12, 5)
	if r[0].AsInt() != 12 || r[1].AsInt() != 2 || r[2].AsFloat() != 12 || len(r[3].S) != 5 {
		t.Fatalf("EmpRecord = %v", r)
	}
	if err := EmpSchema().Validate(r); err != nil {
		t.Fatal(err)
	}
}

func TestLoadAndDrain(t *testing.T) {
	env := core.NewEnv(core.Config{})
	rel := MustCreate(env, "t", "memory", nil)
	keys := Load(env, rel, 25, 4)
	if len(keys) != 25 || rel.Storage().RecordCount() != 25 {
		t.Fatal("Load")
	}
	WithTxn(env, func(tx *txn.Txn) {
		scan, err := rel.OpenScan(tx, core.ScanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if n := Drain(scan); n != 25 {
			t.Fatalf("Drain = %d", n)
		}
	})
}

func TestTableFormatting(t *testing.T) {
	tbl := NewTable("demo", "name", "value")
	tbl.Note = "a note"
	tbl.Add("short", 1.5)
	tbl.Add("a-much-longer-name", 42*time.Microsecond)
	tbl.Add("dur", 3*time.Millisecond)
	tbl.Add("sec", 2*time.Second)
	tbl.Add("ns", 500*time.Nanosecond)
	var sb strings.Builder
	tbl.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"demo", "a note", "name", "1.50", "42.0µs", "3.00ms", "2s", "500ns", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTimingHelpers(t *testing.T) {
	d := Time(func() { time.Sleep(time.Millisecond) })
	if d < time.Millisecond {
		t.Fatalf("Time = %v", d)
	}
	if PerOp(100*time.Millisecond, 10) != 10*time.Millisecond {
		t.Fatal("PerOp")
	}
	if PerOp(time.Second, 0) != 0 {
		t.Fatal("PerOp zero")
	}
	if Rand().Int63() != Rand().Int63() {
		t.Fatal("Rand not deterministic")
	}
	_ = types.Int(0)
}
