// Package rig holds shared workload generators and reporting helpers for
// the experiment harness (cmd/dmxbench) and the root benchmark suite.
package rig

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"dmx/internal/core"
	"dmx/internal/txn"
	"dmx/internal/types"
)

// EmpSchema is the standard experiment schema: eno INT, dno INT,
// salary FLOAT, pad STRING.
func EmpSchema() *types.Schema {
	return types.MustSchema(
		types.Column{Name: "eno", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "dno", Kind: types.KindInt},
		types.Column{Name: "salary", Kind: types.KindFloat},
		types.Column{Name: "pad", Kind: types.KindString},
	)
}

// EmpRecord builds the i-th standard record: dno cycles mod 10, salary is
// i, pad is padBytes of deterministic filler.
func EmpRecord(i int, padBytes int) types.Record {
	return types.Record{
		types.Int(int64(i)),
		types.Int(int64(i % 10)),
		types.Float(float64(i)),
		types.Str(strings.Repeat("x", padBytes)),
	}
}

// MustCreate creates a relation (committing the DDL) and returns its
// runtime handle.
func MustCreate(env *core.Env, name, sm string, attrs core.AttrList) *core.Relation {
	tx := env.Begin()
	if _, err := env.CreateRelation(tx, name, EmpSchema(), sm, attrs); err != nil {
		panic(err)
	}
	if err := tx.Commit(); err != nil {
		panic(err)
	}
	rel, err := env.OpenRelationByName(name)
	if err != nil {
		panic(err)
	}
	return rel
}

// MustAttach adds an attachment (committing the DDL).
func MustAttach(env *core.Env, relName, attName string, attrs core.AttrList) {
	tx := env.Begin()
	if _, err := env.CreateAttachment(tx, relName, attName, attrs); err != nil {
		panic(err)
	}
	if err := tx.Commit(); err != nil {
		panic(err)
	}
}

// Load inserts n standard records in one transaction.
func Load(env *core.Env, rel *core.Relation, n, padBytes int) []types.Key {
	tx := env.Begin()
	keys := make([]types.Key, n)
	for i := 0; i < n; i++ {
		k, err := rel.Insert(tx, EmpRecord(i, padBytes))
		if err != nil {
			panic(err)
		}
		keys[i] = k
	}
	if err := tx.Commit(); err != nil {
		panic(err)
	}
	return keys
}

// Drain consumes a scan fully, returning the number of records seen.
func Drain(scan core.Scan) int {
	n := 0
	for {
		_, _, ok, err := scan.Next()
		if err != nil {
			panic(err)
		}
		if !ok {
			return n
		}
		n++
	}
}

// WithTxn runs fn in a fresh committed transaction.
func WithTxn(env *core.Env, fn func(tx *txn.Txn)) {
	tx := env.Begin()
	fn(tx)
	if err := tx.Commit(); err != nil {
		panic(err)
	}
}

// Rand returns the deterministic experiment RNG.
func Rand() *rand.Rand { return rand.New(rand.NewSource(1987)) }

// Table accumulates a result table for the experiment reports.
type Table struct {
	Title   string
	Note    string
	Headers []string
	Rows    [][]string
}

// NewTable starts a table.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; cells are formatted with %v (durations and floats
// get friendlier forms).
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case time.Duration:
			row[i] = fmtDuration(v)
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func fmtDuration(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return d.Round(time.Millisecond).String()
	}
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "\n%s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "  %s\n", t.Note)
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(w, "  %-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Headers)
	rules := make([]string, len(t.Headers))
	for i := range rules {
		rules[i] = strings.Repeat("-", widths[i])
	}
	line(rules)
	for _, row := range t.Rows {
		line(row)
	}
}

// Time runs fn and returns the elapsed wall time.
func Time(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// PerOp renders d/n as a per-operation duration.
func PerOp(d time.Duration, n int) time.Duration {
	if n == 0 {
		return 0
	}
	return d / time.Duration(n)
}
