package rtree

import (
	"fmt"
	"math/rand"
	"testing"

	"dmx/internal/expr"
)

func pt(x, y float64) expr.Box { return expr.NewBox(x, y, x+1, y+1) }

func TestEmpty(t *testing.T) {
	tr := New()
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Fatal("empty tree")
	}
	if _, ok := tr.Bounds(); ok {
		t.Fatal("bounds of empty")
	}
	if n := tr.Search(expr.NewBox(0, 0, 10, 10), Overlaps, func(Entry) bool { return true }); n != 0 {
		t.Fatal("search of empty visited nodes")
	}
	if tr.Delete(pt(0, 0), []byte("x")) {
		t.Fatal("delete from empty")
	}
}

func TestInsertSearchModes(t *testing.T) {
	tr := New()
	tr.Insert(expr.NewBox(0, 0, 2, 2), []byte("small"))
	tr.Insert(expr.NewBox(1, 1, 8, 8), []byte("big"))
	tr.Insert(expr.NewBox(20, 20, 21, 21), []byte("far"))

	collect := func(q expr.Box, m Mode) []string {
		var out []string
		tr.Search(q, m, func(e Entry) bool {
			out = append(out, string(e.Payload))
			return true
		})
		return out
	}
	if got := collect(expr.NewBox(0, 0, 10, 10), Within); len(got) != 2 {
		t.Fatalf("Within = %v", got)
	}
	if got := collect(expr.NewBox(1.5, 1.5, 1.6, 1.6), Contains); len(got) != 2 {
		t.Fatalf("Contains = %v", got)
	}
	if got := collect(expr.NewBox(7, 7, 25, 25), Overlaps); len(got) != 2 {
		t.Fatalf("Overlaps = %v", got)
	}
	if got := collect(expr.NewBox(100, 100, 101, 101), Overlaps); len(got) != 0 {
		t.Fatalf("no-match Overlaps = %v", got)
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 50; i++ {
		tr.Insert(pt(float64(i), 0), []byte{byte(i)})
	}
	n := 0
	tr.Search(expr.NewBox(-1, -1, 100, 100), Overlaps, func(Entry) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestManyInsertsSplitCorrectness(t *testing.T) {
	tr := New()
	r := rand.New(rand.NewSource(5))
	type item struct {
		box expr.Box
		id  string
	}
	var items []item
	for i := 0; i < 2000; i++ {
		b := expr.NewBox(r.Float64()*1000, r.Float64()*1000, r.Float64()*1000, r.Float64()*1000)
		id := fmt.Sprintf("e%d", i)
		items = append(items, item{b, id})
		tr.Insert(b, []byte(id))
	}
	if tr.Len() != 2000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Height() < 2 {
		t.Fatalf("height = %d, tree never split", tr.Height())
	}
	// Every query must return exactly the brute-force answer.
	for q := 0; q < 50; q++ {
		query := expr.NewBox(r.Float64()*1000, r.Float64()*1000, r.Float64()*1000, r.Float64()*1000)
		want := map[string]bool{}
		for _, it := range items {
			if it.box.Overlaps(query) {
				want[it.id] = true
			}
		}
		got := map[string]bool{}
		tr.Search(query, Overlaps, func(e Entry) bool {
			got[string(e.Payload)] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d, want %d", q, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("query %d missing %s", q, id)
			}
		}
	}
}

func TestPruningVisitsFewNodes(t *testing.T) {
	tr := New()
	for i := 0; i < 10000; i++ {
		x, y := float64(i%100)*10, float64(i/100)*10
		tr.Insert(expr.NewBox(x, y, x+1, y+1), []byte(fmt.Sprint(i)))
	}
	// A tiny query should touch a tiny fraction of the nodes.
	visited := tr.Search(expr.NewBox(500, 500, 510, 510), Overlaps, func(Entry) bool { return true })
	total := tr.Search(expr.NewBox(-1, -1, 1001, 1001), Overlaps, func(Entry) bool { return true })
	if visited*10 > total {
		t.Fatalf("poor pruning: tiny query visited %d of %d nodes", visited, total)
	}
}

func TestDeleteRandomised(t *testing.T) {
	tr := New()
	r := rand.New(rand.NewSource(9))
	boxes := make([]expr.Box, 500)
	for i := range boxes {
		boxes[i] = pt(r.Float64()*100, r.Float64()*100)
		tr.Insert(boxes[i], []byte(fmt.Sprint(i)))
	}
	// Delete every other entry.
	for i := 0; i < 500; i += 2 {
		if !tr.Delete(boxes[i], []byte(fmt.Sprint(i))) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 250 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// Deleted entries are gone; kept entries are findable.
	for i := 0; i < 500; i++ {
		found := false
		tr.Search(boxes[i], Overlaps, func(e Entry) bool {
			if string(e.Payload) == fmt.Sprint(i) {
				found = true
			}
			return !found
		})
		if want := i%2 == 1; found != want {
			t.Fatalf("entry %d: found=%v want=%v", i, found, want)
		}
	}
	// Delete with wrong payload fails.
	if tr.Delete(boxes[1], []byte("wrong")) {
		t.Fatal("wrong payload delete succeeded")
	}
	// Drain fully.
	for i := 1; i < 500; i += 2 {
		if !tr.Delete(boxes[i], []byte(fmt.Sprint(i))) {
			t.Fatalf("drain delete %d failed", i)
		}
	}
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Fatalf("tree not empty: %d/%d", tr.Len(), tr.Height())
	}
}

func TestBounds(t *testing.T) {
	tr := New()
	tr.Insert(expr.NewBox(0, 0, 1, 1), []byte("a"))
	tr.Insert(expr.NewBox(10, 10, 20, 20), []byte("b"))
	b, ok := tr.Bounds()
	if !ok || !b.Encloses(expr.NewBox(0, 0, 20, 20)) {
		t.Fatalf("bounds = %v", b)
	}
}
