// Package rtree implements an in-memory R-tree (Guttman 1984) over 2-D
// boxes — the spatial access structure the paper cites as the motivating
// application-specific access path ("spatial database applications can
// make use of an R-tree access path to efficiently compute certain
// spatial predicates").
//
// The tree stores (box, payload) entries, splits with Guttman's linear
// split heuristic, and answers overlap and containment searches. It is
// not safe for concurrent use; callers latch.
package rtree

import (
	"bytes"
	"math"

	"dmx/internal/expr"
)

const (
	maxEntries = 16
	minEntries = 4
)

// Entry is a stored (box, payload) pair.
type Entry struct {
	Box     expr.Box
	Payload []byte
}

type node struct {
	leaf     bool
	box      expr.Box
	entries  []Entry // leaf
	children []*node // internal
}

func (n *node) recomputeBox() {
	if n.leaf {
		if len(n.entries) == 0 {
			n.box = expr.Box{}
			return
		}
		b := n.entries[0].Box
		for _, e := range n.entries[1:] {
			b = b.Union(e.Box)
		}
		n.box = b
		return
	}
	if len(n.children) == 0 {
		n.box = expr.Box{}
		return
	}
	b := n.children[0].box
	for _, c := range n.children[1:] {
		b = b.Union(c.box)
	}
	n.box = b
}

// Tree is an R-tree. The zero value is an empty tree.
type Tree struct {
	root *node
	size int
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// Len returns the number of stored entries.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height (for cost models).
func (t *Tree) Height() int {
	h, n := 0, t.root
	for n != nil {
		h++
		if n.leaf {
			break
		}
		n = n.children[0]
	}
	return h
}

// Bounds returns the minimum bounding box of all entries.
func (t *Tree) Bounds() (expr.Box, bool) {
	if t.root == nil || t.size == 0 {
		return expr.Box{}, false
	}
	return t.root.box, true
}

// Insert stores (box, payload); payload is copied.
func (t *Tree) Insert(box expr.Box, payload []byte) {
	e := Entry{Box: box, Payload: append([]byte(nil), payload...)}
	if t.root == nil {
		t.root = &node{leaf: true, entries: []Entry{e}, box: box}
		t.size = 1
		return
	}
	n1, n2 := t.insert(t.root, e)
	if n2 != nil {
		t.root = &node{children: []*node{n1, n2}}
		t.root.recomputeBox()
	}
	t.size++
}

// insert adds e under n, returning (n, split) where split is non-nil when
// the node overflowed and split.
func (t *Tree) insert(n *node, e Entry) (*node, *node) {
	n.box = n.box.Union(e.Box)
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) > maxEntries {
			return t.splitLeaf(n)
		}
		return n, nil
	}
	best, bestGrow := 0, math.Inf(1)
	for i, c := range n.children {
		grow := c.box.Enlargement(e.Box)
		if grow < bestGrow || (grow == bestGrow && c.box.Area() < n.children[best].box.Area()) {
			best, bestGrow = i, grow
		}
	}
	c1, c2 := t.insert(n.children[best], e)
	n.children[best] = c1
	if c2 != nil {
		n.children = append(n.children, c2)
		if len(n.children) > maxEntries {
			return t.splitInternal(n)
		}
	}
	n.recomputeBox()
	return n, nil
}

// linearSeeds picks the two seed indexes with greatest normalised
// separation (Guttman's linear split).
func linearSeeds(boxes []expr.Box) (int, int) {
	lowX, highX, lowY, highY := 0, 0, 0, 0
	var minXMax, maxXMin = math.Inf(1), math.Inf(-1)
	var minYMax, maxYMin = math.Inf(1), math.Inf(-1)
	total := boxes[0]
	for i, b := range boxes {
		total = total.Union(b)
		if b.XMax < minXMax {
			minXMax, lowX = b.XMax, i
		}
		if b.XMin > maxXMin {
			maxXMin, highX = b.XMin, i
		}
		if b.YMax < minYMax {
			minYMax, lowY = b.YMax, i
		}
		if b.YMin > maxYMin {
			maxYMin, highY = b.YMin, i
		}
	}
	sepX := (maxXMin - minXMax) / math.Max(total.XMax-total.XMin, 1e-12)
	sepY := (maxYMin - minYMax) / math.Max(total.YMax-total.YMin, 1e-12)
	a, b := lowX, highX
	if sepY > sepX {
		a, b = lowY, highY
	}
	if a == b {
		if a == 0 {
			b = 1
		} else {
			b = 0
		}
	}
	return a, b
}

func (t *Tree) splitLeaf(n *node) (*node, *node) {
	boxes := make([]expr.Box, len(n.entries))
	for i, e := range n.entries {
		boxes[i] = e.Box
	}
	sa, sb := linearSeeds(boxes)
	a := &node{leaf: true, entries: []Entry{n.entries[sa]}, box: n.entries[sa].Box}
	b := &node{leaf: true, entries: []Entry{n.entries[sb]}, box: n.entries[sb].Box}
	for i, e := range n.entries {
		if i == sa || i == sb {
			continue
		}
		assignEntry(a, b, e)
	}
	return a, b
}

func assignEntry(a, b *node, e Entry) {
	// Force balance so neither side is starved below minEntries.
	switch {
	case len(a.entries)+1 < minEntries && len(b.entries) >= minEntries:
		a.entries = append(a.entries, e)
		a.box = a.box.Union(e.Box)
		return
	case len(b.entries)+1 < minEntries && len(a.entries) >= minEntries:
		b.entries = append(b.entries, e)
		b.box = b.box.Union(e.Box)
		return
	}
	if a.box.Enlargement(e.Box) <= b.box.Enlargement(e.Box) {
		a.entries = append(a.entries, e)
		a.box = a.box.Union(e.Box)
	} else {
		b.entries = append(b.entries, e)
		b.box = b.box.Union(e.Box)
	}
}

func (t *Tree) splitInternal(n *node) (*node, *node) {
	boxes := make([]expr.Box, len(n.children))
	for i, c := range n.children {
		boxes[i] = c.box
	}
	sa, sb := linearSeeds(boxes)
	a := &node{children: []*node{n.children[sa]}, box: n.children[sa].box}
	b := &node{children: []*node{n.children[sb]}, box: n.children[sb].box}
	for i, c := range n.children {
		if i == sa || i == sb {
			continue
		}
		if a.box.Enlargement(c.box) <= b.box.Enlargement(c.box) {
			a.children = append(a.children, c)
			a.box = a.box.Union(c.box)
		} else {
			b.children = append(b.children, c)
			b.box = b.box.Union(c.box)
		}
	}
	return a, b
}

// Delete removes the entry with the given box and payload, reporting
// whether it was found. Underfull nodes are tolerated (no condensation);
// empty subtrees are pruned.
func (t *Tree) Delete(box expr.Box, payload []byte) bool {
	if t.root == nil {
		return false
	}
	ok := t.delete(t.root, box, payload)
	if ok {
		t.size--
		if !t.root.leaf && len(t.root.children) == 1 {
			t.root = t.root.children[0]
		}
		if t.size == 0 {
			t.root = nil
		}
	}
	return ok
}

func (t *Tree) delete(n *node, box expr.Box, payload []byte) bool {
	if n.leaf {
		for i, e := range n.entries {
			if e.Box == box && bytes.Equal(e.Payload, payload) {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				n.recomputeBox()
				return true
			}
		}
		return false
	}
	for i, c := range n.children {
		if !c.box.Overlaps(box) {
			continue
		}
		if t.delete(c, box, payload) {
			if (c.leaf && len(c.entries) == 0) || (!c.leaf && len(c.children) == 0) {
				n.children = append(n.children[:i], n.children[i+1:]...)
			}
			n.recomputeBox()
			return true
		}
	}
	return false
}

// Mode selects the containment semantics of a search.
type Mode uint8

// Search modes.
const (
	// Overlaps matches entries whose box intersects the query box.
	Overlaps Mode = iota + 1
	// Within matches entries fully enclosed by the query box.
	Within
	// Contains matches entries whose box fully encloses the query box.
	Contains
)

// Search visits entries matching the query under the mode until fn
// returns false. It returns the number of tree nodes visited (for cost
// accounting).
func (t *Tree) Search(query expr.Box, mode Mode, fn func(Entry) bool) int {
	if t.root == nil {
		return 0
	}
	visited := 0
	var walk func(n *node) bool
	walk = func(n *node) bool {
		visited++
		if n.leaf {
			for _, e := range n.entries {
				match := false
				switch mode {
				case Overlaps:
					match = e.Box.Overlaps(query)
				case Within:
					match = query.Encloses(e.Box)
				case Contains:
					match = e.Box.Encloses(query)
				}
				if match && !fn(e) {
					return false
				}
			}
			return true
		}
		for _, c := range n.children {
			if !c.box.Overlaps(query) {
				continue
			}
			if !walk(c) {
				return false
			}
		}
		return true
	}
	walk(t.root)
	return visited
}
