package remote

import (
	"sync"
	"testing"
	"time"

	"dmx/internal/types"
)

func client(t *testing.T, latency time.Duration) (*Server, *Client) {
	t.Helper()
	srv := NewServer(latency)
	c := Dial(srv)
	t.Cleanup(func() { c.Close() })
	return srv, c
}

func rec(vals ...types.Value) types.Record { return types.Record(vals) }

func TestTableLifecycle(t *testing.T) {
	_, c := client(t, 0)
	if _, err := c.Put("ghost", nil, rec(types.Int(1))); err == nil {
		t.Fatal("put to missing table accepted")
	}
	if err := c.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	// Idempotent create.
	if err := c.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put("t", nil, rec(types.Int(1))); err != nil {
		t.Fatal(err)
	}
	if err := c.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("t", types.Key{1}); err == nil {
		t.Fatal("get from dropped table accepted")
	}
}

func TestPutGetDeleteCount(t *testing.T) {
	_, c := client(t, 0)
	c.CreateTable("t")
	k1, err := c.Put("t", nil, rec(types.Int(1), types.Str("a")))
	if err != nil || k1 == nil {
		t.Fatalf("put: %v %v", k1, err)
	}
	k2, _ := c.Put("t", nil, rec(types.Int(2), types.Str("b")))
	if k1.Equal(k2) {
		t.Fatal("server reused a key")
	}
	got, err := c.Get("t", k1)
	if err != nil || got[1].S != "a" {
		t.Fatalf("get: %v %v", got, err)
	}
	// Explicit-key put overwrites.
	if _, err := c.Put("t", k1, rec(types.Int(1), types.Str("a2"))); err != nil {
		t.Fatal(err)
	}
	got, _ = c.Get("t", k1)
	if got[1].S != "a2" {
		t.Fatal("overwrite lost")
	}
	if n, _ := c.Count("t"); n != 2 {
		t.Fatalf("count = %d", n)
	}
	if err := c.Delete("t", k1); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("t", k1); err == nil {
		t.Fatal("double delete accepted")
	}
	if _, err := c.Get("t", k1); err == nil {
		t.Fatal("get of deleted accepted")
	}
	if n, _ := c.Count("t"); n != 1 {
		t.Fatalf("count after delete = %d", n)
	}
}

func TestExplicitKeyAdvancesSequence(t *testing.T) {
	_, c := client(t, 0)
	c.CreateTable("t")
	// Seed an explicit high key; server-assigned keys must not collide.
	high := types.Key{0, 0, 0, 0, 0, 0, 0, 200}
	if _, err := c.Put("t", high, rec(types.Int(1))); err != nil {
		t.Fatal(err)
	}
	k, err := c.Put("t", nil, rec(types.Int(2)))
	if err != nil {
		t.Fatal(err)
	}
	if k.Equal(high) {
		t.Fatal("assigned key collided with explicit key")
	}
	if n, _ := c.Count("t"); n != 2 {
		t.Fatalf("count = %d", n)
	}
}

func TestScanBatchOrderAndPaging(t *testing.T) {
	_, c := client(t, 0)
	c.CreateTable("t")
	for i := 0; i < 25; i++ {
		if _, err := c.Put("t", nil, rec(types.Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	var all []Entry
	var after types.Key
	for {
		batch, err := c.ScanBatch("t", after, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) == 0 {
			break
		}
		if len(batch) > 10 {
			t.Fatalf("batch size %d", len(batch))
		}
		all = append(all, batch...)
		after = types.Key(batch[len(batch)-1].Key)
	}
	if len(all) != 25 {
		t.Fatalf("paged scan = %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if string(all[i-1].Key) >= string(all[i].Key) {
			t.Fatal("scan not in key order")
		}
	}
	// Decode one record to check payload integrity.
	r, _, err := types.DecodeRecord(all[7].Rec)
	if err != nil || r[0].AsInt() != 7 {
		t.Fatalf("entry payload: %v %v", r, err)
	}
}

func TestLatencyAndMessageCounting(t *testing.T) {
	srv, c := client(t, time.Millisecond)
	c.CreateTable("t")
	before := srv.Messages.Load()
	start := time.Now()
	for i := 0; i < 5; i++ {
		if _, err := c.Put("t", nil, rec(types.Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if el := time.Since(start); el < 5*time.Millisecond {
		t.Fatalf("latency not applied: %v", el)
	}
	if srv.Messages.Load()-before != 5 {
		t.Fatalf("messages = %d", srv.Messages.Load()-before)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv := NewServer(0)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := Dial(srv)
			defer c.Close()
			table := string(rune('a' + g))
			if err := c.CreateTable(table); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 200; i++ {
				if _, err := c.Put(table, nil, rec(types.Int(int64(i)))); err != nil {
					t.Error(err)
					return
				}
			}
			if n, err := c.Count(table); err != nil || n != 200 {
				t.Errorf("table %s count = %d, %v", table, n, err)
			}
		}(g)
	}
	wg.Wait()
}

func TestSortedHelpers(t *testing.T) {
	s := []string{}
	for _, k := range []string{"m", "a", "z", "f"} {
		s = insertSorted(s, k)
	}
	want := []string{"a", "f", "m", "z"}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("insertSorted = %v", s)
		}
	}
	s = removeSorted(s, "f")
	if len(s) != 3 || s[1] != "m" {
		t.Fatalf("removeSorted = %v", s)
	}
	// Removing an absent key is a no-op.
	if got := removeSorted(s, "q"); len(got) != 3 {
		t.Fatalf("removeSorted absent = %v", got)
	}
}
