// Package remote implements the simulated foreign database the remote
// relation storage method speaks to.
//
// The paper's example storage method "support[s] access to a foreign
// database by simulating relation accesses via (remote) accesses to
// relations in the foreign database". The real 1987 substrate would be a
// network link to another DBMS; here the foreign database is an in-process
// Server reachable over a byte protocol on a net.Conn (tests use
// net.Pipe), with injectable per-message latency and message counters so
// experiments can expose the round-trip amplification of tuple-at-a-time
// access to remote data.
package remote

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dmx/internal/types"
)

// Op codes of the wire protocol.
type Op uint8

// Protocol operations.
const (
	OpPut    Op = iota + 1 // insert/overwrite a record at a key (key nil = assign)
	OpDelete               // remove the record at a key
	OpGet                  // fetch the record at a key
	OpScan                 // batch of records after a key
	OpCreate               // create a table
	OpDrop                 // drop a table
	OpCount                // record count

	// Transactional operations for partitioned relations. Writes staged
	// under a TxnID are buffered server-side, invisible to requests from
	// other transactions (Get/Scan overlay only their own TxnID's staged
	// writes), and reach the committed table state only at OpCommitTxn —
	// the shard-side half of the coordinator's two-phase commit.
	OpStagePut    // buffer a put under the request's TxnID
	OpStageDelete // buffer a delete (tombstone) under the request's TxnID
	OpPrepare     // phase one: promise the staged writes can commit
	OpCommitTxn   // phase two: apply the staged writes and forget the txn
	OpAbortTxn    // discard the staged writes and forget the txn
	OpInDoubt     // list prepared transaction ids awaiting a decision
)

func (op Op) String() string {
	switch op {
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpGet:
		return "get"
	case OpScan:
		return "scan"
	case OpCreate:
		return "create"
	case OpDrop:
		return "drop"
	case OpCount:
		return "count"
	case OpStagePut:
		return "stageput"
	case OpStageDelete:
		return "stagedelete"
	case OpPrepare:
		return "prepare"
	case OpCommitTxn:
		return "committxn"
	case OpAbortTxn:
		return "aborttxn"
	case OpInDoubt:
		return "indoubt"
	default:
		return fmt.Sprintf("op%d", uint8(op))
	}
}

// Request is one client → server message. TxnID scopes staged writes and
// read-your-writes visibility; zero means "no transaction" (committed
// state only), which is what the non-transactional ops use.
type Request struct {
	Op    Op
	Table string
	Key   []byte
	Rec   []byte // encoded types.Record
	Limit int
	TxnID uint64
}

// Entry is one (key, record) pair in a scan response.
type Entry struct {
	Key []byte
	Rec []byte
}

// Response is one server → client message.
type Response struct {
	Err     string
	Key     []byte
	Rec     []byte
	Entries []Entry
	Count   int
	TxnIDs  []uint64 // OpInDoubt: prepared transactions awaiting a decision
}

// table is one foreign relation.
type table struct {
	mu      sync.Mutex
	recs    map[string][]byte
	ordered []string // insertion-ordered keys for scans (sorted lazily)
	nextSeq uint64
}

// stagedWrite is one buffered transactional write: a pending record value
// or (rec nil) a tombstone.
type stagedWrite struct {
	rec []byte
}

// serverTxn is the shard-side state of one distributed transaction: the
// staged writes per table (last write per key wins, so compensating
// stage ops net out) and whether phase one has promised the commit.
type serverTxn struct {
	writes   map[string]map[string]*stagedWrite // table -> key -> pending
	prepared bool
}

// FaultMode selects how an injected per-operation fault misbehaves.
type FaultMode int

const (
	// FaultReject refuses the request without executing it — the message
	// was "lost" on the way in.
	FaultReject FaultMode = iota + 1
	// FaultAckLoss executes the request but reports failure — the work
	// happened and the acknowledgement was lost on the way back.
	FaultAckLoss
)

// opFault is one armed per-operation fault with a remaining hit budget.
type opFault struct {
	mode  FaultMode
	count int
}

// Server is the foreign database engine.
type Server struct {
	mu     sync.Mutex
	tables map[string]*table

	txMu sync.Mutex
	txns map[uint64]*serverTxn

	faultMu sync.Mutex
	faults  map[Op]*opFault

	// Latency is the simulated one-way network + processing delay added to
	// every request.
	Latency time.Duration
	// Messages counts requests served.
	Messages atomic.Int64
	// Faulted counts requests that an injected fault made fail.
	Faulted atomic.Int64
}

// NewServer returns an empty foreign database.
func NewServer(latency time.Duration) *Server {
	return &Server{
		tables:  make(map[string]*table),
		txns:    make(map[uint64]*serverTxn),
		faults:  make(map[Op]*opFault),
		Latency: latency,
	}
}

// InjectFault arms a fault on the next count requests with the given op:
// FaultReject drops them before execution, FaultAckLoss executes them but
// loses the acknowledgement. Tests use this to exercise the coordinator's
// in-doubt resolution paths.
func (s *Server) InjectFault(op Op, mode FaultMode, count int) {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	s.faults[op] = &opFault{mode: mode, count: count}
}

// takeFault consumes one armed fault hit for op (0 when none armed).
func (s *Server) takeFault(op Op) FaultMode {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	f := s.faults[op]
	if f == nil || f.count <= 0 {
		return 0
	}
	f.count--
	if f.count == 0 {
		delete(s.faults, op)
	}
	s.Faulted.Add(1)
	return f.mode
}

// Serve handles requests on conn until it closes. Run it in a goroutine.
func (s *Server) Serve(conn net.Conn) {
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := s.handle(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) table(name string) (*table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("remote: no such table %q", name)
	}
	return t, nil
}

// ErrFaulted is the error text injected faults report back to the client.
const ErrFaulted = "remote: injected fault"

func (s *Server) handle(req *Request) *Response {
	s.Messages.Add(1)
	if s.Latency > 0 {
		time.Sleep(s.Latency)
	}
	switch s.takeFault(req.Op) {
	case FaultReject:
		return &Response{Err: ErrFaulted}
	case FaultAckLoss:
		s.execute(req) // the work happens; the acknowledgement is lost
		return &Response{Err: ErrFaulted}
	}
	return s.execute(req)
}

func (s *Server) execute(req *Request) *Response {
	switch req.Op {
	case OpCreate:
		s.mu.Lock()
		if _, dup := s.tables[req.Table]; !dup {
			s.tables[req.Table] = &table{recs: make(map[string][]byte), nextSeq: 1}
		}
		s.mu.Unlock()
		return &Response{}
	case OpDrop:
		s.mu.Lock()
		delete(s.tables, req.Table)
		s.mu.Unlock()
		return &Response{}
	case OpStagePut, OpStageDelete:
		return s.stage(req)
	case OpPrepare:
		s.txMu.Lock()
		defer s.txMu.Unlock()
		// Preparing a transaction that staged nothing here is a trivial
		// yes-vote; it is not registered, so there is nothing to resolve.
		if tx := s.txns[req.TxnID]; tx != nil {
			tx.prepared = true
		}
		return &Response{}
	case OpCommitTxn:
		return s.commitTxn(req.TxnID)
	case OpAbortTxn:
		s.txMu.Lock()
		delete(s.txns, req.TxnID)
		s.txMu.Unlock()
		return &Response{}
	case OpInDoubt:
		s.txMu.Lock()
		var ids []uint64
		for id, tx := range s.txns {
			if tx.prepared {
				ids = append(ids, id)
			}
		}
		s.txMu.Unlock()
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		return &Response{TxnIDs: ids}
	}
	t, err := s.table(req.Table)
	if err != nil {
		return &Response{Err: err.Error()}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	switch req.Op {
	case OpPut:
		key := req.Key
		if key == nil {
			key = make([]byte, 8)
			binary.BigEndian.PutUint64(key, t.nextSeq)
			t.nextSeq++
		} else if len(key) == 8 {
			if seq := binary.BigEndian.Uint64(key); seq >= t.nextSeq {
				t.nextSeq = seq + 1
			}
		}
		t.put(key, req.Rec)
		return &Response{Key: key}
	case OpDelete:
		if _, ok := t.recs[string(req.Key)]; !ok {
			return &Response{Err: "remote: key not found"}
		}
		t.del(req.Key)
		return &Response{}
	case OpGet:
		if st := s.stagedFor(req.TxnID, req.Table, req.Key); st != nil {
			if st.rec == nil {
				return &Response{Err: "remote: key not found"}
			}
			return &Response{Rec: st.rec}
		}
		rec, ok := t.recs[string(req.Key)]
		if !ok {
			return &Response{Err: "remote: key not found"}
		}
		return &Response{Rec: rec}
	case OpScan:
		return s.scan(req, t)
	case OpCount:
		return &Response{Count: len(t.recs)}
	default:
		return &Response{Err: fmt.Sprintf("remote: bad op %d", req.Op)}
	}
}

// put installs rec at key in committed state; t.mu must be held.
func (t *table) put(key, rec []byte) {
	if _, exists := t.recs[string(key)]; !exists {
		t.ordered = insertSorted(t.ordered, string(key))
	}
	t.recs[string(key)] = append([]byte(nil), rec...)
}

// del removes key from committed state; t.mu must be held.
func (t *table) del(key []byte) {
	delete(t.recs, string(key))
	t.ordered = removeSorted(t.ordered, string(key))
}

// stage buffers one transactional write. The table must exist — staged
// writes target shard tables the storage method created beforehand.
func (s *Server) stage(req *Request) *Response {
	if req.TxnID == 0 {
		return &Response{Err: "remote: staged write without a transaction id"}
	}
	if _, err := s.table(req.Table); err != nil {
		return &Response{Err: err.Error()}
	}
	s.txMu.Lock()
	defer s.txMu.Unlock()
	tx := s.txns[req.TxnID]
	if tx == nil {
		tx = &serverTxn{writes: make(map[string]map[string]*stagedWrite)}
		s.txns[req.TxnID] = tx
	}
	tw := tx.writes[req.Table]
	if tw == nil {
		tw = make(map[string]*stagedWrite)
		tx.writes[req.Table] = tw
	}
	if req.Op == OpStagePut {
		tw[string(req.Key)] = &stagedWrite{rec: append([]byte(nil), req.Rec...)}
	} else {
		tw[string(req.Key)] = &stagedWrite{} // tombstone
	}
	return &Response{Key: req.Key}
}

// commitTxn applies a transaction's staged writes to committed state.
// Committing an unknown transaction is a no-op success: the decision may
// be redelivered after an acknowledgement was lost.
func (s *Server) commitTxn(txnID uint64) *Response {
	s.txMu.Lock()
	tx := s.txns[txnID]
	delete(s.txns, txnID)
	s.txMu.Unlock()
	if tx == nil {
		return &Response{}
	}
	names := make([]string, 0, len(tx.writes))
	for name := range tx.writes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t, err := s.table(name)
		if err != nil {
			continue // table dropped while the txn was in flight
		}
		t.mu.Lock()
		for key, st := range tx.writes[name] {
			if st.rec == nil {
				t.del([]byte(key))
			} else {
				t.put([]byte(key), st.rec)
			}
		}
		t.mu.Unlock()
	}
	return &Response{}
}

// stagedFor returns the transaction's pending write for key (nil when the
// transaction has none) so reads observe their own staged effects.
func (s *Server) stagedFor(txnID uint64, tableName string, key []byte) *stagedWrite {
	if txnID == 0 {
		return nil
	}
	s.txMu.Lock()
	defer s.txMu.Unlock()
	if tx := s.txns[txnID]; tx != nil {
		return tx.writes[tableName][string(key)]
	}
	return nil
}

// scan returns up to Limit entries with keys strictly after req.Key, in
// key order, overlaying the requesting transaction's staged writes onto
// committed state (staged puts appear, tombstones hide); t.mu is held.
func (s *Server) scan(req *Request, t *table) *Response {
	limit := req.Limit
	if limit <= 0 {
		limit = 100
	}
	// Snapshot the transaction's staged keys in sorted order for a merge.
	var stagedKeys []string
	var staged map[string]*stagedWrite
	if req.TxnID != 0 {
		s.txMu.Lock()
		if tx := s.txns[req.TxnID]; tx != nil && tx.writes[req.Table] != nil {
			staged = make(map[string]*stagedWrite, len(tx.writes[req.Table]))
			for k, st := range tx.writes[req.Table] {
				staged[k] = st
				stagedKeys = append(stagedKeys, k)
			}
		}
		s.txMu.Unlock()
		sort.Strings(stagedKeys)
	}
	after := string(req.Key)
	var out []Entry
	ci, si := 0, 0
	for len(out) < limit {
		// Advance both streams past the exclusive-after position.
		for ci < len(t.ordered) && (req.Key != nil && t.ordered[ci] <= after) {
			ci++
		}
		for si < len(stagedKeys) && (req.Key != nil && stagedKeys[si] <= after) {
			si++
		}
		if ci >= len(t.ordered) && si >= len(stagedKeys) {
			break
		}
		var k string
		switch {
		case ci >= len(t.ordered):
			k = stagedKeys[si]
		case si >= len(stagedKeys):
			k = t.ordered[ci]
		case stagedKeys[si] <= t.ordered[ci]:
			k = stagedKeys[si]
		default:
			k = t.ordered[ci]
		}
		if st, pending := staged[k]; pending {
			if st.rec != nil {
				out = append(out, Entry{Key: []byte(k), Rec: st.rec})
			}
			// Tombstone: the committed record (if any) is hidden.
		} else {
			out = append(out, Entry{Key: []byte(k), Rec: t.recs[k]})
		}
		after = k
		if req.Key == nil {
			req.Key = []byte{} // non-nil so the <= advance applies from now on
		}
	}
	return &Response{Entries: out}
}

func insertSorted(s []string, k string) []string {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s = append(s, "")
	copy(s[lo+1:], s[lo:])
	s[lo] = k
	return s
}

func removeSorted(s []string, k string) []string {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s) && s[lo] == k {
		return append(s[:lo], s[lo+1:]...)
	}
	return s
}

// Client is the storage method's connection to the foreign database. It is
// safe for concurrent use (requests are serialised on the connection).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
}

// Dial starts a server goroutine and returns a connected client — the
// in-process stand-in for dialing a foreign database.
func Dial(s *Server) *Client {
	c1, c2 := net.Pipe()
	go s.Serve(c2)
	return NewClient(c1)
}

// Close drops the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Call performs one round trip.
func (c *Client) Call(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("remote: send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("remote: recv: %w", err)
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("%s", resp.Err)
	}
	return &resp, nil
}

// CreateTable creates a foreign table.
func (c *Client) CreateTable(name string) error {
	_, err := c.Call(&Request{Op: OpCreate, Table: name})
	return err
}

// DropTable drops a foreign table.
func (c *Client) DropTable(name string) error {
	_, err := c.Call(&Request{Op: OpDrop, Table: name})
	return err
}

// Put stores rec at key (nil key lets the server assign one) and returns
// the record's key.
func (c *Client) Put(tableName string, key types.Key, rec types.Record) (types.Key, error) {
	resp, err := c.Call(&Request{Op: OpPut, Table: tableName, Key: key, Rec: rec.AppendEncode(nil)})
	if err != nil {
		return nil, err
	}
	return types.Key(resp.Key), nil
}

// Delete removes the record at key.
func (c *Client) Delete(tableName string, key types.Key) error {
	_, err := c.Call(&Request{Op: OpDelete, Table: tableName, Key: key})
	return err
}

// Get fetches the record at key.
func (c *Client) Get(tableName string, key types.Key) (types.Record, error) {
	resp, err := c.Call(&Request{Op: OpGet, Table: tableName, Key: key})
	if err != nil {
		return nil, err
	}
	rec, _, err := types.DecodeRecord(resp.Rec)
	return rec, err
}

// ScanBatch returns up to limit records with keys strictly after afterKey.
func (c *Client) ScanBatch(tableName string, afterKey types.Key, limit int) ([]Entry, error) {
	resp, err := c.Call(&Request{Op: OpScan, Table: tableName, Key: afterKey, Limit: limit})
	if err != nil {
		return nil, err
	}
	return resp.Entries, nil
}

// Count returns the table's record count.
func (c *Client) Count(tableName string) (int, error) {
	resp, err := c.Call(&Request{Op: OpCount, Table: tableName})
	if err != nil {
		return 0, err
	}
	return resp.Count, nil
}

// GetTxn fetches the record at key, overlaying txnID's staged writes
// (read-your-writes). txnID 0 sees committed state only.
func (c *Client) GetTxn(txnID uint64, tableName string, key types.Key) (types.Record, error) {
	resp, err := c.Call(&Request{Op: OpGet, TxnID: txnID, Table: tableName, Key: key})
	if err != nil {
		return nil, err
	}
	rec, _, err := types.DecodeRecord(resp.Rec)
	return rec, err
}

// ScanBatchTxn returns up to limit records with keys strictly after
// afterKey, overlaying txnID's staged writes onto committed state.
func (c *Client) ScanBatchTxn(txnID uint64, tableName string, afterKey types.Key, limit int) ([]Entry, error) {
	resp, err := c.Call(&Request{Op: OpScan, TxnID: txnID, Table: tableName, Key: afterKey, Limit: limit})
	if err != nil {
		return nil, err
	}
	return resp.Entries, nil
}

// StagePut buffers a put under txnID; it becomes visible to other
// transactions only after CommitTxn.
func (c *Client) StagePut(txnID uint64, tableName string, key types.Key, rec types.Record) error {
	_, err := c.Call(&Request{Op: OpStagePut, TxnID: txnID, Table: tableName, Key: key, Rec: rec.AppendEncode(nil)})
	return err
}

// StageDelete buffers a delete (tombstone) under txnID.
func (c *Client) StageDelete(txnID uint64, tableName string, key types.Key) error {
	_, err := c.Call(&Request{Op: OpStageDelete, TxnID: txnID, Table: tableName, Key: key})
	return err
}

// Prepare is phase one of two-phase commit: the server promises txnID's
// staged writes can commit and keeps them across coordinator restarts
// until it hears a decision.
func (c *Client) Prepare(txnID uint64) error {
	_, err := c.Call(&Request{Op: OpPrepare, TxnID: txnID})
	return err
}

// CommitTxn is phase two: apply txnID's staged writes to committed state.
// Unknown transaction ids succeed (decision redelivery is idempotent).
func (c *Client) CommitTxn(txnID uint64) error {
	_, err := c.Call(&Request{Op: OpCommitTxn, TxnID: txnID})
	return err
}

// AbortTxn discards txnID's staged writes. Idempotent like CommitTxn.
func (c *Client) AbortTxn(txnID uint64) error {
	_, err := c.Call(&Request{Op: OpAbortTxn, TxnID: txnID})
	return err
}

// InDoubt lists prepared transaction ids still awaiting a decision.
func (c *Client) InDoubt() ([]uint64, error) {
	resp, err := c.Call(&Request{Op: OpInDoubt})
	if err != nil {
		return nil, err
	}
	return resp.TxnIDs, nil
}
