// Package remote implements the simulated foreign database the remote
// relation storage method speaks to.
//
// The paper's example storage method "support[s] access to a foreign
// database by simulating relation accesses via (remote) accesses to
// relations in the foreign database". The real 1987 substrate would be a
// network link to another DBMS; here the foreign database is an in-process
// Server reachable over a byte protocol on a net.Conn (tests use
// net.Pipe), with injectable per-message latency and message counters so
// experiments can expose the round-trip amplification of tuple-at-a-time
// access to remote data.
package remote

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dmx/internal/types"
)

// Op codes of the wire protocol.
type Op uint8

// Protocol operations.
const (
	OpPut    Op = iota + 1 // insert/overwrite a record at a key (key nil = assign)
	OpDelete               // remove the record at a key
	OpGet                  // fetch the record at a key
	OpScan                 // batch of records after a key
	OpCreate               // create a table
	OpDrop                 // drop a table
	OpCount                // record count
)

// Request is one client → server message.
type Request struct {
	Op    Op
	Table string
	Key   []byte
	Rec   []byte // encoded types.Record
	Limit int
}

// Entry is one (key, record) pair in a scan response.
type Entry struct {
	Key []byte
	Rec []byte
}

// Response is one server → client message.
type Response struct {
	Err     string
	Key     []byte
	Rec     []byte
	Entries []Entry
	Count   int
}

// table is one foreign relation.
type table struct {
	mu      sync.Mutex
	recs    map[string][]byte
	ordered []string // insertion-ordered keys for scans (sorted lazily)
	nextSeq uint64
}

// Server is the foreign database engine.
type Server struct {
	mu     sync.Mutex
	tables map[string]*table

	// Latency is the simulated one-way network + processing delay added to
	// every request.
	Latency time.Duration
	// Messages counts requests served.
	Messages atomic.Int64
}

// NewServer returns an empty foreign database.
func NewServer(latency time.Duration) *Server {
	return &Server{tables: make(map[string]*table), Latency: latency}
}

// Serve handles requests on conn until it closes. Run it in a goroutine.
func (s *Server) Serve(conn net.Conn) {
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := s.handle(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) table(name string) (*table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("remote: no such table %q", name)
	}
	return t, nil
}

func (s *Server) handle(req *Request) *Response {
	s.Messages.Add(1)
	if s.Latency > 0 {
		time.Sleep(s.Latency)
	}
	switch req.Op {
	case OpCreate:
		s.mu.Lock()
		if _, dup := s.tables[req.Table]; !dup {
			s.tables[req.Table] = &table{recs: make(map[string][]byte), nextSeq: 1}
		}
		s.mu.Unlock()
		return &Response{}
	case OpDrop:
		s.mu.Lock()
		delete(s.tables, req.Table)
		s.mu.Unlock()
		return &Response{}
	}
	t, err := s.table(req.Table)
	if err != nil {
		return &Response{Err: err.Error()}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	switch req.Op {
	case OpPut:
		key := req.Key
		if key == nil {
			key = make([]byte, 8)
			binary.BigEndian.PutUint64(key, t.nextSeq)
			t.nextSeq++
		} else if len(key) == 8 {
			if seq := binary.BigEndian.Uint64(key); seq >= t.nextSeq {
				t.nextSeq = seq + 1
			}
		}
		if _, exists := t.recs[string(key)]; !exists {
			t.ordered = insertSorted(t.ordered, string(key))
		}
		t.recs[string(key)] = append([]byte(nil), req.Rec...)
		return &Response{Key: key}
	case OpDelete:
		if _, ok := t.recs[string(req.Key)]; !ok {
			return &Response{Err: "remote: key not found"}
		}
		delete(t.recs, string(req.Key))
		t.ordered = removeSorted(t.ordered, string(req.Key))
		return &Response{}
	case OpGet:
		rec, ok := t.recs[string(req.Key)]
		if !ok {
			return &Response{Err: "remote: key not found"}
		}
		return &Response{Rec: rec}
	case OpScan:
		limit := req.Limit
		if limit <= 0 {
			limit = 100
		}
		var out []Entry
		for _, k := range t.ordered {
			if req.Key != nil && k <= string(req.Key) {
				continue
			}
			out = append(out, Entry{Key: []byte(k), Rec: t.recs[k]})
			if len(out) >= limit {
				break
			}
		}
		return &Response{Entries: out}
	case OpCount:
		return &Response{Count: len(t.recs)}
	default:
		return &Response{Err: fmt.Sprintf("remote: bad op %d", req.Op)}
	}
}

func insertSorted(s []string, k string) []string {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s = append(s, "")
	copy(s[lo+1:], s[lo:])
	s[lo] = k
	return s
}

func removeSorted(s []string, k string) []string {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s) && s[lo] == k {
		return append(s[:lo], s[lo+1:]...)
	}
	return s
}

// Client is the storage method's connection to the foreign database. It is
// safe for concurrent use (requests are serialised on the connection).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
}

// Dial starts a server goroutine and returns a connected client — the
// in-process stand-in for dialing a foreign database.
func Dial(s *Server) *Client {
	c1, c2 := net.Pipe()
	go s.Serve(c2)
	return NewClient(c1)
}

// Close drops the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Call performs one round trip.
func (c *Client) Call(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("remote: send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("remote: recv: %w", err)
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("%s", resp.Err)
	}
	return &resp, nil
}

// CreateTable creates a foreign table.
func (c *Client) CreateTable(name string) error {
	_, err := c.Call(&Request{Op: OpCreate, Table: name})
	return err
}

// DropTable drops a foreign table.
func (c *Client) DropTable(name string) error {
	_, err := c.Call(&Request{Op: OpDrop, Table: name})
	return err
}

// Put stores rec at key (nil key lets the server assign one) and returns
// the record's key.
func (c *Client) Put(tableName string, key types.Key, rec types.Record) (types.Key, error) {
	resp, err := c.Call(&Request{Op: OpPut, Table: tableName, Key: key, Rec: rec.AppendEncode(nil)})
	if err != nil {
		return nil, err
	}
	return types.Key(resp.Key), nil
}

// Delete removes the record at key.
func (c *Client) Delete(tableName string, key types.Key) error {
	_, err := c.Call(&Request{Op: OpDelete, Table: tableName, Key: key})
	return err
}

// Get fetches the record at key.
func (c *Client) Get(tableName string, key types.Key) (types.Record, error) {
	resp, err := c.Call(&Request{Op: OpGet, Table: tableName, Key: key})
	if err != nil {
		return nil, err
	}
	rec, _, err := types.DecodeRecord(resp.Rec)
	return rec, err
}

// ScanBatch returns up to limit records with keys strictly after afterKey.
func (c *Client) ScanBatch(tableName string, afterKey types.Key, limit int) ([]Entry, error) {
	resp, err := c.Call(&Request{Op: OpScan, Table: tableName, Key: afterKey, Limit: limit})
	if err != nil {
		return nil, err
	}
	return resp.Entries, nil
}

// Count returns the table's record count.
func (c *Client) Count(tableName string) (int, error) {
	resp, err := c.Call(&Request{Op: OpCount, Table: tableName})
	if err != nil {
		return 0, err
	}
	return resp.Count, nil
}
