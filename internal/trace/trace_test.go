package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	tr := New(Config{Sample: 1})
	tx := tr.StartTxn(7)
	if tx == nil || !tx.Detailed() {
		t.Fatal("sample=1 must yield a detailed trace")
	}

	stmt := tx.StartSpan("stmt", "", "insert")
	stmt.SetNote("insert into parts ...")
	rel := tx.StartSpan("rel.insert", "parts", "insert")
	sm := tx.StartSpan("sm.insert", "heap", "insert")
	tx.Event("wal.append", "", "append", time.Now(), 123*time.Microsecond, nil)
	sm.End(nil)
	att := tx.StartSpan("att.insert", "refint", "insert")
	att.MarkVeto()
	att.End(errors.New("veto: dangling supplier"))
	rel.End(nil)
	stmt.End(nil)
	tx.Finish("committed")

	got := tr.Traces(0)
	if len(got) != 1 {
		t.Fatalf("ring: got %d traces, want 1", len(got))
	}
	d := got[0]
	if d.TxnID != 7 || d.State != "committed" || !d.Sampled {
		t.Fatalf("trace header: %+v", d)
	}
	if d.Root.Name != "txn" {
		t.Fatalf("root name %q", d.Root.Name)
	}
	if depth := d.Root.Depth(); depth < 4 {
		t.Fatalf("depth = %d, want >= 4", depth)
	}
	// txn -> stmt -> rel.insert -> {sm.insert -> wal.append, att.insert}
	st := d.Root.Children[0]
	if st.Name != "stmt" || st.Note == "" {
		t.Fatalf("stmt span: %+v", st)
	}
	r := st.Children[0]
	if r.Name != "rel.insert" || r.Ext != "parts" {
		t.Fatalf("rel span: %+v", r)
	}
	if len(r.Children) != 2 {
		t.Fatalf("rel children = %d, want 2", len(r.Children))
	}
	smd := r.Children[0]
	if smd.Name != "sm.insert" || smd.Ext != "heap" {
		t.Fatalf("sm span: %+v", smd)
	}
	if len(smd.Children) != 1 || smd.Children[0].Name != "wal.append" {
		t.Fatalf("wal event not nested under sm span: %+v", smd.Children)
	}
	attd := r.Children[1]
	if !attd.Veto || attd.Err == "" {
		t.Fatalf("att veto span not tagged: %+v", attd)
	}
	if d.Spans != 6 {
		t.Fatalf("span count = %d, want 6", d.Spans)
	}
}

func TestSamplingCadence(t *testing.T) {
	tr := New(Config{Sample: 0.25})
	detailed := 0
	for i := 0; i < 100; i++ {
		tx := tr.StartTxn(uint64(i))
		if tx.Detailed() {
			detailed++
		}
		tx.Finish("committed")
	}
	if detailed != 25 {
		t.Fatalf("1-in-4 sampling traced %d of 100", detailed)
	}
	if s := tr.Stats(); s.Sampled != 25 || s.Completed != 25 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestSampleOffIsInert(t *testing.T) {
	tr := New(Config{})
	if tr.Enabled() {
		t.Fatal("zero config must be disabled")
	}
	tx := tr.StartTxn(1)
	if tx != nil {
		t.Fatal("disabled tracer must return nil trace")
	}
	// The nil trace and its nil spans must be fully inert.
	s := tx.StartSpan("a", "", "")
	s.SetNote("x")
	s.MarkVeto()
	s.End(nil)
	tx.Event("e", "", "", time.Now(), time.Second, nil)
	prev := tx.Enter(s)
	tx.Exit(prev)
	tx.Finish("committed")
	if got := tr.Traces(0); len(got) != 0 {
		t.Fatalf("ring not empty: %d", len(got))
	}
}

func TestSlowOnlyTraceKept(t *testing.T) {
	var slow bytes.Buffer
	tr := New(Config{SlowThreshold: time.Nanosecond, SlowLog: &slow})
	tx := tr.StartTxn(9)
	if tx == nil {
		t.Fatal("slow threshold alone must still yield a root trace")
	}
	if tx.Detailed() {
		t.Fatal("unsampled trace must not be detailed")
	}
	if s := tx.StartSpan("stmt", "", ""); s != nil {
		t.Fatal("unsampled trace must not record child spans")
	}
	time.Sleep(time.Millisecond)
	tx.Finish("aborted")

	got := tr.Traces(0)
	if len(got) != 1 || !got[0].Slow || got[0].Sampled || got[0].State != "aborted" {
		t.Fatalf("slow trace: %+v", got)
	}
	var ev map[string]any
	if err := json.Unmarshal(slow.Bytes(), &ev); err != nil {
		t.Fatalf("slow log line not JSON: %v (%q)", err, slow.String())
	}
	if ev["kind"] != "txn" || ev["state"] != "aborted" {
		t.Fatalf("slow event: %+v", ev)
	}
}

func TestFastUnsampledTraceDropped(t *testing.T) {
	tr := New(Config{SlowThreshold: time.Hour})
	tx := tr.StartTxn(3)
	tx.Finish("committed")
	if got := tr.Traces(0); len(got) != 0 {
		t.Fatalf("fast unsampled trace must not reach the ring: %+v", got)
	}
}

func TestSlowSpanEvent(t *testing.T) {
	var slow bytes.Buffer
	tr := New(Config{Sample: 1, SlowThreshold: time.Nanosecond, SlowLog: &slow})
	tx := tr.StartTxn(4)
	s := tx.StartSpan("sm.scan", "btree", "scan")
	time.Sleep(time.Millisecond)
	s.End(nil)
	tx.Finish("committed")

	lines := strings.Split(strings.TrimSpace(slow.String()), "\n")
	// one span event + one txn event
	if len(lines) != 2 {
		t.Fatalf("slow log lines = %d, want 2: %q", len(lines), slow.String())
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev["kind"] != "span" || ev["span"] != "sm.scan" || ev["ext"] != "btree" {
		t.Fatalf("span event: %+v", ev)
	}
	if s := tr.Stats(); s.SlowSpans != 1 || s.SlowTxns != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestRingWrapAndMinFilter(t *testing.T) {
	tr := New(Config{Sample: 1, RingSize: 4})
	for i := 0; i < 10; i++ {
		tx := tr.StartTxn(uint64(i))
		tx.Finish("committed")
	}
	got := tr.Traces(0)
	if len(got) != 4 {
		t.Fatalf("ring size: got %d, want 4", len(got))
	}
	// Oldest-first: txns 6..9 survive.
	for i, d := range got {
		if d.TxnID != uint64(6+i) {
			t.Fatalf("ring order: %+v", got)
		}
	}
	if got := tr.Traces(time.Hour); len(got) != 0 {
		t.Fatalf("min filter: %+v", got)
	}
}

func TestSpanCapTruncates(t *testing.T) {
	tr := New(Config{Sample: 1})
	tx := tr.StartTxn(1)
	for i := 0; i < MaxSpans+50; i++ {
		tx.Event("e", "", "", time.Now(), 0, nil)
	}
	tx.Finish("committed")
	got := tr.Traces(0)
	if len(got) != 1 || !got[0].Truncated {
		t.Fatalf("capped trace not marked truncated: %+v", got)
	}
	if got[0].Spans != MaxSpans {
		t.Fatalf("span count = %d, want %d", got[0].Spans, MaxSpans)
	}
}

func TestFinishClosesHalfBuiltTree(t *testing.T) {
	// An aborted/crashed transaction abandons its open span stack;
	// Finish must close it without panicking and fix the durations.
	tr := New(Config{Sample: 1})
	tx := tr.StartTxn(5)
	tx.StartSpan("stmt", "", "update")
	tx.StartSpan("rel.update", "parts", "update")
	tx.StartSpan("sm.update", "heap", "update")
	time.Sleep(time.Millisecond)
	tx.Finish("aborted") // three spans still open

	got := tr.Traces(0)
	if len(got) != 1 {
		t.Fatalf("ring: %+v", got)
	}
	d := got[0].Root
	for depth := 0; len(d.Children) > 0; depth++ {
		d = d.Children[0]
		if d.DurNanos <= 0 {
			t.Fatalf("abandoned span %q has zero duration", d.Name)
		}
	}
	// Finish again must be a no-op.
	tx.Finish("aborted")
	if got := tr.Traces(0); len(got) != 1 {
		t.Fatalf("double finish duplicated trace: %d", len(got))
	}
	// Late span use after Finish must be inert, not a panic.
	if s := tx.StartSpan("late", "", ""); s != nil {
		t.Fatal("StartSpan after Finish must return nil")
	}
	tx.Event("late", "", "", time.Now(), 0, nil)
}

func TestEnterExitReentrantSpans(t *testing.T) {
	// Plan operator cursors interleave: a join's outer and inner scans
	// alternate Next calls. Operators hold detached spans and Enter/Exit
	// them around each call so nested events attribute correctly.
	tr := New(Config{Sample: 1})
	tx := tr.StartTxn(2)
	op1 := tx.OpenChild("op.scan", "parts", "scan")
	op2 := tx.OpenChild("op.scan", "suppliers", "scan")

	prev := tx.Enter(op1)
	tx.Event("buffer.miss", "", "", time.Now(), time.Microsecond, nil)
	tx.Exit(prev)

	prev = tx.Enter(op2)
	tx.Event("buffer.miss", "", "", time.Now(), time.Microsecond, nil)
	tx.Exit(prev)

	op1.EndAggregate(5*time.Millisecond, nil)
	op2.EndAggregate(7*time.Millisecond, nil)
	tx.Finish("committed")

	d := tr.Traces(0)[0].Root
	if len(d.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(d.Children))
	}
	for i, c := range d.Children {
		if len(c.Children) != 1 || c.Children[0].Name != "buffer.miss" {
			t.Fatalf("operator %d events: %+v", i, c.Children)
		}
	}
	if d.Children[0].DurNanos != 5e6 || d.Children[1].DurNanos != 7e6 {
		t.Fatalf("aggregate durations: %+v", d.Children)
	}
}

func TestRuntimeReconfig(t *testing.T) {
	tr := New(Config{})
	if tr.StartTxn(1) != nil {
		t.Fatal("must start disabled")
	}
	tr.SetSampleRate(1)
	if tx := tr.StartTxn(2); tx == nil || !tx.Detailed() {
		t.Fatal("SetSampleRate(1) must enable detailed tracing")
	} else {
		tx.Finish("committed")
	}
	tr.SetSampleRate(0)
	tr.SetSlowThreshold(time.Minute)
	if tx := tr.StartTxn(3); tx == nil || tx.Detailed() {
		t.Fatal("slow-only mode must yield undetailed root traces")
	} else {
		tx.Finish("committed")
	}
	if got := tr.SampleRate(); got != 0 {
		t.Fatalf("SampleRate = %v", got)
	}
	tr.SetSampleRate(0.01)
	if got := tr.SampleRate(); got != 0.01 {
		t.Fatalf("SampleRate = %v, want 0.01", got)
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() || tr.StartTxn(1) != nil || tr.Traces(0) != nil {
		t.Fatal("nil tracer must be inert")
	}
	tr.SetSampleRate(1)
	tr.SetSlowThreshold(time.Second)
	tr.SetSlowLog(nil)
	if tr.String() != "trace: off" {
		t.Fatalf("nil String: %q", tr.String())
	}
	_ = tr.Stats()
}

func TestConcurrentTxns(t *testing.T) {
	// Each trace is goroutine-confined but the tracer (sampling counter,
	// ring, slow log) is shared; run under -race.
	var slow bytes.Buffer
	tr := New(Config{Sample: 0.5, SlowThreshold: time.Nanosecond, SlowLog: &slow, RingSize: 64})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tx := tr.StartTxn(uint64(w*1000 + i))
				s := tx.StartSpan("stmt", "", "insert")
				tx.Event("wal.append", "", "append", time.Now(), time.Microsecond, nil)
				s.End(nil)
				tx.Finish("committed")
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Traces(0); len(got) != 64 {
		t.Fatalf("ring after concurrent load: %d, want 64 (full)", len(got))
	}
	for _, line := range strings.Split(strings.TrimSpace(slow.String()), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("interleaved slow-log line: %v (%q)", err, line)
		}
	}
}

func TestTraceDataJSONRoundTrip(t *testing.T) {
	tr := New(Config{Sample: 1})
	tx := tr.StartTxn(11)
	s := tx.StartSpan("stmt", "", "delete")
	s.End(errors.New("boom"))
	tx.Finish("commit_failed")
	raw, err := json.Marshal(tr.Traces(0))
	if err != nil {
		t.Fatal(err)
	}
	var back []TraceData
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Root.Children[0].Err != "boom" {
		t.Fatalf("round trip: %+v", back)
	}
}
