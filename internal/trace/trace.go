// Package trace is the engine's request-scoped span tracer.
//
// The extension architecture makes a single generic operation fan out
// through procedure vectors into storage-method calls, attached-procedure
// side effects, log appends, lock waits, and buffer faults. The aggregate
// counters in internal/obs answer "what is the mean heap-insert latency";
// this package answers "where did *this* transaction's 40ms go": a span
// tree is built per transaction, with a child span opened at every
// dispatch boundary the transaction crosses.
//
// The design constraints mirror obs: recording must be safe on hot paths
// and effectively free when disabled.
//
//   - A transaction's trace is goroutine-confined, exactly like the
//     transaction itself, so span push/pop needs no locks.
//   - Spans are recycled through a sync.Pool; a traced transaction
//     allocates only when its finished tree is materialised for the ring.
//   - Tracing is sampled (1-in-N transactions carry a detailed tree) and
//     always-on for slow transactions: every transaction gets a root span
//     when a slow threshold is set, so slow ones are caught even when the
//     sample missed them.
//   - A per-trace span cap bounds memory for huge transactions; truncated
//     traces say so instead of growing without bound.
//
// Completed traces land in a fixed-size ring buffer (served as JSON by
// the debug server's /traces endpoint) and any span exceeding the slow
// threshold emits a structured line to the slow-event log.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// MaxSpans caps the number of spans recorded per trace. A transaction
// that crosses more dispatch boundaries keeps executing untraced past
// the cap; the finished trace is marked truncated.
const MaxSpans = 512

// LockWaitFloor is the default duration below which a lock acquisition
// is considered uncontended and not worth a span (an uncontended grant is
// two mutex hops; a real wait involves the scheduler and is microseconds
// at minimum).
const LockWaitFloor = 10 * time.Microsecond

// Span is one timed region of a traced transaction: a statement, a
// dispatched storage-method or attachment call, a log force, a lock wait.
// Spans form a tree under the transaction's root span. A nil *Span is
// inert: every method is nil-receiver safe, so call sites need no
// "is tracing on" branches.
type Span struct {
	name  string
	ext   string // extension or resource tag (storage method, attachment, relation)
	op    string // generic-operation tag (insert, update, scan, commit, ...)
	note  string // free-form detail (statement text, veto reason)
	start time.Time
	dur   time.Duration
	err   string
	veto  bool

	children []*Span
	parent   *Span
	tr       *TxnTrace
}

var spanPool = sync.Pool{New: func() any { return new(Span) }}

func getSpan() *Span { return spanPool.Get().(*Span) }

// release returns s and its subtree to the pool.
func (s *Span) release() {
	for _, c := range s.children {
		c.release()
	}
	s.children = s.children[:0]
	*s = Span{children: s.children}
	spanPool.Put(s)
}

// SetNote attaches free-form detail to the span (e.g. statement text).
func (s *Span) SetNote(note string) {
	if s == nil {
		return
	}
	s.note = note
}

// MarkVeto tags the span as the attachment veto that rolled the
// modification back.
func (s *Span) MarkVeto() {
	if s == nil {
		return
	}
	s.veto = true
}

// End closes the span: its duration is fixed and the enclosing span
// becomes current again. err (may be nil) is recorded on the span.
func (s *Span) End(err error) {
	if s == nil {
		return
	}
	s.dur = time.Since(s.start)
	if err != nil {
		s.err = err.Error()
	}
	if s.tr != nil {
		if s.tr.cur == s {
			s.tr.cur = s.parent
		}
		s.tr.spanDone(s)
	}
}

// EndAggregate closes a span whose duration was accumulated externally
// (plan operators charge only the time spent inside their cursor, not
// the wall time the cursor stayed open).
func (s *Span) EndAggregate(d time.Duration, err error) {
	if s == nil {
		return
	}
	s.dur = d
	if err != nil {
		s.err = err.Error()
	}
	if s.tr != nil {
		if s.tr.cur == s {
			s.tr.cur = s.parent
		}
		s.tr.spanDone(s)
	}
}

// TxnTrace is one transaction's trace under construction. Like the
// transaction it belongs to, it is confined to one goroutine; none of its
// methods lock. A nil *TxnTrace is inert (the common case: tracing off or
// the transaction not sampled).
type TxnTrace struct {
	tracer   *Tracer
	txnID    uint64
	root     *Span
	cur      *Span
	nspans   int
	detailed bool // sampled: child spans are recorded
	finished bool
	trunc    bool
}

// Detailed reports whether child spans are being recorded, letting hot
// call sites skip even the pair of time.Now calls when they are not.
func (t *TxnTrace) Detailed() bool { return t != nil && t.detailed }

// StartSpan opens a child of the current span and makes it current.
// Returns nil (inert) when tracing is off, the transaction was not
// sampled, or the trace hit its span cap.
func (t *TxnTrace) StartSpan(name, ext, op string) *Span {
	if t == nil || !t.detailed || t.finished {
		return nil
	}
	if t.nspans >= MaxSpans {
		t.trunc = true
		return nil
	}
	t.nspans++
	s := getSpan()
	s.name, s.ext, s.op = name, ext, op
	s.start = time.Now()
	s.tr = t
	s.parent = t.cur
	t.cur.children = append(t.cur.children, s)
	t.cur = s
	return s
}

// OpenChild opens a child of the current span WITHOUT making it current.
// Plan operators use it: their cursors interleave, so they re-enter their
// span around each Next call (Enter/Exit) instead of holding the stack.
func (t *TxnTrace) OpenChild(name, ext, op string) *Span {
	s := t.StartSpan(name, ext, op)
	if s != nil {
		t.cur = s.parent
	}
	return s
}

// Enter makes s the current span and returns the previous current span,
// which the caller must restore with Exit. Used by re-entrant regions
// (plan operator cursors) so spans created during the region nest under s.
func (t *TxnTrace) Enter(s *Span) *Span {
	if t == nil || s == nil || t.finished {
		return nil
	}
	prev := t.cur
	t.cur = s
	return prev
}

// Exit restores the current span saved by Enter.
func (t *TxnTrace) Exit(prev *Span) {
	if t == nil || prev == nil || t.finished {
		return
	}
	t.cur = prev
}

// Event attaches an already-measured child span to the current span: the
// caller timed the region itself (lock waits, buffer faults, log appends)
// and reports start and duration retrospectively.
func (t *TxnTrace) Event(name, ext, op string, start time.Time, d time.Duration, err error) {
	if t == nil || !t.detailed || t.finished {
		return
	}
	if t.nspans >= MaxSpans {
		t.trunc = true
		return
	}
	t.nspans++
	s := getSpan()
	s.name, s.ext, s.op = name, ext, op
	s.start, s.dur = start, d
	if err != nil {
		s.err = err.Error()
	}
	s.tr = t
	s.parent = t.cur
	t.cur.children = append(t.cur.children, s)
	t.spanDone(s)
}

// spanDone runs slow-span detection for a closed span.
func (t *TxnTrace) spanDone(s *Span) {
	if t.tracer == nil {
		return
	}
	if th := t.tracer.slowThreshold(); th > 0 && s.dur >= th && s != t.root {
		t.tracer.slowEvent(t.txnID, s)
	}
}

// Finish closes the trace: every span still open (an aborted or crashed
// transaction leaves a half-built tree) is ended at "now", the tree is
// materialised and pushed to the tracer's ring, slow transactions are
// reported to the slow-event log, and the spans are recycled. Finish is
// idempotent and nil-safe; the TxnTrace must not be used afterwards.
func (t *TxnTrace) Finish(state string) {
	if t == nil || t.finished {
		return
	}
	t.finished = true
	// Close the open stack, innermost first. A span abandoned by a crash
	// or veto unwind gets its duration fixed here rather than staying 0.
	for s := t.cur; s != nil; s = s.parent {
		if s.dur == 0 && !s.start.IsZero() {
			s.dur = time.Since(s.start)
		}
	}
	t.cur = nil
	if t.tracer != nil {
		t.tracer.finish(t, state)
	}
	if t.root != nil {
		t.root.release()
		t.root = nil
	}
}

// SpanData is the materialised (JSON) form of a span.
type SpanData struct {
	Name     string     `json:"name"`
	Ext      string     `json:"ext,omitempty"`
	Op       string     `json:"op,omitempty"`
	Note     string     `json:"note,omitempty"`
	Start    time.Time  `json:"start"`
	Dur      string     `json:"dur"`
	DurNanos int64      `json:"dur_ns"`
	Err      string     `json:"err,omitempty"`
	Veto     bool       `json:"veto,omitempty"`
	Children []SpanData `json:"children,omitempty"`
}

// Depth returns the depth of the span tree rooted at d (a leaf is 1).
func (d SpanData) Depth() int {
	max := 0
	for _, c := range d.Children {
		if cd := c.Depth(); cd > max {
			max = cd
		}
	}
	return max + 1
}

// TraceData is one completed transaction trace as served by /traces.
type TraceData struct {
	TxnID     uint64   `json:"txn"`
	State     string   `json:"state"` // committed | aborted | commit_failed
	Slow      bool     `json:"slow,omitempty"`
	Sampled   bool     `json:"sampled"` // detailed spans recorded
	Truncated bool     `json:"truncated,omitempty"`
	Spans     int      `json:"spans"`
	Root      SpanData `json:"root"`
}

func materialise(s *Span) SpanData {
	d := SpanData{
		Name:     s.name,
		Ext:      s.ext,
		Op:       s.op,
		Note:     s.note,
		Start:    s.start,
		Dur:      s.dur.String(),
		DurNanos: s.dur.Nanoseconds(),
		Err:      s.err,
		Veto:     s.veto,
	}
	if len(s.children) > 0 {
		d.Children = make([]SpanData, len(s.children))
		for i, c := range s.children {
			d.Children[i] = materialise(c)
		}
	}
	return d
}

// Config assembles a Tracer. Sample and SlowThreshold may also be changed
// at runtime (the debug CLI's \trace verb does).
type Config struct {
	// Sample is the fraction of transactions that carry a detailed span
	// tree (0 disables detailed tracing, 1 traces every transaction).
	Sample float64
	// SlowThreshold makes tracing always-on at transaction granularity:
	// every transaction gets a root span, and any transaction (or span of
	// a sampled transaction) at least this slow is reported to the
	// slow-event log and kept in the ring. 0 disables slow detection.
	SlowThreshold time.Duration
	// RingSize is the completed-trace ring capacity (default 256).
	RingSize int
	// SlowLog receives one JSON line per slow event (nil: slow events are
	// counted and ring-kept but not written anywhere).
	SlowLog io.Writer
}

// Stats counts tracer activity.
type Stats struct {
	Started   int64 `json:"started"`   // transactions given a trace
	Sampled   int64 `json:"sampled"`   // transactions with detailed spans
	Completed int64 `json:"completed"` // traces pushed to the ring
	SlowSpans int64 `json:"slow_spans"`
	SlowTxns  int64 `json:"slow_txns"`
}

// Tracer owns sampling, the completed-trace ring, and the slow-event log.
// One Tracer serves one Env; all methods are safe for concurrent use and
// nil-receiver safe.
type Tracer struct {
	sampleEvery   atomic.Int64 // 0 = off, N = 1-in-N transactions detailed
	slowNanos     atomic.Int64
	sampleCounter atomic.Int64

	started   atomic.Int64
	sampled   atomic.Int64
	completed atomic.Int64
	slowSpans atomic.Int64
	slowTxns  atomic.Int64

	mu      sync.Mutex
	ring    []TraceData
	next    int
	full    bool
	slowLog io.Writer
}

// New returns a tracer over cfg.
func New(cfg Config) *Tracer {
	size := cfg.RingSize
	if size <= 0 {
		size = 256
	}
	tr := &Tracer{ring: make([]TraceData, size), slowLog: cfg.SlowLog}
	tr.SetSampleRate(cfg.Sample)
	tr.SetSlowThreshold(cfg.SlowThreshold)
	return tr
}

// SetSampleRate changes the detailed-tracing sample fraction at runtime.
func (tr *Tracer) SetSampleRate(f float64) {
	if tr == nil {
		return
	}
	switch {
	case f <= 0:
		tr.sampleEvery.Store(0)
	case f >= 1:
		tr.sampleEvery.Store(1)
	default:
		tr.sampleEvery.Store(int64(1/f + 0.5))
	}
}

// SampleRate returns the current sample fraction.
func (tr *Tracer) SampleRate() float64 {
	if tr == nil {
		return 0
	}
	n := tr.sampleEvery.Load()
	if n == 0 {
		return 0
	}
	return 1 / float64(n)
}

// SetSlowThreshold changes the slow-span threshold at runtime.
func (tr *Tracer) SetSlowThreshold(d time.Duration) {
	if tr == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	tr.slowNanos.Store(d.Nanoseconds())
}

func (tr *Tracer) slowThreshold() time.Duration {
	if tr == nil {
		return 0
	}
	return time.Duration(tr.slowNanos.Load())
}

// SlowThreshold returns the current slow-span threshold.
func (tr *Tracer) SlowThreshold() time.Duration { return tr.slowThreshold() }

// Enabled reports whether StartTxn would return a live trace.
func (tr *Tracer) Enabled() bool {
	return tr != nil && (tr.sampleEvery.Load() > 0 || tr.slowNanos.Load() > 0)
}

// StartTxn begins tracing a transaction. It returns nil — an inert trace —
// when tracing is entirely off. The trace is detailed (child spans are
// recorded) for 1-in-N transactions per the sample rate; otherwise only
// the root span exists, enough for always-on slow-transaction detection.
func (tr *Tracer) StartTxn(txnID uint64) *TxnTrace {
	if tr == nil {
		return nil
	}
	every := tr.sampleEvery.Load()
	slow := tr.slowNanos.Load() > 0
	detailed := every > 0 && tr.sampleCounter.Add(1)%every == 0
	if !detailed && !slow {
		return nil
	}
	tr.started.Add(1)
	if detailed {
		tr.sampled.Add(1)
	}
	root := getSpan()
	root.name, root.op = "txn", ""
	root.start = time.Now()
	t := &TxnTrace{tracer: tr, txnID: txnID, root: root, cur: root, nspans: 1, detailed: detailed}
	root.tr = t
	return t
}

// finish materialises a finished trace into the ring.
func (tr *Tracer) finish(t *TxnTrace, state string) {
	root := t.root
	root.dur = time.Since(root.start)
	root.err = ""
	th := tr.slowThreshold()
	isSlow := th > 0 && root.dur >= th
	if isSlow {
		tr.slowTxns.Add(1)
		tr.slowEventTxn(t, state, root)
	}
	// Undetailed traces are ring-worthy only when slow: an empty root span
	// for every fast transaction would just wash the ring out.
	if !t.detailed && !isSlow {
		return
	}
	data := TraceData{
		TxnID:     t.txnID,
		State:     state,
		Slow:      isSlow,
		Sampled:   t.detailed,
		Truncated: t.trunc,
		Spans:     t.nspans,
		Root:      materialise(root),
	}
	tr.completed.Add(1)
	tr.mu.Lock()
	tr.ring[tr.next] = data
	tr.next++
	if tr.next == len(tr.ring) {
		tr.next, tr.full = 0, true
	}
	tr.mu.Unlock()
}

// slowEvent reports one slow span (of a sampled transaction).
func (tr *Tracer) slowEvent(txnID uint64, s *Span) {
	tr.slowSpans.Add(1)
	tr.writeSlow(map[string]any{
		"ts":    time.Now().Format(time.RFC3339Nano),
		"kind":  "span",
		"txn":   txnID,
		"span":  s.name,
		"ext":   s.ext,
		"op":    s.op,
		"dur":   s.dur.String(),
		"ns":    s.dur.Nanoseconds(),
		"err":   s.err,
		"veto":  s.veto,
		"note":  s.note,
		"start": s.start.Format(time.RFC3339Nano),
	})
}

// slowEventTxn reports a slow transaction (always-on path).
func (tr *Tracer) slowEventTxn(t *TxnTrace, state string, root *Span) {
	tr.writeSlow(map[string]any{
		"ts":      time.Now().Format(time.RFC3339Nano),
		"kind":    "txn",
		"txn":     t.txnID,
		"state":   state,
		"dur":     root.dur.String(),
		"ns":      root.dur.Nanoseconds(),
		"spans":   t.nspans,
		"sampled": t.detailed,
	})
}

func (tr *Tracer) writeSlow(ev map[string]any) {
	tr.mu.Lock()
	w := tr.slowLog
	tr.mu.Unlock()
	if w == nil {
		return
	}
	line, err := json.Marshal(ev)
	if err != nil {
		return
	}
	line = append(line, '\n')
	tr.mu.Lock()
	w.Write(line)
	tr.mu.Unlock()
}

// SetSlowLog redirects the slow-event log at runtime.
func (tr *Tracer) SetSlowLog(w io.Writer) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.slowLog = w
	tr.mu.Unlock()
}

// Traces returns the ring's completed traces, oldest first, keeping only
// those whose root duration is at least min.
func (tr *Tracer) Traces(min time.Duration) []TraceData {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	var out []TraceData
	emit := func(d TraceData) {
		if d.State == "" {
			return
		}
		if min > 0 && d.Root.DurNanos < min.Nanoseconds() {
			return
		}
		out = append(out, d)
	}
	if tr.full {
		for i := tr.next; i < len(tr.ring); i++ {
			emit(tr.ring[i])
		}
	}
	for i := 0; i < tr.next; i++ {
		emit(tr.ring[i])
	}
	return out
}

// Stats returns cumulative tracer counters.
func (tr *Tracer) Stats() Stats {
	if tr == nil {
		return Stats{}
	}
	return Stats{
		Started:   tr.started.Load(),
		Sampled:   tr.sampled.Load(),
		Completed: tr.completed.Load(),
		SlowSpans: tr.slowSpans.Load(),
		SlowTxns:  tr.slowTxns.Load(),
	}
}

// String renders a one-line tracer summary.
func (tr *Tracer) String() string {
	if tr == nil {
		return "trace: off"
	}
	s := tr.Stats()
	return fmt.Sprintf("trace: sample=%.4g slow>%s started=%d sampled=%d completed=%d slow_spans=%d slow_txns=%d",
		tr.SampleRate(), tr.SlowThreshold(), s.Started, s.Sampled, s.Completed, s.SlowSpans, s.SlowTxns)
}
