package wal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCheckpointTruncatesAndBoundsRedo(t *testing.T) {
	l := New()
	mustAppend(t, l, 1, RecUpdate, "pre")
	mustAppend(t, l, 1, RecCommit, "")
	mustAppend(t, l, 1, RecEnd, "")

	err := l.Checkpoint(nil, 0, func(emit func(Owner, []byte) error) error {
		return emit(Owner{Class: OwnerStorage, ExtID: 2, RelID: 7}, []byte("snap"))
	})
	if err != nil {
		t.Fatal(err)
	}
	ckptLSN := l.CheckpointLSN()
	if ckptLSN == 0 {
		t.Fatal("no complete checkpoint recorded")
	}

	// The head is truncated: pre-checkpoint records are gone and At
	// translates LSNs through the new base instead of assuming LSN==index+1.
	if l.Base() != ckptLSN-1 {
		t.Fatalf("Base = %d, want %d", l.Base(), ckptLSN-1)
	}
	if _, ok := l.At(1); ok {
		t.Fatal("pre-checkpoint LSN still resolvable after truncation")
	}
	if rec, ok := l.At(ckptLSN); !ok || rec.Kind != RecCheckpoint {
		t.Fatalf("At(ckptLSN) = %+v, %v", rec, ok)
	}

	mustAppend(t, l, 2, RecUpdate, "post")
	mustAppend(t, l, 2, RecCommit, "")
	mustAppend(t, l, 2, RecEnd, "")

	d := &recordingDispatcher{}
	if err := l.Recover(d, d); err != nil {
		t.Fatal(err)
	}
	// Redo covers exactly the snapshot and post-checkpoint history; the
	// pre-checkpoint update is superseded by the snapshot.
	if len(d.redos) != 2 || !strings.HasSuffix(d.redos[0], ":snap") || d.redos[1] != "t2:post" {
		t.Fatalf("redos = %v", d.redos)
	}
	if len(d.undos) != 0 {
		t.Fatalf("undos = %v", d.undos)
	}
}

func TestCheckpointPersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, 1, RecUpdate, "pre")
	mustAppend(t, l, 1, RecCommit, "")
	mustAppend(t, l, 1, RecEnd, "")
	if err := l.Checkpoint(nil, 0, func(emit func(Owner, []byte) error) error {
		return emit(Owner{Class: OwnerStorage, ExtID: 2, RelID: 7}, []byte("snap"))
	}); err != nil {
		t.Fatal(err)
	}
	ckptLSN := l.CheckpointLSN()
	l.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	// Only the checkpoint chain survives on disk, with LSNs preserved.
	if l2.Len() != 3 || l2.Base() != ckptLSN-1 {
		t.Fatalf("Len = %d, Base = %d, ckptLSN = %d", l2.Len(), l2.Base(), ckptLSN)
	}
	if l2.CheckpointLSN() != ckptLSN {
		t.Fatalf("CheckpointLSN = %d, want %d", l2.CheckpointLSN(), ckptLSN)
	}
	// The reopened log continues the LSN sequence and recovers from the
	// snapshot alone.
	lsn := mustAppend(t, l2, 2, RecUpdate, "post")
	if lsn != ckptLSN+3 {
		t.Fatalf("next LSN = %d, want %d", lsn, ckptLSN+3)
	}
	d := &recordingDispatcher{}
	if err := l2.Recover(d, d); err != nil {
		t.Fatal(err)
	}
	if len(d.redos) != 2 || !strings.HasSuffix(d.redos[0], ":snap") || d.redos[1] != "t2:post" {
		t.Fatalf("redos = %v", d.redos)
	}
}

func TestIncompleteCheckpointIgnored(t *testing.T) {
	l := New()
	mustAppend(t, l, 1, RecUpdate, "pre")
	mustAppend(t, l, 1, RecCommit, "")
	mustAppend(t, l, 1, RecEnd, "")
	// A checkpoint that crashed before its END: the chain is open.
	if _, err := l.Append(CheckpointTxn, RecCheckpoint, Owner{}, EncodeATT(nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(CheckpointTxn, RecUpdate, Owner{Class: OwnerStorage, ExtID: 2, RelID: 7}, []byte("snap")); err != nil {
		t.Fatal(err)
	}
	if l.CheckpointLSN() != 0 {
		t.Fatalf("incomplete checkpoint reported complete at %d", l.CheckpointLSN())
	}
	d := &recordingDispatcher{}
	if err := l.Recover(d, d); err != nil {
		t.Fatal(err)
	}
	// Everything redoes (the snapshot records are harmless re-placements)
	// and the open checkpoint chain is closed without undo.
	if len(d.redos) != 2 || d.redos[0] != "t1:pre" || !strings.HasSuffix(d.redos[1], ":snap") {
		t.Fatalf("redos = %v", d.redos)
	}
	if len(d.undos) != 0 {
		t.Fatalf("undos = %v", d.undos)
	}
	if n := len(l.ActiveTxns()); n != 0 {
		t.Fatalf("active txns after recovery = %d", n)
	}
}

func TestMidFrameCutTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, 1, RecUpdate, "first")
	mustAppend(t, l, 1, RecUpdate, "second")
	l.Close()

	// Cut the file mid-way through the second frame (a crash tore the
	// final write a few bytes short).
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Len() != 1 {
		t.Fatalf("cut frame should be dropped; Len = %d", l2.Len())
	}
	if _, err := l2.Append(1, RecUpdate, Owner{}, []byte("again")); err != nil {
		t.Fatal(err)
	}
}

func TestRollbackCrashResumesViaUndoNext(t *testing.T) {
	l := New()
	mustAppend(t, l, 1, RecUpdate, "a")
	mustAppend(t, l, 1, RecUpdate, "b")
	mustAppend(t, l, 1, RecUpdate, "c")

	// First rollback attempt dies after undoing "c" (its CLR is in the
	// log) while trying to undo "b".
	d1 := &recordingDispatcher{failOn: "b"}
	if err := l.Rollback(1, 0, d1); err == nil {
		t.Fatal("rollback should surface the undo failure")
	}
	if len(d1.undos) != 1 || d1.undos[0] != "t1:c" {
		t.Fatalf("first attempt undos = %v", d1.undos)
	}

	// Restart recovery resumes the rollback from the CLR's UndoNext
	// pointer: "c" is never undone a second time.
	d2 := &recordingDispatcher{}
	if err := l.Recover(d2, d2); err != nil {
		t.Fatal(err)
	}
	if len(d2.undos) != 2 || d2.undos[0] != "t1:b" || d2.undos[1] != "t1:a" {
		t.Fatalf("recovery undos = %v", d2.undos)
	}
	if n := len(l.ActiveTxns()); n != 0 {
		t.Fatalf("active txns after recovery = %d", n)
	}
}
