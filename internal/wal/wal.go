// Package wal implements the common recovery log of the data management
// extension architecture.
//
// All storage method and attachment extensions log their modifications
// here. The same log-based driver serves four duties the paper assigns to
// the common recovery facility: undoing the partial effects of a vetoed
// relation modification, partial transaction rollback to a savepoint,
// transaction abort, and system-restart recovery. The log does not
// interpret extension payloads; it dispatches undo and redo back to the
// owning extension, identified by an Owner tag on each update record.
//
// Durability: appended records are buffered in memory and reach the
// backing file only on Sync (or Close). A transaction is durable once the
// Sync after its COMMIT record returns — that is the commit-durability
// contract internal/txn relies on. Checkpoints bound restart work: a
// completed checkpoint embeds a replayable snapshot of the engine state
// in the log, after which the log head before the checkpoint record is
// truncated and recovery redoes only records past it.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"dmx/internal/fault"
	"dmx/internal/obs"
)

// LSN is a log sequence number. LSN 0 is "nil" (before every record).
// LSNs are stable across head truncation: record i of the in-memory
// window has LSN base+i+1.
type LSN uint64

// TxnID identifies a transaction in log records.
type TxnID uint64

// CheckpointTxn is the reserved transaction ID under which checkpoint
// snapshot records are logged. The transaction manager never allocates
// it, and recovery never rolls it back.
const CheckpointTxn = ^TxnID(0)

// RecKind classifies log records.
type RecKind uint8

// Log record kinds.
const (
	RecUpdate       RecKind = iota // extension modification; Payload is extension-owned
	RecCompensation                // CLR written while undoing an update
	RecCommit
	RecAbort
	RecSavepoint  // marks a partial-rollback point
	RecEnd        // transaction fully finished (after commit/abort processing)
	RecCheckpoint // checkpoint begin; Payload is the active-transaction table
)

// String returns the record kind name.
func (k RecKind) String() string {
	switch k {
	case RecUpdate:
		return "UPDATE"
	case RecCompensation:
		return "CLR"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecSavepoint:
		return "SAVEPOINT"
	case RecEnd:
		return "END"
	case RecCheckpoint:
		return "CHECKPOINT"
	default:
		return fmt.Sprintf("RecKind(%d)", uint8(k))
	}
}

// OwnerClass says which kind of extension owns an update record.
type OwnerClass uint8

// Owner classes.
const (
	OwnerSystem     OwnerClass = iota // catalog and other common-system updates
	OwnerStorage                      // a relation storage method
	OwnerAttachment                   // an attachment type
)

// Owner identifies the extension responsible for undoing/redoing a log
// record: the extension class, the small-integer extension ID used to index
// the procedure vectors, and the relation the modification applied to.
type Owner struct {
	Class OwnerClass
	ExtID uint8
	RelID uint32
}

// Record is one log record.
type Record struct {
	LSN      LSN
	Txn      TxnID
	PrevLSN  LSN // previous record of the same transaction (undo chain)
	UndoNext LSN // CLRs: next LSN of this txn still to be undone
	Kind     RecKind
	Owner    Owner
	Payload  []byte
}

// Undoer receives undo dispatches during rollback. Implementations route
// the call to the owning extension's undo entry point.
type Undoer interface {
	Undo(txn TxnID, owner Owner, payload []byte) error
}

// Redoer receives redo dispatches during restart recovery. compensation is
// true for CLRs, whose redo applies the *inverse* of the logged
// modification (history is repeated, including the undo work).
type Redoer interface {
	Redo(txn TxnID, owner Owner, payload []byte, compensation bool) error
}

// ATTEntry is one active-transaction-table entry in a checkpoint record.
type ATTEntry struct {
	Txn     TxnID
	LastLSN LSN
}

// Log is the common write-ahead log. It keeps the records since the last
// checkpoint in memory and optionally mirrors them to a file for restart
// recovery. A Log is safe for concurrent use.
type Log struct {
	mu        sync.Mutex
	base      LSN // LSN of records[0] minus one (head truncation offset)
	records   []Record
	lastLSN   map[TxnID]LSN
	path      string // backing file path (checkpoint truncation rewrites it)
	file      *os.File
	pending   []byte // encoded frames appended but not yet flushed
	goodEnd   int64  // verified durable length of the backing file
	sinceCkpt int    // records appended since the last completed checkpoint
	obs       *obs.WALStats
	faults    *fault.Injector

	// Group commit. durable is the highest LSN known to be on stable
	// storage; syncing marks an in-flight leader fsync round; synced is
	// broadcast when durable advances or the round ends. window is the
	// optional batching delay a leader waits before its fsync so more
	// concurrent committers can join the round.
	durable LSN
	syncing bool
	synced  *sync.Cond
	window  time.Duration
}

// New returns an in-memory log (no persistence).
func New() *Log {
	l := &Log{lastLSN: make(map[TxnID]LSN), obs: &obs.WALStats{}}
	l.synced = sync.NewCond(&l.mu)
	return l
}

// SetObs points the log's instrumentation at a shared metric registry.
func (l *Log) SetObs(ws *obs.WALStats) {
	if ws == nil {
		return
	}
	l.mu.Lock()
	l.obs = ws
	l.mu.Unlock()
}

// SetFaults arms the log's crash sites with a fault injector (testing).
func (l *Log) SetFaults(in *fault.Injector) {
	l.mu.Lock()
	l.faults = in
	l.mu.Unlock()
}

// Open returns a log mirrored to the file at path, first loading any
// records already present (e.g. after a crash). Corrupt trailing frames —
// a torn final write — are truncated away. On any error the partially
// loaded state is discarded and the file handle closed.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	records, lastLSN, validEnd, err := load(f)
	if err == nil && validEnd >= 0 {
		if terr := f.Truncate(validEnd); terr != nil {
			err = fmt.Errorf("wal: truncate torn tail: %w", terr)
		} else if _, serr := f.Seek(0, io.SeekEnd); serr != nil {
			err = fmt.Errorf("wal: seek: %w", serr)
		}
	}
	if err != nil {
		// Do not hand back half-loaded state: the caller sees either a
		// fully opened log or nothing.
		f.Close()
		return nil, err
	}
	l := New()
	l.records, l.lastLSN, l.file, l.goodEnd = records, lastLSN, f, validEnd
	l.path = path
	if len(records) > 0 {
		l.base = records[0].LSN - 1
		// Everything loaded survived the crash on stable storage.
		l.durable = records[len(records)-1].LSN
	}
	return l, nil
}

// SetGroupCommitWindow sets the batching delay a group-commit leader waits
// before forcing the log, so commits arriving within the window share one
// fsync. Zero (the default) still batches naturally: committers that
// arrive while a round's fsync is in flight are absorbed by the next
// round. Call at assembly, before traffic.
func (l *Log) SetGroupCommitWindow(d time.Duration) {
	l.mu.Lock()
	l.window = d
	l.mu.Unlock()
}

// Close flushes buffered records to stable storage and releases the
// backing file, if any.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.file == nil {
		return nil
	}
	err := l.flushLocked()
	if err == nil {
		err = l.file.Sync()
	}
	if cerr := l.file.Close(); err == nil {
		err = cerr
	}
	l.file = nil
	return err
}

// Append writes a record for txn owned by owner and returns its LSN.
// Payload is copied. The record is buffered: it reaches stable storage at
// the next Sync.
func (l *Log) Append(txn TxnID, kind RecKind, owner Owner, payload []byte) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(txn, kind, owner, payload, 0)
}

// AppendCLR writes a compensation record whose UndoNext points at the next
// record of the transaction still requiring undo.
func (l *Log) AppendCLR(txn TxnID, owner Owner, payload []byte, undoNext LSN) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(txn, RecCompensation, owner, payload, undoNext)
}

func (l *Log) appendLocked(txn TxnID, kind RecKind, owner Owner, payload []byte, undoNext LSN) (LSN, error) {
	if err := l.faults.Hit(fault.SiteWALAppend); err != nil {
		return 0, err
	}
	rec := Record{
		LSN:      l.base + LSN(len(l.records)) + 1,
		Txn:      txn,
		PrevLSN:  l.lastLSN[txn],
		UndoNext: undoNext,
		Kind:     kind,
		Owner:    owner,
		Payload:  append([]byte(nil), payload...),
	}
	if l.file != nil {
		l.pending = appendFrame(l.pending, rec)
	}
	l.records = append(l.records, rec)
	if kind == RecEnd {
		delete(l.lastLSN, txn)
	} else {
		l.lastLSN[txn] = rec.LSN
	}
	l.sinceCkpt++
	l.obs.Appends.Inc()
	l.obs.AppendBytes.Add(int64(len(rec.Payload)))
	return rec.LSN, nil
}

// flushLocked writes buffered frames to the file. A short write from the
// file system truncates the file back to the last fully durable frame so
// memory and disk never diverge silently; the buffered frames are kept
// and the next flush retries them. An injected torn write leaves the tear
// on disk (the simulated machine is off).
func (l *Log) flushLocked() error {
	if l.file == nil || len(l.pending) == 0 {
		return nil
	}
	allow, ferr := l.faults.BeforeWrite(fault.SiteWALFlush, len(l.pending))
	if ferr != nil {
		if allow > 0 {
			l.file.Write(l.pending[:allow])
		}
		return ferr
	}
	if _, err := l.file.Write(l.pending); err != nil {
		// A partial frame may be on disk. Cut back to the last good
		// frame; the in-memory copy still holds every record and the
		// pending buffer is retained for retry.
		if terr := l.file.Truncate(l.goodEnd); terr == nil {
			l.file.Seek(0, io.SeekEnd)
		}
		return fmt.Errorf("wal: write frames: %w", err)
	}
	l.goodEnd += int64(len(l.pending))
	l.pending = l.pending[:0]
	return nil
}

// Sync flushes buffered records and forces them to stable storage. A
// transaction's effects are durable once the Sync after its COMMIT record
// returns nil.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	// Everything appended so far is covered by this force.
	target := l.base + LSN(len(l.records))
	if l.file != nil {
		if err := l.flushLocked(); err != nil {
			return err
		}
		l.obs.Syncs.Inc()
		if err := l.file.Sync(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
	}
	// The post-fsync crash site models losing the process after the
	// records are durable but before anyone learns of it.
	if err := l.faults.Hit(fault.SiteWALSynced); err != nil {
		return err
	}
	if target > l.durable {
		l.durable = target
		l.synced.Broadcast()
	}
	return nil
}

// Durable returns the highest LSN known to be on stable storage.
func (l *Log) Durable() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// SyncCommitted makes the commit record at lsn durable using group
// commit: the first committer to arrive becomes the round leader,
// optionally waits the batching window, and forces the log once for every
// commit appended so far; committers arriving during the round wait on it
// (or on the next) instead of issuing their own fsync. Returns nil once
// lsn is on stable storage.
func (l *Log) SyncCommitted(lsn LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.durable < lsn {
		if l.syncing {
			// Follower: a leader's round is in flight. Wait for it; if it
			// did not cover lsn (we appended after its cut) or it failed,
			// loop and lead the next round ourselves.
			l.synced.Wait()
			continue
		}
		l.syncing = true
		if w := l.window; w > 0 {
			// Batching window: let concurrent committers append their
			// records before the cut. The lock is dropped so they can.
			l.mu.Unlock()
			time.Sleep(w)
			l.mu.Lock()
		}
		err := l.syncLocked()
		l.syncing = false
		// Wake followers even on failure so they retry as leaders and
		// observe their own errors rather than waiting forever.
		l.synced.Broadcast()
		if err != nil {
			return err
		}
		l.obs.GroupBatches.Inc()
	}
	l.obs.GroupCommits.Inc()
	return nil
}

// ForceTo forces the log through lsn without group-commit batching. The
// buffer pool calls it to honour the write-ahead rule before a dirty page
// leaves the pool; it returns immediately when lsn is already durable.
func (l *Log) ForceTo(lsn LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.durable < lsn {
		if l.syncing {
			l.synced.Wait()
			continue
		}
		l.obs.ForcedSyncs.Inc()
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
	return nil
}

// LastLSN returns the most recent LSN written for txn (0 if none).
func (l *Log) LastLSN(txn TxnID) LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastLSN[txn]
}

// Len returns the number of records in the in-memory window.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Base returns the truncation offset: the highest LSN dropped from the
// head (0 when the log is complete from LSN 1).
func (l *Log) Base() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// AppendsSinceCheckpoint returns the number of records appended since the
// last completed checkpoint (or since open).
func (l *Log) AppendsSinceCheckpoint() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinceCkpt
}

// At returns the record with the given LSN. Records before the truncated
// head are gone and report false.
func (l *Log) At(lsn LSN) (Record, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.atLocked(lsn)
}

func (l *Log) atLocked(lsn LSN) (Record, bool) {
	if lsn <= l.base || int(lsn-l.base) > len(l.records) {
		return Record{}, false
	}
	return l.records[lsn-l.base-1], true
}

// Records returns a snapshot copy of the in-memory window, in LSN order.
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Record(nil), l.records...)
}

// Rollback undoes txn's update records back to (but not including) toLSN,
// dispatching each undo to d and writing a CLR per undone record. With
// toLSN 0 it rolls back the whole transaction. CLRs already in the chain
// are skipped via their UndoNext pointers, so a rollback that itself
// crashed mid-way is never undone twice.
//
// The undo chain is collected under a single lock acquisition, so
// concurrent appenders (other transactions) cannot interleave with the
// chain walk. Only the owning goroutine appends records for txn, which
// keeps the snapshot exact.
func (l *Log) Rollback(txn TxnID, toLSN LSN, d Undoer) error {
	l.obs.Rollbacks.Inc()
	l.mu.Lock()
	var chain []Record
	cur := l.lastLSN[txn]
	for cur > toLSN {
		rec, ok := l.atLocked(cur)
		if !ok {
			l.mu.Unlock()
			return fmt.Errorf("wal: broken undo chain: txn %d lsn %d", txn, cur)
		}
		if rec.Txn != txn {
			l.mu.Unlock()
			return fmt.Errorf("wal: undo chain crossed transactions at lsn %d", cur)
		}
		switch rec.Kind {
		case RecCompensation:
			cur = rec.UndoNext
		case RecUpdate:
			chain = append(chain, rec)
			cur = rec.PrevLSN
		default: // savepoints, commit markers: nothing to undo
			cur = rec.PrevLSN
		}
	}
	l.mu.Unlock()
	for _, rec := range chain {
		if err := d.Undo(txn, rec.Owner, rec.Payload); err != nil {
			return fmt.Errorf("wal: undo dispatch lsn %d: %w", rec.LSN, err)
		}
		if _, err := l.AppendCLR(txn, rec.Owner, rec.Payload, rec.PrevLSN); err != nil {
			return err
		}
	}
	return nil
}

// ActiveTxns returns the transactions with log records but no END record —
// the "loser" set at restart.
func (l *Log) ActiveTxns() []TxnID {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]TxnID, 0, len(l.lastLSN))
	for t := range l.lastLSN {
		out = append(out, t)
	}
	return out
}

// Checkpoint writes a checkpoint: a RecCheckpoint record carrying the
// active-transaction table, the snapshot records the snap callback emits
// (logged under CheckpointTxn), and the closing END record; the whole
// chain is then forced to stable storage and the log head before the
// checkpoint record is truncated, in memory and in the backing file.
//
// The caller must quiesce writers first (the engine holds every
// relation's S lock across the callback), so the snapshot is the only
// update activity between the checkpoint record and its END.
// The checkpoint record also carries the commit-stamp high-water
// (stampHW) as a trailing field, so restart recovery can re-seed the
// stamp sequence even after the commit records below the checkpoint have
// been truncated away.
func (l *Log) Checkpoint(att []TxnID, stampHW uint64, snap func(emit func(owner Owner, payload []byte) error) error) error {
	l.mu.Lock()
	entries := make([]ATTEntry, 0, len(att))
	for _, t := range att {
		entries = append(entries, ATTEntry{Txn: t, LastLSN: l.lastLSN[t]})
	}
	payload := binary.BigEndian.AppendUint64(EncodeATT(entries), stampHW)
	ckptLSN, err := l.appendLocked(CheckpointTxn, RecCheckpoint, Owner{}, payload, 0)
	l.mu.Unlock()
	if err != nil {
		return err
	}
	if snap != nil {
		emit := func(owner Owner, payload []byte) error {
			_, err := l.Append(CheckpointTxn, RecUpdate, owner, payload)
			return err
		}
		if err := snap(emit); err != nil {
			return fmt.Errorf("wal: checkpoint snapshot: %w", err)
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.appendLocked(CheckpointTxn, RecEnd, Owner{}, nil, 0); err != nil {
		return err
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	// The checkpoint is complete and durable; drop the head. Crashing
	// anywhere before this point leaves an incomplete checkpoint that
	// recovery ignores in favour of the previous one.
	l.truncateHeadLocked(ckptLSN)
	l.sinceCkpt = 0
	l.obs.Checkpoints.Inc()
	return nil
}

// truncateHeadLocked drops every record with LSN < keep from memory and
// rewrites the backing file to match. A failure rewriting the file is
// benign — the full log simply remains on disk and recovery still starts
// at the checkpoint — so it is not reported.
func (l *Log) truncateHeadLocked(keep LSN) {
	idx := int(keep - l.base - 1)
	if idx <= 0 {
		return
	}
	if idx > len(l.records) {
		idx = len(l.records)
	}
	l.records = append([]Record(nil), l.records[idx:]...)
	l.base = keep - 1
	if l.file == nil {
		return
	}
	// Note: l.path, not l.file.Name() — after the first swap the handle's
	// recorded name is the temporary one.
	path := l.path
	tmp, err := os.OpenFile(path+".ckpt", os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return
	}
	var buf []byte
	for _, rec := range l.records {
		buf = appendFrame(buf, rec)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(path + ".ckpt")
		return
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(path + ".ckpt")
		return
	}
	if err := os.Rename(path+".ckpt", path); err != nil {
		tmp.Close()
		os.Remove(path + ".ckpt")
		return
	}
	l.file.Close()
	l.file = tmp
	l.goodEnd = int64(len(buf))
	if _, err := l.file.Seek(0, io.SeekEnd); err != nil {
		// Leave the handle; subsequent writes will surface the problem.
		return
	}
}

// lastCompleteCheckpoint returns the LSN of the newest RecCheckpoint that
// is followed by its closing END record (0 if none).
func lastCompleteCheckpoint(recs []Record) LSN {
	var done, open LSN
	for _, rec := range recs {
		switch {
		case rec.Kind == RecCheckpoint:
			open = rec.LSN
		case rec.Kind == RecEnd && rec.Txn == CheckpointTxn && open != 0:
			done, open = open, 0
		}
	}
	return done
}

// CheckpointLSN returns the LSN of the last complete checkpoint in the
// log (0 if none).
func (l *Log) CheckpointLSN() LSN {
	return lastCompleteCheckpoint(l.Records())
}

// Recover performs restart recovery: redo every update and compensation
// record past the last complete checkpoint in LSN order (repeating
// history — the checkpoint snapshot replays first, being the oldest
// surviving records), then roll back every transaction that has no COMMIT
// record, writing abort/end markers, and force the markers to stable
// storage so a crash during recovery never repeats completed rollbacks.
// Committed-but-unended transactions are simply marked ended. The
// snapshot records of an incomplete checkpoint replay harmlessly (they
// re-place values the surrounding records already produced) and its open
// CheckpointTxn chain is closed without undo.
func (l *Log) Recover(r Redoer, u Undoer) error {
	recs := l.Records()
	ckptLSN := lastCompleteCheckpoint(recs)
	committed := map[TxnID]bool{}
	for _, rec := range recs {
		if rec.Kind == RecCommit {
			committed[rec.Txn] = true
		}
	}
	for _, rec := range recs {
		if rec.Kind != RecUpdate && rec.Kind != RecCompensation {
			continue
		}
		if rec.LSN <= ckptLSN {
			// Before the checkpoint: superseded by the snapshot.
			continue
		}
		l.obs.RedoRecords.Inc()
		if err := r.Redo(rec.Txn, rec.Owner, rec.Payload, rec.Kind == RecCompensation); err != nil {
			return fmt.Errorf("wal: redo lsn %d: %w", rec.LSN, err)
		}
	}
	for _, txn := range l.ActiveTxns() {
		if txn == CheckpointTxn || committed[txn] {
			// An incomplete checkpoint's snapshot chain is closed, not
			// undone: its records are re-placements of committed state.
			if _, err := l.Append(txn, RecEnd, Owner{}, nil); err != nil {
				return err
			}
			continue
		}
		if err := l.Rollback(txn, 0, u); err != nil {
			return err
		}
		if _, err := l.Append(txn, RecAbort, Owner{}, nil); err != nil {
			return err
		}
		if _, err := l.Append(txn, RecEnd, Owner{}, nil); err != nil {
			return err
		}
	}
	// The abort/end markers must be durable: losing them would repeat the
	// loser rollbacks (harmless) but could resurrect a rolled-back chain
	// after a later checkpoint truncated the evidence.
	return l.Sync()
}

// EncodeATT serialises an active-transaction table.
func EncodeATT(entries []ATTEntry) []byte {
	out := binary.BigEndian.AppendUint32(nil, uint32(len(entries)))
	for _, e := range entries {
		out = binary.BigEndian.AppendUint64(out, uint64(e.Txn))
		out = binary.BigEndian.AppendUint64(out, uint64(e.LastLSN))
	}
	return out
}

// DecodeATT reverses EncodeATT.
func DecodeATT(b []byte) ([]ATTEntry, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("wal: short ATT payload")
	}
	n := int(binary.BigEndian.Uint32(b))
	if len(b) < 4+16*n {
		return nil, fmt.Errorf("wal: truncated ATT payload")
	}
	out := make([]ATTEntry, 0, n)
	for i := 0; i < n; i++ {
		off := 4 + 16*i
		out = append(out, ATTEntry{
			Txn:     TxnID(binary.BigEndian.Uint64(b[off:])),
			LastLSN: LSN(binary.BigEndian.Uint64(b[off+8:])),
		})
	}
	return out, nil
}

// EncodeCommitStamp serialises a commit stamp for a RecCommit payload.
func EncodeCommitStamp(stamp uint64) []byte {
	return binary.BigEndian.AppendUint64(nil, stamp)
}

// DecodeCommitStamp reads the stamp from a RecCommit payload; commit
// records written before stamp tracking carry no payload and yield 0.
func DecodeCommitStamp(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// DecodeCheckpointStamp reads the commit-stamp high-water trailing a
// RecCheckpoint payload (0 for records written before stamp tracking, or
// whose ATT is malformed).
func DecodeCheckpointStamp(b []byte) uint64 {
	if len(b) < 4 {
		return 0
	}
	n := int(binary.BigEndian.Uint32(b))
	off := 4 + 16*n
	if off < 0 || len(b) < off+8 {
		return 0
	}
	return binary.BigEndian.Uint64(b[off:])
}

// frame format: len(u32) | crc(u32) | body; body is the encoded record.

func appendFrame(dst []byte, rec Record) []byte {
	body := encodeRecord(rec)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(body)))
	dst = binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(body))
	return append(dst, body...)
}

// load parses the frames in f. It returns the records, the rebuilt
// per-transaction chain heads, and the file offset after the last valid
// frame (torn or corrupt tails end the parse). The first record's LSN
// sets the truncation base; a gap in the LSN sequence is treated as a
// corrupt tail.
func load(f *os.File) (records []Record, lastLSN map[TxnID]LSN, validEnd int64, err error) {
	lastLSN = make(map[TxnID]LSN)
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("wal: read: %w", err)
	}
	pos := 0
	for {
		if pos+8 > len(data) {
			break
		}
		n := int(binary.BigEndian.Uint32(data[pos:]))
		sum := binary.BigEndian.Uint32(data[pos+4:])
		if pos+8+n > len(data) {
			break // torn tail
		}
		body := data[pos+8 : pos+8+n]
		if crc32.ChecksumIEEE(body) != sum {
			break // corrupt tail
		}
		rec, derr := decodeRecord(body)
		if derr != nil {
			break
		}
		if len(records) > 0 && rec.LSN != records[len(records)-1].LSN+1 {
			break // LSN gap: treat as corrupt tail
		}
		records = append(records, rec)
		if rec.Kind == RecEnd {
			delete(lastLSN, rec.Txn)
		} else {
			lastLSN[rec.Txn] = rec.LSN
		}
		pos += 8 + n
	}
	return records, lastLSN, int64(pos), nil
}

func encodeRecord(rec Record) []byte {
	out := make([]byte, 0, 40+len(rec.Payload))
	out = binary.BigEndian.AppendUint64(out, uint64(rec.LSN))
	out = binary.BigEndian.AppendUint64(out, uint64(rec.Txn))
	out = binary.BigEndian.AppendUint64(out, uint64(rec.PrevLSN))
	out = binary.BigEndian.AppendUint64(out, uint64(rec.UndoNext))
	out = append(out, byte(rec.Kind), byte(rec.Owner.Class), rec.Owner.ExtID)
	out = binary.BigEndian.AppendUint32(out, rec.Owner.RelID)
	out = append(out, rec.Payload...)
	return out
}

func decodeRecord(b []byte) (Record, error) {
	if len(b) < 39 {
		return Record{}, fmt.Errorf("wal: short record body (%d bytes)", len(b))
	}
	rec := Record{
		LSN:      LSN(binary.BigEndian.Uint64(b[0:])),
		Txn:      TxnID(binary.BigEndian.Uint64(b[8:])),
		PrevLSN:  LSN(binary.BigEndian.Uint64(b[16:])),
		UndoNext: LSN(binary.BigEndian.Uint64(b[24:])),
		Kind:     RecKind(b[32]),
		Owner:    Owner{Class: OwnerClass(b[33]), ExtID: b[34], RelID: binary.BigEndian.Uint32(b[35:])},
	}
	rec.Payload = append([]byte(nil), b[39:]...)
	return rec, nil
}
