// Package wal implements the common recovery log of the data management
// extension architecture.
//
// All storage method and attachment extensions log their modifications
// here. The same log-based driver serves four duties the paper assigns to
// the common recovery facility: undoing the partial effects of a vetoed
// relation modification, partial transaction rollback to a savepoint,
// transaction abort, and system-restart recovery. The log does not
// interpret extension payloads; it dispatches undo and redo back to the
// owning extension, identified by an Owner tag on each update record.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"dmx/internal/obs"
)

// LSN is a log sequence number. LSN 0 is "nil" (before every record).
type LSN uint64

// TxnID identifies a transaction in log records.
type TxnID uint64

// RecKind classifies log records.
type RecKind uint8

// Log record kinds.
const (
	RecUpdate       RecKind = iota // extension modification; Payload is extension-owned
	RecCompensation                // CLR written while undoing an update
	RecCommit
	RecAbort
	RecSavepoint // marks a partial-rollback point
	RecEnd       // transaction fully finished (after commit/abort processing)
)

// String returns the record kind name.
func (k RecKind) String() string {
	switch k {
	case RecUpdate:
		return "UPDATE"
	case RecCompensation:
		return "CLR"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecSavepoint:
		return "SAVEPOINT"
	case RecEnd:
		return "END"
	default:
		return fmt.Sprintf("RecKind(%d)", uint8(k))
	}
}

// OwnerClass says which kind of extension owns an update record.
type OwnerClass uint8

// Owner classes.
const (
	OwnerSystem     OwnerClass = iota // catalog and other common-system updates
	OwnerStorage                      // a relation storage method
	OwnerAttachment                   // an attachment type
)

// Owner identifies the extension responsible for undoing/redoing a log
// record: the extension class, the small-integer extension ID used to index
// the procedure vectors, and the relation the modification applied to.
type Owner struct {
	Class OwnerClass
	ExtID uint8
	RelID uint32
}

// Record is one log record.
type Record struct {
	LSN      LSN
	Txn      TxnID
	PrevLSN  LSN // previous record of the same transaction (undo chain)
	UndoNext LSN // CLRs: next LSN of this txn still to be undone
	Kind     RecKind
	Owner    Owner
	Payload  []byte
}

// Undoer receives undo dispatches during rollback. Implementations route
// the call to the owning extension's undo entry point.
type Undoer interface {
	Undo(txn TxnID, owner Owner, payload []byte) error
}

// Redoer receives redo dispatches during restart recovery. compensation is
// true for CLRs, whose redo applies the *inverse* of the logged
// modification (history is repeated, including the undo work).
type Redoer interface {
	Redo(txn TxnID, owner Owner, payload []byte, compensation bool) error
}

// Log is the common write-ahead log. It keeps all records in memory and
// optionally mirrors them to a file for restart recovery. A Log is safe
// for concurrent use.
type Log struct {
	mu      sync.Mutex
	records []Record
	lastLSN map[TxnID]LSN
	file    *os.File
	buf     []byte // reusable frame buffer for file writes
	obs     *obs.WALStats
}

// New returns an in-memory log (no persistence).
func New() *Log {
	return &Log{lastLSN: make(map[TxnID]LSN), obs: &obs.WALStats{}}
}

// SetObs points the log's instrumentation at a shared metric registry.
func (l *Log) SetObs(ws *obs.WALStats) {
	if ws == nil {
		return
	}
	l.mu.Lock()
	l.obs = ws
	l.mu.Unlock()
}

// Open returns a log mirrored to the file at path, first loading any
// records already present (e.g. after a crash). Corrupt trailing frames —
// a torn final write — are truncated away.
func Open(path string) (*Log, error) {
	l := New()
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	validEnd, err := l.load(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(validEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	l.file = f
	return l, nil
}

// Close releases the backing file, if any.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.file == nil {
		return nil
	}
	err := l.file.Close()
	l.file = nil
	return err
}

// Append writes an update-class record for txn owned by owner and returns
// its LSN. Payload is copied.
func (l *Log) Append(txn TxnID, kind RecKind, owner Owner, payload []byte) (LSN, error) {
	return l.append(txn, kind, owner, payload, 0)
}

// AppendCLR writes a compensation record whose UndoNext points at the next
// record of the transaction still requiring undo.
func (l *Log) AppendCLR(txn TxnID, owner Owner, payload []byte, undoNext LSN) (LSN, error) {
	return l.append(txn, RecCompensation, owner, payload, undoNext)
}

func (l *Log) append(txn TxnID, kind RecKind, owner Owner, payload []byte, undoNext LSN) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec := Record{
		LSN:      LSN(len(l.records) + 1),
		Txn:      txn,
		PrevLSN:  l.lastLSN[txn],
		UndoNext: undoNext,
		Kind:     kind,
		Owner:    owner,
		Payload:  append([]byte(nil), payload...),
	}
	if l.file != nil {
		if err := l.writeFrame(rec); err != nil {
			return 0, err
		}
	}
	l.records = append(l.records, rec)
	if kind == RecEnd {
		delete(l.lastLSN, txn)
	} else {
		l.lastLSN[txn] = rec.LSN
	}
	l.obs.Appends.Inc()
	l.obs.AppendBytes.Add(int64(len(rec.Payload)))
	return rec.LSN, nil
}

// LastLSN returns the most recent LSN written for txn (0 if none).
func (l *Log) LastLSN(txn TxnID) LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastLSN[txn]
}

// Len returns the number of records in the log.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// At returns the record with the given LSN.
func (l *Log) At(lsn LSN) (Record, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn == 0 || int(lsn) > len(l.records) {
		return Record{}, false
	}
	return l.records[lsn-1], true
}

// Records returns a snapshot copy of all records, in LSN order.
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Record(nil), l.records...)
}

// Rollback undoes txn's update records back to (but not including) toLSN,
// dispatching each undo to d and writing a CLR per undone record. With
// toLSN 0 it rolls back the whole transaction. CLRs already in the chain
// are skipped via their UndoNext pointers, so a rollback that itself
// crashed mid-way is never undone twice.
func (l *Log) Rollback(txn TxnID, toLSN LSN, d Undoer) error {
	l.obs.Rollbacks.Inc()
	cur := l.LastLSN(txn)
	for cur > toLSN {
		rec, ok := l.At(cur)
		if !ok {
			return fmt.Errorf("wal: broken undo chain: txn %d lsn %d", txn, cur)
		}
		if rec.Txn != txn {
			return fmt.Errorf("wal: undo chain crossed transactions at lsn %d", cur)
		}
		switch rec.Kind {
		case RecCompensation:
			cur = rec.UndoNext
		case RecUpdate:
			if err := d.Undo(txn, rec.Owner, rec.Payload); err != nil {
				return fmt.Errorf("wal: undo dispatch lsn %d: %w", cur, err)
			}
			if _, err := l.AppendCLR(txn, rec.Owner, rec.Payload, rec.PrevLSN); err != nil {
				return err
			}
			cur = rec.PrevLSN
		default: // savepoints, commit markers: nothing to undo
			cur = rec.PrevLSN
		}
	}
	return nil
}

// ActiveTxns returns the transactions with log records but no END record —
// the "loser" set at restart.
func (l *Log) ActiveTxns() []TxnID {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]TxnID, 0, len(l.lastLSN))
	for t := range l.lastLSN {
		out = append(out, t)
	}
	return out
}

// Recover performs restart recovery: redo all update and compensation
// records in LSN order (repeating history), then roll back every
// transaction that has no COMMIT record, writing abort/end markers.
// Committed-but-unended transactions are simply marked ended.
func (l *Log) Recover(r Redoer, u Undoer) error {
	committed := map[TxnID]bool{}
	for _, rec := range l.Records() {
		if rec.Kind == RecCommit {
			committed[rec.Txn] = true
		}
	}
	for _, rec := range l.Records() {
		if rec.Kind == RecUpdate || rec.Kind == RecCompensation {
			if err := r.Redo(rec.Txn, rec.Owner, rec.Payload, rec.Kind == RecCompensation); err != nil {
				return fmt.Errorf("wal: redo lsn %d: %w", rec.LSN, err)
			}
		}
	}
	for _, txn := range l.ActiveTxns() {
		if committed[txn] {
			if _, err := l.Append(txn, RecEnd, Owner{}, nil); err != nil {
				return err
			}
			continue
		}
		if err := l.Rollback(txn, 0, u); err != nil {
			return err
		}
		if _, err := l.Append(txn, RecAbort, Owner{}, nil); err != nil {
			return err
		}
		if _, err := l.Append(txn, RecEnd, Owner{}, nil); err != nil {
			return err
		}
	}
	return nil
}

// frame format: len(u32) | crc(u32) | body; body is the encoded record.

func (l *Log) writeFrame(rec Record) error {
	body := encodeRecord(rec)
	l.buf = l.buf[:0]
	l.buf = binary.BigEndian.AppendUint32(l.buf, uint32(len(body)))
	l.buf = binary.BigEndian.AppendUint32(l.buf, crc32.ChecksumIEEE(body))
	l.buf = append(l.buf, body...)
	if _, err := l.file.Write(l.buf); err != nil {
		return fmt.Errorf("wal: write frame: %w", err)
	}
	return nil
}

// Sync flushes the backing file to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.file == nil {
		return nil
	}
	l.obs.Syncs.Inc()
	return l.file.Sync()
}

func (l *Log) load(f *os.File) (validEnd int64, err error) {
	data, err := io.ReadAll(f)
	if err != nil {
		return 0, fmt.Errorf("wal: read: %w", err)
	}
	pos := 0
	for {
		if pos+8 > len(data) {
			break
		}
		n := int(binary.BigEndian.Uint32(data[pos:]))
		sum := binary.BigEndian.Uint32(data[pos+4:])
		if pos+8+n > len(data) {
			break // torn tail
		}
		body := data[pos+8 : pos+8+n]
		if crc32.ChecksumIEEE(body) != sum {
			break // corrupt tail
		}
		rec, derr := decodeRecord(body)
		if derr != nil {
			break
		}
		l.records = append(l.records, rec)
		if rec.Kind == RecEnd {
			delete(l.lastLSN, rec.Txn)
		} else {
			l.lastLSN[rec.Txn] = rec.LSN
		}
		pos += 8 + n
	}
	return int64(pos), nil
}

func encodeRecord(rec Record) []byte {
	out := make([]byte, 0, 40+len(rec.Payload))
	out = binary.BigEndian.AppendUint64(out, uint64(rec.LSN))
	out = binary.BigEndian.AppendUint64(out, uint64(rec.Txn))
	out = binary.BigEndian.AppendUint64(out, uint64(rec.PrevLSN))
	out = binary.BigEndian.AppendUint64(out, uint64(rec.UndoNext))
	out = append(out, byte(rec.Kind), byte(rec.Owner.Class), rec.Owner.ExtID)
	out = binary.BigEndian.AppendUint32(out, rec.Owner.RelID)
	out = append(out, rec.Payload...)
	return out
}

func decodeRecord(b []byte) (Record, error) {
	if len(b) < 39 {
		return Record{}, fmt.Errorf("wal: short record body (%d bytes)", len(b))
	}
	rec := Record{
		LSN:      LSN(binary.BigEndian.Uint64(b[0:])),
		Txn:      TxnID(binary.BigEndian.Uint64(b[8:])),
		PrevLSN:  LSN(binary.BigEndian.Uint64(b[16:])),
		UndoNext: LSN(binary.BigEndian.Uint64(b[24:])),
		Kind:     RecKind(b[32]),
		Owner:    Owner{Class: OwnerClass(b[33]), ExtID: b[34], RelID: binary.BigEndian.Uint32(b[35:])},
	}
	rec.Payload = append([]byte(nil), b[39:]...)
	return rec, nil
}
