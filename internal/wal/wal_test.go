package wal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dmx/internal/obs"
)

// recordingDispatcher collects undo/redo dispatches for assertions.
type recordingDispatcher struct {
	mu     sync.Mutex
	undos  []string
	redos  []string
	failOn string
}

func (d *recordingDispatcher) Undo(txn TxnID, o Owner, p []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := fmt.Sprintf("t%d:%s", txn, p)
	if d.failOn == string(p) {
		return fmt.Errorf("boom on %s", p)
	}
	d.undos = append(d.undos, s)
	return nil
}

func (d *recordingDispatcher) Redo(txn TxnID, o Owner, p []byte, compensation bool) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	tag := ""
	if compensation {
		tag = "~"
	}
	d.redos = append(d.redos, fmt.Sprintf("%st%d:%s", tag, txn, p))
	return nil
}

func mustAppend(t *testing.T, l *Log, txn TxnID, kind RecKind, payload string) LSN {
	t.Helper()
	lsn, err := l.Append(txn, kind, Owner{Class: OwnerStorage, ExtID: 2, RelID: 7}, []byte(payload))
	if err != nil {
		t.Fatal(err)
	}
	return lsn
}

func TestAppendChainsPerTxn(t *testing.T) {
	l := New()
	a1 := mustAppend(t, l, 1, RecUpdate, "a1")
	b1 := mustAppend(t, l, 2, RecUpdate, "b1")
	a2 := mustAppend(t, l, 1, RecUpdate, "a2")

	if a1 != 1 || b1 != 2 || a2 != 3 {
		t.Fatalf("LSNs = %d %d %d", a1, b1, a2)
	}
	r, ok := l.At(a2)
	if !ok || r.PrevLSN != a1 {
		t.Fatalf("txn chain broken: %+v", r)
	}
	r, _ = l.At(b1)
	if r.PrevLSN != 0 {
		t.Fatal("first record of txn should have PrevLSN 0")
	}
	if l.LastLSN(1) != a2 || l.LastLSN(2) != b1 || l.LastLSN(9) != 0 {
		t.Fatal("LastLSN")
	}
	if l.Len() != 3 {
		t.Fatal("Len")
	}
	if _, ok := l.At(0); ok {
		t.Fatal("At(0) should not exist")
	}
	if _, ok := l.At(99); ok {
		t.Fatal("At(99) should not exist")
	}
}

func TestRollbackFull(t *testing.T) {
	l := New()
	mustAppend(t, l, 1, RecUpdate, "u1")
	mustAppend(t, l, 1, RecUpdate, "u2")
	mustAppend(t, l, 1, RecUpdate, "u3")
	d := &recordingDispatcher{}
	if err := l.Rollback(1, 0, d); err != nil {
		t.Fatal(err)
	}
	want := []string{"t1:u3", "t1:u2", "t1:u1"}
	if len(d.undos) != 3 {
		t.Fatalf("undos = %v", d.undos)
	}
	for i := range want {
		if d.undos[i] != want[i] {
			t.Fatalf("undo order: %v", d.undos)
		}
	}
	// three CLRs appended
	clrs := 0
	for _, r := range l.Records() {
		if r.Kind == RecCompensation {
			clrs++
		}
	}
	if clrs != 3 {
		t.Fatalf("CLRs = %d", clrs)
	}
}

func TestPartialRollbackToSavepoint(t *testing.T) {
	l := New()
	mustAppend(t, l, 1, RecUpdate, "u1")
	sp := mustAppend(t, l, 1, RecSavepoint, "sp1")
	mustAppend(t, l, 1, RecUpdate, "u2")
	mustAppend(t, l, 1, RecUpdate, "u3")
	d := &recordingDispatcher{}
	if err := l.Rollback(1, sp, d); err != nil {
		t.Fatal(err)
	}
	if len(d.undos) != 2 || d.undos[0] != "t1:u3" || d.undos[1] != "t1:u2" {
		t.Fatalf("partial undos = %v", d.undos)
	}
	// Rolling back again to the same savepoint is a no-op thanks to CLR
	// UndoNext chaining.
	d2 := &recordingDispatcher{}
	if err := l.Rollback(1, sp, d2); err != nil {
		t.Fatal(err)
	}
	if len(d2.undos) != 0 {
		t.Fatalf("second rollback should be idempotent, got %v", d2.undos)
	}
	// Full rollback afterwards undoes only u1.
	d3 := &recordingDispatcher{}
	if err := l.Rollback(1, 0, d3); err != nil {
		t.Fatal(err)
	}
	if len(d3.undos) != 1 || d3.undos[0] != "t1:u1" {
		t.Fatalf("final undos = %v", d3.undos)
	}
}

func TestRollbackSkipsOtherTxns(t *testing.T) {
	l := New()
	mustAppend(t, l, 1, RecUpdate, "a")
	mustAppend(t, l, 2, RecUpdate, "x")
	mustAppend(t, l, 1, RecUpdate, "b")
	d := &recordingDispatcher{}
	if err := l.Rollback(1, 0, d); err != nil {
		t.Fatal(err)
	}
	if len(d.undos) != 2 || d.undos[0] != "t1:b" || d.undos[1] != "t1:a" {
		t.Fatalf("undos = %v", d.undos)
	}
	if l.LastLSN(2) == 0 {
		t.Fatal("txn 2 should be untouched")
	}
}

func TestRollbackUndoErrorPropagates(t *testing.T) {
	l := New()
	mustAppend(t, l, 1, RecUpdate, "u1")
	d := &recordingDispatcher{failOn: "u1"}
	if err := l.Rollback(1, 0, d); err == nil {
		t.Fatal("undo error should propagate")
	}
}

func TestActiveTxns(t *testing.T) {
	l := New()
	mustAppend(t, l, 1, RecUpdate, "a")
	mustAppend(t, l, 2, RecUpdate, "b")
	mustAppend(t, l, 2, RecCommit, "")
	mustAppend(t, l, 2, RecEnd, "")
	active := l.ActiveTxns()
	if len(active) != 1 || active[0] != 1 {
		t.Fatalf("ActiveTxns = %v", active)
	}
}

func TestRecoverRedoesAndUndoesLosers(t *testing.T) {
	l := New()
	mustAppend(t, l, 1, RecUpdate, "c1") // will commit
	mustAppend(t, l, 2, RecUpdate, "x1") // loser
	mustAppend(t, l, 1, RecCommit, "")
	mustAppend(t, l, 2, RecUpdate, "x2")
	// no END for either: crash between commit record and end

	d := &recordingDispatcher{}
	if err := l.Recover(d, d); err != nil {
		t.Fatal(err)
	}
	// Redo repeats history for all updates.
	if len(d.redos) != 3 {
		t.Fatalf("redos = %v", d.redos)
	}
	// Loser txn 2 undone in reverse.
	if len(d.undos) != 2 || d.undos[0] != "t2:x2" || d.undos[1] != "t2:x1" {
		t.Fatalf("undos = %v", d.undos)
	}
	// Both txns ended now.
	if n := len(l.ActiveTxns()); n != 0 {
		t.Fatalf("ActiveTxns after recovery = %d", n)
	}
}

func TestFilePersistenceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, 1, RecUpdate, "hello")
	mustAppend(t, l, 1, RecCommit, "")
	mustAppend(t, l, 1, RecEnd, "")
	mustAppend(t, l, 2, RecUpdate, "loser")
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Len() != 4 {
		t.Fatalf("reloaded Len = %d", l2.Len())
	}
	r, ok := l2.At(1)
	if !ok || string(r.Payload) != "hello" || r.Owner.RelID != 7 || r.Owner.ExtID != 2 {
		t.Fatalf("reloaded record = %+v", r)
	}
	active := l2.ActiveTxns()
	if len(active) != 1 || active[0] != 2 {
		t.Fatalf("reloaded ActiveTxns = %v", active)
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, 1, RecUpdate, "good")
	l.Close()

	// Simulate a torn write: append garbage half-frame.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, 8)
	binary.BigEndian.PutUint32(frame, 100) // claims 100-byte body, absent
	f.Write(frame)
	f.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Len() != 1 {
		t.Fatalf("torn tail should be dropped; Len = %d", l2.Len())
	}
	// And the log must be appendable again after truncation.
	if _, err := l2.Append(1, RecUpdate, Owner{}, []byte("more")); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptChecksumTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := Open(path)
	mustAppend(t, l, 1, RecUpdate, "aaaa")
	mustAppend(t, l, 1, RecUpdate, "bbbb")
	l.Close()

	// Flip a payload byte in the second frame.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Len() != 1 {
		t.Fatalf("corrupt frame should be dropped; Len = %d", l2.Len())
	}
}

func TestConcurrentAppends(t *testing.T) {
	l := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := l.Append(TxnID(g+1), RecUpdate, Owner{}, []byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Fatalf("Len = %d", l.Len())
	}
	// Every transaction's chain must be intact and 100 long.
	for g := 1; g <= 8; g++ {
		n := 0
		for cur := l.LastLSN(TxnID(g)); cur != 0; {
			r, ok := l.At(cur)
			if !ok || r.Txn != TxnID(g) {
				t.Fatalf("chain broken for txn %d", g)
			}
			n++
			cur = r.PrevLSN
		}
		if n != 100 {
			t.Fatalf("txn %d chain length %d", g, n)
		}
	}
}

func TestRecKindString(t *testing.T) {
	kinds := []RecKind{RecUpdate, RecCompensation, RecCommit, RecAbort, RecSavepoint, RecEnd, RecKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Error("empty kind string")
		}
	}
}

func TestEncodeDecodeRecord(t *testing.T) {
	rec := Record{LSN: 5, Txn: 9, PrevLSN: 3, UndoNext: 2, Kind: RecCompensation,
		Owner: Owner{Class: OwnerAttachment, ExtID: 11, RelID: 12345}, Payload: []byte("xyz")}
	got, err := decodeRecord(encodeRecord(rec))
	if err != nil {
		t.Fatal(err)
	}
	if got.LSN != rec.LSN || got.Txn != rec.Txn || got.PrevLSN != rec.PrevLSN ||
		got.UndoNext != rec.UndoNext || got.Kind != rec.Kind || got.Owner != rec.Owner ||
		string(got.Payload) != "xyz" {
		t.Fatalf("round trip: %+v", got)
	}
	if _, err := decodeRecord([]byte{1, 2}); err == nil {
		t.Fatal("short body should fail")
	}
}

func TestSyncCommittedAdvancesDurable(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	lsn, err := l.Append(1, RecCommit, Owner{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if l.Durable() >= lsn {
		t.Fatalf("durable %d before any sync", l.Durable())
	}
	if err := l.SyncCommitted(lsn); err != nil {
		t.Fatal(err)
	}
	if l.Durable() < lsn {
		t.Fatalf("durable = %d, want >= %d", l.Durable(), lsn)
	}
	// Already durable: served without another fsync round.
	if err := l.SyncCommitted(lsn); err != nil {
		t.Fatal(err)
	}
}

func TestGroupCommitBatchesConcurrentCommitters(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	st := &obs.WALStats{}
	l.SetObs(st)
	l.SetGroupCommitWindow(200 * time.Microsecond)
	const committers = 16
	var wg sync.WaitGroup
	for g := 0; g < committers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				lsn, err := l.Append(TxnID(g+1), RecCommit, Owner{}, nil)
				if err != nil {
					t.Error(err)
					return
				}
				if err := l.SyncCommitted(lsn); err != nil {
					t.Error(err)
					return
				}
				if l.Durable() < lsn {
					t.Errorf("commit returned before durable: %d < %d", l.Durable(), lsn)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	commits, batches := st.GroupCommits.Load(), st.GroupBatches.Load()
	if commits != committers*20 {
		t.Fatalf("group commits = %d, want %d", commits, committers*20)
	}
	if batches == 0 || batches > commits {
		t.Fatalf("batches = %d out of range (commits %d)", batches, commits)
	}
	// The whole point: concurrent committers share fsync rounds. With a
	// batching window and 16 writers this is deterministic-enough to
	// assert strictly less than one fsync per commit.
	if batches >= commits {
		t.Fatalf("no batching: %d batches for %d commits", batches, commits)
	}
}

func TestForceToOnlySyncsWhenBehind(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	st := &obs.WALStats{}
	l.SetObs(st)
	lsn, err := l.Append(1, RecUpdate, Owner{}, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.ForceTo(lsn); err != nil {
		t.Fatal(err)
	}
	if st.ForcedSyncs.Load() != 1 {
		t.Fatalf("forced syncs = %d", st.ForcedSyncs.Load())
	}
	if l.Durable() < lsn {
		t.Fatalf("durable = %d after force to %d", l.Durable(), lsn)
	}
	// Already durable: no further force.
	if err := l.ForceTo(lsn); err != nil {
		t.Fatal(err)
	}
	if st.ForcedSyncs.Load() != 1 {
		t.Fatalf("forced syncs after no-op = %d", st.ForcedSyncs.Load())
	}
}

func TestDurableRestoredAtOpen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := l.Append(1, RecCommit, Owner{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SyncCommitted(lsn); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	// Everything read back from the file is durable by construction, so a
	// commit already on disk must not trigger a fresh fsync wait.
	if l2.Durable() < lsn {
		t.Fatalf("reopened durable = %d, want >= %d", l2.Durable(), lsn)
	}
}
