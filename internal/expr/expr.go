// Package expr implements the common predicate-evaluation service of the
// data management extension architecture.
//
// Storage methods and access-path attachments receive filter predicates and
// evaluate them against records whose field values are still resident in
// the extension's buffer pool (early filtering); integrity-constraint
// attachments and the query execution engine use the same evaluator. The
// evaluator can call functions that are passed to it by name, and both
// constant and variable (parameter) data can appear as operands.
package expr

import (
	"encoding/binary"
	"fmt"
	"strings"

	"dmx/internal/types"
)

// Op identifies an expression node kind.
type Op uint8

// Expression node kinds.
const (
	OpConst Op = iota // literal value
	OpField           // record field reference by position
	OpParam           // bound variable (parameter marker) by position
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpNot
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpIsNull
	OpFunc     // user function call by name
	OpEncloses // spatial: box(arg0) encloses box(arg1)
	OpOverlaps // spatial: box(arg0) overlaps box(arg1)
)

var opNames = map[Op]string{
	OpConst: "const", OpField: "field", OpParam: "param",
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR", OpNot: "NOT",
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	OpIsNull: "IS NULL", OpFunc: "func",
	OpEncloses: "ENCLOSES", OpOverlaps: "OVERLAPS",
}

// String returns the display name of the operator.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Expr is a node of a filter-predicate or scalar expression tree. Exprs are
// immutable after construction and safe to share between transactions.
type Expr struct {
	Op    Op
	Val   types.Value // OpConst
	Field int         // OpField: column index; OpParam: parameter index
	Name  string      // OpFunc: function name; OpField: optional display name
	Args  []*Expr
}

// Const returns a literal node.
func Const(v types.Value) *Expr { return &Expr{Op: OpConst, Val: v} }

// Field returns a field-reference node for column index i.
func Field(i int) *Expr { return &Expr{Op: OpField, Field: i} }

// NamedField returns a field-reference node that also carries a display name.
func NamedField(i int, name string) *Expr { return &Expr{Op: OpField, Field: i, Name: name} }

// Param returns a parameter-marker node for parameter index i.
func Param(i int) *Expr { return &Expr{Op: OpParam, Field: i} }

func binOp(op Op, a, b *Expr) *Expr { return &Expr{Op: op, Args: []*Expr{a, b}} }

// Eq builds a = b.
func Eq(a, b *Expr) *Expr { return binOp(OpEq, a, b) }

// Ne builds a <> b.
func Ne(a, b *Expr) *Expr { return binOp(OpNe, a, b) }

// Lt builds a < b.
func Lt(a, b *Expr) *Expr { return binOp(OpLt, a, b) }

// Le builds a <= b.
func Le(a, b *Expr) *Expr { return binOp(OpLe, a, b) }

// Gt builds a > b.
func Gt(a, b *Expr) *Expr { return binOp(OpGt, a, b) }

// Ge builds a >= b.
func Ge(a, b *Expr) *Expr { return binOp(OpGe, a, b) }

// And builds the conjunction of the given predicates (nil for none).
func And(es ...*Expr) *Expr {
	var out *Expr
	for _, e := range es {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = binOp(OpAnd, out, e)
		}
	}
	return out
}

// Or builds a OR b.
func Or(a, b *Expr) *Expr { return binOp(OpOr, a, b) }

// Not builds NOT a.
func Not(a *Expr) *Expr { return &Expr{Op: OpNot, Args: []*Expr{a}} }

// Add builds a + b.
func Add(a, b *Expr) *Expr { return binOp(OpAdd, a, b) }

// Sub builds a - b.
func Sub(a, b *Expr) *Expr { return binOp(OpSub, a, b) }

// Mul builds a * b.
func Mul(a, b *Expr) *Expr { return binOp(OpMul, a, b) }

// Div builds a / b.
func Div(a, b *Expr) *Expr { return binOp(OpDiv, a, b) }

// IsNull builds a IS NULL.
func IsNull(a *Expr) *Expr { return &Expr{Op: OpIsNull, Args: []*Expr{a}} }

// Call builds an invocation of the named registered function.
func Call(name string, args ...*Expr) *Expr { return &Expr{Op: OpFunc, Name: name, Args: args} }

// Encloses builds the spatial predicate box(a) ENCLOSES box(b).
func Encloses(a, b *Expr) *Expr { return binOp(OpEncloses, a, b) }

// Overlaps builds the spatial predicate box(a) OVERLAPS box(b).
func Overlaps(a, b *Expr) *Expr { return binOp(OpOverlaps, a, b) }

// Func is a user function callable from predicates.
type Func func(args []types.Value) (types.Value, error)

// Evaluator is the common-service predicate evaluator. It holds the
// function registry; the zero value (or nil) evaluates predicates that use
// no functions. Evaluators are safe for concurrent use after registration.
type Evaluator struct {
	funcs map[string]Func
}

// NewEvaluator returns an evaluator with an empty function registry.
func NewEvaluator() *Evaluator { return &Evaluator{funcs: make(map[string]Func)} }

// Register installs fn under name (case-insensitive), replacing any prior
// registration.
func (ev *Evaluator) Register(name string, fn Func) {
	ev.funcs[strings.ToLower(name)] = fn
}

// errDivZero is returned for integer or float division by zero.
var errDivZero = fmt.Errorf("expr: division by zero")

// Eval evaluates e against rec and params. Comparison of NULL with any
// value yields FALSE (use IS NULL to test for NULL). The evaluator does
// not copy rec; field references index directly into it.
func (ev *Evaluator) Eval(e *Expr, rec types.Record, params []types.Value) (types.Value, error) {
	switch e.Op {
	case OpConst:
		return e.Val, nil
	case OpField:
		if e.Field < 0 || e.Field >= len(rec) {
			return types.Null(), fmt.Errorf("expr: field %d out of range (record has %d)", e.Field, len(rec))
		}
		return rec[e.Field], nil
	case OpParam:
		if e.Field < 0 || e.Field >= len(params) {
			return types.Null(), fmt.Errorf("expr: parameter %d out of range (%d bound)", e.Field, len(params))
		}
		return params[e.Field], nil
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		a, err := ev.Eval(e.Args[0], rec, params)
		if err != nil {
			return types.Null(), err
		}
		b, err := ev.Eval(e.Args[1], rec, params)
		if err != nil {
			return types.Null(), err
		}
		if a.IsNull() || b.IsNull() {
			return types.Bool(false), nil
		}
		c := types.Compare(a, b)
		switch e.Op {
		case OpEq:
			return types.Bool(c == 0), nil
		case OpNe:
			return types.Bool(c != 0), nil
		case OpLt:
			return types.Bool(c < 0), nil
		case OpLe:
			return types.Bool(c <= 0), nil
		case OpGt:
			return types.Bool(c > 0), nil
		default:
			return types.Bool(c >= 0), nil
		}
	case OpAnd:
		a, err := ev.Eval(e.Args[0], rec, params)
		if err != nil {
			return types.Null(), err
		}
		if !a.AsBool() {
			return types.Bool(false), nil
		}
		return ev.Eval(e.Args[1], rec, params)
	case OpOr:
		a, err := ev.Eval(e.Args[0], rec, params)
		if err != nil {
			return types.Null(), err
		}
		if a.AsBool() {
			return types.Bool(true), nil
		}
		return ev.Eval(e.Args[1], rec, params)
	case OpNot:
		a, err := ev.Eval(e.Args[0], rec, params)
		if err != nil {
			return types.Null(), err
		}
		return types.Bool(!a.AsBool()), nil
	case OpAdd, OpSub, OpMul, OpDiv:
		a, err := ev.Eval(e.Args[0], rec, params)
		if err != nil {
			return types.Null(), err
		}
		b, err := ev.Eval(e.Args[1], rec, params)
		if err != nil {
			return types.Null(), err
		}
		return arith(e.Op, a, b)
	case OpIsNull:
		a, err := ev.Eval(e.Args[0], rec, params)
		if err != nil {
			return types.Null(), err
		}
		return types.Bool(a.IsNull()), nil
	case OpFunc:
		fn, ok := ev.funcs[strings.ToLower(e.Name)]
		if !ok {
			return types.Null(), fmt.Errorf("expr: unknown function %q", e.Name)
		}
		args := make([]types.Value, len(e.Args))
		for i, a := range e.Args {
			v, err := ev.Eval(a, rec, params)
			if err != nil {
				return types.Null(), err
			}
			args[i] = v
		}
		return fn(args)
	case OpEncloses, OpOverlaps:
		a, err := ev.Eval(e.Args[0], rec, params)
		if err != nil {
			return types.Null(), err
		}
		b, err := ev.Eval(e.Args[1], rec, params)
		if err != nil {
			return types.Null(), err
		}
		if a.IsNull() || b.IsNull() {
			return types.Bool(false), nil
		}
		ba, err := DecodeBox(a)
		if err != nil {
			return types.Null(), err
		}
		bb, err := DecodeBox(b)
		if err != nil {
			return types.Null(), err
		}
		if e.Op == OpEncloses {
			return types.Bool(ba.Encloses(bb)), nil
		}
		return types.Bool(ba.Overlaps(bb)), nil
	default:
		return types.Null(), fmt.Errorf("expr: bad op %v", e.Op)
	}
}

// EvalBool evaluates a predicate to its truth value; NULL and non-BOOL
// results are false.
func (ev *Evaluator) EvalBool(e *Expr, rec types.Record, params []types.Value) (bool, error) {
	if e == nil {
		return true, nil
	}
	v, err := ev.Eval(e, rec, params)
	if err != nil {
		return false, err
	}
	return v.AsBool(), nil
}

func arith(op Op, a, b types.Value) (types.Value, error) {
	if a.IsNull() || b.IsNull() {
		return types.Null(), nil
	}
	if a.K == types.KindFloat || b.K == types.KindFloat {
		x, y := a.AsFloat(), b.AsFloat()
		switch op {
		case OpAdd:
			return types.Float(x + y), nil
		case OpSub:
			return types.Float(x - y), nil
		case OpMul:
			return types.Float(x * y), nil
		default:
			if y == 0 {
				return types.Null(), errDivZero
			}
			return types.Float(x / y), nil
		}
	}
	if a.K != types.KindInt || b.K != types.KindInt {
		return types.Null(), fmt.Errorf("expr: arithmetic on non-numeric values %v, %v", a, b)
	}
	x, y := a.I, b.I
	switch op {
	case OpAdd:
		return types.Int(x + y), nil
	case OpSub:
		return types.Int(x - y), nil
	case OpMul:
		return types.Int(x * y), nil
	default:
		if y == 0 {
			return types.Null(), errDivZero
		}
		return types.Int(x / y), nil
	}
}

// String renders the expression in SQL-ish infix form.
func (e *Expr) String() string {
	if e == nil {
		return "TRUE"
	}
	switch e.Op {
	case OpConst:
		return e.Val.String()
	case OpField:
		if e.Name != "" {
			return e.Name
		}
		return fmt.Sprintf("$%d", e.Field)
	case OpParam:
		return fmt.Sprintf("?%d", e.Field)
	case OpNot:
		return fmt.Sprintf("NOT (%s)", e.Args[0])
	case OpIsNull:
		return fmt.Sprintf("(%s) IS NULL", e.Args[0])
	case OpFunc:
		parts := make([]string, len(e.Args))
		for i, a := range e.Args {
			parts[i] = a.String()
		}
		return fmt.Sprintf("%s(%s)", e.Name, strings.Join(parts, ", "))
	default:
		if len(e.Args) == 2 {
			return fmt.Sprintf("(%s %s %s)", e.Args[0], e.Op, e.Args[1])
		}
		return e.Op.String()
	}
}

// Conjuncts flattens the AND-tree rooted at e into its conjunct list. The
// query planner hands this list to storage methods and attachments as the
// "eligible predicates" whose relevance they judge.
func Conjuncts(e *Expr) []*Expr {
	if e == nil {
		return nil
	}
	if e.Op == OpAnd {
		return append(Conjuncts(e.Args[0]), Conjuncts(e.Args[1])...)
	}
	return []*Expr{e}
}

// FieldsUsed returns the sorted set of record field indexes referenced by e.
// Access procedures use it to isolate the fields the filter needs before
// invoking the evaluator.
func FieldsUsed(e *Expr) []int {
	seen := map[int]bool{}
	var walk func(*Expr)
	walk = func(x *Expr) {
		if x == nil {
			return
		}
		if x.Op == OpField {
			seen[x.Field] = true
		}
		for _, a := range x.Args {
			walk(a)
		}
	}
	walk(e)
	out := make([]int, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	for i := 1; i < len(out); i++ { // insertion sort; sets are tiny
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// FieldCompare describes a conjunct of the form <field> <op> <constant>,
// the shape access-path cost estimators recognise as "relevant".
type FieldCompare struct {
	Field int
	Op    Op
	Value types.Value
}

// MatchFieldCompare recognises field-vs-constant comparisons (in either
// operand order, with the operator flipped as needed).
func MatchFieldCompare(e *Expr) (FieldCompare, bool) {
	if e == nil || len(e.Args) != 2 {
		return FieldCompare{}, false
	}
	switch e.Op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
	default:
		return FieldCompare{}, false
	}
	a, b := e.Args[0], e.Args[1]
	if a.Op == OpField && b.Op == OpConst {
		return FieldCompare{Field: a.Field, Op: e.Op, Value: b.Val}, true
	}
	if a.Op == OpConst && b.Op == OpField {
		return FieldCompare{Field: b.Field, Op: flip(e.Op), Value: a.Val}, true
	}
	return FieldCompare{}, false
}

func flip(op Op) Op {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	default:
		return op
	}
}

// encode/decode: a compact prefix encoding used to persist predicates in
// attachment descriptors (e.g. single-record integrity constraints).

// AppendEncode appends a binary encoding of e to dst. A nil expression
// encodes as a single 0xFF byte.
func (e *Expr) AppendEncode(dst []byte) []byte {
	if e == nil {
		return append(dst, 0xFF)
	}
	dst = append(dst, byte(e.Op))
	switch e.Op {
	case OpConst:
		dst = e.Val.AppendEncode(dst)
	case OpField, OpParam:
		dst = binary.BigEndian.AppendUint16(dst, uint16(e.Field))
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(e.Name)))
		dst = append(dst, e.Name...)
	case OpFunc:
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(e.Name)))
		dst = append(dst, e.Name...)
	}
	dst = append(dst, byte(len(e.Args)))
	for _, a := range e.Args {
		dst = a.AppendEncode(dst)
	}
	return dst
}

// Decode decodes an expression encoded by AppendEncode, returning the
// expression and bytes consumed.
func Decode(b []byte) (*Expr, int, error) {
	if len(b) < 1 {
		return nil, 0, fmt.Errorf("expr: truncated expression")
	}
	if b[0] == 0xFF {
		return nil, 1, nil
	}
	e := &Expr{Op: Op(b[0])}
	if _, ok := opNames[e.Op]; !ok {
		return nil, 0, fmt.Errorf("expr: bad op byte %d", b[0])
	}
	pos := 1
	switch e.Op {
	case OpConst:
		v, n, err := types.DecodeValue(b[pos:])
		if err != nil {
			return nil, 0, err
		}
		e.Val = v
		pos += n
	case OpField, OpParam:
		if len(b) < pos+4 {
			return nil, 0, fmt.Errorf("expr: truncated field ref")
		}
		e.Field = int(binary.BigEndian.Uint16(b[pos:]))
		nameLen := int(binary.BigEndian.Uint16(b[pos+2:]))
		pos += 4
		if len(b) < pos+nameLen {
			return nil, 0, fmt.Errorf("expr: truncated field name")
		}
		e.Name = string(b[pos : pos+nameLen])
		pos += nameLen
	case OpFunc:
		if len(b) < pos+2 {
			return nil, 0, fmt.Errorf("expr: truncated func name len")
		}
		nameLen := int(binary.BigEndian.Uint16(b[pos:]))
		pos += 2
		if len(b) < pos+nameLen {
			return nil, 0, fmt.Errorf("expr: truncated func name")
		}
		e.Name = string(b[pos : pos+nameLen])
		pos += nameLen
	}
	if len(b) < pos+1 {
		return nil, 0, fmt.Errorf("expr: truncated arity")
	}
	nArgs := int(b[pos])
	pos++
	for i := 0; i < nArgs; i++ {
		a, n, err := Decode(b[pos:])
		if err != nil {
			return nil, 0, err
		}
		e.Args = append(e.Args, a)
		pos += n
	}
	return e, pos, nil
}
