package expr

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"dmx/internal/types"
)

var ev = NewEvaluator()

func evalOn(t *testing.T, e *Expr, rec types.Record) types.Value {
	t.Helper()
	v, err := ev.Eval(e, rec, nil)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return v
}

func TestComparisons(t *testing.T) {
	rec := types.Record{types.Int(10), types.Str("bob"), types.Float(2.5)}
	for _, tc := range []struct {
		e    *Expr
		want bool
	}{
		{Eq(Field(0), Const(types.Int(10))), true},
		{Eq(Field(0), Const(types.Int(11))), false},
		{Ne(Field(0), Const(types.Int(11))), true},
		{Lt(Field(0), Const(types.Int(11))), true},
		{Le(Field(0), Const(types.Int(10))), true},
		{Gt(Field(0), Const(types.Int(9))), true},
		{Ge(Field(0), Const(types.Int(10))), true},
		{Ge(Field(0), Const(types.Int(11))), false},
		{Eq(Field(1), Const(types.Str("bob"))), true},
		{Gt(Field(2), Const(types.Int(2))), true}, // cross numeric
		{Eq(Const(types.Int(10)), Field(0)), true},
	} {
		if got := evalOn(t, tc.e, rec); got.AsBool() != tc.want {
			t.Errorf("%s = %v, want %v", tc.e, got, tc.want)
		}
	}
}

func TestBooleanLogicAndShortCircuit(t *testing.T) {
	rec := types.Record{types.Int(1)}
	tr := Eq(Field(0), Const(types.Int(1)))
	fa := Eq(Field(0), Const(types.Int(2)))
	// err would fire only if evaluated: field out of range
	boom := Eq(Field(9), Const(types.Int(1)))

	if !evalOn(t, And(tr, tr), rec).AsBool() {
		t.Error("AND true")
	}
	if evalOn(t, And(tr, fa), rec).AsBool() {
		t.Error("AND false")
	}
	if !evalOn(t, Or(fa, tr), rec).AsBool() {
		t.Error("OR true")
	}
	if !evalOn(t, Not(fa), rec).AsBool() {
		t.Error("NOT")
	}
	// Short circuit: AND with false left must not evaluate right.
	if v, err := ev.Eval(And(fa, boom), rec, nil); err != nil || v.AsBool() {
		t.Errorf("AND short-circuit: %v, %v", v, err)
	}
	if v, err := ev.Eval(Or(tr, boom), rec, nil); err != nil || !v.AsBool() {
		t.Errorf("OR short-circuit: %v, %v", v, err)
	}
}

func TestNullSemantics(t *testing.T) {
	rec := types.Record{types.Null()}
	if evalOn(t, Eq(Field(0), Const(types.Int(1))), rec).AsBool() {
		t.Error("NULL = x should be false")
	}
	if evalOn(t, Ne(Field(0), Const(types.Int(1))), rec).AsBool() {
		t.Error("NULL <> x should be false")
	}
	if !evalOn(t, IsNull(Field(0)), rec).AsBool() {
		t.Error("IS NULL false negative")
	}
	if evalOn(t, IsNull(Const(types.Int(1))), rec).AsBool() {
		t.Error("IS NULL false positive")
	}
}

func TestArithmetic(t *testing.T) {
	rec := types.Record{types.Int(7), types.Float(2)}
	for _, tc := range []struct {
		e    *Expr
		want types.Value
	}{
		{Add(Field(0), Const(types.Int(3))), types.Int(10)},
		{Sub(Field(0), Const(types.Int(3))), types.Int(4)},
		{Mul(Field(0), Const(types.Int(3))), types.Int(21)},
		{Div(Field(0), Const(types.Int(2))), types.Int(3)},
		{Add(Field(0), Field(1)), types.Float(9)},
		{Div(Field(1), Const(types.Float(0.5))), types.Float(4)},
		{Add(Field(0), Const(types.Null())), types.Null()},
	} {
		if got := evalOn(t, tc.e, rec); !types.Equal(got, tc.want) {
			t.Errorf("%s = %v, want %v", tc.e, got, tc.want)
		}
	}
	if _, err := ev.Eval(Div(Field(0), Const(types.Int(0))), rec, nil); err == nil {
		t.Error("int div by zero should error")
	}
	if _, err := ev.Eval(Div(Field(1), Const(types.Float(0))), rec, nil); err == nil {
		t.Error("float div by zero should error")
	}
	if _, err := ev.Eval(Add(Const(types.Str("x")), Const(types.Int(1))), rec, nil); err == nil {
		t.Error("string arithmetic should error")
	}
}

func TestParams(t *testing.T) {
	rec := types.Record{types.Int(5)}
	e := Eq(Field(0), Param(0))
	ok, err := ev.EvalBool(e, rec, []types.Value{types.Int(5)})
	if err != nil || !ok {
		t.Fatalf("param eval: %v %v", ok, err)
	}
	ok, err = ev.EvalBool(e, rec, []types.Value{types.Int(6)})
	if err != nil || ok {
		t.Fatalf("param eval false: %v %v", ok, err)
	}
	if _, err := ev.Eval(Param(3), rec, nil); err == nil {
		t.Error("unbound param should error")
	}
}

func TestFunctions(t *testing.T) {
	local := NewEvaluator()
	local.Register("abs", func(args []types.Value) (types.Value, error) {
		if len(args) != 1 {
			return types.Null(), fmt.Errorf("abs wants 1 arg")
		}
		x := args[0].AsInt()
		if x < 0 {
			x = -x
		}
		return types.Int(x), nil
	})
	rec := types.Record{types.Int(-9)}
	v, err := local.Eval(Call("ABS", Field(0)), rec, nil)
	if err != nil || v.AsInt() != 9 {
		t.Fatalf("abs: %v %v", v, err)
	}
	if _, err := local.Eval(Call("nope", Field(0)), rec, nil); err == nil {
		t.Error("unknown function should error")
	}
	if _, err := local.Eval(Call("abs"), rec, nil); err == nil {
		t.Error("arity error should propagate")
	}
}

func TestEvalBoolNil(t *testing.T) {
	ok, err := ev.EvalBool(nil, nil, nil)
	if err != nil || !ok {
		t.Fatal("nil predicate should be TRUE")
	}
}

func TestFieldOutOfRange(t *testing.T) {
	if _, err := ev.Eval(Field(2), types.Record{types.Int(1)}, nil); err == nil {
		t.Error("out-of-range field should error")
	}
}

func TestConjuncts(t *testing.T) {
	a := Eq(Field(0), Const(types.Int(1)))
	b := Gt(Field(1), Const(types.Int(2)))
	c := Lt(Field(2), Const(types.Int(3)))
	all := And(a, b, c)
	cs := Conjuncts(all)
	if len(cs) != 3 {
		t.Fatalf("Conjuncts = %d, want 3", len(cs))
	}
	if Conjuncts(nil) != nil {
		t.Error("Conjuncts(nil)")
	}
	if got := Conjuncts(a); len(got) != 1 || got[0] != a {
		t.Error("single conjunct")
	}
	if And() != nil {
		t.Error("And() should be nil")
	}
	if And(nil, a, nil) != a {
		t.Error("And with nils should collapse")
	}
}

func TestFieldsUsed(t *testing.T) {
	e := And(Eq(Field(3), Const(types.Int(1))), Or(Gt(Field(1), Field(3)), IsNull(Field(0))))
	got := FieldsUsed(e)
	if !reflect.DeepEqual(got, []int{0, 1, 3}) {
		t.Fatalf("FieldsUsed = %v", got)
	}
	if FieldsUsed(nil) != nil && len(FieldsUsed(nil)) != 0 {
		t.Error("FieldsUsed(nil)")
	}
}

func TestMatchFieldCompare(t *testing.T) {
	fc, ok := MatchFieldCompare(Eq(Field(2), Const(types.Int(7))))
	if !ok || fc.Field != 2 || fc.Op != OpEq || fc.Value.AsInt() != 7 {
		t.Fatalf("MatchFieldCompare = %+v, %v", fc, ok)
	}
	// Flipped operand order must flip the operator.
	fc, ok = MatchFieldCompare(Lt(Const(types.Int(7)), Field(1)))
	if !ok || fc.Field != 1 || fc.Op != OpGt {
		t.Fatalf("flipped MatchFieldCompare = %+v, %v", fc, ok)
	}
	if _, ok := MatchFieldCompare(And(Field(0), Field(1))); ok {
		t.Error("AND should not match")
	}
	if _, ok := MatchFieldCompare(Eq(Field(0), Field(1))); ok {
		t.Error("field-field should not match")
	}
	if _, ok := MatchFieldCompare(nil); ok {
		t.Error("nil should not match")
	}
}

func randExpr(r *rand.Rand, depth int) *Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(3) {
		case 0:
			return Const(types.Int(r.Int63n(100)))
		case 1:
			return Field(r.Intn(5))
		default:
			return Param(r.Intn(3))
		}
	}
	switch r.Intn(8) {
	case 0:
		return Eq(randExpr(r, depth-1), randExpr(r, depth-1))
	case 1:
		return Lt(randExpr(r, depth-1), randExpr(r, depth-1))
	case 2:
		return And(randExpr(r, depth-1), randExpr(r, depth-1))
	case 3:
		return Or(randExpr(r, depth-1), randExpr(r, depth-1))
	case 4:
		return Not(randExpr(r, depth-1))
	case 5:
		return Add(randExpr(r, depth-1), randExpr(r, depth-1))
	case 6:
		return IsNull(randExpr(r, depth-1))
	default:
		return Call("f", randExpr(r, depth-1), randExpr(r, depth-1))
	}
}

func exprEqual(a, b *Expr) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Op != b.Op || a.Field != b.Field || a.Name != b.Name || !types.Equal(a.Val, b.Val) || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if !exprEqual(a.Args[i], b.Args[i]) {
			return false
		}
	}
	return true
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		e := randExpr(r, 4)
		enc := e.AppendEncode(nil)
		got, n, err := Decode(enc)
		if err != nil || n != len(enc) {
			t.Fatalf("decode %s: %v (n=%d/%d)", e, err, n, len(enc))
		}
		if !exprEqual(e, got) {
			t.Fatalf("round trip mismatch: %s -> %s", e, got)
		}
	}
	// nil round-trips
	enc := (*Expr)(nil).AppendEncode(nil)
	got, n, err := Decode(enc)
	if err != nil || got != nil || n != 1 {
		t.Fatal("nil expr round trip")
	}
	// error cases
	for _, b := range [][]byte{{}, {200}, {byte(OpField), 0}, {byte(OpFunc), 0}} {
		if _, _, err := Decode(b); err == nil {
			t.Errorf("Decode(%v) should fail", b)
		}
	}
}

func TestString(t *testing.T) {
	e := And(Eq(NamedField(0, "id"), Const(types.Int(3))), Gt(Field(1), Param(0)))
	got := e.String()
	want := "((id = 3) AND ($1 > ?0))"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if (*Expr)(nil).String() != "TRUE" {
		t.Error("nil String")
	}
	if Call("f", Field(0)).String() != "f($0)" {
		t.Error("func String")
	}
	if IsNull(Field(0)).String() != "($0) IS NULL" {
		t.Error("isnull String")
	}
	if Not(Field(0)).String() != "NOT ($0)" {
		t.Error("not String")
	}
}

func TestBoxPredicates(t *testing.T) {
	big := NewBox(0, 0, 10, 10)
	small := NewBox(2, 2, 3, 3)
	off := NewBox(20, 20, 30, 30)
	touch := NewBox(10, 0, 20, 10)

	if !big.Encloses(small) || small.Encloses(big) {
		t.Error("Encloses")
	}
	if !big.Overlaps(small) || !big.Overlaps(touch) || big.Overlaps(off) {
		t.Error("Overlaps")
	}
	if big.Area() != 100 {
		t.Error("Area")
	}
	u := small.Union(off)
	if !u.Encloses(small) || !u.Encloses(off) {
		t.Error("Union")
	}
	if small.Enlargement(small) != 0 {
		t.Error("Enlargement of self should be 0")
	}
	// Corner normalisation
	n := NewBox(5, 6, 1, 2)
	if n.XMin != 1 || n.YMin != 2 || n.XMax != 5 || n.YMax != 6 {
		t.Error("NewBox normalisation")
	}
	if n.String() == "" {
		t.Error("Box String")
	}
}

func TestBoxValueRoundTrip(t *testing.T) {
	b := NewBox(1.5, -2, 3, 4.25)
	got, err := DecodeBox(b.Value())
	if err != nil || got != b {
		t.Fatalf("box round trip: %v %v", got, err)
	}
	if _, err := DecodeBox(types.Int(3)); err == nil {
		t.Error("non-bytes box should fail")
	}
	if _, err := DecodeBox(types.Bytes(make([]byte, 5))); err == nil {
		t.Error("short box should fail")
	}
}

func TestSpatialExprEval(t *testing.T) {
	rec := types.Record{NewBox(2, 2, 3, 3).Value()}
	q := NewBox(0, 0, 10, 10)
	enc := Encloses(Const(q.Value()), Field(0))
	if !evalOn(t, enc, rec).AsBool() {
		t.Error("ENCLOSES should hold")
	}
	ovl := Overlaps(Field(0), Const(NewBox(2.5, 2.5, 9, 9).Value()))
	if !evalOn(t, ovl, rec).AsBool() {
		t.Error("OVERLAPS should hold")
	}
	none := Overlaps(Field(0), Const(NewBox(8, 8, 9, 9).Value()))
	if evalOn(t, none, rec).AsBool() {
		t.Error("OVERLAPS should not hold")
	}
	// NULL operand yields false
	nullRec := types.Record{types.Null()}
	if evalOn(t, Encloses(Const(q.Value()), Field(0)), nullRec).AsBool() {
		t.Error("ENCLOSES with NULL should be false")
	}
	// Bad box errors
	badRec := types.Record{types.Str("not a box")}
	if _, err := ev.Eval(Encloses(Const(q.Value()), Field(0)), badRec, nil); err == nil {
		t.Error("bad box should error")
	}
}

func TestOpString(t *testing.T) {
	if OpEq.String() != "=" || Op(200).String() == "" {
		t.Error("Op.String")
	}
}
