package expr

import (
	"encoding/binary"
	"fmt"
	"math"

	"dmx/internal/types"
)

// Box is a 2-D axis-aligned rectangle used by the spatial predicates
// ENCLOSES and OVERLAPS and by the R-tree access path attachment. Boxes
// travel through the common record representation as 32-byte BYTES values.
type Box struct {
	XMin, YMin, XMax, YMax float64
}

// NewBox returns a box, normalising the corner order.
func NewBox(x1, y1, x2, y2 float64) Box {
	if x2 < x1 {
		x1, x2 = x2, x1
	}
	if y2 < y1 {
		y1, y2 = y2, y1
	}
	return Box{XMin: x1, YMin: y1, XMax: x2, YMax: y2}
}

// Encloses reports whether b fully contains o.
func (b Box) Encloses(o Box) bool {
	return b.XMin <= o.XMin && b.YMin <= o.YMin && b.XMax >= o.XMax && b.YMax >= o.YMax
}

// Overlaps reports whether b and o intersect (boundary contact counts).
func (b Box) Overlaps(o Box) bool {
	return b.XMin <= o.XMax && o.XMin <= b.XMax && b.YMin <= o.YMax && o.YMin <= b.YMax
}

// Area returns the box area.
func (b Box) Area() float64 { return (b.XMax - b.XMin) * (b.YMax - b.YMin) }

// Union returns the minimal box covering b and o.
func (b Box) Union(o Box) Box {
	return Box{
		XMin: math.Min(b.XMin, o.XMin),
		YMin: math.Min(b.YMin, o.YMin),
		XMax: math.Max(b.XMax, o.XMax),
		YMax: math.Max(b.YMax, o.YMax),
	}
}

// Enlargement returns the area growth needed for b to cover o.
func (b Box) Enlargement(o Box) float64 { return b.Union(o).Area() - b.Area() }

// String renders the box for diagnostics.
func (b Box) String() string {
	return fmt.Sprintf("[%g,%g %g,%g]", b.XMin, b.YMin, b.XMax, b.YMax)
}

// Value encodes the box as a BYTES field value.
func (b Box) Value() types.Value {
	buf := make([]byte, 32)
	binary.BigEndian.PutUint64(buf[0:], math.Float64bits(b.XMin))
	binary.BigEndian.PutUint64(buf[8:], math.Float64bits(b.YMin))
	binary.BigEndian.PutUint64(buf[16:], math.Float64bits(b.XMax))
	binary.BigEndian.PutUint64(buf[24:], math.Float64bits(b.YMax))
	return types.Bytes(buf)
}

// DecodeBox decodes a box from a BYTES field value.
func DecodeBox(v types.Value) (Box, error) {
	if v.K != types.KindBytes || len(v.B) != 32 {
		return Box{}, fmt.Errorf("expr: value %v is not a 32-byte box", v)
	}
	return Box{
		XMin: math.Float64frombits(binary.BigEndian.Uint64(v.B[0:])),
		YMin: math.Float64frombits(binary.BigEndian.Uint64(v.B[8:])),
		XMax: math.Float64frombits(binary.BigEndian.Uint64(v.B[16:])),
		YMax: math.Float64frombits(binary.BigEndian.Uint64(v.B[24:])),
	}, nil
}
