package buffer

import (
	"errors"
	"testing"

	"dmx/internal/pagefile"
	"dmx/internal/wal"
)

// faultDisk wraps a MemDisk and injects failures on demand.
type faultDisk struct {
	*pagefile.MemDisk
	failRead  bool
	failWrite bool
}

var errInjected = errors.New("injected disk fault")

func (d *faultDisk) ReadPage(id pagefile.PageID, buf []byte) error {
	if d.failRead {
		return errInjected
	}
	return d.MemDisk.ReadPage(id, buf)
}

func (d *faultDisk) WritePage(id pagefile.PageID, buf []byte) error {
	if d.failWrite {
		return errInjected
	}
	return d.MemDisk.WritePage(id, buf)
}

func newPool(t *testing.T, capacity, pages int) (*Pool, *pagefile.MemDisk) {
	t.Helper()
	d := pagefile.NewMemDisk()
	for i := 0; i < pages; i++ {
		if _, err := d.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	return NewPool(d, capacity), d
}

func TestPinMissThenHit(t *testing.T) {
	p, _ := newPool(t, 4, 2)
	f, err := p.Pin(0)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(f, false)
	f2, err := p.Pin(0)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(f2, false)
	s := p.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if f != f2 {
		t.Fatal("hit should return the same frame")
	}
}

func TestDirtyWritebackOnEviction(t *testing.T) {
	p, d := newPool(t, 1, 3)
	f, _ := p.Pin(0)
	f.Data[0] = 0x5A
	p.Unpin(f, true)

	// Pinning another page evicts page 0, writing it back.
	g, _ := p.Pin(1)
	p.Unpin(g, false)
	if p.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", p.Stats().Evictions)
	}
	buf := make([]byte, pagefile.PageSize)
	d.ReadPage(0, buf)
	if buf[0] != 0x5A {
		t.Fatal("dirty page not written back on eviction")
	}

	// Re-pin page 0: contents must round trip through disk.
	h, _ := p.Pin(0)
	if h.Data[0] != 0x5A {
		t.Fatal("contents lost after eviction")
	}
	p.Unpin(h, false)
}

func TestCleanEvictionSkipsWrite(t *testing.T) {
	p, d := newPool(t, 1, 2)
	f, _ := p.Pin(0)
	p.Unpin(f, false)
	g, _ := p.Pin(1)
	p.Unpin(g, false)
	if d.Stats().Writes != 0 {
		t.Fatal("clean eviction should not write")
	}
}

func TestPoolExhaustion(t *testing.T) {
	p, _ := newPool(t, 2, 3)
	a, _ := p.Pin(0)
	b, _ := p.Pin(1)
	if _, err := p.Pin(2); err == nil {
		t.Fatal("pinning beyond capacity with all frames pinned should fail")
	}
	p.Unpin(a, false)
	c, err := p.Pin(2)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(b, false)
	p.Unpin(c, false)
}

func TestLRUOrder(t *testing.T) {
	p, _ := newPool(t, 2, 3)
	a, _ := p.Pin(0)
	p.Unpin(a, false)
	b, _ := p.Pin(1)
	p.Unpin(b, false)
	// Touch page 0 so page 1 is LRU.
	a2, _ := p.Pin(0)
	p.Unpin(a2, false)
	c, _ := p.Pin(2) // must evict page 1
	p.Unpin(c, false)
	// Page 0 should still be a hit.
	hitsBefore := p.Stats().Hits
	f, _ := p.Pin(0)
	p.Unpin(f, false)
	if p.Stats().Hits != hitsBefore+1 {
		t.Fatal("page 0 should have remained pooled (page 1 was LRU)")
	}
}

func TestNewPage(t *testing.T) {
	p, d := newPool(t, 4, 0)
	f, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != 0 || d.NumPages() != 1 {
		t.Fatalf("NewPage id=%d pages=%d", f.ID, d.NumPages())
	}
	f.Data[3] = 0x77
	p.Unpin(f, true)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, pagefile.PageSize)
	d.ReadPage(0, buf)
	if buf[3] != 0x77 {
		t.Fatal("FlushAll did not persist")
	}
}

func TestMultiplePins(t *testing.T) {
	p, _ := newPool(t, 2, 2)
	f1, _ := p.Pin(0)
	f2, _ := p.Pin(0)
	if f1 != f2 {
		t.Fatal("same page should share a frame")
	}
	p.Unpin(f1, false)
	if p.PinnedCount() != 1 {
		t.Fatal("frame should still be pinned once")
	}
	p.Unpin(f2, false)
	if p.PinnedCount() != 0 {
		t.Fatal("frame should be unpinned")
	}
}

func TestUnpinUnderflowReturnsError(t *testing.T) {
	// Regression: Unpin used to decrement before validating, corrupting the
	// pin count and panicking; now the call is rejected up front and the
	// frame state is untouched.
	p, _ := newPool(t, 2, 1)
	f, _ := p.Pin(0)
	if err := p.Unpin(f, false); err != nil {
		t.Fatal(err)
	}
	if err := p.Unpin(f, false); err == nil {
		t.Fatal("expected error on unpin underflow")
	}
	// The frame must still be usable: pin/unpin cycle works and the LRU
	// list holds it exactly once (a double insert would corrupt eviction).
	g, err := p.Pin(0)
	if err != nil {
		t.Fatal(err)
	}
	if g != f {
		t.Fatal("frame identity lost after rejected unpin")
	}
	if err := p.Unpin(g, false); err != nil {
		t.Fatal(err)
	}
	if p.PinnedCount() != 0 {
		t.Fatalf("pinned = %d after matched unpin", p.PinnedCount())
	}
}

// TestShardedPoolBasics drives a pool large enough to shard (capacity >=
// 64) through miss/hit/evict traffic on many pages.
func TestShardedPoolBasics(t *testing.T) {
	p, _ := newPool(t, 64, 200)
	for round := 0; round < 2; round++ {
		for i := 0; i < 200; i++ {
			f, err := p.Pin(pagefile.PageID(i))
			if err != nil {
				t.Fatalf("pin %d: %v", i, err)
			}
			f.Data[0] = byte(i)
			if err := p.Unpin(f, true); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Evictions == 0 {
		t.Fatal("200 pages through 64 frames should evict")
	}
	// Every page round-trips its contents.
	for i := 0; i < 200; i++ {
		f, err := p.Pin(pagefile.PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		if f.Data[0] != byte(i) {
			t.Fatalf("page %d contents lost across eviction", i)
		}
		if err := p.Unpin(f, false); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWALBeforeData asserts the write-ahead rule: a dirty stamped frame
// must not reach disk before the log is forced up to its page LSN.
func TestWALBeforeData(t *testing.T) {
	p, _ := newPool(t, 1, 2)
	var forcedTo []wal.LSN
	p.SetLogForcer(func(lsn wal.LSN) error {
		forcedTo = append(forcedTo, lsn)
		return nil
	})
	f, _ := p.Pin(0)
	f.Data[0] = 1
	p.StampLSN(f, 42)
	if err := p.Unpin(f, true); err != nil {
		t.Fatal(err)
	}
	// Evicting page 0 must force the log to LSN 42 first.
	g, err := p.Pin(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(forcedTo) != 1 || forcedTo[0] != 42 {
		t.Fatalf("eviction forced %v, want [42]", forcedTo)
	}
	g.Data[0] = 2
	if err := p.Unpin(g, true); err != nil {
		t.Fatal(err)
	}
	// FlushAll of an unstamped dirty frame forces conservatively (LSN 0).
	forcedTo = nil
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if len(forcedTo) != 1 || forcedTo[0] != 0 {
		t.Fatalf("flush forced %v, want [0]", forcedTo)
	}
}

// TestWALBeforeDataForceFailureBlocksWrite asserts a failed log force
// keeps the dirty page off disk.
func TestWALBeforeDataForceFailureBlocksWrite(t *testing.T) {
	d := pagefile.NewMemDisk()
	for i := 0; i < 2; i++ {
		d.Allocate()
	}
	p := NewPool(d, 1)
	p.SetLogForcer(func(lsn wal.LSN) error { return errInjected })
	f, _ := p.Pin(0)
	f.Data[0] = 0x33
	p.StampLSN(f, 7)
	if err := p.Unpin(f, true); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Pin(1); !errors.Is(err, errInjected) {
		t.Fatalf("eviction with failing force = %v, want injected error", err)
	}
	if d.Stats().Writes != 0 {
		t.Fatal("dirty page reached disk before the log was forced")
	}
}

func TestPinMissingPageFails(t *testing.T) {
	p, _ := newPool(t, 2, 1)
	if _, err := p.Pin(42); err == nil {
		t.Fatal("pin of nonexistent page should fail")
	}
	// Failure must not leak a frame.
	f, err := p.Pin(0)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(f, false)
}

func TestNewPageExhaustedPoolDoesNotLeakPage(t *testing.T) {
	// Regression: NewPage used to allocate the disk page before securing a
	// frame, so a pool exhausted by pinned frames leaked the new page.
	p, d := newPool(t, 2, 2)
	a, _ := p.Pin(0)
	b, _ := p.Pin(1)
	before := d.NumPages()
	if _, err := p.NewPage(); err == nil {
		t.Fatal("NewPage with all frames pinned should fail")
	}
	if d.NumPages() != before {
		t.Fatalf("failed NewPage leaked a disk page: %d -> %d pages", before, d.NumPages())
	}
	// After releasing a pin the same call must succeed.
	p.Unpin(a, false)
	f, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	if d.NumPages() != before+1 {
		t.Fatalf("pages = %d, want %d", d.NumPages(), before+1)
	}
	p.Unpin(f, true)
	p.Unpin(b, false)
}

func TestPinReadFailureDiscardsFrame(t *testing.T) {
	d := &faultDisk{MemDisk: pagefile.NewMemDisk()}
	if _, err := d.Allocate(); err != nil {
		t.Fatal(err)
	}
	p := NewPool(d, 2)
	d.failRead = true
	if _, err := p.Pin(0); !errors.Is(err, errInjected) {
		t.Fatalf("Pin error = %v, want injected fault", err)
	}
	// The half-initialised frame must not stay pooled: a retry after the
	// fault clears must re-read from disk, not hit stale zeroes.
	d.failRead = false
	buf := make([]byte, pagefile.PageSize)
	buf[0] = 0xEE
	if err := d.WritePage(0, buf); err != nil {
		t.Fatal(err)
	}
	f, err := p.Pin(0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Data[0] != 0xEE {
		t.Fatal("failed Pin left a stale frame in the pool")
	}
	p.Unpin(f, false)
}

func TestEvictionWritebackFailure(t *testing.T) {
	d := &faultDisk{MemDisk: pagefile.NewMemDisk()}
	for i := 0; i < 2; i++ {
		if _, err := d.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	p := NewPool(d, 1)
	f, _ := p.Pin(0)
	f.Data[0] = 0x11
	p.Unpin(f, true)

	d.failWrite = true
	if _, err := p.Pin(1); !errors.Is(err, errInjected) {
		t.Fatalf("Pin error = %v, want injected write-back fault", err)
	}
	// The dirty victim must survive the failed eviction with its data.
	d.failWrite = false
	g, err := p.Pin(0)
	if err != nil {
		t.Fatal(err)
	}
	if g.Data[0] != 0x11 {
		t.Fatal("dirty frame lost after failed write-back")
	}
	p.Unpin(g, false)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, pagefile.PageSize)
	d.ReadPage(0, buf)
	if buf[0] != 0x11 {
		t.Fatal("dirty page never reached disk")
	}
}

func TestFlushAllWriteFailure(t *testing.T) {
	d := &faultDisk{MemDisk: pagefile.NewMemDisk()}
	if _, err := d.Allocate(); err != nil {
		t.Fatal(err)
	}
	p := NewPool(d, 2)
	f, _ := p.Pin(0)
	f.Data[0] = 0x22
	p.Unpin(f, true)
	d.failWrite = true
	if err := p.FlushAll(); !errors.Is(err, errInjected) {
		t.Fatalf("FlushAll error = %v, want injected fault", err)
	}
	// Frame stays dirty; a later flush must still persist it.
	d.failWrite = false
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, pagefile.PageSize)
	d.ReadPage(0, buf)
	if buf[0] != 0x22 {
		t.Fatal("page not persisted after retried FlushAll")
	}
}

func TestDiskAccessor(t *testing.T) {
	d := pagefile.NewMemDisk()
	p := NewPool(d, 0) // capacity clamps to 1
	if p.Disk() != d {
		t.Fatal("Disk accessor")
	}
	f, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(f, false)
}
