// Package buffer implements the shared buffer pool.
//
// Storage methods and attachments with paged representations pin pages in
// the pool, read or mutate the frame contents in place (the common
// predicate-evaluation service is invoked on these buffer-resident field
// values, so qualifying records need never be copied out just to be
// filtered), mark them dirty, and unpin them. Clean and dirty frames are
// evicted LRU when the pool is full.
package buffer

import (
	"container/list"
	"fmt"
	"sync"

	"dmx/internal/fault"
	"dmx/internal/obs"
	"dmx/internal/pagefile"
)

// Frame is a pooled page. The Data slice aliases pool memory; it is valid
// only while the frame is pinned.
type Frame struct {
	ID    pagefile.PageID
	Data  []byte
	pins  int
	dirty bool
	lru   *list.Element
}

// Stats counts pool traffic.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

// Pool is a fixed-capacity page buffer over one Disk. It is safe for
// concurrent use; callers serialise access to a given page's contents with
// the lock manager. Traffic counters live in an obs.BufferStats so the
// pool appears in the engine-wide metrics snapshot.
type Pool struct {
	mu       sync.Mutex
	disk     pagefile.Disk
	capacity int
	frames   map[pagefile.PageID]*Frame
	lru      *list.List // unpinned frames, front = LRU victim
	obs      *obs.BufferStats
	faults   *fault.Injector
}

// NewPool returns a pool of the given frame capacity over disk.
func NewPool(disk pagefile.Disk, capacity int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	return &Pool{
		disk:     disk,
		capacity: capacity,
		frames:   make(map[pagefile.PageID]*Frame, capacity),
		lru:      list.New(),
		obs:      &obs.BufferStats{},
	}
}

// SetObs points the pool's instrumentation at a shared metric registry.
// Call at assembly, before traffic.
func (p *Pool) SetObs(bs *obs.BufferStats) {
	if bs == nil {
		return
	}
	p.mu.Lock()
	p.obs = bs
	p.mu.Unlock()
}

// SetFaults arms the pool's dirty-page write-back crash site with a
// fault injector (testing).
func (p *Pool) SetFaults(in *fault.Injector) {
	p.mu.Lock()
	p.faults = in
	p.mu.Unlock()
}

// Disk returns the underlying device.
func (p *Pool) Disk() pagefile.Disk { return p.disk }

// Pin fetches the page into the pool (reading from disk on a miss) and
// pins it. Every Pin must be matched by an Unpin.
func (p *Pool) Pin(id pagefile.PageID) (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.frames[id]; ok {
		p.obs.Hits.Inc()
		p.pinLocked(f)
		return f, nil
	}
	p.obs.Misses.Inc()
	f, err := p.frameForLocked(id)
	if err != nil {
		return nil, err
	}
	if err := p.disk.ReadPage(id, f.Data); err != nil {
		p.discardLocked(f)
		return nil, err
	}
	return f, nil
}

// NewPage allocates a fresh zero page on disk and returns it pinned. A
// frame is secured before the disk page is allocated, so a pool exhausted
// by pinned frames fails cleanly instead of leaking the allocated page.
func (p *Pool) NewPage() (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.frames) >= p.capacity {
		if err := p.evictLocked(); err != nil {
			return nil, err
		}
	}
	id, err := p.disk.Allocate()
	if err != nil {
		return nil, err
	}
	f := &Frame{ID: id, Data: make([]byte, pagefile.PageSize), pins: 1}
	p.frames[id] = f
	f.dirty = true
	return f, nil
}

// frameForLocked finds or evicts a frame for id and returns it pinned with
// undefined contents.
func (p *Pool) frameForLocked(id pagefile.PageID) (*Frame, error) {
	if len(p.frames) >= p.capacity {
		if err := p.evictLocked(); err != nil {
			return nil, err
		}
	}
	f := &Frame{ID: id, Data: make([]byte, pagefile.PageSize), pins: 1}
	p.frames[id] = f
	return f, nil
}

func (p *Pool) evictLocked() error {
	el := p.lru.Front()
	if el == nil {
		return fmt.Errorf("buffer: pool exhausted: all %d frames pinned", p.capacity)
	}
	victim := el.Value.(*Frame)
	if victim.dirty {
		if err := p.faults.Hit(fault.SiteBufFlush); err != nil {
			return err
		}
		if err := p.disk.WritePage(victim.ID, victim.Data); err != nil {
			return err
		}
		victim.dirty = false
	}
	p.lru.Remove(el)
	victim.lru = nil
	delete(p.frames, victim.ID)
	p.obs.Evictions.Inc()
	return nil
}

func (p *Pool) pinLocked(f *Frame) {
	if f.lru != nil {
		p.lru.Remove(f.lru)
		f.lru = nil
	}
	f.pins++
}

func (p *Pool) discardLocked(f *Frame) {
	delete(p.frames, f.ID)
}

// Unpin releases one pin; dirty records that the caller mutated the frame.
// Fully unpinned frames become eviction candidates.
func (p *Pool) Unpin(f *Frame, dirty bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if dirty {
		f.dirty = true
	}
	f.pins--
	if f.pins < 0 {
		panic("buffer: unpin of unpinned frame")
	}
	if f.pins == 0 {
		f.lru = p.lru.PushBack(f)
	}
}

// FlushAll writes every dirty frame back to disk (frames stay pooled).
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.frames {
		if f.dirty {
			if err := p.faults.Hit(fault.SiteBufFlush); err != nil {
				return err
			}
			if err := p.disk.WritePage(f.ID, f.Data); err != nil {
				return err
			}
			f.dirty = false
			p.obs.Flushes.Inc()
		}
	}
	return nil
}

// Stats returns cumulative pool statistics.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Hits:      p.obs.Hits.Load(),
		Misses:    p.obs.Misses.Load(),
		Evictions: p.obs.Evictions.Load(),
	}
}

// PinnedCount returns the number of frames currently pinned (for tests).
func (p *Pool) PinnedCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, f := range p.frames {
		if f.pins > 0 {
			n++
		}
	}
	return n
}
