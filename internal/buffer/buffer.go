// Package buffer implements the shared buffer pool.
//
// Storage methods and attachments with paged representations pin pages in
// the pool, read or mutate the frame contents in place (the common
// predicate-evaluation service is invoked on these buffer-resident field
// values, so qualifying records need never be copied out just to be
// filtered), mark them dirty, and unpin them. Clean and dirty frames are
// evicted LRU when the pool is full.
//
// The pool is a steal buffer: dirty pages of uncommitted transactions may
// be written back at eviction. The write-ahead rule therefore applies —
// mutators stamp frames with the LSN of the log record covering the
// mutation (Frame page LSN), and the pool forces the log up to that LSN
// through its log forcer before a dirty page leaves for disk. A dirty
// frame with no stamp (recovery replay, page formatting) conservatively
// forces the whole log.
//
// To keep concurrent pin traffic from serialising on one mutex, the frame
// table and LRU list are sharded by page ID for pools of at least
// shardThreshold frames; tiny pools (tests, tightly bounded caches) keep a
// single shard so capacity semantics stay exact.
package buffer

import (
	"container/list"
	"fmt"
	"sort"
	"sync"

	"dmx/internal/fault"
	"dmx/internal/obs"
	"dmx/internal/pagefile"
	"dmx/internal/wal"
)

// Frame is a pooled page. The Data slice aliases pool memory; it is valid
// only while the frame is pinned.
type Frame struct {
	ID    pagefile.PageID
	Data  []byte
	pins  int
	dirty bool
	lsn   wal.LSN // page LSN: newest log record covering a mutation
	lru   *list.Element
}

// Stats counts pool traffic.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

// numShards is the shard count for large pools; shardThreshold is the
// minimum capacity at which sharding engages (below it a single shard
// preserves exact whole-pool capacity and LRU semantics).
const (
	numShards      = 8
	shardThreshold = 64
)

// shard is one hash partition of the frame table with its own LRU list
// and capacity slice.
type shard struct {
	mu     sync.Mutex
	frames map[pagefile.PageID]*Frame
	lru    *list.List // unpinned frames, front = LRU victim
	cap    int
}

// Pool is a fixed-capacity page buffer over one Disk. It is safe for
// concurrent use; callers serialise access to a given page's contents with
// the lock manager. Traffic counters live in an obs.BufferStats so the
// pool appears in the engine-wide metrics snapshot.
type Pool struct {
	disk     pagefile.Disk
	capacity int
	shards   []*shard

	// Assembly-time configuration, written under every shard lock so
	// hot-path reads under any one shard lock are race-free.
	obs      *obs.BufferStats
	faults   *fault.Injector
	forceLog func(wal.LSN) error // WAL-before-data hook; 0 forces everything

	// Pages allocated by NewPage whose shard had no evictable frame; kept
	// for reuse so a transient full shard does not leak disk pages.
	strandMu sync.Mutex
	stranded []pagefile.PageID
}

// NewPool returns a pool of the given frame capacity over disk.
func NewPool(disk pagefile.Disk, capacity int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	n := 1
	if capacity >= shardThreshold {
		n = numShards
	}
	p := &Pool{
		disk:     disk,
		capacity: capacity,
		shards:   make([]*shard, n),
		obs:      &obs.BufferStats{},
	}
	for i := range p.shards {
		c := capacity / n
		if i < capacity%n {
			c++
		}
		p.shards[i] = &shard{
			frames: make(map[pagefile.PageID]*Frame, c),
			lru:    list.New(),
			cap:    c,
		}
	}
	return p
}

func (p *Pool) shardFor(id pagefile.PageID) *shard {
	return p.shards[uint64(id)%uint64(len(p.shards))]
}

// configure runs fn with every shard lock held, publishing assembly-time
// configuration to all hot paths.
func (p *Pool) configure(fn func()) {
	for _, sh := range p.shards {
		sh.mu.Lock()
	}
	fn()
	for _, sh := range p.shards {
		sh.mu.Unlock()
	}
}

// SetObs points the pool's instrumentation at a shared metric registry.
// Call at assembly, before traffic.
func (p *Pool) SetObs(bs *obs.BufferStats) {
	if bs == nil {
		return
	}
	p.configure(func() { p.obs = bs })
}

// SetFaults arms the pool's dirty-page write-back crash site with a
// fault injector (testing).
func (p *Pool) SetFaults(in *fault.Injector) {
	p.configure(func() { p.faults = in })
}

// SetLogForcer installs the WAL-before-data hook: before a dirty frame is
// written back, the pool calls force with the frame's page LSN (0 for an
// unstamped frame, meaning "force everything appended so far"). Call at
// assembly, before traffic.
func (p *Pool) SetLogForcer(force func(wal.LSN) error) {
	p.configure(func() { p.forceLog = force })
}

// Disk returns the underlying device.
func (p *Pool) Disk() pagefile.Disk { return p.disk }

// PinStats describes what one Pin cost: whether the page missed (was
// read from disk) and whether satisfying it evicted a victim frame.
// Callers that trace their transactions use it to attribute buffer
// faults to the operation that caused them.
type PinStats struct {
	Miss    bool
	Evicted bool
}

// Pin fetches the page into the pool (reading from disk on a miss) and
// pins it. Every Pin must be matched by an Unpin.
func (p *Pool) Pin(id pagefile.PageID) (*Frame, error) {
	f, _, err := p.PinWithStats(id)
	return f, err
}

// PinWithStats is Pin, additionally reporting what the pin cost.
func (p *Pool) PinWithStats(id pagefile.PageID) (*Frame, PinStats, error) {
	sh := p.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if f, ok := sh.frames[id]; ok {
		p.obs.Hits.Inc()
		sh.pinLocked(f)
		return f, PinStats{}, nil
	}
	p.obs.Misses.Inc()
	st := PinStats{Miss: true, Evicted: len(sh.frames) >= sh.cap}
	f, err := p.frameForLocked(sh, id)
	if err != nil {
		return nil, st, err
	}
	if err := p.disk.ReadPage(id, f.Data); err != nil {
		delete(sh.frames, f.ID)
		return nil, st, err
	}
	return f, st, nil
}

// NewPage allocates a fresh zero page on disk and returns it pinned. For a
// single-shard pool a frame is secured before the disk page is allocated,
// so a pool exhausted by pinned frames fails cleanly instead of leaking
// the allocated page; a sharded pool cannot know the target shard before
// allocating, so a page stranded by a full shard is kept and reused by a
// later NewPage instead of leaking.
func (p *Pool) NewPage() (*Frame, error) {
	if len(p.shards) == 1 {
		sh := p.shards[0]
		sh.mu.Lock()
		defer sh.mu.Unlock()
		if len(sh.frames) >= sh.cap {
			if err := p.evictLocked(sh); err != nil {
				return nil, err
			}
		}
		id, err := p.disk.Allocate()
		if err != nil {
			return nil, err
		}
		f := &Frame{ID: id, Data: make([]byte, pagefile.PageSize), pins: 1, dirty: true}
		sh.frames[id] = f
		return f, nil
	}

	id, err := p.reservePageID()
	if err != nil {
		return nil, err
	}
	sh := p.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.frames) >= sh.cap {
		if err := p.evictLocked(sh); err != nil {
			p.strandMu.Lock()
			p.stranded = append(p.stranded, id)
			p.strandMu.Unlock()
			return nil, err
		}
	}
	f := &Frame{ID: id, Data: make([]byte, pagefile.PageSize), pins: 1, dirty: true}
	sh.frames[id] = f
	return f, nil
}

// reservePageID reuses a stranded page if one exists, else allocates.
func (p *Pool) reservePageID() (pagefile.PageID, error) {
	p.strandMu.Lock()
	if n := len(p.stranded); n > 0 {
		id := p.stranded[n-1]
		p.stranded = p.stranded[:n-1]
		p.strandMu.Unlock()
		return id, nil
	}
	p.strandMu.Unlock()
	return p.disk.Allocate()
}

// frameForLocked finds or evicts a frame for id in sh and returns it
// pinned with undefined contents. Caller holds sh.mu.
func (p *Pool) frameForLocked(sh *shard, id pagefile.PageID) (*Frame, error) {
	if len(sh.frames) >= sh.cap {
		if err := p.evictLocked(sh); err != nil {
			return nil, err
		}
	}
	f := &Frame{ID: id, Data: make([]byte, pagefile.PageSize), pins: 1}
	sh.frames[id] = f
	return f, nil
}

// evictLocked writes back and drops sh's LRU victim. Dirty victims are
// subject to the write-ahead rule: the log is forced up to the victim's
// page LSN before the page reaches disk. Caller holds sh.mu.
func (p *Pool) evictLocked(sh *shard) error {
	el := sh.lru.Front()
	if el == nil {
		return fmt.Errorf("buffer: pool exhausted: all %d frames of the shard pinned (pool capacity %d)", sh.cap, p.capacity)
	}
	victim := el.Value.(*Frame)
	if victim.dirty {
		if err := p.forceForLocked(victim); err != nil {
			return err
		}
		if err := p.faults.Hit(fault.SiteBufFlush); err != nil {
			return err
		}
		if err := p.disk.WritePage(victim.ID, victim.Data); err != nil {
			return err
		}
		victim.dirty = false
	}
	sh.lru.Remove(el)
	victim.lru = nil
	delete(sh.frames, victim.ID)
	p.obs.Evictions.Inc()
	return nil
}

// forceForLocked honours WAL-before-data for one dirty frame.
func (p *Pool) forceForLocked(f *Frame) error {
	if p.forceLog == nil {
		return nil
	}
	if err := p.forceLog(f.lsn); err != nil {
		return fmt.Errorf("buffer: force log for page %d: %w", f.ID, err)
	}
	return nil
}

func (sh *shard) pinLocked(f *Frame) {
	if f.lru != nil {
		sh.lru.Remove(f.lru)
		f.lru = nil
	}
	f.pins++
}

// Unpin releases one pin; dirty records that the caller mutated the frame.
// Fully unpinned frames become eviction candidates. Unpinning a frame with
// no pins is reported as an error without corrupting the pin count or the
// LRU list.
func (p *Pool) Unpin(f *Frame, dirty bool) error {
	sh := p.shardFor(f.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if f.pins <= 0 {
		return fmt.Errorf("buffer: unpin of unpinned frame %d", f.ID)
	}
	if dirty {
		f.dirty = true
	}
	f.pins--
	if f.pins == 0 && f.lru == nil {
		f.lru = sh.lru.PushBack(f)
	}
	return nil
}

// StampLSN records that the log record at lsn covers the caller's mutation
// of f. The pool forces the log through the newest stamp before the frame
// is written back (write-ahead rule). Call while the frame is pinned.
func (p *Pool) StampLSN(f *Frame, lsn wal.LSN) {
	sh := p.shardFor(f.ID)
	sh.mu.Lock()
	if lsn > f.lsn {
		f.lsn = lsn
	}
	sh.mu.Unlock()
}

// FlushAll writes every dirty frame back to disk (frames stay pooled),
// forcing the log ahead of the writes per the write-ahead rule.
func (p *Pool) FlushAll() error {
	for _, sh := range p.shards {
		sh.mu.Lock()
		err := p.flushShardLocked(sh)
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

func (p *Pool) flushShardLocked(sh *shard) error {
	// One log force covers the shard: force to the newest stamp, or the
	// whole log if any dirty frame is unstamped.
	if p.forceLog != nil {
		var maxLSN wal.LSN
		unstamped := false
		dirty := false
		for _, f := range sh.frames {
			if !f.dirty {
				continue
			}
			dirty = true
			if f.lsn == 0 {
				unstamped = true
			} else if f.lsn > maxLSN {
				maxLSN = f.lsn
			}
		}
		if dirty {
			if unstamped {
				maxLSN = 0
			}
			if err := p.forceLog(maxLSN); err != nil {
				return fmt.Errorf("buffer: force log before flush: %w", err)
			}
		}
	}
	for _, f := range sh.frames {
		if f.dirty {
			if err := p.faults.Hit(fault.SiteBufFlush); err != nil {
				return err
			}
			if err := p.disk.WritePage(f.ID, f.Data); err != nil {
				return err
			}
			f.dirty = false
			p.obs.Flushes.Inc()
		}
	}
	return nil
}

// Stats returns cumulative pool statistics.
func (p *Pool) Stats() Stats {
	sh := p.shards[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return Stats{
		Hits:      p.obs.Hits.Load(),
		Misses:    p.obs.Misses.Load(),
		Evictions: p.obs.Evictions.Load(),
	}
}

// FrameInfo describes one resident buffer frame for introspection
// (sys.stat_buffer): which disk page it caches and its pin/dirty state.
type FrameInfo struct {
	Page   pagefile.PageID
	Pins   int
	Dirty  bool
	LSN    wal.LSN
	Shard  int
	Pinned bool
}

// FrameInfos returns a point-in-time description of every resident frame,
// shard by shard (each shard is internally consistent; the pool-wide view
// may be torn across shards while pins churn). Sorted by page ID.
func (p *Pool) FrameInfos() []FrameInfo {
	var out []FrameInfo
	for i, sh := range p.shards {
		sh.mu.Lock()
		for _, f := range sh.frames {
			out = append(out, FrameInfo{
				Page:   f.ID,
				Pins:   f.pins,
				Dirty:  f.dirty,
				LSN:    f.lsn,
				Shard:  i,
				Pinned: f.pins > 0,
			})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Page < out[j].Page })
	return out
}

// PinnedCount returns the number of frames currently pinned (for tests).
func (p *Pool) PinnedCount() int {
	n := 0
	for _, sh := range p.shards {
		sh.mu.Lock()
		for _, f := range sh.frames {
			if f.pins > 0 {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}
