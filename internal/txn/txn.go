// Package txn implements the transaction manager and the common event
// services of the data management extension architecture.
//
// Extensions participate in database events through two mechanisms the
// paper describes: per-transaction event listeners (used, for example, to
// close key-sequential scans at transaction termination and to save and
// restore scan positions around savepoints), and deferred action queues,
// on which an attachment instance can place an entry that causes an
// indicated procedure to be invoked with indicated data when the event
// occurs (e.g. evaluating an integrity constraint just before the
// transaction enters the prepared state, or completing a deferred
// storage-drop after commit).
package txn

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dmx/internal/lock"
	"dmx/internal/obs"
	"dmx/internal/trace"
	"dmx/internal/wal"
)

// State is a transaction's lifecycle state.
type State uint8

// Transaction states.
const (
	StateActive State = iota
	StatePreparing
	StateCommitted
	StateAborted
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case StateActive:
		return "ACTIVE"
	case StatePreparing:
		return "PREPARING"
	case StateCommitted:
		return "COMMITTED"
	case StateAborted:
		return "ABORTED"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Event identifies a transaction event extensions can subscribe to.
type Event uint8

// Transaction events.
const (
	// EventBeforePrepare fires after all modifications, before the
	// transaction enters the prepared state. Deferred integrity
	// constraints run here and may still veto (abort) the transaction.
	EventBeforePrepare Event = iota
	// EventCommit fires once the commit record is durable. Deferred
	// destructive actions (e.g. releasing dropped storage) run here.
	EventCommit
	// EventAbort fires when the transaction aborts, after rollback.
	EventAbort
	// EventEnd fires at transaction termination, commit or abort. All
	// key-sequential accesses must be closed here because locks are
	// released at termination.
	EventEnd
	// EventSavepoint fires when a rollback point is established; storage
	// methods and attachments save their key-sequential access positions.
	EventSavepoint
	// EventPartialRollback fires after a partial rollback completes;
	// saved scan positions are restored.
	EventPartialRollback
	numEvents
)

// String returns the event name.
func (e Event) String() string {
	switch e {
	case EventBeforePrepare:
		return "BEFORE_PREPARE"
	case EventCommit:
		return "COMMIT"
	case EventAbort:
		return "ABORT"
	case EventEnd:
		return "END"
	case EventSavepoint:
		return "SAVEPOINT"
	case EventPartialRollback:
		return "PARTIAL_ROLLBACK"
	default:
		return fmt.Sprintf("Event(%d)", uint8(e))
	}
}

// Action is a deferred action queue entry: the procedure to invoke when the
// event occurs. The transaction and the savepoint name (for savepoint
// events; otherwise empty) are passed in.
type Action func(tx *Txn, savepoint string) error

// ErrNotActive is returned for operations on finished transactions.
var ErrNotActive = errors.New("txn: transaction is not active")

// ErrUnknownSavepoint is returned by RollbackTo for undefined names.
var ErrUnknownSavepoint = errors.New("txn: unknown savepoint")

// ErrReadOnly is returned when a read-only transaction attempts a
// modification (logging a change, or establishing a savepoint, which
// writes a log record).
var ErrReadOnly = errors.New("txn: read-only transaction")

// FrozenStamp is the commit stamp of versions whose creating transaction
// predates stamp tracking (e.g. state reconstructed by recovery, or
// version chains frozen by a checkpoint). It is below every stamp the
// manager assigns, so frozen versions are visible to every snapshot.
const FrozenStamp uint64 = 1

// Snapshot is the consistent view handed to a read-only transaction: the
// committed-stamp high-water at begin time plus the set of writer
// transactions then in flight. Visibility is decided by HW alone — every
// stamp at or below it belongs to a transaction that was durably
// committed and fully version-stamped before the snapshot was taken,
// while in-flight writers either carry no stamp yet or will receive one
// above HW. InFlight is advisory (introspection, tests): it may include
// writers that finished between the two reads inside BeginReadOnly.
type Snapshot struct {
	HW       uint64
	InFlight map[wal.TxnID]struct{}
}

// Visible reports whether a version carrying the given commit stamp is
// part of this snapshot. Stamp 0 marks an uncommitted version and is
// never visible.
func (s *Snapshot) Visible(stamp uint64) bool {
	return stamp != 0 && stamp <= s.HW
}

// Manager creates and tracks transactions. It owns the ID sequence and
// wires transactions to the common log, lock manager, and undo dispatcher.
type Manager struct {
	mu     sync.Mutex
	nextID wal.TxnID
	active map[wal.TxnID]*Txn

	Log   *wal.Log
	Locks *lock.Manager
	// Undoer dispatches log-driven undo to the owning extension. It is set
	// by the extension registry once the procedure vectors are built.
	Undoer wal.Undoer
	// OnEnd, when set, runs after every transaction finishes (commit or
	// abort), outside all manager and transaction locks. The engine uses
	// it to trigger periodic log checkpoints.
	OnEnd func()

	// Commit-stamp state for MVCC snapshot reads. Stamps are assigned
	// densely, in commit-record order, under stampMu held across the
	// commit append; the high-water advances in stamp order only after
	// the owning transaction has stamped its version chains, so a
	// snapshot at HW=s never misses data from any stamp <= s.
	stampMu   sync.Mutex
	nextStamp uint64               // next stamp to assign (starts above FrozenStamp)
	stampHW   uint64               // all stamps <= stampHW are durable and fully stamped
	pending   map[uint64]bool      // assigned stamps above stampHW; true = ready to publish
	snaps     map[wal.TxnID]uint64 // open read-only snapshots: txn ID -> snapshot HW

	// history retains the ledgers of recently-finished transactions for
	// sys.stat_history; obs rolls lifecycle totals into the engine
	// metrics registry (nil until SetObs).
	history txnHistory
	obs     *obs.TxnStats
}

// NewManager returns a manager over the given log and lock manager.
func NewManager(log *wal.Log, locks *lock.Manager) *Manager {
	m := &Manager{
		nextID:    1,
		active:    make(map[wal.TxnID]*Txn),
		Log:       log,
		Locks:     locks,
		nextStamp: FrozenStamp + 1,
		stampHW:   FrozenStamp,
		pending:   make(map[uint64]bool),
		snaps:     make(map[wal.TxnID]uint64),
	}
	if locks != nil {
		locks.SetWaitSink(m.chargeLockWait)
	}
	return m
}

// Begin starts a new transaction.
func (m *Manager) Begin() *Txn {
	m.mu.Lock()
	defer m.mu.Unlock()
	tx := &Txn{
		id:         m.nextID,
		mgr:        m,
		state:      StateActive,
		savepoints: make(map[string]wal.LSN),
		stash:      make(map[string]any),
		start:      time.Now(),
	}
	m.nextID++
	m.active[tx.id] = tx
	return tx
}

// BeginReadOnly starts a read-only transaction bound to a consistent
// snapshot of the committed state. Snapshot transactions never touch the
// lock manager or the log: reads are answered from stamped record
// versions, writes are refused with ErrReadOnly, and commit/abort are
// local events.
func (m *Manager) BeginReadOnly() *Txn {
	m.mu.Lock()
	tx := &Txn{
		id:         m.nextID,
		mgr:        m,
		state:      StateActive,
		savepoints: make(map[string]wal.LSN),
		stash:      make(map[string]any),
		start:      time.Now(),
		readOnly:   true,
	}
	m.nextID++
	m.active[tx.id] = tx
	inflight := make(map[wal.TxnID]struct{}, len(m.active))
	for id, other := range m.active {
		if !other.readOnly {
			inflight[id] = struct{}{}
		}
	}
	m.mu.Unlock()

	m.stampMu.Lock()
	tx.snap = &Snapshot{HW: m.stampHW, InFlight: inflight}
	m.snaps[tx.id] = tx.snap.HW
	m.stampMu.Unlock()
	return tx
}

// StampHW returns the current committed-stamp high-water: every stamp at
// or below it is durably committed and fully version-stamped.
func (m *Manager) StampHW() uint64 {
	m.stampMu.Lock()
	defer m.stampMu.Unlock()
	return m.stampHW
}

// ActiveReadOnly returns the number of open read-only snapshots.
func (m *Manager) ActiveReadOnly() int {
	m.stampMu.Lock()
	defer m.stampMu.Unlock()
	return len(m.snaps)
}

// OldestSnapshotHW returns the smallest high-water among open snapshots,
// or the current high-water when none are open. Version chains only need
// to retain versions a snapshot at that high-water could still ask for,
// so storage methods use this as their pruning horizon.
func (m *Manager) OldestSnapshotHW() uint64 {
	m.stampMu.Lock()
	defer m.stampMu.Unlock()
	oldest := m.stampHW
	for _, hw := range m.snaps {
		if hw < oldest {
			oldest = hw
		}
	}
	return oldest
}

// RestoreStamps re-seeds the stamp sequence after restart recovery: the
// high-water becomes the largest stamp found in the recovered log (commit
// records and the checkpoint high-water), and the next stamp follows it.
// Recovery rebuilds page state for exactly the transactions whose commit
// records survived, so a post-restart snapshot at this high-water sees
// precisely those — a transaction that crashed between its commit force
// and its stamp publication is either fully in (record durable) or fully
// out (record lost), never half-published.
func (m *Manager) RestoreStamps(maxStamp uint64) {
	m.stampMu.Lock()
	defer m.stampMu.Unlock()
	if maxStamp > m.stampHW {
		m.stampHW = maxStamp
	}
	if m.stampHW >= m.nextStamp {
		m.nextStamp = m.stampHW + 1
	}
}

// publishStamp marks stamp as ready (its owner's version chains are
// stamped, or the owner is dead and its chains will be undone) and
// advances the high-water over every consecutive ready stamp.
func (m *Manager) publishStamp(stamp uint64) {
	if stamp == 0 {
		return
	}
	m.stampMu.Lock()
	m.pending[stamp] = true
	for m.pending[m.stampHW+1] {
		delete(m.pending, m.stampHW+1)
		m.stampHW++
	}
	m.stampMu.Unlock()
}

// ActiveIDs returns the IDs of all unfinished transactions (the
// active-transaction table a checkpoint records).
func (m *Manager) ActiveIDs() []wal.TxnID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]wal.TxnID, 0, len(m.active))
	for id := range m.active {
		out = append(out, id)
	}
	return out
}

// ActiveCount returns the number of unfinished transactions.
func (m *Manager) ActiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}

func (m *Manager) finish(tx *Txn, outcome string) {
	m.mu.Lock()
	delete(m.active, tx.id)
	m.mu.Unlock()
	if tx.readOnly {
		m.stampMu.Lock()
		delete(m.snaps, tx.id)
		m.stampMu.Unlock()
	}
	m.recordFinished(tx, outcome)
}

// Txn is a transaction. A Txn is confined to one goroutine.
type Txn struct {
	id          wal.TxnID
	mgr         *Manager
	state       State
	savepoints  map[string]wal.LSN
	deferred    [numEvents][]Action
	subscribers [numEvents][]Action
	stash       map[string]any
	user        string
	tr          *trace.TxnTrace

	readOnly    bool
	snap        *Snapshot
	commitStamp uint64

	start time.Time
	stats Stats
}

// ReadOnly reports whether tx is a snapshot read-only transaction.
// Nil-safe: maintenance paths (recovery, checkpoint snapshot scans) run
// with no transaction and behave as writers.
func (tx *Txn) ReadOnly() bool { return tx != nil && tx.readOnly }

// Snapshot returns the read-only transaction's snapshot; nil for writers
// and on a nil receiver.
func (tx *Txn) Snapshot() *Snapshot {
	if tx == nil {
		return nil
	}
	return tx.snap
}

// CommitStamp returns the commit stamp assigned to this transaction: 0
// until the commit record has been appended, and always 0 for read-only
// transactions. Storage methods read it from EventCommit subscribers to
// stamp the record versions the transaction created.
func (tx *Txn) CommitStamp() uint64 { return tx.commitStamp }

// SetTrace attaches a span trace to the transaction. The trace shares the
// transaction's goroutine confinement; nil (tracing off) is fine.
func (tx *Txn) SetTrace(t *trace.TxnTrace) { tx.tr = t }

// Trace returns the transaction's span trace. The receiver and the result
// may both be nil and every trace method is nil-safe, so callers use it
// unconditionally (recovery and maintenance paths run with no transaction).
func (tx *Txn) Trace() *trace.TxnTrace {
	if tx == nil {
		return nil
	}
	return tx.tr
}

// SetUser attaches a user identity for the uniform authorization facility.
func (tx *Txn) SetUser(user string) { tx.user = user }

// User returns the transaction's user identity ("" if unset).
func (tx *Txn) User() string { return tx.user }

// ID returns the transaction identifier.
func (tx *Txn) ID() wal.TxnID { return tx.id }

// State returns the lifecycle state.
func (tx *Txn) State() State { return tx.state }

// Manager returns the owning manager.
func (tx *Txn) Manager() *Manager { return tx.mgr }

// Log exposes the common log for extension logging.
func (tx *Txn) Log() *wal.Log { return tx.mgr.Log }

// Lock acquires mode on res on behalf of this transaction, held to
// transaction end.
func (tx *Txn) Lock(res lock.Resource, mode lock.Mode) error {
	if tx.state != StateActive && tx.state != StatePreparing {
		return ErrNotActive
	}
	if !tx.tr.Detailed() {
		return tx.mgr.Locks.Acquire(tx.id, res, mode)
	}
	// Traced: an uncontended grant stays below the floor and records
	// nothing; a real wait (or a deadlock refusal) becomes a span.
	start := time.Now()
	err := tx.mgr.Locks.Acquire(tx.id, res, mode)
	if d := time.Since(start); d >= trace.LockWaitFloor || err != nil {
		tx.tr.Event("lock.wait", res.String(), mode.String(), start, d, err)
	}
	return err
}

// Defer places an entry on the deferred action queue for event. Entries
// run in registration order when the event fires. Multiple entries per
// event are allowed; extensions typically deduplicate via the Stash.
func (tx *Txn) Defer(event Event, action Action) error {
	if tx.state != StateActive && tx.state != StatePreparing {
		return ErrNotActive
	}
	tx.deferred[event] = append(tx.deferred[event], action)
	return nil
}

// Subscribe registers a persistent listener for event: unlike Defer
// entries, subscribers fire every time the event occurs for the rest of
// the transaction. Storage methods and attachments subscribe to savepoint,
// partial-rollback, and end events to manage their key-sequential access
// positions.
func (tx *Txn) Subscribe(event Event, action Action) error {
	if tx.state != StateActive && tx.state != StatePreparing {
		return ErrNotActive
	}
	tx.subscribers[event] = append(tx.subscribers[event], action)
	return nil
}

// Stash returns this transaction's extension-private state map. Extensions
// key it by their own names (e.g. to accumulate deferred constraint checks
// or open scans across calls).
func (tx *Txn) Stash() map[string]any { return tx.stash }

// AppendLog writes an update record on behalf of an extension and returns
// its LSN.
func (tx *Txn) AppendLog(owner wal.Owner, payload []byte) (wal.LSN, error) {
	if tx.state != StateActive && tx.state != StatePreparing {
		return 0, ErrNotActive
	}
	if tx.readOnly {
		return 0, ErrReadOnly
	}
	if st := tx.Acct(); st != nil {
		st.WALRecords.Add(1)
		st.WALBytes.Add(int64(len(payload)))
	}
	if !tx.tr.Detailed() {
		return tx.mgr.Log.Append(tx.id, wal.RecUpdate, owner, payload)
	}
	start := time.Now()
	lsn, err := tx.mgr.Log.Append(tx.id, wal.RecUpdate, owner, payload)
	tx.tr.Event("wal.append", "", "append", start, time.Since(start), err)
	return lsn, err
}

// Savepoint establishes a named rollback point, fires EventSavepoint so
// storage methods and attachments can save their key-sequential access
// positions, and returns the savepoint LSN. Re-using a name moves it.
func (tx *Txn) Savepoint(name string) (wal.LSN, error) {
	if tx.state != StateActive {
		return 0, ErrNotActive
	}
	if tx.readOnly {
		return 0, ErrReadOnly
	}
	lsn, err := tx.mgr.Log.Append(tx.id, wal.RecSavepoint, wal.Owner{}, []byte(name))
	if err != nil {
		return 0, err
	}
	tx.savepoints[name] = lsn
	if err := tx.fire(EventSavepoint, name); err != nil {
		return 0, err
	}
	return lsn, nil
}

// RollbackTo partially rolls the transaction back to the named savepoint:
// the common log drives the storage-method and attachment undo routines,
// then EventPartialRollback fires so saved scan positions are restored.
// The savepoint remains valid and can be rolled back to again.
func (tx *Txn) RollbackTo(name string) error {
	if tx.state != StateActive {
		return ErrNotActive
	}
	lsn, ok := tx.savepoints[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSavepoint, name)
	}
	if err := tx.mgr.Log.Rollback(tx.id, lsn, tx.mgr.Undoer); err != nil {
		return err
	}
	// Savepoints established after the target are gone.
	for n, l := range tx.savepoints {
		if l > lsn {
			delete(tx.savepoints, n)
		}
	}
	return tx.fire(EventPartialRollback, name)
}

// Commit drives the commit pipeline: deferred before-prepare actions run
// first (deferred constraints may veto, turning the commit into an abort,
// in which case Commit returns the veto error); then the commit record is
// written, deferred commit actions run, locks are released, and
// end-of-transaction notifications fire.
func (tx *Txn) Commit() error {
	if tx.state != StateActive {
		return ErrNotActive
	}
	if tx.readOnly {
		return tx.finishReadOnly(StateCommitted, "committed")
	}
	tx.state = StatePreparing
	if err := tx.fire(EventBeforePrepare, ""); err != nil {
		tx.state = StateActive
		if aerr := tx.Abort(); aerr != nil {
			return fmt.Errorf("txn: abort after veto failed: %v (veto: %w)", aerr, err)
		}
		return err
	}
	// The commit stamp is assigned under stampMu held across the append,
	// so stamp order matches commit-record order and the high-water can
	// advance densely. The stamp rides in the commit record's payload;
	// recovery re-derives the high-water from it.
	tx.mgr.stampMu.Lock()
	stamp := tx.mgr.nextStamp
	tx.mgr.nextStamp++
	tx.mgr.pending[stamp] = false
	commitLSN, err := tx.mgr.Log.Append(tx.id, wal.RecCommit, wal.Owner{}, wal.EncodeCommitStamp(stamp))
	tx.mgr.stampMu.Unlock()
	if err != nil {
		tx.mgr.publishStamp(stamp)
		return tx.commitFailed(err)
	}
	// The commit point: the transaction is committed only once the commit
	// record is on stable storage. Until the force returns the caller must
	// not be told the commit succeeded, and EventCommit (whose contract
	// promises durability) must not fire. SyncCommitted group-commits:
	// concurrently arriving commit records share one fsync.
	forceStart := time.Now()
	if err := tx.mgr.Log.SyncCommitted(commitLSN); err != nil {
		// The stamp is published as dead so the high-water queue keeps
		// draining; the transaction's versions stay unstamped (invisible)
		// and restart recovery resolves its fate from the log.
		tx.mgr.publishStamp(stamp)
		return tx.commitFailed(err)
	}
	tx.tr.Event("wal.force", "", "commit", forceStart, time.Since(forceStart), nil)
	tx.state = StateCommitted
	tx.commitStamp = stamp
	commitErr := tx.fire(EventCommit, "")
	// Only after EventCommit has stamped this transaction's version
	// chains may the high-water cover the stamp: a snapshot taken at
	// HW >= stamp must find every version already stamped.
	tx.mgr.publishStamp(stamp)
	endErr := tx.fire(EventEnd, "")
	tx.mgr.Locks.ReleaseAll(tx.id)
	if _, err := tx.mgr.Log.Append(tx.id, wal.RecEnd, wal.Owner{}, nil); err != nil {
		return err
	}
	tx.mgr.finish(tx, "committed")
	tx.tr.Finish("committed")
	if h := tx.mgr.OnEnd; h != nil {
		h()
	}
	if commitErr != nil {
		return commitErr
	}
	return endErr
}

// commitFailed handles a commit whose record could not be appended or
// made durable (typically a dead log device or an injected crash). The
// transaction's fate is unknown — the record may or may not have reached
// stable storage — so no undo is attempted here; restart recovery will
// resolve it from the log. Locally the transaction is dead: locks are
// released and the handle retired so the process can shut down.
func (tx *Txn) commitFailed(err error) error {
	tx.state = StateAborted
	tx.mgr.Locks.ReleaseAll(tx.id)
	tx.mgr.finish(tx, "commit_failed")
	tx.tr.Finish("commit_failed")
	return fmt.Errorf("txn: commit not durable: %w", err)
}

// finishReadOnly terminates a snapshot transaction. Nothing was logged
// and no locks were acquired, so termination is local: EventEnd closes
// any open scans, the snapshot is released, and the log stays untouched.
// ReleaseAll is still called to keep the termination contract uniform
// (it is a no-op for a lock-free transaction and acquires nothing).
func (tx *Txn) finishReadOnly(st State, outcome string) error {
	tx.state = st
	var abortErr error
	if st == StateAborted {
		abortErr = tx.fire(EventAbort, "")
	}
	endErr := tx.fire(EventEnd, "")
	tx.mgr.Locks.ReleaseAll(tx.id)
	tx.mgr.finish(tx, outcome)
	tx.tr.Finish(outcome)
	if h := tx.mgr.OnEnd; h != nil {
		h()
	}
	if abortErr != nil {
		return abortErr
	}
	return endErr
}

// Abort rolls the whole transaction back through the common log, fires
// abort and end notifications, and releases all locks.
func (tx *Txn) Abort() error {
	if tx.state != StateActive && tx.state != StatePreparing {
		return ErrNotActive
	}
	if tx.readOnly {
		return tx.finishReadOnly(StateAborted, "aborted")
	}
	rbErr := tx.mgr.Log.Rollback(tx.id, 0, tx.mgr.Undoer)
	if _, err := tx.mgr.Log.Append(tx.id, wal.RecAbort, wal.Owner{}, nil); err != nil {
		return err
	}
	tx.state = StateAborted
	abortErr := tx.fire(EventAbort, "")
	endErr := tx.fire(EventEnd, "")
	tx.mgr.Locks.ReleaseAll(tx.id)
	if _, err := tx.mgr.Log.Append(tx.id, wal.RecEnd, wal.Owner{}, nil); err != nil {
		return err
	}
	tx.mgr.finish(tx, "aborted")
	tx.tr.Finish("aborted")
	if h := tx.mgr.OnEnd; h != nil {
		h()
	}
	switch {
	case rbErr != nil:
		return rbErr
	case abortErr != nil:
		return abortErr
	default:
		return endErr
	}
}

// fire drains the event's deferred action queue in order, then notifies
// persistent subscribers. The deferred queue is cleared before running so
// actions may re-defer for a later firing. The first error stops the drain.
func (tx *Txn) fire(event Event, savepoint string) error {
	queue := tx.deferred[event]
	tx.deferred[event] = nil
	for _, a := range queue {
		if err := a(tx, savepoint); err != nil {
			return err
		}
	}
	for _, a := range tx.subscribers[event] {
		if err := a(tx, savepoint); err != nil {
			return err
		}
	}
	return nil
}
