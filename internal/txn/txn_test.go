package txn

import (
	"errors"
	"fmt"
	"testing"

	"dmx/internal/lock"
	"dmx/internal/wal"
)

// scriptUndoer records undo dispatches.
type scriptUndoer struct {
	undone []string
	fail   bool
}

func (u *scriptUndoer) Undo(t wal.TxnID, o wal.Owner, p []byte) error {
	if u.fail {
		return fmt.Errorf("undo failure injected")
	}
	u.undone = append(u.undone, string(p))
	return nil
}

func newEnv() (*Manager, *scriptUndoer) {
	u := &scriptUndoer{}
	m := NewManager(wal.New(), lock.NewManager())
	m.Undoer = u
	return m, u
}

func TestBeginCommitLifecycle(t *testing.T) {
	m, _ := newEnv()
	tx := m.Begin()
	if tx.ID() != 1 || tx.State() != StateActive {
		t.Fatalf("fresh txn: id=%d state=%v", tx.ID(), tx.State())
	}
	if m.ActiveCount() != 1 {
		t.Fatal("ActiveCount")
	}
	if _, err := tx.AppendLog(wal.Owner{Class: wal.OwnerStorage, ExtID: 1}, []byte("w")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if tx.State() != StateCommitted || m.ActiveCount() != 0 {
		t.Fatal("commit state")
	}
	// Commit record then end record must be in the log.
	recs := m.Log.Records()
	kinds := []wal.RecKind{}
	for _, r := range recs {
		kinds = append(kinds, r.Kind)
	}
	want := []wal.RecKind{wal.RecUpdate, wal.RecCommit, wal.RecEnd}
	if len(kinds) != 3 || kinds[0] != want[0] || kinds[1] != want[1] || kinds[2] != want[2] {
		t.Fatalf("log kinds = %v", kinds)
	}
	// Double-commit fails.
	if err := tx.Commit(); !errors.Is(err, ErrNotActive) {
		t.Fatalf("double commit: %v", err)
	}
}

func TestAbortUndoesInReverse(t *testing.T) {
	m, u := newEnv()
	tx := m.Begin()
	tx.AppendLog(wal.Owner{}, []byte("a"))
	tx.AppendLog(wal.Owner{}, []byte("b"))
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if len(u.undone) != 2 || u.undone[0] != "b" || u.undone[1] != "a" {
		t.Fatalf("undone = %v", u.undone)
	}
	if tx.State() != StateAborted || m.ActiveCount() != 0 {
		t.Fatal("abort state")
	}
}

func TestSavepointPartialRollback(t *testing.T) {
	m, u := newEnv()
	tx := m.Begin()
	tx.AppendLog(wal.Owner{}, []byte("before"))
	if _, err := tx.Savepoint("sp"); err != nil {
		t.Fatal(err)
	}
	tx.AppendLog(wal.Owner{}, []byte("after1"))
	tx.AppendLog(wal.Owner{}, []byte("after2"))
	if err := tx.RollbackTo("sp"); err != nil {
		t.Fatal(err)
	}
	if len(u.undone) != 2 || u.undone[0] != "after2" || u.undone[1] != "after1" {
		t.Fatalf("undone = %v", u.undone)
	}
	// Savepoint remains valid; rolling back again undoes nothing new.
	if err := tx.RollbackTo("sp"); err != nil {
		t.Fatal(err)
	}
	if len(u.undone) != 2 {
		t.Fatalf("idempotent rollback broken: %v", u.undone)
	}
	// Work after rollback is undone by a further rollback.
	tx.AppendLog(wal.Owner{}, []byte("again"))
	if err := tx.RollbackTo("sp"); err != nil {
		t.Fatal(err)
	}
	if u.undone[len(u.undone)-1] != "again" {
		t.Fatalf("undone = %v", u.undone)
	}
	if err := tx.RollbackTo("nope"); !errors.Is(err, ErrUnknownSavepoint) {
		t.Fatalf("unknown savepoint: %v", err)
	}
	tx.Commit()
}

func TestNestedSavepointsInvalidatedByRollback(t *testing.T) {
	m, _ := newEnv()
	tx := m.Begin()
	tx.Savepoint("outer")
	tx.AppendLog(wal.Owner{}, []byte("x"))
	tx.Savepoint("inner")
	if err := tx.RollbackTo("outer"); err != nil {
		t.Fatal(err)
	}
	if err := tx.RollbackTo("inner"); !errors.Is(err, ErrUnknownSavepoint) {
		t.Fatalf("inner should be invalidated: %v", err)
	}
	tx.Commit()
}

func TestDeferredActionsRunAtEvents(t *testing.T) {
	m, _ := newEnv()
	tx := m.Begin()
	var order []string
	tx.Defer(EventBeforePrepare, func(*Txn, string) error { order = append(order, "bp1"); return nil })
	tx.Defer(EventBeforePrepare, func(*Txn, string) error { order = append(order, "bp2"); return nil })
	tx.Defer(EventCommit, func(*Txn, string) error { order = append(order, "commit"); return nil })
	tx.Defer(EventEnd, func(*Txn, string) error { order = append(order, "end"); return nil })
	tx.Defer(EventAbort, func(*Txn, string) error { order = append(order, "abort"); return nil })
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	want := []string{"bp1", "bp2", "commit", "end"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestBeforePrepareVetoAborts(t *testing.T) {
	m, u := newEnv()
	tx := m.Begin()
	tx.AppendLog(wal.Owner{}, []byte("work"))
	veto := errors.New("deferred constraint violated")
	tx.Defer(EventBeforePrepare, func(*Txn, string) error { return veto })
	abortFired := false
	tx.Defer(EventAbort, func(*Txn, string) error { abortFired = true; return nil })
	err := tx.Commit()
	if !errors.Is(err, veto) {
		t.Fatalf("Commit = %v, want veto", err)
	}
	if tx.State() != StateAborted {
		t.Fatalf("state = %v", tx.State())
	}
	if !abortFired {
		t.Fatal("abort actions should fire")
	}
	if len(u.undone) != 1 || u.undone[0] != "work" {
		t.Fatalf("work not undone: %v", u.undone)
	}
}

func TestSubscribersFireRepeatedly(t *testing.T) {
	m, _ := newEnv()
	tx := m.Begin()
	saves, restores := 0, 0
	tx.Subscribe(EventSavepoint, func(_ *Txn, name string) error {
		if name == "" {
			t.Error("savepoint name missing")
		}
		saves++
		return nil
	})
	tx.Subscribe(EventPartialRollback, func(*Txn, string) error { restores++; return nil })
	tx.Savepoint("a")
	tx.Savepoint("b")
	tx.RollbackTo("a")
	tx.RollbackTo("a")
	if saves != 2 || restores != 2 {
		t.Fatalf("saves=%d restores=%d", saves, restores)
	}
	tx.Commit()
}

func TestDeferOneShotVsSubscribe(t *testing.T) {
	m, _ := newEnv()
	tx := m.Begin()
	oneShot, persistent := 0, 0
	tx.Defer(EventSavepoint, func(*Txn, string) error { oneShot++; return nil })
	tx.Subscribe(EventSavepoint, func(*Txn, string) error { persistent++; return nil })
	tx.Savepoint("a")
	tx.Savepoint("b")
	if oneShot != 1 || persistent != 2 {
		t.Fatalf("oneShot=%d persistent=%d", oneShot, persistent)
	}
	tx.Commit()
}

func TestLocksReleasedAtEnd(t *testing.T) {
	m, _ := newEnv()
	tx := m.Begin()
	res := lock.RelResource(1)
	if err := tx.Lock(res, lock.ModeX); err != nil {
		t.Fatal(err)
	}
	if m.Locks.HeldCount(tx.ID()) != 1 {
		t.Fatal("lock not held")
	}
	tx.Commit()
	if m.Locks.HeldCount(tx.ID()) != 0 {
		t.Fatal("locks not released at commit")
	}

	tx2 := m.Begin()
	tx2.Lock(res, lock.ModeX)
	tx2.Abort()
	if m.Locks.HeldCount(tx2.ID()) != 0 {
		t.Fatal("locks not released at abort")
	}
}

func TestStashSharedAcrossCalls(t *testing.T) {
	m, _ := newEnv()
	tx := m.Begin()
	tx.Stash()["refint.pending"] = 42
	if tx.Stash()["refint.pending"] != 42 {
		t.Fatal("stash lost")
	}
	tx.Commit()
}

func TestOperationsAfterEndFail(t *testing.T) {
	m, _ := newEnv()
	tx := m.Begin()
	tx.Commit()
	if err := tx.Lock(lock.RelResource(1), lock.ModeS); !errors.Is(err, ErrNotActive) {
		t.Error("Lock after end")
	}
	if _, err := tx.AppendLog(wal.Owner{}, nil); !errors.Is(err, ErrNotActive) {
		t.Error("AppendLog after end")
	}
	if _, err := tx.Savepoint("x"); !errors.Is(err, ErrNotActive) {
		t.Error("Savepoint after end")
	}
	if err := tx.RollbackTo("x"); !errors.Is(err, ErrNotActive) {
		t.Error("RollbackTo after end")
	}
	if err := tx.Defer(EventCommit, nil); !errors.Is(err, ErrNotActive) {
		t.Error("Defer after end")
	}
	if err := tx.Subscribe(EventCommit, nil); !errors.Is(err, ErrNotActive) {
		t.Error("Subscribe after end")
	}
	if err := tx.Abort(); !errors.Is(err, ErrNotActive) {
		t.Error("Abort after commit")
	}
}

func TestDeferredActionCanAppendDuringPrepare(t *testing.T) {
	// Deferred constraints may need to lock and log during before-prepare.
	m, _ := newEnv()
	tx := m.Begin()
	tx.Defer(EventBeforePrepare, func(tx *Txn, _ string) error {
		if err := tx.Lock(lock.RelResource(9), lock.ModeS); err != nil {
			return err
		}
		_, err := tx.AppendLog(wal.Owner{}, []byte("late"))
		return err
	})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestIDsMonotonic(t *testing.T) {
	m, _ := newEnv()
	a, b := m.Begin(), m.Begin()
	if b.ID() <= a.ID() {
		t.Fatal("IDs not monotonic")
	}
	a.Commit()
	b.Commit()
}

func TestStateAndEventStrings(t *testing.T) {
	for _, s := range []State{StateActive, StatePreparing, StateCommitted, StateAborted, State(9)} {
		if s.String() == "" {
			t.Error("state string")
		}
	}
	for e := Event(0); e < numEvents; e++ {
		if e.String() == "" {
			t.Error("event string")
		}
	}
	if Event(200).String() == "" {
		t.Error("unknown event string")
	}
}

func TestManagerAccessors(t *testing.T) {
	m, _ := newEnv()
	tx := m.Begin()
	if tx.Manager() != m || tx.Log() != m.Log {
		t.Fatal("accessors")
	}
	tx.Commit()
}
