package txn

import (
	"sync"
	"sync/atomic"
	"time"

	"dmx/internal/obs"
	"dmx/internal/wal"
)

// Stats is the per-transaction resource ledger: every dispatch boundary
// the transaction crosses charges its work here. Fields are atomics not
// because the owning goroutine races itself (a Txn is goroutine-confined)
// but because the self-observation relations (sys.stat_activity) read the
// ledger of in-flight transactions from other goroutines, and the lock
// manager's wait path charges the waiter from inside Acquire.
//
// Accounting is always on; SetAccounting exists so the overhead benchmark
// can measure the delta honestly, not so deployments can turn it off.
type Stats struct {
	RowsRead      atomic.Int64 // records returned by fetches and scan Next
	RowsWritten   atomic.Int64 // records inserted, updated, or deleted
	LockWaits     atomic.Int64 // lock requests that blocked
	LockWaitNanos atomic.Int64 // cumulative time blocked on locks
	WALRecords    atomic.Int64 // log records appended on the txn's behalf
	WALBytes      atomic.Int64 // log payload bytes appended
	BufferHits    atomic.Int64 // buffer-pool page pins answered from memory
	BufferMisses  atomic.Int64 // buffer-pool page pins that read from disk
	ChainWalks    atomic.Int64 // MVCC version-chain walks past an invisible head
}

// StatsSnapshot is a point-in-time copy of a Stats ledger, safe to hold
// after the transaction finishes.
type StatsSnapshot struct {
	RowsRead      int64 `json:"rows_read"`
	RowsWritten   int64 `json:"rows_written"`
	LockWaits     int64 `json:"lock_waits"`
	LockWaitNanos int64 `json:"lock_wait_nanos"`
	WALRecords    int64 `json:"wal_records"`
	WALBytes      int64 `json:"wal_bytes"`
	BufferHits    int64 `json:"buffer_hits"`
	BufferMisses  int64 `json:"buffer_misses"`
	ChainWalks    int64 `json:"chain_walks"`
}

// Snapshot copies the ledger with atomic loads. Counters are read
// individually, so a snapshot taken while the owner is mid-operation may
// be torn across fields but never within one.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		RowsRead:      s.RowsRead.Load(),
		RowsWritten:   s.RowsWritten.Load(),
		LockWaits:     s.LockWaits.Load(),
		LockWaitNanos: s.LockWaitNanos.Load(),
		WALRecords:    s.WALRecords.Load(),
		WALBytes:      s.WALBytes.Load(),
		BufferHits:    s.BufferHits.Load(),
		BufferMisses:  s.BufferMisses.Load(),
		ChainWalks:    s.ChainWalks.Load(),
	}
}

// accountingOn gates the accounting charge points. Defaults to on; only
// the SELFOBS overhead benchmark flips it.
var accountingOn atomic.Bool

func init() { accountingOn.Store(true) }

// SetAccounting enables or disables per-transaction resource accounting
// process-wide and returns the previous setting. Exists for overhead
// measurement (cmd/dmxbench -run SELFOBS); production keeps it on.
func SetAccounting(on bool) bool { return accountingOn.Swap(on) }

// AccountingEnabled reports whether per-transaction accounting is on.
func AccountingEnabled() bool { return accountingOn.Load() }

// Acct returns the transaction's resource ledger, or nil when there is
// nothing to charge: a nil transaction (recovery and maintenance paths
// run with none) or accounting disabled. Charge points write through it:
//
//	if st := tx.Acct(); st != nil {
//		st.RowsRead.Add(1)
//	}
func (tx *Txn) Acct() *Stats {
	if tx == nil || !accountingOn.Load() {
		return nil
	}
	return &tx.stats
}

// StatsNow snapshots the transaction's ledger. Nil-safe; a nil receiver
// returns the zero snapshot.
func (tx *Txn) StatsNow() StatsSnapshot {
	if tx == nil {
		return StatsSnapshot{}
	}
	return tx.stats.Snapshot()
}

// Start returns the wall-clock time the transaction began.
func (tx *Txn) Start() time.Time { return tx.start }

// Mode returns "readonly" for snapshot transactions and "write" otherwise.
func (tx *Txn) Mode() string {
	if tx.readOnly {
		return "readonly"
	}
	return "write"
}

// TxnInfo describes one open transaction as seen by sys.stat_activity: a
// consistent-enough view assembled from atomic counter loads while the
// owner keeps running.
type TxnInfo struct {
	ID    wal.TxnID     `json:"id"`
	Mode  string        `json:"mode"`
	State string        `json:"state"`
	User  string        `json:"user,omitempty"`
	Start time.Time     `json:"start"`
	Stats StatsSnapshot `json:"stats"`
}

// FinishedTxn is one entry of the recently-finished ring backing
// sys.stat_history: the transaction's final ledger plus its outcome.
type FinishedTxn struct {
	TxnInfo
	End         time.Time `json:"end"`
	Outcome     string    `json:"outcome"` // committed | aborted | commit_failed
	CommitStamp uint64    `json:"commit_stamp,omitempty"`
}

// historySize bounds the recently-finished ring. Large enough that a
// diagnostic query lands after a burst of short transactions, small
// enough to be an irrelevant memory cost.
const historySize = 256

// txnHistory is the bounded ring of recently-finished transactions.
type txnHistory struct {
	mu   sync.Mutex
	ring [historySize]FinishedTxn
	n    uint64 // total recorded; ring[(n-1)%historySize] is newest
}

func (h *txnHistory) add(f FinishedTxn) {
	h.mu.Lock()
	h.ring[h.n%historySize] = f
	h.n++
	h.mu.Unlock()
}

// list returns the retained entries, newest first.
func (h *txnHistory) list() []FinishedTxn {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := h.n
	keep := n
	if keep > historySize {
		keep = historySize
	}
	out := make([]FinishedTxn, 0, keep)
	for i := uint64(0); i < keep; i++ {
		out = append(out, h.ring[(n-1-i)%historySize])
	}
	return out
}

// SetObs wires the manager's lifecycle counters (commits by mode, aborts,
// rolled-up wait and WAL totals) into the engine metrics registry.
func (m *Manager) SetObs(ts *obs.TxnStats) { m.obs = ts }

// ActiveSnapshot returns one TxnInfo per open transaction, ordered by ID.
// The counter loads race the owners by design: each field is internally
// consistent, and that is exactly the contract sys.stat_activity offers.
func (m *Manager) ActiveSnapshot() []TxnInfo {
	m.mu.Lock()
	txs := make([]*Txn, 0, len(m.active))
	for _, tx := range m.active {
		txs = append(txs, tx)
	}
	m.mu.Unlock()
	out := make([]TxnInfo, 0, len(txs))
	for _, tx := range txs {
		out = append(out, tx.info())
	}
	sortTxnInfos(out)
	return out
}

func sortTxnInfos(infos []TxnInfo) {
	for i := 1; i < len(infos); i++ { // tiny n; insertion sort avoids a sort import
		for j := i; j > 0 && infos[j].ID < infos[j-1].ID; j-- {
			infos[j], infos[j-1] = infos[j-1], infos[j]
		}
	}
}

// info assembles the live view of tx. state is read atomically via the
// manager's map membership (an active map entry is Active or Preparing);
// reading tx.state directly would race the owner, so the published state
// string is derived from mode + the stats-visible facts only.
func (tx *Txn) info() TxnInfo {
	return TxnInfo{
		ID:    tx.id,
		Mode:  tx.Mode(),
		State: "active",
		User:  tx.user,
		Start: tx.start,
		Stats: tx.stats.Snapshot(),
	}
}

// History returns the recently-finished transactions, newest first.
func (m *Manager) History() []FinishedTxn {
	return m.history.list()
}

// recordFinished snapshots a terminating transaction into the history
// ring and rolls its totals into the engine metrics. Called from finish,
// which every termination path funnels through.
func (m *Manager) recordFinished(tx *Txn, outcome string) {
	snap := tx.stats.Snapshot()
	m.history.add(FinishedTxn{
		TxnInfo: TxnInfo{
			ID:    tx.id,
			Mode:  tx.Mode(),
			State: "finished",
			User:  tx.user,
			Start: tx.start,
			Stats: snap,
		},
		End:         time.Now(),
		Outcome:     outcome,
		CommitStamp: tx.commitStamp,
	})
	if m.obs == nil {
		return
	}
	switch outcome {
	case "committed":
		if tx.readOnly {
			m.obs.CommitsReadOnly.Inc()
		} else {
			m.obs.CommitsWrite.Inc()
		}
	default:
		m.obs.Aborts.Inc()
	}
	m.obs.LockWaitNanos.Add(snap.LockWaitNanos)
	m.obs.WALBytes.Add(snap.WALBytes)
	m.obs.RowsRead.Add(snap.RowsRead)
	m.obs.RowsWritten.Add(snap.RowsWritten)
}

// chargeLockWait is the lock manager's wait-sink: it runs on the waiter's
// goroutine after a blocked Acquire resolves, charging the wait to the
// owning transaction if it is still open. Only the slow path pays the map
// lookup; uncontended grants never reach here.
func (m *Manager) chargeLockWait(id wal.TxnID, d time.Duration) {
	if !accountingOn.Load() {
		return
	}
	m.mu.Lock()
	tx := m.active[id]
	m.mu.Unlock()
	if tx == nil {
		return
	}
	tx.stats.LockWaits.Add(1)
	tx.stats.LockWaitNanos.Add(int64(d))
}
