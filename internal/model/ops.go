// Package model is the model-based differential-testing harness: a pure
// in-memory reference implementation of the engine's visible semantics
// (the oracle), a seeded deterministic workload generator that drives the
// real engine and the oracle in lockstep, a cross-checking runner that
// compares full relation contents, every access path against the full
// scan, aggregate attachment values, and error/veto parity at each
// statement and transaction boundary, and a delta-debugging shrinker that
// reduces any divergence to a minimal replayable operation script.
//
// The operation vocabulary is deliberately small and replayable: every op
// is plain data (no closures, no engine handles), identified rows are
// addressed by generator-assigned logical record ids, and ops whose
// target no longer exists are skipped deterministically — which is what
// makes arbitrary subsequences (shrinking candidates) executable.
package model

import (
	"fmt"
	"strings"

	"dmx/internal/types"
)

// Kind enumerates the workload operations.
type Kind uint8

const (
	OpInsert Kind = iota + 1
	OpUpdate
	OpDelete
	OpSavepoint
	OpRollbackTo
	OpCommit
	OpAbort
	OpAddIndex
	OpDropIndex
	OpCheckpoint
	OpCrash
	OpSnapBegin // open a read-only snapshot transaction
	OpSnapRead  // cross-check snapshot reads against the captured state
	OpSnapEnd   // close the snapshot transaction
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	case OpSavepoint:
		return "savepoint"
	case OpRollbackTo:
		return "rollbackto"
	case OpCommit:
		return "commit"
	case OpAbort:
		return "abort"
	case OpAddIndex:
		return "addindex"
	case OpDropIndex:
		return "dropindex"
	case OpCheckpoint:
		return "checkpoint"
	case OpCrash:
		return "crash"
	case OpSnapBegin:
		return "snapbegin"
	case OpSnapRead:
		return "snapread"
	case OpSnapEnd:
		return "snapend"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// Op is one replayable workload operation.
type Op struct {
	Kind Kind
	Rel  string       // target relation (DML and index DDL)
	RID  int          // logical row id: assigned by Insert, targeted by Update/Delete
	Rec  types.Record // new record value (Insert/Update)
	Name string       // savepoint name, or index instance name (index DDL)
	Att  string       // index DDL: attachment type name ("btree" or "hash")
	Cols string       // index DDL: on= column spec
	Site string       // Crash: fault-injection site
	Nth  int          // Crash: crash on the nth hit of Site
}

// String renders the op as one line of the replayable script.
func (o Op) String() string {
	switch o.Kind {
	case OpInsert:
		return fmt.Sprintf("insert %s r%d %s", o.Rel, o.RID, o.Rec)
	case OpUpdate:
		return fmt.Sprintf("update %s r%d %s", o.Rel, o.RID, o.Rec)
	case OpDelete:
		return fmt.Sprintf("delete %s r%d", o.Rel, o.RID)
	case OpSavepoint:
		return fmt.Sprintf("savepoint %s", o.Name)
	case OpRollbackTo:
		return fmt.Sprintf("rollbackto %s", o.Name)
	case OpCommit:
		return "commit"
	case OpAbort:
		return "abort"
	case OpAddIndex:
		return fmt.Sprintf("addindex %s %s %s on=%s", o.Rel, o.Att, o.Name, o.Cols)
	case OpDropIndex:
		return fmt.Sprintf("dropindex %s %s %s", o.Rel, o.Att, o.Name)
	case OpCheckpoint:
		return "checkpoint"
	case OpCrash:
		return fmt.Sprintf("crash site=%s nth=%d", o.Site, o.Nth)
	default:
		return o.Kind.String()
	}
}

// Script renders an op sequence as a numbered, replayable script.
func Script(ops []Op) string {
	var b strings.Builder
	for i, o := range ops {
		fmt.Fprintf(&b, "%3d  %s\n", i, o)
	}
	return b.String()
}
