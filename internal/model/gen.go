package model

import (
	"fmt"
	"math/rand"

	"dmx/internal/core"
	"dmx/internal/fault"
	"dmx/internal/types"
)

// GenConfig parameterises one generated scenario.
type GenConfig struct {
	Seed  int64
	Ops   int  // workload length (default 120)
	Crash bool // sprinkle crash-point ops into the workload
	// Ingest biases the scenario at the LSM storage method: relation x is
	// always "append" with a tiny memtable and fanout so inserts, updates,
	// deletes and tombstones cross flush and compaction boundaries within
	// one workload, and most DML lands on x. Crash workloads additionally
	// draw the lsm.flush and lsm.compact sites.
	Ingest bool
	// Partitioned biases the scenario at the partitioned storage method:
	// relation x is always "part", hash-sharded across three servers with
	// a small scan batch so scans cross shard and batch boundaries, and
	// most DML lands on x (multi-shard two-phase commits on nearly every
	// transaction). Crash workloads additionally draw the part.decide
	// site, landing crashes between shard prepare and the logged
	// decision.
	Partitioned bool
}

// Scenario is a generated fleet plus the op sequence to run over it.
type Scenario struct {
	Fleet Fleet
	Ops   []Op
}

// Generate derives a fleet and a mixed DML/DDL workload from the seed.
// Everything — storage methods, attachment combinations, record values,
// op mix, crash sites — is a pure function of cfg, so a scenario replays
// bit-identically. The generator runs its own oracle alongside to bias
// ops toward live targets; ops that still miss at replay time are skipped
// deterministically by Eligible.
func Generate(cfg GenConfig) Scenario {
	if cfg.Ops <= 0 {
		cfg.Ops = 120
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	fleet := genFleet(rng, cfg.Crash, cfg.Ingest, cfg.Partitioned)
	g := &generator{rng: rng, m: NewModel(fleet), crash: cfg.Crash,
		ingest: cfg.Ingest || cfg.Partitioned}
	ops := make([]Op, 0, cfg.Ops)
	for len(ops) < cfg.Ops {
		op, ok := g.next(len(ops))
		if !ok {
			continue
		}
		ops = append(ops, op)
		g.m.Step(op)
		if op.Kind == OpCrash {
			g.m.CrashRestart()
		}
	}
	// Leave no transaction dangling: the runner aborts an open one at the
	// end, but an explicit commit exercises the deferred-check boundary.
	if g.m.InTxn() {
		ops = append(ops, Op{Kind: OpCommit})
		g.m.Step(Op{Kind: OpCommit})
	}
	return Scenario{Fleet: fleet, Ops: ops}
}

// genFleet picks the three-relation fleet for one seed: a parent "p"
// carrying the constraint-heavy attachment load, a child "c" referencing
// it, and an extra "x" cycling through the remaining storage methods.
func genFleet(rng *rand.Rand, crash, ingest, part bool) Fleet {
	fk := &FKDef{
		Name:       "pc",
		OwnFields:  []int{ColGrp},
		Peer:       "p",
		PeerFields: []int{ColID},
		Cascade:    rng.Intn(2) == 0,
		Deferred:   rng.Intn(2) == 0,
	}
	parentRole := &FKDef{
		Name:       "pc",
		OwnFields:  []int{ColID},
		Peer:       "c",
		PeerFields: []int{ColGrp},
		Cascade:    fk.Cascade,
		Deferred:   fk.Deferred,
	}

	p := &RelCfg{
		Name:     "p",
		SM:       pick(rng, "heap", "memory", "btree"),
		Uniques:  []IxDef{{Name: "pu", Fields: []int{ColID}}},
		BTree:    []IxDef{{Name: "pgrp", Fields: []int{ColGrp}}},
		Hash:     []IxDef{{Name: "pid", Fields: []int{ColID}}},
		Aggs:     []AggDef{{Name: "pagg", GroupField: ColGrp, ValueField: ColVal}},
		Trig:     rng.Intn(2) == 0,
		ParentOf: parentRole,
	}
	if p.SM == "btree" {
		p.SMAttrs = core.AttrList{"key": "id"}
		p.KeyFields = []int{ColID}
	}
	if rng.Intn(2) == 0 {
		p.Aggs = append(p.Aggs, AggDef{Name: "pall", GroupField: -1, ValueField: ColVal})
	}

	c := &RelCfg{
		Name:    "c",
		SM:      pick(rng, "heap", "memory"),
		ChildFK: fk,
	}
	if rng.Intn(2) == 0 {
		c.BTree = []IxDef{{Name: "cgrp", Fields: []int{ColGrp}}}
	}
	if rng.Intn(2) == 0 {
		c.Aggs = []AggDef{{Name: "cagg", GroupField: ColGrp, ValueField: ColVal}}
	}
	c.Trig = rng.Intn(3) == 0

	smx := []string{"heap", "btree", "memory", "append", "temp"}
	if !crash {
		// Remote contents live on a foreign server the harness attaches at
		// open; crash fleets skip it so recovery stays self-contained.
		smx = append(smx, "remote")
	}
	x := &RelCfg{Name: "x", SM: smx[rng.Intn(len(smx))]}
	if ingest {
		x.SM = "append"
	}
	if part {
		x.SM = "part"
	}
	switch x.SM {
	case "btree":
		x.SMAttrs = core.AttrList{"key": "id"}
		x.KeyFields = []int{ColID}
	case "remote":
		x.SMAttrs = core.AttrList{"server": "srv"}
	case "part":
		// Three shards and a small batch make scans cross shard and
		// batch boundaries constantly; the harness attaches s0..s2.
		x.SMAttrs = core.AttrList{"key": "id", "servers": "s0,s1,s2", "batch": "7"}
		x.KeyFields = []int{ColID}
	case "append":
		// A tiny memtable and minimum fanout make flushes and merges
		// happen within a short workload; sync compaction keeps the run
		// deterministic (the crash sites fire in the mutating call).
		x.SMAttrs = core.AttrList{"memtable": "192", "fanout": "2", "compact": "sync"}
	}
	if x.SM != "temp" {
		// Unlogged temp storage takes no attachments in the model's scope:
		// its rows vanish at restart while attachment state would not.
		if rng.Intn(2) == 0 {
			x.BTree = []IxDef{{Name: "xgrp", Fields: []int{ColGrp}}}
		}
		if rng.Intn(3) == 0 {
			x.Uniques = []IxDef{{Name: "xu", Fields: []int{ColID}}}
		}
	}
	return Fleet{p, c, x}
}

type generator struct {
	rng     *rand.Rand
	m       *Model
	crash   bool
	ingest  bool
	nextRID int
}

// next proposes one op; ok is false when the draw was ineligible (the
// caller just redraws — the rng stream advances either way, keeping the
// sequence a pure function of the seed).
func (g *generator) next(i int) (Op, bool) {
	w := g.rng.Intn(100)
	var op Op
	switch {
	case w < 30:
		rel := g.pickRel()
		op = Op{Kind: OpInsert, Rel: rel, RID: g.nextRID, Rec: g.genRec(rel)}
	case w < 45:
		rel := g.pickRel()
		rid, ok := g.pickRID(rel)
		if !ok {
			return Op{}, false
		}
		op = Op{Kind: OpUpdate, Rel: rel, RID: rid, Rec: g.genRec(rel)}
	case w < 55:
		rel := g.pickRel()
		rid, ok := g.pickRID(rel)
		if !ok {
			return Op{}, false
		}
		op = Op{Kind: OpDelete, Rel: rel, RID: rid}
	case w < 60:
		op = Op{Kind: OpSavepoint, Name: fmt.Sprintf("s%d", i)}
	case w < 64:
		saves := g.m.Savepoints()
		if len(saves) == 0 {
			return Op{}, false
		}
		op = Op{Kind: OpRollbackTo, Name: saves[g.rng.Intn(len(saves))]}
	case w < 74:
		op = Op{Kind: OpCommit}
	case w < 78:
		op = Op{Kind: OpAbort}
	case w < 81:
		op = Op{
			Kind: OpAddIndex,
			Rel:  pick(g.rng, "p", "c"),
			Att:  pick(g.rng, "btree", "hash"),
			Name: fmt.Sprintf("ix%d", i),
			Cols: pick(g.rng, "id", "grp", "val", "grp,val", "note"),
		}
	case w < 83:
		rel := pick(g.rng, "p", "c")
		att := pick(g.rng, "btree", "hash")
		defs := g.m.Cfg(rel).BTree
		if att == "hash" {
			defs = g.m.Cfg(rel).Hash
		}
		if len(defs) == 0 {
			return Op{}, false
		}
		op = Op{Kind: OpDropIndex, Rel: rel, Att: att, Name: defs[g.rng.Intn(len(defs))].Name}
	case w < 86:
		op = Op{Kind: OpCheckpoint}
	case w < 90:
		op = Op{Kind: OpSnapBegin}
	case w < 95:
		op = Op{Kind: OpSnapRead}
	case w < 97:
		op = Op{Kind: OpSnapEnd}
	default:
		if !g.crash {
			return Op{}, false
		}
		// WAL sites are hit on every logged modification and commit, so an
		// armed crash reliably fires within a few ops. When x ingests
		// through the LSM method its flush/compaction sites join the pool,
		// landing crashes on half-flushed and half-compacted states.
		sites := []string{
			string(fault.SiteWALAppend), string(fault.SiteWALFlush), string(fault.SiteWALSynced)}
		if g.m.Cfg("x").SM == "append" {
			for _, s := range fault.LSMSites() {
				sites = append(sites, string(s))
			}
		}
		if g.m.Cfg("x").SM == "part" {
			for _, s := range fault.PartSites() {
				sites = append(sites, string(s))
			}
		}
		site := sites[g.rng.Intn(len(sites))]
		op = Op{Kind: OpCrash, Site: site, Nth: 1 + g.rng.Intn(4)}
	}
	if !g.m.Eligible(op) {
		return Op{}, false
	}
	if op.Kind == OpInsert {
		g.nextRID++
	}
	return op, true
}

func (g *generator) pickRel() string {
	w := g.rng.Intn(10)
	if g.ingest {
		// Ingest scenarios pour most DML into the LSM relation so flush
		// and compaction boundaries are crossed many times per workload.
		switch {
		case w < 2:
			return "p"
		case w < 4:
			return "c"
		default:
			return "x"
		}
	}
	switch {
	case w < 4:
		return "p"
	case w < 8:
		return "c"
	default:
		return "x"
	}
}

func (g *generator) pickRID(rel string) (int, bool) {
	rids := g.m.RIDs(rel)
	if len(rids) == 0 {
		return 0, false
	}
	return rids[g.rng.Intn(len(rids))], true
}

// genRec draws one record. Value ranges are chosen to provoke every
// modelled outcome: ids collide (unique and key-organised storage
// vetoes), a quarter of values are negative (trigger vetoes), child
// groups mostly hit live parents but sometimes dangle or go NULL (refint
// vetoes and deferred checks), and all floats are exact quarter
// multiples so aggregate sums compare exactly.
func (g *generator) genRec(rel string) types.Record {
	id := types.Int(int64(1 + g.rng.Intn(24)))

	var grp types.Value
	if rel == "c" {
		w := g.rng.Intn(10)
		parents := g.m.Rows("p")
		switch {
		case w < 8 && len(parents) > 0:
			grp = parents[g.rng.Intn(len(parents))].Rec[ColID]
		case w < 9:
			grp = types.Int(int64(50 + g.rng.Intn(10)))
		default:
			grp = types.Null()
		}
	} else {
		if g.rng.Intn(100) < 15 {
			grp = types.Null()
		} else {
			grp = types.Int(int64(1 + g.rng.Intn(5)))
		}
	}

	val := types.Float(float64(g.rng.Intn(81)-20) * 0.25)

	note := types.Str(fmt.Sprintf("n%d", g.rng.Intn(8)))
	if g.rng.Intn(10) == 0 {
		note = types.Null()
	}
	return types.Record{id, grp, val, note}
}

func pick(rng *rand.Rand, opts ...string) string { return opts[rng.Intn(len(opts))] }
