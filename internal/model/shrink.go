package model

// Shrink reduces a failing op sequence to a small reproducer with
// delta debugging: first the sequence is truncated to the prefix ending
// at the failing op, then ddmin removes progressively finer-grained
// chunks, keeping any candidate that still diverges. Ops whose targets
// disappear with the removed chunk are skipped by Eligible at replay, so
// every subsequence is executable. test runs a candidate and returns its
// divergence (nil = passes); maxRuns bounds the total replays.
//
// The result is 1-minimal within budget: when the budget was not
// exhausted, removing any single remaining op makes the failure vanish.
func Shrink(ops []Op, firstFail int, test func([]Op) *Divergence, maxRuns int) ([]Op, *Divergence, int) {
	if firstFail >= 0 && firstFail < len(ops) {
		ops = ops[:firstFail+1]
	}
	runs := 0
	cur := append([]Op(nil), ops...)
	div := test(cur)
	runs++
	if div == nil {
		return cur, nil, runs
	}

	n := 2
	for len(cur) >= 2 && n <= len(cur) {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		for start := 0; start < len(cur); start += chunk {
			if runs >= maxRuns {
				return cur, div, runs
			}
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			cand := make([]Op, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			if len(cand) == 0 {
				continue
			}
			d := test(cand)
			runs++
			if d != nil {
				cur, div = cand, d
				n = max(2, n-1)
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(cur) {
				break
			}
			n = min(len(cur), 2*n)
		}
	}
	return cur, div, runs
}
