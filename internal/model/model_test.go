package model

import (
	"testing"

	"dmx/internal/types"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenConfig{Seed: 7})
	b := Generate(GenConfig{Seed: 7})
	if Script(a.Ops) != Script(b.Ops) {
		t.Fatal("same seed generated different op sequences")
	}
	if len(a.Fleet) != len(b.Fleet) || a.Fleet[0].SM != b.Fleet[0].SM {
		t.Fatal("same seed generated different fleets")
	}
	c := Generate(GenConfig{Seed: 8})
	if Script(a.Ops) == Script(c.Ops) {
		t.Fatal("different seeds generated identical op sequences")
	}
}

func TestGenerateCrashOpsOnlyInCrashMode(t *testing.T) {
	plain := Generate(GenConfig{Seed: 3})
	for _, op := range plain.Ops {
		if op.Kind == OpCrash {
			t.Fatal("crash op generated without crash mode")
		}
	}
	found := false
	for seed := int64(1); seed <= 20 && !found; seed++ {
		for _, op := range Generate(GenConfig{Seed: seed, Crash: true}).Ops {
			if op.Kind == OpCrash {
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("no crash op generated across 20 crash-mode seeds")
	}
}

func testFleet() Fleet {
	return Fleet{&RelCfg{Name: "p", SM: "heap", Uniques: []IxDef{{Name: "u", Fields: []int{ColID}}}}}
}

func rec(id, grp int64, val float64) types.Record {
	return types.Record{types.Int(id), types.Int(grp), types.Float(val), types.Null()}
}

func TestModelUniqueAndUndo(t *testing.T) {
	m := NewModel(testFleet())
	if out := m.Step(Op{Kind: OpInsert, Rel: "p", RID: 0, Rec: rec(1, 1, 1)}); !out.OK {
		t.Fatalf("insert rejected: %+v", out)
	}
	if out := m.Step(Op{Kind: OpInsert, Rel: "p", RID: 1, Rec: rec(1, 2, 2)}); out.OK || out.Ext != "unique" {
		t.Fatalf("duplicate id accepted or wrong veto: %+v", out)
	}
	m.Step(Op{Kind: OpSavepoint, Name: "s"})
	m.Step(Op{Kind: OpInsert, Rel: "p", RID: 2, Rec: rec(2, 1, 1)})
	if m.RowCount("p") != 2 {
		t.Fatalf("row count %d before partial rollback", m.RowCount("p"))
	}
	m.Step(Op{Kind: OpRollbackTo, Name: "s"})
	if m.RowCount("p") != 1 {
		t.Fatalf("row count %d after partial rollback", m.RowCount("p"))
	}
	m.Rollback()
	if m.RowCount("p") != 0 {
		t.Fatalf("row count %d after abort", m.RowCount("p"))
	}
}

func TestModelCloneIndependent(t *testing.T) {
	m := NewModel(testFleet())
	m.Step(Op{Kind: OpInsert, Rel: "p", RID: 0, Rec: rec(1, 1, 1)})
	snap := m.Clone()
	m.Step(Op{Kind: OpInsert, Rel: "p", RID: 1, Rec: rec(2, 1, 1)})
	m.Commit()
	if snap.RowCount("p") != 1 {
		t.Fatalf("clone saw later mutation: %d rows", snap.RowCount("p"))
	}
	// The clone's open transaction is still undoable on its own.
	snap.Rollback()
	if snap.RowCount("p") != 0 || m.RowCount("p") != 2 {
		t.Fatalf("clone rollback leaked: clone=%d orig=%d", snap.RowCount("p"), m.RowCount("p"))
	}
}

func TestEligibleSkipRules(t *testing.T) {
	m := NewModel(testFleet())
	if m.Eligible(Op{Kind: OpUpdate, Rel: "p", RID: 9, Rec: rec(1, 1, 1)}) {
		t.Fatal("update of dead rid eligible")
	}
	if m.Eligible(Op{Kind: OpCommit}) || m.Eligible(Op{Kind: OpAbort}) {
		t.Fatal("txn control eligible without open txn")
	}
	if m.Eligible(Op{Kind: OpRollbackTo, Name: "s"}) {
		t.Fatal("rollback to unknown savepoint eligible")
	}
	m.Step(Op{Kind: OpInsert, Rel: "p", RID: 0, Rec: rec(1, 1, 1)})
	if m.Eligible(Op{Kind: OpAddIndex, Rel: "p", Att: "btree", Name: "i", Cols: "grp"}) {
		t.Fatal("DDL eligible inside open txn")
	}
	if !m.Eligible(Op{Kind: OpCommit}) {
		t.Fatal("commit ineligible inside open txn")
	}
}

func TestShrinkFindsMinimalSubsequence(t *testing.T) {
	// Synthetic predicate: the sequence "fails" iff it contains both op
	// RID 3 and RID 7 — the shrinker must isolate exactly those two.
	var ops []Op
	for i := 0; i < 30; i++ {
		ops = append(ops, Op{Kind: OpInsert, Rel: "p", RID: i, Rec: rec(int64(i), 1, 1)})
	}
	test := func(sub []Op) *Divergence {
		has3, has7 := false, false
		for _, op := range sub {
			if op.RID == 3 {
				has3 = true
			}
			if op.RID == 7 {
				has7 = true
			}
		}
		if has3 && has7 {
			return &Divergence{Detail: "synthetic"}
		}
		return nil
	}
	min, div, _ := Shrink(ops, len(ops)-1, test, 500)
	if div == nil {
		t.Fatal("shrink lost the failure")
	}
	if len(min) != 2 || min[0].RID != 3 || min[1].RID != 7 {
		t.Fatalf("shrunk to %d ops: %v", len(min), Script(min))
	}
}

func TestRunAgreesInMemory(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		sc := Generate(GenConfig{Seed: seed})
		if div := Run(RunConfig{Fleet: sc.Fleet, Ops: sc.Ops}); div != nil {
			t.Fatalf("seed %d: %v\nscript:\n%s", seed, div, Script(sc.Ops))
		}
	}
}

// TestCrashDuringDropIndexMatchesUndoneCandidate replays the shrunk
// seed-166 repro: a crash armed at the WAL kills the engine before a
// dropindex reaches the log, so recovery keeps the index. The harness
// must match the *not-applied* candidate here — the applied candidate's
// shorter def list once matched vacuously (the surviving index was
// never probed) and misaligned every later dense instance index, so the
// follow-up addindex reported a falsely empty hash path.
func TestCrashDuringDropIndexMatchesUndoneCandidate(t *testing.T) {
	sc := Generate(GenConfig{Seed: 166, Ops: 120, Crash: true})
	ops := []Op{
		{Kind: OpInsert, Rel: "p", RID: 3, Rec: rec(10, 5, 5.75)},
		{Kind: OpCommit},
		{Kind: OpCrash, Site: "wal.append", Nth: 1},
		{Kind: OpDropIndex, Rel: "p", Att: "hash", Name: "pid"},
		{Kind: OpAddIndex, Rel: "p", Att: "hash", Name: "ix70", Cols: "grp"},
	}
	if div := Run(RunConfig{Fleet: sc.Fleet, Ops: ops, Dir: t.TempDir()}); div != nil {
		t.Fatalf("divergence: %v", div)
	}
}
