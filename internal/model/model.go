package model

import (
	"errors"
	"sort"

	"dmx/internal/att/refint"
	"dmx/internal/att/unique"
	"dmx/internal/core"
	"dmx/internal/sm/btreesm"
	"dmx/internal/sm/partsm"
	"dmx/internal/types"
)

// The fuzzed relations share one schema so records are interchangeable
// across storage methods: ColID feeds key-organised storage and unique
// constraints, ColGrp doubles as foreign key and aggregate group, ColVal
// feeds aggregates and the veto trigger, ColNote is filler payload.
const (
	ColID = iota
	ColGrp
	ColVal
	ColNote
)

// FuzzSchema is the shared schema of every fuzzed relation.
func FuzzSchema() *types.Schema {
	return types.MustSchema(
		types.Column{Name: "id", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "grp", Kind: types.KindInt},
		types.Column{Name: "val", Kind: types.KindFloat, NotNull: true},
		types.Column{Name: "note", Kind: types.KindString},
	)
}

// IxDef describes one index instance (B-tree or hash access path) or one
// uniqueness constraint.
type IxDef struct {
	Name   string
	Fields []int
}

// AggDef describes one aggregate attachment instance.
type AggDef struct {
	Name       string
	GroupField int // -1 = global aggregate
	ValueField int
}

// FKDef describes one referential-integrity constraint pair: the def is
// stored on the child relation (OwnFields are the foreign-key columns)
// and mirrored by a parent-role def on the peer.
type FKDef struct {
	Name       string
	OwnFields  []int  // FK columns on the child
	Peer       string // parent relation
	PeerFields []int  // parent key columns
	Cascade    bool   // parent action (false = restrict)
	Deferred   bool   // child timing (false = immediate)
}

// RelCfg is the model's view of one relation: storage method, key
// organisation, and the attachment instances defined on it. BTree and
// Hash are ordered def lists — list position is the engine's dense
// access-path instance number, and index DDL appends/removes in place.
type RelCfg struct {
	Name      string
	SM        string        // storage method DDL name
	SMAttrs   core.AttrList // storage method DDL attributes
	KeyFields []int         // btree-SM key columns (nil otherwise)
	BTree     []IxDef
	Hash      []IxDef
	Uniques   []IxDef
	Aggs      []AggDef
	ChildFK   *FKDef // child-role refint def on this relation
	ParentOf  *FKDef // parent-role refint def on this relation
	Trig      bool   // veto trigger (events=insert,update; vetoes val < 0)
}

func (c *RelCfg) clone() *RelCfg {
	out := *c
	out.BTree = append([]IxDef(nil), c.BTree...)
	out.Hash = append([]IxDef(nil), c.Hash...)
	return &out
}

// Fleet is the set of relations one scenario runs over.
type Fleet []*RelCfg

// ErrTriggerVeto is the veto reason the registered model trigger returns
// for negative values.
var ErrTriggerVeto = errors.New("model: trigger vetoed negative value")

// Outcome is the model's prediction for one operation: success, or a veto
// by a particular extension for a particular reason.
type Outcome struct {
	OK  bool
	Ext string // expected core.VetoError.Extension ("" when the error is not a statement veto)
	Err error  // expected errors.Is sentinel
}

func success() Outcome                   { return Outcome{OK: true} }
func veto(ext string, err error) Outcome { return Outcome{Ext: ext, Err: err} }

// keyedSM reports whether a storage method is key-organised: its key
// fields are the primary key and inserts/updates colliding on them are
// vetoed by the method itself.
func keyedSM(sm string) bool { return sm == "btree" || sm == "part" }

func dupKeyErr(sm string) error {
	if sm == "part" {
		return partsm.ErrDuplicateKey
	}
	return btreesm.ErrDuplicateKey
}

// Row is one live record in the oracle: the record value plus the engine
// record key once the harness has learned it (nil in generator mode).
type Row struct {
	Rec types.Record
	Key types.Key
}

func (r *Row) clone() *Row {
	out := &Row{Rec: r.Rec.Clone()}
	if r.Key != nil {
		out.Key = r.Key.Clone()
	}
	return out
}

type relState struct {
	cfg  *RelCfg
	rows map[int]*Row
}

// undoEntry is one journal record: restore rid in rel to row (nil row =
// the rid did not exist). Pure data, so a mid-transaction Model can be
// cloned for crash-ambiguity resolution.
type undoEntry struct {
	rel string
	rid int
	row *Row
}

type savept struct {
	name string
	mark int // journal length at the savepoint
}

// deferredFK is one queued deferred referential-integrity check.
type deferredFK struct {
	rel  string
	def  *FKDef
	vals []types.Value
}

// Model is the pure in-memory reference implementation of the engine's
// visible semantics: relations as record maps with per-transaction undo,
// plus reference semantics for the unique, refint, trigger, and aggregate
// attachments (including veto outcomes). Derived attachment state
// (indexes, aggregates) is recomputed from the rows at verification time
// rather than maintained incrementally, so the model cannot share an
// incremental-maintenance bug with the engine.
type Model struct {
	rels  map[string]*relState
	names []string // deterministic iteration order

	inTxn    bool
	journal  []undoEntry
	saves    []savept
	deferred []deferredFK
	defSeen  map[string]bool

	// snapRows is the committed state of each MVCC-capable (heap-SM)
	// relation captured when the open model snapshot began; nil when no
	// snapshot transaction is open. Snapshot reads must keep seeing exactly
	// these rows no matter what commits afterwards.
	snapOpen bool
	snapRows map[string][]*Row
}

// NewModel builds the oracle for a fleet. The fleet is deep-copied:
// index DDL ops mutate only the model's copy, so the caller's Fleet can
// seed engine setup and repeated replays.
func NewModel(fleet Fleet) *Model {
	m := &Model{rels: make(map[string]*relState), defSeen: make(map[string]bool)}
	for _, cfg := range fleet {
		c := cfg.clone()
		m.rels[c.Name] = &relState{cfg: c, rows: make(map[int]*Row)}
		m.names = append(m.names, c.Name)
	}
	return m
}

// Clone deep-copies the model, including any open-transaction journal, so
// crash-ambiguity candidates can be built from a mid-transaction state.
func (m *Model) Clone() *Model {
	out := &Model{
		rels:  make(map[string]*relState, len(m.rels)),
		names: append([]string(nil), m.names...),
		inTxn: m.inTxn,
	}
	for name, rs := range m.rels {
		nrs := &relState{cfg: rs.cfg.clone(), rows: make(map[int]*Row, len(rs.rows))}
		for rid, row := range rs.rows {
			nrs.rows[rid] = row.clone()
		}
		out.rels[name] = nrs
	}
	for _, e := range m.journal {
		ne := undoEntry{rel: e.rel, rid: e.rid}
		if e.row != nil {
			ne.row = e.row.clone()
		}
		out.journal = append(out.journal, ne)
	}
	out.saves = append([]savept(nil), m.saves...)
	out.deferred = append([]deferredFK(nil), m.deferred...)
	out.defSeen = make(map[string]bool, len(m.defSeen))
	for k := range m.defSeen {
		out.defSeen[k] = true
	}
	out.snapOpen = m.snapOpen
	if m.snapRows != nil {
		out.snapRows = make(map[string][]*Row, len(m.snapRows))
		for name, rows := range m.snapRows {
			cp := make([]*Row, 0, len(rows))
			for _, row := range rows {
				cp = append(cp, row.clone())
			}
			out.snapRows[name] = cp
		}
	}
	return out
}

// InTxn reports whether a transaction is open.
func (m *Model) InTxn() bool { return m.inTxn }

// Begin opens a transaction.
func (m *Model) Begin() {
	m.inTxn = true
	m.journal = m.journal[:0]
	m.saves = m.saves[:0]
	m.deferred = m.deferred[:0]
	m.defSeen = make(map[string]bool)
}

// KeyOf returns the learned engine record key of a live row (nil when the
// row is absent or the key is unknown).
func (m *Model) KeyOf(rel string, rid int) types.Key {
	if rs := m.rels[rel]; rs != nil {
		if row := rs.rows[rid]; row != nil {
			return row.Key
		}
	}
	return nil
}

// LearnKey records the engine key the storage method assigned to a row.
func (m *Model) LearnKey(rel string, rid int, key types.Key) {
	if rs := m.rels[rel]; rs != nil {
		if row := rs.rows[rid]; row != nil {
			row.Key = key.Clone()
		}
	}
}

// Rels returns the relation names in deterministic order.
func (m *Model) Rels() []string { return m.names }

// Cfg returns the model's current view of a relation's configuration.
func (m *Model) Cfg(rel string) *RelCfg { return m.rels[rel].cfg }

// Rows returns the live rows of a relation sorted by logical rid.
func (m *Model) Rows(rel string) []*Row {
	rs := m.rels[rel]
	rids := m.sortedRIDs(rs)
	out := make([]*Row, 0, len(rids))
	for _, rid := range rids {
		out = append(out, rs.rows[rid])
	}
	return out
}

// RowCount returns the live row count of a relation.
func (m *Model) RowCount(rel string) int { return len(m.rels[rel].rows) }

// RIDs returns the live logical record ids of a relation, sorted.
func (m *Model) RIDs(rel string) []int { return m.sortedRIDs(m.rels[rel]) }

// Savepoints returns the currently valid savepoint names, oldest first.
func (m *Model) Savepoints() []string {
	out := make([]string, 0, len(m.saves))
	for _, s := range m.saves {
		out = append(out, s.name)
	}
	return out
}

func (m *Model) sortedRIDs(rs *relState) []int {
	rids := make([]int, 0, len(rs.rows))
	for rid := range rs.rows {
		rids = append(rids, rid)
	}
	sort.Ints(rids)
	return rids
}

// Eligible reports whether op executes against the current state. Ops
// whose target is gone (a dead rid, an unknown savepoint, a missing
// index) and transaction control without an open transaction are skipped
// — deterministically, which is what keeps arbitrary shrinking
// subsequences replayable.
func (m *Model) Eligible(op Op) bool {
	switch op.Kind {
	case OpInsert:
		return true
	case OpUpdate, OpDelete:
		rs := m.rels[op.Rel]
		return rs != nil && rs.rows[op.RID] != nil
	case OpSavepoint:
		for _, s := range m.saves {
			if s.name == op.Name {
				return false
			}
		}
		return true
	case OpRollbackTo:
		if !m.inTxn {
			return false
		}
		for _, s := range m.saves {
			if s.name == op.Name {
				return true
			}
		}
		return false
	case OpCommit, OpAbort:
		return m.inTxn
	case OpAddIndex:
		return !m.inTxn && !m.hasIndex(op.Rel, op.Att, op.Name)
	case OpDropIndex:
		return !m.inTxn && m.hasIndex(op.Rel, op.Att, op.Name)
	case OpCheckpoint:
		return !m.inTxn
	case OpCrash:
		return true
	case OpSnapBegin:
		return !m.snapOpen
	case OpSnapRead, OpSnapEnd:
		return m.snapOpen
	default:
		return false
	}
}

// Step applies an eligible op to the model and returns the predicted
// outcome. DML auto-opens a transaction, mirroring the harness.
func (m *Model) Step(op Op) Outcome {
	switch op.Kind {
	case OpInsert, OpUpdate, OpDelete, OpSavepoint:
		if !m.inTxn {
			m.Begin()
		}
	}
	switch op.Kind {
	case OpInsert:
		return m.insert(op.Rel, op.RID, op.Rec)
	case OpUpdate:
		return m.update(op.Rel, op.RID, op.Rec)
	case OpDelete:
		return m.delete(op.Rel, op.RID)
	case OpSavepoint:
		m.saves = append(m.saves, savept{name: op.Name, mark: len(m.journal)})
		return success()
	case OpRollbackTo:
		m.rollbackTo(op.Name)
		return success()
	case OpCommit:
		return m.Commit()
	case OpAbort:
		m.Rollback()
		return success()
	case OpAddIndex:
		m.addIndex(op.Rel, op.Att, op.Name, op.Cols)
		return success()
	case OpDropIndex:
		m.dropIndex(op.Rel, op.Att, op.Name)
		return success()
	case OpCheckpoint, OpCrash:
		return success()
	case OpSnapBegin:
		m.snapBegin()
		return success()
	case OpSnapRead:
		// The reads themselves are checked by the harness against SnapRows;
		// the model only predicts that they succeed.
		return success()
	case OpSnapEnd:
		m.snapEnd()
		return success()
	default:
		return success()
	}
}

// --- snapshot transactions ---

// SnapOpen reports whether a model snapshot transaction is open.
func (m *Model) SnapOpen() bool { return m.snapOpen }

// SnapRows returns the committed rows captured for rel when the open
// snapshot began (nil when rel is not snapshot-readable or no snapshot is
// open).
func (m *Model) SnapRows(rel string) []*Row { return m.snapRows[rel] }

// snapBegin captures the committed state a snapshot transaction must keep
// observing: the live rows with the open writer transaction's journal
// undone, restricted to heap-SM relations (the only storage method with
// versioned snapshot reads — elsewhere read-only transactions still read
// via locks and are not modelled here).
func (m *Model) snapBegin() {
	committed := m
	if m.inTxn {
		committed = m.Clone()
		committed.Rollback()
	}
	m.snapRows = make(map[string][]*Row)
	for _, name := range m.names {
		if m.rels[name].cfg.SM != "heap" {
			continue
		}
		rows := committed.Rows(name)
		cp := make([]*Row, 0, len(rows))
		for _, row := range rows {
			cp = append(cp, row.clone())
		}
		m.snapRows[name] = cp
	}
	m.snapOpen = true
}

func (m *Model) snapEnd() {
	m.snapOpen = false
	m.snapRows = nil
}

// --- DML prediction + application ---

func fieldsChanged(fields []int, old, new types.Record) bool {
	for _, f := range fields {
		if !types.Equal(old[f], new[f]) {
			return true
		}
	}
	return false
}

// fkValues extracts the constrained field values; nil if any is NULL.
func fkValues(fields []int, rec types.Record) []types.Value {
	vals := make([]types.Value, len(fields))
	for i, f := range fields {
		if rec[f].IsNull() {
			return nil
		}
		vals[i] = rec[f]
	}
	return vals
}

// findMatch returns the smallest live rid (excluding exclRID) whose
// fields equal rec's, or -1.
func (m *Model) findMatch(rs *relState, fields []int, rec types.Record, exclRID int) int {
	for _, rid := range m.sortedRIDs(rs) {
		if rid == exclRID {
			continue
		}
		if !fieldsChanged(fields, rs.rows[rid].Rec, rec) {
			return rid
		}
	}
	return -1
}

// findVals returns the smallest live rid whose fields equal vals, or -1.
func (m *Model) findVals(rs *relState, fields []int, vals []types.Value) int {
	for _, rid := range m.sortedRIDs(rs) {
		match := true
		for i, f := range fields {
			if !types.Equal(rs.rows[rid].Rec[f], vals[i]) {
				match = false
				break
			}
		}
		if match {
			return rid
		}
	}
	return -1
}

func (m *Model) parentExists(d *FKDef, vals []types.Value) bool {
	return m.findVals(m.rels[d.Peer], d.PeerFields, vals) >= 0
}

// childMatches returns the child rids referencing vals, sorted.
func (m *Model) childMatches(d *FKDef, vals []types.Value) []int {
	rs := m.rels[d.Peer]
	var out []int
	for _, rid := range m.sortedRIDs(rs) {
		match := true
		for i, f := range d.PeerFields {
			if !types.Equal(rs.rows[rid].Rec[f], vals[i]) {
				match = false
				break
			}
		}
		if match {
			out = append(out, rid)
		}
	}
	return out
}

// enqueueDeferred mirrors the engine's deferred-action queue with its
// stash-based dedup. The enqueue happens during the refint notify, so it
// survives even when a later attachment vetoes the statement (the
// statement's row is undone, and the commit-time self-match check then
// skips the orphaned entry — on both sides).
func (m *Model) enqueueDeferred(rel string, d *FKDef, vals []types.Value) {
	key := rel + "\x00" + d.Name
	for _, v := range vals {
		key += "\x00" + v.String()
	}
	if m.defSeen[key] {
		return
	}
	m.defSeen[key] = true
	m.deferred = append(m.deferred, deferredFK{rel: rel, def: d, vals: vals})
}

func (m *Model) journalSet(rel string, rid int, prior *Row) {
	if m.rels[rel].cfg.SM == "temp" {
		// Unlogged storage: abort and rollback do not undo temp effects.
		return
	}
	m.journal = append(m.journal, undoEntry{rel: rel, rid: rid, row: prior})
}

func (m *Model) insert(rel string, rid int, rec types.Record) Outcome {
	rs := m.rels[rel]
	cfg := rs.cfg

	// Storage method first: a key-organised method rejects duplicates
	// before any attached procedure runs.
	if keyedSM(cfg.SM) && m.findMatch(rs, cfg.KeyFields, rec, -1) >= 0 {
		return veto(cfg.SM, dupKeyErr(cfg.SM))
	}

	// Attached procedures in attachment-identifier order. The deferred
	// refint enqueue (AttRefInt=6) happens before the trigger (7) and
	// unique (10) checks, so it sticks even when they veto.
	if d := cfg.ChildFK; d != nil {
		if vals := fkValues(d.OwnFields, rec); vals != nil {
			if d.Deferred {
				m.enqueueDeferred(rel, d, vals)
			} else if !m.parentExists(d, vals) {
				return veto(refint.Name, refint.ErrNoParent)
			}
		}
	}
	if cfg.Trig && rec[ColVal].AsFloat() < 0 {
		return veto("trigger", ErrTriggerVeto)
	}
	for _, u := range cfg.Uniques {
		if vals := fkValues(u.Fields, rec); vals != nil && m.findMatch(rs, u.Fields, rec, -1) >= 0 {
			return veto(unique.Name, unique.ErrViolation)
		}
	}

	m.journalSet(rel, rid, nil)
	rs.rows[rid] = &Row{Rec: rec.Clone()}
	return success()
}

func (m *Model) update(rel string, rid int, rec types.Record) Outcome {
	rs := m.rels[rel]
	cfg := rs.cfg
	old := rs.rows[rid]

	if keyedSM(cfg.SM) && fieldsChanged(cfg.KeyFields, old.Rec, rec) &&
		m.findMatch(rs, cfg.KeyFields, rec, rid) >= 0 {
		return veto(cfg.SM, dupKeyErr(cfg.SM))
	}

	var cascade []int
	if d := cfg.ChildFK; d != nil && fieldsChanged(d.OwnFields, old.Rec, rec) {
		if vals := fkValues(d.OwnFields, rec); vals != nil {
			if d.Deferred {
				m.enqueueDeferred(rel, d, vals)
			} else if !m.parentExists(d, vals) {
				return veto(refint.Name, refint.ErrNoParent)
			}
		}
	}
	if d := cfg.ParentOf; d != nil && fieldsChanged(d.OwnFields, old.Rec, rec) {
		if vals := fkValues(d.OwnFields, old.Rec); vals != nil {
			if kids := m.childMatches(d, vals); len(kids) > 0 {
				if !d.Cascade {
					return veto(refint.Name, refint.ErrHasChildren)
				}
				cascade = kids
			}
		}
	}
	if cfg.Trig && rec[ColVal].AsFloat() < 0 {
		return veto("trigger", ErrTriggerVeto)
	}
	for _, u := range cfg.Uniques {
		if !fieldsChanged(u.Fields, old.Rec, rec) {
			continue
		}
		if vals := fkValues(u.Fields, rec); vals != nil && m.findMatch(rs, u.Fields, rec, rid) >= 0 {
			return veto(unique.Name, unique.ErrViolation)
		}
	}

	if d := cfg.ParentOf; d != nil {
		m.cascadeDelete(d, cascade)
	}
	m.journalSet(rel, rid, old)
	rs.rows[rid] = &Row{Rec: rec.Clone(), Key: old.Key}
	return success()
}

func (m *Model) delete(rel string, rid int) Outcome {
	rs := m.rels[rel]
	cfg := rs.cfg
	old := rs.rows[rid]

	var cascade []int
	if d := cfg.ParentOf; d != nil {
		if vals := fkValues(d.OwnFields, old.Rec); vals != nil {
			if kids := m.childMatches(d, vals); len(kids) > 0 {
				if !d.Cascade {
					return veto(refint.Name, refint.ErrHasChildren)
				}
				cascade = kids
			}
		}
	}

	if d := cfg.ParentOf; d != nil {
		m.cascadeDelete(d, cascade)
	}
	m.journalSet(rel, rid, old)
	delete(rs.rows, rid)
	return success()
}

// cascadeDelete removes the given child rows through the child relation's
// own semantics (its attachments fire on each cascaded delete; in the
// fleets the generator builds, none of them can veto a delete).
func (m *Model) cascadeDelete(d *FKDef, rids []int) {
	child := m.rels[d.Peer]
	for _, rid := range rids {
		m.journalSet(d.Peer, rid, child.rows[rid])
		delete(child.rows, rid)
	}
}

// --- transaction boundaries ---

// Commit evaluates the deferred constraint queue in order; the first
// failing check turns the commit into a whole-transaction abort. A
// deferred check whose triggering row no longer exists (deleted or rolled
// back to a savepoint) is skipped, mirroring the engine's commit-time
// self-match re-check.
func (m *Model) Commit() Outcome {
	for _, dc := range m.deferred {
		if m.findVals(m.rels[dc.rel], dc.def.OwnFields, dc.vals) < 0 {
			continue
		}
		if !m.parentExists(dc.def, dc.vals) {
			m.Rollback()
			// A deferred veto aborts the transaction; Commit returns the
			// raw constraint error, not a statement VetoError.
			return Outcome{OK: false, Err: refint.ErrNoParent}
		}
	}
	m.endTxn()
	return success()
}

// Rollback aborts the open transaction: the journal is undone in reverse
// (temp-relation effects were never journaled and stick, like the
// engine's unlogged storage method).
func (m *Model) Rollback() {
	for i := len(m.journal) - 1; i >= 0; i-- {
		e := m.journal[i]
		if e.row == nil {
			delete(m.rels[e.rel].rows, e.rid)
		} else {
			m.rels[e.rel].rows[e.rid] = e.row
		}
	}
	m.endTxn()
}

func (m *Model) endTxn() {
	m.inTxn = false
	m.journal = m.journal[:0]
	m.saves = m.saves[:0]
	m.deferred = m.deferred[:0]
	m.defSeen = make(map[string]bool)
}

func (m *Model) rollbackTo(name string) {
	idx := -1
	for i, s := range m.saves {
		if s.name == name {
			idx = i
			break
		}
	}
	mark := m.saves[idx].mark
	for i := len(m.journal) - 1; i >= mark; i-- {
		e := m.journal[i]
		if e.row == nil {
			delete(m.rels[e.rel].rows, e.rid)
		} else {
			m.rels[e.rel].rows[e.rid] = e.row
		}
	}
	m.journal = m.journal[:mark]
	// The target savepoint stays valid; later ones are gone. The deferred
	// queue deliberately survives partial rollback, as in the engine.
	m.saves = m.saves[:idx+1]
}

// CrashRestart reconciles the model with a crash: the open transaction
// (if any) is a loser and is undone, an open snapshot transaction dies
// with the process, and unlogged temp relations lose their contents while
// keeping their catalog entries.
func (m *Model) CrashRestart() {
	m.Rollback()
	m.snapEnd()
	for _, name := range m.names {
		rs := m.rels[name]
		if rs.cfg.SM == "temp" {
			rs.rows = make(map[int]*Row)
		}
	}
}

// --- index DDL ---

func (m *Model) hasIndex(rel, att, name string) bool {
	rs := m.rels[rel]
	if rs == nil {
		return false
	}
	defs := rs.cfg.BTree
	if att == "hash" {
		defs = rs.cfg.Hash
	}
	for _, d := range defs {
		if d.Name == name {
			return true
		}
	}
	return false
}

func (m *Model) addIndex(rel, att, name, cols string) {
	cfg := m.rels[rel].cfg
	def := IxDef{Name: name, Fields: parseCols(cols)}
	if att == "hash" {
		cfg.Hash = append(cfg.Hash, def)
	} else {
		cfg.BTree = append(cfg.BTree, def)
	}
}

func (m *Model) dropIndex(rel, att, name string) {
	cfg := m.rels[rel].cfg
	defs := &cfg.BTree
	if att == "hash" {
		defs = &cfg.Hash
	}
	for i, d := range *defs {
		if d.Name == name {
			*defs = append(append([]IxDef(nil), (*defs)[:i]...), (*defs)[i+1:]...)
			return
		}
	}
}

// parseCols maps a comma-separated column spec of the shared fuzz schema
// to field positions.
func parseCols(spec string) []int {
	names := map[string]int{"id": ColID, "grp": ColGrp, "val": ColVal, "note": ColNote}
	var out []int
	start := 0
	for i := 0; i <= len(spec); i++ {
		if i == len(spec) || spec[i] == ',' {
			if f, ok := names[spec[start:i]]; ok {
				out = append(out, f)
			}
			start = i + 1
		}
	}
	return out
}
