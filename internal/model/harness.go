package model

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dmx/internal/att/aggmv"
	"dmx/internal/att/attutil"
	"dmx/internal/att/trigger"
	"dmx/internal/core"
	"dmx/internal/fault"
	"dmx/internal/pagefile"
	"dmx/internal/plan"
	"dmx/internal/remote"
	"dmx/internal/sm/partsm"
	"dmx/internal/sm/remotesm"
	"dmx/internal/txn"
	"dmx/internal/types"
	"dmx/internal/wal"

	// Factory linking: the harness assembles environments directly from
	// core.NewEnv, so it links the extensions it fuzzes itself.
	_ "dmx/internal/att/btreeix"
	_ "dmx/internal/att/hashidx"
	_ "dmx/internal/sm/appendsm"
	_ "dmx/internal/sm/heap"
	_ "dmx/internal/sm/memsm"
	_ "dmx/internal/sm/tempsm"
)

// TriggerName is the registered body of the fuzzed trigger attachment: it
// vetoes any insert or update whose val field is negative.
const TriggerName = "modelveto"

// RunConfig drives one differential run.
type RunConfig struct {
	Fleet Fleet
	Ops   []Op
	// Dir, when set, backs the environment with real log and page files
	// under a fresh subdirectory, which is what lets Crash ops restart and
	// recover. Empty runs fully in memory (Crash ops become no-ops).
	Dir string
	// NotifySkip is the deliberate-mutation hook: it is installed as
	// core.Env.NotifySkip so a test can supress one attachment's
	// notifications and prove the harness catches the divergence.
	NotifySkip func(relName string, id core.AttID) bool
}

// Divergence reports the first point where engine and model disagreed.
// OpIndex is -1 for setup failures and len(Ops) for end-of-run
// verification.
type Divergence struct {
	OpIndex int
	Op      Op
	Detail  string
}

func (d *Divergence) Error() string {
	return fmt.Sprintf("divergence at op %d (%s): %s", d.OpIndex, d.Op, d.Detail)
}

// Run replays ops through a real engine and the reference model in
// lockstep, cross-checking outcomes at every statement and full state at
// every transaction boundary. It returns the first divergence, or nil
// when engine and model agree throughout.
func Run(cfg RunConfig) *Divergence {
	r := &runner{cfg: cfg, m: NewModel(cfg.Fleet)}
	if cfg.Dir != "" {
		dir, err := os.MkdirTemp(cfg.Dir, "modelrun")
		if err != nil {
			return &Divergence{OpIndex: -1, Detail: "mkdir: " + err.Error()}
		}
		r.dir = dir
		defer os.RemoveAll(dir)
	}
	if err := r.openEnv(false); err != nil {
		return &Divergence{OpIndex: -1, Detail: "open: " + err.Error()}
	}
	defer r.closeEnv()
	if err := r.setupDDL(); err != nil {
		return &Divergence{OpIndex: -1, Detail: "setup: " + err.Error()}
	}

	for i, op := range r.cfg.Ops {
		if !r.m.Eligible(op) {
			continue
		}
		r.step(i, op)
		if r.div != nil {
			return r.div
		}
	}

	// Close a trailing snapshot and the trailing transaction (engine and
	// model together), then verify the final quiescent state.
	if r.m.SnapOpen() {
		r.step(len(r.cfg.Ops), Op{Kind: OpSnapEnd})
		if r.div != nil {
			return r.div
		}
	}
	if r.m.InTxn() {
		r.step(len(r.cfg.Ops), Op{Kind: OpAbort})
		if r.div != nil {
			return r.div
		}
	}
	var pre *Model
	if r.inj.Armed() {
		pre = r.m.Clone()
	}
	if detail := r.verify(r.m); detail != "" {
		if r.inj.Crashed() && pre != nil {
			// The still-armed crash fired during final verification: go
			// through recovery and let handleCrash re-verify.
			r.handleCrash(len(r.cfg.Ops), Op{Kind: OpCheckpoint}, pre)
		} else {
			r.div = &Divergence{OpIndex: len(r.cfg.Ops), Detail: detail}
		}
	}
	return r.div
}

type runner struct {
	cfg RunConfig
	dir string

	m    *Model
	env  *core.Env
	log  *wal.Log
	disk *pagefile.FileDisk
	inj  *fault.Injector
	tx   *txn.Txn
	roTx *txn.Txn // open snapshot (read-only) transaction, if any
	div  *Divergence
}

// openEnv assembles the environment (file-backed when the run has a
// directory) and registers the extensions that need out-of-catalog state:
// the veto trigger body and the foreign server. recover replays the log,
// which is how post-crash restarts come back.
func (r *runner) openEnv(recover bool) error {
	r.inj = fault.New()
	envCfg := core.Config{Faults: r.inj}
	if r.dir != "" {
		log, err := wal.Open(filepath.Join(r.dir, "wal.log"))
		if err != nil {
			return err
		}
		disk, err := pagefile.OpenFileDisk(filepath.Join(r.dir, "pages.db"))
		if err != nil {
			log.Close()
			return err
		}
		r.log, r.disk = log, disk
		envCfg.Log, envCfg.Disk = log, disk
	}
	r.env = core.NewEnv(envCfg)
	r.env.NotifySkip = r.cfg.NotifySkip
	trigger.Register(r.env, TriggerName, func(_ *core.Env, _ *txn.Txn, _ trigger.Event, _ *core.RelDesc, _ types.Key, _, newRec types.Record) error {
		if newRec != nil && newRec[ColVal].AsFloat() < 0 {
			return ErrTriggerVeto
		}
		return nil
	})
	remotesm.AttachServer(r.env, "srv", remote.NewServer(0))
	// Partitioned fleets shard relation x across these three servers. They
	// are recreated empty on every reopen: the storage method checkpoints
	// its contents into the local log, so recovery repopulates the shards
	// from scratch and resolves any transaction left in doubt.
	for _, name := range []string{"s0", "s1", "s2"} {
		partsm.AttachServer(r.env, name, remote.NewServer(0))
	}
	if recover {
		return r.env.Recover()
	}
	return nil
}

func (r *runner) closeEnv() {
	if r.env != nil {
		r.env.Close()
	}
	if r.log != nil {
		r.log.Close()
		r.log = nil
	}
	if r.disk != nil {
		r.disk.Close()
		r.disk = nil
	}
	r.env = nil
}

var colNames = [...]string{"id", "grp", "val", "note"}

func colSpec(fields []int) string {
	parts := make([]string, len(fields))
	for i, f := range fields {
		parts[i] = colNames[f]
	}
	return strings.Join(parts, ",")
}

// setupDDL creates the fleet: relations first, then attachments per
// relation in def-list order so engine instance numbers line up with the
// model's list positions.
func (r *runner) setupDDL() error {
	tx := r.env.Begin()
	for _, cfg := range r.cfg.Fleet {
		attrs := core.AttrList{}
		for k, v := range cfg.SMAttrs {
			attrs[k] = v
		}
		if _, err := r.env.CreateRelation(tx, cfg.Name, FuzzSchema(), cfg.SM, attrs); err != nil {
			tx.Abort()
			return err
		}
	}
	for _, cfg := range r.cfg.Fleet {
		if err := r.createAttachments(tx, cfg); err != nil {
			tx.Abort()
			return err
		}
	}
	return tx.Commit()
}

func (r *runner) createAttachments(tx *txn.Txn, cfg *RelCfg) error {
	create := func(attName string, attrs core.AttrList) error {
		_, err := r.env.CreateAttachment(tx, cfg.Name, attName, attrs)
		return err
	}
	for _, d := range cfg.BTree {
		if err := create("btree", core.AttrList{"name": d.Name, "on": colSpec(d.Fields)}); err != nil {
			return err
		}
	}
	for _, d := range cfg.Hash {
		if err := create("hash", core.AttrList{"name": d.Name, "on": colSpec(d.Fields)}); err != nil {
			return err
		}
	}
	for _, d := range cfg.Uniques {
		if err := create("unique", core.AttrList{"name": d.Name, "on": colSpec(d.Fields)}); err != nil {
			return err
		}
	}
	for _, a := range cfg.Aggs {
		attrs := core.AttrList{"name": a.Name, "value": colNames[a.ValueField]}
		if a.GroupField >= 0 {
			attrs["group"] = colNames[a.GroupField]
		}
		if err := create("aggregate", attrs); err != nil {
			return err
		}
	}
	if d := cfg.ChildFK; d != nil {
		attrs := core.AttrList{
			"name": d.Name, "role": "child",
			"on": colSpec(d.OwnFields), "peer": d.Peer, "peerkey": colSpec(d.PeerFields),
		}
		if d.Deferred {
			attrs["timing"] = "deferred"
		}
		if err := create("refint", attrs); err != nil {
			return err
		}
	}
	if d := cfg.ParentOf; d != nil {
		attrs := core.AttrList{
			"name": d.Name, "role": "parent",
			"on": colSpec(d.OwnFields), "peer": d.Peer, "peerkey": colSpec(d.PeerFields),
		}
		if d.Cascade {
			attrs["action"] = "cascade"
		} else {
			attrs["action"] = "restrict"
		}
		if err := create("refint", attrs); err != nil {
			return err
		}
	}
	if cfg.Trig {
		if err := create("trigger", core.AttrList{
			"name": "tg", "call": TriggerName, "events": "insert,update",
		}); err != nil {
			return err
		}
	}
	return nil
}

// step runs one eligible op on both sides and compares the outcomes. The
// model's prediction is computed by Step; the engine key of the targeted
// row must be captured before Step because a predicted-successful delete
// removes the row from the model.
func (r *runner) step(i int, op Op) {
	var pre *Model
	if r.inj.Armed() {
		// A crash can fire inside any engine call from here on; keep the
		// pre-op model so the recovered state can be matched against both
		// sides of the ambiguity.
		pre = r.m.Clone()
	}
	var targetKey types.Key
	if op.Kind == OpUpdate || op.Kind == OpDelete {
		targetKey = r.m.KeyOf(op.Rel, op.RID)
	}

	pred := r.m.Step(op)
	err := r.engineOp(op, targetKey)

	if r.inj.Crashed() {
		r.handleCrash(i, op, pre)
		return
	}
	if detail := compareOutcome(pred, err); detail != "" {
		r.div = &Divergence{OpIndex: i, Op: op, Detail: detail}
		return
	}
	if op.Kind == OpCommit || op.Kind == OpAbort {
		if detail := r.verify(r.m); detail != "" {
			if r.inj.Crashed() && pre != nil {
				r.handleCrash(i, op, pre)
				return
			}
			r.div = &Divergence{OpIndex: i, Op: op, Detail: detail}
		}
	}
}

func (r *runner) ensureTx() *txn.Txn {
	if r.tx == nil {
		r.tx = r.env.Begin()
	}
	return r.tx
}

// engineOp executes op against the real engine and returns its error.
func (r *runner) engineOp(op Op, targetKey types.Key) error {
	switch op.Kind {
	case OpInsert:
		rel, err := r.env.OpenRelationByName(op.Rel)
		if err != nil {
			return err
		}
		key, err := rel.Insert(r.ensureTx(), op.Rec.Clone())
		if err == nil {
			r.m.LearnKey(op.Rel, op.RID, key)
			return r.checkOwnWrite(rel, op.Rel, key, op.Rec)
		}
		return err
	case OpUpdate:
		rel, err := r.env.OpenRelationByName(op.Rel)
		if err != nil {
			return err
		}
		newKey, err := rel.Update(r.ensureTx(), targetKey, op.Rec.Clone())
		if err == nil {
			r.m.LearnKey(op.Rel, op.RID, newKey)
			return r.checkOwnWrite(rel, op.Rel, newKey, op.Rec)
		}
		return err
	case OpDelete:
		rel, err := r.env.OpenRelationByName(op.Rel)
		if err != nil {
			return err
		}
		return rel.Delete(r.ensureTx(), targetKey)
	case OpSavepoint:
		_, err := r.ensureTx().Savepoint(op.Name)
		return err
	case OpRollbackTo:
		return r.tx.RollbackTo(op.Name)
	case OpCommit:
		tx := r.tx
		r.tx = nil
		return tx.Commit()
	case OpAbort:
		tx := r.tx
		r.tx = nil
		return tx.Abort()
	case OpAddIndex:
		tx := r.env.Begin()
		if _, err := r.env.CreateAttachment(tx, op.Rel, op.Att, core.AttrList{"name": op.Name, "on": op.Cols}); err != nil {
			tx.Abort()
			return err
		}
		return tx.Commit()
	case OpDropIndex:
		tx := r.env.Begin()
		if _, err := r.env.DropAttachment(tx, op.Rel, op.Att, core.AttrList{"name": op.Name}); err != nil {
			tx.Abort()
			return err
		}
		return tx.Commit()
	case OpCheckpoint:
		if err := r.env.Checkpoint(); err != nil && err != core.ErrCheckpointBusy {
			return err
		}
		return nil
	case OpCrash:
		if r.dir != "" {
			r.inj.Arm(fault.Site(op.Site), op.Nth)
		}
		return nil
	case OpSnapBegin:
		r.roTx = r.env.BeginReadOnly()
		return nil
	case OpSnapRead:
		return r.snapRead()
	case OpSnapEnd:
		roTx := r.roTx
		r.roTx = nil
		return roTx.Commit()
	default:
		return fmt.Errorf("model: unknown op kind %v", op.Kind)
	}
}

// checkOwnWrite fetches a just-written record back inside the writing
// transaction: a transaction must see its own uncommitted writes through
// the same read path that snapshot transactions branch off.
func (r *runner) checkOwnWrite(rel *core.Relation, name string, key types.Key, want types.Record) error {
	rec, err := rel.Fetch(r.tx, key, nil, nil)
	if err != nil {
		return fmt.Errorf("own-write readback on %s key %v: %w", name, key, err)
	}
	if !rec.Equal(want) {
		return fmt.Errorf("own-write readback on %s key %v: got %s, wrote %s",
			name, key, recString(rec), recString(want))
	}
	return nil
}

// snapRead cross-checks the open snapshot transaction against the state
// the model captured when it began: a full scan must return exactly the
// captured rows (as a multiset), and each captured row must fetch back
// unchanged by its key — no matter what has committed since. Only heap-SM
// relations are checked; they are the only versioned storage method, and
// the capture in Model.snapBegin is restricted the same way.
func (r *runner) snapRead() error {
	for _, name := range r.m.Rels() {
		rows := r.m.SnapRows(name)
		if rows == nil {
			continue
		}
		rel, err := r.env.OpenRelationByName(name)
		if err != nil {
			return fmt.Errorf("snapshot read on %s: open: %w", name, err)
		}
		scan, err := rel.OpenScan(r.roTx, core.ScanOptions{})
		if err != nil {
			return fmt.Errorf("snapshot read on %s: scan open: %w", name, err)
		}
		var got []string
		for {
			_, rec, ok, err := scan.Next()
			if err != nil {
				scan.Close()
				return fmt.Errorf("snapshot read on %s: scan: %w", name, err)
			}
			if !ok {
				break
			}
			got = append(got, recString(rec))
		}
		scan.Close()
		want := make([]string, 0, len(rows))
		for _, row := range rows {
			want = append(want, recString(row.Rec))
		}
		sort.Strings(got)
		sort.Strings(want)
		if len(got) != len(want) {
			return fmt.Errorf("snapshot read on %s: scan returned %d records, snapshot captured %d (%v vs %v)",
				name, len(got), len(want), got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				return fmt.Errorf("snapshot read on %s: scan multiset differs: engine %s vs snapshot %s",
					name, got[i], want[i])
			}
		}
		for _, row := range rows {
			if row.Key == nil {
				continue
			}
			rec, err := rel.Fetch(r.roTx, row.Key, nil, nil)
			if err != nil {
				return fmt.Errorf("snapshot read on %s: fetch key %v: %w (snapshot row %s)",
					name, row.Key, err, recString(row.Rec))
			}
			if !rec.Equal(row.Rec) {
				return fmt.Errorf("snapshot read on %s: fetch key %v: engine %s vs snapshot %s",
					name, row.Key, recString(rec), recString(row.Rec))
			}
		}
	}
	return nil
}

// compareOutcome checks error/veto parity: a predicted success must
// succeed; a predicted failure must fail with the predicted sentinel and
// (for statement vetoes) name the predicted extension.
func compareOutcome(pred Outcome, err error) string {
	if pred.OK {
		if err != nil {
			return fmt.Sprintf("model predicted success, engine failed: %v", err)
		}
		return ""
	}
	if err == nil {
		return fmt.Sprintf("model predicted failure (%s: %v), engine succeeded", pred.Ext, pred.Err)
	}
	if pred.Err != nil && !errors.Is(err, pred.Err) {
		return fmt.Sprintf("model predicted %v, engine failed with %v", pred.Err, err)
	}
	if pred.Ext != "" {
		var ve *core.VetoError
		if !errors.As(err, &ve) {
			return fmt.Sprintf("model predicted veto by %q, engine error is not a veto: %v", pred.Ext, err)
		}
		if ve.Extension != pred.Ext {
			return fmt.Sprintf("model predicted veto by %q, engine veto by %q: %v", pred.Ext, ve.Extension, err)
		}
	}
	return ""
}

// handleCrash reconciles an injected crash: the environment is reopened
// from its files and recovered, and the recovered state must match one of
// the model's crash-consistent candidates — the crashed operation's
// effects fully absent, or (for a commit or self-committing DDL whose
// durability the crash made ambiguous) fully present.
func (r *runner) handleCrash(i int, op Op, pre *Model) {
	if pre == nil {
		r.div = &Divergence{OpIndex: i, Op: op, Detail: "crash fired with no armed snapshot (harness bug)"}
		return
	}
	var candidates []*Model
	switch op.Kind {
	case OpCommit:
		done := pre.Clone()
		done.Step(op)
		lost := pre.Clone()
		lost.Rollback()
		candidates = []*Model{done, lost}
	case OpAddIndex, OpDropIndex:
		done := pre.Clone()
		done.Step(op)
		candidates = []*Model{done, pre.Clone()}
	default:
		candidates = []*Model{pre.Clone()}
	}

	r.closeEnv()
	r.tx, r.roTx = nil, nil
	if err := r.openEnv(true); err != nil {
		r.div = &Divergence{OpIndex: i, Op: op, Detail: "recovery failed: " + err.Error()}
		return
	}
	var details []string
	for _, cand := range candidates {
		cand.CrashRestart()
		if detail := r.verify(cand); detail == "" {
			r.m = cand
			return
		} else {
			details = append(details, detail)
		}
	}
	r.div = &Divergence{
		OpIndex: i, Op: op,
		Detail: "recovered state matches no crash-consistent candidate: " + strings.Join(details, " | "),
	}
}

// verify compares the engine's full visible state with the model's:
// record counts, full-scan contents as multisets, every record fetched
// back by its key, every B-tree access path scanned in order against the
// model's own sort, every hash access path probed per distinct value
// tuple (plus an absent probe), and every aggregate instance looked up
// per group (plus an absent group). It returns "" on agreement.
func (r *runner) verify(m *Model) string {
	tx := r.env.Begin()
	defer func() {
		if tx != nil {
			tx.Commit()
		}
	}()
	for _, name := range m.Rels() {
		rel, err := r.env.OpenRelationByName(name)
		if err != nil {
			return name + ": open: " + err.Error()
		}
		rows := m.Rows(name)
		if got := rel.Storage().RecordCount(); got != len(rows) {
			return fmt.Sprintf("%s: record count %d, model has %d", name, got, len(rows))
		}
		if detail := r.verifyScan(tx, rel, name, rows); detail != "" {
			return detail
		}
		if detail := r.verifyParallel(tx, name, rows); detail != "" {
			return detail
		}
		if detail := r.verifyFetch(tx, rel, name, rows); detail != "" {
			return detail
		}
		cfg := m.Cfg(name)
		if detail := r.verifyDefs(rel, name, cfg); detail != "" {
			return detail
		}
		if detail := r.verifyBTrees(tx, rel, name, cfg, rows); detail != "" {
			return detail
		}
		if detail := r.verifyHashes(tx, rel, name, cfg, rows); detail != "" {
			return detail
		}
		if detail := r.verifyAggs(rel, name, cfg, rows); detail != "" {
			return detail
		}
	}
	err := tx.Commit()
	tx = nil
	if err != nil {
		return "verify commit: " + err.Error()
	}
	return ""
}

func recString(rec types.Record) string { return fmt.Sprintf("%v", rec) }

func (r *runner) verifyScan(tx *txn.Txn, rel *core.Relation, name string, rows []*Row) string {
	scan, err := rel.OpenScan(tx, core.ScanOptions{})
	if err != nil {
		return name + ": scan open: " + err.Error()
	}
	defer scan.Close()
	var got []string
	for {
		_, rec, ok, err := scan.Next()
		if err != nil {
			return name + ": scan: " + err.Error()
		}
		if !ok {
			break
		}
		got = append(got, recString(rec))
	}
	want := make([]string, 0, len(rows))
	for _, row := range rows {
		want = append(want, recString(row.Rec))
	}
	sort.Strings(got)
	sort.Strings(want)
	if len(got) != len(want) {
		return fmt.Sprintf("%s: scan returned %d records, model has %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Sprintf("%s: scan multiset differs: engine %s vs model %s", name, got[i], want[i])
		}
	}
	return ""
}

// verifyParallel cross-checks the planner's partitioned parallel scan:
// a forced two-worker plan over the storage method must return exactly
// the model's multiset (storage methods that cannot partition degrade to
// one worker and still must agree).
func (r *runner) verifyParallel(tx *txn.Txn, name string, rows []*Row) string {
	b, err := plan.New(r.env).Plan(plan.Query{
		Table: name, ForcePath: &plan.ForcedPath{Att: 0}, ForceDegree: 2,
	})
	if err != nil {
		return name + ": parallel plan: " + err.Error()
	}
	recs, err := plan.Collect(b.Execute(tx))
	if err != nil {
		return name + ": parallel scan: " + err.Error()
	}
	got := make([]string, 0, len(recs))
	for _, rec := range recs {
		got = append(got, recString(rec))
	}
	want := make([]string, 0, len(rows))
	for _, row := range rows {
		want = append(want, recString(row.Rec))
	}
	sort.Strings(got)
	sort.Strings(want)
	if len(got) != len(want) {
		return fmt.Sprintf("%s: parallel scan returned %d records, model has %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Sprintf("%s: parallel scan multiset differs: engine %s vs model %s", name, got[i], want[i])
		}
	}
	return ""
}

func (r *runner) verifyFetch(tx *txn.Txn, rel *core.Relation, name string, rows []*Row) string {
	for _, row := range rows {
		if row.Key == nil {
			continue
		}
		rec, err := rel.Fetch(tx, row.Key, nil, nil)
		if err != nil {
			return fmt.Sprintf("%s: fetch by key %v: %v (model row %s)", name, row.Key, err, recString(row.Rec))
		}
		if !rec.Equal(row.Rec) {
			return fmt.Sprintf("%s: fetch by key %v: engine %s vs model %s", name, row.Key, recString(rec), recString(row.Rec))
		}
	}
	return ""
}

// verifyBTrees checks each B-tree access path emits exactly the model's
// rows in entry-key order (index fields, record key appended as the
// tiebreak — the same composition the extension stores).
// verifyDefs compares the engine's descriptor def lists for the
// secondary-index attachments against the model's: same names, same
// dense order. Without this check a crash-recovery candidate whose def
// list is shorter than the engine's can match vacuously — the surviving
// index is simply never probed — and every dense instance index the
// model hands to later verifies is misaligned from then on.
func (r *runner) verifyDefs(rel *core.Relation, name string, cfg *RelCfg) string {
	for _, at := range []struct {
		id   core.AttID
		kind string
		want []IxDef
	}{
		{core.AttBTree, "btree", cfg.BTree},
		{core.AttHash, "hash", cfg.Hash},
	} {
		var got []string
		if field := rel.Desc().AttDesc[at.id]; field != nil {
			_, defs, err := attutil.DecodeDefs(field)
			if err != nil {
				return fmt.Sprintf("%s: %s defs: %v", name, at.kind, err)
			}
			for _, d := range defs {
				got = append(got, d.Name)
			}
		}
		want := make([]string, 0, len(at.want))
		for _, d := range at.want {
			want = append(want, d.Name)
		}
		if len(got) != len(want) {
			return fmt.Sprintf("%s: engine has %d %s defs %v, model has %d %v",
				name, len(got), at.kind, got, len(want), want)
		}
		for i := range got {
			if got[i] != want[i] {
				return fmt.Sprintf("%s: %s def %d: engine %q, model %q",
					name, at.kind, i, got[i], want[i])
			}
		}
	}
	return ""
}

func (r *runner) verifyBTrees(tx *txn.Txn, rel *core.Relation, name string, cfg *RelCfg, rows []*Row) string {
	for inst, d := range cfg.BTree {
		type entry struct {
			sortKey string
			recKey  types.Key
			idxRec  types.Record
		}
		want := make([]entry, 0, len(rows))
		for _, row := range rows {
			want = append(want, entry{
				sortKey: string(types.EncodeKeyFields(row.Rec, d.Fields)) + string(row.Key),
				recKey:  row.Key,
				idxRec:  row.Rec.Project(d.Fields),
			})
		}
		sort.Slice(want, func(i, j int) bool { return want[i].sortKey < want[j].sortKey })

		scan, err := rel.OpenAccessScan(tx, core.AttBTree, inst, core.ScanOptions{})
		if err != nil {
			return fmt.Sprintf("%s: btree %q open: %v", name, d.Name, err)
		}
		n := 0
		for {
			key, rec, ok, err := scan.Next()
			if err != nil {
				scan.Close()
				return fmt.Sprintf("%s: btree %q scan: %v", name, d.Name, err)
			}
			if !ok {
				break
			}
			if n >= len(want) {
				scan.Close()
				return fmt.Sprintf("%s: btree %q has extra entry %v -> %v", name, d.Name, rec, key)
			}
			w := want[n]
			if !key.Equal(w.recKey) || !rec.Equal(w.idxRec) {
				scan.Close()
				return fmt.Sprintf("%s: btree %q entry %d: engine (%v -> %v) vs model (%v -> %v)",
					name, d.Name, n, rec, key, w.idxRec, w.recKey)
			}
			n++
		}
		scan.Close()
		if n != len(want) {
			return fmt.Sprintf("%s: btree %q has %d entries, model has %d", name, d.Name, n, len(want))
		}
	}
	return ""
}

// verifyHashes probes each hash access path with every distinct value
// tuple the model holds — the returned record-key sets must match — and
// with one tuple no row carries, which must come back empty.
func (r *runner) verifyHashes(tx *txn.Txn, rel *core.Relation, name string, cfg *RelCfg, rows []*Row) string {
	for inst, d := range cfg.Hash {
		wantByTuple := make(map[string][]string)
		for _, row := range rows {
			tuple := string(types.EncodeKeyFields(row.Rec, d.Fields))
			wantByTuple[tuple] = append(wantByTuple[tuple], string(row.Key))
		}
		tuples := make([]string, 0, len(wantByTuple))
		for t := range wantByTuple {
			tuples = append(tuples, t)
		}
		sort.Strings(tuples)
		probe := func(tuple string, want []string) string {
			keys, err := rel.LookupAccess(tx, core.AttHash, inst, types.Key(tuple))
			if err != nil {
				return fmt.Sprintf("%s: hash %q lookup: %v", name, d.Name, err)
			}
			got := make([]string, 0, len(keys))
			for _, k := range keys {
				got = append(got, string(k))
			}
			sort.Strings(got)
			sort.Strings(want)
			if len(got) != len(want) {
				return fmt.Sprintf("%s: hash %q returned %d keys, model has %d", name, d.Name, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					return fmt.Sprintf("%s: hash %q key set differs", name, d.Name)
				}
			}
			return ""
		}
		for _, t := range tuples {
			if detail := probe(t, wantByTuple[t]); detail != "" {
				return detail
			}
		}
		absent := make([]types.Value, len(d.Fields))
		for i := range absent {
			absent[i] = types.Int(424242)
		}
		if detail := probe(string(types.EncodeKeyValues(absent...)), nil); detail != "" {
			return detail
		}
	}
	return ""
}

// verifyAggs recomputes every aggregate from the model's rows and
// compares it with the engine's incrementally maintained value, plus one
// absent-group probe that must read as empty.
func (r *runner) verifyAggs(rel *core.Relation, name string, cfg *RelCfg, rows []*Row) string {
	if len(cfg.Aggs) == 0 {
		return ""
	}
	instAny, err := rel.Env().AttachmentInstance(rel.Desc(), core.AttAggMV)
	if err != nil {
		return name + ": aggregate instance: " + err.Error()
	}
	agg := instAny.(*aggmv.Instance)
	for _, a := range cfg.Aggs {
		type acc struct {
			group types.Value
			sum   float64
			count int64
		}
		groups := make(map[string]*acc)
		var order []string
		for _, row := range rows {
			gk := ""
			gv := types.Null()
			if a.GroupField >= 0 {
				gv = row.Rec[a.GroupField]
				gk = string(types.EncodeKeyValues(gv))
			}
			g := groups[gk]
			if g == nil {
				g = &acc{group: gv}
				groups[gk] = g
				order = append(order, gk)
			}
			g.sum += row.Rec[a.ValueField].AsFloat()
			g.count++
		}
		sort.Strings(order)
		for _, gk := range order {
			g := groups[gk]
			sum, count, err := agg.Lookup(a.Name, g.group)
			if err != nil {
				return fmt.Sprintf("%s: aggregate %q lookup: %v", name, a.Name, err)
			}
			if sum != g.sum || count != g.count {
				return fmt.Sprintf("%s: aggregate %q group %v: engine (sum=%v count=%d) vs model (sum=%v count=%d)",
					name, a.Name, g.group, sum, count, g.sum, g.count)
			}
		}
		if a.GroupField >= 0 {
			if _, ok := groups[string(types.EncodeKeyValues(types.Int(424242)))]; !ok {
				sum, count, err := agg.Lookup(a.Name, types.Int(424242))
				if err != nil {
					return fmt.Sprintf("%s: aggregate %q absent probe: %v", name, a.Name, err)
				}
				if sum != 0 || count != 0 {
					return fmt.Sprintf("%s: aggregate %q absent group reads (sum=%v count=%d)", name, a.Name, sum, count)
				}
			}
		}
	}
	return ""
}
