// Crash harness: a reusable driver that runs a workload once per crash
// scenario, expects the injected crash to kill the engine, and then asks
// the caller to reopen from disk, recover, and verify invariants.
package fault

import "fmt"

// TB is the subset of *testing.T the harness needs, so non-test drivers
// (e.g. the benchmark binary) can run the matrix too.
type TB interface {
	Helper()
	Logf(format string, args ...any)
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// Scenario is one cell of the crash matrix.
type Scenario struct {
	Name string
	Site Site
	Nth  int  // crash at the nth hit of Site
	Torn bool // torn write at the crash (write-guarded sites only)
	Keep int  // torn writes: bytes that survive

	// ExpectDurable marks sites that fire after the commit record is
	// already on stable storage (e.g. SiteWALSynced): the transaction
	// whose Commit returned the injected error may legitimately be fully
	// visible after recovery. At every other site an unacknowledged
	// transaction must be gone.
	ExpectDurable bool
}

// Matrix returns the standard crash-scenario sweep over all registered
// sites. With deep=true it adds later-hit and torn-write variants (the
// full injector matrix run by `make crash`).
func Matrix(deep bool) []Scenario {
	var out []Scenario
	add := func(s Scenario) {
		if s.Nth < 1 {
			s.Nth = 1
		}
		if s.Name == "" {
			tag := ""
			if s.Torn {
				tag = fmt.Sprintf("-torn%d", s.Keep)
			}
			s.Name = fmt.Sprintf("%s@%d%s", s.Site, s.Nth, tag)
		}
		out = append(out, s)
	}
	for _, site := range Sites() {
		durable := site == SiteWALSynced
		add(Scenario{Site: site, Nth: 1, ExpectDurable: durable})
		if deep {
			add(Scenario{Site: site, Nth: 2, ExpectDurable: durable})
			add(Scenario{Site: site, Nth: 5, ExpectDurable: durable})
		}
	}
	// Torn and short writes on the WAL file: 0 bytes (nothing reached the
	// file), a few bytes (frame header torn), and larger prefixes that cut
	// inside a frame body.
	for _, keep := range []int{0, 3, 11} {
		add(Scenario{Site: SiteWALFlush, Nth: 1, Torn: true, Keep: keep})
	}
	if deep {
		for _, keep := range []int{1, 7, 16, 33, 64} {
			add(Scenario{Site: SiteWALFlush, Nth: 2, Torn: true, Keep: keep})
			add(Scenario{Site: SiteWALFlush, Nth: 4, Torn: true, Keep: keep})
		}
	}
	return out
}

// Harness runs Workload once per scenario against a freshly armed
// injector, checks the crash actually happened, then calls Verify, which
// must reopen the database from its on-disk state, run recovery, and
// assert the durability invariants (acknowledged commits fully visible,
// unacknowledged transactions atomic).
type Harness struct {
	Scenarios []Scenario
	// Workload drives a fresh engine with inj plumbed in until the
	// injected crash stops it. Returning an error is normal (the crash
	// surfaces as ErrInjected); the harness only checks inj.Crashed().
	Workload func(s Scenario, inj *Injector) error
	// Verify reopens from disk, recovers, and asserts invariants.
	Verify func(t TB, s Scenario)
}

// Run executes the matrix. Scenarios whose site was never reached by the
// workload fail: a crash point that cannot be exercised is a harness bug.
func (h *Harness) Run(t TB) {
	t.Helper()
	if len(h.Scenarios) == 0 || h.Workload == nil || h.Verify == nil {
		t.Fatalf("fault: harness needs Scenarios, Workload and Verify")
		return
	}
	for _, s := range h.Scenarios {
		inj := New()
		if s.Torn {
			inj.ArmTorn(s.Site, s.Nth, s.Keep)
		} else {
			inj.Arm(s.Site, s.Nth)
		}
		err := h.Workload(s, inj)
		if !inj.Crashed() {
			t.Errorf("fault: scenario %s: crash site never reached (%d hits, workload err: %v)",
				s.Name, inj.Hits(s.Site), err)
			continue
		}
		h.Verify(t, s)
	}
}
