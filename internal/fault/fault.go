// Package fault provides a deterministic crash-point injector for
// recovery testing.
//
// Durability-bearing code paths (WAL append/flush/sync, buffer-pool
// write-back, page-file writes) declare named crash sites and consult an
// optional Injector before acting. A test arms the injector at one site;
// when the armed hit count is reached the injector "crashes": the armed
// operation fails with ErrInjected and every subsequent guarded operation
// at any site fails too, simulating a dead process whose in-memory state
// is lost. Torn writes are modelled by letting a prefix of the final
// write reach the file before the crash.
//
// All methods are nil-receiver safe so production code can hold a nil
// *Injector at zero cost.
package fault

import (
	"errors"
	"fmt"
	"sync"
)

// Site names a crash point in a durability-bearing code path.
type Site string

// Registered crash sites.
const (
	// SiteWALAppend fires before a record is added to the log, in memory
	// or on disk: nothing of the record survives.
	SiteWALAppend Site = "wal.append"
	// SiteWALFlush fires while buffered log frames are written to the
	// file; armed torn, a prefix of the buffered bytes reaches the file
	// (a torn or short write), otherwise none do.
	SiteWALFlush Site = "wal.flush"
	// SiteWALSynced fires after fsync succeeded but before success is
	// returned: the records are durable but the caller never learns it.
	SiteWALSynced Site = "wal.synced"
	// SiteBufFlush fires before the buffer pool writes a dirty frame back
	// to the disk.
	SiteBufFlush Site = "buffer.flush"
	// SitePageWrite fires before the page file writes a page image.
	SitePageWrite Site = "pagefile.write"
	// SiteLSMFlush fires before the LSM storage method seals its memtable
	// into a sorted run: the logged records exist in the WAL but the run
	// was never built.
	SiteLSMFlush Site = "lsm.flush"
	// SiteLSMCompact fires after a run merge is computed but before the
	// merged run replaces its inputs: the crash lands on a half-compacted
	// in-memory state whose durable truth is still only the WAL.
	SiteLSMCompact Site = "lsm.compact"
	// SitePartDecide fires after every shard of a partitioned relation
	// has acknowledged prepare but before the coordinator's commit
	// decision reaches the local log: the crash leaves the shards
	// prepared and in doubt, with no decision record to recover.
	SitePartDecide Site = "part.decide"
)

// Sites lists the crash sites every engine workload reaches (WAL,
// buffer pool, page file). The LSM sites are deliberately excluded: they
// are only hit by workloads that ingest through the LSM storage method,
// and the harness fails scenarios whose site is never reached.
func Sites() []Site {
	return []Site{SiteWALAppend, SiteWALFlush, SiteWALSynced, SiteBufFlush, SitePageWrite}
}

// LSMSites lists the crash sites of the LSM storage method's flush and
// compaction boundaries, for workloads that drive it.
func LSMSites() []Site {
	return []Site{SiteLSMFlush, SiteLSMCompact}
}

// PartSites lists the crash sites of the partitioned storage method's
// two-phase commit, for workloads that drive multi-shard transactions.
// Excluded from Sites for the same reason as the LSM sites.
func PartSites() []Site {
	return []Site{SitePartDecide}
}

// ErrInjected is the failure returned at an armed crash site and by every
// guarded operation after the simulated crash.
var ErrInjected = errors.New("fault: injected crash")

// Injector is a deterministic crash-point injector. The zero value (and a
// nil pointer) is inert. An Injector models one process lifetime: once it
// crashes it stays crashed; build a fresh one for the next run.
type Injector struct {
	mu      sync.Mutex
	site    Site
	left    int // hits at site remaining before the crash (0 = disarmed)
	torn    bool
	keep    int // torn writes: bytes of the triggering write that survive
	crashed bool
	hits    map[Site]int
}

// New returns a disarmed injector.
func New() *Injector { return &Injector{hits: make(map[Site]int)} }

// Arm schedules a crash at the nth guarded hit of site (1 = the next).
func (in *Injector) Arm(site Site, nth int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if nth < 1 {
		nth = 1
	}
	in.site, in.left, in.torn, in.keep = site, nth, false, 0
}

// ArmTorn schedules a torn write at the nth write-guarded hit of site:
// keep bytes of the triggering write reach the file, the rest are lost
// with the crash. Sites guarded by Hit (not BeforeWrite) treat an armed
// torn crash like a plain one.
func (in *Injector) ArmTorn(site Site, nth, keep int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if nth < 1 {
		nth = 1
	}
	if keep < 0 {
		keep = 0
	}
	in.site, in.left, in.torn, in.keep = site, nth, true, keep
}

// Hit consults the injector at site. It returns ErrInjected when the
// armed count is reached (crashing the injector) or when a crash already
// happened; nil otherwise.
func (in *Injector) Hit(site Site) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hitLocked(site)
}

func (in *Injector) hitLocked(site Site) error {
	if in.hits == nil {
		in.hits = make(map[Site]int)
	}
	in.hits[site]++
	if in.crashed {
		return fmt.Errorf("%w (process dead, at %s)", ErrInjected, site)
	}
	if in.site == site && in.left > 0 {
		in.left--
		if in.left == 0 {
			in.crashed = true
			return fmt.Errorf("%w (at %s)", ErrInjected, site)
		}
	}
	return nil
}

// BeforeWrite consults the injector ahead of an n-byte file write at
// site. It returns how many bytes the caller should let reach the file:
// n with a nil error normally, or 0..n with ErrInjected at the crash
// (the torn-write prefix armed by ArmTorn; 0 for a plain crash).
func (in *Injector) BeforeWrite(site Site, n int) (allow int, err error) {
	if in == nil {
		return n, nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	wasCrashed := in.crashed
	if err := in.hitLocked(site); err != nil {
		keep := 0
		if !wasCrashed && in.torn { // the triggering write tears; later ones vanish
			keep = in.keep
			if keep > n {
				keep = n
			}
		}
		return keep, err
	}
	return n, nil
}

// Armed reports whether a crash is scheduled but has not happened yet.
// Differential harnesses use it to decide when a pre-operation state
// snapshot is worth taking.
func (in *Injector) Armed() bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return !in.crashed && in.left > 0
}

// Crashed reports whether the simulated crash has happened.
func (in *Injector) Crashed() bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// Hits returns how many times site was consulted (including after the
// crash). The harness uses it to flag scenarios whose site was never
// reached.
func (in *Injector) Hits(site Site) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[site]
}
