package fault

import (
	"errors"
	"testing"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Hit(SiteWALAppend); err != nil {
		t.Fatal(err)
	}
	if allow, err := in.BeforeWrite(SiteWALFlush, 42); allow != 42 || err != nil {
		t.Fatalf("BeforeWrite = %d, %v", allow, err)
	}
	if in.Crashed() || in.Hits(SiteWALAppend) != 0 {
		t.Fatal("nil injector reported state")
	}
}

func TestArmCrashesAtNthHitAndStaysCrashed(t *testing.T) {
	in := New()
	in.Arm(SiteWALAppend, 3)
	for i := 1; i <= 2; i++ {
		if err := in.Hit(SiteWALAppend); err != nil {
			t.Fatalf("hit %d: %v", i, err)
		}
	}
	if err := in.Hit(SiteWALAppend); !errors.Is(err, ErrInjected) {
		t.Fatalf("hit 3: %v", err)
	}
	if !in.Crashed() {
		t.Fatal("not crashed after armed hit")
	}
	// The process is dead: every site fails from here on.
	if err := in.Hit(SiteBufFlush); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash other site: %v", err)
	}
	if allow, err := in.BeforeWrite(SiteWALFlush, 10); allow != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash write = %d, %v", allow, err)
	}
	if in.Hits(SiteWALAppend) != 3 {
		t.Fatalf("Hits = %d", in.Hits(SiteWALAppend))
	}
}

func TestOtherSitesDoNotTriggerTheArmedOne(t *testing.T) {
	in := New()
	in.Arm(SiteBufFlush, 1)
	for i := 0; i < 5; i++ {
		if err := in.Hit(SiteWALAppend); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Hit(SiteBufFlush); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed site: %v", err)
	}
}

func TestTornWriteKeepsPrefixOnTriggeringWriteOnly(t *testing.T) {
	in := New()
	in.ArmTorn(SiteWALFlush, 2, 7)
	if allow, err := in.BeforeWrite(SiteWALFlush, 100); allow != 100 || err != nil {
		t.Fatalf("first write = %d, %v", allow, err)
	}
	// The triggering write tears: 7 bytes survive.
	if allow, err := in.BeforeWrite(SiteWALFlush, 100); allow != 7 || !errors.Is(err, ErrInjected) {
		t.Fatalf("triggering write = %d, %v", allow, err)
	}
	// Later writes vanish entirely (the machine is off).
	if allow, err := in.BeforeWrite(SiteWALFlush, 100); allow != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash write = %d, %v", allow, err)
	}
}

func TestTornKeepClampedToWriteSize(t *testing.T) {
	in := New()
	in.ArmTorn(SiteWALFlush, 1, 1000)
	if allow, err := in.BeforeWrite(SiteWALFlush, 10); allow != 10 || !errors.Is(err, ErrInjected) {
		t.Fatalf("clamped write = %d, %v", allow, err)
	}
}

func TestMatrixCoversEverySite(t *testing.T) {
	base := Matrix(false)
	covered := map[Site]bool{}
	names := map[string]bool{}
	for _, s := range base {
		covered[s.Site] = true
		if names[s.Name] {
			t.Fatalf("duplicate scenario name %q", s.Name)
		}
		names[s.Name] = true
		if (s.Site == SiteWALSynced) != s.ExpectDurable {
			t.Fatalf("scenario %s: ExpectDurable = %v", s.Name, s.ExpectDurable)
		}
	}
	for _, site := range Sites() {
		if !covered[site] {
			t.Fatalf("base matrix misses site %s", site)
		}
	}
	if deep := Matrix(true); len(deep) <= len(base) {
		t.Fatalf("deep matrix (%d) not larger than base (%d)", len(deep), len(base))
	}
}
