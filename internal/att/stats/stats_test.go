package stats_test

import (
	"testing"

	"dmx/internal/att/stats"
	"dmx/internal/core"
	_ "dmx/internal/sm/memsm"
	"dmx/internal/types"
	"dmx/internal/wal"
)

func schema() *types.Schema {
	return types.MustSchema(
		types.Column{Name: "id", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "v", Kind: types.KindFloat},
	)
}

func rec(id int64, v float64) types.Record {
	return types.Record{types.Int(id), types.Float(v)}
}

func setup(t *testing.T, env *core.Env) *core.Relation {
	t.Helper()
	tx := env.Begin()
	env.CreateRelation(tx, "t", schema(), "memory", nil)
	if _, err := env.CreateAttachment(tx, "t", "stats", nil); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	r, _ := env.OpenRelationByName("t")
	return r
}

func snap(t *testing.T, r *core.Relation) stats.Snapshot {
	t.Helper()
	instAny, err := r.Env().AttachmentInstance(r.Desc(), core.AttStats)
	if err != nil {
		t.Fatal(err)
	}
	return instAny.(*stats.Instance).Snapshot()
}

func TestCountAndWatermarks(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := setup(t, env)
	tx := env.Begin()
	k, _ := r.Insert(tx, rec(5, 10))
	r.Insert(tx, rec(1, 30))
	r.Insert(tx, rec(9, 20))
	s := snap(t, r)
	if s.Count != 3 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Mins[0].AsInt() != 1 || s.Maxs[0].AsInt() != 9 {
		t.Fatalf("id range = %v..%v", s.Mins[0], s.Maxs[0])
	}
	if s.Mins[1].AsFloat() != 10 || s.Maxs[1].AsFloat() != 30 {
		t.Fatalf("v range = %v..%v", s.Mins[1], s.Maxs[1])
	}
	r.Delete(tx, k)
	if snap(t, r).Count != 2 {
		t.Fatal("count after delete")
	}
	// Updates widen watermarks.
	kk, _ := r.Insert(tx, rec(2, 1))
	r.Update(tx, kk, rec(2, 99))
	if snap(t, r).Maxs[1].AsFloat() != 99 {
		t.Fatal("update did not widen max")
	}
	tx.Commit()
}

func TestCountSurvivesAbortAndVeto(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := setup(t, env)
	tx := env.Begin()
	r.Insert(tx, rec(1, 1))
	tx.Commit()

	tx2 := env.Begin()
	r.Insert(tx2, rec(2, 2))
	r.Insert(tx2, rec(3, 3))
	tx2.Abort()
	if got := snap(t, r).Count; got != 1 {
		t.Fatalf("count after abort = %d", got)
	}
}

func TestBuildCountsExistingRecords(t *testing.T) {
	env := core.NewEnv(core.Config{})
	tx := env.Begin()
	env.CreateRelation(tx, "t", schema(), "memory", nil)
	r, _ := env.OpenRelationByName("t")
	for i := 0; i < 7; i++ {
		r.Insert(tx, rec(int64(i), 0))
	}
	env.CreateAttachment(tx, "t", "stats", nil)
	tx.Commit()
	r, _ = env.OpenRelationByName("t")
	if got := snap(t, r).Count; got != 7 {
		t.Fatalf("built count = %d", got)
	}
}

func TestSecondCreateIsIdempotent(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := setup(t, env)
	tx := env.Begin()
	if _, err := env.CreateAttachment(tx, "t", "stats", nil); err != nil {
		t.Fatal(err)
	}
	r.Insert(tx, rec(1, 1))
	tx.Commit()
	if got := snap(t, r).Count; got != 1 {
		t.Fatalf("count with duplicate stats attachment = %d", got)
	}
}

func TestRecoveryRestoresCount(t *testing.T) {
	log := wal.New()
	env := core.NewEnv(core.Config{Log: log})
	r := setup(t, env)
	tx := env.Begin()
	for i := 0; i < 5; i++ {
		r.Insert(tx, rec(int64(i), 0))
	}
	tx.Commit()

	env2 := core.NewEnv(core.Config{Log: log})
	if err := env2.Recover(); err != nil {
		t.Fatal(err)
	}
	r2, _ := env2.OpenRelationByName("t")
	if got := snap(t, r2).Count; got != 5 {
		t.Fatalf("recovered count = %d", got)
	}
}
