// Package stats implements the statistics-maintenance attachment. The
// paper notes attachments "may have associated storage … even to maintain
// statistics about relations"; this one keeps a transactionally correct
// record count plus per-column minimum/maximum watermarks that the query
// planner consults for cardinality estimates.
//
// The count is logged (so vetoed, aborted, and partially rolled back
// modifications adjust it exactly); the min/max watermarks are monotone
// approximations refreshed only by inserts and updates, which is the
// usual statistics trade-off.
package stats

import (
	"sync"

	"dmx/internal/att/attutil"
	"dmx/internal/core"
	"dmx/internal/txn"
	"dmx/internal/types"
)

// Name is the DDL name of the attachment type.
const Name = "stats"

func init() {
	core.RegisterAttachment(&core.AttachmentOps{
		ID:   core.AttStats,
		Name: Name,
		ValidateAttrs: func(env *core.Env, rd *core.RelDesc, attrs core.AttrList) error {
			return attrs.CheckAllowed(Name, "name")
		},
		Create: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, prior []byte, attrs core.AttrList) ([]byte, error) {
			if prior != nil {
				return prior, nil // one statistics instance per relation
			}
			return attutil.AddDef(nil, attutil.IndexDef{Name: "stats"})
		},
		Open: func(env *core.Env, rd *core.RelDesc) (core.AttachmentInstance, error) {
			return &Instance{rd: rd, mins: make(map[int]types.Value), maxs: make(map[int]types.Value)}, nil
		},
		// Statistics are a singleton per relation (a repeated create is a
		// no-op Create, so CreateAttachment skips Build), hence newOnly
		// and full rebuild coincide.
		Build: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, _ bool) error {
			instAny, err := env.AttachmentInstance(rd, core.AttStats)
			if err != nil {
				return err
			}
			inst := instAny.(*Instance)
			return core.BuildScan(env, tx, rd, func(key types.Key, rec types.Record) error {
				return inst.OnInsert(tx, key, rec)
			})
		},
	})
}

// Instance maintains statistics for one relation.
type Instance struct {
	rd *core.RelDesc

	mu    sync.Mutex
	count int64
	mins  map[int]types.Value
	maxs  map[int]types.Value
}

// Snapshot is the statistics view handed to the planner.
type Snapshot struct {
	Count int64
	Mins  map[int]types.Value
	Maxs  map[int]types.Value
}

// Snapshot returns the current statistics.
func (s *Instance) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Snapshot{Count: s.count, Mins: make(map[int]types.Value), Maxs: make(map[int]types.Value)}
	for k, v := range s.mins {
		out.Mins[k] = v
	}
	for k, v := range s.maxs {
		out.Maxs[k] = v
	}
	return out
}

func (s *Instance) logDelta(tx *txn.Txn, delta int) error {
	op := core.ModInsert
	if delta < 0 {
		op = core.ModDelete
	}
	return core.LogAttachment(tx, s.rd, core.AttStats, core.EntryPayload{Op: op})
}

func (s *Instance) observe(rec types.Record) {
	for i, v := range rec {
		if v.IsNull() {
			continue
		}
		if cur, ok := s.mins[i]; !ok || types.Compare(v, cur) < 0 {
			s.mins[i] = v
		}
		if cur, ok := s.maxs[i]; !ok || types.Compare(v, cur) > 0 {
			s.maxs[i] = v
		}
	}
}

// OnInsert implements core.AttachmentInstance.
func (s *Instance) OnInsert(tx *txn.Txn, key types.Key, rec types.Record) error {
	if err := s.logDelta(tx, 1); err != nil {
		return err
	}
	s.mu.Lock()
	s.count++
	s.observe(rec)
	s.mu.Unlock()
	return nil
}

// OnUpdate implements core.AttachmentInstance.
func (s *Instance) OnUpdate(tx *txn.Txn, oldKey, newKey types.Key, oldRec, newRec types.Record) error {
	s.mu.Lock()
	s.observe(newRec)
	s.mu.Unlock()
	return nil
}

// OnDelete implements core.AttachmentInstance.
func (s *Instance) OnDelete(tx *txn.Txn, key types.Key, oldRec types.Record) error {
	if err := s.logDelta(tx, -1); err != nil {
		return err
	}
	s.mu.Lock()
	s.count--
	s.mu.Unlock()
	return nil
}

// ApplyLogged implements core.AttachmentInstance.
func (s *Instance) ApplyLogged(payload []byte, undo bool) error {
	p, err := core.DecodeEntry(payload)
	if err != nil {
		return err
	}
	delta := int64(1)
	if p.Op == core.ModDelete {
		delta = -1
	}
	if undo {
		delta = -delta
	}
	s.mu.Lock()
	s.count += delta
	s.mu.Unlock()
	return nil
}

var _ core.AttachmentInstance = (*Instance)(nil)
