// Package stats implements the statistics-maintenance attachment. The
// paper notes attachments "may have associated storage … even to maintain
// statistics about relations"; this one keeps a transactionally correct
// record count plus per-column distribution summaries the query planner
// consults for cardinality estimates: minimum/maximum watermarks, an
// approximate distinct count (a small HyperLogLog-style sketch), a null
// counter, and a reservoir sample from which equi-depth histogram bounds
// are derived at snapshot time.
//
// The count is logged (so vetoed, aborted, and partially rolled back
// modifications adjust it exactly); the distribution summaries are
// monotone approximations refreshed only by inserts and updates, which is
// the usual statistics trade-off — deletes never shrink them, so they can
// only over-estimate spread, never invent selectivity.
package stats

import (
	"math"
	"sort"
	"sync"

	"dmx/internal/att/attutil"
	"dmx/internal/core"
	"dmx/internal/txn"
	"dmx/internal/types"
)

// Name is the DDL name of the attachment type.
const Name = "stats"

const (
	// sampleSize bounds the per-column reservoir sample.
	sampleSize = 256
	// histBuckets is the number of equi-depth histogram buckets derived
	// from the sample at snapshot time.
	histBuckets = 16
	// hllBits selects 2^hllBits HyperLogLog registers per column.
	hllBits      = 6
	hllRegisters = 1 << hllBits
)

func init() {
	core.RegisterAttachment(&core.AttachmentOps{
		ID:   core.AttStats,
		Name: Name,
		ValidateAttrs: func(env *core.Env, rd *core.RelDesc, attrs core.AttrList) error {
			return attrs.CheckAllowed(Name, "name")
		},
		Create: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, prior []byte, attrs core.AttrList) ([]byte, error) {
			if prior != nil {
				return prior, nil // one statistics instance per relation
			}
			return attutil.AddDef(nil, attutil.IndexDef{Name: "stats"})
		},
		Open: func(env *core.Env, rd *core.RelDesc) (core.AttachmentInstance, error) {
			return &Instance{rd: rd, cols: make(map[int]*colStat), rng: rngSeed}, nil
		},
		// Statistics are a singleton per relation (a repeated create is a
		// no-op Create, so CreateAttachment skips Build), hence newOnly
		// and full rebuild coincide.
		Build: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, _ bool) error {
			instAny, err := env.AttachmentInstance(rd, core.AttStats)
			if err != nil {
				return err
			}
			inst := instAny.(*Instance)
			return core.BuildScan(env, tx, rd, func(key types.Key, rec types.Record) error {
				return inst.OnInsert(tx, key, rec)
			})
		},
	})
}

// colStat accumulates one column's distribution summary.
type colStat struct {
	min, max types.Value
	nulls    int64
	seen     int64 // non-null values observed
	sample   []types.Value
	hll      [hllRegisters]uint8
}

// Instance maintains statistics for one relation.
type Instance struct {
	rd *core.RelDesc

	mu    sync.Mutex
	count int64
	cols  map[int]*colStat
	rng   uint64 // deterministic splitmix64 state for reservoir sampling
}

// rngSeed is a fixed odd seed so statistics are reproducible run to run.
const rngSeed = 0x9e3779b97f4a7c15

// nextRand advances the deterministic PRNG (splitmix64). Called under mu.
func (s *Instance) nextRand() uint64 {
	s.rng += 0x9e3779b97f4a7c15
	z := s.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hashValue hashes a value's order-preserving encoding (FNV-1a finished
// with a splitmix64 mix for bit diffusion) for the distinct sketch.
func hashValue(v types.Value) uint64 {
	var buf [16]byte
	enc := v.AppendOrderedEncode(buf[:0])
	h := uint64(14695981039346656037)
	for _, b := range enc {
		h ^= uint64(b)
		h *= 1099511628211
	}
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// ColumnSnapshot is one column's statistics view handed to the planner.
type ColumnSnapshot struct {
	Min, Max types.Value
	Distinct float64
	NullFrac float64
	// Hist holds ascending equi-depth bucket bounds (len B+1); each
	// adjacent pair brackets ~1/B of the sampled rows.
	Hist []types.Value
}

// Snapshot is the statistics view handed to the planner. Mins/Maxs are
// retained alongside Cols for existing consumers.
type Snapshot struct {
	Count int64
	Mins  map[int]types.Value
	Maxs  map[int]types.Value
	Cols  map[int]ColumnSnapshot
}

// Snapshot returns the current statistics.
func (s *Instance) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Snapshot{
		Count: s.count,
		Mins:  make(map[int]types.Value),
		Maxs:  make(map[int]types.Value),
		Cols:  make(map[int]ColumnSnapshot),
	}
	for i, c := range s.cols {
		cs := ColumnSnapshot{Min: c.min, Max: c.max, Distinct: c.estimateDistinct(), Hist: c.histBounds()}
		if total := c.seen + c.nulls; total > 0 {
			cs.NullFrac = float64(c.nulls) / float64(total)
		}
		out.Cols[i] = cs
		if c.seen > 0 {
			out.Mins[i] = c.min
			out.Maxs[i] = c.max
		}
	}
	return out
}

// TableStats implements core.TableStatsProvider for the planner.
func (s *Instance) TableStats() core.TableStats {
	snap := s.Snapshot()
	out := core.TableStats{Rows: snap.Count, Cols: make(map[int]core.ColumnStats, len(snap.Cols))}
	for i, c := range snap.Cols {
		out.Cols[i] = core.ColumnStats{
			Distinct: c.Distinct,
			Min:      c.Min,
			Max:      c.Max,
			Hist:     c.Hist,
			NullFrac: c.NullFrac,
		}
	}
	return out
}

// estimateDistinct evaluates the HyperLogLog sketch. Called under mu.
func (c *colStat) estimateDistinct() float64 {
	if c.seen == 0 {
		return 0
	}
	sum := 0.0
	zeros := 0
	for _, r := range c.hll {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	const m = float64(hllRegisters)
	e := 0.709 * m * m / sum
	if e <= 2.5*m && zeros > 0 {
		// Small-range correction: linear counting.
		e = m * math.Log(m/float64(zeros))
	}
	if e < 1 {
		e = 1
	}
	if e > float64(c.seen) {
		e = float64(c.seen)
	}
	return e
}

// histBounds derives equi-depth bucket bounds from the sorted reservoir
// sample: B+1 ascending values bracketing ~equal sample counts. Called
// under mu.
func (c *colStat) histBounds() []types.Value {
	n := len(c.sample)
	if n < 2 {
		return nil
	}
	sorted := make([]types.Value, n)
	copy(sorted, c.sample)
	sort.Slice(sorted, func(i, j int) bool { return types.Compare(sorted[i], sorted[j]) < 0 })
	b := histBuckets
	if n < 2*b {
		b = n / 2
	}
	bounds := make([]types.Value, 0, b+1)
	for i := 0; i <= b; i++ {
		idx := i * (n - 1) / b
		bounds = append(bounds, sorted[idx])
	}
	return bounds
}

// observe folds one record into the summaries. Called under mu.
func (s *Instance) observe(rec types.Record) {
	for i, v := range rec {
		c := s.cols[i]
		if c == nil {
			c = &colStat{}
			s.cols[i] = c
		}
		if v.IsNull() {
			c.nulls++
			continue
		}
		if c.seen == 0 || types.Compare(v, c.min) < 0 {
			c.min = v
		}
		if c.seen == 0 || types.Compare(v, c.max) > 0 {
			c.max = v
		}
		c.seen++
		// Distinct sketch: bucket by the top register bits, rank by the
		// leading-zero run of the rest.
		h := hashValue(v)
		reg := h >> (64 - hllBits)
		rank := uint8(1)
		for mask := uint64(1) << (63 - hllBits); mask != 0 && h&mask == 0; mask >>= 1 {
			rank++
		}
		if rank > c.hll[reg] {
			c.hll[reg] = rank
		}
		// Reservoir sample (Vitter's algorithm R).
		if len(c.sample) < sampleSize {
			c.sample = append(c.sample, v)
		} else if j := s.nextRand() % uint64(c.seen); j < sampleSize {
			c.sample[j] = v
		}
	}
}

func (s *Instance) logDelta(tx *txn.Txn, delta int) error {
	op := core.ModInsert
	if delta < 0 {
		op = core.ModDelete
	}
	return core.LogAttachment(tx, s.rd, core.AttStats, core.EntryPayload{Op: op})
}

// OnInsert implements core.AttachmentInstance.
func (s *Instance) OnInsert(tx *txn.Txn, key types.Key, rec types.Record) error {
	if err := s.logDelta(tx, 1); err != nil {
		return err
	}
	s.mu.Lock()
	s.count++
	s.observe(rec)
	s.mu.Unlock()
	return nil
}

// OnUpdate implements core.AttachmentInstance.
func (s *Instance) OnUpdate(tx *txn.Txn, oldKey, newKey types.Key, oldRec, newRec types.Record) error {
	s.mu.Lock()
	s.observe(newRec)
	s.mu.Unlock()
	return nil
}

// OnDelete implements core.AttachmentInstance.
func (s *Instance) OnDelete(tx *txn.Txn, key types.Key, oldRec types.Record) error {
	if err := s.logDelta(tx, -1); err != nil {
		return err
	}
	s.mu.Lock()
	s.count--
	s.mu.Unlock()
	return nil
}

// ApplyLogged implements core.AttachmentInstance.
func (s *Instance) ApplyLogged(payload []byte, undo bool) error {
	p, err := core.DecodeEntry(payload)
	if err != nil {
		return err
	}
	delta := int64(1)
	if p.Op == core.ModDelete {
		delta = -1
	}
	if undo {
		delta = -delta
	}
	s.mu.Lock()
	s.count += delta
	s.mu.Unlock()
	return nil
}

var (
	_ core.AttachmentInstance = (*Instance)(nil)
	_ core.TableStatsProvider = (*Instance)(nil)
)
