// Package refint implements the referential-integrity attachment.
//
// Instances come in two roles, matching the paper's description. A
// *child*-role instance checks, on insert or update, that a matching
// parent record exists (immediately, or — via the deferred action queue —
// just before the transaction enters the prepared state, for constraints
// that cannot hold mid-transaction). A *parent*-role instance reacts to
// parent deletes: with action=cascade it performs record delete
// operations on the child relation — which may themselves cascade when
// the child also carries a parent-role instance — and with
// action=restrict it vetoes the delete while children exist.
package refint

import (
	"encoding/binary"
	"fmt"
	"sync"

	"dmx/internal/att/attutil"
	"dmx/internal/core"
	"dmx/internal/expr"
	"dmx/internal/txn"
	"dmx/internal/types"
)

// Name is the DDL name of the attachment type.
const Name = "refint"

// Veto reasons.
var (
	ErrNoParent    = fmt.Errorf("refint: no matching parent record")
	ErrHasChildren = fmt.Errorf("refint: children exist (action=restrict)")
)

type role uint8

const (
	roleChild role = iota + 1
	roleParent
)

type action uint8

const (
	actionRestrict action = iota + 1
	actionCascade
)

type timing uint8

const (
	timingImmediate timing = iota + 1
	timingDeferred
)

func init() {
	core.RegisterAttachment(&core.AttachmentOps{
		ID:   core.AttRefInt,
		Name: Name,
		ValidateAttrs: func(env *core.Env, rd *core.RelDesc, attrs core.AttrList) error {
			if err := attrs.CheckAllowed(Name, "name", "role", "on", "peer", "peerkey", "action", "timing"); err != nil {
				return err
			}
			_, err := parseDef(env, rd, attrs)
			return err
		},
		Create: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, prior []byte, attrs core.AttrList) ([]byte, error) {
			cfg, err := parseDef(env, rd, attrs)
			if err != nil {
				return nil, err
			}
			return attutil.AddDef(prior, attutil.IndexDef{
				Name:   attutil.InstanceName(attrs, prior),
				Fields: cfg.ownFields,
				Extra:  cfg.encodeExtra(),
			})
		},
		Drop: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, prior []byte, attrs core.AttrList) ([]byte, error) {
			name, ok := attrs.Get("name")
			if !ok {
				return nil, nil
			}
			return attutil.RemoveDef(prior, name)
		},
		Open: func(env *core.Env, rd *core.RelDesc) (core.AttachmentInstance, error) {
			inst := &Instance{env: env, rd: rd}
			if err := inst.Reconfigure(rd); err != nil {
				return nil, err
			}
			return inst, nil
		},
	})
}

type defCfg struct {
	name       string
	role       role
	act        action
	tim        timing
	ownFields  []int
	peerRel    string
	peerFields []int
}

func parseDef(env *core.Env, rd *core.RelDesc, attrs core.AttrList) (*defCfg, error) {
	cfg := &defCfg{act: actionRestrict, tim: timingImmediate}
	switch r, _ := attrs.Get("role"); r {
	case "child":
		cfg.role = roleChild
	case "parent":
		cfg.role = roleParent
	default:
		return nil, fmt.Errorf("refint: role must be child or parent, got %q", r)
	}
	var err error
	cfg.ownFields, err = attutil.ParseColumns(rd.Schema, attrs)
	if err != nil {
		return nil, err
	}
	peer, ok := attrs.Get("peer")
	if !ok {
		return nil, fmt.Errorf("refint: a peer=<relation> attribute is required")
	}
	cfg.peerRel = peer
	peerRD, ok := env.Cat.ByName(peer)
	if !ok {
		return nil, fmt.Errorf("refint: %w: peer relation %q", core.ErrNotFound, peer)
	}
	spec, ok := attrs.Get("peerkey")
	if !ok {
		return nil, fmt.Errorf("refint: a peerkey=<cols> attribute is required")
	}
	peerAttrs := core.AttrList{"on": spec}
	cfg.peerFields, err = attutil.ParseColumns(peerRD.Schema, peerAttrs)
	if err != nil {
		return nil, err
	}
	if len(cfg.peerFields) != len(cfg.ownFields) {
		return nil, fmt.Errorf("refint: on and peerkey column counts differ (%d vs %d)", len(cfg.ownFields), len(cfg.peerFields))
	}
	if a, ok := attrs.Get("action"); ok {
		switch a {
		case "cascade":
			cfg.act = actionCascade
		case "restrict":
			cfg.act = actionRestrict
		default:
			return nil, fmt.Errorf("refint: action must be cascade or restrict, got %q", a)
		}
	}
	if tm, ok := attrs.Get("timing"); ok {
		switch tm {
		case "deferred":
			cfg.tim = timingDeferred
		case "immediate":
			cfg.tim = timingImmediate
		default:
			return nil, fmt.Errorf("refint: timing must be immediate or deferred, got %q", tm)
		}
	}
	return cfg, nil
}

func (c *defCfg) encodeExtra() []byte {
	out := []byte{byte(c.role), byte(c.act), byte(c.tim), byte(len(c.peerFields))}
	for _, f := range c.peerFields {
		out = binary.BigEndian.AppendUint16(out, uint16(f))
	}
	return append(out, c.peerRel...)
}

func decodeExtra(name string, fields []int, b []byte) (*defCfg, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("refint: corrupt descriptor for %q", name)
	}
	cfg := &defCfg{name: name, role: role(b[0]), act: action(b[1]), tim: timing(b[2]), ownFields: fields}
	n := int(b[3])
	if len(b) < 4+2*n {
		return nil, fmt.Errorf("refint: corrupt peer fields for %q", name)
	}
	for i := 0; i < n; i++ {
		cfg.peerFields = append(cfg.peerFields, int(binary.BigEndian.Uint16(b[4+2*i:])))
	}
	cfg.peerRel = string(b[4+2*n:])
	return cfg, nil
}

// Instance services every referential-integrity instance on one relation.
type Instance struct {
	env *core.Env
	rd  *core.RelDesc

	mu   sync.Mutex
	defs []*defCfg
}

// Reconfigure implements core.Reconfigurer.
func (in *Instance) Reconfigure(rd *core.RelDesc) error {
	field := rd.AttDesc[core.AttRefInt]
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rd = rd
	in.defs = nil
	if field == nil {
		return nil
	}
	_, defs, err := attutil.DecodeDefs(field)
	if err != nil {
		return err
	}
	for _, d := range defs {
		cfg, err := decodeExtra(d.Name, d.Fields, d.Extra)
		if err != nil {
			return err
		}
		in.defs = append(in.defs, cfg)
	}
	return nil
}

func (in *Instance) snapshot() []*defCfg {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.defs
}

// matchFilter builds the equality predicate binding peer fields to the
// given values.
func matchFilter(fields []int, vals []types.Value) *expr.Expr {
	var conj []*expr.Expr
	for i, f := range fields {
		conj = append(conj, expr.Eq(expr.Field(f), expr.Const(vals[i])))
	}
	return expr.And(conj...)
}

// peerMatches returns the keys of peer records matching vals on fields.
func (in *Instance) peerMatches(tx *txn.Txn, cfg *defCfg, vals []types.Value, limit int) ([]types.Key, error) {
	peer, err := in.env.OpenRelationByName(cfg.peerRel)
	if err != nil {
		return nil, err
	}
	scan, err := peer.OpenScan(tx, core.ScanOptions{Filter: matchFilter(cfg.peerFields, vals), Fields: []int{}})
	if err != nil {
		return nil, err
	}
	defer scan.Close()
	var keys []types.Key
	for limit <= 0 || len(keys) < limit {
		k, _, ok, err := scan.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		keys = append(keys, k)
	}
	return keys, nil
}

// fkValues extracts the constrained field values; nil if any is NULL (a
// NULL foreign key is not checked, per SQL convention).
func fkValues(fields []int, rec types.Record) []types.Value {
	vals := make([]types.Value, len(fields))
	for i, f := range fields {
		if rec[f].IsNull() {
			return nil
		}
		vals[i] = rec[f]
	}
	return vals
}

// checkParentExists is the child-side test.
func (in *Instance) checkParentExists(tx *txn.Txn, cfg *defCfg, vals []types.Value) error {
	keys, err := in.peerMatches(tx, cfg, vals, 1)
	if err != nil {
		return err
	}
	if len(keys) == 0 {
		return fmt.Errorf("%w: %q values %v in %q", ErrNoParent, cfg.name, vals, cfg.peerRel)
	}
	return nil
}

// deferCheck queues the parent-existence test on the deferred action
// queue for the before-prepare event, deduplicating by constraint+values.
func (in *Instance) deferCheck(tx *txn.Txn, cfg *defCfg, vals []types.Value) error {
	stashKey := fmt.Sprintf("refint:%d:%s:%v", in.rd.RelID, cfg.name, vals)
	if _, dup := tx.Stash()[stashKey]; dup {
		return nil
	}
	tx.Stash()[stashKey] = true
	return tx.Defer(txn.EventBeforePrepare, func(tx *txn.Txn, _ string) error {
		// The queued closure survives savepoint rollbacks and deletes of
		// the row that enqueued it, so re-check at commit that some child
		// row still carries these values before demanding a parent.
		ok, err := in.selfMatches(tx, cfg, vals)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		return in.checkParentExists(tx, cfg, vals)
	})
}

// selfMatches reports whether the constrained relation still holds at
// least one record with the given foreign-key values.
func (in *Instance) selfMatches(tx *txn.Txn, cfg *defCfg, vals []types.Value) (bool, error) {
	self, err := in.env.OpenRelationByName(in.rd.Name)
	if err != nil {
		return false, err
	}
	scan, err := self.OpenScan(tx, core.ScanOptions{Filter: matchFilter(cfg.ownFields, vals), Fields: []int{}})
	if err != nil {
		return false, err
	}
	defer scan.Close()
	_, _, ok, err := scan.Next()
	return ok, err
}

func (in *Instance) childCheck(tx *txn.Txn, cfg *defCfg, rec types.Record) error {
	vals := fkValues(cfg.ownFields, rec)
	if vals == nil {
		return nil
	}
	if cfg.tim == timingDeferred {
		return in.deferCheck(tx, cfg, vals)
	}
	return in.checkParentExists(tx, cfg, vals)
}

// parentDeleteOrShrink handles removal of a parent key (delete, or update
// changing the key): cascade deletes the children or restrict vetoes.
func (in *Instance) parentKeyRemoved(tx *txn.Txn, cfg *defCfg, oldRec types.Record) error {
	vals := fkValues(cfg.ownFields, oldRec)
	if vals == nil {
		return nil
	}
	childRel, err := in.env.OpenRelationByName(cfg.peerRel)
	if err != nil {
		return err
	}
	// Enumerate matching children via the child relation's fields.
	keys, err := in.peerMatches(tx, cfg, vals, 0)
	if err != nil {
		return err
	}
	if len(keys) == 0 {
		return nil
	}
	if cfg.act == actionRestrict {
		return fmt.Errorf("%w: %q has %d child record(s) in %q", ErrHasChildren, cfg.name, len(keys), cfg.peerRel)
	}
	// Cascade: delete each child through the generic interfaces, so the
	// children's own attachments fire and deletes cascade further.
	for _, k := range keys {
		if err := childRel.Delete(tx, k); err != nil {
			return err
		}
	}
	return nil
}

// OnInsert implements core.AttachmentInstance.
func (in *Instance) OnInsert(tx *txn.Txn, key types.Key, rec types.Record) error {
	for _, cfg := range in.snapshot() {
		if cfg.role != roleChild {
			continue
		}
		if err := in.childCheck(tx, cfg, rec); err != nil {
			return err
		}
	}
	return nil
}

// OnUpdate implements core.AttachmentInstance.
func (in *Instance) OnUpdate(tx *txn.Txn, oldKey, newKey types.Key, oldRec, newRec types.Record) error {
	for _, cfg := range in.snapshot() {
		if !attutil.FieldsChanged(cfg.ownFields, oldRec, newRec) {
			continue
		}
		switch cfg.role {
		case roleChild:
			if err := in.childCheck(tx, cfg, newRec); err != nil {
				return err
			}
		case roleParent:
			if err := in.parentKeyRemoved(tx, cfg, oldRec); err != nil {
				return err
			}
		}
	}
	return nil
}

// OnDelete implements core.AttachmentInstance.
func (in *Instance) OnDelete(tx *txn.Txn, key types.Key, oldRec types.Record) error {
	for _, cfg := range in.snapshot() {
		if cfg.role != roleParent {
			continue
		}
		if err := in.parentKeyRemoved(tx, cfg, oldRec); err != nil {
			return err
		}
	}
	return nil
}

// ApplyLogged implements core.AttachmentInstance: the constraint has no
// associated storage; cascaded deletes are logged by the relations they
// modify and unwind with the transaction.
func (in *Instance) ApplyLogged(payload []byte, undo bool) error { return nil }

var (
	_ core.AttachmentInstance = (*Instance)(nil)
	_ core.Reconfigurer       = (*Instance)(nil)
)
