package refint_test

import (
	"errors"
	"fmt"
	"testing"

	"dmx/internal/att/refint"
	"dmx/internal/core"
	_ "dmx/internal/sm/memsm"
	"dmx/internal/types"
)

func deptSchema() *types.Schema {
	return types.MustSchema(
		types.Column{Name: "dno", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "name", Kind: types.KindString},
	)
}

func empSchema() *types.Schema {
	return types.MustSchema(
		types.Column{Name: "eno", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "dno", Kind: types.KindInt},
	)
}

func dept(dno int64, name string) types.Record {
	return types.Record{types.Int(dno), types.Str(name)}
}

func emp(eno, dno int64) types.Record {
	return types.Record{types.Int(eno), types.Int(dno)}
}

// setupFK wires dept (parent) and emp (child) with the given parent action
// and child timing.
func setupFK(t *testing.T, env *core.Env, act, tim string) (*core.Relation, *core.Relation) {
	t.Helper()
	tx := env.Begin()
	if _, err := env.CreateRelation(tx, "dept", deptSchema(), "memory", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := env.CreateRelation(tx, "emp", empSchema(), "memory", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := env.CreateAttachment(tx, "emp", "refint", core.AttrList{
		"name": "fk_emp_dept", "role": "child", "on": "dno",
		"peer": "dept", "peerkey": "dno", "timing": tim,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := env.CreateAttachment(tx, "dept", "refint", core.AttrList{
		"name": "pk_dept_emp", "role": "parent", "on": "dno",
		"peer": "emp", "peerkey": "dno", "action": act,
	}); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	d, _ := env.OpenRelationByName("dept")
	e, _ := env.OpenRelationByName("emp")
	return d, e
}

func TestChildInsertRequiresParent(t *testing.T) {
	env := core.NewEnv(core.Config{})
	d, e := setupFK(t, env, "restrict", "immediate")
	tx := env.Begin()
	d.Insert(tx, dept(10, "eng"))
	if _, err := e.Insert(tx, emp(1, 10)); err != nil {
		t.Fatal(err)
	}
	_, err := e.Insert(tx, emp(2, 99))
	var ve *core.VetoError
	if !errors.As(err, &ve) || !errors.Is(err, refint.ErrNoParent) {
		t.Fatalf("want no-parent veto, got %v", err)
	}
	if e.Storage().RecordCount() != 1 {
		t.Fatal("vetoed insert left effects")
	}
	// NULL foreign keys are not checked.
	if _, err := e.Insert(tx, types.Record{types.Int(3), types.Null()}); err != nil {
		t.Fatalf("NULL FK rejected: %v", err)
	}
	tx.Commit()
}

func TestChildUpdateChecked(t *testing.T) {
	env := core.NewEnv(core.Config{})
	d, e := setupFK(t, env, "restrict", "immediate")
	tx := env.Begin()
	d.Insert(tx, dept(10, "eng"))
	d.Insert(tx, dept(20, "ops"))
	k, _ := e.Insert(tx, emp(1, 10))
	if _, err := e.Update(tx, k, emp(1, 20)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Update(tx, k, emp(1, 77)); err == nil {
		t.Fatal("update to missing parent accepted")
	}
	tx.Commit()
}

func TestRestrictBlocksParentDelete(t *testing.T) {
	env := core.NewEnv(core.Config{})
	d, e := setupFK(t, env, "restrict", "immediate")
	tx := env.Begin()
	dk, _ := d.Insert(tx, dept(10, "eng"))
	e.Insert(tx, emp(1, 10))
	err := d.Delete(tx, dk)
	if !errors.Is(err, refint.ErrHasChildren) {
		t.Fatalf("want restrict veto, got %v", err)
	}
	// The vetoed delete is undone: parent still present.
	if d.Storage().RecordCount() != 1 {
		t.Fatal("parent lost after vetoed delete")
	}
	tx.Commit()
}

func TestCascadeDelete(t *testing.T) {
	env := core.NewEnv(core.Config{})
	d, e := setupFK(t, env, "cascade", "immediate")
	tx := env.Begin()
	dk, _ := d.Insert(tx, dept(10, "eng"))
	d.Insert(tx, dept(20, "ops"))
	for i := 0; i < 5; i++ {
		e.Insert(tx, emp(int64(i), 10))
	}
	e.Insert(tx, emp(9, 20))
	if err := d.Delete(tx, dk); err != nil {
		t.Fatal(err)
	}
	if e.Storage().RecordCount() != 1 {
		t.Fatalf("children after cascade = %d", e.Storage().RecordCount())
	}
	tx.Commit()
}

func TestMultiLevelCascade(t *testing.T) {
	// dept -> emp -> timecard: deleting the dept cascades two levels.
	env := core.NewEnv(core.Config{})
	d, e := setupFK(t, env, "cascade", "immediate")
	tx := env.Begin()
	tcSchema := types.MustSchema(
		types.Column{Name: "tno", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "eno", Kind: types.KindInt},
	)
	if _, err := env.CreateRelation(tx, "timecard", tcSchema, "memory", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := env.CreateAttachment(tx, "emp", "refint", core.AttrList{
		"name": "pk_emp_tc", "role": "parent", "on": "eno",
		"peer": "timecard", "peerkey": "eno", "action": "cascade",
	}); err != nil {
		t.Fatal(err)
	}
	tc, _ := env.OpenRelationByName("timecard")
	e, _ = env.OpenRelationByName("emp") // refresh descriptor

	dk, _ := d.Insert(tx, dept(10, "eng"))
	e.Insert(tx, emp(1, 10))
	e.Insert(tx, emp(2, 10))
	tc.Insert(tx, types.Record{types.Int(100), types.Int(1)})
	tc.Insert(tx, types.Record{types.Int(101), types.Int(1)})
	tc.Insert(tx, types.Record{types.Int(102), types.Int(2)})

	if err := d.Delete(tx, dk); err != nil {
		t.Fatal(err)
	}
	if e.Storage().RecordCount() != 0 || tc.Storage().RecordCount() != 0 {
		t.Fatalf("after 2-level cascade: emp=%d tc=%d",
			e.Storage().RecordCount(), tc.Storage().RecordCount())
	}
	tx.Commit()
}

func TestCascadeBlockedDeepVetoUnwindsAll(t *testing.T) {
	// dept -cascade-> emp -restrict-> timecard: the deep restrict vetoes
	// the whole cascading delete, and every already-deleted child is
	// restored by the common log.
	env := core.NewEnv(core.Config{})
	d, e := setupFK(t, env, "cascade", "immediate")
	tx := env.Begin()
	tcSchema := types.MustSchema(
		types.Column{Name: "tno", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "eno", Kind: types.KindInt},
	)
	env.CreateRelation(tx, "timecard", tcSchema, "memory", nil)
	if _, err := env.CreateAttachment(tx, "emp", "refint", core.AttrList{
		"name": "pk_emp_tc", "role": "parent", "on": "eno",
		"peer": "timecard", "peerkey": "eno", "action": "restrict",
	}); err != nil {
		t.Fatal(err)
	}
	tc, _ := env.OpenRelationByName("timecard")
	e, _ = env.OpenRelationByName("emp")

	dk, _ := d.Insert(tx, dept(10, "eng"))
	e.Insert(tx, emp(1, 10))
	e.Insert(tx, emp(2, 10))
	tc.Insert(tx, types.Record{types.Int(100), types.Int(2)}) // blocks emp 2

	err := d.Delete(tx, dk)
	if err == nil {
		t.Fatal("deep restrict should veto")
	}
	// Everything restored.
	if d.Storage().RecordCount() != 1 || e.Storage().RecordCount() != 2 || tc.Storage().RecordCount() != 1 {
		t.Fatalf("after deep veto: dept=%d emp=%d tc=%d",
			d.Storage().RecordCount(), e.Storage().RecordCount(), tc.Storage().RecordCount())
	}
	tx.Commit()
}

func TestDeferredCheckRunsAtCommit(t *testing.T) {
	env := core.NewEnv(core.Config{})
	d, e := setupFK(t, env, "restrict", "deferred")
	// Insert the child BEFORE the parent: immediate checking would veto,
	// deferred checking passes because the parent exists by commit.
	tx := env.Begin()
	if _, err := e.Insert(tx, emp(1, 10)); err != nil {
		t.Fatalf("deferred insert should not check immediately: %v", err)
	}
	d.Insert(tx, dept(10, "eng"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// And a violation surfaces at commit, turning it into an abort.
	tx2 := env.Begin()
	if _, err := e.Insert(tx2, emp(2, 99)); err != nil {
		t.Fatal(err)
	}
	err := tx2.Commit()
	if !errors.Is(err, refint.ErrNoParent) {
		t.Fatalf("commit should fail the deferred check, got %v", err)
	}
	if e.Storage().RecordCount() != 1 {
		t.Fatalf("aborted txn left children: %d", e.Storage().RecordCount())
	}
}

func TestDeferredCheckSkipsRemovedRow(t *testing.T) {
	// A deferred check enqueued by a child row that no longer exists at
	// commit (deleted, or rolled back to a savepoint) must not veto.
	env := core.NewEnv(core.Config{})
	_, e := setupFK(t, env, "restrict", "deferred")

	// Insert a dangling child, then delete it before commit.
	tx := env.Begin()
	k, err := e.Insert(tx, emp(1, 99))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Delete(tx, k); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("deferred check fired for deleted row: %v", err)
	}

	// Insert a dangling child, then roll back past it to a savepoint.
	tx2 := env.Begin()
	if _, err := tx2.Savepoint("before"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Insert(tx2, emp(2, 98)); err != nil {
		t.Fatal(err)
	}
	if err := tx2.RollbackTo("before"); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatalf("deferred check fired for rolled-back row: %v", err)
	}

	// A surviving dangling row still vetoes.
	tx3 := env.Begin()
	if _, err := e.Insert(tx3, emp(3, 97)); err != nil {
		t.Fatal(err)
	}
	if err := tx3.Commit(); !errors.Is(err, refint.ErrNoParent) {
		t.Fatalf("surviving dangling row should veto commit, got %v", err)
	}
}

func TestParentKeyUpdateTreatedAsRemoval(t *testing.T) {
	env := core.NewEnv(core.Config{})
	d, e := setupFK(t, env, "restrict", "immediate")
	tx := env.Begin()
	dk, _ := d.Insert(tx, dept(10, "eng"))
	e.Insert(tx, emp(1, 10))
	if _, err := d.Update(tx, dk, dept(11, "eng")); err == nil {
		t.Fatal("parent key change with children accepted under restrict")
	}
	// Renaming without key change is fine.
	if _, err := d.Update(tx, dk, dept(10, "engineering")); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
}

func TestValidation(t *testing.T) {
	env := core.NewEnv(core.Config{})
	tx := env.Begin()
	env.CreateRelation(tx, "dept", deptSchema(), "memory", nil)
	env.CreateRelation(tx, "emp", empSchema(), "memory", nil)
	bad := []core.AttrList{
		{"role": "sibling", "on": "dno", "peer": "dept", "peerkey": "dno"},
		{"role": "child", "on": "dno"},
		{"role": "child", "on": "dno", "peer": "ghost", "peerkey": "dno"},
		{"role": "child", "on": "dno", "peer": "dept"},
		{"role": "child", "on": "dno", "peer": "dept", "peerkey": "dno,name"},
		{"role": "child", "on": "dno", "peer": "dept", "peerkey": "dno", "action": "explode"},
		{"role": "child", "on": "dno", "peer": "dept", "peerkey": "dno", "timing": "someday"},
	}
	for i, attrs := range bad {
		if _, err := env.CreateAttachment(tx, "emp", "refint", attrs); err == nil {
			t.Errorf("case %d: bad attrs accepted: %v", i, attrs)
		}
	}
	tx.Commit()
}

func TestSelfReferencingCascade(t *testing.T) {
	// An org chart: employee.manager references employee.eno.
	env := core.NewEnv(core.Config{})
	s := types.MustSchema(
		types.Column{Name: "eno", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "mgr", Kind: types.KindInt},
	)
	tx := env.Begin()
	env.CreateRelation(tx, "staff", s, "memory", nil)
	if _, err := env.CreateAttachment(tx, "staff", "refint", core.AttrList{
		"name": "org", "role": "parent", "on": "eno",
		"peer": "staff", "peerkey": "mgr", "action": "cascade",
	}); err != nil {
		t.Fatal(err)
	}
	r, _ := env.OpenRelationByName("staff")
	boss, _ := r.Insert(tx, types.Record{types.Int(1), types.Null()})
	r.Insert(tx, types.Record{types.Int(2), types.Int(1)})
	r.Insert(tx, types.Record{types.Int(3), types.Int(2)})
	r.Insert(tx, types.Record{types.Int(4), types.Int(2)})
	if err := r.Delete(tx, boss); err != nil {
		t.Fatal(err)
	}
	if r.Storage().RecordCount() != 0 {
		t.Fatalf("self-cascade left %d", r.Storage().RecordCount())
	}
	tx.Commit()
	_ = fmt.Sprint()
}
