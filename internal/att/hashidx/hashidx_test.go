package hashidx_test

import (
	"testing"

	"dmx/internal/core"
	"dmx/internal/expr"
	_ "dmx/internal/sm/memsm"
	"dmx/internal/types"
	"dmx/internal/wal"
)

func schema() *types.Schema {
	return types.MustSchema(
		types.Column{Name: "id", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "email", Kind: types.KindString},
	)
}

func setup(t *testing.T, env *core.Env) *core.Relation {
	t.Helper()
	tx := env.Begin()
	if _, err := env.CreateRelation(tx, "users", schema(), "memory", nil); err != nil {
		t.Fatal(err)
	}
	rd, err := env.CreateAttachment(tx, "users", "hash", core.AttrList{"name": "bymail", "on": "email"})
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	r, _ := env.OpenRelation(rd)
	return r
}

func rec(id int64, email string) types.Record {
	return types.Record{types.Int(id), types.Str(email)}
}

func TestProbeMaintainedOnModifications(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := setup(t, env)
	tx := env.Begin()
	k1, _ := r.Insert(tx, rec(1, "a@x"))
	r.Insert(tx, rec(2, "a@x")) // duplicates allowed
	r.Insert(tx, rec(3, "b@x"))

	probe := func(email string) int {
		keys, err := r.LookupAccess(tx, core.AttHash, 0, types.EncodeKeyValues(types.Str(email)))
		if err != nil {
			t.Fatal(err)
		}
		return len(keys)
	}
	if probe("a@x") != 2 || probe("b@x") != 1 || probe("ghost") != 0 {
		t.Fatal("probe counts wrong")
	}
	r.Update(tx, k1, rec(1, "c@x"))
	if probe("a@x") != 1 || probe("c@x") != 1 {
		t.Fatal("probe after update wrong")
	}
	r.Delete(tx, k1)
	if probe("c@x") != 0 {
		t.Fatal("probe after delete wrong")
	}
	tx.Commit()
}

func TestNoOrderedScan(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := setup(t, env)
	tx := env.Begin()
	if _, err := r.OpenAccessScan(tx, core.AttHash, 0, core.ScanOptions{}); err == nil {
		t.Fatal("hash index offered a key-sequential access")
	}
	tx.Commit()
}

func TestCostOnlyForEquality(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := setup(t, env)
	tx := env.Begin()
	for i := 0; i < 100; i++ {
		r.Insert(tx, rec(int64(i), "x"))
	}
	tx.Commit()
	instAny, _ := env.AttachmentInstance(r.Desc(), core.AttHash)
	ap := instAny.(core.AccessPath)
	eq := ap.EstimateCost(core.CostRequest{Conjuncts: []*expr.Expr{
		expr.Eq(expr.Field(1), expr.Const(types.Str("x"))),
	}})
	if !eq.Usable || eq.CPU != 1 {
		t.Fatalf("equality estimate = %+v", eq)
	}
	rng := ap.EstimateCost(core.CostRequest{Conjuncts: []*expr.Expr{
		expr.Gt(expr.Field(1), expr.Const(types.Str("a"))),
	}})
	if rng.Usable {
		t.Fatal("range predicate should be unusable for hash")
	}
}

func TestBuildAbortRecovery(t *testing.T) {
	log := wal.New()
	env := core.NewEnv(core.Config{Log: log})
	tx := env.Begin()
	env.CreateRelation(tx, "t", schema(), "memory", nil)
	r, _ := env.OpenRelationByName("t")
	for i := 0; i < 10; i++ {
		r.Insert(tx, rec(int64(i), "x"))
	}
	// Build over existing data.
	if _, err := env.CreateAttachment(tx, "t", "hash", core.AttrList{"on": "email"}); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	r, _ = env.OpenRelationByName("t")
	tx2 := env.Begin()
	keys, _ := r.LookupAccess(tx2, core.AttHash, 0, types.EncodeKeyValues(types.Str("x")))
	if len(keys) != 10 {
		t.Fatalf("built entries = %d", len(keys))
	}
	// Abort of modifications restores the table.
	r.Insert(tx2, rec(99, "x"))
	tx2.Abort()
	tx3 := env.Begin()
	keys, _ = r.LookupAccess(tx3, core.AttHash, 0, types.EncodeKeyValues(types.Str("x")))
	if len(keys) != 10 {
		t.Fatalf("entries after abort = %d", len(keys))
	}
	tx3.Commit()

	// Restart recovery rebuilds the hash table.
	env2 := core.NewEnv(core.Config{Log: log})
	if err := env2.Recover(); err != nil {
		t.Fatal(err)
	}
	r2, _ := env2.OpenRelationByName("t")
	tx4 := env2.Begin()
	keys, err := r2.LookupAccess(tx4, core.AttHash, 0, types.EncodeKeyValues(types.Str("x")))
	if err != nil || len(keys) != 10 {
		t.Fatalf("recovered entries = %v, %v", len(keys), err)
	}
	tx4.Commit()
}

// Regression: creating an index on a populated relation must populate only
// the new instance. Build used to re-apply every existing instance as well,
// duplicating their buckets (and re-logging their entries, so aborting the
// DDL transaction stripped live entries from pre-existing indexes).
func TestCreateSecondIndexLeavesFirstExact(t *testing.T) {
	env := core.NewEnv(core.Config{})
	setup(t, env)
	tx := env.Begin()
	r, _ := env.OpenRelationByName("users")
	r.Insert(tx, rec(1, "a@x"))
	r.Insert(tx, rec(2, "b@x"))
	tx.Commit()

	tx = env.Begin()
	if _, err := env.CreateAttachment(tx, "users", "hash", core.AttrList{"name": "byid", "on": "id"}); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	tx = env.Begin()
	defer tx.Commit()
	r, _ = env.OpenRelationByName("users")
	keys, err := r.LookupAccess(tx, core.AttHash, 0, types.EncodeKeyValues(types.Str("a@x")))
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 {
		t.Fatalf("existing index: %d keys for a@x, want 1", len(keys))
	}
	keys, err = r.LookupAccess(tx, core.AttHash, 1, types.EncodeKeyValues(types.Int(2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 {
		t.Fatalf("new index: %d keys for id=2, want 1", len(keys))
	}
}

// Regression: dropping the last instance must not reset the Seq counter.
// A later create reused the dropped instance's Seq and inherited its
// retained in-memory bucket entries, so probes returned phantom keys.
func TestDropAllThenRecreateStaysExact(t *testing.T) {
	env := core.NewEnv(core.Config{})
	setup(t, env)
	tx := env.Begin()
	r, _ := env.OpenRelationByName("users")
	r.Insert(tx, rec(1, "a@x"))
	tx.Commit()

	tx = env.Begin()
	if _, err := env.DropAttachment(tx, "users", "hash", core.AttrList{"name": "bymail"}); err != nil {
		t.Fatal(err)
	}
	if _, err := env.CreateAttachment(tx, "users", "hash", core.AttrList{"name": "bymail2", "on": "email"}); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	tx = env.Begin()
	defer tx.Commit()
	r, _ = env.OpenRelationByName("users")
	keys, err := r.LookupAccess(tx, core.AttHash, 0, types.EncodeKeyValues(types.Str("a@x")))
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 {
		t.Fatalf("recreated index: %d keys for a@x, want 1", len(keys))
	}
}
