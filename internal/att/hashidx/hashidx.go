// Package hashidx implements the hash-table access path attachment: a
// constant-time direct-by-key mapping from index key to record keys.
//
// Hash indexes answer only equality predicates; the cost estimator
// reports itself unusable otherwise. They maintain no useful ordering, so
// key-sequential access is not offered (the generic interface allows an
// access path to support direct-by-key access only).
package hashidx

import (
	"fmt"
	"math"
	"sync"

	"dmx/internal/att/attutil"
	"dmx/internal/core"
	"dmx/internal/expr"
	"dmx/internal/txn"
	"dmx/internal/types"
)

// Name is the DDL name of the attachment type.
const Name = "hash"

func init() {
	core.RegisterAttachment(&core.AttachmentOps{
		ID:   core.AttHash,
		Name: Name,
		ValidateAttrs: func(env *core.Env, rd *core.RelDesc, attrs core.AttrList) error {
			if err := attrs.CheckAllowed(Name, "name", "on"); err != nil {
				return err
			}
			_, err := attutil.ParseColumns(rd.Schema, attrs)
			return err
		},
		Create: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, prior []byte, attrs core.AttrList) ([]byte, error) {
			fields, err := attutil.ParseColumns(rd.Schema, attrs)
			if err != nil {
				return nil, err
			}
			return attutil.AddDef(prior, attutil.IndexDef{
				Name:   attutil.InstanceName(attrs, prior),
				Fields: fields,
			})
		},
		Drop: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, prior []byte, attrs core.AttrList) ([]byte, error) {
			name, ok := attrs.Get("name")
			if !ok {
				return nil, nil
			}
			return attutil.RemoveDef(prior, name)
		},
		Open: func(env *core.Env, rd *core.RelDesc) (core.AttachmentInstance, error) {
			inst := &Instance{env: env, rd: rd, tables: make(map[uint32]map[string][]types.Key)}
			if err := inst.Reconfigure(rd); err != nil {
				return nil, err
			}
			return inst, nil
		},
		Build: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, newOnly bool) error {
			instAny, err := env.AttachmentInstance(rd, core.AttHash)
			if err != nil {
				return err
			}
			inst := instAny.(*Instance)
			inst.mu.Lock()
			defs := inst.defs
			inst.mu.Unlock()
			if newOnly && len(defs) > 0 {
				defs = defs[len(defs)-1:] // Create appends, so the new def is last
			}
			return core.BuildScan(env, tx, rd, func(key types.Key, rec types.Record) error {
				for _, d := range defs {
					if err := inst.apply(tx, d, core.ModInsert, rec, key); err != nil {
						return err
					}
				}
				return nil
			})
		},
	})
}

// Instance services every hash index instance on one relation.
type Instance struct {
	env *core.Env
	rd  *core.RelDesc

	mu     sync.Mutex
	defs   []attutil.IndexDef
	tables map[uint32]map[string][]types.Key // by Seq: index key -> record keys
}

// Reconfigure implements core.Reconfigurer.
func (ix *Instance) Reconfigure(rd *core.RelDesc) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	field := rd.AttDesc[core.AttHash]
	if field == nil {
		ix.defs = nil
		return nil
	}
	_, defs, err := attutil.DecodeDefs(field)
	if err != nil {
		return err
	}
	ix.defs = defs
	for _, d := range defs {
		if ix.tables[d.Seq] == nil {
			ix.tables[d.Seq] = make(map[string][]types.Key)
		}
	}
	return nil
}

func (ix *Instance) apply(tx *txn.Txn, d attutil.IndexDef, op core.ModOp, rec types.Record, recKey types.Key) error {
	ik := types.EncodeKeyFields(rec, d.Fields)
	if err := core.LogAttachment(tx, ix.rd, core.AttHash, core.EntryPayload{
		Op: op, Instance: int(d.Seq), EntryKey: ik, RecKey: recKey,
	}); err != nil {
		return err
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.applyLocked(d.Seq, op, ik, recKey)
	return nil
}

func (ix *Instance) applyLocked(seq uint32, op core.ModOp, ik types.Key, recKey types.Key) {
	table := ix.tables[seq]
	if table == nil {
		table = make(map[string][]types.Key)
		ix.tables[seq] = table
	}
	bucket := table[string(ik)]
	if op == core.ModInsert {
		table[string(ik)] = append(bucket, recKey.Clone())
		return
	}
	for i, k := range bucket {
		if k.Equal(recKey) {
			bucket = append(bucket[:i], bucket[i+1:]...)
			break
		}
	}
	if len(bucket) == 0 {
		delete(table, string(ik))
	} else {
		table[string(ik)] = bucket
	}
}

// OnInsert implements core.AttachmentInstance.
func (ix *Instance) OnInsert(tx *txn.Txn, key types.Key, rec types.Record) error {
	ix.mu.Lock()
	defs := ix.defs
	ix.mu.Unlock()
	for _, d := range defs {
		if err := ix.apply(tx, d, core.ModInsert, rec, key); err != nil {
			return err
		}
	}
	return nil
}

// OnUpdate implements core.AttachmentInstance.
func (ix *Instance) OnUpdate(tx *txn.Txn, oldKey, newKey types.Key, oldRec, newRec types.Record) error {
	ix.mu.Lock()
	defs := ix.defs
	ix.mu.Unlock()
	keyMoved := !oldKey.Equal(newKey)
	for _, d := range defs {
		if !keyMoved && !attutil.FieldsChanged(d.Fields, oldRec, newRec) {
			continue
		}
		if err := ix.apply(tx, d, core.ModDelete, oldRec, oldKey); err != nil {
			return err
		}
		if err := ix.apply(tx, d, core.ModInsert, newRec, newKey); err != nil {
			return err
		}
	}
	return nil
}

// OnDelete implements core.AttachmentInstance.
func (ix *Instance) OnDelete(tx *txn.Txn, key types.Key, oldRec types.Record) error {
	ix.mu.Lock()
	defs := ix.defs
	ix.mu.Unlock()
	for _, d := range defs {
		if err := ix.apply(tx, d, core.ModDelete, oldRec, key); err != nil {
			return err
		}
	}
	return nil
}

// ApplyLogged implements core.AttachmentInstance.
func (ix *Instance) ApplyLogged(payload []byte, undo bool) error {
	p, err := core.DecodeEntry(payload)
	if err != nil {
		return err
	}
	op := p.Op
	if undo {
		if op == core.ModInsert {
			op = core.ModDelete
		} else {
			op = core.ModInsert
		}
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.applyLocked(uint32(p.Instance), op, p.EntryKey, p.RecKey)
	return nil
}

func (ix *Instance) defAt(instance int) (attutil.IndexDef, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if instance < 0 || instance >= len(ix.defs) {
		return attutil.IndexDef{}, fmt.Errorf("hashidx: %w: instance %d of %d", core.ErrNotFound, instance, len(ix.defs))
	}
	return ix.defs[instance], nil
}

// LookupByKey implements core.AccessPath: constant-time bucket probe.
func (ix *Instance) LookupByKey(tx *txn.Txn, instance int, key types.Key) ([]types.Key, error) {
	d, err := ix.defAt(instance)
	if err != nil {
		return nil, err
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	bucket := ix.tables[d.Seq][string(key)]
	out := make([]types.Key, len(bucket))
	for i, k := range bucket {
		out[i] = k.Clone()
	}
	return out, nil
}

// OpenScan implements core.AccessPath: hash tables keep no useful order.
func (ix *Instance) OpenScan(tx *txn.Txn, instance int, opts core.ScanOptions) (core.Scan, error) {
	return nil, fmt.Errorf("hashidx: hash indexes support direct-by-key access only")
}

// DirectOnly implements core.DirectOnlyPath: the planner must fetch by
// probe key rather than open a key-sequential access.
func (ix *Instance) DirectOnly() bool { return true }

// EstimateCost implements core.AccessPath: usable only when every index
// field is bound by an equality conjunct.
func (ix *Instance) EstimateCost(req core.CostRequest) core.CostEstimate {
	ix.mu.Lock()
	defs := ix.defs
	ix.mu.Unlock()
	best := core.CostEstimate{Usable: false, IO: math.Inf(1), CPU: math.Inf(1)}
	for i, d := range defs {
		handled := make([]int, 0, len(d.Fields))
		var key types.Key
		for _, f := range d.Fields {
			found := -1
			for ci, c := range req.Conjuncts {
				if fc, ok := expr.MatchFieldCompare(c); ok && fc.Field == f && fc.Op == expr.OpEq {
					found = ci
					key = fc.Value.AppendOrderedEncode(key)
					break
				}
			}
			if found < 0 {
				handled = nil
				break
			}
			handled = append(handled, found)
		}
		if handled == nil {
			continue
		}
		ix.mu.Lock()
		n := float64(len(ix.tables[d.Seq]))
		ix.mu.Unlock()
		est := core.CostEstimate{
			Usable: true, Instance: i, Handled: handled,
			CPU: 1, IO: 0.1, Selectivity: 1 / math.Max(n, 1),
			Start: key, End: key, // point probe key in Start
		}
		if est.Total() < best.Total() || !best.Usable {
			best = est
		}
	}
	return best
}

// InstanceCount implements core.AccessPath.
func (ix *Instance) InstanceCount() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return len(ix.defs)
}

var (
	_ core.AttachmentInstance = (*Instance)(nil)
	_ core.AccessPath         = (*Instance)(nil)
	_ core.Reconfigurer       = (*Instance)(nil)
	_ core.DirectOnlyPath     = (*Instance)(nil)
)
